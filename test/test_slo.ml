(* SLO window math: budget burn, bucket rotation, and clock steps.

   Every tracker here runs on an injected clock, so rotation is driven
   explicitly and the tests are deterministic. *)

module Slo = Sdb_obs.Slo
module Metrics = Sdb_obs.Metrics

let check = Alcotest.check

(* A 6 s window in six 1 s buckets at a 10 ms objective and 10% budget:
   small numbers whose fractions are exact. *)
let make ?(objective_ms = 10.0) ?(budget = 0.1) name =
  let clock = ref 0.0 in
  let slo =
    Slo.create ~now:(fun () -> !clock) ~window_s:6.0 ~buckets:6 ~name
      ~objective_ms ~budget ()
  in
  (clock, slo)

let good = 0.005 (* under a 10 ms objective *)
let bad = 0.020

let test_empty_window_passes () =
  let _clock, slo = make "test_slo_empty" in
  let r = Slo.report slo in
  check Alcotest.int "no traffic" 0 r.Slo.r_total;
  check (Alcotest.float 1e-9) "no bad fraction" 0.0 r.Slo.r_bad_fraction;
  check (Alcotest.float 1e-9) "no burn" 0.0 r.Slo.r_burn;
  check Alcotest.bool "an idle service is compliant" true r.Slo.r_pass

let test_burn_math () =
  let _clock, slo = make "test_slo_burn" in
  for _ = 1 to 90 do Slo.record slo good done;
  for _ = 1 to 10 do Slo.record slo bad done;
  let r = Slo.report slo in
  check Alcotest.int "total" 100 r.Slo.r_total;
  check Alcotest.int "bad" 10 r.Slo.r_bad;
  check (Alcotest.float 1e-9) "bad fraction" 0.1 r.Slo.r_bad_fraction;
  (* Exactly at budget: burn 1.0 still passes... *)
  check (Alcotest.float 1e-9) "burn at budget" 1.0 r.Slo.r_burn;
  check Alcotest.bool "at budget passes" true (Slo.pass slo);
  (* ...one more violation tips it over. *)
  Slo.record slo bad;
  check Alcotest.bool "over budget fails" false (Slo.pass slo)

let test_failures_always_burn () =
  let _clock, slo = make "test_slo_failures" in
  Slo.record slo good;
  Slo.record_failure slo;
  let r = Slo.report slo in
  check Alcotest.int "failure counted" 1 r.Slo.r_bad;
  check Alcotest.int "in the total too" 2 r.Slo.r_total

let test_rotation_expires_old_traffic () =
  let clock, slo = make "test_slo_rotation" in
  for _ = 1 to 10 do Slo.record slo bad done;
  check Alcotest.bool "fresh violations fail" false (Slo.pass slo);
  (* Half a window later the violations are still in scope... *)
  clock := 3.0;
  check Alcotest.int "still visible mid-window" 10 (Slo.report slo).Slo.r_total;
  (* ...recording good traffic in a later bucket keeps both in view... *)
  for _ = 1 to 200 do Slo.record slo good done;
  let r = Slo.report slo in
  check Alcotest.int "window sums buckets" 210 r.Slo.r_total;
  check Alcotest.bool "diluted under budget" true r.Slo.r_pass;
  (* ...and one bucket past the window the old bucket has expired. *)
  clock := 6.5;
  let r = Slo.report slo in
  check Alcotest.int "epoch-0 bucket expired" 200 r.Slo.r_total;
  check Alcotest.int "its violations went with it" 0 r.Slo.r_bad

let test_backward_clock_never_rotates () =
  let clock, slo = make "test_slo_backward" in
  clock := 5.0;
  for _ = 1 to 4 do Slo.record slo bad done;
  (* A clock step backwards (NTP, VM migration) must not expire or
     double-count anything: recording continues in the current bucket. *)
  clock := 2.0;
  Slo.record slo bad;
  let r = Slo.report slo in
  check Alcotest.int "nothing expired" 5 r.Slo.r_total;
  clock := 5.0;
  check Alcotest.int "restored clock still sees all" 5
    (Slo.report slo).Slo.r_total

let test_forward_step_clears_window () =
  let clock, slo = make "test_slo_step" in
  for _ = 1 to 10 do Slo.record slo bad done;
  check Alcotest.bool "violating before the step" false (Slo.pass slo);
  (* A jump of at least the whole window means every bucket is stale. *)
  clock := 100.0;
  let r = Slo.report slo in
  check Alcotest.int "everything expired" 0 r.Slo.r_total;
  check Alcotest.bool "empty window passes again" true r.Slo.r_pass;
  (* And the tracker keeps working at the new epoch. *)
  Slo.record slo bad;
  check Alcotest.int "records at new epoch" 1 (Slo.report slo).Slo.r_total

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_expose () =
  let _clock, slo = make "test_slo_expose" in
  for _ = 1 to 9 do Slo.record slo good done;
  Slo.record slo bad;
  Slo.expose slo;
  let out = Metrics.render () in
  check Alcotest.bool "burn gauge" true
    (contains ~needle:"sdb_slo_burn_rate{slo=\"test_slo_expose\"} 1" out);
  check Alcotest.bool "compliance gauge" true
    (contains ~needle:"sdb_slo_compliant{slo=\"test_slo_expose\"} 1" out);
  check Alcotest.bool "objective gauge" true
    (contains ~needle:"sdb_slo_objective_seconds{slo=\"test_slo_expose\"} 0.01" out)

let test_validation () =
  let bad_create f = try ignore (f ()); false with Invalid_argument _ -> true in
  check Alcotest.bool "zero objective refused" true
    (bad_create (fun () ->
         Slo.create ~name:"v1" ~objective_ms:0.0 ~budget:0.1 ()));
  check Alcotest.bool "budget of 1 refused" true
    (bad_create (fun () ->
         Slo.create ~name:"v2" ~objective_ms:10.0 ~budget:1.0 ()));
  check Alcotest.bool "zero buckets refused" true
    (bad_create (fun () ->
         Slo.create ~buckets:0 ~name:"v3" ~objective_ms:10.0 ~budget:0.1 ()))

let () =
  Helpers.run "slo"
    [
      ( "window math",
        [
          Alcotest.test_case "empty window passes" `Quick test_empty_window_passes;
          Alcotest.test_case "burn math" `Quick test_burn_math;
          Alcotest.test_case "failures always burn" `Quick test_failures_always_burn;
          Alcotest.test_case "rotation expires old traffic" `Quick
            test_rotation_expires_old_traffic;
          Alcotest.test_case "backward clock never rotates" `Quick
            test_backward_clock_never_rotates;
          Alcotest.test_case "forward step clears window" `Quick
            test_forward_step_clears_window;
          Alcotest.test_case "expose" `Quick test_expose;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
    ]
