(* Randomized network-fault torture test (the CI `network-chaos` job) —
   the network twin of test_chaos.ml.

   Each round builds a two-replica cell (A the origin, B the peer,
   connected over inproc transports wrapped in the Fault_net decorator
   with a reconnect factory), dials in random drop/duplicate/reorder/
   reset rates plus latency, opens and heals partitions mid-stream, and
   drives a sequenced workload on A with the health monitor running.
   The properties under test are ISSUE 8's acceptance criteria:

   - commits on A never block on the network, whatever the fault mix;
   - A's local state is always the full committed prefix;
   - after the storm ends (faults cleared, partition healed) the
     replicas converge {e on their own} — heartbeats revive the peer
     and the monitor's automatic catch-up drains the backlog; nobody
     calls anti_entropy by hand;
   - never a wedged thread (the CI timeout turns a hang into a failure).

   Usage: test_netchaos.exe [--seed N] [--rounds M] [--report FILE]
   Exit status: 0 all rounds clean, 1 invariant violated. *)

module Mem = Sdb_storage.Mem_fs
module Ns = Sdb_nameserver.Nameserver
module Path = Sdb_nameserver.Name_path
module Rpc = Sdb_rpc.Rpc
module Proto = Sdb_rpc.Ns_protocol
module Fault_net = Sdb_rpc.Fault_net
module Backoff = Sdb_rpc.Backoff
module Replica = Sdb_replica.Replica
module Detector = Sdb_replica.Detector
module Mono = Sdb_util.Mono

let report = Buffer.create 4096

let logf fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string report s;
      Buffer.add_char report '\n')
    fmt

let failures = ref 0

let violation fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      logf "VIOLATION: %s" s;
      Printf.eprintf "VIOLATION: %s\n%!" s)
    fmt

let p s = match Path.of_string s with Ok v -> v | Error e -> failwith e

let key i = p (Printf.sprintf "/net/k%04d" i)
let value i = Printf.sprintf "v%04d" i

(* A committed prefix check on the origin: every update the workload
   acked must be visible locally, partitions notwithstanding. *)
let prefix_ok ns n =
  let ok = ref true in
  for i = 0 to n - 1 do
    if Ns.lookup ns (key i) <> Some (value i) then ok := false
  done;
  !ok

let wait_for ~timeout_s f =
  let deadline = Mono.now_s () +. timeout_s in
  let rec go () =
    if f () then true
    else if Mono.now_s () >= deadline then false
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let fast_health =
  {
    Replica.detector =
      {
        Detector.heartbeat_interval_s = 0.05;
        suspect_after_s = 0.15;
        dead_after_s = 0.6;
      };
    auto_catch_up = true;
    catch_up_backoff =
      { Backoff.initial_s = 0.02; multiplier = 2.0; max_s = 0.25; jitter = true };
    catch_up_budget = Backoff.Budget.unlimited;
  }

let round ~seed r =
  let rng = Random.State.make [| seed; r; 0x0E7 |] in
  let ctl = Fault_net.create ~seed:((seed * 31) + r) () in
  let store_a = Mem.create_store ~seed:((seed * 1000) + r) () in
  let ns_a = Ns.open_exn (Mem.fs store_a) in
  let replica = Replica.create ~id:"a" ns_a in
  let store_b = Mem.create_store ~seed:((seed * 1000) + r + 500) () in
  let ns_b = Ns.open_exn (Mem.fs store_b) in
  let server_threads = ref [] in
  let server_transports = ref [] in
  let fresh () =
    let client_t, server_t = Rpc.Inproc.pair () in
    let thread = Thread.create (fun () -> Proto.serve ns_b server_t) () in
    server_threads := thread :: !server_threads;
    server_transports := server_t :: !server_transports;
    Fault_net.wrap ctl ~peer:"b" client_t
  in
  let client =
    Proto.Client.create ~deadline_s:0.25 ~retry:Rpc.default_retry
      ~retry_budget:(Backoff.Budget.create ~rate_per_s:500.0 ())
      ~reconnect:fresh (fresh ())
  in
  Replica.add_peer replica ~id:"b" client;
  Replica.start_health ~config:fast_health replica;
  (* Dial in this round's weather. *)
  let dial what set lo hi =
    let x = lo +. Random.State.float rng (hi -. lo) in
    set x;
    logf "  %s=%.3f" what x;
    x
  in
  ignore (dial "drop" (Fault_net.set_drop_rate ctl) 0.0 0.12);
  ignore (dial "dup" (Fault_net.set_dup_rate ctl) 0.0 0.10);
  ignore (dial "reorder" (Fault_net.set_reorder_rate ctl) 0.0 0.10);
  ignore (dial "reset-send" (Fault_net.set_fault_rate ctl ~op:`Send) 0.0 0.06);
  ignore (dial "reset-recv" (Fault_net.set_fault_rate ctl ~op:`Recv) 0.0 0.04);
  Fault_net.set_delay ctl ~jitter_s:0.002 0.0;
  logf "round %d.%d" seed r;
  let n = 100 in
  (* One mid-stream full partition, opened at a random update index and
     held for a random wall-clock window — long enough (sometimes past
     [dead_after_s]) for heartbeats and pushes to really hit it. *)
  let part_from = 10 + Random.State.int rng 30 in
  let part_dur = 0.3 +. Random.State.float rng 1.7 in
  let heal_at = ref infinity in
  let worst = ref 0.0 in
  let worst_health = ref Detector.Alive in
  let note_health () =
    match Replica.peers replica with
    | [ x ] ->
      let rank = function
        | Detector.Alive -> 0
        | Detector.Suspect -> 1
        | Detector.Dead -> 2
      in
      if rank x.Replica.health > rank !worst_health then
        worst_health := x.Replica.health
    | _ -> ()
  in
  let deadline = Mono.now_s () +. 60.0 in
  let wedged = ref false in
  let i = ref 0 in
  while (not !wedged) && !i < n do
    if Mono.now_s () > deadline then begin
      violation "round %d.%d: wedged (commit loop overran its deadline)" seed r;
      wedged := true
    end
    else begin
      if !i = part_from then begin
        Fault_net.partition ctl "b";
        heal_at := Mono.now_s () +. part_dur
      end;
      if Mono.now_s () >= !heal_at then begin
        Fault_net.heal ctl "b";
        heal_at := infinity
      end;
      let t0 = Mono.now_s () in
      Replica.set_value replica (key !i) (Some (value !i));
      let dt = Mono.now_s () -. t0 in
      if dt > !worst then worst := dt;
      if dt > 1.0 then
        violation "round %d.%d: commit %d blocked %.3fs on the network" seed r
          !i dt;
      Thread.delay 0.008;
      note_health ();
      incr i
    end
  done;
  (* If the partition outlives the workload, sit it out: this is where
     long partitions push the detector to suspect and then dead. *)
  while !heal_at < infinity && Mono.now_s () < !heal_at do
    Thread.delay 0.05;
    note_health ()
  done;
  if !heal_at < infinity then Fault_net.heal ctl "b";
  if not (prefix_ok ns_a n) then
    violation "round %d.%d: origin lost its own committed prefix" seed r;
  (* Storm over: clean network, full heal.  Convergence must now happen
     on its own — heartbeat revival plus automatic catch-up; no manual
     anti_entropy. *)
  Fault_net.clear ctl;
  let converged =
    wait_for ~timeout_s:30.0 (fun () ->
        String.equal (Replica.digest ns_a) (Replica.digest ns_b))
  in
  let rep =
    match Replica.peers replica with [ x ] -> x | _ -> failwith "one peer"
  in
  logf
    "  worst-commit=%.4fs injected=%d storm-peak=%s peer=%s backlog=%d \
     converged=%b"
    !worst (Fault_net.injected ctl)
    (Detector.state_to_string !worst_health)
    (Detector.state_to_string rep.Replica.health)
    rep.Replica.backlog converged;
  if not converged then
    violation "round %d.%d: replicas did not self-heal after the storm" seed r
  else if not (prefix_ok ns_b n) then
    violation "round %d.%d: peer converged to the wrong state" seed r;
  Replica.shutdown replica;
  List.iter (fun t -> try t.Rpc.Transport.close () with _ -> ()) !server_transports;
  List.iter Thread.join !server_threads;
  Ns.close ns_a;
  Ns.close ns_b

let () =
  let seed = ref 1
  and rounds = ref 8
  and report_file = ref "netchaos-report.txt" in
  let rec parse = function
    | "--seed" :: v :: rest ->
      seed := int_of_string v;
      parse rest
    | "--rounds" :: v :: rest ->
      rounds := int_of_string v;
      parse rest
    | "--report" :: v :: rest ->
      report_file := v;
      parse rest
    | [] -> ()
    | arg :: _ ->
      Printf.eprintf
        "usage: test_netchaos [--seed N] [--rounds M] [--report FILE]\n";
      Printf.eprintf "unknown argument: %s\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  logf "netchaos: seed=%d rounds=%d" !seed !rounds;
  for r = 1 to !rounds do
    round ~seed:!seed r
  done;
  let oc = open_out !report_file in
  output_string oc (Buffer.contents report);
  close_out oc;
  if !failures > 0 then begin
    Printf.eprintf "netchaos: %d violation(s); report in %s\n" !failures
      !report_file;
    exit 1
  end
  else Printf.printf "netchaos: seed=%d, %d rounds clean\n" !seed !rounds
