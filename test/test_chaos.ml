(* Randomized disk-fault torture test (the CI `chaos` job).

   Each round wraps an in-memory store in the fault-injecting
   decorator, dials in random read/write/fsync fault rates, an
   occasional byte-capacity budget and occasional silent media damage,
   then drives a self-verifying sequenced workload with interleaved
   checkpoints and scrubs.  The property under test is the §4 failure
   taxonomy: every injected fault must end in one of

   - the update committing and surviving reopen,
   - a clean reject (structured I/O error, engine healthy, no partial
     effects),
   - read-only Degraded mode that exits by itself once space returns,
   - or Poisoned — after which a reopen recovers a clean prefix.

   Never a silent wrong answer, and never a stuck lock (a leak would
   deadlock the next operation; the CI job's timeout converts that
   into a failure).

   Usage: test_chaos.exe [--seed N] [--rounds M] [--report FILE]
   Exit status: 0 all rounds clean, 1 invariant violated. *)

module P = Sdb_pickle.Pickle
module Fs = Sdb_storage.Fs
module Mem = Sdb_storage.Mem_fs
module Fault = Sdb_storage.Fault_fs
module Store = Sdb_checkpoint.Checkpoint_store

module KV = struct
  type state = (string, string) Hashtbl.t
  type update = Set of string * string

  let name = "chaos-kv"
  let codec_state = P.hashtbl P.string P.string

  let codec_update =
    P.conv ~name:"chaos-kv.update"
      (fun (Set (k, v)) -> (k, v))
      (fun (k, v) -> Set (k, v))
      (P.pair P.string P.string)

  let init () = Hashtbl.create 16

  let apply st (Set (k, v)) =
    Hashtbl.replace st k v;
    st
end

module Db = Smalldb.Make (KV)

let key i = Printf.sprintf "k%04d" i
let value i = Printf.sprintf "v%04d" i

(* The report: one line per event, dumped to a file for the CI
   artifact and to stderr on failure. *)
let report = Buffer.create 4096

let logf fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string report s;
      Buffer.add_char report '\n')
    fmt

let failures = ref 0

let violation fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      logf "VIOLATION: %s" s;
      Printf.eprintf "VIOLATION: %s\n%!" s)
    fmt

(* Clean-prefix check on the live state. *)
let prefix_of db =
  Db.query db (fun st ->
      let n = Hashtbl.length st in
      let ok = ref true in
      for i = 0 to n - 1 do
        if Hashtbl.find_opt st (key i) <> Some (value i) then ok := false
      done;
      if !ok then Some n else None)

let describe = function
  | Fs.Io_error _ as e -> Fs.describe_exn e
  | Fs.No_space _ as e -> Fs.describe_exn e
  | Smalldb.Degraded r -> "degraded: " ^ r
  | Smalldb.Poisoned -> "poisoned"
  | e -> Printexc.to_string e

let round ~seed r =
  let rng = Random.State.make [| seed; r; 0xC4A05 |] in
  let store = Mem.create_store ~seed:((seed * 1000) + r) () in
  let ctl, ffs = Fault.wrap ~seed:((seed * 7) + r) (Mem.fs store) in
  let n = 40 in
  (* Alternate rounds run through the group-commit coordinator: the
     workload is single-threaded, so every update is a group of one —
     same guarantees, different commit path under fault fire. *)
  let config =
    { Smalldb.default_config with group_commit = r mod 2 = 1 }
  in
  logf "round %d.%d%s" seed r (if config.Smalldb.group_commit then " (grouped)" else "");
  match Db.open_ ~config ffs with
  | Error e ->
    (* Can only happen if creation itself was faulted — not possible
       here since faults are not armed yet. *)
    violation "round %d.%d: fresh open failed: %s" seed r e
  | Ok db ->
    (* Dial in this round's fault schedule. *)
    let rate op lo hi =
      let x = lo +. Random.State.float rng (hi -. lo) in
      Fault.set_fault_rate ctl ~op x;
      x
    in
    let wr = rate `Write 0.0 0.08 in
    let sr = rate `Sync 0.0 0.04 in
    let rr = rate `Read 0.0 0.04 in
    let capped =
      Random.State.int rng 3 = 0
      && begin
           Fault.set_capacity ctl (Some (Mem.total_bytes store + 400));
           true
         end
    in
    logf "  rates w=%.3f s=%.3f r=%.3f capped=%b" wr sr rr capped;
    let committed = ref 0 in
    let poisoned = ref false in
    (* Injected silent rot that no completed scrub has repaired yet.
       While it is outstanding, committed entries can genuinely be
       destroyed on disk, and a refusing recovery ("restore from a
       replica") is a sanctioned outcome — that is the §4 story, not a
       harness failure. *)
    let rot_outstanding = ref false in
    let i = ref 0 in
    let deadline = Unix.gettimeofday () +. 30. in
    while (not !poisoned) && !i < n do
      if Unix.gettimeofday () > deadline then begin
        violation "round %d.%d: wedged (possible lock leak)" seed r;
        poisoned := true (* abandon the round *)
      end
      else begin
        (* Occasionally interleave a checkpoint or a repairing scrub. *)
        (match Random.State.int rng 10 with
        | 0 -> (
          match Db.checkpoint db with
          | () -> ()
          | exception (Fs.Io_error _ | Fs.No_space _ | Smalldb.Degraded _) -> ()
          | exception Smalldb.Poisoned -> poisoned := true)
        | 1 -> (
          (* Silent rot on a random current-generation file, then a
             repairing scrub; with read faults active the scrub may
             also see injected damage — both are its job to survive. *)
          (if Random.State.int rng 2 = 0 then
             let gen = (Db.stats db).Smalldb.generation in
             let file = Store.log_file gen in
             let size = Mem.total_bytes store in
             if size > 64 then (
               try
                 Mem.damage store ~file ~offset:(24 + Random.State.int rng 64)
                   ~len:4;
                 rot_outstanding := true
               with _ -> ()));
          match Db.scrub ~repair:true db with
          | (rep : Smalldb.scrub_report) ->
            if rep.Smalldb.repaired || rep.Smalldb.findings = [] then
              rot_outstanding := false
          | exception (Fs.Io_error _ | Fs.No_space _) -> ()
          | exception Smalldb.Poisoned -> poisoned := true)
        | _ -> ());
        if not !poisoned then begin
          match Db.update db (KV.Set (key !i, value !i)) with
          | () ->
            committed := !i + 1;
            incr i
          | exception Fs.Io_error _ -> () (* clean reject: retry *)
          | exception Smalldb.Degraded _ ->
            (* Space "turns up": drop the cap and let the engine exit
               by itself on a later retry. *)
            Fault.set_capacity ctl None;
            Thread.delay 0.02
          | exception Smalldb.Poisoned -> poisoned := true
        end
      end
    done;
    logf "  committed=%d poisoned=%b injected=%d" !committed !poisoned
      (Fault.injected ctl);
    (* The engine's own answer must be honest before reopen. *)
    if not !poisoned then begin
      (match Db.health db with
      | `Healthy | `Degraded _ -> ()
      | `Poisoned ->
        violation "round %d.%d: poisoned without raising" seed r);
      match prefix_of db with
      | Some live when live = !committed -> ()
      | Some live ->
        violation "round %d.%d: live state %d != committed %d" seed r live
          !committed
      | None -> violation "round %d.%d: live state not a clean prefix" seed r
    end;
    (* Disarm everything and verify durability through a fresh open on
       the raw (fault-free) store. *)
    Fault.clear ctl;
    (try Db.close db with _ -> ());
    (match Db.open_ (Mem.fs store) with
    | Error e ->
      (* Refusal is only sanctioned when unrepaired rot could have put
         interior damage in the log; otherwise recovery must work. *)
      if !rot_outstanding then logf "  refused (outstanding rot): %s" e
      else violation "round %d.%d: recovery failed: %s" seed r e
    | Ok db2 ->
      (match prefix_of db2 with
      | None -> violation "round %d.%d: recovered state not a clean prefix" seed r
      | Some got ->
        (* Everything acked must survive; at most the one in-flight
           update beyond it may also have become durable.  Unrepaired
           rot may legitimately have destroyed a committed tail, but
         the result must still be a clean prefix. *)
        if got > !committed + 1 then
          violation "round %d.%d: phantom updates (%d > %d + 1)" seed r got
            !committed
        else if got < !committed && not !rot_outstanding then
          violation "round %d.%d: recovered %d, committed %d" seed r got
            !committed);
      (* A repairing scrub followed by a plain scrub must leave the
         store clean — no fault injection active now. *)
      (match Db.scrub ~repair:true db2 with
      | (_ : Smalldb.scrub_report) -> (
        match Db.scrub db2 with
        | rep ->
          if rep.Smalldb.findings <> [] then
            violation "round %d.%d: %d findings after repair" seed r
              (List.length rep.Smalldb.findings)
        | exception e ->
          violation "round %d.%d: post-repair scrub raised %s" seed r
            (describe e))
      | exception e ->
        violation "round %d.%d: clean-store scrub raised %s" seed r (describe e));
      Db.close db2)

let () =
  let seed = ref 1 and rounds = ref 25 and report_file = ref "chaos-report.txt" in
  let rec parse = function
    | "--seed" :: v :: rest ->
      seed := int_of_string v;
      parse rest
    | "--rounds" :: v :: rest ->
      rounds := int_of_string v;
      parse rest
    | "--report" :: v :: rest ->
      report_file := v;
      parse rest
    | [] -> ()
    | arg :: _ ->
      Printf.eprintf "usage: test_chaos [--seed N] [--rounds M] [--report FILE]\n";
      Printf.eprintf "unknown argument: %s\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  logf "chaos: seed=%d rounds=%d" !seed !rounds;
  for r = 1 to !rounds do
    round ~seed:!seed r
  done;
  let oc = open_out !report_file in
  output_string oc (Buffer.contents report);
  close_out oc;
  if !failures > 0 then begin
    Printf.eprintf "chaos: %d violation(s); report in %s\n" !failures !report_file;
    exit 1
  end
  else Printf.printf "chaos: seed=%d, %d rounds clean\n" !seed !rounds
