(* Systematic crash-point sweeps (§4's transient failures, exhaustively).

   The workload performs sequenced updates with periodic checkpoints on
   a simulated store; we crash at every k-th mutating disk operation,
   in both Clean and Torn modes, recover, and check the two §3/§4
   guarantees:

   - every update whose commit (log fsync) completed is present after
     recovery;
   - the recovered state is a clean prefix: no partial, reordered, or
     phantom updates. *)

module Fs = Sdb_storage.Fs
module Mem = Sdb_storage.Mem_fs
open Helpers

let check = Alcotest.check

type outcome = { committed : int; crashed : bool }

(* Run [n] sequenced updates, checkpointing every [ckpt_every] (0 =
   never), with a crash budget of [k] ops. *)
let run_workload ?config ~seed ~n ~ckpt_every ~crash_at ~mode () =
  let store = Mem.create_store ~seed () in
  let fs = Mem.fs store in
  let committed = ref 0 in
  let crashed = ref false in
  (try
     let db = KVDb.open_exn ?config fs in
     Mem.set_crash_after store ~ops:crash_at ~mode;
     for i = 0 to n - 1 do
       KVDb.update db (sequenced_update i);
       incr committed;
       if ckpt_every > 0 && (i + 1) mod ckpt_every = 0 then KVDb.checkpoint db
     done;
     Mem.disarm_crash store
   with Mem.Crash -> crashed := true);
  Mem.disarm_crash store;
  (store, fs, { committed = !committed; crashed = !crashed })

let recover_and_verify ?config ~what ~outcome fs =
  match KVDb.open_ ?config fs with
  | Error e -> Alcotest.fail (Printf.sprintf "%s: recovery failed: %s" what e)
  | Ok db ->
    let n = sequenced_prefix db in
    if n < outcome.committed then
      Alcotest.fail
        (Printf.sprintf "%s: lost committed updates (%d < %d)" what n outcome.committed);
    if n > outcome.committed + 1 then
      Alcotest.fail
        (Printf.sprintf "%s: phantom updates (%d > %d + 1)" what n outcome.committed);
    KVDb.close db;
    n

(* Sweep every crash point of a fixed workload.  [seed_base] offsets
   the store RNG so torn sweeps can be repeated under independent
   page-fate draws. *)
let sweep ?(seed_base = 0) ~mode ~ckpt_every ~config () =
  (* First, measure how many ops the full workload performs. *)
  let store, _, _ =
    run_workload ?config ~seed:0 ~n:12 ~ckpt_every ~crash_at:100000 ~mode ()
  in
  let total_ops = Mem.mutating_ops store in
  Alcotest.check Alcotest.bool "workload does work" true (total_ops > 20);
  for k = 1 to total_ops do
    let _, fs, outcome =
      run_workload ?config ~seed:(seed_base + k) ~n:12 ~ckpt_every ~crash_at:k
        ~mode ()
    in
    let what = Printf.sprintf "crash@%d/%s/seeds+%d" k (match mode with
      | Mem.Clean -> "clean" | Mem.Torn -> "torn") seed_base
    in
    if outcome.crashed then ignore (recover_and_verify ?config ~what ~outcome fs)
    else
      (* Budget outlived the workload: full state must be present. *)
      ignore (recover_and_verify ?config ~what ~outcome fs)
  done

(* Torn page fates are drawn from the store RNG, so each torn sweep
   runs under several independent seed bases — one draw proves little
   about the space of partial-page outcomes. *)
let torn_seed_bases = [ 0; 10_000; 20_000 ]
let torn_sweep ~ckpt_every ~config () =
  List.iter
    (fun seed_base -> sweep ~seed_base ~mode:Mem.Torn ~ckpt_every ~config ())
    torn_seed_bases

let test_sweep_clean_no_ckpt () = sweep ~mode:Mem.Clean ~ckpt_every:0 ~config:None ()
let test_sweep_torn_no_ckpt () = torn_sweep ~ckpt_every:0 ~config:None ()
let test_sweep_clean_ckpt () = sweep ~mode:Mem.Clean ~ckpt_every:4 ~config:None ()
let test_sweep_torn_ckpt () = torn_sweep ~ckpt_every:4 ~config:None ()

let test_sweep_torn_ckpt_retained () =
  torn_sweep ~ckpt_every:3
    ~config:(Some { Smalldb.default_config with retain_previous = true })
    ()

(* Crash during the very first open (store initialization). *)
let test_crash_during_creation () =
  for k = 1 to 12 do
    List.iter
      (fun mode ->
        let store = Mem.create_store ~seed:(1000 + k) () in
        let fs = Mem.fs store in
        Mem.set_crash_after store ~ops:k ~mode;
        (match KVDb.open_ fs with
        | Ok db ->
          Mem.disarm_crash store;
          KVDb.close db
        | Error e -> Alcotest.fail ("creation failed without crash: " ^ e)
        | exception Mem.Crash -> ());
        Mem.disarm_crash store;
        (* Whatever happened, a later open must succeed with empty state. *)
        match KVDb.open_ fs with
        | Ok db -> check Alcotest.int "empty" 0 (sequenced_prefix db)
        | Error e -> Alcotest.fail (Printf.sprintf "k=%d: reopen failed: %s" k e))
      [ Mem.Clean; Mem.Torn ]
  done

(* Crash during recovery itself: after a first crash, crash again while
   reopening, then verify a third open still lands on a clean prefix. *)
let test_crash_during_recovery () =
  List.iter
    (fun mode ->
      for k = 1 to 25 do
        let _, fs, outcome =
          run_workload ~seed:(2000 + k) ~n:10 ~ckpt_every:4 ~crash_at:k ~mode ()
        in
        if outcome.crashed then begin
          (* Second crash during the recovery open.  Recovery performs
             few mutating ops (cleanup, truncation), so small budgets. *)
          let store2 =
            (* Reach the same store through a fresh fs view: fs is the
               same underlying store object. *)
            ()
          in
          ignore store2;
          (match
             let db = KVDb.open_exn fs in
             KVDb.close db
           with
          | () -> ()
          | exception Mem.Crash -> ());
          let what = Printf.sprintf "double-crash k=%d" k in
          ignore (recover_and_verify ~what ~outcome fs)
        end
      done)
    [ Mem.Clean; Mem.Torn ]

(* Crash points inside a checkpoint must never lose pre-checkpoint
   data, even when the previous generation is being deleted. *)
let test_crash_inside_checkpoint () =
  List.iter
    (fun mode ->
      let rec go k any =
        let store = Mem.create_store ~seed:(3000 + k) () in
        let fs = Mem.fs store in
        let db = KVDb.open_exn fs in
        for i = 0 to 7 do
          KVDb.update db (sequenced_update i)
        done;
        let crashed = ref false in
        (try
           Mem.set_crash_after store ~ops:k ~mode;
           KVDb.checkpoint db;
           Mem.disarm_crash store
         with Mem.Crash -> crashed := true);
        Mem.disarm_crash store;
        if !crashed then begin
          (match KVDb.open_ fs with
          | Error e -> Alcotest.fail (Printf.sprintf "ckpt crash@%d: %s" k e)
          | Ok db2 ->
            check Alcotest.int (Printf.sprintf "ckpt crash@%d state" k) 8
              (sequenced_prefix db2);
            KVDb.close db2);
          go (k + 1) true
        end
        else if not any then Alcotest.fail "checkpoint sweep never crashed"
      in
      go 1 false)
    [ Mem.Clean; Mem.Torn ]

(* Torn-group sweep (§4d): a group flush lands as one contiguous
   multi-frame write, and a crash may leave any byte prefix of it
   durable.  For every byte cut inside the log tail — including every
   point inside the 3-member group at the end — recovery must land on
   exactly the whole-frame prefix and reopen clean. *)
let test_torn_group_sweep () =
  let gconfig = Some { Smalldb.default_config with group_commit = true } in
  (* Single-threaded and seed-fixed, so every build writes the same
     log bytes: three solo commits, then one 3-member group. *)
  let build () =
    let store = Mem.create_store ~seed:7000 () in
    let fs = Mem.fs store in
    let db = KVDb.open_exn ?config:gconfig fs in
    for i = 0 to 2 do
      KVDb.update db (sequenced_update i)
    done;
    KVDb.update_batch db (List.init 3 (fun i -> sequenced_update (3 + i)));
    KVDb.close db;
    fs
  in
  let log = "logfile0" in
  let data = Fs.read_file (build ()) log in
  (* Frame boundaries, straight from the length prefixes. *)
  let u32le s off =
    Char.code s.[off]
    lor (Char.code s.[off + 1] lsl 8)
    lor (Char.code s.[off + 2] lsl 16)
    lor (Char.code s.[off + 3] lsl 24)
  in
  let header = Sdb_wal.Wal.header_size in
  let rec frame_ends off acc =
    if off >= String.length data then List.rev acc
    else
      let e = off + Sdb_wal.Wal.frame_overhead + u32le data off in
      frame_ends e (e :: acc)
  in
  let ends = frame_ends header [] in
  check Alcotest.int "six frames" 6 (List.length ends);
  check Alcotest.int "frames cover the file" (String.length data)
    (List.nth ends 5);
  for cut = header to String.length data - 1 do
    let fs = build () in
    fs.Fs.truncate log cut;
    let expected = List.length (List.filter (fun e -> e <= cut) ends) in
    match KVDb.open_ ?config:gconfig fs with
    | Error e -> Alcotest.fail (Printf.sprintf "cut %d: reopen failed: %s" cut e)
    | Ok db ->
      check Alcotest.int
        (Printf.sprintf "cut %d: exactly the durable whole-frame prefix" cut)
        expected (sequenced_prefix db);
      (* The torn tail is truncated; commits resume cleanly. *)
      KVDb.update db (sequenced_update expected);
      check Alcotest.int (Printf.sprintf "cut %d: usable" cut) (expected + 1)
        (sequenced_prefix db);
      KVDb.close db
  done

(* Many-seed randomized torn sweep: larger state, random crash points. *)
let test_randomized_torn_storm () =
  let rng = Sdb_util.Rng.create ~seed:77 in
  for round = 1 to 30 do
    let crash_at = 1 + Sdb_util.Rng.int rng 120 in
    let ckpt_every = Sdb_util.Rng.int rng 6 in
    let _, fs, outcome =
      run_workload ~seed:(4000 + round) ~n:25 ~ckpt_every ~crash_at ~mode:Mem.Torn ()
    in
    let what = Printf.sprintf "storm round %d (crash@%d ckpt@%d)" round crash_at ckpt_every in
    ignore (recover_and_verify ~what ~outcome fs)
  done

(* ------------------------------------------------------------------ *)
(* Fault-schedule sweeps (§4's hard errors, exhaustively).

   Unlike a crash, an injected I/O fault leaves the process running, so
   the property is about the engine's *answer*: every schedule must end
   in one of the sanctioned outcomes — the update committed and
   survives reopen, was cleanly rejected with the engine healthy and no
   partial effects, or the engine reports itself Degraded/Poisoned.
   Never a silent wrong answer; and the post-fault query/update below
   double as a leaked-lock check (they would deadlock on one). *)

module Fault = Sdb_storage.Fault_fs

let test_fault_schedule_sweep () =
  List.iter
    (fun (op, op_name) ->
      let rec at k =
        let store = Mem.create_store ~seed:(5000 + k) () in
        let ctl, ffs = Fault.wrap ~seed:k (Mem.fs store) in
        let db = KVDb.open_exn ffs in
        Fault.fail_nth ctl ~op ~n:k ();
        let applied = ref 0 in
        let faulted =
          try
            for i = 0 to 9 do
              KVDb.update db (sequenced_update i);
              incr applied;
              if i = 4 then KVDb.checkpoint db
            done;
            false
          with Fs.Io_error _ -> true
        in
        Fault.clear ctl;
        let what = Printf.sprintf "%s fault@%d" op_name k in
        (match KVDb.health db with
        | `Healthy ->
          (* No silent wrong answer: memory is exactly the committed
             prefix, and a clean reject leaves the engine updatable. *)
          check Alcotest.int (what ^ " prefix") !applied (sequenced_prefix db);
          if faulted then begin
            KVDb.update db (sequenced_update !applied);
            incr applied
          end;
          KVDb.close db
        | `Poisoned -> KVDb.close db
        | `Degraded _ -> Alcotest.fail (what ^ ": unexpected degraded"));
        (* Whatever happened in memory, the disk must recover to a clean
           prefix containing every committed update. *)
        ignore
          (recover_and_verify ~what
             ~outcome:{ committed = !applied; crashed = faulted }
             (Mem.fs store));
        if faulted then at (k + 1)
      in
      at 1)
    [ (`Write, "write"); (`Sync, "fsync") ]

(* Capacity sweep: run the workload under every disk-size budget from
   tiny to ample.  The engine must either finish, or park itself in
   read-only Degraded mode with the committed prefix intact — and once
   space turns up it must recover on its own and finish the workload. *)
let test_capacity_sweep () =
  let full =
    let store = Mem.create_store ~seed:6000 () in
    let db = KVDb.open_exn (Mem.fs store) in
    for i = 0 to 9 do
      KVDb.update db (sequenced_update i);
      if i = 4 then KVDb.checkpoint db
    done;
    KVDb.close db;
    Mem.total_bytes store
  in
  let degraded_seen = ref 0 in
  let step = max 7 (full / 40) in
  let cap = ref 1 in
  while !cap <= full do
    let store = Mem.create_store ~seed:(6000 + !cap) () in
    let fs = Mem.fs store in
    Mem.set_capacity store (Some !cap);
    (match KVDb.open_ fs with
    | exception Fs.No_space _ -> () (* too small to even create the store *)
    | Error _ -> ()
    | Ok db ->
      let applied = ref 0 in
      let stopped =
        try
          for i = 0 to 9 do
            KVDb.update db (sequenced_update i);
            incr applied;
            if i = 4 then KVDb.checkpoint db
          done;
          false
        with
        | Smalldb.Degraded _ ->
          incr degraded_seen;
          true
        | Fs.No_space _ -> true (* a cleanly refused checkpoint *)
      in
      let what = Printf.sprintf "capacity %d" !cap in
      (* Read-only at worst: the committed prefix is served unharmed. *)
      check Alcotest.int (what ^ " prefix") !applied (sequenced_prefix db);
      if stopped then begin
        (* Space turns up; the engine must exit degraded mode by itself
           (checkpointing to reclaim the log) and finish the workload. *)
        Mem.set_capacity store None;
        let deadline = Unix.gettimeofday () +. 5. in
        let i = ref !applied in
        while !i <= 9 do
          match KVDb.update db (sequenced_update !i) with
          | () -> incr i
          | exception Smalldb.Degraded _ ->
            if Unix.gettimeofday () > deadline then
              Alcotest.fail (what ^ ": never exited degraded mode");
            Thread.delay 0.02
        done
      end;
      check Alcotest.int (what ^ " finished") 10 (sequenced_prefix db);
      (match KVDb.health db with
      | `Healthy -> ()
      | _ -> Alcotest.fail (what ^ ": unhealthy at end"));
      KVDb.close db);
    cap := !cap + step
  done;
  Alcotest.check Alcotest.bool "sweep exercised degraded mode" true
    (!degraded_seen > 0)

(* Model-based property: any interleaving of updates, deletes,
   checkpoints and clean restarts leaves the store equal to a Hashtbl
   model — the engine's replay path is exercised at arbitrary points in
   arbitrary histories, not just at test-chosen ones. *)
type cmd = CUpdate of int * int | CDel of int | CCheckpoint | CReopen

let gen_cmd =
  QCheck2.Gen.(
    frequency
      [
        (6, map2 (fun k v -> CUpdate (k, v)) (0 -- 20) (0 -- 999));
        (2, map (fun k -> CDel k) (0 -- 20));
        (1, pure CCheckpoint);
        (2, pure CReopen);
      ])

let prop_engine_matches_model =
  Helpers.qtest ~count:80 "engine matches model under random histories"
    QCheck2.Gen.(list_size (0 -- 40) gen_cmd)
    (fun cmds ->
      let store = Mem.create_store ~seed:99 () in
      let fs = Mem.fs store in
      let model : (string, string) Hashtbl.t = Hashtbl.create 16 in
      let db = ref (KVDb.open_exn fs) in
      let agree () =
        KVDb.query !db (fun st ->
            Hashtbl.length st = Hashtbl.length model
            && Hashtbl.fold
                 (fun k v acc -> acc && Hashtbl.find_opt st k = Some v)
                 model true)
      in
      let ok =
        List.for_all
          (fun cmd ->
            (match cmd with
            | CUpdate (k, v) ->
              let key = Printf.sprintf "k%02d" k and value = string_of_int v in
              Hashtbl.replace model key value;
              KVDb.update !db (KV.Set (key, value))
            | CDel k ->
              let key = Printf.sprintf "k%02d" k in
              Hashtbl.remove model key;
              KVDb.update !db (KV.Del key)
            | CCheckpoint -> KVDb.checkpoint !db
            | CReopen ->
              KVDb.close !db;
              db := KVDb.open_exn fs);
            agree ())
          cmds
      in
      KVDb.close !db;
      ok)

let () =
  Helpers.run "crash"
    [
      ( "sweeps",
        [
          Alcotest.test_case "clean, no checkpoints" `Quick test_sweep_clean_no_ckpt;
          Alcotest.test_case "torn, no checkpoints" `Quick test_sweep_torn_no_ckpt;
          Alcotest.test_case "clean, with checkpoints" `Quick test_sweep_clean_ckpt;
          Alcotest.test_case "torn, with checkpoints" `Quick test_sweep_torn_ckpt;
          Alcotest.test_case "torn, checkpoints, retention" `Quick
            test_sweep_torn_ckpt_retained;
          Alcotest.test_case "torn group, every byte cut" `Quick
            test_torn_group_sweep;
        ] );
      ( "fault-schedules",
        [
          Alcotest.test_case "write and fsync fault sweep" `Quick
            test_fault_schedule_sweep;
          Alcotest.test_case "capacity sweep" `Quick test_capacity_sweep;
        ] );
      ("model", [ prop_engine_matches_model ]);
      ( "edges",
        [
          Alcotest.test_case "crash during creation" `Quick test_crash_during_creation;
          Alcotest.test_case "crash during recovery" `Quick test_crash_during_recovery;
          Alcotest.test_case "crash inside checkpoint" `Quick test_crash_inside_checkpoint;
          Alcotest.test_case "randomized torn storm" `Quick test_randomized_torn_storm;
        ] );
    ]
