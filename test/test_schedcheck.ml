(* Schedule-exploration suite: the recursive-read deadlock is
   reproduced on the legacy gate and proven gone on the shipped
   protocol; the other engine critical sections pass their bounded
   interleaving spaces exhaustively; and the harness itself is checked
   to still catch a seeded bug and to be deterministic. *)

module Sched = Sdb_schedcheck.Schedcheck
module Scen = Sdb_schedcheck.Scenarios

let assert_passed name outcome =
  match outcome with
  | Sched.Passed { executions } ->
    Printf.printf "%s: %d schedules\n%!" name executions;
    executions
  | o -> Alcotest.failf "%s did not pass:\n%s" name (Sched.pp_outcome o)

(* --- the regression: the pre-fix gate deadlocks, replayably ------- *)

let test_legacy_deadlock () =
  match Sched.explore (Scen.recursive_read ~legacy:true) with
  | Sched.Deadlocked r ->
    (* Both threads must be stuck: the reader parked behind the pending
       upgrade, the upgrader draining the reader. *)
    Alcotest.(check int) "both threads blocked" 2 (List.length r.Sched.r_blocked);
    (* The schedule is a reproducible artifact: replaying it must hit
       the same deadlock. *)
    (match Sched.replay (Scen.recursive_read ~legacy:true) ~schedule:r.Sched.r_schedule with
    | Sched.Deadlocked r', _ ->
      Alcotest.(check (list int))
        "replay follows the same schedule" r.Sched.r_schedule r'.Sched.r_schedule
    | o, _ ->
      Alcotest.failf "replay did not deadlock:\n%s" (Sched.pp_outcome o))
  | o ->
    Alcotest.failf
      "legacy recursive read should deadlock under some schedule:\n%s"
      (Sched.pp_outcome o)

let test_fixed_passes () =
  let n = assert_passed "recursive_read(fixed)"
      (Sched.explore (Scen.recursive_read ~legacy:false))
  in
  Alcotest.(check bool) "more than one interleaving explored" true (n > 1)

(* --- the other critical sections, exhaustively -------------------- *)

let test_fresh_reader_gate () =
  ignore (assert_passed "fresh_reader_gate" (Sched.explore Scen.fresh_reader_gate))

let test_upgrade_vs_readers () =
  ignore
    (assert_passed "upgrade_vs_readers(2)"
       (Sched.explore (Scen.upgrade_vs_readers ~readers:2)))

let test_group_commit () =
  ignore (assert_passed "group_commit(2)" (Sched.explore (Scen.group_commit ~updaters:2)));
  ignore (assert_passed "group_commit(3)" (Sched.explore (Scen.group_commit ~updaters:3)))

let test_replica_outbox () =
  ignore
    (assert_passed "replica_outbox(3,1)"
       (Sched.explore (Scen.replica_outbox ~pushes:3 ~capacity:1)));
  ignore
    (assert_passed "replica_outbox(3,2)"
       (Sched.explore (Scen.replica_outbox ~pushes:3 ~capacity:2)))

let test_failure_detector () =
  (* Mixed outcomes around aging ticks: the revive/demote rules must
     hold in every interleaving of probe completion vs. ticker. *)
  ignore
    (assert_passed "failure_detector(ok,fail)"
       (Sched.explore (Scen.failure_detector ~probes:[ true; false ])));
  ignore
    (assert_passed "failure_detector(fail,ok)"
       (Sched.explore (Scen.failure_detector ~probes:[ false; true ])));
  ignore
    (assert_passed "failure_detector(fail,fail)"
       (Sched.explore (Scen.failure_detector ~probes:[ false; false ])))

(* --- epoch-published snapshots (lock-free read path) --------------- *)

let test_epoch_readers () =
  ignore
    (assert_passed "epoch_readers(1)"
       (Sched.explore (Scen.epoch_readers ~publishes:1)));
  ignore
    (assert_passed "epoch_readers(2)"
       (Sched.explore (Scen.epoch_readers ~publishes:2)))

let test_epoch_shared_slot () =
  ignore
    (assert_passed "epoch_shared_slot"
       (Sched.explore ~max_schedules:2_000_000 Scen.epoch_shared_slot))

let mentions ~sub text =
  let n = String.length sub and m = String.length text in
  let rec at i = i + n <= m && (String.sub text i n = sub || at (i + 1)) in
  at 0

let assert_caught name make ~mentioning =
  match Sched.explore make with
  | Sched.Violated { exn_text; report } ->
    Alcotest.(check bool)
      (name ^ ": the violation names the bug") true
      (List.exists (fun sub -> mentions ~sub exn_text) mentioning);
    (* The failing schedule is a reproducible artifact. *)
    (match Sched.replay make ~schedule:report.Sched.r_schedule with
    | Sched.Violated _, _ -> ()
    | o, _ -> Alcotest.failf "%s: replay did not violate:\n%s" name (Sched.pp_outcome o))
  | o -> Alcotest.failf "%s must be caught:\n%s" name (Sched.pp_outcome o)

let test_epoch_broken_reclaim () =
  assert_caught "epoch_broken_reclaim" Scen.epoch_broken_reclaim
    ~mentioning:[ "use-after-retire" ]

let test_epoch_broken_mutation () =
  assert_caught "epoch_broken_mutation" Scen.epoch_broken_mutation
    ~mentioning:[ "torn read" ]

(* --- detector of the detector ------------------------------------- *)

let test_broken_writer_caught () =
  match Sched.explore Scen.upgrade_vs_readers_broken with
  | Sched.Violated { exn_text; report } ->
    Alcotest.(check bool)
      "the violation names the torn read" true
      (let mentions sub =
         let n = String.length sub and m = String.length exn_text in
         let rec at i = i + n <= m && (String.sub exn_text i n = sub || at (i + 1)) in
         at 0
       in
       mentions "torn read" || mentions "odd intermediate");
    (* And it too replays deterministically. *)
    (match Sched.replay Scen.upgrade_vs_readers_broken ~schedule:report.Sched.r_schedule with
    | Sched.Violated _, _ -> ()
    | o, _ -> Alcotest.failf "replay did not violate:\n%s" (Sched.pp_outcome o))
  | o ->
    Alcotest.failf
      "mutation under Update without upgrade must be caught:\n%s"
      (Sched.pp_outcome o)

(* --- harness behavior --------------------------------------------- *)

let test_deterministic () =
  let once () = Sched.explore (Scen.group_commit ~updaters:2) in
  match (once (), once ()) with
  | Sched.Passed { executions = a }, Sched.Passed { executions = b } ->
    Alcotest.(check int) "same schedule count on re-run" a b
  | o, _ -> Alcotest.failf "expected Passed:\n%s" (Sched.pp_outcome o)

let test_schedule_bound () =
  match Sched.explore ~max_schedules:1 (Scen.recursive_read ~legacy:false) with
  | Sched.Schedule_bound_exceeded { executions } ->
    Alcotest.(check int) "stopped at the bound" 1 executions
  | o -> Alcotest.failf "expected Schedule_bound_exceeded:\n%s" (Sched.pp_outcome o)

let () =
  Alcotest.run "schedcheck"
    [
      ( "regression",
        [
          Alcotest.test_case "legacy recursive read deadlocks (replayable)" `Quick
            test_legacy_deadlock;
          Alcotest.test_case "fixed protocol passes exhaustively" `Quick
            test_fixed_passes;
        ] );
      ( "critical-sections",
        [
          Alcotest.test_case "fresh reader gated during drain" `Quick
            test_fresh_reader_gate;
          Alcotest.test_case "upgrade vs readers: no torn reads" `Quick
            test_upgrade_vs_readers;
          Alcotest.test_case "group commit: seal/flush/wake" `Quick
            test_group_commit;
          Alcotest.test_case "replica outbox hand-off" `Quick test_replica_outbox;
          Alcotest.test_case "failure detector: revive only by heartbeat" `Quick
            test_failure_detector;
        ] );
      ( "epoch",
        [
          Alcotest.test_case "reader vs publish/retire/reclaim" `Quick
            test_epoch_readers;
          Alcotest.test_case "shared slot: counted registration" `Quick
            test_epoch_shared_slot;
          Alcotest.test_case "unsafe reclaim is caught (use-after-retire)" `Quick
            test_epoch_broken_reclaim;
          Alcotest.test_case "in-place mutation is caught (torn read)" `Quick
            test_epoch_broken_mutation;
        ] );
      ( "harness",
        [
          Alcotest.test_case "seeded bug is caught" `Quick test_broken_writer_caught;
          Alcotest.test_case "exploration is deterministic" `Quick test_deterministic;
          Alcotest.test_case "schedule bound reported" `Quick test_schedule_bound;
        ] );
    ]
