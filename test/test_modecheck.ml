(* sdb_modecheck's suite: every rule must fire on its seeded fixture —
   compiled to a real .cmt, so the checker is exercised on genuine
   typedtrees, not synthetic summaries — the built-in self-test must
   pass, the disciplined fixture must stay silent, and the shipped
   tree must check clean with the DESIGN.md §5 lockdep cross-check on. *)

let check = Alcotest.check

(* Tests run from the build context; walk up to the (copied)
   dune-project so the fixture and library .cmt trees resolve whether
   dune launched us from _build/default/test or elsewhere. *)
let rec find_root dir =
  if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
  else
    let parent = Filename.dirname dir in
    if String.equal parent dir then None else find_root parent

(* The root may be the build context itself (dune runtest copies
   dune-project into _build/default) or the source root (dune exec from
   the repo top); in the latter case the artifacts sit under
   _build/default. *)
let build_roots () =
  match find_root (Sys.getcwd ()) with
  | None -> []
  | Some root ->
    [ root; List.fold_left Filename.concat root [ "_build"; "default" ] ]

let fixture_cmt name =
  let rel =
    List.fold_left Filename.concat "test"
      [ "modecheck_fixtures"; ".modecheck_fixtures.objs"; "byte";
        "modecheck_fixtures__" ^ name ^ ".cmt" ]
  in
  List.find_opt Sys.file_exists
    (List.map (fun r -> Filename.concat r rel) (build_roots ()))

let rules_of cmt =
  (Sdb_modecheck.analyze ~xcheck:false [ cmt ]).Sdb_modecheck.r_findings
  |> List.map (fun f -> f.Sdb_modecheck.f_rule)
  |> List.sort_uniq compare

(* Each fixture must trip exactly the seeded rules — a fixture that
   also trips something unplanned is a regression in the checker, not
   extra credit. *)
let fixture_cases =
  [
    ("Fx_mode", [ "mode" ]);
    ("Fx_chain", [ "mode" ]);
    ("Fx_iomutex", [ "io-under-mutex"; "unprotected-acquire" ]);
    ("Fx_epoch", [ "epoch-bracket" ]);
    ("Fx_cycle", [ "lock-order" ]);
    ("Fx_noblock", [ "noblock" ]);
    ("Fx_epoch_safety", [ "epoch-safety" ]);
    ("Fx_clean", []);
  ]

let test_fixture (name, expected) () =
  match fixture_cmt name with
  | None -> () (* sandboxed without build-tree access: covered by CI *)
  | Some cmt ->
    check Alcotest.(list string) name (List.sort compare expected) (rules_of cmt)

let test_self_test () =
  match Sdb_modecheck.self_test () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* The acceptance bar: the shipped tree checks clean under every rule,
   including the cross-check of the statically derived lock-order DAG
   against the runtime lockdep graph documented in DESIGN.md §5. *)
let test_tree_is_clean () =
  let lib_with_cmts =
    List.find_opt
      (fun lib ->
        Sys.file_exists lib && Sdb_modecheck.walk_cmts [ lib ] <> [])
      (List.map (fun r -> Filename.concat r "lib") (build_roots ()))
  in
  match lib_with_cmts with
  | None -> () (* sandboxed without build-tree access: covered by CI *)
  | Some lib ->
    begin
      let cmts = Sdb_modecheck.walk_cmts [ lib ] in
      check Alcotest.bool "found cmt files" true (cmts <> []);
      let r = Sdb_modecheck.analyze ~xcheck:true cmts in
      List.iter
        (fun f -> Printf.eprintf "%s\n" (Sdb_modecheck.render f))
        r.Sdb_modecheck.r_findings;
      check Alcotest.int "tree findings" 0 (List.length r.r_findings);
      check
        Alcotest.(list (pair string string))
        "static lock-order DAG matches the runtime lockdep graph"
        (List.sort compare Sdb_modecheck.expected_lockdep)
        (List.sort compare r.r_edges)
    end

let () =
  Helpers.run "modecheck"
    [
      ( "fixtures",
        List.map
          (fun (name, _ as case) ->
            Alcotest.test_case name `Quick (test_fixture case))
          fixture_cases );
      ( "gate",
        [
          Alcotest.test_case "self test" `Quick test_self_test;
          Alcotest.test_case "tree is clean" `Quick test_tree_is_clean;
        ] );
    ]
