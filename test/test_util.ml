module Crc32 = Sdb_util.Crc32
module Varint = Sdb_util.Varint
module Rng = Sdb_util.Rng
module Tablefmt = Sdb_util.Tablefmt
module Histogram = Sdb_util.Histogram

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* CRC-32                                                              *)

let crc_hex s = Printf.sprintf "%08lx" (Crc32.to_int32 (Crc32.digest_string s))

let test_crc_vectors () =
  (* Standard IEEE CRC-32 check values. *)
  check Alcotest.string "empty" "00000000" (crc_hex "");
  check Alcotest.string "check string" "cbf43926" (crc_hex "123456789");
  check Alcotest.string "a" "e8b7be43" (crc_hex "a");
  check Alcotest.string "abc" "352441c2" (crc_hex "abc")

let test_crc_incremental () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let one_shot = Crc32.digest_string s in
  let split =
    Crc32.update_string (Crc32.update_string Crc32.empty (String.sub s 0 17))
      (String.sub s 17 (String.length s - 17))
  in
  Alcotest.check Alcotest.bool "incremental = one-shot" true (Crc32.equal one_shot split)

let test_crc_range () =
  let b = Bytes.of_string "xxhello worldyy" in
  let ranged = Crc32.digest_bytes b ~pos:2 ~len:11 in
  Alcotest.check Alcotest.bool "ranged digest" true
    (Crc32.equal ranged (Crc32.digest_string "hello world"))

let test_crc_bad_range () =
  let b = Bytes.of_string "abc" in
  Alcotest.check_raises "negative pos" (Invalid_argument "Crc32.update") (fun () ->
      ignore (Crc32.digest_bytes b ~pos:(-1) ~len:1));
  Alcotest.check_raises "overrun" (Invalid_argument "Crc32.update") (fun () ->
      ignore (Crc32.digest_bytes b ~pos:2 ~len:2))

let prop_crc_detects_flip =
  Helpers.qtest "crc detects single bit flip"
    QCheck2.Gen.(pair (string_size ~gen:printable (1 -- 64)) (int_bound 511))
    (fun (s, flip) ->
      let bit = flip mod (String.length s * 8) in
      let b = Bytes.of_string s in
      let byte = bit / 8 in
      Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl (bit mod 8))));
      let mutated = Bytes.to_string b in
      mutated = s || not (Crc32.equal (Crc32.digest_string s) (Crc32.digest_string mutated)))

(* ------------------------------------------------------------------ *)
(* Varint                                                              *)

let encode_unsigned n =
  let b = Buffer.create 10 in
  Varint.write_unsigned b n;
  Buffer.contents b

let encode_signed n =
  let b = Buffer.create 10 in
  Varint.write_signed b n;
  Buffer.contents b

let test_varint_unsigned_roundtrip () =
  List.iter
    (fun n ->
      let v, pos = Varint.read_unsigned (encode_unsigned n) ~pos:0 in
      check Alcotest.int "value" n v;
      check Alcotest.int "consumed" (String.length (encode_unsigned n)) pos)
    [ 0; 1; 127; 128; 300; 16383; 16384; 1 lsl 20; 1 lsl 40; max_int ]

let test_varint_signed_roundtrip () =
  List.iter
    (fun n ->
      let v, _ = Varint.read_signed (encode_signed n) ~pos:0 in
      check Alcotest.int "value" n v)
    [ 0; 1; -1; 63; -64; 64; -65; 300; -300; max_int; min_int; min_int + 1 ]

let test_varint_sizes () =
  check Alcotest.int "1 byte" 1 (String.length (encode_unsigned 127));
  check Alcotest.int "2 bytes" 2 (String.length (encode_unsigned 128));
  check Alcotest.int "size fn" 1 (Varint.encoded_size_unsigned 127);
  check Alcotest.int "size fn 2" 2 (Varint.encoded_size_unsigned 128);
  check Alcotest.int "size matches" (String.length (encode_unsigned max_int))
    (Varint.encoded_size_unsigned max_int)

let expect_malformed name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Malformed")
  | exception Varint.Malformed _ -> ()

let test_varint_malformed () =
  expect_malformed "truncated" (fun () -> Varint.read_unsigned "\x80" ~pos:0);
  expect_malformed "empty" (fun () -> Varint.read_unsigned "" ~pos:0);
  expect_malformed "overlong zero" (fun () -> Varint.read_unsigned "\x80\x00" ~pos:0);
  expect_malformed "too long" (fun () ->
      Varint.read_unsigned "\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF\x01" ~pos:0);
  Alcotest.check_raises "negative write"
    (Invalid_argument "Varint.write_unsigned: negative") (fun () ->
      ignore (encode_unsigned (-1)))

let test_varint_offsets () =
  let buf = Buffer.create 16 in
  Varint.write_unsigned buf 300;
  Varint.write_unsigned buf 7;
  Varint.write_signed buf (-12345);
  let s = Buffer.contents buf in
  let a, p1 = Varint.read_unsigned s ~pos:0 in
  let b, p2 = Varint.read_unsigned s ~pos:p1 in
  let c, p3 = Varint.read_signed s ~pos:p2 in
  check Alcotest.int "first" 300 a;
  check Alcotest.int "second" 7 b;
  check Alcotest.int "third" (-12345) c;
  check Alcotest.int "all consumed" (String.length s) p3

let prop_varint_roundtrip =
  Helpers.qtest "varint signed roundtrip" QCheck2.Gen.int (fun n ->
      fst (Varint.read_signed (encode_signed n) ~pos:0) = n)

let prop_varint_unsigned_roundtrip =
  Helpers.qtest "varint unsigned roundtrip" QCheck2.Gen.(0 -- max_int) (fun n ->
      fst (Varint.read_unsigned (encode_unsigned n) ~pos:0) = n)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.next_int64 a = Rng.next_int64 b then incr same
  done;
  Alcotest.check Alcotest.bool "streams differ" true (!same < 5)

let test_rng_bounds () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.fail "int out of bounds"
  done;
  for _ = 1 to 1_000 do
    let f = Rng.float r 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.fail "float out of bounds"
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_uniformish () =
  let r = Rng.create ~seed:11 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int r 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c ->
      if c < n / 10 * 8 / 10 || c > n / 10 * 12 / 10 then
        Alcotest.fail (Printf.sprintf "bucket count %d too far from %d" c (n / 10)))
    buckets

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:3 in
  let arr = Array.init 100 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.(array int) "is permutation" (Array.init 100 Fun.id) sorted

let test_rng_zipf () =
  let r = Rng.create ~seed:5 in
  let n = 1000 in
  let counts = Array.make n 0 in
  let draws = 50_000 in
  for _ = 1 to draws do
    let v = Rng.zipf r ~n ~theta:0.9 in
    if v < 0 || v >= n then Alcotest.fail "zipf out of range";
    counts.(v) <- counts.(v) + 1
  done;
  (* Rank 0 must be much more popular than mid-ranks under heavy skew. *)
  Alcotest.check Alcotest.bool "skewed" true (counts.(0) > 20 * (counts.(500) + 1));
  (* theta = 0 degenerates to uniform. *)
  let v = Rng.zipf r ~n:10 ~theta:0.0 in
  Alcotest.check Alcotest.bool "uniform case in range" true (v >= 0 && v < 10)

let test_rng_pick_string () =
  let r = Rng.create ~seed:13 in
  let s = Rng.string r ~len:32 in
  check Alcotest.int "length" 32 (String.length s);
  String.iter (fun c -> if Char.code c < 33 || Char.code c > 126 then Alcotest.fail "not printable") s;
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 20 do
    let p = Rng.pick r arr in
    Alcotest.check Alcotest.bool "picked member" true (Array.mem p arr)
  done;
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick r [||]))

(* ------------------------------------------------------------------ *)
(* Tablefmt                                                            *)

let test_table_render () =
  let out =
    Tablefmt.render ~header:[ "name"; "value" ]
      [ [ "alpha"; "1" ]; [ "b"; "22222" ] ]
  in
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  check Alcotest.int "line count" 4 (List.length lines);
  (match lines with
  | header :: rule :: _ ->
    Alcotest.check Alcotest.bool "header has name" true
      (String.length header >= 4 && String.sub header 0 4 = "name");
    String.iter
      (fun c -> if c <> '-' && c <> ' ' then Alcotest.fail "rule not dashes")
      rule
  | _ -> Alcotest.fail "missing lines");
  Alcotest.check_raises "align mismatch"
    (Invalid_argument "Tablefmt.render: align length mismatch") (fun () ->
      ignore (Tablefmt.render ~align:[ Tablefmt.Left ] ~header:[ "a"; "b" ] []))

let test_table_formatting_helpers () =
  check Alcotest.string "ms small" "0.042 ms" (Tablefmt.fmt_ms 0.042);
  check Alcotest.string "ms mid" "54.0 ms" (Tablefmt.fmt_ms 54.0);
  check Alcotest.string "seconds" "1.20 s" (Tablefmt.fmt_ms 1200.0);
  check Alcotest.string "us" "0.5 us" (Tablefmt.fmt_ms 0.0005);
  check Alcotest.string "bytes" "512 B" (Tablefmt.fmt_bytes 512);
  check Alcotest.string "mib" "1.0 MiB" (Tablefmt.fmt_bytes (1 lsl 20));
  check Alcotest.string "ratio" "2.1x" (Tablefmt.fmt_ratio 2.1)

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)

let test_histogram_basics () =
  let h = Histogram.create () in
  check Alcotest.int "empty count" 0 (Histogram.count h);
  List.iter (Histogram.record h) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  check Alcotest.int "count" 5 (Histogram.count h);
  check (Alcotest.float 1e-9) "mean" 3.0 (Histogram.mean h);
  check (Alcotest.float 1e-9) "min" 1.0 (Histogram.min h);
  check (Alcotest.float 1e-9) "max" 5.0 (Histogram.max h);
  check (Alcotest.float 1e-9) "median" 3.0 (Histogram.percentile h 50.0);
  check (Alcotest.float 1e-9) "p100" 5.0 (Histogram.percentile h 100.0);
  check (Alcotest.float 1e-9) "total" 15.0 (Histogram.total h)

let test_histogram_growth_and_merge () =
  let h = Histogram.create () in
  for i = 1 to 1000 do
    Histogram.record h (float_of_int i)
  done;
  check Alcotest.int "count" 1000 (Histogram.count h);
  (* Interpolated rank: 0.99·999 = 989.01, i.e. 1% of the way from the
     990th to the 991st sample. *)
  check (Alcotest.float 1e-6) "p99" 990.01 (Histogram.percentile h 99.0);
  let h2 = Histogram.create () in
  Histogram.record h2 5000.0;
  let merged = Histogram.merge h h2 in
  check Alcotest.int "merged count" 1001 (Histogram.count merged);
  check (Alcotest.float 1e-6) "merged max" 5000.0 (Histogram.max merged);
  check Alcotest.int "merge sources unchanged" 1000 (Histogram.count h);
  Histogram.merge_into h h2;
  check Alcotest.int "merge_into appends" 1001 (Histogram.count h);
  check (Alcotest.float 1e-6) "merge_into carries samples" 5000.0
    (Histogram.max h);
  Histogram.merge_into h2 h2;
  check Alcotest.int "self merge doubles" 2 (Histogram.count h2)

(* The satellite contract: interpolation is exact at sample boundaries
   (p0 = min, p100 = max, every multiple of 100/(N−1) is a recorded
   sample), and linear in between. *)
let test_histogram_interpolation () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 50.0; 10.0; 40.0; 20.0; 30.0 ];
  List.iteri
    (fun i want ->
      check
        (Alcotest.float 1e-9)
        (Printf.sprintf "edge p%d" (i * 25))
        want
        (Histogram.percentile h (float_of_int (i * 25))))
    [ 10.0; 20.0; 30.0; 40.0; 50.0 ];
  check (Alcotest.float 1e-9) "linear between edges" 22.0
    (Histogram.percentile h 30.0);
  let two = Histogram.create () in
  List.iter (Histogram.record two) [ 1.0; 2.0 ];
  check (Alcotest.float 1e-9) "median of two interpolates" 1.5
    (Histogram.percentile two 50.0);
  let one = Histogram.create () in
  Histogram.record one 7.0;
  check (Alcotest.float 1e-9) "single sample at any p" 7.0
    (Histogram.percentile one 99.9)

let test_histogram_empty_errors () =
  let h = Histogram.create () in
  Alcotest.check_raises "mean of empty" (Invalid_argument "Histogram.mean: empty")
    (fun () -> ignore (Histogram.mean h))

let test_histogram_percentile_opt () =
  let h = Histogram.create () in
  check (Alcotest.option (Alcotest.float 1e-9)) "empty" None
    (Histogram.percentile_opt h 50.0);
  List.iter (Histogram.record h) [ 1.0; 2.0; 3.0 ];
  check (Alcotest.option (Alcotest.float 1e-9)) "median" (Some 2.0)
    (Histogram.percentile_opt h 50.0);
  (* Must agree with the raising variant on non-empty data. *)
  check (Alcotest.float 1e-9) "agrees with percentile" (Histogram.percentile h 90.0)
    (Option.get (Histogram.percentile_opt h 90.0))

let test_histogram_snapshot () =
  let h = Histogram.create () in
  let s0 = Histogram.snapshot h in
  check Alcotest.int "empty count" 0 s0.Histogram.s_count;
  check (Alcotest.float 1e-9) "empty mean" 0.0 s0.Histogram.s_mean;
  check (Alcotest.float 1e-9) "empty max" 0.0 s0.Histogram.s_max;
  for i = 1 to 100 do
    Histogram.record h (float_of_int i)
  done;
  let s = Histogram.snapshot h in
  check Alcotest.int "count" 100 s.Histogram.s_count;
  check (Alcotest.float 1e-9) "total" 5050.0 s.Histogram.s_total;
  check (Alcotest.float 1e-9) "mean" 50.5 s.Histogram.s_mean;
  check (Alcotest.float 1e-9) "min" 1.0 s.Histogram.s_min;
  check (Alcotest.float 1e-9) "max" 100.0 s.Histogram.s_max;
  check (Alcotest.float 1e-9) "p50" (Histogram.percentile h 50.0) s.Histogram.s_p50;
  check (Alcotest.float 1e-9) "p90" (Histogram.percentile h 90.0) s.Histogram.s_p90;
  check (Alcotest.float 1e-9) "p99" (Histogram.percentile h 99.0) s.Histogram.s_p99;
  check (Alcotest.float 1e-9) "p999" (Histogram.percentile h 99.9)
    s.Histogram.s_p999;
  Histogram.clear h;
  check Alcotest.int "cleared" 0 (Histogram.count h);
  Histogram.record h 7.0;
  check (Alcotest.float 1e-9) "usable after clear" 7.0 (Histogram.mean h)

let () =
  Helpers.run "util"
    [
      ( "crc32",
        [
          Alcotest.test_case "known vectors" `Quick test_crc_vectors;
          Alcotest.test_case "incremental" `Quick test_crc_incremental;
          Alcotest.test_case "byte range" `Quick test_crc_range;
          Alcotest.test_case "bad range" `Quick test_crc_bad_range;
          prop_crc_detects_flip;
        ] );
      ( "varint",
        [
          Alcotest.test_case "unsigned roundtrip" `Quick test_varint_unsigned_roundtrip;
          Alcotest.test_case "signed roundtrip" `Quick test_varint_signed_roundtrip;
          Alcotest.test_case "encoded sizes" `Quick test_varint_sizes;
          Alcotest.test_case "malformed input" `Quick test_varint_malformed;
          Alcotest.test_case "sequential offsets" `Quick test_varint_offsets;
          prop_varint_roundtrip;
          prop_varint_unsigned_roundtrip;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "roughly uniform" `Quick test_rng_uniformish;
          Alcotest.test_case "shuffle is permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "zipf skew" `Quick test_rng_zipf;
          Alcotest.test_case "pick and string" `Quick test_rng_pick_string;
        ] );
      ( "tablefmt",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "format helpers" `Quick test_table_formatting_helpers;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basics" `Quick test_histogram_basics;
          Alcotest.test_case "growth and merge" `Quick test_histogram_growth_and_merge;
          Alcotest.test_case "interpolation" `Quick test_histogram_interpolation;
          Alcotest.test_case "empty errors" `Quick test_histogram_empty_errors;
          Alcotest.test_case "percentile_opt" `Quick test_histogram_percentile_opt;
          Alcotest.test_case "snapshot and clear" `Quick test_histogram_snapshot;
        ] );
    ]
