(* Group-commit semantics (DESIGN.md §4d).

   Correctness under the group coordinator: concurrent updaters all
   commit with dense LSNs and subscribers see them in stage order; a
   failing precondition fails only its own member; a group-wide log
   failure fails every member with the §4b/§4c taxonomy (Degraded on
   no-space, Poisoned after a failed fsync).  Batching itself is
   timing-dependent, so assertions here are about semantics; the
   deterministic one-fsync-per-group property is asserted through
   [update_batch], which always rides as a single member. *)

module Fs = Sdb_storage.Fs
module Mem = Sdb_storage.Mem_fs
module Fault = Sdb_storage.Fault_fs
module Metrics = Sdb_obs.Metrics
open Helpers

let grouped ?(delay = 0.005) () =
  { Smalldb.default_config with group_commit = true; max_group_delay = delay }

let mem_grouped ?config () =
  let config = match config with Some c -> c | None -> grouped () in
  mem_db ~config ()

(* ------------------------------------------------------------------ *)
(* Single-threaded: semantics identical to the solo path               *)

let test_solo_semantics () =
  let store, _, db = mem_grouped () in
  let seen = ref [] in
  let _sub = KVDb.subscribe db (fun lsn u -> seen := (lsn, u) :: !seen) in
  KVDb.update db (sequenced_update 0);
  KVDb.update db (sequenced_update 1);
  (match
     KVDb.update_checked db
       ~precondition:(fun _ -> Error "nope")
       (KV.Set ("bad", "x"))
   with
  | Error "nope" -> ()
  | _ -> fail "precondition Error must surface");
  (match
     KVDb.update_checked db
       ~precondition:(fun _ -> failwith "boom")
       (KV.Set ("bad", "x"))
   with
  | exception Failure m when m = "boom" -> ()
  | _ -> fail "raising precondition must propagate");
  check Alcotest.string "usable after raising precondition" "healthy"
    (match KVDb.health db with `Healthy -> "healthy" | _ -> "unhealthy");
  KVDb.update db (sequenced_update 2);
  check Alcotest.int "clean prefix" 3 (sequenced_prefix db);
  check Alcotest.int "lsn dense" 3 (KVDb.stats db).Smalldb.lsn;
  check
    Alcotest.(list int)
    "subscriber lsns in order" [ 0; 1; 2 ]
    (List.rev_map fst !seen);
  (* Durability: reopen replays the same prefix. *)
  KVDb.close db;
  let db2 = KVDb.open_exn (Mem.fs store) in
  check Alcotest.int "recovered prefix" 3 (sequenced_prefix db2);
  KVDb.close db2

let test_batch_is_one_member_one_fsync () =
  let _, _, db = mem_grouped () in
  KVDb.update db (sequenced_update 0);
  let syncs0 = Metrics.counter_value (Metrics.counter "sdb_wal_syncs_total") in
  let flushes0 =
    Metrics.counter_value (Metrics.counter "sdb_wal_group_flushes_total")
  in
  KVDb.update_batch db (List.init 5 (fun i -> sequenced_update (1 + i)));
  let syncs1 = Metrics.counter_value (Metrics.counter "sdb_wal_syncs_total") in
  let flushes1 =
    Metrics.counter_value (Metrics.counter "sdb_wal_group_flushes_total")
  in
  check Alcotest.int "one fsync for the whole batch" 1 (syncs1 - syncs0);
  check Alcotest.int "one group flush" 1 (flushes1 - flushes0);
  check Alcotest.int "all applied" 6 (sequenced_prefix db);
  check Alcotest.int "lsn dense across batch" 6 (KVDb.stats db).Smalldb.lsn;
  KVDb.close db

(* ------------------------------------------------------------------ *)
(* Concurrent updaters                                                 *)

let test_concurrent_dense_lsns_stage_order () =
  let store, _, db = mem_grouped () in
  let threads = 8 and per_thread = 25 in
  let total = threads * per_thread in
  let seen_mutex = Mutex.create () in
  let seen = ref [] in
  let _sub =
    KVDb.subscribe db (fun lsn u ->
        Mutex.lock seen_mutex;
        seen := (lsn, u) :: !seen;
        Mutex.unlock seen_mutex)
  in
  let ths =
    List.init threads (fun tid ->
        Thread.create
          (fun () ->
            for i = 0 to per_thread - 1 do
              KVDb.update db
                (KV.Set (Printf.sprintf "t%d-%03d" tid i, string_of_int i))
            done)
          ())
  in
  List.iter Thread.join ths;
  let seen = List.rev !seen in
  check Alcotest.int "every update notified" total (List.length seen);
  (* Dense LSNs, notified in commit order. *)
  List.iteri
    (fun i (lsn, _) -> check Alcotest.int "notification order is LSN order" i lsn)
    seen;
  check Alcotest.int "lsn total" total (KVDb.stats db).Smalldb.lsn;
  check Alcotest.int "all keys present" total
    (KVDb.query db (fun st -> Hashtbl.length st));
  (* The log is the stage order; subscribers must have seen exactly it. *)
  let logged =
    KVDb.fold_log db ~init:[] ~f:(fun acc lsn u -> (lsn, u) :: acc) |> List.rev
  in
  check Alcotest.int "log holds every update" total (List.length logged);
  List.iter2
    (fun (llsn, lu) (slsn, su) ->
      check Alcotest.int "log vs notify lsn" llsn slsn;
      check Alcotest.bool "log vs notify update" true (lu = su))
    logged seen;
  (* Durability of the whole set. *)
  KVDb.close db;
  let db2 = KVDb.open_exn (Mem.fs store) in
  check Alcotest.int "recovered all" total
    (KVDb.query db2 (fun st -> Hashtbl.length st));
  KVDb.close db2

let test_precondition_fails_only_its_member () =
  (* Slow fsyncs widen the window so failing and succeeding updaters
     coexist in forming groups; the assertion holds regardless of how
     they actually grouped. *)
  let store = Mem.create_store ~seed:42 () in
  let ctl, ffs = Fault.wrap (Mem.fs store) in
  Fault.set_latency ctl ~op:`Sync 0.002;
  let db = KVDb.open_exn ~config:(grouped ()) ffs in
  let threads = 8 and per_thread = 10 in
  let failures = ref 0 and successes = ref 0 in
  let m = Mutex.create () in
  let bump r =
    Mutex.lock m;
    incr r;
    Mutex.unlock m
  in
  let ths =
    List.init threads (fun tid ->
        Thread.create
          (fun () ->
            for i = 0 to per_thread - 1 do
              (* Every odd thread's updates are refused by their own
                 precondition; the rest must be unaffected. *)
              let doomed = tid mod 2 = 1 in
              match
                KVDb.update_checked db
                  ~precondition:(fun _ -> if doomed then Error i else Ok ())
                  (KV.Set (Printf.sprintf "t%d-%03d" tid i, "v"))
              with
              | Ok () -> bump successes
              | Error j when j = i -> bump failures
              | Error _ -> fail "wrong error payload"
            done)
          ())
  in
  List.iter Thread.join ths;
  let expect_ok = threads / 2 * per_thread in
  check Alcotest.int "refused members" (threads * per_thread - expect_ok)
    !failures;
  check Alcotest.int "committed members" expect_ok !successes;
  check Alcotest.int "lsn counts only successes" expect_ok
    (KVDb.stats db).Smalldb.lsn;
  check Alcotest.bool "healthy" true (KVDb.health db = `Healthy);
  KVDb.close db

(* ------------------------------------------------------------------ *)
(* Group-wide failures                                                 *)

let test_fsync_fault_poisons_and_wakes_all () =
  let store = Mem.create_store ~seed:7 () in
  let ctl, ffs = Fault.wrap (Mem.fs store) in
  (* Slow writes pile updaters up behind the first group. *)
  Fault.set_latency ctl ~op:`Write 0.002;
  let db = KVDb.open_exn ~config:(grouped ()) ffs in
  (* From here, the very next fsync — the first group's shared commit
     point — fails. *)
  Fault.fail_nth ctl ~op:`Sync ~n:1 ();
  let threads = 8 in
  let outcomes = Array.make threads `Unset in
  let ths =
    List.init threads (fun tid ->
        Thread.create
          (fun () ->
            outcomes.(tid) <-
              (match KVDb.update db (KV.Set (Printf.sprintf "t%d" tid, "v")) with
              | () -> `Committed
              | exception Fs.Io_error _ -> `Io_error
              | exception Smalldb.Poisoned -> `Poisoned))
          ())
  in
  List.iter Thread.join ths;
  let count o = Array.to_list outcomes |> List.filter (( = ) o) |> List.length in
  (* Exactly one thread performed the failing fsync (the group leader:
     it re-raises the raw failure, like a solo updater would); every
     other member — parked in the same group, leading a later group, or
     arriving after the fact — observes Poisoned. *)
  check Alcotest.int "no commits" 0 (count `Committed);
  check Alcotest.int "one leader saw the I/O error" 1 (count `Io_error);
  check Alcotest.int "everyone else poisoned" (threads - 1) (count `Poisoned);
  check Alcotest.bool "engine poisoned" true (KVDb.health db = `Poisoned);
  (match KVDb.update db (KV.Set ("after", "x")) with
  | exception Smalldb.Poisoned -> ()
  | _ -> fail "poisoned engine must refuse updates");
  (* Reopen on the raw store recovers a clean (possibly empty) state. *)
  Fault.clear ctl;
  (try KVDb.close db with _ -> ());
  let db2 = KVDb.open_exn (Mem.fs store) in
  KVDb.query db2 (fun st ->
      Hashtbl.iter (fun _ v -> check Alcotest.string "value intact" "v" v) st);
  KVDb.update db2 (KV.Set ("after", "y"));
  KVDb.close db2

let test_no_space_degrades_and_fails_all_members () =
  let store = Mem.create_store ~seed:9 () in
  let ctl, ffs = Fault.wrap (Mem.fs store) in
  Fault.set_latency ctl ~op:`Write 0.002;
  let db = KVDb.open_exn ~config:(grouped ()) ffs in
  (* Cap the budget so the next group append overflows it. *)
  Fault.set_capacity ctl (Some (Mem.total_bytes store + 8));
  let threads = 6 in
  let degraded = ref 0 and committed = ref 0 in
  let m = Mutex.create () in
  let ths =
    List.init threads (fun tid ->
        Thread.create
          (fun () ->
            match KVDb.update db (KV.Set (Printf.sprintf "t%d" tid, "v")) with
            | () ->
              Mutex.lock m;
              incr committed;
              Mutex.unlock m
            | exception Smalldb.Degraded _ ->
              Mutex.lock m;
              incr degraded;
              Mutex.unlock m)
          ())
  in
  List.iter Thread.join ths;
  check Alcotest.int "no member committed" 0 !committed;
  check Alcotest.int "every member degraded" threads !degraded;
  (match KVDb.health db with
  | `Degraded _ -> ()
  | _ -> fail "engine must be degraded (read-only), not poisoned");
  (* Nothing reached the log: memory still equals disk. *)
  check Alcotest.int "state untouched" 0
    (KVDb.query db (fun st -> Hashtbl.length st));
  (* Space turns up; the engine exits degraded mode by itself. *)
  Fault.set_capacity ctl None;
  Thread.delay 0.03;
  KVDb.update db (KV.Set ("recovered", "v"));
  check Alcotest.bool "healthy again" true (KVDb.health db = `Healthy);
  KVDb.close db

let () =
  Helpers.run "group-commit"
    [
      ( "solo",
        [
          Alcotest.test_case "semantics match the solo path" `Quick
            test_solo_semantics;
          Alcotest.test_case "batch = one member, one fsync" `Quick
            test_batch_is_one_member_one_fsync;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "dense LSNs, notify in stage order" `Quick
            test_concurrent_dense_lsns_stage_order;
          Alcotest.test_case "precondition fails only its member" `Quick
            test_precondition_fails_only_its_member;
        ] );
      ( "failures",
        [
          Alcotest.test_case "failed fsync poisons, wakes all parked" `Quick
            test_fsync_fault_poisons_and_wakes_all;
          Alcotest.test_case "no-space degrades, fails all cleanly" `Quick
            test_no_space_degrades_and_fails_all_members;
        ] );
    ]
