module P = Sdb_pickle.Pickle
module Rpc = Sdb_rpc.Rpc
module Proto = Sdb_rpc.Ns_protocol
module Mem = Sdb_storage.Mem_fs
module Ns = Sdb_nameserver.Nameserver
module Data = Sdb_nameserver.Ns_data
module Path = Sdb_nameserver.Name_path

let check = Alcotest.check

let echo_handlers =
  [
    Rpc.Server.handler ~meth:"echo" P.string P.string (fun s -> s);
    Rpc.Server.handler ~meth:"add" (P.pair P.int P.int) P.int (fun (a, b) -> a + b);
    Rpc.Server.handler ~meth:"fail" P.unit P.unit (fun () -> failwith "deliberate");
  ]

let with_inproc_server handlers f =
  let client_t, server_t = Rpc.Inproc.pair () in
  let server = Thread.create (fun () -> Rpc.Server.serve ~handlers server_t) () in
  let client = Rpc.Client.create client_t in
  Fun.protect
    ~finally:(fun () ->
      Rpc.Client.close client;
      server_t.Rpc.Transport.close ();
      Thread.join server)
    (fun () -> f client)

let test_inproc_calls () =
  with_inproc_server echo_handlers (fun client ->
      check Alcotest.string "echo" "hello"
        (Rpc.Client.call client ~meth:"echo" P.string P.string "hello");
      check Alcotest.int "add" 7
        (Rpc.Client.call client ~meth:"add" (P.pair P.int P.int) P.int (3, 4));
      check Alcotest.int "calls counted" 2 (Rpc.Client.calls client))

let test_server_exception_propagates () =
  with_inproc_server echo_handlers (fun client ->
      match Rpc.Client.call client ~meth:"fail" P.unit P.unit () with
      | () -> Alcotest.fail "expected Rpc_error"
      | exception Rpc.Rpc_error m ->
        Alcotest.check Alcotest.bool "mentions failure" true
          (String.length m > 0);
        (* The connection survives a handler failure. *)
        check Alcotest.string "still alive" "ok"
          (Rpc.Client.call client ~meth:"echo" P.string P.string "ok"))

let test_unknown_method () =
  with_inproc_server echo_handlers (fun client ->
      match Rpc.Client.call client ~meth:"nosuch" P.unit P.unit () with
      | () -> Alcotest.fail "expected Rpc_error"
      | exception Rpc.Rpc_error m ->
        Alcotest.check Alcotest.bool "mentions unknown" true
          (String.length m > 0))

let test_type_confusion_rejected () =
  with_inproc_server echo_handlers (fun client ->
      (* Call add with a string argument: server-side decode must fail
         cleanly. *)
      match Rpc.Client.call client ~meth:"add" P.string P.int "oops" with
      | _ -> Alcotest.fail "expected Rpc_error"
      | exception Rpc.Rpc_error _ -> ())

let test_closed_transport () =
  let client_t, server_t = Rpc.Inproc.pair () in
  let client = Rpc.Client.create client_t in
  server_t.Rpc.Transport.close ();
  match Rpc.Client.call client ~meth:"echo" P.string P.string "x" with
  | _ -> Alcotest.fail "expected Rpc_error"
  | exception Rpc.Rpc_error _ -> ()

let test_round_trip_counter () =
  let before = Rpc.Transport.round_trips () in
  with_inproc_server echo_handlers (fun client ->
      for _ = 1 to 5 do
        ignore (Rpc.Client.call client ~meth:"echo" P.string P.string "x")
      done);
  check Alcotest.int "global trips" 5 (Rpc.Transport.round_trips () - before)

(* ------------------------------------------------------------------ *)
(* Unix-domain socket transport                                          *)

let test_socket_end_to_end () =
  let path = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sdb-rpc-%d.sock" (Unix.getpid ())) in
  let listener = Rpc.Socket.listen ~path (Rpc.Server.serve ~handlers:echo_handlers) in
  Fun.protect
    ~finally:(fun () -> Rpc.Socket.shutdown listener)
    (fun () ->
      let c1 = Rpc.Client.create (Rpc.Socket.connect ~path) in
      let c2 = Rpc.Client.create (Rpc.Socket.connect ~path) in
      check Alcotest.string "client 1" "a"
        (Rpc.Client.call c1 ~meth:"echo" P.string P.string "a");
      check Alcotest.string "client 2" "b"
        (Rpc.Client.call c2 ~meth:"echo" P.string P.string "b");
      (* Interleaved. *)
      for i = 1 to 10 do
        check Alcotest.int "alt add" (2 * i)
          (Rpc.Client.call c1 ~meth:"add" (P.pair P.int P.int) P.int (i, i));
        check Alcotest.string "alt echo" (string_of_int i)
          (Rpc.Client.call c2 ~meth:"echo" P.string P.string (string_of_int i))
      done;
      (* A large payload crosses framing correctly. *)
      let big = String.make 200_000 'B' in
      check Alcotest.string "large payload" big
        (Rpc.Client.call c1 ~meth:"echo" P.string P.string big);
      Rpc.Client.close c1;
      Rpc.Client.close c2)

let test_socket_connect_failure () =
  match Rpc.Socket.connect ~path:"/nonexistent/dir/sock" with
  | _ -> Alcotest.fail "expected Rpc_error"
  | exception Rpc.Rpc_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Deadlines, poisoning, retry                                           *)

let test_recv_deadline () =
  (* No server ever answers: the call must fail at the deadline, not
     block forever. *)
  let client_t, _unserved = Rpc.Inproc.pair () in
  let client = Rpc.Client.create ~deadline_s:0.05 client_t in
  let t0 = Unix.gettimeofday () in
  (match Rpc.Client.call client ~meth:"echo" P.string P.string "x" with
  | _ -> Alcotest.fail "expected deadline error"
  | exception Rpc.Rpc_error m ->
    check Alcotest.string "deadline message" Rpc.Transport.deadline_exceeded m);
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.check Alcotest.bool "waited about the deadline" true
    (elapsed >= 0.04 && elapsed < 2.0);
  check Alcotest.bool "poisoned afterwards" true (Rpc.Client.broken client)

let test_socket_deadline () =
  (* The socket transport's SO_RCVTIMEO path: a slow handler holds the
     reply past the client's deadline. *)
  let handlers =
    Rpc.Server.handler ~meth:"slow" P.unit P.unit (fun () -> Thread.delay 0.5)
    :: echo_handlers
  in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sdb-rpc-dl-%d.sock" (Unix.getpid ()))
  in
  let listener = Rpc.Socket.listen ~path (Rpc.Server.serve ~handlers) in
  Fun.protect
    ~finally:(fun () -> Rpc.Socket.shutdown listener)
    (fun () ->
      let client = Rpc.Client.create ~deadline_s:0.05 (Rpc.Socket.connect ~path) in
      match Rpc.Client.call client ~meth:"slow" P.unit P.unit () with
      | () -> Alcotest.fail "expected deadline error"
      | exception Rpc.Rpc_error m ->
        check Alcotest.string "deadline message" Rpc.Transport.deadline_exceeded m;
        check Alcotest.bool "poisoned afterwards" true (Rpc.Client.broken client))

(* Structurally identical to the client's response codec, for forging
   wire messages in the desync test. *)
let codec_response_shape =
  P.record2 "rpc.response"
    (P.field "id" P.int fst)
    (P.field "payload" (P.result P.string P.string) snd)
    (fun id payload -> (id, payload))

let test_desync_poisons_client () =
  (* A faulty server answers with a response id that matches no
     request: the client must refuse the answer AND refuse to reuse the
     connection, or a later call could consume this stale response. *)
  let client_t, server_t = Rpc.Inproc.pair () in
  let server =
    Thread.create
      (fun () ->
        match server_t.Rpc.Transport.recv () with
        | _req ->
          server_t.Rpc.Transport.send
            (P.encode codec_response_shape (999, Ok (P.encode P.string "stale")))
        | exception Rpc.Rpc_error _ -> ())
      ()
  in
  let client = Rpc.Client.create client_t in
  (match Rpc.Client.call client ~meth:"echo" P.string P.string "x" with
  | _ -> Alcotest.fail "expected a desync error"
  | exception Rpc.Rpc_error m ->
    Alcotest.check Alcotest.bool "mentions the id mismatch" true
      (String.length m > 0));
  check Alcotest.bool "broken" true (Rpc.Client.broken client);
  (* Without [reconnect] every further call fails instead of reading
     whatever the dead connection still holds. *)
  (match Rpc.Client.call client ~meth:"echo" P.string P.string "y" with
  | _ -> Alcotest.fail "poisoned client must not answer"
  | exception Rpc.Rpc_error _ -> ());
  Thread.join server

let test_idempotent_retry_reconnects () =
  (* The first transport is already dead; [reconnect] supplies a live
     one and the idempotent call succeeds transparently. *)
  let dead_client, dead_server = Rpc.Inproc.pair () in
  dead_server.Rpc.Transport.close ();
  let served = ref [] in
  let fresh () =
    let c, s = Rpc.Inproc.pair () in
    let th = Thread.create (fun () -> Rpc.Server.serve ~handlers:echo_handlers s) () in
    served := (s, th) :: !served;
    c
  in
  let client =
    Rpc.Client.create ~retry:Rpc.default_retry ~reconnect:fresh dead_client
  in
  check Alcotest.string "retried onto the fresh transport" "hi"
    (Rpc.Client.call ~idempotent:true client ~meth:"echo" P.string P.string "hi");
  check Alcotest.bool "healthy after reconnect" false (Rpc.Client.broken client);
  Rpc.Client.close client;
  List.iter
    (fun (s, th) ->
      s.Rpc.Transport.close ();
      Thread.join th)
    !served

let test_non_idempotent_not_retried () =
  (* A non-idempotent call must fail on the first transport error: the
     request may have executed, so re-sending it is not safe. *)
  let dead_client, dead_server = Rpc.Inproc.pair () in
  dead_server.Rpc.Transport.close ();
  let client =
    Rpc.Client.create ~retry:Rpc.default_retry
      ~reconnect:(fun () -> Alcotest.fail "must not reconnect a non-idempotent call")
      dead_client
  in
  (match Rpc.Client.call client ~meth:"echo" P.string P.string "x" with
  | _ -> Alcotest.fail "expected failure"
  | exception Rpc.Rpc_error _ -> ());
  check Alcotest.bool "broken" true (Rpc.Client.broken client)

(* ------------------------------------------------------------------ *)
(* Name-server protocol                                                  *)

let p s = match Path.of_string s with Ok v -> v | Error e -> Alcotest.fail e

let with_ns_client f =
  let store = Mem.create_store ~seed:3 () in
  let ns = Ns.open_exn (Mem.fs store) in
  let client_t, server_t = Rpc.Inproc.pair () in
  let server = Thread.create (fun () -> Proto.serve ns server_t) () in
  let client = Proto.Client.create client_t in
  Fun.protect
    ~finally:(fun () ->
      Proto.Client.close client;
      server_t.Rpc.Transport.close ();
      Thread.join server)
    (fun () -> f ns client)

let test_ns_protocol_roundtrip () =
  with_ns_client (fun _ns client ->
      Proto.Client.set_value client (p "/hosts/alpha") (Some "10.0.0.1");
      Proto.Client.create_name client (p "/empty");
      check Alcotest.(option string) "remote lookup" (Some "10.0.0.1")
        (Proto.Client.lookup client (p "/hosts/alpha"));
      check Alcotest.bool "remote exists" true (Proto.Client.exists client (p "/empty"));
      check Alcotest.(option (list string)) "remote ls" (Some [ "alpha" ])
        (Proto.Client.list_children client (p "/hosts"));
      check Alcotest.int "count" 4 (Proto.Client.count_nodes client);
      (* Subtree ops. *)
      Proto.Client.write_subtree client (p "/sub")
        (Data.tree [ ("x", Data.leaf (Some "1")) ]);
      (match Proto.Client.export client (p "/sub") with
      | Some (Data.Tree t) -> check Alcotest.int "exported child" 1 (List.length t.tchildren)
      | None -> Alcotest.fail "export");
      (match Proto.Client.export ~depth:0 client (p "/sub") with
      | Some (Data.Tree t) -> check Alcotest.int "depth 0" 0 (List.length t.tchildren)
      | None -> Alcotest.fail "export depth");
      Proto.Client.delete_subtree client (p "/sub");
      check Alcotest.bool "deleted" false (Proto.Client.exists client (p "/sub"));
      (* CAS over the wire. *)
      (match
         Proto.Client.compare_and_set client (p "/hosts/alpha")
           ~expected:(Some "10.0.0.1") (Some "10.0.0.9")
       with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      (match
         Proto.Client.compare_and_set client (p "/hosts/alpha")
           ~expected:(Some "stale") (Some "zzz")
       with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "stale CAS succeeded");
      (* Replica support. *)
      check Alcotest.int "lsn" 5 (Proto.Client.lsn client);
      let tree, lsn = Proto.Client.snapshot client in
      check Alcotest.int "snapshot lsn" 5 lsn;
      Alcotest.check Alcotest.bool "snapshot nonempty" true
        (Data.count_nodes (Data.materialize tree) > 1);
      (match Proto.Client.updates_since client 0 with
      | Some l -> check Alcotest.int "all updates" 5 (List.length l)
      | None -> Alcotest.fail "log covers 0");
      Proto.Client.checkpoint client;
      (match Proto.Client.updates_since client 0 with
      | None -> ()
      | Some _ -> Alcotest.fail "absorbed by checkpoint");
      let d = Proto.Client.digest client in
      check Alcotest.int "digest is md5" 16 (String.length d);
      (* Enumeration and glob search over the wire. *)
      Proto.Client.set_value client (p "/svc/mail/port") (Some "25");
      Proto.Client.set_value client (p "/svc/news/port") (Some "119");
      let under_svc = Proto.Client.enumerate client (p "/svc") in
      check Alcotest.int "enumerate" 4 (List.length under_svc);
      (match Proto.Client.find client "/svc/*/port" with
      | Ok results ->
        check Alcotest.int "glob results" 2 (List.length results)
      | Error e -> Alcotest.fail e);
      match Proto.Client.find client "/a/**/b" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "bad pattern accepted")

let test_ns_protocol_local_remote_agree () =
  with_ns_client (fun ns client ->
      Proto.Client.set_value client (p "/a/b") (Some "v");
      check Alcotest.(option string) "local sees remote write" (Some "v")
        (Ns.lookup ns (p "/a/b"));
      Ns.set_value ns (p "/c") (Some "w");
      check Alcotest.(option string) "remote sees local write" (Some "w")
        (Proto.Client.lookup client (p "/c")))

let test_traces_verb () =
  (* With a slow-span ring installed at threshold 0 every served
     request leaves an rpc.server span, retrievable over the traces
     verb with its req correlation id. *)
  let module Trace = Sdb_obs.Trace in
  Trace.set_sink (Some (Trace.Slow.install ~capacity:64 ~threshold_s:0.0));
  Fun.protect
    ~finally:(fun () -> Trace.set_sink None)
    (fun () ->
      with_ns_client (fun _ns client ->
          Proto.Client.set_value client (p "/traced") (Some "v");
          ignore (Proto.Client.lookup client (p "/traced"));
          let spans = Proto.Client.traces client ~max_n:50 ~min_dur_s:0.0 in
          let servers =
            List.filter (fun s -> s.Trace.name = "rpc.server") spans
          in
          (* set_value, lookup, and the traces call itself is in flight
             while serving, so only the first two are guaranteed. *)
          check Alcotest.bool "spans for served calls" true
            (List.length servers >= 2);
          let meths =
            List.filter_map (fun s -> List.assoc_opt "meth" s.Trace.attrs) servers
          in
          check Alcotest.bool "lookup span present" true
            (List.mem "lookup" meths);
          List.iter
            (fun s ->
              check Alcotest.bool "req id attached" true
                (List.mem_assoc "req" s.Trace.attrs))
            servers;
          (* The threshold filter applies at query time too. *)
          check Alcotest.int "min_dur_s filters everything" 0
            (List.length
               (Proto.Client.traces client ~max_n:50 ~min_dur_s:3600.0))))

let test_inproc_delay () =
  let client_t, server_t = Rpc.Inproc.pair ~delay_s:0.01 () in
  let server = Thread.create (fun () -> Rpc.Server.serve ~handlers:echo_handlers server_t) () in
  let client = Rpc.Client.create client_t in
  let t0 = Unix.gettimeofday () in
  ignore (Rpc.Client.call client ~meth:"echo" P.string P.string "x");
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.check Alcotest.bool "round trip at least 2x delay" true (elapsed >= 0.02);
  Rpc.Client.close client;
  server_t.Rpc.Transport.close ();
  Thread.join server

let () =
  Helpers.run "rpc"
    [
      ( "inproc",
        [
          Alcotest.test_case "calls" `Quick test_inproc_calls;
          Alcotest.test_case "server exception" `Quick test_server_exception_propagates;
          Alcotest.test_case "unknown method" `Quick test_unknown_method;
          Alcotest.test_case "type confusion rejected" `Quick test_type_confusion_rejected;
          Alcotest.test_case "closed transport" `Quick test_closed_transport;
          Alcotest.test_case "round-trip counter" `Quick test_round_trip_counter;
          Alcotest.test_case "simulated delay" `Quick test_inproc_delay;
        ] );
      ( "socket",
        [
          Alcotest.test_case "end to end" `Quick test_socket_end_to_end;
          Alcotest.test_case "connect failure" `Quick test_socket_connect_failure;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "recv deadline (inproc)" `Quick test_recv_deadline;
          Alcotest.test_case "recv deadline (socket)" `Quick test_socket_deadline;
          Alcotest.test_case "desync poisons client" `Quick test_desync_poisons_client;
          Alcotest.test_case "idempotent retry reconnects" `Quick
            test_idempotent_retry_reconnects;
          Alcotest.test_case "non-idempotent not retried" `Quick
            test_non_idempotent_not_retried;
        ] );
      ( "ns-protocol",
        [
          Alcotest.test_case "full surface" `Quick test_ns_protocol_roundtrip;
          Alcotest.test_case "local and remote agree" `Quick
            test_ns_protocol_local_remote_agree;
          Alcotest.test_case "traces verb" `Quick test_traces_verb;
        ] );
    ]
