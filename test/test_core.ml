module Fs = Sdb_storage.Fs
module Mem = Sdb_storage.Mem_fs
module Store = Sdb_checkpoint.Checkpoint_store
module P = Sdb_pickle.Pickle
open Helpers

let check = Alcotest.check

let get db k = KVDb.query db (fun st -> Hashtbl.find_opt st k)
let set db k v = KVDb.update db (KV.Set (k, v))

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                            *)

let test_create_and_query () =
  let _, _, db = mem_db () in
  check Alcotest.(option string) "empty" None (get db "x");
  set db "x" "1";
  set db "y" "2";
  check Alcotest.(option string) "x" (Some "1") (get db "x");
  check Alcotest.(option string) "y" (Some "2") (get db "y");
  KVDb.update db (KV.Del "x");
  check Alcotest.(option string) "deleted" None (get db "x");
  let s = KVDb.stats db in
  check Alcotest.int "lsn" 3 s.Smalldb.lsn;
  check Alcotest.int "committed" 3 s.Smalldb.updates_committed;
  check Alcotest.int "generation" 0 s.Smalldb.generation;
  check Alcotest.int "log entries" 3 s.Smalldb.log_entries

let test_durability_across_reopen () =
  let _, fs, db = mem_db () in
  for i = 0 to 9 do
    KVDb.update db (sequenced_update i)
  done;
  KVDb.close db;
  let db2 = KVDb.open_exn fs in
  check Alcotest.int "all updates replayed" 10 (sequenced_prefix db2);
  let s = KVDb.stats db2 in
  check Alcotest.int "replayed" 10 s.Smalldb.recovery.Smalldb.replayed;
  check Alcotest.int "lsn continues" 10 s.Smalldb.lsn;
  (* LSNs keep increasing across restarts. *)
  KVDb.update db2 (sequenced_update 10);
  check Alcotest.int "lsn" 11 (KVDb.stats db2).Smalldb.lsn

let test_checkpoint_resets_log () =
  let _, fs, db = mem_db () in
  for i = 0 to 4 do
    KVDb.update db (sequenced_update i)
  done;
  KVDb.checkpoint db;
  let s = KVDb.stats db in
  check Alcotest.int "generation bumped" 1 s.Smalldb.generation;
  check Alcotest.int "log reset" 0 s.Smalldb.log_entries;
  check Alcotest.int "lsn preserved" 5 s.Smalldb.lsn;
  check Alcotest.int "checkpoints" 1 s.Smalldb.checkpoints_written;
  (* More updates after the checkpoint. *)
  for i = 5 to 7 do
    KVDb.update db (sequenced_update i)
  done;
  KVDb.close db;
  let db2 = KVDb.open_exn fs in
  check Alcotest.int "checkpoint + replay" 8 (sequenced_prefix db2);
  check Alcotest.int "only log entries replayed" 3
    (KVDb.stats db2).Smalldb.recovery.Smalldb.replayed

let test_close_then_reopen_idempotent () =
  let _, fs, db = mem_db () in
  set db "a" "1";
  KVDb.close db;
  KVDb.close db;
  (match get db "a" with
  | _ -> Alcotest.fail "expected Closed"
  | exception Smalldb.Closed -> ());
  let db2 = KVDb.open_exn fs in
  check Alcotest.(option string) "value" (Some "1") (get db2 "a")

let test_open_empty_fs_is_durable_immediately () =
  let store, fs, db = mem_db () in
  KVDb.close db;
  (* Even with zero updates, the store must recover to empty. *)
  Mem.crash store ~mode:Mem.Clean;
  let db2 = KVDb.open_exn fs in
  check Alcotest.int "empty" 0 (sequenced_prefix db2)

(* ------------------------------------------------------------------ *)
(* The three-step update                                                *)

let test_precondition_blocks_update () =
  let _, fs, db = mem_db () in
  let before = Fs.Counters.copy fs.Fs.counters in
  let r =
    KVDb.update_checked db
      ~precondition:(fun st ->
        if Hashtbl.mem st "absent" then Ok () else Error "missing key")
      (KV.Set ("x", "1"))
  in
  check (Alcotest.result Alcotest.unit Alcotest.string) "rejected" (Error "missing key") r;
  (* Nothing reached the disk and nothing changed in memory. *)
  let d = Fs.Counters.diff ~after:fs.Fs.counters ~before in
  check Alcotest.int "no disk writes" 0 d.Fs.Counters.data_writes;
  check Alcotest.(option string) "memory untouched" None (get db "x");
  check Alcotest.int "lsn unchanged" 0 (KVDb.stats db).Smalldb.lsn

let test_precondition_passes () =
  let _, _, db = mem_db () in
  set db "x" "1";
  let r =
    KVDb.update_checked db
      ~precondition:(fun st ->
        if Hashtbl.mem st "x" then Ok () else Error "missing")
      (KV.Set ("x", "2"))
  in
  check (Alcotest.result Alcotest.unit Alcotest.string) "accepted" (Ok ()) r;
  check Alcotest.(option string) "applied" (Some "2") (get db "x")

let test_update_is_one_write_one_sync () =
  let _, fs, db = mem_db () in
  set db "warm" "up";
  let before = Fs.Counters.copy fs.Fs.counters in
  set db "x" "1";
  let d = Fs.Counters.diff ~after:fs.Fs.counters ~before in
  check Alcotest.int "one write" 1 d.Fs.Counters.data_writes;
  check Alcotest.int "one sync" 1 d.Fs.Counters.syncs;
  check Alcotest.int "no reads" 0 d.Fs.Counters.data_reads

let test_batch_single_sync () =
  let _, fs, db = mem_db () in
  let before = Fs.Counters.copy fs.Fs.counters in
  KVDb.update_batch db (List.init 5 sequenced_update);
  let d = Fs.Counters.diff ~after:fs.Fs.counters ~before in
  check Alcotest.int "five writes" 5 d.Fs.Counters.data_writes;
  check Alcotest.int "one sync" 1 d.Fs.Counters.syncs;
  check Alcotest.int "all applied" 5 (sequenced_prefix db);
  check Alcotest.int "lsn" 5 (KVDb.stats db).Smalldb.lsn;
  KVDb.update_batch db [];
  check Alcotest.int "empty batch no-op" 5 (KVDb.stats db).Smalldb.lsn

let test_apply_failure_poisons () =
  let module Bomb = struct
    type state = int ref
    type update = Ok_up | Boom

    let name = "bomb"
    let codec_state = P.ref_cell P.int

    let codec_update =
      P.enum ~name:"bomb.update" [ ("ok", Ok_up); ("boom", Boom) ]

    let init () = ref 0

    let apply st = function
      | Ok_up ->
        incr st;
        st
      | Boom -> failwith "apply exploded"
  end in
  let module Db = Smalldb.Make (Bomb) in
  let store = Mem.create_store () in
  let db = Db.open_exn (Mem.fs store) in
  Db.update db Bomb.Ok_up;
  (match Db.update db Bomb.Boom with
  | _ -> Alcotest.fail "expected apply failure"
  | exception Failure _ -> ());
  (* The update was committed but not applied: memory may disagree
     with disk, so the instance must refuse further work. *)
  (match Db.update db Bomb.Ok_up with
  | _ -> Alcotest.fail "expected Poisoned"
  | exception Smalldb.Poisoned -> ());
  match Db.query db (fun st -> !st) with
  | _ -> Alcotest.fail "query should be poisoned too"
  | exception Smalldb.Poisoned -> ()

let test_raising_precondition_releases_lock () =
  (* A precondition that raises (rather than returning [Error]) must
     release the update lock: the engine stays usable and the next
     update does not deadlock on a leaked lock. *)
  let _, fs, db = mem_db () in
  let before = Fs.Counters.copy fs.Fs.counters in
  (match
     KVDb.update_checked db
       ~precondition:(fun _ -> failwith "precondition exploded")
       (KV.Set ("x", "1"))
   with
  | _ -> Alcotest.fail "expected the precondition's exception"
  | exception Failure m -> check Alcotest.string "same exception" "precondition exploded" m);
  (* Nothing committed, nothing poisoned. *)
  let d = Fs.Counters.diff ~after:fs.Fs.counters ~before in
  check Alcotest.int "no disk writes" 0 d.Fs.Counters.data_writes;
  check Alcotest.(option string) "memory untouched" None (get db "x");
  (* Both lock modes must still be acquirable. *)
  set db "x" "2";
  check Alcotest.(option string) "engine still usable" (Some "2") (get db "x");
  check Alcotest.int "lsn counts only the good update" 1 (KVDb.stats db).Smalldb.lsn

(* A KV app whose pickler detonates on a chosen key — for proving that
   an encoding failure releases the lock without poisoning (nothing
   reached the disk). *)
module Fragile = struct
  type state = (string, string) Hashtbl.t
  type update = string * string

  let name = "fragile-kv"
  let codec_state = P.hashtbl P.string P.string

  let codec_update =
    P.conv ~name:"fragile.update"
      (fun (k, v) -> if String.equal k "boom" then failwith "pickler exploded" else (k, v))
      Fun.id
      (P.pair P.string P.string)

  let init () = Hashtbl.create 16

  let apply st (k, v) =
    Hashtbl.replace st k v;
    st
end

module FragileDb = Smalldb.Make (Fragile)

let test_raising_pickler_releases_lock () =
  let store = Mem.create_store () in
  let db = FragileDb.open_exn (Mem.fs store) in
  FragileDb.update db ("a", "1");
  (match FragileDb.update db ("boom", "x") with
  | () -> Alcotest.fail "expected the pickler's exception"
  | exception Failure _ -> ());
  (* Unlike an append or apply failure, nothing was committed: the
     engine is NOT poisoned and keeps working. *)
  FragileDb.update db ("b", "2");
  check Alcotest.(option string) "still usable"
    (Some "2")
    (FragileDb.query db (fun st -> Hashtbl.find_opt st "b"));
  check Alcotest.int "only the good updates committed" 2
    (FragileDb.stats db).Smalldb.lsn

let test_raising_pickler_in_batch () =
  let store = Mem.create_store () in
  let db = FragileDb.open_exn (Mem.fs store) in
  (match FragileDb.update_batch db [ ("a", "1"); ("boom", "x"); ("c", "3") ] with
  | () -> Alcotest.fail "expected the pickler's exception"
  | exception Failure _ -> ());
  check Alcotest.int "nothing committed" 0 (FragileDb.stats db).Smalldb.lsn;
  FragileDb.update_batch db [ ("a", "1"); ("c", "3") ];
  check Alcotest.(option string) "still usable"
    (Some "3")
    (FragileDb.query db (fun st -> Hashtbl.find_opt st "c"))

let test_raising_subscriber_after_commit () =
  (* A subscriber that raises propagates to the updater — but only
     after the commit point, with no lock held: the update is durable,
     applied, and the engine keeps working. *)
  let _, _, db = mem_db () in
  let sub = KVDb.subscribe db (fun _lsn _u -> failwith "subscriber exploded") in
  (match set db "x" "1" with
  | () -> Alcotest.fail "expected the subscriber's exception"
  | exception Failure _ -> ());
  KVDb.unsubscribe db sub;
  check Alcotest.(option string) "update was applied" (Some "1") (get db "x");
  check Alcotest.int "and committed" 1 (KVDb.stats db).Smalldb.lsn;
  set db "y" "2";
  check Alcotest.(option string) "engine still usable" (Some "2") (get db "y")

(* ------------------------------------------------------------------ *)
(* Checkpoint policies                                                  *)

let test_policy_every_n () =
  let config = { Smalldb.default_config with policy = Smalldb.Every_n_updates 3 } in
  let _, _, db = mem_db ~config () in
  for i = 0 to 8 do
    KVDb.update db (sequenced_update i)
  done;
  let s = KVDb.stats db in
  check Alcotest.int "three checkpoints" 3 s.Smalldb.checkpoints_written;
  check Alcotest.int "generation" 3 s.Smalldb.generation;
  check Alcotest.int "log empty after auto-checkpoint" 0 s.Smalldb.log_entries

let test_policy_every_n_batch_crossing () =
  (* A batch that jumps over the policy's multiple must still trigger
     the checkpoint: the policy counts updates since the last
     checkpoint, not [committed mod n]. *)
  let config = { Smalldb.default_config with policy = Smalldb.Every_n_updates 5 } in
  let _, _, db = mem_db ~config () in
  KVDb.update_batch db (List.init 7 sequenced_update);
  let s = KVDb.stats db in
  check Alcotest.int "batch crossing the boundary checkpoints" 1
    s.Smalldb.checkpoints_written;
  check Alcotest.int "log reset" 0 s.Smalldb.log_entries;
  (* The counter restarts from the checkpoint: five more singles fire
     exactly one more. *)
  for i = 7 to 11 do
    KVDb.update db (sequenced_update i)
  done;
  check Alcotest.int "counter reset at the checkpoint" 2
    (KVDb.stats db).Smalldb.checkpoints_written;
  check Alcotest.int "nothing lost" 12 (sequenced_prefix db)

let test_policy_log_bytes () =
  let config =
    { Smalldb.default_config with policy = Smalldb.Log_bytes_exceeds 200 }
  in
  let _, _, db = mem_db ~config () in
  for i = 0 to 19 do
    KVDb.update db (sequenced_update i)
  done;
  let s = KVDb.stats db in
  Alcotest.check Alcotest.bool "checkpointed at least once" true
    (s.Smalldb.checkpoints_written > 0);
  Alcotest.check Alcotest.bool "log stays bounded" true (s.Smalldb.log_bytes <= 400);
  check Alcotest.int "nothing lost" 20 (sequenced_prefix db)

let test_manual_policy_never_auto () =
  let _, _, db = mem_db () in
  for i = 0 to 49 do
    KVDb.update db (sequenced_update i)
  done;
  check Alcotest.int "no auto checkpoints" 0 (KVDb.stats db).Smalldb.checkpoints_written

(* ------------------------------------------------------------------ *)
(* Audit trail                                                          *)

let test_fold_log_audit () =
  let _, _, db = mem_db () in
  for i = 0 to 4 do
    KVDb.update db (sequenced_update i)
  done;
  KVDb.checkpoint db;
  for i = 5 to 6 do
    KVDb.update db (sequenced_update i)
  done;
  let entries = KVDb.fold_log db ~init:[] ~f:(fun acc lsn u -> (lsn, u) :: acc) in
  (* Only the current generation's updates, with absolute LSNs. *)
  check Alcotest.int "two entries" 2 (List.length entries);
  (match List.rev entries with
  | [ (5, KV.Set (k5, _)); (6, KV.Set (k6, _)) ] ->
    check Alcotest.string "lsn 5 key" (sequenced_key 5) k5;
    check Alcotest.string "lsn 6 key" (sequenced_key 6) k6
  | _ -> Alcotest.fail "wrong audit entries");
  (* log_suffix covering and non-covering. *)
  (match KVDb.log_suffix db ~from:6 with
  | Some [ (6, _) ] -> ()
  | _ -> Alcotest.fail "suffix from 6");
  (match KVDb.log_suffix db ~from:5 with
  | Some l -> check Alcotest.int "suffix from 5" 2 (List.length l)
  | None -> Alcotest.fail "should cover 5");
  match KVDb.log_suffix db ~from:2 with
  | None -> ()
  | Some _ -> Alcotest.fail "2 was absorbed by the checkpoint"

(* ------------------------------------------------------------------ *)
(* Type safety of the store                                             *)

let test_foreign_app_rejected () =
  let module Other = struct
    type state = int list
    type update = int

    let name = "other-app"
    let codec_state = P.list P.int
    let codec_update = P.int
    let init () = []
    let apply st u = u :: st
  end in
  let module OtherDb = Smalldb.Make (Other) in
  let _, fs, db = mem_db () in
  set db "a" "1";
  KVDb.close db;
  match OtherDb.open_ fs with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "foreign app opened someone else's store"

let test_same_wire_different_name_rejected () =
  (* Same state/update wire types, different application name. *)
  let module KV2 = struct
    include KV

    let name = "test-kv-imposter"
  end in
  let module Db2 = Smalldb.Make (KV2) in
  let _, fs, db = mem_db () in
  set db "a" "1";
  KVDb.close db;
  match Db2.open_ fs with
  | Error e ->
    Alcotest.check Alcotest.bool "names the app" true
      (String.length e > 0)
  | Ok _ -> Alcotest.fail "imposter app accepted"

(* ------------------------------------------------------------------ *)
(* Hard errors (§4)                                                     *)

let retained_config = { Smalldb.default_config with retain_previous = true }

let test_hard_error_checkpoint_fallback () =
  let store, fs, db = mem_db ~config:retained_config () in
  for i = 0 to 4 do
    KVDb.update db (sequenced_update i)
  done;
  KVDb.checkpoint db;
  (* generation 1 *)
  for i = 5 to 7 do
    KVDb.update db (sequenced_update i)
  done;
  KVDb.close db;
  (* Damage the current checkpoint: recovery must reload the previous
     checkpoint, replay the previous log, then the current log. *)
  Mem.damage store ~file:(Store.checkpoint_file 1) ~offset:10 ~len:20;
  let db2 = KVDb.open_exn ~config:retained_config fs in
  check Alcotest.int "full state recovered" 8 (sequenced_prefix db2);
  let r = (KVDb.stats db2).Smalldb.recovery in
  Alcotest.check Alcotest.bool "used previous generation" true
    r.Smalldb.used_previous_generation;
  (* The rescue checkpoint wrote a fresh generation; another restart
     must now succeed without the fallback. *)
  KVDb.close db2;
  let db3 = KVDb.open_exn ~config:retained_config fs in
  check Alcotest.int "stable thereafter" 8 (sequenced_prefix db3);
  Alcotest.check Alcotest.bool "no fallback needed" false
    (KVDb.stats db3).Smalldb.recovery.Smalldb.used_previous_generation

let test_hard_error_without_retention_fails () =
  let store, fs, db = mem_db () in
  set db "a" "1";
  KVDb.checkpoint db;
  KVDb.close db;
  Mem.damage store ~file:(Store.checkpoint_file 1) ~offset:5 ~len:5;
  match KVDb.open_ fs with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "opened with damaged checkpoint and no fallback"

let test_interior_log_damage_refused () =
  (* Valid committed entries beyond a damaged one: recovery must refuse
     to silently truncate them under the default policy, and recover
     them under Skip_damaged. *)
  let store, fs, db = mem_db () in
  for i = 0 to 4 do
    KVDb.update db (KV.Set (sequenced_key i, String.make 2000 'v'))
  done;
  KVDb.close db;
  Mem.damage store ~file:(Store.log_file 0) ~offset:2500 ~len:100;
  (match KVDb.open_ fs with
  | Error e ->
    Alcotest.check Alcotest.bool "mentions interior damage" true
      (String.length e > 0)
  | Ok _ -> Alcotest.fail "interior damage silently truncated");
  let skip_config = { Smalldb.default_config with log_recovery = `Skip_damaged } in
  match KVDb.open_ ~config:skip_config fs with
  | Ok db2 ->
    check Alcotest.int "entries beyond damage recovered" 4
      (KVDb.query db2 Hashtbl.length)
  | Error e -> Alcotest.fail e

let test_skip_damaged_log_entry () =
  let skip_config = { Smalldb.default_config with log_recovery = `Skip_damaged } in
  let store, fs, db = mem_db ~config:skip_config () in
  (* Large-ish entries so one can be damaged in isolation. *)
  for i = 0 to 3 do
    KVDb.update db (KV.Set (sequenced_key i, String.make 2000 'v'))
  done;
  KVDb.close db;
  (* Damage entry #1's payload region (device-level hard error). *)
  Mem.damage store ~file:(Store.log_file 0) ~offset:2500 ~len:100;
  let db2 = KVDb.open_exn ~config:skip_config fs in
  let s = KVDb.stats db2 in
  check Alcotest.int "skipped one" 1 s.Smalldb.recovery.Smalldb.skipped_damaged;
  check Alcotest.int "replayed the rest" 3 s.Smalldb.recovery.Smalldb.replayed;
  (* The database is missing exactly the damaged update. *)
  check Alcotest.(option string) "entry 0 present" (Some (String.make 2000 'v'))
    (get db2 (sequenced_key 0));
  check Alcotest.(option string) "entry 1 lost" None (get db2 (sequenced_key 1));
  check Alcotest.bool "entry 3 present" true (get db2 (sequenced_key 3) <> None)

(* ------------------------------------------------------------------ *)
(* Audit-trail archiving and history (§4)                               *)

let archive_config = { Smalldb.default_config with archive_logs = true }

let test_archive_accumulates () =
  let _, fs, db = mem_db ~config:archive_config () in
  for i = 0 to 3 do
    KVDb.update db (sequenced_update i)
  done;
  KVDb.checkpoint db;
  for i = 4 to 6 do
    KVDb.update db (sequenced_update i)
  done;
  KVDb.checkpoint db;
  let archives = Sdb_checkpoint.Checkpoint_store.archived_logs fs in
  check Alcotest.(list (pair int string)) "two archives"
    [ (0, "archive-logfile0"); (1, "archive-logfile1") ]
    archives;
  (* Archives survive restart cleanup. *)
  KVDb.close db;
  let db2 = KVDb.open_exn ~config:archive_config fs in
  check Alcotest.int "archives survive recovery" 2
    (List.length (Sdb_checkpoint.Checkpoint_store.archived_logs fs));
  KVDb.close db2

let test_history_fold_and_state_at () =
  let _, _fs, db = mem_db ~config:archive_config () in
  for i = 0 to 9 do
    KVDb.update db (sequenced_update i);
    if i = 3 || i = 7 then KVDb.checkpoint db
  done;
  Alcotest.check Alcotest.bool "history available" true (KVDb.History.available db);
  (* The full trail, in order, across archives and the live log. *)
  (match KVDb.History.fold db ~init:[] ~f:(fun acc lsn u -> (lsn, u) :: acc) with
  | Error e -> Alcotest.fail e
  | Ok entries ->
    let entries = List.rev entries in
    check Alcotest.int "all ten updates" 10 (List.length entries);
    List.iteri
      (fun i (lsn, u) ->
        check Alcotest.int "lsn order" i lsn;
        match u with
        | KV.Set (k, _) -> check Alcotest.string "key" (sequenced_key i) k
        | KV.Del _ -> Alcotest.fail "unexpected delete")
      entries);
  (* Time travel. *)
  (match KVDb.History.state_at db ~lsn:5 with
  | Error e -> Alcotest.fail e
  | Ok st -> check Alcotest.int "state at lsn 5" 5 (Hashtbl.length st));
  (match KVDb.History.state_at db ~lsn:0 with
  | Error e -> Alcotest.fail e
  | Ok st -> check Alcotest.int "state at lsn 0" 0 (Hashtbl.length st));
  (match KVDb.History.state_at db ~lsn:10 with
  | Error e -> Alcotest.fail e
  | Ok st ->
    check Alcotest.int "state at tip" 10 (Hashtbl.length st);
    (* It must equal the live state. *)
    let live = kv_contents db in
    let replayed = Hashtbl.fold (fun k v acc -> (k, v) :: acc) st [] |> List.sort compare in
    check Alcotest.(list (pair string string)) "tip equals live" live replayed);
  match KVDb.History.state_at db ~lsn:11 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "lsn beyond tip accepted"

let test_history_unavailable_without_archiving () =
  let _, _, db = mem_db () in
  KVDb.update db (sequenced_update 0);
  KVDb.checkpoint db;
  KVDb.update db (sequenced_update 1);
  Alcotest.check Alcotest.bool "no archive, no history" false
    (KVDb.History.available db);
  match KVDb.History.fold db ~init:0 ~f:(fun acc _ _ -> acc + 1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "incomplete history accepted"

let test_history_survives_crash_mid_checkpoint () =
  (* A crash between the commit point and the archival rename must not
     lose the superseded log from the trail. *)
  let found_crash = ref false in
  let k = ref 1 in
  while not !found_crash && !k < 60 do
    let store = Mem.create_store ~seed:(7000 + !k) () in
    let fs = Mem.fs store in
    let db = KVDb.open_exn ~config:archive_config fs in
    for i = 0 to 3 do
      KVDb.update db (sequenced_update i)
    done;
    let crashed = ref false in
    (try
       Mem.set_crash_after store ~ops:!k ~mode:Mem.Clean;
       KVDb.checkpoint db;
       Mem.disarm_crash store
     with Mem.Crash -> crashed := true);
    Mem.disarm_crash store;
    if !crashed then begin
      let db2 = KVDb.open_exn ~config:archive_config fs in
      (* Whatever generation we recovered into, if the checkpoint
         committed then history must still be complete. *)
      if (KVDb.stats db2).Smalldb.generation = 1 then begin
        found_crash := true;
        Alcotest.check Alcotest.bool "history complete after crash" true
          (KVDb.History.available db2)
      end;
      KVDb.close db2
    end;
    incr k
  done;
  Alcotest.check Alcotest.bool "exercised a post-commit crash" true !found_crash

(* History property: with archiving on, state_at any lsn equals the
   model folded over the first lsn updates, across random checkpoint
   placements. *)
let prop_history_prefix =
  Helpers.qtest ~count:40 "state_at = model prefix"
    QCheck2.Gen.(
      pair
        (list_size (1 -- 25) (pair (0 -- 8) (0 -- 99)))
        (list_size (0 -- 4) (0 -- 24)))
    (fun (ops, ckpt_points) ->
      let _, _, db = mem_db ~config:archive_config () in
      List.iteri
        (fun i (k, v) ->
          KVDb.update db (KV.Set (Printf.sprintf "k%d" k, string_of_int v));
          if List.mem i ckpt_points then KVDb.checkpoint db)
        ops;
      let n = List.length ops in
      let probe = [ 0; n / 2; n ] in
      List.for_all
        (fun lsn ->
          match KVDb.History.state_at db ~lsn with
          | Error _ -> false
          | Ok st ->
            let model = Hashtbl.create 8 in
            List.iteri
              (fun i (k, v) ->
                if i < lsn then
                  Hashtbl.replace model (Printf.sprintf "k%d" k) (string_of_int v))
              ops;
            Hashtbl.length st = Hashtbl.length model
            && Hashtbl.fold
                 (fun k v acc -> acc && Hashtbl.find_opt st k = Some v)
                 model true)
        probe)

(* ------------------------------------------------------------------ *)
(* Timing counters                                                      *)

let test_phase_times_accumulate () =
  let _, fs, db = mem_db () in
  for i = 0 to 9 do
    KVDb.update db (sequenced_update i)
  done;
  KVDb.checkpoint db;
  let p = (KVDb.stats db).Smalldb.phase in
  Alcotest.check Alcotest.bool "pickle time" true (p.Smalldb.pickle_s >= 0.0);
  Alcotest.check Alcotest.bool "log time" true (p.Smalldb.log_s >= 0.0);
  Alcotest.check Alcotest.bool "ckpt pickle time" true (p.Smalldb.ckpt_pickle_s >= 0.0);
  KVDb.close db;
  let db2 = KVDb.open_exn fs in
  let p2 = (KVDb.stats db2).Smalldb.phase in
  Alcotest.check Alcotest.bool "restore timed" true (p2.Smalldb.restore_s >= 0.0)

(* The span taxonomy is a public interface: exactly these names, in
   this order, from the engine's code paths. *)

module Trace = Sdb_obs.Trace

let with_ring f =
  let ring = Trace.Ring.create ~capacity:64 in
  Trace.set_sink (Some (Trace.Ring.sink ring));
  Fun.protect ~finally:(fun () -> Trace.set_sink None) (fun () -> f ring)

let span_names ring = List.map (fun s -> s.Trace.name) (Trace.Ring.contents ring)

let test_update_span_sequence () =
  let _, _, db = mem_db () in
  with_ring (fun ring ->
      KVDb.update db (KV.Set ("k", "v"));
      check
        (Alcotest.list Alcotest.string)
        "one update, four phase spans"
        [ "update.verify"; "update.log"; "update.apply"; "update.notify" ]
        (span_names ring);
      (* Every span carries the application name. *)
      List.iter
        (fun s ->
          check Alcotest.(option string) "app attr" (Some "test-kv")
            (List.assoc_opt "app" s.Trace.attrs))
        (Trace.Ring.contents ring);
      Trace.Ring.clear ring;
      KVDb.checkpoint db;
      check
        (Alcotest.list Alcotest.string)
        "checkpoint span" [ "checkpoint" ] (span_names ring))

let test_recovery_spans_after_reopen () =
  let _, fs, db = mem_db () in
  for i = 0 to 4 do
    KVDb.update db (sequenced_update i)
  done;
  KVDb.close db;
  with_ring (fun ring ->
      let db2 = KVDb.open_exn fs in
      check
        (Alcotest.list Alcotest.string)
        "recovery spans in phase order"
        [ "recovery.restore"; "recovery.replay" ]
        (span_names ring);
      let replay = List.nth (Trace.Ring.contents ring) 1 in
      check Alcotest.(option string) "replayed count attr" (Some "5")
        (List.assoc_opt "replayed" replay.Trace.attrs);
      KVDb.close db2)

(* ------------------------------------------------------------------ *)
(* Concurrent (fuzzy) checkpoints                                       *)

(* An immutable application, as checkpoint_concurrent requires. *)
module StrMap = Map.Make (String)

module MapKV = struct
  type state = string StrMap.t
  type update = Set of string * string | Del of string

  let name = "map-kv"

  let codec_state =
    P.conv ~name:"map-kv.state"
      (fun m -> StrMap.bindings m)
      (fun bindings -> StrMap.of_seq (List.to_seq bindings))
      (P.list (P.pair P.string P.string))

  let codec_update =
    P.variant ~name:"map-kv.update"
      [
        P.case "set"
          (P.pair P.string P.string)
          (function Set (k, v) -> Some (k, v) | Del _ -> None)
          (fun (k, v) -> Set (k, v));
        P.case "del" P.string
          (function Del k -> Some k | Set _ -> None)
          (fun k -> Del k);
      ]

  let init () = StrMap.empty

  let apply st = function
    | Set (k, v) -> StrMap.add k v st
    | Del k -> StrMap.remove k st
end

module MapDb = Smalldb.Make (MapKV)

let test_concurrent_checkpoint_basic () =
  let store = Mem.create_store ~seed:71 () in
  let fs = Mem.fs store in
  let db = MapDb.open_exn fs in
  for i = 0 to 9 do
    MapDb.update db (MapKV.Set (sequenced_key i, sequenced_value i))
  done;
  MapDb.checkpoint_concurrent db;
  let s = MapDb.stats db in
  check Alcotest.int "generation advanced" 1 s.Smalldb.generation;
  check Alcotest.int "log reset" 0 s.Smalldb.log_entries;
  check Alcotest.int "lsn preserved" 10 s.Smalldb.lsn;
  MapDb.update db (MapKV.Set (sequenced_key 10, sequenced_value 10));
  MapDb.close db;
  let db2 = MapDb.open_exn fs in
  check Alcotest.int "state complete" 11 (MapDb.query db2 StrMap.cardinal);
  check Alcotest.int "one replay" 1 (MapDb.stats db2).Smalldb.recovery.Smalldb.replayed

let test_concurrent_checkpoint_carries_tail () =
  (* Updates committed between the snapshot and the switch must land in
     the new generation's log.  We simulate the race deterministically:
     a writer thread runs while the checkpoint pickles a large state. *)
  let store = Mem.create_store ~seed:72 () in
  let fs = Mem.fs store in
  let db = MapDb.open_exn fs in
  (* Large-ish state so phase 2 takes measurable time. *)
  for i = 0 to 4999 do
    MapDb.update db (MapKV.Set (Printf.sprintf "bulk%05d" i, String.make 40 'x'))
  done;
  let stop = ref false in
  let written = ref 0 in
  let writer =
    Thread.create
      (fun () ->
        while not !stop do
          MapDb.update db (MapKV.Set (Printf.sprintf "live%06d" !written, "v"));
          incr written;
          Thread.yield ()
        done)
      ()
  in
  for _ = 1 to 3 do
    MapDb.checkpoint_concurrent db
  done;
  stop := true;
  Thread.join writer;
  let total = 5000 + !written in
  check Alcotest.int "nothing lost in memory" total (MapDb.query db StrMap.cardinal);
  check Alcotest.int "lsn" total (MapDb.stats db).Smalldb.lsn;
  MapDb.close db;
  let db2 = MapDb.open_exn fs in
  check Alcotest.int "nothing lost on disk" total (MapDb.query db2 StrMap.cardinal);
  MapDb.close db2

let test_concurrent_checkpoint_crash_sweep () =
  (* Crash at every disk operation inside checkpoint_concurrent. *)
  List.iter
    (fun mode ->
      let rec go k any =
        let store = Mem.create_store ~seed:(9000 + k) () in
        let fs = Mem.fs store in
        let db = MapDb.open_exn fs in
        for i = 0 to 7 do
          MapDb.update db (MapKV.Set (sequenced_key i, sequenced_value i))
        done;
        let crashed = ref false in
        (try
           Mem.set_crash_after store ~ops:k ~mode;
           MapDb.checkpoint_concurrent db;
           Mem.disarm_crash store
         with Mem.Crash -> crashed := true);
        Mem.disarm_crash store;
        if !crashed then begin
          (match MapDb.open_ fs with
          | Error e -> Alcotest.fail (Printf.sprintf "ckpt crash@%d: %s" k e)
          | Ok db2 ->
            check Alcotest.int
              (Printf.sprintf "ckpt crash@%d state" k)
              8
              (MapDb.query db2 StrMap.cardinal);
            MapDb.close db2);
          go (k + 1) true
        end
        else if not any then Alcotest.fail "sweep never crashed"
      in
      go 1 false)
    [ Mem.Clean; Mem.Torn ]

let test_concurrent_checkpoint_rejects_archiving () =
  let store = Mem.create_store ~seed:73 () in
  let db =
    MapDb.open_exn ~config:{ Smalldb.default_config with archive_logs = true }
      (Mem.fs store)
  in
  Alcotest.check_raises "archive_logs rejected"
    (Invalid_argument "Smalldb.checkpoint_concurrent: incompatible with archive_logs")
    (fun () -> MapDb.checkpoint_concurrent db)

(* ------------------------------------------------------------------ *)
(* Real file system integration                                         *)

let test_real_fs_end_to_end () =
  (* The same engine over an actual directory: creation, updates,
     checkpoint (rename-based switch), torn-tail truncation via real
     ftruncate, and recovery. *)
  let fs = Sdb_storage.Real_fs.create ~root:(Helpers.fresh_dir "engine") in
  let db = KVDb.open_exn fs in
  for i = 0 to 9 do
    KVDb.update db (sequenced_update i)
  done;
  KVDb.checkpoint db;
  for i = 10 to 14 do
    KVDb.update db (sequenced_update i)
  done;
  KVDb.close db;
  let db2 = KVDb.open_exn fs in
  check Alcotest.int "real fs recovery" 15 (sequenced_prefix db2);
  check Alcotest.int "replayed the tail" 5
    (KVDb.stats db2).Smalldb.recovery.Smalldb.replayed;
  (* Chop bytes off the real log to fake a torn tail. *)
  KVDb.update db2 (sequenced_update 15);
  let gen = (KVDb.stats db2).Smalldb.generation in
  KVDb.close db2;
  let log = Store.log_file gen in
  fs.Fs.truncate log (fs.Fs.file_size log - 3);
  let db3 = KVDb.open_exn fs in
  check Alcotest.int "torn tail dropped on real fs" 15 (sequenced_prefix db3);
  Alcotest.check Alcotest.bool "tail discard reported" true
    (KVDb.stats db3).Smalldb.recovery.Smalldb.log_tail_discarded;
  (* And appending resumes cleanly after the real truncation. *)
  KVDb.update db3 (sequenced_update 15);
  KVDb.close db3;
  let db4 = KVDb.open_exn fs in
  check Alcotest.int "resumed" 16 (sequenced_prefix db4);
  KVDb.close db4

(* ------------------------------------------------------------------ *)
(* Concurrency                                                          *)

let test_concurrent_updates_and_queries () =
  let _, _, db = mem_db () in
  let writers =
    List.init 4 (fun w ->
        Thread.create
          (fun () ->
            for i = 0 to 99 do
              KVDb.update db (KV.Set (Printf.sprintf "w%d-%d" w i, string_of_int i))
            done)
          ())
  in
  let reader_errors = ref 0 in
  let readers =
    List.init 4 (fun _ ->
        Thread.create
          (fun () ->
            for _ = 0 to 200 do
              let n = KVDb.query db Hashtbl.length in
              if n < 0 then incr reader_errors
            done)
          ())
  in
  List.iter Thread.join writers;
  List.iter Thread.join readers;
  check Alcotest.int "no reader errors" 0 !reader_errors;
  check Alcotest.int "all writes applied" 400 (KVDb.query db Hashtbl.length);
  check Alcotest.int "lsn" 400 (KVDb.stats db).Smalldb.lsn

let test_checkpoint_during_concurrent_queries () =
  let _, fs, db = mem_db () in
  for i = 0 to 9 do
    KVDb.update db (sequenced_update i)
  done;
  let stop = ref false in
  let reader =
    Thread.create
      (fun () ->
        while not !stop do
          ignore (KVDb.query db Hashtbl.length)
        done)
      ()
  in
  for _ = 1 to 5 do
    KVDb.checkpoint db
  done;
  stop := true;
  Thread.join reader;
  KVDb.close db;
  let db2 = KVDb.open_exn fs in
  check Alcotest.int "state intact" 10 (sequenced_prefix db2)

(* ------------------------------------------------------------------ *)
(* Graceful degradation: disk full                                      *)

module Fault = Sdb_storage.Fault_fs

let fault_db () =
  let store = Mem.create_store ~seed:11 () in
  let ctl, ffs = Fault.wrap (Mem.fs store) in
  (store, ctl, ffs, KVDb.open_exn ffs)

let test_disk_full_degrades_and_recovers () =
  let store, _, db = mem_db () in
  for i = 0 to 9 do
    KVDb.update db (sequenced_update i)
  done;
  (* Cap the store so tightly that neither an append nor the exit
     checkpoint fits. *)
  Mem.set_capacity store (Some (Mem.total_bytes store + 4));
  (match KVDb.update db (sequenced_update 10) with
  | _ -> fail "expected Degraded"
  | exception Smalldb.Degraded _ -> ());
  (* The refused update failed cleanly: memory still equals disk. *)
  check Alcotest.int "committed prefix intact" 10 (sequenced_prefix db);
  (match KVDb.health db with
  | `Degraded _ -> ()
  | _ -> fail "expected degraded health");
  (* Read-only mode: enquiries are served... *)
  check
    Alcotest.(option string)
    "enquiries served" (Some "v0000") (get db "k0000");
  (* ...a degraded engine can still be scrubbed... *)
  let r = KVDb.scrub db in
  check Alcotest.bool "scrub runs while degraded" true r.Smalldb.replay_consistent;
  (* ...and updates keep being refused (the retry checkpoint cannot
     reclaim enough under this cap either). *)
  Thread.delay 0.03;
  (match KVDb.update db (sequenced_update 10) with
  | _ -> fail "expected Degraded on retry"
  | exception Smalldb.Degraded _ -> ());
  (* Space turns up (operator freed some): once the backoff expires the
     next update first checkpoints — resetting the log is what reclaims
     space — and then commits normally. *)
  Mem.set_capacity store (Some (Mem.total_bytes store + 2048));
  Thread.delay 0.1;
  KVDb.update db (sequenced_update 10);
  check Alcotest.int "auto-recovered" 11 (sequenced_prefix db);
  (match KVDb.health db with
  | `Healthy -> ()
  | _ -> fail "expected healthy after recovery");
  Alcotest.check Alcotest.bool "exit ran a checkpoint" true
    ((KVDb.stats db).Smalldb.generation > 0);
  KVDb.close db

let test_write_fault_rejects_cleanly () =
  let _, ctl, _, db = fault_db () in
  set db "a" "1";
  Fault.fail_nth ctl ~op:`Write ~n:1 ();
  (* The failed append is rolled back (truncated off), so this is a
     pre-commit-point failure: the one update fails, nothing else. *)
  (match set db "b" "2" with
  | _ -> fail "expected Io_error"
  | exception Fs.Io_error _ -> ());
  check Alcotest.(option string) "rejected update absent" None (get db "b");
  (match KVDb.health db with `Healthy -> () | _ -> fail "expected healthy");
  set db "b" "2";
  check Alcotest.(option string) "usable after clean reject" (Some "2") (get db "b")

let test_fsync_fault_poisons () =
  let _, ctl, _, db = fault_db () in
  set db "a" "1";
  Fault.fail_nth ctl ~op:`Sync ~n:1 ();
  (* A failed fsync may have left any prefix durable — the fsyncgate
     rule: never retry it, poison instead. *)
  (match set db "b" "2" with
  | _ -> fail "expected Io_error"
  | exception Fs.Io_error _ -> ());
  (match KVDb.health db with `Poisoned -> () | _ -> fail "expected poisoned");
  (match get db "a" with
  | _ -> fail "expected Poisoned"
  | exception Smalldb.Poisoned -> ())

(* ------------------------------------------------------------------ *)
(* Integrity scrubbing                                                  *)

(* Canonical digest for the KV app: sorted bindings, so equal tables
   give equal strings regardless of insertion order. *)
let kv_digest st =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) st []
  |> List.sort compare
  |> List.concat_map (fun (k, v) -> [ k; v ])
  |> String.concat "\x00" |> Digest.string

let test_scrub_clean () =
  let _, _, db = mem_db () in
  for i = 0 to 9 do
    KVDb.update db (sequenced_update i)
  done;
  KVDb.checkpoint db;
  for i = 10 to 14 do
    KVDb.update db (sequenced_update i)
  done;
  let r = KVDb.scrub ~digest:kv_digest db in
  check Alcotest.int "no findings" 0 (List.length r.Smalldb.findings);
  check Alcotest.bool "replay consistent" true r.Smalldb.replay_consistent;
  check Alcotest.bool "no repair needed" false r.Smalldb.repaired;
  let gen = (KVDb.stats db).Smalldb.generation in
  check Alcotest.bool "scanned the checkpoint" true
    (List.mem (Store.checkpoint_file gen) r.Smalldb.scanned_files);
  check Alcotest.bool "scanned the log" true
    (List.mem (Store.log_file gen) r.Smalldb.scanned_files);
  check Alcotest.bool "report retained" true (KVDb.last_scrub db = Some r)

let test_scrub_detects_and_repairs_damage () =
  let store, fs, db = mem_db () in
  for i = 0 to 19 do
    KVDb.update db (sequenced_update i)
  done;
  let gen = (KVDb.stats db).Smalldb.generation in
  let log = Store.log_file gen in
  (* Silently rot one committed entry in the middle of the log. *)
  Mem.damage store ~file:log ~offset:60 ~len:8;
  let r = KVDb.scrub ~digest:kv_digest db in
  check Alcotest.bool "damage found" true (r.Smalldb.findings <> []);
  check Alcotest.bool "file and offset reported" true
    (List.exists
       (fun f ->
         String.equal f.Smalldb.file log
         && f.Smalldb.offset >= 0
         && f.Smalldb.offset <= 60)
       r.Smalldb.findings);
  check Alcotest.bool "replay inconsistent" false r.Smalldb.replay_consistent;
  (* Self-repair: memory is the good copy; a fresh checkpoint restores
     consistency and the damaged generation is dropped. *)
  let r2 = KVDb.scrub ~repair:true ~digest:kv_digest db in
  check Alcotest.bool "repaired" true r2.Smalldb.repaired;
  let r3 = KVDb.scrub ~digest:kv_digest db in
  check Alcotest.int "clean after repair" 0 (List.length r3.Smalldb.findings);
  check Alcotest.bool "consistent after repair" true r3.Smalldb.replay_consistent;
  (* Still updatable, and the repaired store recovers everything. *)
  KVDb.update db (sequenced_update 20);
  KVDb.close db;
  let db2 = KVDb.open_exn fs in
  check Alcotest.int "repaired store recovers" 21 (sequenced_prefix db2);
  KVDb.close db2

let test_scrub_digest_mismatch () =
  let _, _, db = mem_db () in
  for i = 0 to 4 do
    KVDb.update db (sequenced_update i)
  done;
  (* Corrupt memory behind the engine's back: every file is pristine,
     yet disk no longer replays to the live state.  Only the digest
     cross-check can see this. *)
  KVDb.query db (fun st -> Hashtbl.replace st "sneak" "gremlin");
  let r = KVDb.scrub ~digest:kv_digest db in
  check Alcotest.bool "whole-state finding" true
    (List.exists (fun f -> f.Smalldb.offset = -1) r.Smalldb.findings);
  check Alcotest.bool "replay inconsistent" false r.Smalldb.replay_consistent;
  (* Without a digest the divergence is invisible — which is exactly
     why the nameserver supplies one. *)
  let r2 = KVDb.scrub db in
  check Alcotest.bool "invisible without digest" true r2.Smalldb.replay_consistent

let test_background_scrubber_repairs () =
  let store, _, db = mem_db () in
  for i = 0 to 9 do
    KVDb.update db (sequenced_update i)
  done;
  let gen = (KVDb.stats db).Smalldb.generation in
  Mem.damage store ~file:(Store.log_file gen) ~offset:40 ~len:4;
  KVDb.start_scrubber ~interval:0.02 ~digest:kv_digest db;
  (match KVDb.start_scrubber ~interval:9. db with
  | _ -> fail "expected Invalid_argument on double start"
  | exception Invalid_argument _ -> ());
  let deadline = Unix.gettimeofday () +. 5. in
  let rec wait () =
    match KVDb.last_scrub db with
    | Some r when r.Smalldb.repaired -> ()
    | _ ->
      if Unix.gettimeofday () > deadline then fail "scrubber never repaired"
      else begin
        Thread.delay 0.01;
        wait ()
      end
  in
  wait ();
  KVDb.stop_scrubber db;
  KVDb.stop_scrubber db;
  (* idempotent *)
  let r = KVDb.scrub ~digest:kv_digest db in
  check Alcotest.int "clean after background repair" 0
    (List.length r.Smalldb.findings);
  KVDb.close db

let () =
  Helpers.run "core"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "create and query" `Quick test_create_and_query;
          Alcotest.test_case "durability across reopen" `Quick
            test_durability_across_reopen;
          Alcotest.test_case "checkpoint resets log" `Quick test_checkpoint_resets_log;
          Alcotest.test_case "close idempotent" `Quick test_close_then_reopen_idempotent;
          Alcotest.test_case "empty db durable" `Quick
            test_open_empty_fs_is_durable_immediately;
        ] );
      ( "update-protocol",
        [
          Alcotest.test_case "precondition blocks update" `Quick
            test_precondition_blocks_update;
          Alcotest.test_case "precondition passes" `Quick test_precondition_passes;
          Alcotest.test_case "one write one sync" `Quick test_update_is_one_write_one_sync;
          Alcotest.test_case "batch single sync" `Quick test_batch_single_sync;
          Alcotest.test_case "apply failure poisons" `Quick test_apply_failure_poisons;
          Alcotest.test_case "raising precondition releases lock" `Quick
            test_raising_precondition_releases_lock;
          Alcotest.test_case "raising pickler releases lock" `Quick
            test_raising_pickler_releases_lock;
          Alcotest.test_case "raising pickler in batch" `Quick
            test_raising_pickler_in_batch;
          Alcotest.test_case "raising subscriber after commit" `Quick
            test_raising_subscriber_after_commit;
        ] );
      ( "policies",
        [
          Alcotest.test_case "every n updates" `Quick test_policy_every_n;
          Alcotest.test_case "batch crosses the boundary" `Quick
            test_policy_every_n_batch_crossing;
          Alcotest.test_case "log bytes threshold" `Quick test_policy_log_bytes;
          Alcotest.test_case "manual never auto" `Quick test_manual_policy_never_auto;
        ] );
      ( "audit",
        [ Alcotest.test_case "fold_log and log_suffix" `Quick test_fold_log_audit ] );
      ( "type-safety",
        [
          Alcotest.test_case "foreign app rejected" `Quick test_foreign_app_rejected;
          Alcotest.test_case "imposter name rejected" `Quick
            test_same_wire_different_name_rejected;
        ] );
      ( "hard-errors",
        [
          Alcotest.test_case "checkpoint fallback" `Quick
            test_hard_error_checkpoint_fallback;
          Alcotest.test_case "no retention no fallback" `Quick
            test_hard_error_without_retention_fails;
          Alcotest.test_case "skip damaged log entry" `Quick test_skip_damaged_log_entry;
          Alcotest.test_case "interior log damage refused" `Quick
            test_interior_log_damage_refused;
        ] );
      ( "history",
        [
          Alcotest.test_case "archive accumulates" `Quick test_archive_accumulates;
          Alcotest.test_case "fold and state_at" `Quick test_history_fold_and_state_at;
          Alcotest.test_case "unavailable without archiving" `Quick
            test_history_unavailable_without_archiving;
          Alcotest.test_case "survives crash mid-checkpoint" `Quick
            test_history_survives_crash_mid_checkpoint;
          prop_history_prefix;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "phase times" `Quick test_phase_times_accumulate;
          Alcotest.test_case "update span sequence" `Quick test_update_span_sequence;
          Alcotest.test_case "recovery spans after reopen" `Quick
            test_recovery_spans_after_reopen;
        ] );
      ( "concurrent-checkpoint",
        [
          Alcotest.test_case "basic" `Quick test_concurrent_checkpoint_basic;
          Alcotest.test_case "carries concurrent tail" `Quick
            test_concurrent_checkpoint_carries_tail;
          Alcotest.test_case "crash sweep" `Quick
            test_concurrent_checkpoint_crash_sweep;
          Alcotest.test_case "rejects archiving" `Quick
            test_concurrent_checkpoint_rejects_archiving;
        ] );
      ( "real-fs",
        [ Alcotest.test_case "end to end on a directory" `Quick test_real_fs_end_to_end ]
      );
      ( "concurrency",
        [
          Alcotest.test_case "updates and queries" `Quick
            test_concurrent_updates_and_queries;
          Alcotest.test_case "checkpoint during queries" `Quick
            test_checkpoint_during_concurrent_queries;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "disk full degrades and recovers" `Quick
            test_disk_full_degrades_and_recovers;
          Alcotest.test_case "write fault rejects cleanly" `Quick
            test_write_fault_rejects_cleanly;
          Alcotest.test_case "fsync fault poisons" `Quick test_fsync_fault_poisons;
        ] );
      ( "scrub",
        [
          Alcotest.test_case "clean store" `Quick test_scrub_clean;
          Alcotest.test_case "detects and repairs damage" `Quick
            test_scrub_detects_and_repairs_damage;
          Alcotest.test_case "digest catches divergence" `Quick
            test_scrub_digest_mismatch;
          Alcotest.test_case "background scrubber repairs" `Quick
            test_background_scrubber_repairs;
        ] );
    ]
