module P = Sdb_pickle.Pickle
module Descr = Sdb_pickle.Descr

let check = Alcotest.check

let roundtrip codec v = P.decode codec (P.encode codec v)

let check_roundtrip testable name codec v =
  check testable name v (roundtrip codec v)

(* ------------------------------------------------------------------ *)
(* Primitives                                                          *)

let test_primitives () =
  check_roundtrip Alcotest.unit "unit" P.unit ();
  check_roundtrip Alcotest.bool "true" P.bool true;
  check_roundtrip Alcotest.bool "false" P.bool false;
  check_roundtrip Alcotest.char "char" P.char 'q';
  check_roundtrip Alcotest.char "nul char" P.char '\x00';
  List.iter
    (fun n -> check_roundtrip Alcotest.int "int" P.int n)
    [ 0; 1; -1; 42; -127; 128; 65536; max_int; min_int ];
  check_roundtrip Alcotest.int32 "int32" P.int32 0xDEADBEEFl;
  check_roundtrip Alcotest.int32 "int32 min" P.int32 Int32.min_int;
  check_roundtrip Alcotest.int64 "int64" P.int64 0x1122334455667788L;
  check_roundtrip Alcotest.int64 "int64 min" P.int64 Int64.min_int;
  List.iter
    (fun f -> check_roundtrip (Alcotest.float 0.0) "float" P.float f)
    [ 0.0; -0.0; 1.5; -3.25; infinity; neg_infinity; max_float; min_float; epsilon_float ];
  (* NaN round-trips bit-exactly even though nan <> nan. *)
  let nan_bits = Int64.bits_of_float (roundtrip P.float nan) in
  check Alcotest.int64 "nan bits" (Int64.bits_of_float nan) nan_bits;
  check_roundtrip Alcotest.string "string" P.string "hello";
  check_roundtrip Alcotest.string "empty string" P.string "";
  check_roundtrip Alcotest.string "binary string" P.string "\x00\xFF\x80\n\t";
  check_roundtrip Alcotest.string "long string" P.string (String.make 100_000 'x');
  check_roundtrip Alcotest.bytes "bytes" P.bytes (Bytes.of_string "raw\x00bytes")

(* ------------------------------------------------------------------ *)
(* Compounds                                                           *)

let test_compounds () =
  check_roundtrip (Alcotest.pair Alcotest.int Alcotest.string) "pair"
    (P.pair P.int P.string) (42, "x");
  check_roundtrip
    (Alcotest.triple Alcotest.int Alcotest.bool Alcotest.string)
    "triple"
    (P.triple P.int P.bool P.string)
    (1, true, "y");
  let quad = P.quad P.int P.int P.int P.string in
  let a, b, c, d = roundtrip quad (1, 2, 3, "four") in
  check Alcotest.int "quad.1" 1 a;
  check Alcotest.int "quad.2" 2 b;
  check Alcotest.int "quad.3" 3 c;
  check Alcotest.string "quad.4" "four" d;
  check_roundtrip (Alcotest.list Alcotest.int) "list" (P.list P.int) [ 1; 2; 3 ];
  check_roundtrip (Alcotest.list Alcotest.int) "empty list" (P.list P.int) [];
  check_roundtrip (Alcotest.array Alcotest.string) "array" (P.array P.string)
    [| "a"; "b" |];
  check_roundtrip (Alcotest.array Alcotest.int) "empty array" (P.array P.int) [||];
  check_roundtrip (Alcotest.option Alcotest.int) "some" (P.option P.int) (Some 9);
  check_roundtrip (Alcotest.option Alcotest.int) "none" (P.option P.int) None;
  check_roundtrip
    (Alcotest.result Alcotest.int Alcotest.string)
    "ok"
    (P.result P.int P.string)
    (Ok 1);
  check_roundtrip
    (Alcotest.result Alcotest.int Alcotest.string)
    "error"
    (P.result P.int P.string)
    (Error "nope");
  check_roundtrip
    (Alcotest.list (Alcotest.list (Alcotest.option Alcotest.int)))
    "nested"
    (P.list (P.list (P.option P.int)))
    [ [ Some 1; None ]; []; [ None ] ]

let test_hashtbl () =
  let codec = P.hashtbl P.string P.int in
  let tbl = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) [ ("a", 1); ("b", 2); ("c", 3) ];
  let back = roundtrip codec tbl in
  check Alcotest.int "size" 3 (Hashtbl.length back);
  List.iter
    (fun (k, v) -> check (Alcotest.option Alcotest.int) k (Some v) (Hashtbl.find_opt back k))
    [ ("a", 1); ("b", 2); ("c", 3) ];
  let empty = roundtrip codec (Hashtbl.create 4) in
  check Alcotest.int "empty size" 0 (Hashtbl.length empty)

(* ------------------------------------------------------------------ *)
(* Records and variants                                                *)

type person = { pname : string; age : int; emails : string list }

let codec_person =
  P.record3 "person"
    (P.field "name" P.string (fun p -> p.pname))
    (P.field "age" P.int (fun p -> p.age))
    (P.field "emails" (P.list P.string) (fun p -> p.emails))
    (fun pname age emails -> { pname; age; emails })

let test_record () =
  let p = { pname = "birrell"; age = 40; emails = [ "adb@src.dec.com" ] } in
  let p' = roundtrip codec_person p in
  check Alcotest.string "name" p.pname p'.pname;
  check Alcotest.int "age" p.age p'.age;
  check (Alcotest.list Alcotest.string) "emails" p.emails p'.emails

type shape =
  | Point
  | Circle of float
  | Rect of float * float
  | Label of string

let codec_shape =
  P.variant ~name:"shape"
    [
      P.case0 "point" Point (fun s -> s = Point);
      P.case "circle" P.float
        (function Circle r -> Some r | _ -> None)
        (fun r -> Circle r);
      P.case "rect" (P.pair P.float P.float)
        (function Rect (w, h) -> Some (w, h) | _ -> None)
        (fun (w, h) -> Rect (w, h));
      P.case "label" P.string
        (function Label s -> Some s | _ -> None)
        (fun s -> Label s);
    ]

let shape_testable =
  Alcotest.testable
    (fun ppf -> function
      | Point -> Format.fprintf ppf "Point"
      | Circle r -> Format.fprintf ppf "Circle %f" r
      | Rect (w, h) -> Format.fprintf ppf "Rect (%f, %f)" w h
      | Label s -> Format.fprintf ppf "Label %s" s)
    ( = )

let test_variant () =
  List.iter
    (fun s -> check_roundtrip shape_testable "shape" codec_shape s)
    [ Point; Circle 1.5; Rect (2.0, 3.0); Label "x" ]

let test_variant_unrecognized () =
  (* A variant whose cases do not cover the written value. *)
  let partial =
    P.variant ~name:"partial"
      [ P.case0 "point" Point (fun s -> s = Point) ]
  in
  match P.encode partial (Circle 1.0) with
  | _ -> Alcotest.fail "expected Error"
  | exception P.Error _ -> ()

let test_enum () =
  let codec = P.enum ~name:"color" [ ("red", `Red); ("green", `Green); ("blue", `Blue) ] in
  List.iter
    (fun c ->
      if roundtrip codec c <> c then Alcotest.fail "enum roundtrip")
    [ `Red; `Green; `Blue ]

let test_conv () =
  (* A rational stored as a pair. *)
  let codec =
    P.conv ~name:"ratio" (fun (n, d) -> (n, d)) (fun (n, d) -> (n, d))
      (P.pair P.int P.int)
  in
  check (Alcotest.pair Alcotest.int Alcotest.int) "conv" (3, 4) (roundtrip codec (3, 4))

(* ------------------------------------------------------------------ *)
(* Recursion and sharing                                               *)

type tree = Leaf | Node of tree * int * tree

let codec_tree =
  P.mu "tree" (fun self ->
      P.variant ~name:"tree"
        [
          P.case0 "leaf" Leaf (fun t -> t = Leaf);
          P.case "node"
            (P.triple self P.int self)
            (function Node (l, v, r) -> Some (l, v, r) | Leaf -> None)
            (fun (l, v, r) -> Node (l, v, r));
        ])

let rec tree_depth = function Leaf -> 0 | Node (l, _, r) -> 1 + max (tree_depth l) (tree_depth r)

let test_mu_tree () =
  let t = Node (Node (Leaf, 1, Leaf), 2, Node (Leaf, 3, Node (Leaf, 4, Leaf))) in
  if roundtrip codec_tree t <> t then Alcotest.fail "tree roundtrip";
  (* Deep recursion. *)
  let rec build n = if n = 0 then Leaf else Node (build (n - 1), n, Leaf) in
  let deep = build 5000 in
  check Alcotest.int "deep tree depth" 5000 (tree_depth (roundtrip codec_tree deep))

let test_shared_dedup () =
  let codec = P.list (P.shared P.string) in
  let s = String.make 1000 'z' in
  let many = [ s; s; s; s; s; s; s; s ] in
  let different = List.init 8 (fun i -> String.make 1000 (Char.chr (97 + i))) in
  let enc_shared = P.encode codec many in
  let enc_diff = P.encode codec different in
  (* Eight copies of one string must be much smaller than eight
     distinct strings. *)
  Alcotest.check Alcotest.bool "sharing compresses" true
    (String.length enc_shared < String.length enc_diff / 4);
  let back = P.decode codec enc_shared in
  (match back with
  | first :: rest ->
    check Alcotest.string "value" s first;
    List.iter (fun x -> Alcotest.check Alcotest.bool "physically shared" true (x == first)) rest
  | [] -> Alcotest.fail "empty");
  (* Distinct but equal strings written through [shared] by different
     writer calls stay independent. *)
  let two = P.decode codec (P.encode codec [ String.make 5 'a'; String.make 5 'a' ]) in
  check Alcotest.int "two values" 2 (List.length two)

type cyc = C of cyc list ref

let codec_cyc =
  P.mu "cyc" (fun self ->
      P.conv ~name:"cyc"
        (fun (C r) -> r)
        (fun r -> C r)
        (P.shared_ref ~dummy:[] (P.list self)))

let test_shared_ref_cycle () =
  (* A cyclic linked structure through refs. *)
  let r = ref [] in
  let cell = C r in
  r := [ cell; cell ];
  let (C r') = P.decode codec_cyc (P.encode codec_cyc cell) in
  (match !r' with
  | [ C a; C b ] ->
    Alcotest.check Alcotest.bool "cycle restored" true (a == r' && b == r')
  | _ -> Alcotest.fail "wrong shape");
  (* Acyclic sharing of an inner cell. *)
  let inner = C (ref []) in
  let outer = C (ref [ inner; inner ]) in
  let (C outer') = P.decode codec_cyc (P.encode codec_cyc outer) in
  match !outer' with
  | [ C a; C b ] -> Alcotest.check Alcotest.bool "inner shared" true (a == b)
  | _ -> Alcotest.fail "wrong shape 2"

let test_ref_cell () =
  let codec = P.ref_cell P.int in
  let r = roundtrip codec (ref 42) in
  check Alcotest.int "ref contents" 42 !r

(* ------------------------------------------------------------------ *)
(* Corruption and framing                                              *)

let test_trailing_bytes_rejected () =
  let enc = P.encode P.int 5 ^ "junk" in
  match P.decode P.int enc with
  | _ -> Alcotest.fail "expected Error"
  | exception P.Error _ -> ()

let test_truncation_rejected () =
  let enc = P.encode (P.pair P.string P.string) ("hello", "world") in
  for cut = 0 to String.length enc - 1 do
    match P.decode (P.pair P.string P.string) (String.sub enc 0 cut) with
    | _ -> Alcotest.fail (Printf.sprintf "truncation at %d accepted" cut)
    | exception P.Error _ -> ()
  done

let test_wrong_tag_rejected () =
  let enc = P.encode P.int 5 in
  match P.decode P.string enc with
  | _ -> Alcotest.fail "expected Error"
  | exception P.Error _ -> ()

let test_mutation_detected_or_equal () =
  (* Flipping any single byte must never produce a silently different
     valid value of a *different* shape; for scalars a flipped payload
     byte legitimately decodes to a different scalar, so we only check
     structure-bearing codecs reject or decode to something. *)
  let codec = P.list (P.pair P.string P.int) in
  let v = [ ("alpha", 1); ("beta", -2); ("gamma", 300) ] in
  let enc = P.encode codec v in
  let rejected = ref 0 in
  String.iteri
    (fun i _ ->
      let b = Bytes.of_string enc in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
      match P.decode codec (Bytes.unsafe_to_string b) with
      | _ -> ()
      | exception P.Error _ -> incr rejected)
    enc;
  (* Most single-byte corruptions hit a tag, a length, or a count and
     must be caught by the pickle layer itself. *)
  Alcotest.check Alcotest.bool
    (Printf.sprintf "most corruptions rejected (%d/%d)" !rejected (String.length enc))
    true
    (!rejected * 2 > String.length enc)

let test_variant_bad_index () =
  let enc = P.encode codec_shape Point in
  (* Rewrite the case index varint (last byte) to an out-of-range one. *)
  let b = Bytes.of_string enc in
  Bytes.set b (Bytes.length b - 1) '\x37';
  match P.decode codec_shape (Bytes.unsafe_to_string b) with
  | _ -> Alcotest.fail "expected Error"
  | exception P.Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Fingerprints and self-describing containers                         *)

let test_fingerprints_distinguish () =
  let fps =
    [
      P.fingerprint_hex P.int;
      P.fingerprint_hex P.string;
      P.fingerprint_hex (P.list P.int);
      P.fingerprint_hex (P.list P.string);
      P.fingerprint_hex (P.pair P.int P.string);
      P.fingerprint_hex (P.pair P.string P.int);
      P.fingerprint_hex codec_person;
      P.fingerprint_hex codec_shape;
      P.fingerprint_hex codec_tree;
    ]
  in
  let uniq = List.sort_uniq compare fps in
  check Alcotest.int "all distinct" (List.length fps) (List.length uniq)

let test_fingerprints_stable () =
  check Alcotest.string "same codec same fp" (P.fingerprint_hex codec_person)
    (P.fingerprint_hex codec_person);
  (* Field names matter. *)
  let other =
    P.record3 "person"
      (P.field "nom" P.string (fun p -> p.pname))
      (P.field "age" P.int (fun p -> p.age))
      (P.field "emails" (P.list P.string) (fun p -> p.emails))
      (fun pname age emails -> { pname; age; emails })
  in
  Alcotest.check Alcotest.bool "field rename changes fp" false
    (String.equal (P.fingerprint_hex codec_person) (P.fingerprint_hex other))

let test_to_of_string () =
  let v = { pname = "jones"; age = 30; emails = [] } in
  let s = P.to_string codec_person v in
  (match P.of_string codec_person s with
  | Ok v' -> check Alcotest.string "roundtrip via header" v.pname v'.pname
  | Error e -> Alcotest.fail e);
  (* Wrong codec: fingerprint mismatch, not garbage. *)
  (match P.of_string codec_shape s with
  | Ok _ -> Alcotest.fail "fingerprint mismatch accepted"
  | Error e ->
    Alcotest.check Alcotest.bool "mentions fingerprint" true
      (String.length e > 0));
  (* Not a pickle at all. *)
  (match P.of_string codec_person "garbage" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  match P.of_string codec_person "" with
  | Ok _ -> Alcotest.fail "empty accepted"
  | Error _ -> ()

let test_descr_rendering () =
  let d = P.descr (P.pair P.int (P.list P.string)) in
  check Alcotest.string "descr" "pair(int,list(string))" (Descr.to_string d);
  Alcotest.check Alcotest.bool "equal" true (Descr.equal d d)

let test_counters () =
  P.Counters.reset ();
  ignore (P.encode P.string "hello");
  Alcotest.check Alcotest.bool "bytes counted" true (P.Counters.bytes_pickled () > 0);
  check Alcotest.int "ops" 1 (P.Counters.pickle_ops ());
  ignore (P.decode P.string (P.encode P.string "world"));
  check Alcotest.int "unpickle ops" 1 (P.Counters.unpickle_ops ());
  Alcotest.check Alcotest.bool "unpickled bytes" true (P.Counters.bytes_unpickled () > 0);
  P.Counters.reset ();
  check Alcotest.int "reset" 0 (P.Counters.pickle_ops ())

let test_encode_into () =
  (* encode_into appends exactly encode's bytes, without disturbing
     what the caller already put in the buffer — the commit path reuses
     one growable buffer across updates. *)
  let v = { pname = "jones"; age = 30; emails = [ "j@x"; "j@y" ] } in
  let reference = P.encode codec_person v in
  let buf = Buffer.create 16 in
  Buffer.add_string buf "prefix";
  P.encode_into buf codec_person v;
  check Alcotest.string "appends encode's bytes" ("prefix" ^ reference)
    (Buffer.contents buf);
  (* Each call is self-contained: sharing ids restart, so a second
     append decodes on its own. *)
  P.encode_into buf codec_person v;
  check Alcotest.string "second append identical"
    ("prefix" ^ reference ^ reference)
    (Buffer.contents buf);
  let v' = P.decode codec_person reference in
  check Alcotest.string "still decodes" v.pname v'.pname;
  P.Counters.reset ();
  let b2 = Buffer.create 16 in
  P.encode_into b2 codec_person v;
  check Alcotest.int "counts one op" 1 (P.Counters.pickle_ops ());
  check Alcotest.int "counts appended bytes" (String.length reference)
    (P.Counters.bytes_pickled ())

(* ------------------------------------------------------------------ *)
(* Schema evolution                                                    *)

(* v0: just a name.  v1: name + age.  v2: record with emails. *)
let codec_v0 = P.string
let codec_v1 = P.pair P.string P.int

let person_v2 name =
  P.versioned ~name
    ~history:
      [
        P.old_version codec_v0 (fun pname -> { pname; age = -1; emails = [] });
        P.old_version codec_v1 (fun (pname, age) -> { pname; age; emails = [] });
      ]
    codec_person

let codec_person_evolved = person_v2 "person-evolved"

(* Simulate data written by older program versions: same name, shorter
   history, and the then-current codec as latest. *)
let codec_as_of_v0 = P.versioned ~name:"person-evolved" ~history:[] codec_v0

let codec_as_of_v1 =
  P.versioned ~name:"person-evolved"
    ~history:[ P.old_version codec_v0 (fun s -> (s, -1)) ]
    codec_v1

let test_versioned_reads_all_generations () =
  (* v0 data. *)
  let old0 = P.encode codec_as_of_v0 "wobber" in
  let p0 = P.decode codec_person_evolved old0 in
  check Alcotest.string "v0 name" "wobber" p0.pname;
  check Alcotest.int "v0 default age" (-1) p0.age;
  (* v1 data. *)
  let old1 = P.encode codec_as_of_v1 ("jones", 30) in
  let p1 = P.decode codec_person_evolved old1 in
  check Alcotest.string "v1 name" "jones" p1.pname;
  check Alcotest.int "v1 age" 30 p1.age;
  (* Current data round-trips. *)
  let p = { pname = "birrell"; age = 40; emails = [ "adb" ] } in
  let p' = roundtrip codec_person_evolved p in
  check Alcotest.string "v2 roundtrip" p.pname p'.pname;
  check (Alcotest.list Alcotest.string) "v2 emails" p.emails p'.emails

let test_versioned_fingerprint_stable () =
  (* The whole point: the fingerprint survives evolution, so headers
     written before the type grew still validate. *)
  check Alcotest.string "fp stable across versions"
    (P.fingerprint_hex codec_as_of_v0)
    (P.fingerprint_hex codec_person_evolved);
  (* ...but different families differ. *)
  Alcotest.check Alcotest.bool "different names differ" false
    (String.equal
       (P.fingerprint_hex (person_v2 "person-evolved"))
       (P.fingerprint_hex (person_v2 "other-family")))

let test_versioned_future_rejected () =
  (* Data written by a NEWER program (higher index) must be refused,
     not misread. *)
  let future = P.encode codec_person_evolved { pname = "x"; age = 1; emails = [] } in
  match P.decode codec_as_of_v1 future with
  | _ -> Alcotest.fail "future version accepted"
  | exception P.Error m ->
    Alcotest.check Alcotest.bool "mentions newer" true
      (String.length m > 0)

let test_versioned_containers () =
  (* to_string/of_string headers work across an evolution. *)
  let blob = P.to_string codec_as_of_v1 ("old-data", 7) in
  match P.of_string codec_person_evolved blob with
  | Ok p ->
    check Alcotest.string "upgraded through header" "old-data" p.pname;
    check Alcotest.int "upgraded age" 7 p.age
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)

let gen_person =
  QCheck2.Gen.(
    map3
      (fun n a e -> { pname = n; age = a; emails = e })
      (string_size ~gen:char (0 -- 30))
      int
      (list_size (0 -- 5) (string_size ~gen:char (0 -- 10))))

let prop_person_roundtrip =
  Helpers.qtest "person roundtrip" gen_person (fun p -> roundtrip codec_person p = p)

let gen_tree =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 0 then pure Leaf
           else
             frequency
               [
                 (1, pure Leaf);
                 ( 3,
                   map3
                     (fun l v r -> Node (l, v, r))
                     (self (n / 2)) int (self (n / 2)) );
               ]))

let prop_tree_roundtrip =
  Helpers.qtest "recursive tree roundtrip" gen_tree (fun t -> roundtrip codec_tree t = t)

let prop_random_bytes_never_crash =
  Helpers.qtest "random bytes: error or value, never crash"
    QCheck2.Gen.(string_size ~gen:char (0 -- 200))
    (fun s ->
      match P.decode codec_person s with
      | _ -> true
      | exception P.Error _ -> true)

let prop_nested_roundtrip =
  let codec = P.list (P.option (P.pair P.int P.string)) in
  Helpers.qtest "nested compound roundtrip"
    QCheck2.Gen.(
      list_size (0 -- 20) (option (pair int (string_size ~gen:char (0 -- 20)))))
    (fun v -> roundtrip codec v = v)

let () =
  Helpers.run "pickle"
    [
      ( "primitives",
        [
          Alcotest.test_case "primitives" `Quick test_primitives;
          Alcotest.test_case "compounds" `Quick test_compounds;
          Alcotest.test_case "hashtbl" `Quick test_hashtbl;
        ] );
      ( "structs",
        [
          Alcotest.test_case "record" `Quick test_record;
          Alcotest.test_case "variant" `Quick test_variant;
          Alcotest.test_case "variant unrecognized" `Quick test_variant_unrecognized;
          Alcotest.test_case "enum" `Quick test_enum;
          Alcotest.test_case "conv" `Quick test_conv;
        ] );
      ( "recursion-sharing",
        [
          Alcotest.test_case "mu tree" `Quick test_mu_tree;
          Alcotest.test_case "shared dedup + identity" `Quick test_shared_dedup;
          Alcotest.test_case "shared_ref cycles" `Quick test_shared_ref_cycle;
          Alcotest.test_case "ref cell" `Quick test_ref_cell;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "trailing bytes" `Quick test_trailing_bytes_rejected;
          Alcotest.test_case "every truncation rejected" `Quick test_truncation_rejected;
          Alcotest.test_case "wrong tag" `Quick test_wrong_tag_rejected;
          Alcotest.test_case "byte flips mostly caught" `Quick test_mutation_detected_or_equal;
          Alcotest.test_case "variant bad index" `Quick test_variant_bad_index;
        ] );
      ( "fingerprints",
        [
          Alcotest.test_case "distinguish types" `Quick test_fingerprints_distinguish;
          Alcotest.test_case "stable and name-sensitive" `Quick test_fingerprints_stable;
          Alcotest.test_case "to/of_string headers" `Quick test_to_of_string;
          Alcotest.test_case "descr rendering" `Quick test_descr_rendering;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "encode_into appends in place" `Quick
            test_encode_into;
        ] );
      ( "evolution",
        [
          Alcotest.test_case "reads all generations" `Quick
            test_versioned_reads_all_generations;
          Alcotest.test_case "fingerprint stable" `Quick
            test_versioned_fingerprint_stable;
          Alcotest.test_case "future version rejected" `Quick
            test_versioned_future_rejected;
          Alcotest.test_case "containers across evolution" `Quick
            test_versioned_containers;
        ] );
      ( "properties",
        [
          prop_person_roundtrip;
          prop_tree_roundtrip;
          prop_random_bytes_never_crash;
          prop_nested_roundtrip;
        ] );
    ]
