module Mem = Sdb_storage.Mem_fs
module Ns = Sdb_nameserver.Nameserver
module Data = Sdb_nameserver.Ns_data
module Path = Sdb_nameserver.Name_path
module Rpc = Sdb_rpc.Rpc
module Proto = Sdb_rpc.Ns_protocol
module Replica = Sdb_replica.Replica

let check = Alcotest.check

let p s = match Path.of_string s with Ok v -> v | Error e -> Alcotest.fail e

(* A test cell: one replica with a local ns, servable over inproc RPC. *)
type cell = {
  ns : Ns.t;
  store : Mem.store;
  replica : Replica.t;
  mutable server_threads : Thread.t list;
  mutable server_transports : Rpc.Transport.t list;
}

let make_cell id seed =
  let store = Mem.create_store ~seed () in
  let ns = Ns.open_exn (Mem.fs store) in
  { ns; store; replica = Replica.create ~id ns; server_threads = []; server_transports = [] }

(* Connect [a] -> [b]: a client in [a] served by [b]'s name server.
   [how] selects first registration (at a given acked position) or
   reconnection of a known peer. *)
let connect ?(how = `Add) a b =
  let client_t, server_t = Rpc.Inproc.pair () in
  let thread = Thread.create (fun () -> Proto.serve b.ns server_t) () in
  b.server_threads <- thread :: b.server_threads;
  b.server_transports <- server_t :: b.server_transports;
  let client = Proto.Client.create client_t in
  (match how with
  | `Add -> Replica.add_peer a.replica ~id:(Replica.id b.replica) client
  | `Add_from lsn ->
    Replica.add_peer ~acked_lsn:lsn a.replica ~id:(Replica.id b.replica) client
  | `Reconnect -> Replica.reconnect a.replica ~id:(Replica.id b.replica) client);
  client

(* Kill [cell]'s server side only — the partition move mid-test. *)
let shutdown cell =
  List.iter (fun t -> t.Rpc.Transport.close ()) cell.server_transports;
  List.iter Thread.join cell.server_threads;
  cell.server_threads <- [];
  cell.server_transports <- []

(* Full teardown: stop the replica's sender threads, then the servers. *)
let teardown cell =
  Replica.shutdown cell.replica;
  shutdown cell

let test_eager_propagation () =
  let a = make_cell "a" 1 and b = make_cell "b" 2 in
  ignore (connect a b);
  Replica.set_value a.replica (p "/users/adb") (Some "birrell");
  Replica.set_value a.replica (p "/users/mbj") (Some "jones");
  (* Propagation is asynchronous: wait for the outbox to drain. *)
  check Alcotest.bool "flushed" true (Replica.flush a.replica);
  check Alcotest.(option string) "replicated" (Some "birrell")
    (Ns.lookup b.ns (p "/users/adb"));
  check Alcotest.(option string) "replicated 2" (Some "jones")
    (Ns.lookup b.ns (p "/users/mbj"));
  (match Replica.peers a.replica with
  | [ r ] ->
    check Alcotest.bool "reachable" true r.Replica.reachable;
    check Alcotest.int "no backlog" 0 r.Replica.backlog;
    check Alcotest.int "outbox drained" 0 r.Replica.queued
  | _ -> Alcotest.fail "one peer expected");
  check Alcotest.string "digests equal" (Replica.digest a.ns) (Replica.digest b.ns);
  teardown a;
  teardown b

let test_unreachable_peer_and_anti_entropy () =
  let a = make_cell "a" 3 and b = make_cell "b" 4 in
  let _client = connect a b in
  Replica.set_value a.replica (p "/x") (Some "1");
  check Alcotest.bool "delivered before partition" true (Replica.flush a.replica);
  (* Partition: b's server goes away. *)
  shutdown b;
  Replica.set_value a.replica (p "/y") (Some "2");
  Replica.set_value a.replica (p "/z") (Some "3");
  (* The sender discovers the dead transport asynchronously; flush
     reports the peer parked rather than drained. *)
  check Alcotest.bool "flush reports undelivered" false (Replica.flush a.replica);
  (match Replica.peers a.replica with
  | [ r ] ->
    check Alcotest.bool "marked unreachable or lagging" true
      ((not r.Replica.reachable) || r.Replica.lagging);
    Alcotest.check Alcotest.bool "backlog accumulates" true (r.Replica.backlog >= 2)
  | _ -> Alcotest.fail "one peer");
  (* b's updates from before the partition are intact. *)
  check Alcotest.(option string) "pre-partition data" (Some "1") (Ns.lookup b.ns (p "/x"));
  check Alcotest.(option string) "missed" None (Ns.lookup b.ns (p "/y"));
  (* Heal: reconnect the same peer; its acked position is preserved,
     so anti-entropy replays exactly the missed log suffix. *)
  ignore (connect ~how:`Reconnect a b);
  Replica.anti_entropy a.replica;
  check Alcotest.(option string) "caught up y" (Some "2") (Ns.lookup b.ns (p "/y"));
  check Alcotest.(option string) "caught up z" (Some "3") (Ns.lookup b.ns (p "/z"));
  check Alcotest.string "converged" (Replica.digest a.ns) (Replica.digest b.ns);
  teardown a;
  teardown b

let test_anti_entropy_snapshot_fallback () =
  let a = make_cell "a" 5 and b = make_cell "b" 6 in
  (* Updates and a checkpoint BEFORE the peer joins, so the log no
     longer covers an empty peer's position (LSN 0): anti-entropy must
     take the full-transfer path. *)
  Replica.set_value a.replica (p "/old/one") (Some "1");
  Replica.set_value a.replica (p "/old/two") (Some "2");
  Replica.set_value a.replica (p "/new") (Some "3");
  Ns.checkpoint a.ns;
  ignore (connect ~how:(`Add_from 0) a b);
  Replica.anti_entropy a.replica;
  check Alcotest.(option string) "snapshot brought old" (Some "1")
    (Ns.lookup b.ns (p "/old/one"));
  check Alcotest.(option string) "snapshot brought new" (Some "3")
    (Ns.lookup b.ns (p "/new"));
  check Alcotest.string "converged" (Replica.digest a.ns) (Replica.digest b.ns);
  teardown a;
  teardown b

let test_propagation_via_any_path () =
  (* Updates made directly through the Nameserver API (not the Replica
     wrapper) must still reach peers: propagation subscribes to the
     engine's committed-update stream. *)
  let a = make_cell "a" 21 and b = make_cell "b" 22 in
  ignore (connect a b);
  Ns.set_value a.ns (p "/direct") (Some "through-ns-api");
  check Alcotest.bool "flushed" true (Replica.flush a.replica);
  check Alcotest.(option string) "propagated" (Some "through-ns-api")
    (Ns.lookup b.ns (p "/direct"));
  (* Batch updates propagate too, in order. *)
  Ns.Db.update_batch (Ns.db a.ns)
    [ Ns.Set_value (p "/b1", Some "1"); Ns.Set_value (p "/b2", Some "2") ];
  check Alcotest.bool "flushed batch" true (Replica.flush a.replica);
  check Alcotest.(option string) "batch 1" (Some "1") (Ns.lookup b.ns (p "/b1"));
  check Alcotest.(option string) "batch 2" (Some "2") (Ns.lookup b.ns (p "/b2"));
  check Alcotest.string "converged" (Replica.digest a.ns) (Replica.digest b.ns);
  teardown a;
  teardown b

let test_subscription_api () =
  (* Engine-level: subscribers see (lsn, update) in order; unsubscribe
     stops delivery. *)
  let store = Sdb_storage.Mem_fs.create_store ~seed:23 () in
  let ns = Ns.open_exn (Sdb_storage.Mem_fs.fs store) in
  let seen = ref [] in
  let sub = Ns.Db.subscribe (Ns.db ns) (fun lsn u -> seen := (lsn, u) :: !seen) in
  Ns.set_value ns (p "/x") (Some "1");
  Ns.set_value ns (p "/y") (Some "2");
  (match List.rev !seen with
  | [ (0, Ns.Set_value (px, _)); (1, Ns.Set_value (py, _)) ] ->
    check Alcotest.bool "paths" true (px = p "/x" && py = p "/y")
  | _ -> Alcotest.fail "wrong subscription stream");
  Ns.Db.unsubscribe (Ns.db ns) sub;
  Ns.set_value ns (p "/z") (Some "3");
  check Alcotest.int "no delivery after unsubscribe" 2 (List.length !seen);
  Ns.close ns

let test_converged_with () =
  let a = make_cell "a" 7 and b = make_cell "b" 8 in
  let client_ab = connect a b in
  Replica.set_value a.replica (p "/k") (Some "v");
  check Alcotest.bool "flushed" true (Replica.flush a.replica);
  Alcotest.check Alcotest.bool "converged" true
    (Replica.converged_with a.replica client_ab);
  (* Diverge b locally. *)
  Ns.set_value b.ns (p "/only-b") (Some "x");
  Alcotest.check Alcotest.bool "diverged" false
    (Replica.converged_with a.replica client_ab);
  teardown a;
  teardown b

let test_clone_from_peer () =
  (* §4 hard-error recovery: rebuild a dead replica from a live one. *)
  let a = make_cell "a" 9 in
  Replica.set_value a.replica (p "/svc/mail") (Some "host1");
  Replica.set_value a.replica (p "/svc/news") (Some "host2");
  (* Serve a. *)
  let client_t, server_t = Rpc.Inproc.pair () in
  let thread = Thread.create (fun () -> Proto.serve a.ns server_t) () in
  let client = Proto.Client.create client_t in
  let fresh_store = Mem.create_store ~seed:10 () in
  (match Replica.clone_from client (Mem.fs fresh_store) with
  | Error e -> Alcotest.fail e
  | Ok cloned ->
    check Alcotest.(option string) "cloned value" (Some "host1")
      (Ns.lookup cloned (p "/svc/mail"));
    check Alcotest.string "clone converged" (Replica.digest a.ns) (Replica.digest cloned);
    (* The clone is durable: reopen from its own disk. *)
    Ns.close cloned;
    let reopened = Ns.open_exn (Mem.fs fresh_store) in
    check Alcotest.(option string) "durable clone" (Some "host2")
      (Ns.lookup reopened (p "/svc/news")));
  Proto.Client.close client;
  server_t.Rpc.Transport.close ();
  Thread.join thread

let test_three_replicas_chain () =
  let a = make_cell "a" 11 and b = make_cell "b" 12 and c = make_cell "c" 13 in
  ignore (connect a b);
  ignore (connect a c);
  for i = 0 to 9 do
    Replica.set_value a.replica (p (Printf.sprintf "/n%d" i)) (Some (string_of_int i))
  done;
  check Alcotest.bool "flushed" true (Replica.flush a.replica);
  check Alcotest.string "a=b" (Replica.digest a.ns) (Replica.digest b.ns);
  check Alcotest.string "a=c" (Replica.digest a.ns) (Replica.digest c.ns);
  (* The paper's acceptable loss: updates at a dead replica that never
     propagated.  Kill the a->b link, update, and confirm only b lags.
     [flush] still drains the healthy peer even though it returns
     [false] for the dead one. *)
  shutdown b;
  Replica.set_value a.replica (p "/late") (Some "x");
  check Alcotest.bool "b undelivered" false (Replica.flush a.replica);
  check Alcotest.(option string) "c has it" (Some "x") (Ns.lookup c.ns (p "/late"));
  check Alcotest.(option string) "b does not" None (Ns.lookup b.ns (p "/late"));
  teardown a;
  teardown b;
  teardown c

let test_hung_peer_does_not_block_commits () =
  (* The acceptance test for non-blocking replication: a peer whose
     server never replies (transport up, reads hang) must not slow the
     local commit path.  The client deadline is deliberately huge so a
     pass cannot be explained by a fast RPC timeout. *)
  let a = make_cell "a" 31 in
  let client_t, _server_t_never_served = Rpc.Inproc.pair () in
  let client = Proto.Client.create ~deadline_s:60.0 client_t in
  Replica.add_peer a.replica ~id:"hung" client;
  let n = 20 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    Replica.set_value a.replica (p (Printf.sprintf "/k%d" i)) (Some (string_of_int i))
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  check Alcotest.bool
    (Printf.sprintf "local commits fast despite hung peer (%.3fs)" elapsed)
    true (elapsed < 5.0);
  (match Replica.peers a.replica with
  | [ r ] ->
    check Alcotest.int "backlog counts unacked updates" n r.Replica.backlog;
    (* One update is stuck in flight; the rest wait in the outbox. *)
    check Alcotest.bool "outbox holds the overflow" true (r.Replica.queued >= n - 1)
  | _ -> Alcotest.fail "one peer");
  (* The gauges agree with the report (same registry cells). *)
  let depth =
    Sdb_obs.Metrics.gauge "sdb_replica_outbox_depth" ~help:""
      ~labels:[ ("replica", "a"); ("peer", "hung") ]
  in
  let backlog =
    Sdb_obs.Metrics.gauge "sdb_replica_backlog" ~help:""
      ~labels:[ ("replica", "a"); ("peer", "hung") ]
  in
  check Alcotest.bool "depth gauge populated" true
    (Sdb_obs.Metrics.gauge_value depth >= float_of_int (n - 1));
  check Alcotest.bool "backlog gauge populated" true
    (Sdb_obs.Metrics.gauge_value backlog >= float_of_int n);
  (* Shutdown closes the client, which wakes the sender blocked on the
     hung transport — no 60 s wait. *)
  let t1 = Unix.gettimeofday () in
  Replica.shutdown a.replica;
  check Alcotest.bool "shutdown does not wait out the deadline" true
    (Unix.gettimeofday () -. t1 < 5.0)

let test_outbox_overflow_marks_lagging () =
  (* A bounded outbox: when the hung peer's queue fills, further
     commits mark it lagging (deferred to anti-entropy) instead of
     growing without bound — and still never block. *)
  let a = make_cell "a" 32 in
  let client_t, _never_served = Rpc.Inproc.pair () in
  let client = Proto.Client.create ~deadline_s:60.0 client_t in
  Replica.add_peer ~outbox_capacity:4 a.replica ~id:"hung" client;
  for i = 0 to 11 do
    Replica.set_value a.replica (p (Printf.sprintf "/o%d" i)) (Some "v")
  done;
  (match Replica.peers a.replica with
  | [ r ] ->
    check Alcotest.bool "lagging after overflow" true r.Replica.lagging;
    check Alcotest.bool "queue bounded" true (r.Replica.queued <= 4);
    check Alcotest.int "nothing lost locally" 12 r.Replica.backlog
  | _ -> Alcotest.fail "one peer");
  Replica.shutdown a.replica

let test_repair_from_peer_after_refused_open () =
  (* The §4 story end to end: interior damage in the previous
     generation's log (with valid entries beyond it) makes the
     hard-error fallback refuse the store outright — and
     [repair_from_peer] then rebuilds that same store from a healthy
     replica, digest-verified. *)
  let module Store = Sdb_checkpoint.Checkpoint_store in
  let retain = { Smalldb.default_config with retain_previous = true } in
  let big = String.make 2000 'v' in
  let apply ns =
    for i = 0 to 4 do
      Ns.set_value ns (p (Printf.sprintf "/k%d" i)) (Some big)
    done
  in
  (* The victim: data across two generations, previous retained. *)
  let vstore = Mem.create_store ~seed:41 () in
  let vfs = Mem.fs vstore in
  let victim = Ns.open_exn ~config:retain vfs in
  apply victim;
  Ns.checkpoint victim;
  Ns.set_value victim (p "/after") (Some "ckpt");
  Ns.close victim;
  (* The healthy peer holds the same data (it had all propagated). *)
  let peer = make_cell "peer" 42 in
  apply peer.ns;
  Ns.set_value peer.ns (p "/after") (Some "ckpt");
  (* A hard error in the current checkpoint forces the fallback path;
     interior damage in the retained log makes the fallback refuse
     rather than silently drop the entries beyond it. *)
  Mem.damage vstore ~file:(Store.checkpoint_file 1) ~offset:100 ~len:50;
  Mem.damage vstore ~file:(Store.log_file 0) ~offset:2500 ~len:100;
  (match Ns.open_ ~config:retain vfs with
  | Ok _ -> Alcotest.fail "damaged store opened anyway"
  | Error _ -> ());
  (* Repair the same store in place from the peer. *)
  let client_t, server_t = Rpc.Inproc.pair () in
  let thread = Thread.create (fun () -> Proto.serve peer.ns server_t) () in
  let client = Proto.Client.create client_t in
  (match Replica.repair_from_peer ~config:retain client vfs with
  | Error e -> Alcotest.fail e
  | Ok repaired ->
    check Alcotest.(option string) "value restored" (Some big)
      (Ns.lookup repaired (p "/k3"));
    check Alcotest.string "digest matches the healthy peer"
      (Replica.digest peer.ns) (Replica.digest repaired);
    let r = Ns.scrub repaired in
    check Alcotest.int "scrub clean after repair" 0
      (List.length r.Smalldb.findings);
    check Alcotest.bool "replay consistent" true r.Smalldb.replay_consistent;
    (* The repaired store is durable on its own disk. *)
    Ns.close repaired;
    let reopened = Ns.open_exn ~config:retain vfs in
    check Alcotest.(option string) "durable" (Some "ckpt")
      (Ns.lookup reopened (p "/after"));
    Ns.close reopened);
  Proto.Client.close client;
  server_t.Rpc.Transport.close ();
  Thread.join thread;
  teardown peer

let test_scrub_and_health_rpc () =
  (* The scrub verb over the wire: a served name server can be scrubbed
     and health-checked remotely. *)
  let a = make_cell "a" 51 in
  Ns.set_value a.ns (p "/x") (Some "1");
  let client_t, server_t = Rpc.Inproc.pair () in
  let thread = Thread.create (fun () -> Proto.serve a.ns server_t) () in
  let client = Proto.Client.create client_t in
  (match Proto.Client.health client with
  | `Healthy -> ()
  | _ -> Alcotest.fail "expected healthy over rpc");
  let r = Proto.Client.scrub client ~repair:false in
  check Alcotest.int "clean over rpc" 0 (List.length r.Smalldb.findings);
  check Alcotest.bool "consistent over rpc" true r.Smalldb.replay_consistent;
  (* Damage the log; a repairing scrub over the wire fixes it. *)
  let gen = (Ns.stats a.ns).Smalldb.generation in
  Mem.damage a.store ~file:(Sdb_checkpoint.Checkpoint_store.log_file gen)
    ~offset:30 ~len:4;
  let r2 = Proto.Client.scrub client ~repair:true in
  check Alcotest.bool "damage seen over rpc" true (r2.Smalldb.findings <> []);
  check Alcotest.bool "repaired over rpc" true r2.Smalldb.repaired;
  let r3 = Proto.Client.scrub client ~repair:false in
  check Alcotest.int "clean after remote repair" 0
    (List.length r3.Smalldb.findings);
  Proto.Client.close client;
  server_t.Rpc.Transport.close ();
  Thread.join thread;
  teardown a

(* ------------------------------------------------------------------ *)
(* Network-fault survival                                              *)

module Detector = Sdb_replica.Detector
module Backoff = Sdb_rpc.Backoff
module Fault_net = Sdb_rpc.Fault_net

let wait_for ?(timeout_s = 5.0) f =
  let deadline = Sdb_util.Mono.now_s () +. timeout_s in
  let rec go () =
    if f () then true
    else if Sdb_util.Mono.now_s () >= deadline then false
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

let peer_health replica =
  match Replica.peers replica with
  | [ r ] -> r.Replica.health
  | _ -> Alcotest.fail "one peer expected"

let fast_health =
  {
    Replica.detector =
      {
        Detector.heartbeat_interval_s = 0.05;
        suspect_after_s = 0.15;
        dead_after_s = 0.5;
      };
    auto_catch_up = true;
    catch_up_backoff =
      { Backoff.initial_s = 0.02; multiplier = 2.0; max_s = 0.2; jitter = true };
    catch_up_budget = Backoff.Budget.unlimited;
  }

let test_anti_entropy_races_commits () =
  (* Anti-entropy replaying a log suffix while fresh commits keep
     arriving: the two paths serialize per peer (catch-up parks the
     sender and drains any in-flight push), and the replicas converge
     once both finish — no deadlock, no lost update. *)
  let a = make_cell "a" 60 and b = make_cell "b" 61 in
  ignore (connect a b);
  Replica.set_value a.replica (p "/seed") (Some "0");
  check Alcotest.bool "seeded" true (Replica.flush a.replica);
  (* Partition, accumulate a suffix to replay. *)
  shutdown b;
  for i = 1 to 20 do
    Replica.set_value a.replica (p (Printf.sprintf "/pre/%d" i)) (Some "x")
  done;
  ignore (Replica.flush ~timeout_s:0.5 a.replica);
  ignore (connect ~how:`Reconnect a b);
  (* Race: a writer commits while anti-entropy replays. *)
  let writer =
    Thread.create
      (fun () ->
        for i = 1 to 30 do
          Replica.set_value a.replica (p (Printf.sprintf "/race/%d" i)) (Some "y");
          if i mod 10 = 0 then Thread.delay 0.001
        done)
      ()
  in
  Replica.anti_entropy a.replica;
  Thread.join writer;
  (* Whatever raced past the catch-up is drained by the outbox or one
     more round; either way the stores converge. *)
  ignore (Replica.flush a.replica);
  if not (String.equal (Replica.digest a.ns) (Replica.digest b.ns)) then begin
    Replica.anti_entropy a.replica;
    ignore (Replica.flush a.replica)
  end;
  check Alcotest.string "converged under racing commits" (Replica.digest a.ns)
    (Replica.digest b.ns);
  check Alcotest.(option string) "late value present" (Some "y")
    (Ns.lookup b.ns (p "/race/30"));
  teardown a;
  teardown b

let test_flapping_peer_applies_exactly_once () =
  (* A peer that flaps reachable → unreachable → reachable: after each
     heal the outbox/anti-entropy drains exactly the missed suffix.
     Every commit on [b] is counted through its subscription stream —
     duplicate application would show up as extra commits. *)
  let a = make_cell "a" 62 and b = make_cell "b" 63 in
  let applied = Atomic.make 0 in
  let sub =
    Ns.Db.subscribe (Ns.db b.ns) (fun _lsn _u -> Atomic.incr applied)
  in
  ignore (connect a b);
  let batch tag =
    for i = 1 to 10 do
      Replica.set_value a.replica (p (Printf.sprintf "/%s/%d" tag i)) (Some tag)
    done
  in
  batch "up1";
  check Alcotest.bool "drained while up" true (Replica.flush a.replica);
  (* Flap down: these commits must wait for the heal. *)
  shutdown b;
  batch "down1";
  ignore (Replica.flush ~timeout_s:0.3 a.replica);
  ignore (connect ~how:`Reconnect a b);
  Replica.anti_entropy a.replica;
  (* Flap again. *)
  shutdown b;
  batch "down2";
  ignore (Replica.flush ~timeout_s:0.3 a.replica);
  ignore (connect ~how:`Reconnect a b);
  Replica.anti_entropy a.replica;
  batch "up2";
  check Alcotest.bool "drained after second heal" true (Replica.flush a.replica);
  check Alcotest.string "converged" (Replica.digest a.ns) (Replica.digest b.ns);
  check Alcotest.int "each update applied exactly once" 40 (Atomic.get applied);
  Ns.Db.unsubscribe (Ns.db b.ns) sub;
  teardown a;
  teardown b

let test_heartbeat_detects_and_self_heals () =
  (* The acceptance scenario, in miniature: partition → suspect → dead
     while commits keep flowing, then heal → revive → automatic
     convergence with no manual anti_entropy call. *)
  let a = make_cell "a" 64 and b = make_cell "b" 65 in
  ignore (connect a b);
  Replica.start_health ~config:fast_health a.replica;
  Replica.set_value a.replica (p "/h/pre") (Some "1");
  check Alcotest.bool "replicating while alive" true (Replica.flush a.replica);
  check Alcotest.bool "probed alive" true
    (wait_for (fun () -> peer_health a.replica = Detector.Alive));
  (* Partition: kill b's server side. *)
  shutdown b;
  (* Commits never block on the dead peer. *)
  let t0 = Sdb_util.Mono.now_s () in
  Replica.set_value a.replica (p "/h/during") (Some "2");
  let dt = Sdb_util.Mono.now_s () -. t0 in
  check Alcotest.bool "commit latency independent of the partition" true
    (dt < 0.5);
  check Alcotest.bool "suspected within threshold" true
    (wait_for ~timeout_s:2.0 (fun () -> peer_health a.replica <> Detector.Alive));
  check Alcotest.bool "declared dead within threshold" true
    (wait_for ~timeout_s:3.0 (fun () -> peer_health a.replica = Detector.Dead));
  (* Dead stays dead without a successful heartbeat. *)
  Thread.delay 0.2;
  check Alcotest.bool "no spontaneous revival" true
    (peer_health a.replica = Detector.Dead);
  (* Heal.  The monitor must revive the peer and converge on its own. *)
  ignore (connect ~how:`Reconnect a b);
  check Alcotest.bool "revived by a successful heartbeat" true
    (wait_for ~timeout_s:3.0 (fun () -> peer_health a.replica = Detector.Alive));
  check Alcotest.bool "self-healed without manual anti-entropy" true
    (wait_for ~timeout_s:5.0 (fun () ->
         String.equal (Replica.digest a.ns) (Replica.digest b.ns)));
  check Alcotest.(option string) "partition-era update arrived" (Some "2")
    (Ns.lookup b.ns (p "/h/during"));
  teardown a;
  teardown b

let test_resumable_repair_under_resets () =
  (* Full-state repair over a connection that keeps resetting: the
     chunked transfer resumes (idempotent chunk fetches over a
     reconnect factory) and the rebuilt store is digest-identical. *)
  let a = make_cell "a" 66 in
  for i = 1 to 60 do
    Ns.set_value a.ns
      (p (Printf.sprintf "/blob/k%02d" i))
      (Some (String.make 200 (Char.chr (Char.code 'a' + (i mod 26)))))
  done;
  let ctl = Fault_net.create ~seed:11 () in
  let fresh () =
    let client_t, server_t = Rpc.Inproc.pair () in
    let thread = Thread.create (fun () -> Proto.serve a.ns server_t) () in
    a.server_threads <- thread :: a.server_threads;
    a.server_transports <- server_t :: a.server_transports;
    Fault_net.wrap ctl client_t
  in
  let client =
    Proto.Client.create ~deadline_s:2.0 ~retry:Rpc.default_retry
      ~reconnect:fresh (fresh ())
  in
  (* Every ~8th operation resets the connection mid-transfer. *)
  Fault_net.set_fault_rate ctl ~op:`Send 0.12;
  let store = Mem.create_store ~seed:67 () in
  (match Replica.repair_from_peer ~chunk_bytes:512 client (Mem.fs store) with
  | Error e -> Alcotest.fail ("repair under resets failed: " ^ e)
  | Ok ns2 ->
    check Alcotest.string "rebuilt store digest-identical"
      (Replica.digest a.ns) (Ns.digest ns2);
    Ns.close ns2);
  check Alcotest.bool "resets were actually injected" true
    (Fault_net.injected ctl > 0);
  Fault_net.clear ctl;
  (try Proto.Client.close client with Rpc.Rpc_error _ -> ());
  teardown a

let () =
  Helpers.run "replica"
    [
      ( "propagation",
        [
          Alcotest.test_case "eager propagation" `Quick test_eager_propagation;
          Alcotest.test_case "three replicas" `Quick test_three_replicas_chain;
          Alcotest.test_case "any update path propagates" `Quick
            test_propagation_via_any_path;
          Alcotest.test_case "subscription api" `Quick test_subscription_api;
        ] );
      ( "non-blocking",
        [
          Alcotest.test_case "hung peer does not block commits" `Quick
            test_hung_peer_does_not_block_commits;
          Alcotest.test_case "outbox overflow marks lagging" `Quick
            test_outbox_overflow_marks_lagging;
        ] );
      ( "reconciliation",
        [
          Alcotest.test_case "unreachable + anti-entropy" `Quick
            test_unreachable_peer_and_anti_entropy;
          Alcotest.test_case "snapshot fallback" `Quick
            test_anti_entropy_snapshot_fallback;
          Alcotest.test_case "converged_with" `Quick test_converged_with;
          Alcotest.test_case "anti-entropy races concurrent commits" `Quick
            test_anti_entropy_races_commits;
          Alcotest.test_case "flapping peer applies exactly once" `Quick
            test_flapping_peer_applies_exactly_once;
        ] );
      ( "self-healing",
        [
          Alcotest.test_case "heartbeat detects partition and self-heals" `Quick
            test_heartbeat_detects_and_self_heals;
          Alcotest.test_case "resumable repair under connection resets" `Quick
            test_resumable_repair_under_resets;
        ] );
      ( "hard-errors",
        [
          Alcotest.test_case "clone from peer" `Quick test_clone_from_peer;
          Alcotest.test_case "repair_from_peer after refused open" `Quick
            test_repair_from_peer_after_refused_open;
          Alcotest.test_case "scrub and health over rpc" `Quick
            test_scrub_and_health_rpc;
        ] );
    ]
