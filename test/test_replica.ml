module Mem = Sdb_storage.Mem_fs
module Ns = Sdb_nameserver.Nameserver
module Data = Sdb_nameserver.Ns_data
module Path = Sdb_nameserver.Name_path
module Rpc = Sdb_rpc.Rpc
module Proto = Sdb_rpc.Ns_protocol
module Replica = Sdb_replica.Replica

let check = Alcotest.check

let p s = match Path.of_string s with Ok v -> v | Error e -> Alcotest.fail e

(* A test cell: one replica with a local ns, servable over inproc RPC. *)
type cell = {
  ns : Ns.t;
  store : Mem.store;
  replica : Replica.t;
  mutable server_threads : Thread.t list;
  mutable server_transports : Rpc.Transport.t list;
}

let make_cell id seed =
  let store = Mem.create_store ~seed () in
  let ns = Ns.open_exn (Mem.fs store) in
  { ns; store; replica = Replica.create ~id ns; server_threads = []; server_transports = [] }

(* Connect [a] -> [b]: a client in [a] served by [b]'s name server.
   [how] selects first registration (at a given acked position) or
   reconnection of a known peer. *)
let connect ?(how = `Add) a b =
  let client_t, server_t = Rpc.Inproc.pair () in
  let thread = Thread.create (fun () -> Proto.serve b.ns server_t) () in
  b.server_threads <- thread :: b.server_threads;
  b.server_transports <- server_t :: b.server_transports;
  let client = Proto.Client.create client_t in
  (match how with
  | `Add -> Replica.add_peer a.replica ~id:(Replica.id b.replica) client
  | `Add_from lsn ->
    Replica.add_peer ~acked_lsn:lsn a.replica ~id:(Replica.id b.replica) client
  | `Reconnect -> Replica.reconnect a.replica ~id:(Replica.id b.replica) client);
  client

(* Kill [cell]'s server side only — the partition move mid-test. *)
let shutdown cell =
  List.iter (fun t -> t.Rpc.Transport.close ()) cell.server_transports;
  List.iter Thread.join cell.server_threads;
  cell.server_threads <- [];
  cell.server_transports <- []

(* Full teardown: stop the replica's sender threads, then the servers. *)
let teardown cell =
  Replica.shutdown cell.replica;
  shutdown cell

let test_eager_propagation () =
  let a = make_cell "a" 1 and b = make_cell "b" 2 in
  ignore (connect a b);
  Replica.set_value a.replica (p "/users/adb") (Some "birrell");
  Replica.set_value a.replica (p "/users/mbj") (Some "jones");
  (* Propagation is asynchronous: wait for the outbox to drain. *)
  check Alcotest.bool "flushed" true (Replica.flush a.replica);
  check Alcotest.(option string) "replicated" (Some "birrell")
    (Ns.lookup b.ns (p "/users/adb"));
  check Alcotest.(option string) "replicated 2" (Some "jones")
    (Ns.lookup b.ns (p "/users/mbj"));
  (match Replica.peers a.replica with
  | [ r ] ->
    check Alcotest.bool "reachable" true r.Replica.reachable;
    check Alcotest.int "no backlog" 0 r.Replica.backlog;
    check Alcotest.int "outbox drained" 0 r.Replica.queued
  | _ -> Alcotest.fail "one peer expected");
  check Alcotest.string "digests equal" (Replica.digest a.ns) (Replica.digest b.ns);
  teardown a;
  teardown b

let test_unreachable_peer_and_anti_entropy () =
  let a = make_cell "a" 3 and b = make_cell "b" 4 in
  let _client = connect a b in
  Replica.set_value a.replica (p "/x") (Some "1");
  check Alcotest.bool "delivered before partition" true (Replica.flush a.replica);
  (* Partition: b's server goes away. *)
  shutdown b;
  Replica.set_value a.replica (p "/y") (Some "2");
  Replica.set_value a.replica (p "/z") (Some "3");
  (* The sender discovers the dead transport asynchronously; flush
     reports the peer parked rather than drained. *)
  check Alcotest.bool "flush reports undelivered" false (Replica.flush a.replica);
  (match Replica.peers a.replica with
  | [ r ] ->
    check Alcotest.bool "marked unreachable or lagging" true
      ((not r.Replica.reachable) || r.Replica.lagging);
    Alcotest.check Alcotest.bool "backlog accumulates" true (r.Replica.backlog >= 2)
  | _ -> Alcotest.fail "one peer");
  (* b's updates from before the partition are intact. *)
  check Alcotest.(option string) "pre-partition data" (Some "1") (Ns.lookup b.ns (p "/x"));
  check Alcotest.(option string) "missed" None (Ns.lookup b.ns (p "/y"));
  (* Heal: reconnect the same peer; its acked position is preserved,
     so anti-entropy replays exactly the missed log suffix. *)
  ignore (connect ~how:`Reconnect a b);
  Replica.anti_entropy a.replica;
  check Alcotest.(option string) "caught up y" (Some "2") (Ns.lookup b.ns (p "/y"));
  check Alcotest.(option string) "caught up z" (Some "3") (Ns.lookup b.ns (p "/z"));
  check Alcotest.string "converged" (Replica.digest a.ns) (Replica.digest b.ns);
  teardown a;
  teardown b

let test_anti_entropy_snapshot_fallback () =
  let a = make_cell "a" 5 and b = make_cell "b" 6 in
  (* Updates and a checkpoint BEFORE the peer joins, so the log no
     longer covers an empty peer's position (LSN 0): anti-entropy must
     take the full-transfer path. *)
  Replica.set_value a.replica (p "/old/one") (Some "1");
  Replica.set_value a.replica (p "/old/two") (Some "2");
  Replica.set_value a.replica (p "/new") (Some "3");
  Ns.checkpoint a.ns;
  ignore (connect ~how:(`Add_from 0) a b);
  Replica.anti_entropy a.replica;
  check Alcotest.(option string) "snapshot brought old" (Some "1")
    (Ns.lookup b.ns (p "/old/one"));
  check Alcotest.(option string) "snapshot brought new" (Some "3")
    (Ns.lookup b.ns (p "/new"));
  check Alcotest.string "converged" (Replica.digest a.ns) (Replica.digest b.ns);
  teardown a;
  teardown b

let test_propagation_via_any_path () =
  (* Updates made directly through the Nameserver API (not the Replica
     wrapper) must still reach peers: propagation subscribes to the
     engine's committed-update stream. *)
  let a = make_cell "a" 21 and b = make_cell "b" 22 in
  ignore (connect a b);
  Ns.set_value a.ns (p "/direct") (Some "through-ns-api");
  check Alcotest.bool "flushed" true (Replica.flush a.replica);
  check Alcotest.(option string) "propagated" (Some "through-ns-api")
    (Ns.lookup b.ns (p "/direct"));
  (* Batch updates propagate too, in order. *)
  Ns.Db.update_batch (Ns.db a.ns)
    [ Ns.Set_value (p "/b1", Some "1"); Ns.Set_value (p "/b2", Some "2") ];
  check Alcotest.bool "flushed batch" true (Replica.flush a.replica);
  check Alcotest.(option string) "batch 1" (Some "1") (Ns.lookup b.ns (p "/b1"));
  check Alcotest.(option string) "batch 2" (Some "2") (Ns.lookup b.ns (p "/b2"));
  check Alcotest.string "converged" (Replica.digest a.ns) (Replica.digest b.ns);
  teardown a;
  teardown b

let test_subscription_api () =
  (* Engine-level: subscribers see (lsn, update) in order; unsubscribe
     stops delivery. *)
  let store = Sdb_storage.Mem_fs.create_store ~seed:23 () in
  let ns = Ns.open_exn (Sdb_storage.Mem_fs.fs store) in
  let seen = ref [] in
  let sub = Ns.Db.subscribe (Ns.db ns) (fun lsn u -> seen := (lsn, u) :: !seen) in
  Ns.set_value ns (p "/x") (Some "1");
  Ns.set_value ns (p "/y") (Some "2");
  (match List.rev !seen with
  | [ (0, Ns.Set_value (px, _)); (1, Ns.Set_value (py, _)) ] ->
    check Alcotest.bool "paths" true (px = p "/x" && py = p "/y")
  | _ -> Alcotest.fail "wrong subscription stream");
  Ns.Db.unsubscribe (Ns.db ns) sub;
  Ns.set_value ns (p "/z") (Some "3");
  check Alcotest.int "no delivery after unsubscribe" 2 (List.length !seen);
  Ns.close ns

let test_converged_with () =
  let a = make_cell "a" 7 and b = make_cell "b" 8 in
  let client_ab = connect a b in
  Replica.set_value a.replica (p "/k") (Some "v");
  check Alcotest.bool "flushed" true (Replica.flush a.replica);
  Alcotest.check Alcotest.bool "converged" true
    (Replica.converged_with a.replica client_ab);
  (* Diverge b locally. *)
  Ns.set_value b.ns (p "/only-b") (Some "x");
  Alcotest.check Alcotest.bool "diverged" false
    (Replica.converged_with a.replica client_ab);
  teardown a;
  teardown b

let test_clone_from_peer () =
  (* §4 hard-error recovery: rebuild a dead replica from a live one. *)
  let a = make_cell "a" 9 in
  Replica.set_value a.replica (p "/svc/mail") (Some "host1");
  Replica.set_value a.replica (p "/svc/news") (Some "host2");
  (* Serve a. *)
  let client_t, server_t = Rpc.Inproc.pair () in
  let thread = Thread.create (fun () -> Proto.serve a.ns server_t) () in
  let client = Proto.Client.create client_t in
  let fresh_store = Mem.create_store ~seed:10 () in
  (match Replica.clone_from client (Mem.fs fresh_store) with
  | Error e -> Alcotest.fail e
  | Ok cloned ->
    check Alcotest.(option string) "cloned value" (Some "host1")
      (Ns.lookup cloned (p "/svc/mail"));
    check Alcotest.string "clone converged" (Replica.digest a.ns) (Replica.digest cloned);
    (* The clone is durable: reopen from its own disk. *)
    Ns.close cloned;
    let reopened = Ns.open_exn (Mem.fs fresh_store) in
    check Alcotest.(option string) "durable clone" (Some "host2")
      (Ns.lookup reopened (p "/svc/news")));
  Proto.Client.close client;
  server_t.Rpc.Transport.close ();
  Thread.join thread

let test_three_replicas_chain () =
  let a = make_cell "a" 11 and b = make_cell "b" 12 and c = make_cell "c" 13 in
  ignore (connect a b);
  ignore (connect a c);
  for i = 0 to 9 do
    Replica.set_value a.replica (p (Printf.sprintf "/n%d" i)) (Some (string_of_int i))
  done;
  check Alcotest.bool "flushed" true (Replica.flush a.replica);
  check Alcotest.string "a=b" (Replica.digest a.ns) (Replica.digest b.ns);
  check Alcotest.string "a=c" (Replica.digest a.ns) (Replica.digest c.ns);
  (* The paper's acceptable loss: updates at a dead replica that never
     propagated.  Kill the a->b link, update, and confirm only b lags.
     [flush] still drains the healthy peer even though it returns
     [false] for the dead one. *)
  shutdown b;
  Replica.set_value a.replica (p "/late") (Some "x");
  check Alcotest.bool "b undelivered" false (Replica.flush a.replica);
  check Alcotest.(option string) "c has it" (Some "x") (Ns.lookup c.ns (p "/late"));
  check Alcotest.(option string) "b does not" None (Ns.lookup b.ns (p "/late"));
  teardown a;
  teardown b;
  teardown c

let test_hung_peer_does_not_block_commits () =
  (* The acceptance test for non-blocking replication: a peer whose
     server never replies (transport up, reads hang) must not slow the
     local commit path.  The client deadline is deliberately huge so a
     pass cannot be explained by a fast RPC timeout. *)
  let a = make_cell "a" 31 in
  let client_t, _server_t_never_served = Rpc.Inproc.pair () in
  let client = Proto.Client.create ~deadline_s:60.0 client_t in
  Replica.add_peer a.replica ~id:"hung" client;
  let n = 20 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    Replica.set_value a.replica (p (Printf.sprintf "/k%d" i)) (Some (string_of_int i))
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  check Alcotest.bool
    (Printf.sprintf "local commits fast despite hung peer (%.3fs)" elapsed)
    true (elapsed < 5.0);
  (match Replica.peers a.replica with
  | [ r ] ->
    check Alcotest.int "backlog counts unacked updates" n r.Replica.backlog;
    (* One update is stuck in flight; the rest wait in the outbox. *)
    check Alcotest.bool "outbox holds the overflow" true (r.Replica.queued >= n - 1)
  | _ -> Alcotest.fail "one peer");
  (* The gauges agree with the report (same registry cells). *)
  let depth =
    Sdb_obs.Metrics.gauge "sdb_replica_outbox_depth" ~help:""
      ~labels:[ ("replica", "a"); ("peer", "hung") ]
  in
  let backlog =
    Sdb_obs.Metrics.gauge "sdb_replica_backlog" ~help:""
      ~labels:[ ("replica", "a"); ("peer", "hung") ]
  in
  check Alcotest.bool "depth gauge populated" true
    (Sdb_obs.Metrics.gauge_value depth >= float_of_int (n - 1));
  check Alcotest.bool "backlog gauge populated" true
    (Sdb_obs.Metrics.gauge_value backlog >= float_of_int n);
  (* Shutdown closes the client, which wakes the sender blocked on the
     hung transport — no 60 s wait. *)
  let t1 = Unix.gettimeofday () in
  Replica.shutdown a.replica;
  check Alcotest.bool "shutdown does not wait out the deadline" true
    (Unix.gettimeofday () -. t1 < 5.0)

let test_outbox_overflow_marks_lagging () =
  (* A bounded outbox: when the hung peer's queue fills, further
     commits mark it lagging (deferred to anti-entropy) instead of
     growing without bound — and still never block. *)
  let a = make_cell "a" 32 in
  let client_t, _never_served = Rpc.Inproc.pair () in
  let client = Proto.Client.create ~deadline_s:60.0 client_t in
  Replica.add_peer ~outbox_capacity:4 a.replica ~id:"hung" client;
  for i = 0 to 11 do
    Replica.set_value a.replica (p (Printf.sprintf "/o%d" i)) (Some "v")
  done;
  (match Replica.peers a.replica with
  | [ r ] ->
    check Alcotest.bool "lagging after overflow" true r.Replica.lagging;
    check Alcotest.bool "queue bounded" true (r.Replica.queued <= 4);
    check Alcotest.int "nothing lost locally" 12 r.Replica.backlog
  | _ -> Alcotest.fail "one peer");
  Replica.shutdown a.replica

let test_repair_from_peer_after_refused_open () =
  (* The §4 story end to end: interior damage in the previous
     generation's log (with valid entries beyond it) makes the
     hard-error fallback refuse the store outright — and
     [repair_from_peer] then rebuilds that same store from a healthy
     replica, digest-verified. *)
  let module Store = Sdb_checkpoint.Checkpoint_store in
  let retain = { Smalldb.default_config with retain_previous = true } in
  let big = String.make 2000 'v' in
  let apply ns =
    for i = 0 to 4 do
      Ns.set_value ns (p (Printf.sprintf "/k%d" i)) (Some big)
    done
  in
  (* The victim: data across two generations, previous retained. *)
  let vstore = Mem.create_store ~seed:41 () in
  let vfs = Mem.fs vstore in
  let victim = Ns.open_exn ~config:retain vfs in
  apply victim;
  Ns.checkpoint victim;
  Ns.set_value victim (p "/after") (Some "ckpt");
  Ns.close victim;
  (* The healthy peer holds the same data (it had all propagated). *)
  let peer = make_cell "peer" 42 in
  apply peer.ns;
  Ns.set_value peer.ns (p "/after") (Some "ckpt");
  (* A hard error in the current checkpoint forces the fallback path;
     interior damage in the retained log makes the fallback refuse
     rather than silently drop the entries beyond it. *)
  Mem.damage vstore ~file:(Store.checkpoint_file 1) ~offset:100 ~len:50;
  Mem.damage vstore ~file:(Store.log_file 0) ~offset:2500 ~len:100;
  (match Ns.open_ ~config:retain vfs with
  | Ok _ -> Alcotest.fail "damaged store opened anyway"
  | Error _ -> ());
  (* Repair the same store in place from the peer. *)
  let client_t, server_t = Rpc.Inproc.pair () in
  let thread = Thread.create (fun () -> Proto.serve peer.ns server_t) () in
  let client = Proto.Client.create client_t in
  (match Replica.repair_from_peer ~config:retain client vfs with
  | Error e -> Alcotest.fail e
  | Ok repaired ->
    check Alcotest.(option string) "value restored" (Some big)
      (Ns.lookup repaired (p "/k3"));
    check Alcotest.string "digest matches the healthy peer"
      (Replica.digest peer.ns) (Replica.digest repaired);
    let r = Ns.scrub repaired in
    check Alcotest.int "scrub clean after repair" 0
      (List.length r.Smalldb.findings);
    check Alcotest.bool "replay consistent" true r.Smalldb.replay_consistent;
    (* The repaired store is durable on its own disk. *)
    Ns.close repaired;
    let reopened = Ns.open_exn ~config:retain vfs in
    check Alcotest.(option string) "durable" (Some "ckpt")
      (Ns.lookup reopened (p "/after"));
    Ns.close reopened);
  Proto.Client.close client;
  server_t.Rpc.Transport.close ();
  Thread.join thread;
  teardown peer

let test_scrub_and_health_rpc () =
  (* The scrub verb over the wire: a served name server can be scrubbed
     and health-checked remotely. *)
  let a = make_cell "a" 51 in
  Ns.set_value a.ns (p "/x") (Some "1");
  let client_t, server_t = Rpc.Inproc.pair () in
  let thread = Thread.create (fun () -> Proto.serve a.ns server_t) () in
  let client = Proto.Client.create client_t in
  (match Proto.Client.health client with
  | `Healthy -> ()
  | _ -> Alcotest.fail "expected healthy over rpc");
  let r = Proto.Client.scrub client ~repair:false in
  check Alcotest.int "clean over rpc" 0 (List.length r.Smalldb.findings);
  check Alcotest.bool "consistent over rpc" true r.Smalldb.replay_consistent;
  (* Damage the log; a repairing scrub over the wire fixes it. *)
  let gen = (Ns.stats a.ns).Smalldb.generation in
  Mem.damage a.store ~file:(Sdb_checkpoint.Checkpoint_store.log_file gen)
    ~offset:30 ~len:4;
  let r2 = Proto.Client.scrub client ~repair:true in
  check Alcotest.bool "damage seen over rpc" true (r2.Smalldb.findings <> []);
  check Alcotest.bool "repaired over rpc" true r2.Smalldb.repaired;
  let r3 = Proto.Client.scrub client ~repair:false in
  check Alcotest.int "clean after remote repair" 0
    (List.length r3.Smalldb.findings);
  Proto.Client.close client;
  server_t.Rpc.Transport.close ();
  Thread.join thread;
  teardown a

let () =
  Helpers.run "replica"
    [
      ( "propagation",
        [
          Alcotest.test_case "eager propagation" `Quick test_eager_propagation;
          Alcotest.test_case "three replicas" `Quick test_three_replicas_chain;
          Alcotest.test_case "any update path propagates" `Quick
            test_propagation_via_any_path;
          Alcotest.test_case "subscription api" `Quick test_subscription_api;
        ] );
      ( "non-blocking",
        [
          Alcotest.test_case "hung peer does not block commits" `Quick
            test_hung_peer_does_not_block_commits;
          Alcotest.test_case "outbox overflow marks lagging" `Quick
            test_outbox_overflow_marks_lagging;
        ] );
      ( "reconciliation",
        [
          Alcotest.test_case "unreachable + anti-entropy" `Quick
            test_unreachable_peer_and_anti_entropy;
          Alcotest.test_case "snapshot fallback" `Quick
            test_anti_entropy_snapshot_fallback;
          Alcotest.test_case "converged_with" `Quick test_converged_with;
        ] );
      ( "hard-errors",
        [
          Alcotest.test_case "clone from peer" `Quick test_clone_from_peer;
          Alcotest.test_case "repair_from_peer after refused open" `Quick
            test_repair_from_peer_after_refused_open;
          Alcotest.test_case "scrub and health over rpc" `Quick
            test_scrub_and_health_rpc;
        ] );
    ]
