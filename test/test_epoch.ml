(* The lock-free read path end to end: the epoch publication layer on
   its own, the engine routing queries through it (read_path = `Epoch),
   and the snapshot semantics observable over RPC.  The interleaving
   space of the protocol itself is exhausted in test_schedcheck; what
   this suite adds is the real instantiation — Stdlib atomics, real
   threads, the real engine and wire protocol — plus the detector
   honesty check (unsafe reclamation is caught by the sanitizer). *)

module Epoch = Sdb_epoch.Epoch
module Mem = Sdb_storage.Mem_fs
module Ns = Sdb_nameserver.Nameserver
module Data = Sdb_nameserver.Ns_data
module Path = Sdb_nameserver.Name_path
module Proto = Sdb_rpc.Ns_protocol
module Rpc = Sdb_rpc.Rpc
module Metrics = Sdb_obs.Metrics

let check = Alcotest.check
let p s = match Path.of_string s with Ok v -> v | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* The publication layer alone                                         *)

let test_publish_reclaims_without_readers () =
  let e = Epoch.create ~name:"t-epoch-drain" ~lsn:0 "v0" in
  for k = 1 to 50 do
    Epoch.publish e ~lsn:k (Printf.sprintf "v%d" k)
  done;
  (* No reader slot is registered, so every publish's inline sweep
     frees the version it displaced: live versions stay bounded. *)
  check Alcotest.int "nothing retired" 0 (Epoch.retired_versions e);
  check Alcotest.int "all reclaimed" 50 (Epoch.reclaimed_total e);
  check Alcotest.int "one advance per publish" 50 (Epoch.advance_total e);
  check Alcotest.int "no lag" 0 (Epoch.reclaim_lag e);
  check Alcotest.string "latest version" "v50" (Epoch.read e Fun.id);
  let v, lsn = Epoch.read_with_lsn e Fun.id in
  check Alcotest.string "payload" "v50" v;
  check Alcotest.int "paired lsn" 50 lsn

let test_pinned_reader_blocks_reclaim () =
  let e = Epoch.create ~name:"t-epoch-pin" ~lsn:0 0 in
  let observed =
    Epoch.read e (fun v0 ->
        (* Publishes landing while this reader is pinned: the slot
           registration must hold every displaced version live. *)
        for k = 1 to 3 do
          Epoch.publish e ~lsn:k k
        done;
        check Alcotest.int "retired pile held" 3 (Epoch.retired_versions e);
        check Alcotest.bool "lag visible" true (Epoch.reclaim_lag e > 0);
        v0)
  in
  check Alcotest.int "reader saw its pinned version" 0 observed;
  check Alcotest.int "slot empty after exit" 0 (Epoch.active_readers e);
  (* The reader is gone: one sweep frees the whole pile. *)
  check Alcotest.int "sweep frees all three" 3 (Epoch.reclaim e);
  check Alcotest.int "nothing retired" 0 (Epoch.retired_versions e);
  check Alcotest.int "reclaimed total" 3 (Epoch.reclaimed_total e)

let test_raising_reader_exits () =
  let e = Epoch.create ~name:"t-epoch-raise" ~lsn:0 "v0" in
  (match Epoch.read e (fun _ -> raise Exit) with
  | _ -> Alcotest.fail "reader should have raised"
  | exception Exit -> ());
  check Alcotest.int "slot released on raise" 0 (Epoch.active_readers e);
  (* And reclamation is not wedged: the next publish sweeps itself. *)
  Epoch.publish e ~lsn:1 "v1";
  check Alcotest.int "nothing retired" 0 (Epoch.retired_versions e)

(* Detector honesty: reclaiming without honouring the reader slots must
   be flagged by the sanitizer, on the reader that held the version. *)
let test_unsafe_reclaim_caught () =
  Sdb_check.reset ();
  Sdb_check.set_enabled true;
  Fun.protect ~finally:(fun () -> Sdb_check.set_enabled false) @@ fun () ->
  let e = Epoch.create ~name:"t-epoch-unsafe" ~lsn:0 "v0" in
  (match
     Epoch.read e (fun _ ->
         Epoch.publish e ~lsn:1 "v1";
         (* The seeded bug: frees the version this reader still holds. *)
         ignore (Epoch.unsafe_reclaim_all e : int))
   with
  | () -> Alcotest.fail "use-after-retire not detected"
  | exception Sdb_check.Violation v ->
    check Alcotest.string "rule" "epoch" v.Sdb_check.v_rule);
  check Alcotest.int "slot released despite violation" 0
    (Epoch.active_readers e)

(* ------------------------------------------------------------------ *)
(* The engine on the epoch route                                       *)

let epoch_ns ?(seed = 7) () =
  let store = Mem.create_store ~seed () in
  let config = { Smalldb.default_config with read_path = `Epoch } in
  (store, Ns.open_exn ~config (Mem.fs store))

(* A reader holding its snapshot across a concurrent committed update
   must keep seeing the pre-update version — and, unlike the Shared-lock
   route (where the updater's upgrade would drain this very reader,
   i.e. deadlock against it), the update commits while the reader is
   still inside its query. *)
let test_snapshot_across_update () =
  let _store, ns = epoch_ns () in
  Ns.set_value ns (p "/k") (Some "before");
  let entered = ref false and updated = ref false in
  let seen = ref None in
  let reader =
    Thread.create
      (fun () ->
        let v =
          Ns.Db.query (Ns.db ns) (fun root ->
              entered := true;
              while not !updated do
                Thread.yield ()
              done;
              (* The update has committed; this snapshot must not see it. *)
              match Data.pfind root (p "/k") with
              | Some n -> n.Data.pvalue
              | None -> None)
        in
        seen := Some v)
      ()
  in
  while not !entered do
    Thread.yield ()
  done;
  (* Commits without waiting for the pinned reader. *)
  Ns.set_value ns (p "/k") (Some "after");
  updated := true;
  Thread.join reader;
  check
    Alcotest.(option (option string))
    "pinned reader saw the pre-update version"
    (Some (Some "before"))
    !seen;
  check
    Alcotest.(option string)
    "a fresh query sees the update" (Some "after")
    (Ns.lookup ns (p "/k"));
  Ns.close ns

(* The epoch metrics are the observable face of reclamation: under
   churn with a pinned reader the retired pile (and lag) grows; once
   the reader drains, the next publish sweeps it back to zero. *)
let metric_value name =
  Metrics.render () |> String.split_on_char '\n'
  |> List.find_map (fun line ->
         if String.length line > 0 && line.[0] <> '#'
            && String.starts_with ~prefix:name line
         then
           String.rindex_opt line ' '
           |> Option.map (fun i ->
                  float_of_string
                    (String.sub line (i + 1) (String.length line - i - 1)))
         else None)
  |> function
  | Some v -> v
  | None -> Alcotest.failf "metric %s not found in render" name

let test_bounded_versions_under_churn () =
  let _store, ns = epoch_ns ~seed:8 () in
  Ns.set_value ns (p "/seq") (Some "0");
  let entered = ref false and release = ref false in
  let reader =
    Thread.create
      (fun () ->
        Ns.Db.query (Ns.db ns) (fun _root ->
            entered := true;
            while not !release do
              Thread.yield ()
            done))
      ()
  in
  while not !entered do
    Thread.yield ()
  done;
  let churn = 20 in
  for i = 1 to churn do
    Ns.set_value ns (p "/seq") (Some (string_of_int i))
  done;
  let retired =
    metric_value "sdb_epoch_retired_versions{db=\"nameserver\"}"
  in
  check Alcotest.bool "retired pile grows while pinned" true (retired >= 1.0);
  check Alcotest.bool "pile bounded by churn" true
    (retired <= float_of_int churn);
  check Alcotest.bool "reclaim lag surfaced" true
    (metric_value "sdb_epoch_reclaim_lag{db=\"nameserver\"}" >= 1.0);
  check (Alcotest.float 0.0) "reader gauge" 1.0
    (metric_value "sdb_epoch_readers{db=\"nameserver\"}");
  release := true;
  Thread.join reader;
  (* The next publish's inline sweep frees the whole pile. *)
  Ns.set_value ns (p "/seq") (Some "done");
  check (Alcotest.float 0.0) "pile swept once the reader drained" 0.0
    (metric_value "sdb_epoch_retired_versions{db=\"nameserver\"}");
  check (Alcotest.float 0.0) "no lag" 0.0
    (metric_value "sdb_epoch_reclaim_lag{db=\"nameserver\"}");
  check Alcotest.bool "advances counted" true
    (metric_value "sdb_epoch_advance_total{db=\"nameserver\"}"
    >= float_of_int churn);
  Ns.close ns

(* A raising reader must not wedge the engine's epoch (the engine-level
   twin of [test_raising_reader_exits]). *)
let test_engine_raising_reader () =
  let _store, ns = epoch_ns ~seed:9 () in
  Ns.set_value ns (p "/x") (Some "1");
  (match Ns.Db.query (Ns.db ns) (fun _ -> raise Exit) with
  | _ -> Alcotest.fail "query should have raised"
  | exception Exit -> ());
  (* Updates still commit and reclaim behind them. *)
  Ns.set_value ns (p "/x") (Some "2");
  check
    Alcotest.(option string)
    "engine still serving" (Some "2")
    (Ns.lookup ns (p "/x"));
  check (Alcotest.float 0.0) "slot released" 0.0
    (metric_value "sdb_epoch_readers{db=\"nameserver\"}");
  Ns.close ns

(* ------------------------------------------------------------------ *)
(* Snapshot semantics over the wire                                    *)

(* Two RPC clients against one epoch-routed server: a writer streams
   sequenced values while a reader repeatedly takes [snapshot] (the
   engine's query_with_lsn through the epoch route).  The payload and
   the LSN must come from the same published version: value i is
   committed by exactly the update that moved the LSN to base + i. *)
let test_rpc_snapshot_consistency () =
  let _store, ns = epoch_ns ~seed:10 () in
  let serve_pair () =
    let client_t, server_t = Rpc.Inproc.pair () in
    let server = Thread.create (fun () -> Proto.serve ns server_t) () in
    (Proto.Client.create client_t, server_t, server)
  in
  let wc, wst, wsrv = serve_pair () in
  let rc, rst, rsrv = serve_pair () in
  Fun.protect
    ~finally:(fun () ->
      Proto.Client.close wc;
      Proto.Client.close rc;
      wst.Rpc.Transport.close ();
      rst.Rpc.Transport.close ();
      Thread.join wsrv;
      Thread.join rsrv;
      Ns.close ns)
    (fun () ->
      Proto.Client.set_value wc (p "/seq") (Some "0");
      let base = Proto.Client.lsn rc in
      let writes = 50 in
      let writer =
        Thread.create
          (fun () ->
            for i = 1 to writes do
              Proto.Client.set_value wc (p "/seq") (Some (string_of_int i))
            done)
          ()
      in
      let consistent = ref 0 in
      while Proto.Client.lsn rc < base + writes do
        let tree, lsn = Proto.Client.snapshot rc in
        let value =
          match Data.pfind (Data.pof_tree tree) (p "/seq") with
          | Some n -> n.Data.pvalue
          | None -> None
        in
        (match value with
        | Some v ->
          check Alcotest.int
            (Printf.sprintf "value %s pairs with lsn %d (base %d)" v lsn base)
            (lsn - base) (int_of_string v);
          incr consistent
        | None -> Alcotest.fail "/seq vanished mid-run")
      done;
      Thread.join writer;
      check Alcotest.bool "snapshots actually raced the writer" true
        (!consistent > 0);
      check
        Alcotest.(option string)
        "final value" (Some (string_of_int writes))
        (Proto.Client.lookup rc (p "/seq")))

let () =
  Helpers.run "epoch"
    [
      ( "layer",
        [
          Alcotest.test_case "publish reclaims with no readers" `Quick
            test_publish_reclaims_without_readers;
          Alcotest.test_case "pinned reader blocks reclaim" `Quick
            test_pinned_reader_blocks_reclaim;
          Alcotest.test_case "raising reader exits its epoch" `Quick
            test_raising_reader_exits;
          Alcotest.test_case "unsafe reclaim caught by sanitizer" `Quick
            test_unsafe_reclaim_caught;
        ] );
      ( "engine",
        [
          Alcotest.test_case "snapshot held across concurrent update" `Quick
            test_snapshot_across_update;
          Alcotest.test_case "bounded versions and metrics under churn" `Quick
            test_bounded_versions_under_churn;
          Alcotest.test_case "raising reader does not wedge the engine" `Quick
            test_engine_raising_reader;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "snapshot/lsn pairing under a racing writer"
            `Quick test_rpc_snapshot_consistency;
        ] );
    ]
