(* The observability layer: metrics registry semantics and trace sinks.

   The registry is process-global, so each test works with its own
   uniquely-named families (and resets global switches it flips). *)

module Metrics = Sdb_obs.Metrics
module Trace = Sdb_obs.Trace

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_counter_monotone () =
  let c = Metrics.counter "test_obs_monotone_total" in
  let v0 = Metrics.counter_value c in
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 5;
  check Alcotest.int "incremented" (v0 + 7) (Metrics.counter_value c);
  Metrics.add c 0;
  check Alcotest.int "add zero" (v0 + 7) (Metrics.counter_value c);
  Alcotest.check_raises "negative add refused"
    (Invalid_argument "Metrics.add: counters are monotone") (fun () ->
      Metrics.add c (-1))

let test_idempotent_creation () =
  let a = Metrics.counter "test_obs_idem_total" ~labels:[ ("k", "v") ] in
  let b = Metrics.counter "test_obs_idem_total" ~labels:[ ("k", "v") ] in
  Metrics.incr a;
  Metrics.incr b;
  check Alcotest.int "same underlying counter" 2 (Metrics.counter_value a);
  (* Same name with a different kind is a bug at the call site. *)
  Alcotest.check_raises "kind conflict"
    (Invalid_argument "Metrics: test_obs_idem_total is a counter, requested as gauge")
    (fun () -> ignore (Metrics.gauge "test_obs_idem_total"))

let test_label_isolation () =
  let verify =
    Metrics.counter "test_obs_phase_total" ~labels:[ ("phase", "verify") ]
  in
  let apply =
    Metrics.counter "test_obs_phase_total" ~labels:[ ("phase", "apply") ]
  in
  (* Label order must not create a distinct series. *)
  let multi_a =
    Metrics.counter "test_obs_multi_total" ~labels:[ ("a", "1"); ("b", "2") ]
  in
  let multi_b =
    Metrics.counter "test_obs_multi_total" ~labels:[ ("b", "2"); ("a", "1") ]
  in
  Metrics.incr verify;
  Metrics.incr verify;
  Metrics.incr apply;
  Metrics.incr multi_a;
  Metrics.incr multi_b;
  check Alcotest.int "verify series" 2 (Metrics.counter_value verify);
  check Alcotest.int "apply series" 1 (Metrics.counter_value apply);
  check Alcotest.int "label order canonicalized" 2 (Metrics.counter_value multi_a)

let test_gauge_and_histogram () =
  let g = Metrics.gauge "test_obs_gauge" in
  Metrics.set_gauge g 3.5;
  check (Alcotest.float 1e-9) "gauge set" 3.5 (Metrics.gauge_value g);
  Metrics.set_gauge g (-1.0);
  check (Alcotest.float 1e-9) "gauge moves down" (-1.0) (Metrics.gauge_value g);
  let h = Metrics.histogram "test_obs_hist_seconds" in
  List.iter (Metrics.observe h) [ 0.1; 0.2; 0.3 ];
  let s = Metrics.histogram_snapshot h in
  check Alcotest.int "observations" 3 s.Sdb_util.Histogram.s_count;
  check (Alcotest.float 1e-9) "mean" 0.2 s.Sdb_util.Histogram.s_mean

let test_enable_disable () =
  let c = Metrics.counter "test_obs_disabled_total" in
  let g = Metrics.gauge "test_obs_disabled_gauge" in
  let h = Metrics.histogram "test_obs_disabled_seconds" in
  Metrics.set_gauge g 1.0;
  Metrics.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Metrics.set_enabled true)
    (fun () ->
      check Alcotest.bool "disabled" false (Metrics.is_enabled ());
      Metrics.incr c;
      Metrics.add c 10;
      Metrics.set_gauge g 99.0;
      Metrics.observe h 1.0;
      check Alcotest.int "counter frozen" 0 (Metrics.counter_value c);
      check (Alcotest.float 1e-9) "gauge frozen" 1.0 (Metrics.gauge_value g);
      check Alcotest.int "histogram frozen" 0
        (Metrics.histogram_snapshot h).Sdb_util.Histogram.s_count);
  Metrics.incr c;
  check Alcotest.int "recording resumes" 1 (Metrics.counter_value c)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_render () =
  let c =
    Metrics.counter "test_obs_render_total" ~help:"Render me."
      ~labels:[ ("phase", "log") ]
  in
  Metrics.add c 4;
  let h = Metrics.histogram "test_obs_render_seconds" in
  Metrics.observe h 0.25;
  let out = Metrics.render () in
  check Alcotest.bool "help line" true
    (contains ~needle:"# HELP test_obs_render_total Render me." out);
  check Alcotest.bool "type line" true
    (contains ~needle:"# TYPE test_obs_render_total counter" out);
  check Alcotest.bool "labelled sample" true
    (contains ~needle:"test_obs_render_total{phase=\"log\"} 4" out);
  check Alcotest.bool "summary quantile" true
    (contains ~needle:"test_obs_render_seconds{quantile=\"0.5\"}" out);
  check Alcotest.bool "summary count" true
    (contains ~needle:"test_obs_render_seconds_count 1" out)

let test_reset_keeps_handles () =
  let c = Metrics.counter "test_obs_reset_total" in
  Metrics.add c 7;
  Metrics.reset ();
  check Alcotest.int "zeroed" 0 (Metrics.counter_value c);
  Metrics.incr c;
  check Alcotest.int "handle still live" 1 (Metrics.counter_value c);
  check Alcotest.bool "still rendered" true
    (contains ~needle:"test_obs_reset_total 1" (Metrics.render ()))

(* ------------------------------------------------------------------ *)
(* Tracing                                                             *)

let with_sink sink f =
  Trace.set_sink (Some sink);
  Fun.protect ~finally:(fun () -> Trace.set_sink None) f

let span_names spans = List.map (fun s -> s.Trace.name) spans

let test_sink_ordering () =
  let ring = Trace.Ring.create ~capacity:16 in
  with_sink (Trace.Ring.sink ring) (fun () ->
      check Alcotest.bool "active" true (Trace.active ());
      Trace.span "first" ~start_s:1.0 ~dur_s:0.1;
      Trace.span "second" ~start_s:2.0 ~dur_s:0.2;
      let v = Trace.with_span "third" (fun () -> 42) in
      check Alcotest.int "with_span passes result" 42 v);
  check Alcotest.bool "inactive after reset" false (Trace.active ());
  Trace.span "dropped" ~start_s:9.0 ~dur_s:0.0;
  check (Alcotest.list Alcotest.string) "emission order"
    [ "first"; "second"; "third" ]
    (span_names (Trace.Ring.contents ring))

let test_with_span_exception () =
  let ring = Trace.Ring.create ~capacity:4 in
  with_sink (Trace.Ring.sink ring) (fun () ->
      match Trace.with_span "boom" (fun () -> failwith "kaput") with
      | () -> Alcotest.fail "expected Failure"
      | exception Failure _ -> ());
  match Trace.Ring.contents ring with
  | [ s ] ->
    check Alcotest.string "span name" "boom" s.Trace.name;
    check Alcotest.bool "error attr" true
      (List.mem_assoc "error" s.Trace.attrs)
  | spans -> Alcotest.failf "expected one span, got %d" (List.length spans)

let test_ring_truncation () =
  let ring = Trace.Ring.create ~capacity:3 in
  with_sink (Trace.Ring.sink ring) (fun () ->
      for i = 1 to 7 do
        Trace.span (Printf.sprintf "s%d" i) ~start_s:(float_of_int i) ~dur_s:0.0
      done);
  check (Alcotest.list Alcotest.string) "keeps the newest, oldest first"
    [ "s5"; "s6"; "s7" ]
    (span_names (Trace.Ring.contents ring));
  Trace.Ring.clear ring;
  check Alcotest.int "cleared" 0 (List.length (Trace.Ring.contents ring))

let test_tee () =
  let a = Trace.Ring.create ~capacity:4 in
  let b = Trace.Ring.create ~capacity:4 in
  with_sink (Trace.tee [ Trace.Ring.sink a; Trace.Ring.sink b ]) (fun () ->
      Trace.span "both" ~start_s:1.0 ~dur_s:0.5);
  check (Alcotest.list Alcotest.string) "first sink" [ "both" ]
    (span_names (Trace.Ring.contents a));
  check (Alcotest.list Alcotest.string) "second sink" [ "both" ]
    (span_names (Trace.Ring.contents b))

let test_ring_recent () =
  let ring = Trace.Ring.create ~capacity:8 in
  with_sink (Trace.Ring.sink ring) (fun () ->
      Trace.span "fast1" ~start_s:1.0 ~dur_s:0.001;
      Trace.span "slow1" ~start_s:2.0 ~dur_s:0.5;
      Trace.span "fast2" ~start_s:3.0 ~dur_s:0.002;
      Trace.span "slow2" ~start_s:4.0 ~dur_s:0.9);
  check (Alcotest.list Alcotest.string) "newest first, filtered"
    [ "slow2"; "slow1" ]
    (span_names (Trace.Ring.recent ~min_dur_s:0.1 ~max_n:10 ring));
  check (Alcotest.list Alcotest.string) "max_n truncates at the new end"
    [ "slow2"; "fast2" ]
    (span_names (Trace.Ring.recent ~max_n:2 ring))

let test_slow_ring () =
  Trace.set_sink (Some (Trace.Slow.install ~capacity:8 ~threshold_s:0.01));
  Fun.protect
    ~finally:(fun () -> Trace.set_sink None)
    (fun () ->
      check (Alcotest.option (Alcotest.float 1e-12)) "threshold readable"
        (Some 0.01) (Trace.Slow.threshold_s ());
      Trace.span "fast" ~start_s:1.0 ~dur_s:0.001;
      Trace.span "slow" ~start_s:2.0 ~dur_s:0.05;
      check (Alcotest.list Alcotest.string) "only spans over threshold"
        [ "slow" ]
        (span_names (Trace.Slow.recent ~max_n:10 ()));
      check (Alcotest.list Alcotest.string) "query-time filter stacks"
        []
        (span_names (Trace.Slow.recent ~min_dur_s:0.1 ~max_n:10 ())))

let test_with_request () =
  let ring = Trace.Ring.create ~capacity:8 in
  with_sink (Trace.Ring.sink ring) (fun () ->
      Trace.span "before" ~start_s:0.0 ~dur_s:0.0;
      Trace.with_request "req-7" (fun () ->
          check (Alcotest.option Alcotest.string) "context visible"
            (Some "req-7") (Trace.current_request ());
          Trace.span "inside" ~start_s:1.0 ~dur_s:0.0;
          Trace.with_request "req-8" (fun () ->
              Trace.span "nested" ~start_s:2.0 ~dur_s:0.0);
          (* The outer id is restored after the nested scope. *)
          Trace.span "restored" ~start_s:3.0 ~dur_s:0.0;
          (* An explicit req attr wins over the ambient context. *)
          Trace.span "explicit" ~attrs:[ ("req", "mine") ] ~start_s:4.0
            ~dur_s:0.0);
      Trace.span "after" ~start_s:5.0 ~dur_s:0.0);
  check (Alcotest.option Alcotest.string) "no ambient context" None
    (Trace.current_request ());
  let req name =
    let s = List.find (fun s -> s.Trace.name = name) (Trace.Ring.contents ring) in
    List.assoc_opt "req" s.Trace.attrs
  in
  check (Alcotest.option Alcotest.string) "before scope" None (req "before");
  check (Alcotest.option Alcotest.string) "inside scope" (Some "req-7")
    (req "inside");
  check (Alcotest.option Alcotest.string) "nested scope" (Some "req-8")
    (req "nested");
  check (Alcotest.option Alcotest.string) "outer restored" (Some "req-7")
    (req "restored");
  check (Alcotest.option Alcotest.string) "explicit attr wins" (Some "mine")
    (req "explicit");
  check (Alcotest.option Alcotest.string) "after scope" None (req "after")

(* ------------------------------------------------------------------ *)
(* Summaries                                                           *)

let test_summaries_and_merge () =
  let h_get =
    Metrics.histogram "test_obs_sum_seconds" ~labels:[ ("meth", "get") ]
  in
  let h_put =
    Metrics.histogram "test_obs_sum_seconds" ~labels:[ ("meth", "put") ]
  in
  List.iter (Metrics.observe h_get) [ 0.001; 0.002; 0.003 ];
  List.iter (Metrics.observe h_put) [ 0.1; 0.2 ];
  let ours =
    List.filter (fun (name, _, _) -> name = "test_obs_sum_seconds")
      (Metrics.summaries ())
  in
  check Alcotest.int "one entry per series" 2 (List.length ours);
  let counts =
    List.map (fun (_, _, s) -> s.Sdb_util.Histogram.s_count) ours
  in
  check (Alcotest.list Alcotest.int) "sorted by labels" [ 3; 2 ] counts;
  let m = Metrics.merged_summary "test_obs_sum_seconds" in
  check Alcotest.int "merged count" 5 m.Sdb_util.Histogram.s_count;
  check (Alcotest.float 1e-9) "merged max" 0.2 m.Sdb_util.Histogram.s_max;
  check (Alcotest.float 1e-9) "merged min" 0.001 m.Sdb_util.Histogram.s_min;
  check Alcotest.int "absent family is empty" 0
    (Metrics.merged_summary "test_obs_no_such_family").Sdb_util.Histogram.s_count

let test_render_p999 () =
  let h = Metrics.histogram "test_obs_p999_seconds" in
  Metrics.observe h 0.25;
  check Alcotest.bool "0.999 quantile rendered" true
    (contains ~needle:"test_obs_p999_seconds{quantile=\"0.999\"}"
       (Metrics.render ()))

let test_jsonl_sink () =
  let path = Filename.temp_file "sdb-obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      with_sink (Trace.jsonl_sink oc) (fun () ->
          Trace.span "a\"b" ~attrs:[ ("k", "v\n") ] ~start_s:1.5 ~dur_s:0.25);
      close_out oc;
      let ic = open_in path in
      let line = input_line ic in
      close_in ic;
      check Alcotest.string "escaped json line"
        "{\"name\":\"a\\\"b\",\"start_s\":1.500000,\"dur_s\":0.250000000,\"attrs\":{\"k\":\"v\\n\"}}"
        line)

let () =
  Helpers.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter monotone" `Quick test_counter_monotone;
          Alcotest.test_case "idempotent creation" `Quick test_idempotent_creation;
          Alcotest.test_case "label isolation" `Quick test_label_isolation;
          Alcotest.test_case "gauge and histogram" `Quick test_gauge_and_histogram;
          Alcotest.test_case "enable/disable" `Quick test_enable_disable;
          Alcotest.test_case "render" `Quick test_render;
          Alcotest.test_case "reset keeps handles" `Quick test_reset_keeps_handles;
          Alcotest.test_case "summaries and merge" `Quick test_summaries_and_merge;
          Alcotest.test_case "render p999" `Quick test_render_p999;
        ] );
      ( "trace",
        [
          Alcotest.test_case "sink ordering" `Quick test_sink_ordering;
          Alcotest.test_case "with_span on exception" `Quick test_with_span_exception;
          Alcotest.test_case "ring truncation" `Quick test_ring_truncation;
          Alcotest.test_case "tee" `Quick test_tee;
          Alcotest.test_case "ring recent" `Quick test_ring_recent;
          Alcotest.test_case "slow ring" `Quick test_slow_ring;
          Alcotest.test_case "request context" `Quick test_with_request;
          Alcotest.test_case "jsonl escaping" `Quick test_jsonl_sink;
        ] );
    ]
