(* The open-loop load generator: schedules, mixes, and the
   coordinated-omission accounting.

   Schedule and mix internals are pure given the RNG, so most of this
   is deterministic; the [run] tests drive a fake [exec] and assert on
   counts and latency floors rather than exact timings. *)

module L = Sdb_loadgen.Loadgen
module Rng = Sdb_util.Rng
module Histogram = Sdb_util.Histogram

let check = Alcotest.check

let test_fixed_spacing () =
  let rng = Rng.create ~seed:1 in
  check (Alcotest.float 1e-12) "metronome gap" 0.01
    (L.interarrival L.Fixed_spacing rng ~rate:100.0);
  let a = L.arrivals L.Fixed_spacing rng ~rate:100.0 ~duration_s:1.0 in
  check Alcotest.int "count fills the window" 99 (Array.length a);
  Array.iteri
    (fun i t ->
      check (Alcotest.float 1e-9) "evenly spaced"
        (0.01 *. float_of_int (i + 1))
        t)
    a

let test_poisson_mean () =
  let rng = Rng.create ~seed:2 in
  let rate = 1000.0 in
  let a = L.arrivals L.Poisson rng ~rate ~duration_s:5.0 in
  let n = Array.length a in
  (* Mean of a Poisson count at rate*duration = 5000; 4 sigma is ~283. *)
  check Alcotest.bool "count near rate*duration" true (n > 4700 && n < 5300);
  Array.iteri
    (fun i t ->
      if i > 0 then
        check Alcotest.bool "strictly within window and ascending" true
          (t > a.(i - 1) && t < 5.0))
    a

let test_mix_and_values () =
  let cfg = { L.default with L.keys = 50; read_fraction = 1.0 } in
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 200 do
    match L.gen_op cfg rng with
    | L.Read k -> check Alcotest.bool "key in range" true (k >= 0 && k < 50)
    | L.Write _ -> Alcotest.fail "read_fraction 1.0 produced a write"
  done;
  let cfg =
    { L.default with L.read_fraction = 0.0; value_size = L.Between (3, 5) }
  in
  for _ = 1 to 200 do
    match L.gen_op cfg rng with
    | L.Read _ -> Alcotest.fail "read_fraction 0.0 produced a read"
    | L.Write (_, v) ->
      check Alcotest.bool "value size in range" true
        (String.length v >= 3 && String.length v <= 5)
  done

let test_validation () =
  let invalid cfg = try ignore (L.run cfg ~exec:(fun ~thread:_ _ -> ())); false
    with Invalid_argument _ -> true
  in
  check Alcotest.bool "zero rate refused" true
    (invalid { L.default with L.rate = 0.0 });
  check Alcotest.bool "bad mix refused" true
    (invalid { L.default with L.read_fraction = 1.5 });
  check Alcotest.bool "bad value range refused" true
    (invalid { L.default with L.value_size = L.Between (5, 3) })

let quick_cfg =
  { L.default with L.rate = 2000.0; duration_s = 0.2; threads = 2; keys = 16 }

let test_run_counts () =
  let hits = Atomic.make 0 in
  let r =
    L.run quick_cfg ~exec:(fun ~thread:_ _ -> Atomic.incr hits)
  in
  check Alcotest.bool "schedule was non-trivial" true (r.L.offered > 100);
  check Alcotest.int "exec saw every arrival" r.L.offered (Atomic.get hits);
  check Alcotest.int "all completed" r.L.offered r.L.completed;
  check Alcotest.int "no errors" 0 r.L.errors;
  check Alcotest.int "every op in the histogram" r.L.offered
    (Histogram.count r.L.latency);
  check Alcotest.bool "achieved rate positive" true (r.L.achieved_rate > 0.0);
  check Alcotest.bool "elapsed at least the window" true
    (r.L.elapsed_s >= quick_cfg.L.duration_s)

let test_latency_from_intended_arrival () =
  (* Every op takes 2 ms of service time, so even the fastest op's
     latency is bounded below by it; a stalled server can only push
     latencies up (queueing from the intended instant), never down. *)
  let r =
    L.run
      { quick_cfg with L.rate = 300.0 }
      ~exec:(fun ~thread:_ _ -> Unix.sleepf 0.002)
  in
  check Alcotest.bool "floor is the service time" true
    (Histogram.percentile r.L.latency 0.0 >= 0.002)

let test_errors_counted () =
  let r =
    L.run
      { quick_cfg with L.read_fraction = 0.5 }
      ~exec:(fun ~thread:_ op ->
        match op with L.Read _ -> () | L.Write _ -> failwith "write refused")
  in
  check Alcotest.bool "some writes were offered" true (r.L.errors > 0);
  check Alcotest.int "errors and successes partition the offered load"
    r.L.offered
    (r.L.completed + r.L.errors);
  check Alcotest.int "failed ops still have latencies" r.L.offered
    (Histogram.count r.L.latency)

(* Fabricate sweep results: the knee logic is pure. *)
let fake_result achieved =
  {
    L.offered = 0;
    completed = 0;
    errors = 0;
    elapsed_s = 1.0;
    achieved_rate = achieved;
    latency = Histogram.create ();
    max_lag_s = 0.0;
  }

let test_knee () =
  let results =
    [
      (100.0, fake_result 100.0);
      (200.0, fake_result 197.0);
      (400.0, fake_result 230.0);
      (800.0, fake_result 231.0);
    ]
  in
  check (Alcotest.option (Alcotest.float 1e-9)) "highest sustained rate"
    (Some 200.0) (L.knee results);
  check (Alcotest.option (Alcotest.float 1e-9)) "tolerance widens the knee"
    (Some 400.0)
    (L.knee ~tolerance:0.5 results);
  check (Alcotest.option (Alcotest.float 1e-9)) "no rate sustained" None
    (L.knee [ (100.0, fake_result 20.0) ])

let () =
  Helpers.run "loadgen"
    [
      ( "schedule",
        [
          Alcotest.test_case "fixed spacing" `Quick test_fixed_spacing;
          Alcotest.test_case "poisson mean" `Quick test_poisson_mean;
          Alcotest.test_case "mix and value sizes" `Quick test_mix_and_values;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "run",
        [
          Alcotest.test_case "counts" `Quick test_run_counts;
          Alcotest.test_case "latency from intended arrival" `Quick
            test_latency_from_intended_arrival;
          Alcotest.test_case "errors counted" `Quick test_errors_counted;
          Alcotest.test_case "knee" `Quick test_knee;
        ] );
    ]
