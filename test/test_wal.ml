module Fs = Sdb_storage.Fs
module Mem = Sdb_storage.Mem_fs
module Wal = Sdb_wal.Wal

let check = Alcotest.check

let fp = String.make 16 '\x07'
let other_fp = String.make 16 '\x08'

let mem () =
  let store = Mem.create_store ~seed:5 () in
  (store, Mem.fs store)

let read_all ?(policy = Wal.Reader.Stop_at_damage) ?(fingerprint = fp) fs file =
  Wal.Reader.fold fs file ~fingerprint ~policy ~init:[] ~f:(fun acc e ->
      e.Wal.Reader.payload :: acc)
  |> Result.map (fun (acc, outcome) -> (List.rev acc, outcome))

let expect_entries name expected outcome_check fs file =
  match read_all fs file with
  | Error e -> Alcotest.fail (Format.asprintf "%s: %a" name Wal.pp_error e)
  | Ok (entries, outcome) ->
    check Alcotest.(list string) name expected entries;
    outcome_check outcome

let no_stop outcome =
  check Alcotest.(option string) "no early stop" None outcome.Wal.Reader.stopped_early

(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  let _, fs = mem () in
  let w = Wal.Writer.create fs "log" ~fingerprint:fp in
  check Alcotest.int "no entries" 0 (Wal.Writer.entries w);
  check Alcotest.int "header length" Wal.header_size (Wal.Writer.length w);
  check Alcotest.int "index 0" 0 (Wal.Writer.append_sync w "first");
  check Alcotest.int "index 1" 1 (Wal.Writer.append_sync w "");
  check Alcotest.int "index 2" 2 (Wal.Writer.append_sync w (String.make 10000 'b'));
  check Alcotest.int "entries" 3 (Wal.Writer.entries w);
  Wal.Writer.close w;
  expect_entries "roundtrip" [ "first"; ""; String.make 10000 'b' ] no_stop fs "log"

let test_entry_indices_offsets () =
  let _, fs = mem () in
  let w = Wal.Writer.create fs "log" ~fingerprint:fp in
  ignore (Wal.Writer.append_sync w "aa");
  ignore (Wal.Writer.append_sync w "bbb");
  Wal.Writer.close w;
  match
    Wal.Reader.fold fs "log" ~fingerprint:fp ~policy:Wal.Reader.Stop_at_damage ~init:[]
      ~f:(fun acc e -> (e.Wal.Reader.index, e.Wal.Reader.offset) :: acc)
  with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Wal.pp_error e)
  | Ok (entries, outcome) ->
    check
      Alcotest.(list (pair int int))
      "indices and offsets"
      [
        (1, Wal.header_size + Wal.frame_overhead + 2);
        (0, Wal.header_size);
      ]
      entries;
    check Alcotest.int "valid_length covers all" (fs.Fs.file_size "log")
      outcome.Wal.Reader.valid_length

let test_one_write_one_sync_per_commit () =
  let _, fs = mem () in
  let w = Wal.Writer.create fs "log" ~fingerprint:fp in
  let before = Fs.Counters.copy fs.Fs.counters in
  ignore (Wal.Writer.append_sync w "payload");
  let d = Fs.Counters.diff ~after:fs.Fs.counters ~before in
  check Alcotest.int "one data write" 1 d.Fs.Counters.data_writes;
  check Alcotest.int "one fsync" 1 d.Fs.Counters.syncs

let test_group_commit_one_sync () =
  let _, fs = mem () in
  let w = Wal.Writer.create fs "log" ~fingerprint:fp in
  let before = Fs.Counters.copy fs.Fs.counters in
  ignore (Wal.Writer.append w "a");
  ignore (Wal.Writer.append w "b");
  ignore (Wal.Writer.append w "c");
  Wal.Writer.sync w;
  let d = Fs.Counters.diff ~after:fs.Fs.counters ~before in
  check Alcotest.int "three writes" 3 d.Fs.Counters.data_writes;
  check Alcotest.int "one fsync" 1 d.Fs.Counters.syncs;
  expect_entries "group" [ "a"; "b"; "c" ] no_stop fs "log"

let test_header_validation () =
  let _, fs = mem () in
  (* Missing file. *)
  (match read_all fs "absent" with
  | Error (Wal.Not_a_log _) -> ()
  | _ -> Alcotest.fail "expected Not_a_log");
  (* Foreign file. *)
  Fs.write_file fs "foreign" "this is not a log";
  (match read_all fs "foreign" with
  | Error (Wal.Not_a_log _) -> ()
  | _ -> Alcotest.fail "expected Not_a_log for foreign");
  (* Short file. *)
  Fs.write_file fs "short" "ab";
  (match read_all fs "short" with
  | Error (Wal.Not_a_log _) -> ()
  | _ -> Alcotest.fail "expected Not_a_log for short");
  (* Fingerprint mismatch. *)
  let w = Wal.Writer.create fs "log" ~fingerprint:fp in
  ignore (Wal.Writer.append_sync w "x");
  match read_all ~fingerprint:other_fp fs "log" with
  | Error (Wal.Fingerprint_mismatch _) -> ()
  | _ -> Alcotest.fail "expected Fingerprint_mismatch"

let test_truncated_tail_discarded () =
  let _, fs = mem () in
  let w = Wal.Writer.create fs "log" ~fingerprint:fp in
  ignore (Wal.Writer.append_sync w "good1");
  ignore (Wal.Writer.append_sync w "good2");
  let boundary = Wal.Writer.length w in
  ignore (Wal.Writer.append_sync w "doomed");
  Wal.Writer.close w;
  (* Chop the file inside the last entry — a crash-truncated tail. *)
  fs.Fs.truncate "log" (boundary + 5);
  (match read_all fs "log" with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Wal.pp_error e)
  | Ok (entries, outcome) ->
    check Alcotest.(list string) "valid prefix" [ "good1"; "good2" ] entries;
    check Alcotest.int "valid_length at boundary" boundary outcome.Wal.Reader.valid_length;
    Alcotest.check Alcotest.bool "stopped early" true
      (outcome.Wal.Reader.stopped_early <> None));
  (* Truncation inside the frame header. *)
  fs.Fs.truncate "log" (boundary + 2);
  match read_all fs "log" with
  | Ok (entries, outcome) ->
    check Alcotest.(list string) "valid prefix 2" [ "good1"; "good2" ] entries;
    check Alcotest.int "valid_length 2" boundary outcome.Wal.Reader.valid_length
  | Error e -> Alcotest.fail (Format.asprintf "%a" Wal.pp_error e)

let test_crc_corruption_stops () =
  let _, fs = mem () in
  let w = Wal.Writer.create fs "log" ~fingerprint:fp in
  ignore (Wal.Writer.append_sync w "aaaa");
  let boundary = Wal.Writer.length w in
  ignore (Wal.Writer.append_sync w "bbbb");
  ignore (Wal.Writer.append_sync w "cccc");
  Wal.Writer.close w;
  (* Flip a byte inside entry 1's payload (no device error, only CRC). *)
  let h = fs.Fs.open_random "log" in
  h.Fs.pwrite ~off:(boundary + Wal.frame_overhead + 1) "X";
  h.Fs.rw_sync ();
  h.Fs.rw_close ();
  (match read_all fs "log" with
  | Ok (entries, outcome) ->
    check Alcotest.(list string) "stops at corrupt" [ "aaaa" ] entries;
    check Alcotest.int "valid_length" boundary outcome.Wal.Reader.valid_length
  | Error e -> Alcotest.fail (Format.asprintf "%a" Wal.pp_error e));
  (* Skip_damaged skips it and keeps going. *)
  match read_all ~policy:Wal.Reader.Skip_damaged fs "log" with
  | Ok (entries, outcome) ->
    check Alcotest.(list string) "skips corrupt" [ "aaaa"; "cccc" ] entries;
    check Alcotest.int "skipped count" 1 outcome.Wal.Reader.skipped
  | Error e -> Alcotest.fail (Format.asprintf "%a" Wal.pp_error e)

let test_damaged_page_stops_or_skips () =
  let store, fs = mem () in
  let w = Wal.Writer.create fs "log" ~fingerprint:fp in
  ignore (Wal.Writer.append_sync w (String.make 2000 'a'));
  let boundary = Wal.Writer.length w in
  ignore (Wal.Writer.append_sync w (String.make 2000 'b'));
  ignore (Wal.Writer.append_sync w (String.make 2000 'c'));
  Wal.Writer.close w;
  (* Device-level damage inside entry 1 (torn page). *)
  Mem.damage store ~file:"log" ~offset:(boundary + 600) ~len:100;
  (match read_all fs "log" with
  | Ok (entries, outcome) ->
    check Alcotest.int "one entry" 1 (List.length entries);
    check Alcotest.int "valid_length" boundary outcome.Wal.Reader.valid_length;
    Alcotest.check Alcotest.bool "stopped" true (outcome.Wal.Reader.stopped_early <> None)
  | Error e -> Alcotest.fail (Format.asprintf "%a" Wal.pp_error e));
  match read_all ~policy:Wal.Reader.Skip_damaged fs "log" with
  | Ok (entries, outcome) ->
    check Alcotest.int "two entries" 2 (List.length entries);
    check Alcotest.int "skipped" 1 outcome.Wal.Reader.skipped;
    check Alcotest.(option string) "no stop" None outcome.Wal.Reader.stopped_early
  | Error e -> Alcotest.fail (Format.asprintf "%a" Wal.pp_error e)

let test_reopen_appends () =
  let _, fs = mem () in
  let w = Wal.Writer.create fs "log" ~fingerprint:fp in
  ignore (Wal.Writer.append_sync w "one");
  ignore (Wal.Writer.append_sync w "two");
  Wal.Writer.close w;
  match read_all fs "log" with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Wal.pp_error e)
  | Ok (_, outcome) ->
    let w =
      Wal.Writer.reopen fs "log" ~fingerprint:fp
        ~valid_length:outcome.Wal.Reader.valid_length
        ~entries:outcome.Wal.Reader.entries_read
    in
    check Alcotest.int "resumed index" 2 (Wal.Writer.append_sync w "three");
    Wal.Writer.close w;
    expect_entries "after reopen" [ "one"; "two"; "three" ] no_stop fs "log"

let test_reopen_truncates_torn_tail () =
  let _, fs = mem () in
  let w = Wal.Writer.create fs "log" ~fingerprint:fp in
  ignore (Wal.Writer.append_sync w "keep");
  let boundary = Wal.Writer.length w in
  ignore (Wal.Writer.append_sync w "torn-away");
  Wal.Writer.close w;
  fs.Fs.truncate "log" (boundary + 3);
  match read_all fs "log" with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Wal.pp_error e)
  | Ok (entries, outcome) ->
    check Alcotest.(list string) "prefix" [ "keep" ] entries;
    let w =
      Wal.Writer.reopen fs "log" ~fingerprint:fp
        ~valid_length:outcome.Wal.Reader.valid_length
        ~entries:outcome.Wal.Reader.entries_read
    in
    ignore (Wal.Writer.append_sync w "fresh");
    Wal.Writer.close w;
    expect_entries "tail replaced" [ "keep"; "fresh" ] no_stop fs "log"

let test_crash_mid_append_recovers_prefix () =
  (* Crash on the very write of an entry, across torn seeds: replay
     must always yield a clean prefix of what was committed. *)
  for seed = 1 to 40 do
    let store = Mem.create_store ~seed () in
    let fs = Mem.fs store in
    let w = Wal.Writer.create fs "log" ~fingerprint:fp in
    let committed = ref 0 in
    (try
       Mem.set_crash_after store ~ops:(4 + (seed mod 17)) ~mode:Mem.Torn;
       for i = 0 to 19 do
         ignore (Wal.Writer.append_sync w (Printf.sprintf "entry-%03d" i));
         incr committed
       done;
       Mem.disarm_crash store
     with Mem.Crash -> ());
    match read_all fs "log" with
    | Error e -> Alcotest.fail (Format.asprintf "seed %d: %a" seed Wal.pp_error e)
    | Ok (entries, _) ->
      (* All committed entries, in order, plus at most the in-flight one. *)
      let n = List.length entries in
      if n < !committed then
        Alcotest.fail
          (Printf.sprintf "seed %d: lost committed entries (%d < %d)" seed n !committed);
      if n > !committed + 1 then
        Alcotest.fail (Printf.sprintf "seed %d: phantom entries" seed);
      List.iteri
        (fun i payload ->
          check Alcotest.string "entry content" (Printf.sprintf "entry-%03d" i) payload)
        entries
  done

let test_interior_damage_detected () =
  (* A damaged entry with valid entries after it is interior media
     damage; a damaged final entry is a torn tail.  The reader must
     tell them apart. *)
  let store, fs = mem () in
  let w = Wal.Writer.create fs "log" ~fingerprint:fp in
  ignore (Wal.Writer.append_sync w (String.make 2000 'a'));
  let boundary = Wal.Writer.length w in
  ignore (Wal.Writer.append_sync w (String.make 2000 'b'));
  ignore (Wal.Writer.append_sync w (String.make 2000 'c'));
  ignore (Wal.Writer.append_sync w (String.make 2000 'd'));
  Wal.Writer.close w;
  (* Interior: damage entry 1; entries 2 and 3 are intact beyond it. *)
  Mem.damage store ~file:"log" ~offset:(boundary + 600) ~len:50;
  (match read_all fs "log" with
  | Ok (entries, outcome) ->
    check Alcotest.int "stops at damage" 1 (List.length entries);
    check Alcotest.int "two valid entries beyond" 2
      outcome.Wal.Reader.entries_beyond_damage
  | Error e -> Alcotest.fail (Format.asprintf "%a" Wal.pp_error e));
  (* Tail: fresh log, damage only the final entry. *)
  let store2, fs2 = mem () in
  let w = Wal.Writer.create fs2 "log" ~fingerprint:fp in
  ignore (Wal.Writer.append_sync w (String.make 2000 'a'));
  let b2 = Wal.Writer.length w in
  ignore (Wal.Writer.append_sync w (String.make 2000 'b'));
  Wal.Writer.close w;
  Mem.damage store2 ~file:"log" ~offset:(b2 + 600) ~len:50;
  match read_all fs2 "log" with
  | Ok (entries, outcome) ->
    check Alcotest.int "tail prefix" 1 (List.length entries);
    check Alcotest.int "nothing beyond a torn tail" 0
      outcome.Wal.Reader.entries_beyond_damage
  | Error e -> Alcotest.fail (Format.asprintf "%a" Wal.pp_error e)

let test_crc_interior_damage_detected () =
  (* Same distinction for a silent bit flip (CRC mismatch, no device
     error). *)
  let _, fs = mem () in
  let w = Wal.Writer.create fs "log" ~fingerprint:fp in
  ignore (Wal.Writer.append_sync w "first");
  let boundary = Wal.Writer.length w in
  ignore (Wal.Writer.append_sync w "second");
  ignore (Wal.Writer.append_sync w "third");
  Wal.Writer.close w;
  let h = fs.Fs.open_random "log" in
  h.Fs.pwrite ~off:(boundary + Wal.frame_overhead + 1) "X";
  h.Fs.rw_sync ();
  h.Fs.rw_close ();
  match read_all fs "log" with
  | Ok (_, outcome) ->
    check Alcotest.int "one beyond crc damage" 1 outcome.Wal.Reader.entries_beyond_damage
  | Error e -> Alcotest.fail (Format.asprintf "%a" Wal.pp_error e)

let test_writer_misuse () =
  let _, fs = mem () in
  let w = Wal.Writer.create fs "log" ~fingerprint:fp in
  Wal.Writer.close w;
  (match Wal.Writer.append w "x" with
  | _ -> Alcotest.fail "expected Io_error after close"
  | exception Fs.Io_error _ -> ());
  Alcotest.check_raises "bad fingerprint size"
    (Invalid_argument "Wal: fingerprint must be 16 bytes") (fun () ->
      ignore (Wal.Writer.create fs "log2" ~fingerprint:"short"))

let test_count_entries () =
  let _, fs = mem () in
  let w = Wal.Writer.create fs "log" ~fingerprint:fp in
  for i = 1 to 7 do
    ignore (Wal.Writer.append w (string_of_int i))
  done;
  Wal.Writer.sync w;
  Wal.Writer.close w;
  match Wal.Reader.count_entries fs "log" ~fingerprint:fp with
  | Ok (n, _) -> check Alcotest.int "count" 7 n
  | Error e -> Alcotest.fail (Format.asprintf "%a" Wal.pp_error e)

(* Property: for random entries and a random cut point, replay returns
   a prefix and never fabricates data. *)
let prop_random_truncation =
  Helpers.qtest ~count:100 "random truncation yields clean prefix"
    QCheck2.Gen.(
      pair
        (list_size (1 -- 10) (string_size ~gen:char (0 -- 200)))
        (int_bound 4000))
    (fun (payloads, cut) ->
      let store = Mem.create_store ~seed:1 () in
      let fs = Mem.fs store in
      let w = Wal.Writer.create fs "log" ~fingerprint:fp in
      List.iter (fun p -> ignore (Wal.Writer.append w p)) payloads;
      Wal.Writer.sync w;
      Wal.Writer.close w;
      let size = fs.Fs.file_size "log" in
      let cut = min cut size in
      fs.Fs.truncate "log" cut;
      match read_all fs "log" with
      | Error (Wal.Not_a_log _) -> cut < Wal.header_size
      | Error _ -> false
      | Ok (entries, _) ->
        let expected_prefix =
          let rec take xs n = match (xs, n) with
            | _, 0 | [], _ -> []
            | x :: rest, n -> x :: take rest (n - 1)
          in
          take payloads (List.length entries)
        in
        entries = expected_prefix)

let test_raw_frames_counted () =
  (* [append_raw_frames] (the concurrent checkpoint's tail copy) must
     feed the same append counters as the framed path, or the metrics
     undercount log traffic. *)
  let module Metrics = Sdb_obs.Metrics in
  let m_appends = Metrics.counter "sdb_wal_appends_total" in
  let m_bytes = Metrics.counter "sdb_wal_appended_bytes_total" in
  let _, fs = mem () in
  let w = Wal.Writer.create fs "src" ~fingerprint:fp in
  ignore (Wal.Writer.append w "first");
  ignore (Wal.Writer.append w "second");
  Wal.Writer.sync w;
  Wal.Writer.close w;
  (* The bytes past the header are two valid frames. *)
  let raw_file = Fs.read_file fs "src" in
  let raw =
    String.sub raw_file Wal.header_size (String.length raw_file - Wal.header_size)
  in
  let w2 = Wal.Writer.create fs "dst" ~fingerprint:fp in
  let appends0 = Metrics.counter_value m_appends in
  let bytes0 = Metrics.counter_value m_bytes in
  Wal.Writer.append_raw_frames w2 raw ~count:2;
  Wal.Writer.sync w2;
  check Alcotest.int "appends counted" (appends0 + 2)
    (Metrics.counter_value m_appends);
  check Alcotest.int "bytes counted"
    (bytes0 + String.length raw)
    (Metrics.counter_value m_bytes);
  Wal.Writer.close w2;
  expect_entries "raw frames readable" [ "first"; "second" ] no_stop fs "dst"

(* ------------------------------------------------------------------ *)
(* Staged group API                                                    *)

let test_stage_flush_roundtrip () =
  let _, fs = mem () in
  let payloads = [ "alpha"; ""; String.make 5000 'q' ] in
  (* Reference: the same payloads through plain appends. *)
  let w_ref = Wal.Writer.create fs "ref" ~fingerprint:fp in
  List.iter (fun p -> ignore (Wal.Writer.append w_ref p)) payloads;
  Wal.Writer.sync w_ref;
  Wal.Writer.close w_ref;
  (* Staged: invisible until the flush, then one write + one fsync. *)
  let w = Wal.Writer.create fs "log" ~fingerprint:fp in
  let before = Fs.Counters.copy fs.Fs.counters in
  List.iter (Wal.Writer.stage w) payloads;
  check Alcotest.int "staged frames" 3 (Wal.Writer.staged_frames w);
  check Alcotest.int "staged bytes"
    (List.fold_left
       (fun acc p -> acc + String.length p + Wal.frame_overhead)
       0 payloads)
    (Wal.Writer.staged_bytes w);
  check Alcotest.int "entries unchanged while staged" 0 (Wal.Writer.entries w);
  check Alcotest.int "length unchanged while staged" Wal.header_size
    (Wal.Writer.length w);
  let d0 = Fs.Counters.diff ~after:fs.Fs.counters ~before in
  check Alcotest.int "staging does no I/O" 0
    (d0.Fs.Counters.data_writes + d0.Fs.Counters.syncs);
  check
    Alcotest.(pair int int)
    "flush returns the index range" (0, 3)
    (Wal.Writer.flush_group w);
  let d1 = Fs.Counters.diff ~after:fs.Fs.counters ~before in
  check Alcotest.int "one data write for the group" 1 d1.Fs.Counters.data_writes;
  check Alcotest.int "one fsync for the group" 1 d1.Fs.Counters.syncs;
  check Alcotest.int "entries after flush" 3 (Wal.Writer.entries w);
  check Alcotest.int "nothing left staged" 0 (Wal.Writer.staged_frames w);
  Wal.Writer.close w;
  expect_entries "flushed group readable" payloads no_stop fs "log";
  (* The staged path is byte-identical to the append path. *)
  check Alcotest.string "same bytes as plain appends"
    (Fs.read_file fs "ref") (Fs.read_file fs "log")

let test_flush_empty_and_discard () =
  let _, fs = mem () in
  let w = Wal.Writer.create fs "log" ~fingerprint:fp in
  let before = Fs.Counters.copy fs.Fs.counters in
  check
    Alcotest.(pair int int)
    "empty flush is a no-op" (0, 0)
    (Wal.Writer.flush_group w);
  let d = Fs.Counters.diff ~after:fs.Fs.counters ~before in
  check Alcotest.int "no I/O" 0 (d.Fs.Counters.data_writes + d.Fs.Counters.syncs);
  Wal.Writer.stage w "doomed";
  Wal.Writer.stage w "also doomed";
  Wal.Writer.discard_group w;
  check Alcotest.int "discarded" 0 (Wal.Writer.staged_frames w);
  check
    Alcotest.(pair int int)
    "nothing to flush after discard" (0, 0)
    (Wal.Writer.flush_group w);
  ignore (Wal.Writer.append_sync w "kept");
  Wal.Writer.close w;
  expect_entries "only the kept entry" [ "kept" ] no_stop fs "log"

let test_append_refused_while_staged () =
  let _, fs = mem () in
  let w = Wal.Writer.create fs "log" ~fingerprint:fp in
  Wal.Writer.stage w "staged";
  (match Wal.Writer.append w "interloper" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "append must refuse while a group is staged");
  (match Wal.Writer.append_raw_frames w "raw" ~count:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "append_raw_frames must refuse while a group is staged");
  ignore (Wal.Writer.flush_group w);
  ignore (Wal.Writer.append_sync w "after");
  Wal.Writer.close w;
  expect_entries "order preserved" [ "staged"; "after" ] no_stop fs "log"

let test_group_flush_rolled_back () =
  let store, fs = mem () in
  let w = Wal.Writer.create fs "log" ~fingerprint:fp in
  ignore (Wal.Writer.append_sync w "committed");
  let len = Wal.Writer.length w in
  Mem.set_capacity store (Some (Mem.total_bytes store));
  Wal.Writer.stage w "doomed1";
  Wal.Writer.stage w "doomed2";
  (match Wal.Writer.flush_group w with
  | exception Wal.Append_rolled_back (Fs.No_space _) -> ()
  | _ -> Alcotest.fail "expected Append_rolled_back (No_space)");
  check Alcotest.int "length restored" len (Wal.Writer.length w);
  check Alcotest.int "entries restored" 1 (Wal.Writer.entries w);
  check Alcotest.int "group consumed by the failure" 0
    (Wal.Writer.staged_frames w);
  (* Space returns: the writer keeps working. *)
  Mem.set_capacity store None;
  Wal.Writer.stage w "retry";
  check
    Alcotest.(pair int int)
    "flush after rollback" (1, 1)
    (Wal.Writer.flush_group w);
  Wal.Writer.close w;
  expect_entries "log intact" [ "committed"; "retry" ] no_stop fs "log"

let test_torn_group_sweep () =
  (* Every byte-truncation point inside a flushed group must recover
     exactly the durable prefix of whole frames — the group version of
     the paper's partial-log-entry rule. *)
  let _, fs = mem () in
  let solo = "pre-group" in
  let group = [ "one"; "two-long-payload"; "three" ] in
  let w = Wal.Writer.create fs "log" ~fingerprint:fp in
  ignore (Wal.Writer.append_sync w solo);
  List.iter (Wal.Writer.stage w) group;
  ignore (Wal.Writer.flush_group w);
  Wal.Writer.close w;
  let data = Fs.read_file fs "log" in
  (* Frame boundaries, from the payload sizes. *)
  let payloads = solo :: group in
  let ends =
    List.rev
      (fst
         (List.fold_left
            (fun (acc, off) p ->
              let e = off + Wal.frame_overhead + String.length p in
              (e :: acc, e))
            ([], Wal.header_size) payloads))
  in
  check Alcotest.int "boundaries cover the file" (String.length data)
    (List.nth ends (List.length ends - 1));
  for cut = Wal.header_size to String.length data - 1 do
    Fs.write_file fs "cut" (String.sub data 0 cut);
    let expected = List.filter (fun e -> e <= cut) ends |> List.length in
    match
      Wal.Reader.fold fs "cut" ~fingerprint:fp
        ~policy:Wal.Reader.Stop_at_damage ~init:0 ~f:(fun acc _ -> acc + 1)
    with
    | Error e -> Alcotest.fail (Format.asprintf "cut %d: %a" cut Wal.pp_error e)
    | Ok (n, outcome) ->
      check Alcotest.int
        (Printf.sprintf "cut %d: durable whole-frame prefix" cut)
        expected n;
      check Alcotest.int
        (Printf.sprintf "cut %d: valid_length at a frame boundary" cut)
        (List.fold_left (fun acc e -> if e <= cut then e else acc)
           Wal.header_size ends)
        outcome.Wal.Reader.valid_length;
      check Alcotest.int
        (Printf.sprintf "cut %d: torn tail, not interior damage" cut)
        0 outcome.Wal.Reader.entries_beyond_damage;
      if cut > List.fold_left (fun acc e -> if e <= cut then e else acc)
                 Wal.header_size ends
      then
        check Alcotest.bool
          (Printf.sprintf "cut %d: stop reported" cut)
          true
          (outcome.Wal.Reader.stopped_early <> None)
  done

let () =
  Helpers.run "wal"
    [
      ( "writer-reader",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "indices and offsets" `Quick test_entry_indices_offsets;
          Alcotest.test_case "one write one sync per commit" `Quick
            test_one_write_one_sync_per_commit;
          Alcotest.test_case "group commit single sync" `Quick test_group_commit_one_sync;
          Alcotest.test_case "count entries" `Quick test_count_entries;
          Alcotest.test_case "writer misuse" `Quick test_writer_misuse;
          Alcotest.test_case "raw frames feed counters" `Quick
            test_raw_frames_counted;
        ] );
      ( "staged-group",
        [
          Alcotest.test_case "stage/flush roundtrip, one write one sync" `Quick
            test_stage_flush_roundtrip;
          Alcotest.test_case "empty flush and discard" `Quick
            test_flush_empty_and_discard;
          Alcotest.test_case "append refused while staged" `Quick
            test_append_refused_while_staged;
          Alcotest.test_case "no-space flush rolled back" `Quick
            test_group_flush_rolled_back;
          Alcotest.test_case "torn-group truncation sweep" `Quick
            test_torn_group_sweep;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "header validation" `Quick test_header_validation;
          Alcotest.test_case "truncated tail discarded" `Quick
            test_truncated_tail_discarded;
          Alcotest.test_case "crc corruption stops replay" `Quick
            test_crc_corruption_stops;
          Alcotest.test_case "damaged page stop/skip" `Quick
            test_damaged_page_stops_or_skips;
          Alcotest.test_case "interior vs tail damage" `Quick
            test_interior_damage_detected;
          Alcotest.test_case "crc interior damage" `Quick
            test_crc_interior_damage_detected;
          Alcotest.test_case "reopen appends" `Quick test_reopen_appends;
          Alcotest.test_case "reopen truncates torn tail" `Quick
            test_reopen_truncates_torn_tail;
          Alcotest.test_case "crash mid-append sweep" `Quick
            test_crash_mid_append_recovers_prefix;
          prop_random_truncation;
        ] );
    ]
