module Fs = Sdb_storage.Fs
module Mem = Sdb_storage.Mem_fs
module Real = Sdb_storage.Real_fs

let check = Alcotest.check

let mem () =
  let store = Mem.create_store ~seed:99 () in
  (store, Mem.fs store)

let write fs name contents = Fs.write_file fs name contents
let read fs name = Fs.read_file fs name

(* ------------------------------------------------------------------ *)
(* Basic file operations (exercised on both backends)                  *)

let basic_suite make_fs () =
  let fs = make_fs () in
  check Alcotest.(list string) "empty listing" [] (fs.Fs.list_files ());
  write fs "a.txt" "hello";
  write fs "b.txt" "world";
  check Alcotest.(list string) "listing" [ "a.txt"; "b.txt" ] (fs.Fs.list_files ());
  check Alcotest.bool "exists" true (fs.Fs.exists "a.txt");
  check Alcotest.bool "not exists" false (fs.Fs.exists "c.txt");
  check Alcotest.int "size" 5 (fs.Fs.file_size "a.txt");
  check Alcotest.string "read back" "hello" (read fs "a.txt");
  (* Append. *)
  let w = fs.Fs.open_append "a.txt" in
  w.Fs.w_write " again";
  w.Fs.w_sync ();
  w.Fs.w_close ();
  check Alcotest.string "appended" "hello again" (read fs "a.txt");
  (* Create truncates. *)
  write fs "a.txt" "fresh";
  check Alcotest.string "truncated" "fresh" (read fs "a.txt");
  (* Rename replaces. *)
  fs.Fs.rename "a.txt" "b.txt";
  check Alcotest.bool "source gone" false (fs.Fs.exists "a.txt");
  check Alcotest.string "dest replaced" "fresh" (read fs "b.txt");
  (* Remove is idempotent. *)
  fs.Fs.remove "b.txt";
  fs.Fs.remove "b.txt";
  check Alcotest.bool "removed" false (fs.Fs.exists "b.txt");
  (* Truncate. *)
  write fs "t.bin" "0123456789";
  fs.Fs.truncate "t.bin" 4;
  check Alcotest.string "truncated file" "0123" (read fs "t.bin");
  (* Missing files error. *)
  (match fs.Fs.open_reader "nope" with
  | _ -> Alcotest.fail "expected Io_error"
  | exception Fs.Io_error _ -> ());
  (* Sequential reader with seek. *)
  write fs "seq.bin" "abcdefghij";
  let r = fs.Fs.open_reader "seq.bin" in
  let buf = Bytes.create 4 in
  let n = r.Fs.r_read buf 0 4 in
  check Alcotest.int "read 4" 4 n;
  check Alcotest.string "first chunk" "abcd" (Bytes.sub_string buf 0 4);
  r.Fs.r_seek 8;
  let n = r.Fs.r_read buf 0 4 in
  check Alcotest.int "read tail" 2 n;
  check Alcotest.string "tail" "ij" (Bytes.sub_string buf 0 2);
  check Alcotest.int "eof" 0 (r.Fs.r_read buf 0 4);
  r.Fs.r_close ();
  (* Random access handle. *)
  let h = fs.Fs.open_random "rand.bin" in
  h.Fs.pwrite ~off:0 "AAAABBBB";
  h.Fs.pwrite ~off:4 "XXXX";
  h.Fs.rw_sync ();
  check Alcotest.int "rw size" 8 (h.Fs.rw_size ());
  let buf = Bytes.create 8 in
  let n = h.Fs.pread ~off:0 buf 0 8 in
  check Alcotest.int "pread" 8 n;
  check Alcotest.string "overwritten" "AAAAXXXX" (Bytes.sub_string buf 0 8);
  (* pwrite beyond EOF zero-fills. *)
  h.Fs.pwrite ~off:12 "ZZ";
  let buf = Bytes.create 14 in
  let n = h.Fs.pread ~off:0 buf 0 14 in
  check Alcotest.int "extended size" 14 n;
  check Alcotest.string "gap zero-filled" "AAAAXXXX\x00\x00\x00\x00ZZ"
    (Bytes.sub_string buf 0 14);
  h.Fs.rw_close ()

let test_mem_basic () = basic_suite (fun () -> snd (mem ())) ()

let test_real_basic () =
  basic_suite (fun () -> Real.create ~root:(Helpers.fresh_dir "realfs")) ()

let test_real_reject_paths () =
  let fs = Real.create ~root:(Helpers.fresh_dir "realfs-sec") in
  match fs.Fs.create "../escape" with
  | _ -> Alcotest.fail "expected Io_error"
  | exception Fs.Io_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Crash semantics (mem only)                                          *)

let test_clean_crash_drops_unsynced () =
  let store, fs = mem () in
  let w = fs.Fs.create "f" in
  w.Fs.w_write "synced";
  w.Fs.w_sync ();
  w.Fs.w_write "volatile";
  Mem.crash store ~mode:Mem.Clean;
  check Alcotest.string "only synced survives" "synced" (read fs "f");
  (* Old handle unusable, new handles fine. *)
  (match w.Fs.w_write "more" with
  | _ -> Alcotest.fail "expected Io_error on stale handle"
  | exception Fs.Io_error _ -> ());
  let w2 = fs.Fs.open_append "f" in
  w2.Fs.w_write "!";
  w2.Fs.w_sync ();
  check Alcotest.string "writable after crash" "synced!" (read fs "f")

let test_clean_crash_restores_inplace () =
  let store, fs = mem () in
  let h = fs.Fs.open_random "f" in
  h.Fs.pwrite ~off:0 "AAAABBBBCCCC";
  h.Fs.rw_sync ();
  h.Fs.pwrite ~off:4 "XXXX";
  Mem.crash store ~mode:Mem.Clean;
  check Alcotest.string "in-place write reverted" "AAAABBBBCCCC" (read fs "f")

let test_synced_survives_torn () =
  (* Whatever the page fates, fsynced bytes that were never rewritten
     must survive any crash. *)
  for seed = 1 to 30 do
    let store = Mem.create_store ~seed () in
    let fs = Mem.fs store in
    let w = fs.Fs.create "f" in
    let stable = String.init 2000 (fun i -> Char.chr (65 + (i mod 26))) in
    w.Fs.w_write stable;
    w.Fs.w_sync ();
    w.Fs.w_write (String.make 3000 '!');
    Mem.crash store ~mode:Mem.Torn;
    let r = fs.Fs.open_reader "f" in
    let buf = Bytes.create 2000 in
    let rec fill got =
      if got < 2000 then begin
        let n = r.Fs.r_read buf got (2000 - got) in
        if n = 0 then Alcotest.fail "synced prefix truncated";
        fill (got + n)
      end
    in
    (try fill 0
     with Fs.Read_error _ -> Alcotest.fail "synced prefix damaged");
    check Alcotest.string
      (Printf.sprintf "seed %d: synced prefix intact" seed)
      stable (Bytes.sub_string buf 0 2000);
    r.Fs.r_close ()
  done

let test_torn_crash_outcomes () =
  (* Across seeds, the volatile tail must show all three outcomes:
     fully persisted, fully dropped, and torn (read error). *)
  let persisted = ref 0 and dropped = ref 0 and torn = ref 0 in
  for seed = 1 to 60 do
    let store = Mem.create_store ~seed () in
    let fs = Mem.fs store in
    let w = fs.Fs.create "f" in
    w.Fs.w_write "stable";
    w.Fs.w_sync ();
    w.Fs.w_write (String.make 600 'v');
    (* < 2 pages *)
    Mem.crash store ~mode:Mem.Torn;
    let size = fs.Fs.file_size "f" in
    match read fs "f" with
    | contents ->
      if String.length contents > 6 then incr persisted
      else if size = 6 then incr dropped
    | exception Fs.Read_error _ -> incr torn
  done;
  Alcotest.check Alcotest.bool
    (Printf.sprintf "all outcomes seen (p=%d d=%d t=%d)" !persisted !dropped !torn)
    true
    (!persisted > 0 && !dropped > 0 && !torn > 0)

let test_crash_budget () =
  let store, fs = mem () in
  Mem.set_crash_after store ~ops:3 ~mode:Mem.Clean;
  let w = fs.Fs.create "f" in
  (* op 1 *)
  w.Fs.w_write "one";
  (* op 2 *)
  match w.Fs.w_sync () (* op 3: crashes before the sync applies *) with
  | _ -> Alcotest.fail "expected Crash"
  | exception Mem.Crash ->
    (* The sync never happened, so the write is gone. *)
    check Alcotest.int "unsynced write lost" 0 (fs.Fs.file_size "f");
    (* Budget disarmed after firing. *)
    let w2 = fs.Fs.open_append "f" in
    w2.Fs.w_write "x";
    w2.Fs.w_sync ();
    check Alcotest.int "usable after crash" 1 (fs.Fs.file_size "f")

let test_damage_and_heal () =
  let store, fs = mem () in
  write fs "f" (String.make 100 'd');
  Mem.damage store ~file:"f" ~offset:40 ~len:10;
  let r = fs.Fs.open_reader "f" in
  let buf = Bytes.create 100 in
  (* Reads stop short of the damage... *)
  let n = r.Fs.r_read buf 0 100 in
  check Alcotest.int "stops at damage" 40 n;
  (* ...and error when positioned on it. *)
  (match r.Fs.r_read buf 0 10 with
  | _ -> Alcotest.fail "expected Read_error"
  | exception Fs.Read_error { offset; _ } -> check Alcotest.int "error offset" 40 offset);
  (* Seek past the damage reads the tail. *)
  r.Fs.r_seek 50;
  let n = r.Fs.r_read buf 0 100 in
  check Alcotest.int "tail readable" 50 n;
  r.Fs.r_close ();
  (* Overwriting damaged bytes heals them. *)
  let h = fs.Fs.open_random "f" in
  h.Fs.pwrite ~off:40 (String.make 10 'h');
  h.Fs.rw_sync ();
  h.Fs.rw_close ();
  check Alcotest.int "healed" 100 (String.length (read fs "f"))

(* ------------------------------------------------------------------ *)
(* Capacity budget (mem)                                               *)

let test_mem_capacity () =
  let store, fs = mem () in
  write fs "a" (String.make 80 'a');
  Mem.set_capacity store (Some 100);
  (* Within budget. *)
  let w = fs.Fs.open_append "a" in
  w.Fs.w_write (String.make 20 'b');
  w.Fs.w_sync ();
  (* Over budget: all-or-nothing — the file must be untouched. *)
  (match w.Fs.w_write "x" with
  | _ -> Alcotest.fail "expected No_space"
  | exception Fs.No_space { file; needed; available } ->
    check Alcotest.string "file" "a" file;
    check Alcotest.int "needed" 1 needed;
    check Alcotest.int "available" 0 available);
  check Alcotest.int "file unchanged" 100 (fs.Fs.file_size "a");
  (* Overwrites that do not grow the file still fit. *)
  let h = fs.Fs.open_random "a" in
  h.Fs.pwrite ~off:0 "ZZZZ";
  (match h.Fs.pwrite ~off:98 "1234" with
  | _ -> Alcotest.fail "expected No_space"
  | exception Fs.No_space { needed; _ } -> check Alcotest.int "growth" 2 needed);
  check Alcotest.int "still 100 bytes" 100 (fs.Fs.file_size "a");
  h.Fs.rw_close ();
  w.Fs.w_close ();
  (* Lifting the cap unblocks. *)
  Mem.set_capacity store None;
  let w = fs.Fs.open_append "a" in
  w.Fs.w_write "more";
  w.Fs.w_close ();
  check Alcotest.int "cap lifted" 104 (fs.Fs.file_size "a")

(* ------------------------------------------------------------------ *)
(* Fault-injecting decorator                                           *)

module Fault = Sdb_storage.Fault_fs

let fault_mem ?seed () =
  let store = Mem.create_store ~seed:7 () in
  let ctl, fs = Fault.wrap ?seed (Mem.fs store) in
  (store, ctl, fs)

let test_fault_fail_nth_write () =
  let _store, ctl, fs = fault_mem () in
  let w = fs.Fs.create "f" in
  w.Fs.w_write "one";
  (* writes seen so far: 1.  Fail the next one, permanently-flavoured. *)
  Fault.fail_nth ctl ~op:`Write ~n:1 ();
  (match w.Fs.w_write "two" with
  | _ -> Alcotest.fail "expected Io_error"
  | exception Fs.Io_error { op; file; errno; _ } ->
    check Alcotest.string "op" "write" op;
    check Alcotest.(option string) "file" (Some "f") file;
    check Alcotest.bool "errno EIO" true (errno = Some Unix.EIO);
    check Alcotest.bool "permanent" false
      (match errno with Some e -> Fs.errno_transient e | None -> false));
  (* The faulted write never reached the store. *)
  w.Fs.w_write "three";
  w.Fs.w_sync ();
  w.Fs.w_close ();
  check Alcotest.string "fault was all-or-nothing" "onethree" (read fs "f");
  check Alcotest.int "one injected" 1 (Fault.injected ctl)

let test_fault_transient_errno () =
  let _store, ctl, fs = fault_mem () in
  let w = fs.Fs.create "f" in
  Fault.fail_nth ctl ~op:`Sync ~n:1 ~errno:Unix.EINTR ();
  (match w.Fs.w_sync () with
  | _ -> Alcotest.fail "expected Io_error"
  | exception Fs.Io_error { op; errno; _ } ->
    check Alcotest.string "op" "fsync" op;
    check Alcotest.bool "transient" true
      (match errno with Some e -> Fs.errno_transient e | None -> false));
  (* A retry succeeds: the fault was one-shot. *)
  w.Fs.w_write "x";
  w.Fs.w_sync ();
  w.Fs.w_close ()

let test_fault_read () =
  let _store, ctl, fs = fault_mem () in
  write fs "f" "0123456789";
  Fault.fail_nth ctl ~op:`Read ~n:2 ();
  let r = fs.Fs.open_reader "f" in
  let buf = Bytes.create 4 in
  ignore (r.Fs.r_read buf 0 4);
  (match r.Fs.r_read buf 0 4 with
  | _ -> Alcotest.fail "expected Read_error"
  | exception Fs.Read_error { file; _ } -> check Alcotest.string "file" "f" file);
  (* Reads past the one-shot fault work again. *)
  ignore (r.Fs.r_read buf 0 4);
  r.Fs.r_close ()

let test_fault_count_and_ops () =
  let _store, ctl, fs = fault_mem () in
  let w = fs.Fs.create "f" in
  Fault.fail_nth ctl ~op:`Write ~n:2 ~count:2 ();
  w.Fs.w_write "a";
  (* 1: ok *)
  (match w.Fs.w_write "b" with
  | _ -> Alcotest.fail "expected fault 1"
  | exception Fs.Io_error _ -> ());
  (match w.Fs.w_write "c" with
  | _ -> Alcotest.fail "expected fault 2"
  | exception Fs.Io_error _ -> ());
  w.Fs.w_write "d";
  w.Fs.w_close ();
  check Alcotest.int "writes counted" 4 (Fault.ops ctl ~op:`Write);
  check Alcotest.int "two injected" 2 (Fault.injected ctl)

let test_fault_rate_deterministic () =
  (* rate 1.0 always fails; rate 0.0 never; same seed, same choices. *)
  let _store, ctl, fs = fault_mem ~seed:42 () in
  let w = fs.Fs.create "f" in
  Fault.set_fault_rate ctl ~op:`Write 1.0;
  (match w.Fs.w_write "x" with
  | _ -> Alcotest.fail "expected rate fault"
  | exception Fs.Io_error _ -> ());
  Fault.set_fault_rate ctl ~op:`Write 0.0;
  w.Fs.w_write "y";
  Fault.clear ctl;
  w.Fs.w_sync ();
  w.Fs.w_close ();
  check Alcotest.string "only unfaulted writes landed" "y" (read fs "f")

let test_fault_capacity () =
  let _store, ctl, fs = fault_mem () in
  write fs "a" (String.make 90 'a');
  Fault.set_capacity ctl (Some 100);
  let w = fs.Fs.open_append "a" in
  w.Fs.w_write (String.make 10 'b');
  (match w.Fs.w_write "!" with
  | _ -> Alcotest.fail "expected No_space"
  | exception Fs.No_space { file; needed; available } ->
    check Alcotest.string "file" "a" file;
    check Alcotest.int "needed" 1 needed;
    check Alcotest.int "available" 0 available);
  w.Fs.w_sync ();
  w.Fs.w_close ();
  check Alcotest.int "all-or-nothing" 100 (fs.Fs.file_size "a");
  Fault.set_capacity ctl None;
  let w = fs.Fs.open_append "a" in
  w.Fs.w_write "ok";
  w.Fs.w_close ()

let test_counters () =
  let _store, fs = mem () in
  Fs.Counters.reset fs.Fs.counters;
  write fs "f" "12345";
  (* create: 1 create, 1 write, 1 sync *)
  check Alcotest.int "creates" 1 fs.Fs.counters.Fs.Counters.creates;
  check Alcotest.int "writes" 1 fs.Fs.counters.Fs.Counters.data_writes;
  check Alcotest.int "syncs" 1 fs.Fs.counters.Fs.Counters.syncs;
  check Alcotest.int "bytes" 5 fs.Fs.counters.Fs.Counters.bytes_written;
  ignore (read fs "f");
  Alcotest.check Alcotest.bool "reads counted" true
    (fs.Fs.counters.Fs.Counters.bytes_read >= 5);
  let before = Fs.Counters.copy fs.Fs.counters in
  write fs "g" "xy";
  let d = Fs.Counters.diff ~after:fs.Fs.counters ~before in
  check Alcotest.int "diff bytes" 2 d.Fs.Counters.bytes_written;
  Alcotest.check Alcotest.bool "pp" true
    (String.length (Format.asprintf "%a" Fs.Counters.pp d) > 0)

let test_total_bytes_and_names () =
  let store, fs = mem () in
  write fs "a" "123";
  write fs "b" "4567";
  check Alcotest.int "total" 7 (Mem.total_bytes store);
  check Alcotest.(list string) "names" [ "a"; "b" ] (Mem.file_names store)

(* Crash during a multi-page in-place overwrite can destroy old data:
   the ad-hoc fragility the baselines depend on being real. *)
let test_inplace_overwrite_at_risk () =
  let vulnerable = ref 0 in
  for seed = 100 to 160 do
    let store = Mem.create_store ~seed () in
    let fs = Mem.fs store in
    let h = fs.Fs.open_random "f" in
    h.Fs.pwrite ~off:0 (String.make 1024 'O');
    h.Fs.rw_sync ();
    (* Overwrite the same pages, then crash mid-flight. *)
    h.Fs.pwrite ~off:0 (String.make 1024 'N');
    Mem.crash store ~mode:Mem.Torn;
    match read fs "f" with
    | contents ->
      (* Mixed old/new pages count as visible corruption for a format
         that assumed the overwrite was atomic. *)
      let has_old = String.contains contents 'O' in
      let has_new = String.contains contents 'N' in
      if has_old && has_new then incr vulnerable
    | exception Fs.Read_error _ -> incr vulnerable
  done;
  Alcotest.check Alcotest.bool
    (Printf.sprintf "in-place overwrites vulnerable (%d/61)" !vulnerable)
    true (!vulnerable > 0)

let () =
  Helpers.run "storage"
    [
      ( "basics",
        [
          Alcotest.test_case "mem backend" `Quick test_mem_basic;
          Alcotest.test_case "real backend" `Quick test_real_basic;
          Alcotest.test_case "real rejects path escape" `Quick test_real_reject_paths;
        ] );
      ( "crash",
        [
          Alcotest.test_case "clean crash drops unsynced" `Quick
            test_clean_crash_drops_unsynced;
          Alcotest.test_case "clean crash restores in-place" `Quick
            test_clean_crash_restores_inplace;
          Alcotest.test_case "synced bytes survive torn crash" `Quick
            test_synced_survives_torn;
          Alcotest.test_case "torn crash shows all outcomes" `Quick
            test_torn_crash_outcomes;
          Alcotest.test_case "crash budget" `Quick test_crash_budget;
          Alcotest.test_case "in-place overwrite at risk" `Quick
            test_inplace_overwrite_at_risk;
        ] );
      ( "faults",
        [
          Alcotest.test_case "damage and heal" `Quick test_damage_and_heal;
          Alcotest.test_case "mem capacity budget" `Quick test_mem_capacity;
          Alcotest.test_case "fault_fs fail_nth write" `Quick
            test_fault_fail_nth_write;
          Alcotest.test_case "fault_fs transient errno" `Quick
            test_fault_transient_errno;
          Alcotest.test_case "fault_fs read fault" `Quick test_fault_read;
          Alcotest.test_case "fault_fs count and ops" `Quick
            test_fault_count_and_ops;
          Alcotest.test_case "fault_fs rate deterministic" `Quick
            test_fault_rate_deterministic;
          Alcotest.test_case "fault_fs capacity budget" `Quick
            test_fault_capacity;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "total bytes and names" `Quick test_total_bytes_and_names;
        ] );
    ]
