(* The concurrency sanitizer's own suite: every detector must fire on a
   seeded breach (with a captured stack), stay quiet on disciplined
   code, and cost nothing when disabled.  The stress group runs the
   real engine — group commit, checkpoints, a scrub — under the
   sanitizer and demands a clean violation log. *)

module Vlock = Sdb_vlock.Vlock

let check = Alcotest.check

(* Each test starts from a clean registry; the suite force-enables the
   sanitizer so it works without SDB_SANITIZE=1 in the environment. *)
let fresh () =
  Sdb_check.reset ();
  Sdb_check.set_enabled true

let expect_violation rule f =
  match f () with
  | _ -> Alcotest.failf "expected a %S violation, none raised" rule
  | exception Sdb_check.Violation v ->
    check Alcotest.string "rule" rule v.Sdb_check.v_rule;
    check Alcotest.bool "message names the problem" true
      (String.length v.Sdb_check.v_message > 0);
    List.iter
      (fun (what, stack) ->
        check Alcotest.bool ("stack captured for " ^ what) true
          (String.length stack > 0))
      v.Sdb_check.v_stacks;
    check Alcotest.bool "at least one stack" true (v.Sdb_check.v_stacks <> [])

(* --------------------------------------------------------------- *)
(* Detection: seeded breaches must be caught, with stacks.          *)

let test_mode_breach_bare () =
  fresh ();
  let l = Sdb_check.make_lock ~kind:`Vlock "t.mode" in
  expect_violation "mode" (fun () ->
      Sdb_check.assert_mode l Sdb_check.Exclusive ~site:"test.mutate")

let test_mutation_without_exclusive () =
  fresh ();
  (* The engine's exact shape: Update held (log write allowed), but a
     state mutation demands Exclusive. *)
  let l = Vlock.create ~name:"t-engine" () in
  Vlock.acquire l Vlock.Update;
  let san = Vlock.sanitizer l in
  Sdb_check.assert_mode san Sdb_check.Update ~site:"test.log";
  expect_violation "mode" (fun () ->
      Sdb_check.assert_mode san Sdb_check.Exclusive ~site:"test.apply");
  Vlock.upgrade l;
  Sdb_check.assert_mode san Sdb_check.Exclusive ~site:"test.apply";
  Vlock.release l Vlock.Exclusive

let test_lock_order_cycle () =
  fresh ();
  let a = Sdb_check.make_lock "t.order.a" in
  let b = Sdb_check.make_lock "t.order.b" in
  (* Establish a -> b ... *)
  Sdb_check.note_acquire a Sdb_check.Mutex;
  Sdb_check.note_acquire b Sdb_check.Mutex;
  Sdb_check.note_release b Sdb_check.Mutex;
  Sdb_check.note_release a Sdb_check.Mutex;
  check
    Alcotest.(list (pair string string))
    "edge recorded"
    [ ("t.order.a", "t.order.b") ]
    (Sdb_check.lock_order_edges ());
  (* ... then contradict it: b -> a is a potential deadlock. *)
  Sdb_check.note_acquire b Sdb_check.Mutex;
  (match
     Sdb_check.note_acquire a Sdb_check.Mutex
   with
  | _ -> Alcotest.fail "expected a lock-order violation"
  | exception Sdb_check.Violation v ->
    check Alcotest.string "rule" "lock-order" v.Sdb_check.v_rule;
    (* Both sides of the inversion carry a stack: the offending
       acquisition and the prior a -> b edge. *)
    check Alcotest.bool "two stacks" true
      (List.length v.Sdb_check.v_stacks >= 2));
  Sdb_check.note_release b Sdb_check.Mutex

let test_reentrant_nesting () =
  fresh ();
  let m = Sdb_check.Mu.make "t.re" in
  Sdb_check.Mu.lock m;
  expect_violation "nesting" (fun () -> Sdb_check.Mu.lock m);
  Sdb_check.Mu.unlock m

let test_same_class_nesting () =
  fresh ();
  (* Two instances of one class (e.g. two replica.peer outbox mutexes):
     nesting them is a deadlock hazard the class graph cannot see. *)
  let a = Sdb_check.make_lock "t.peer" in
  let b = Sdb_check.make_lock "t.peer" in
  Sdb_check.note_acquire a Sdb_check.Mutex;
  expect_violation "nesting" (fun () ->
      Sdb_check.note_acquire b Sdb_check.Mutex);
  Sdb_check.note_release a Sdb_check.Mutex

let test_recursive_read_allowed () =
  fresh ();
  let l = Vlock.create ~name:"t-rec" () in
  Vlock.acquire l Vlock.Shared;
  Vlock.acquire l Vlock.Shared;
  check Alcotest.int "two readers" 2 (Vlock.readers l);
  Vlock.release l Vlock.Shared;
  Vlock.release l Vlock.Shared;
  check Alcotest.(list (pair string string)) "no self edge" []
    (Sdb_check.lock_order_edges ())

(* The nested-read allowance is a verified claim, not an exemption: a
   lock whose probe denies ownership turns the "recursive" acquisition
   into a nesting violation. *)
let test_reentry_probe_mismatch () =
  fresh ();
  let l = Sdb_check.make_lock ~kind:`Vlock "t.probe" in
  Sdb_check.set_reentry_probe l (fun () -> false);
  Sdb_check.note_acquire l Sdb_check.Shared;
  expect_violation "nesting" (fun () ->
      Sdb_check.note_acquire l Sdb_check.Shared);
  Sdb_check.note_release l Sdb_check.Shared

let test_reentry_probe_confirms () =
  fresh ();
  let l = Sdb_check.make_lock ~kind:`Vlock "t.probe.ok" in
  Sdb_check.set_reentry_probe l (fun () -> true);
  Sdb_check.note_acquire l Sdb_check.Shared;
  Sdb_check.note_acquire l Sdb_check.Shared;
  Sdb_check.note_release l Sdb_check.Shared;
  Sdb_check.note_release l Sdb_check.Shared;
  check Alcotest.int "no violations" 0
    (Sdb_check.stats ()).Sdb_check.violations

(* End to end: a real Vlock re-entering Shared while another thread's
   upgrade is pending, under the sanitizer.  The probe Vlock installs
   at creation confirms the ownership from the reader registry; before
   the reader-ownership fix this schedule deadlocked. *)
let test_reentry_under_pending_upgrade_checked () =
  fresh ();
  let l = Vlock.create ~name:"t-rec-pend" () in
  let entered = ref false in
  let rt =
    Thread.create
      (fun () ->
        Vlock.acquire l Vlock.Shared;
        entered := true;
        while not (Vlock.upgrade_pending l) do
          Thread.yield ()
        done;
        Vlock.acquire l Vlock.Shared;
        Vlock.release l Vlock.Shared;
        Vlock.release l Vlock.Shared)
      ()
  in
  while not !entered do
    Thread.yield ()
  done;
  let ut =
    Thread.create
      (fun () ->
        Vlock.acquire l Vlock.Update;
        Vlock.upgrade l;
        Vlock.release l Vlock.Exclusive)
      ()
  in
  Thread.join rt;
  Thread.join ut;
  check Alcotest.int "no violations" 0
    (Sdb_check.stats ()).Sdb_check.violations

let test_release_without_hold () =
  fresh ();
  let l = Sdb_check.make_lock "t.rel" in
  expect_violation "nesting" (fun () ->
      Sdb_check.note_release l Sdb_check.Mutex)

let test_upgrade_without_hold () =
  fresh ();
  let l = Sdb_check.make_lock ~kind:`Vlock "t.up" in
  expect_violation "mode" (fun () -> Sdb_check.note_upgrade l)

let test_guarded_field () =
  fresh ();
  let mu = Sdb_check.Mu.make "t.guard" in
  let cell = Sdb_check.Guarded.create ~by:mu ~name:"t.cell" 0 in
  expect_violation "guard" (fun () -> Sdb_check.Guarded.get cell);
  expect_violation "guard" (fun () -> Sdb_check.Guarded.set cell 1);
  Sdb_check.Mu.with_lock mu (fun () ->
      Sdb_check.Guarded.set cell 7;
      check Alcotest.int "guarded rw" 7 (Sdb_check.Guarded.get cell))

let test_mutex_across_io () =
  fresh ();
  let mu = Sdb_check.Mu.make "t.io" in
  Sdb_check.Mu.lock mu;
  expect_violation "io" (fun () ->
      Sdb_check.assert_no_mutex_held_during_io ~site:"test.fsync");
  Sdb_check.Mu.unlock mu;
  (* Vlock modes are fine across I/O: the paper writes the log while
     holding Update. *)
  let l = Vlock.create ~name:"t-io" () in
  Vlock.acquire l Vlock.Update;
  Sdb_check.assert_no_mutex_held_during_io ~site:"test.fsync";
  Vlock.release l Vlock.Update

(* Epoch bracketing: the lock-free read path's discipline. *)

let test_epoch_unbracketed_exit () =
  fresh ();
  expect_violation "epoch" (fun () -> Sdb_check.note_epoch_exit ~name:"t.e")

let test_epoch_across_io () =
  fresh ();
  Sdb_check.note_epoch_enter ~name:"t.e";
  check Alcotest.int "depth tracked" 1 (Sdb_check.epoch_depth ());
  (* An epoch pins a version for every reader slot behind it: blocking
     I/O inside one stalls reclamation exactly like holding a mutex. *)
  expect_violation "io" (fun () ->
      Sdb_check.assert_no_mutex_held_during_io ~site:"test.fsync");
  Sdb_check.note_epoch_exit ~name:"t.e";
  check Alcotest.int "depth restored" 0 (Sdb_check.epoch_depth ());
  Sdb_check.assert_no_mutex_held_during_io ~site:"test.fsync"

let test_epoch_balanced_nesting () =
  fresh ();
  Sdb_check.note_epoch_enter ~name:"t.e";
  Sdb_check.note_epoch_enter ~name:"t.e";
  check Alcotest.int "nested depth" 2 (Sdb_check.epoch_depth ());
  Sdb_check.note_epoch_exit ~name:"t.e";
  Sdb_check.note_epoch_exit ~name:"t.e";
  check Alcotest.int "no violations" 0
    (Sdb_check.stats ()).Sdb_check.violations

let test_violation_log_and_stats () =
  fresh ();
  let l = Sdb_check.make_lock "t.log" in
  (try Sdb_check.note_release l Sdb_check.Mutex
   with Sdb_check.Violation _ -> ());
  let vs = Sdb_check.violations () in
  check Alcotest.int "one logged" 1 (List.length vs);
  let s = Sdb_check.stats () in
  check Alcotest.int "violation counted" 1 s.Sdb_check.violations;
  check Alcotest.bool "checks counted" true (s.Sdb_check.checks > 0)

let test_disabled_is_inert () =
  fresh ();
  Sdb_check.set_enabled false;
  let l = Sdb_check.make_lock "t.off" in
  (* Every breach from the detection tests, now silent. *)
  Sdb_check.note_release l Sdb_check.Mutex;
  Sdb_check.note_acquire l Sdb_check.Mutex;
  Sdb_check.note_acquire l Sdb_check.Mutex;
  Sdb_check.assert_mode l Sdb_check.Exclusive ~site:"off";
  Sdb_check.assert_no_mutex_held_during_io ~site:"off";
  let mu = Sdb_check.Mu.make "t.off.mu" in
  let cell = Sdb_check.Guarded.create ~by:mu ~name:"t.off.cell" 0 in
  Sdb_check.Guarded.set cell 3;
  check Alcotest.int "guarded passthrough" 3 (Sdb_check.Guarded.get cell);
  let s = Sdb_check.stats () in
  check Alcotest.int "no checks recorded" 0 s.Sdb_check.checks;
  check Alcotest.int "no violations" 0 s.Sdb_check.violations;
  Sdb_check.set_enabled true

(* --------------------------------------------------------------- *)
(* Stress: the real engine under the sanitizer must come out clean. *)

let test_engine_stress () =
  fresh ();
  let config =
    {
      Smalldb.default_config with
      group_commit = true;
      policy = Smalldb.Every_n_updates 64;
    }
  in
  let _store, _fs, db = Helpers.mem_db ~config ~seed:42 () in
  let writers = 4 and readers = 2 and per_writer = 100 in
  let ws =
    List.init writers (fun tid ->
        Thread.create
          (fun () ->
            for i = 0 to per_writer - 1 do
              Helpers.KVDb.update db
                (Helpers.KV.Set (Printf.sprintf "w%d-%03d" tid i, "v"))
            done)
          ())
  in
  let stop = Atomic.make false in
  let rs =
    List.init readers (fun _ ->
        Thread.create
          (fun () ->
            while not (Atomic.get stop) do
              ignore (Helpers.KVDb.query db Hashtbl.length);
              Thread.yield ()
            done)
          ())
  in
  List.iter Thread.join ws;
  let report = Helpers.KVDb.scrub db in
  check Alcotest.bool "scrub clean" true
    (report.Smalldb.findings = [] && report.Smalldb.replay_consistent);
  Atomic.set stop true;
  List.iter Thread.join rs;
  Helpers.KVDb.checkpoint db;
  check Alcotest.int "all updates present" (writers * per_writer)
    (List.length (Helpers.kv_contents db));
  Helpers.KVDb.close db;
  let s = Sdb_check.stats () in
  check Alcotest.bool "sanitizer exercised" true (s.Sdb_check.checks > 1000);
  check Alcotest.bool "nesting observed" true (s.Sdb_check.max_lock_depth >= 2);
  check Alcotest.int "no violations" 0 s.Sdb_check.violations;
  check Alcotest.int "violation log empty" 0
    (List.length (Sdb_check.violations ()));
  (* The observed order graph must still be acyclic (a cycle would have
     raised), and non-trivial: group commit nests the coordinator mutex
     under the vlock. *)
  check Alcotest.bool "order edges observed" true
    (Sdb_check.lock_order_edges () <> [])

let () =
  Helpers.run "sanitizer"
    [
      ( "detect",
        [
          Alcotest.test_case "assert_mode with nothing held" `Quick
            test_mode_breach_bare;
          Alcotest.test_case "mutation without exclusive" `Quick
            test_mutation_without_exclusive;
          Alcotest.test_case "lock-order cycle" `Quick test_lock_order_cycle;
          Alcotest.test_case "re-entrant acquisition" `Quick
            test_reentrant_nesting;
          Alcotest.test_case "same-class nesting" `Quick test_same_class_nesting;
          Alcotest.test_case "recursive read allowed" `Quick
            test_recursive_read_allowed;
          Alcotest.test_case "re-entry probe mismatch caught" `Quick
            test_reentry_probe_mismatch;
          Alcotest.test_case "re-entry probe confirms" `Quick
            test_reentry_probe_confirms;
          Alcotest.test_case "re-entry under pending upgrade checked" `Quick
            test_reentry_under_pending_upgrade_checked;
          Alcotest.test_case "release without hold" `Quick
            test_release_without_hold;
          Alcotest.test_case "upgrade without hold" `Quick
            test_upgrade_without_hold;
          Alcotest.test_case "guarded field" `Quick test_guarded_field;
          Alcotest.test_case "mutex across io" `Quick test_mutex_across_io;
          Alcotest.test_case "epoch exit without enter" `Quick
            test_epoch_unbracketed_exit;
          Alcotest.test_case "epoch held across io" `Quick test_epoch_across_io;
          Alcotest.test_case "epoch balanced nesting" `Quick
            test_epoch_balanced_nesting;
          Alcotest.test_case "violation log and stats" `Quick
            test_violation_log_and_stats;
          Alcotest.test_case "disabled is inert" `Quick test_disabled_is_inert;
        ] );
      ( "stress",
        [ Alcotest.test_case "engine under sanitizer" `Quick test_engine_stress ] );
    ]
