(* Disciplined twin of the seeded fixtures: contracts declared and
   honored.  The checker must stay silent here — it gates the test
   against rules that fire on correct code. *)

module Vlock = Sdb_vlock.Vlock
module Epoch = Sdb_epoch.Epoch

let lock = Vlock.create ~name:"fx.clean" ()
let state = ref 0

let bump () =
  state := !state + 1
  [@@sdb.requires exclusive]

let write () =
  Vlock.with_lock lock Vlock.Exclusive bump
  [@@sdb.acquires exclusive]

let read_state () =
  Vlock.with_lock lock Vlock.Shared (fun () -> !state)
  [@@sdb.acquires shared]

(* A balanced epoch read: enter/exit implied by Epoch.read's bracket. *)
let cell = Epoch.create ~name:"fx.clean.epoch" ~lsn:0 0
let snapshot () = Epoch.read cell (fun v -> v)
