(* Seeded violation for the [noblock] rule, transitively: [fast]
   promises not to block but calls a helper that sleeps. *)

let sleeper () = Thread.delay 0.001

let fast () =
  sleeper ()
  [@@sdb.noblock]
