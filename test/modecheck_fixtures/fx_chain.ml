(* Seeded violation for the [mode] rule on a call chain: [updates]
   enters with Update yet calls into Exclusive-requiring code — the
   mode-downgrade shape the checker must catch interprocedurally. *)

let state = ref 0

let writes_state () =
  state := !state + 1
  [@@sdb.requires exclusive]

let updates () =
  writes_state ()
  [@@sdb.requires update]
