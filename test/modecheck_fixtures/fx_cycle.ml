(* Seeded violation for the [lock-order] rule: two mutexes taken in
   both orders by different functions — a cycle in the derived
   lock-order graph even though each function on its own is balanced. *)

let a = Sdb_check.Mu.make "fx.a"
let b = Sdb_check.Mu.make "fx.b"

let ab () =
  Sdb_check.Mu.lock a;
  Sdb_check.Mu.lock b;
  Sdb_check.Mu.unlock b;
  Sdb_check.Mu.unlock a

let ba () =
  Sdb_check.Mu.lock b;
  Sdb_check.Mu.lock a;
  Sdb_check.Mu.unlock a;
  Sdb_check.Mu.unlock b
