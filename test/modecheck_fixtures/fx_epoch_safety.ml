(* Seeded violation for the [epoch-safety] rule: a lock acquisition
   inside a declared epoch read section.  An epoch section must be
   wait-free — a lock inside it can pin the epoch indefinitely. *)

let m = Sdb_check.Mu.make "fx.es"

let inside () =
  Sdb_check.Mu.with_lock m (fun () -> ())
  [@@sdb.epoch_section]
