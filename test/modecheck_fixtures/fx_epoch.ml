(* Seeded violation for the [epoch-bracket] rule: an epoch section
   entered and never exited on the fall-through path. *)

let enter_only () = Sdb_check.note_epoch_enter ~name:"fx.epoch"
