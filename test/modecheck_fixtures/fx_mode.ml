(* Seeded violation for the [mode] rule: [caller] invokes
   [needs_update] while holding no Vlock mode at all. *)

let counter = ref 0

let needs_update () =
  incr counter
  [@@sdb.requires update]

let caller () = needs_update ()
