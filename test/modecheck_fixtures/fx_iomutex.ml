(* Seeded violation for the [io-under-mutex] rule: a blocking file
   read while a plain (`Mutex-kind) Mu is held. *)

let m = Sdb_check.Mu.make "fx.iomutex"

let slow_under_lock fs =
  Sdb_check.Mu.lock m;
  let data = Sdb_storage.Fs.read_file fs "some-file" in
  Sdb_check.Mu.unlock m;
  String.length data
