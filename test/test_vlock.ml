module Vlock = Sdb_vlock.Vlock

let check = Alcotest.check

(* Busy-wait with timeout so a broken lock fails the test instead of
   hanging it. *)
let wait_for ?(timeout = 5.0) what pred =
  let start = Unix.gettimeofday () in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () -. start > timeout then
      Alcotest.fail ("timeout waiting for " ^ what)
    else begin
      Thread.yield ();
      go ()
    end
  in
  go ()

let spawn f = Thread.create f ()

let test_shared_concurrent () =
  let l = Vlock.create () in
  Vlock.acquire l Vlock.Shared;
  Vlock.acquire l Vlock.Shared;
  check Alcotest.int "two readers" 2 (Vlock.readers l);
  Vlock.release l Vlock.Shared;
  Vlock.release l Vlock.Shared;
  check Alcotest.int "drained" 0 (Vlock.readers l)

let test_update_allows_shared () =
  let l = Vlock.create () in
  Vlock.acquire l Vlock.Update;
  (* A reader must get in while update is held. *)
  let got = ref false in
  let t =
    spawn (fun () ->
        Vlock.acquire l Vlock.Shared;
        got := true;
        Vlock.acquire l Vlock.Shared |> ignore;
        Vlock.release l Vlock.Shared;
        Vlock.release l Vlock.Shared)
  in
  wait_for "reader under update" (fun () -> !got);
  Thread.join t;
  check Alcotest.bool "update still held" true (Vlock.update_held l);
  Vlock.release l Vlock.Update

let test_update_excludes_update () =
  let l = Vlock.create () in
  Vlock.acquire l Vlock.Update;
  let second = ref false in
  let t =
    spawn (fun () ->
        Vlock.acquire l Vlock.Update;
        second := true;
        Vlock.release l Vlock.Update)
  in
  Thread.delay 0.05;
  check Alcotest.bool "second update blocked" false !second;
  Vlock.release l Vlock.Update;
  wait_for "second update proceeds" (fun () -> !second);
  Thread.join t

let test_exclusive_excludes_all () =
  let l = Vlock.create () in
  Vlock.acquire l Vlock.Exclusive;
  check Alcotest.bool "exclusive held" true (Vlock.exclusive_held l);
  let reader = ref false and updater = ref false in
  let t1 =
    spawn (fun () ->
        Vlock.acquire l Vlock.Shared;
        reader := true;
        Vlock.release l Vlock.Shared)
  in
  let t2 =
    spawn (fun () ->
        Vlock.acquire l Vlock.Update;
        updater := true;
        Vlock.release l Vlock.Update)
  in
  Thread.delay 0.05;
  check Alcotest.bool "reader blocked" false !reader;
  check Alcotest.bool "updater blocked" false !updater;
  Vlock.release l Vlock.Exclusive;
  wait_for "reader proceeds" (fun () -> !reader);
  wait_for "updater proceeds" (fun () -> !updater);
  Thread.join t1;
  Thread.join t2

let test_upgrade_waits_for_readers () =
  let l = Vlock.create () in
  Vlock.acquire l Vlock.Shared;
  (* The updater runs on its own thread and owns the Update lock it
     upgrades — the discipline the engine (and the sanitizer) demand. *)
  let upgraded = ref false in
  let release_ok = ref false in
  let t =
    spawn (fun () ->
        Vlock.acquire l Vlock.Update;
        Vlock.upgrade l;
        upgraded := true;
        wait_for "leader told to release" (fun () -> !release_ok);
        Vlock.release l Vlock.Exclusive)
  in
  wait_for "updater holds update" (fun () -> Vlock.update_held l);
  Thread.delay 0.05;
  check Alcotest.bool "upgrade waits" false !upgraded;
  (* New readers must not slip in while the upgrade is pending. *)
  let late_reader = ref false in
  let t2 =
    spawn (fun () ->
        Vlock.acquire l Vlock.Shared;
        late_reader := true;
        Vlock.release l Vlock.Shared)
  in
  Thread.delay 0.05;
  check Alcotest.bool "late reader blocked" false !late_reader;
  (* Existing reader leaves; upgrade completes. *)
  Vlock.release l Vlock.Shared;
  wait_for "upgrade completes" (fun () -> !upgraded);
  check Alcotest.bool "now exclusive" true (Vlock.exclusive_held l);
  check Alcotest.bool "late reader still blocked" false !late_reader;
  release_ok := true;
  wait_for "late reader proceeds" (fun () -> !late_reader);
  Thread.join t;
  Thread.join t2

let test_downgrade () =
  let l = Vlock.create () in
  Vlock.acquire l Vlock.Exclusive;
  Vlock.downgrade l;
  check Alcotest.bool "update held" true (Vlock.update_held l);
  check Alcotest.bool "not exclusive" false (Vlock.exclusive_held l);
  (* Readers can come in now — on their own thread, as in the engine. *)
  let read = ref false in
  let t =
    spawn (fun () -> Vlock.with_lock l Vlock.Shared (fun () -> read := true))
  in
  wait_for "reader ran under update" (fun () -> !read);
  Thread.join t;
  Vlock.release l Vlock.Update

let test_misuse_detected () =
  let l = Vlock.create () in
  Alcotest.check_raises "release shared unheld"
    (Invalid_argument "Vlock.release: no shared holder") (fun () ->
      Vlock.release l Vlock.Shared);
  Alcotest.check_raises "release update unheld"
    (Invalid_argument "Vlock.release: update not held") (fun () ->
      Vlock.release l Vlock.Update);
  Alcotest.check_raises "release exclusive unheld"
    (Invalid_argument "Vlock.release: exclusive not held") (fun () ->
      Vlock.release l Vlock.Exclusive);
  Alcotest.check_raises "upgrade without update"
    (Invalid_argument "Vlock.upgrade: update not held") (fun () -> Vlock.upgrade l);
  Alcotest.check_raises "downgrade without exclusive"
    (Invalid_argument "Vlock.downgrade: exclusive not held") (fun () ->
      Vlock.downgrade l)

let test_with_lock_releases_on_exception () =
  let l = Vlock.create () in
  (try Vlock.with_lock l Vlock.Update (fun () -> failwith "boom")
   with Failure _ -> ());
  check Alcotest.bool "released after exception" false (Vlock.update_held l);
  (try Vlock.with_lock l Vlock.Shared (fun () -> failwith "boom")
   with Failure _ -> ());
  check Alcotest.int "reader released" 0 (Vlock.readers l)

let test_stats () =
  let l = Vlock.create () in
  Vlock.with_lock l Vlock.Shared (fun () -> ());
  Vlock.with_lock l Vlock.Update (fun () -> ());
  Vlock.acquire l Vlock.Update;
  Vlock.upgrade l;
  Vlock.release l Vlock.Exclusive;
  let s = Vlock.stats l in
  check Alcotest.int "shared" 1 s.Vlock.shared_acquisitions;
  check Alcotest.int "update" 2 s.Vlock.update_acquisitions;
  check Alcotest.int "upgrades" 1 s.Vlock.upgrades

let test_waiters () =
  let l = Vlock.create () in
  check Alcotest.int "idle: no shared waiters" 0 (Vlock.waiters l Vlock.Shared);
  check Alcotest.int "idle: no update waiters" 0 (Vlock.waiters l Vlock.Update);
  Vlock.acquire l Vlock.Exclusive;
  let done_ = ref 0 in
  let blocked mode =
    spawn (fun () ->
        Vlock.acquire l mode;
        Vlock.release l mode;
        incr done_)
  in
  let t1 = blocked Vlock.Shared in
  let t2 = blocked Vlock.Shared in
  let t3 = blocked Vlock.Update in
  wait_for "two shared waiters" (fun () -> Vlock.waiters l Vlock.Shared = 2);
  wait_for "one update waiter" (fun () -> Vlock.waiters l Vlock.Update = 1);
  check Alcotest.int "no exclusive waiters" 0 (Vlock.waiters l Vlock.Exclusive);
  Vlock.release l Vlock.Exclusive;
  wait_for "all proceed" (fun () -> !done_ = 3);
  List.iter Thread.join [ t1; t2; t3 ];
  check Alcotest.int "drained shared" 0 (Vlock.waiters l Vlock.Shared);
  check Alcotest.int "drained update" 0 (Vlock.waiters l Vlock.Update)

let test_waiting_snapshot () =
  (* The one-call snapshot the group-commit leader polls while
     lingering: a blocked Update acquirer must show up in
     [waiting_update], and the three fields come from a single mutex
     hold. *)
  let l = Vlock.create () in
  let w = Vlock.waiting l in
  check Alcotest.int "idle snapshot" 0
    (w.Vlock.waiting_shared + w.Vlock.waiting_update + w.Vlock.waiting_exclusive);
  Vlock.acquire l Vlock.Update;
  let t =
    spawn (fun () ->
        Vlock.acquire l Vlock.Update;
        Vlock.release l Vlock.Update)
  in
  wait_for "update waiter visible" (fun () ->
      (Vlock.waiting l).Vlock.waiting_update = 1);
  check Alcotest.int "no shared waiters" 0
    (Vlock.waiting l).Vlock.waiting_shared;
  Vlock.release l Vlock.Update;
  Thread.join t;
  check Alcotest.int "drained" 0 (Vlock.waiting l).Vlock.waiting_update

(* Stress: concurrent readers and writers keep a counter consistent.
   Writers mutate only under exclusive; readers observe only stable
   states (even counter). *)
let test_stress_invariant () =
  let l = Vlock.create () in
  let counter = ref 0 in
  let torn_reads = ref 0 in
  let writers =
    List.init 4 (fun _ ->
        spawn (fun () ->
            for _ = 1 to 200 do
              Vlock.acquire l Vlock.Update;
              (* "log write" happens here, readers still active *)
              Vlock.upgrade l;
              incr counter;
              incr counter;
              Vlock.release l Vlock.Exclusive
            done))
  in
  let readers =
    List.init 4 (fun _ ->
        spawn (fun () ->
            for _ = 1 to 400 do
              Vlock.with_lock l Vlock.Shared (fun () ->
                  if !counter land 1 = 1 then incr torn_reads)
            done))
  in
  List.iter Thread.join writers;
  List.iter Thread.join readers;
  check Alcotest.int "final counter" 1600 !counter;
  check Alcotest.int "no torn reads" 0 !torn_reads

let () =
  Helpers.run "vlock"
    [
      ( "matrix",
        [
          Alcotest.test_case "shared compatible with shared" `Quick
            test_shared_concurrent;
          Alcotest.test_case "update allows shared" `Quick test_update_allows_shared;
          Alcotest.test_case "update excludes update" `Quick test_update_excludes_update;
          Alcotest.test_case "exclusive excludes all" `Quick test_exclusive_excludes_all;
        ] );
      ( "transitions",
        [
          Alcotest.test_case "upgrade waits, blocks new readers" `Quick
            test_upgrade_waits_for_readers;
          Alcotest.test_case "downgrade" `Quick test_downgrade;
        ] );
      ( "safety",
        [
          Alcotest.test_case "misuse detected" `Quick test_misuse_detected;
          Alcotest.test_case "with_lock releases on exception" `Quick
            test_with_lock_releases_on_exception;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "waiters" `Quick test_waiters;
          Alcotest.test_case "waiting snapshot" `Quick test_waiting_snapshot;
          Alcotest.test_case "stress invariant" `Quick test_stress_invariant;
        ] );
    ]
