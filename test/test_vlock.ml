module Vlock = Sdb_vlock.Vlock
module Vlock_core = Sdb_vlock.Vlock_core
module Metrics = Sdb_obs.Metrics

let check = Alcotest.check

(* Busy-wait with timeout so a broken lock fails the test instead of
   hanging it. *)
let wait_for ?(timeout = 5.0) what pred =
  let start = Unix.gettimeofday () in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () -. start > timeout then
      Alcotest.fail ("timeout waiting for " ^ what)
    else begin
      Thread.yield ();
      go ()
    end
  in
  go ()

let spawn f = Thread.create f ()

let test_shared_concurrent () =
  let l = Vlock.create () in
  Vlock.acquire l Vlock.Shared;
  Vlock.acquire l Vlock.Shared;
  check Alcotest.int "two readers" 2 (Vlock.readers l);
  Vlock.release l Vlock.Shared;
  Vlock.release l Vlock.Shared;
  check Alcotest.int "drained" 0 (Vlock.readers l)

let test_update_allows_shared () =
  let l = Vlock.create () in
  Vlock.acquire l Vlock.Update;
  (* A reader must get in while update is held. *)
  let got = ref false in
  let t =
    spawn (fun () ->
        Vlock.acquire l Vlock.Shared;
        got := true;
        Vlock.acquire l Vlock.Shared |> ignore;
        Vlock.release l Vlock.Shared;
        Vlock.release l Vlock.Shared)
  in
  wait_for "reader under update" (fun () -> !got);
  Thread.join t;
  check Alcotest.bool "update still held" true (Vlock.update_held l);
  Vlock.release l Vlock.Update

let test_update_excludes_update () =
  let l = Vlock.create () in
  Vlock.acquire l Vlock.Update;
  let second = ref false in
  let t =
    spawn (fun () ->
        Vlock.acquire l Vlock.Update;
        second := true;
        Vlock.release l Vlock.Update)
  in
  Thread.delay 0.05;
  check Alcotest.bool "second update blocked" false !second;
  Vlock.release l Vlock.Update;
  wait_for "second update proceeds" (fun () -> !second);
  Thread.join t

let test_exclusive_excludes_all () =
  let l = Vlock.create () in
  Vlock.acquire l Vlock.Exclusive;
  check Alcotest.bool "exclusive held" true (Vlock.exclusive_held l);
  let reader = ref false and updater = ref false in
  let t1 =
    spawn (fun () ->
        Vlock.acquire l Vlock.Shared;
        reader := true;
        Vlock.release l Vlock.Shared)
  in
  let t2 =
    spawn (fun () ->
        Vlock.acquire l Vlock.Update;
        updater := true;
        Vlock.release l Vlock.Update)
  in
  Thread.delay 0.05;
  check Alcotest.bool "reader blocked" false !reader;
  check Alcotest.bool "updater blocked" false !updater;
  Vlock.release l Vlock.Exclusive;
  wait_for "reader proceeds" (fun () -> !reader);
  wait_for "updater proceeds" (fun () -> !updater);
  Thread.join t1;
  Thread.join t2

let test_upgrade_waits_for_readers () =
  let l = Vlock.create () in
  Vlock.acquire l Vlock.Shared;
  (* The updater runs on its own thread and owns the Update lock it
     upgrades — the discipline the engine (and the sanitizer) demand. *)
  let upgraded = ref false in
  let release_ok = ref false in
  let t =
    spawn (fun () ->
        Vlock.acquire l Vlock.Update;
        Vlock.upgrade l;
        upgraded := true;
        wait_for "leader told to release" (fun () -> !release_ok);
        Vlock.release l Vlock.Exclusive)
  in
  wait_for "updater holds update" (fun () -> Vlock.update_held l);
  Thread.delay 0.05;
  check Alcotest.bool "upgrade waits" false !upgraded;
  (* New readers must not slip in while the upgrade is pending. *)
  let late_reader = ref false in
  let t2 =
    spawn (fun () ->
        Vlock.acquire l Vlock.Shared;
        late_reader := true;
        Vlock.release l Vlock.Shared)
  in
  Thread.delay 0.05;
  check Alcotest.bool "late reader blocked" false !late_reader;
  (* Existing reader leaves; upgrade completes. *)
  Vlock.release l Vlock.Shared;
  wait_for "upgrade completes" (fun () -> !upgraded);
  check Alcotest.bool "now exclusive" true (Vlock.exclusive_held l);
  check Alcotest.bool "late reader still blocked" false !late_reader;
  release_ok := true;
  wait_for "late reader proceeds" (fun () -> !late_reader);
  Thread.join t;
  Thread.join t2

let test_downgrade () =
  let l = Vlock.create () in
  Vlock.acquire l Vlock.Exclusive;
  Vlock.downgrade l;
  check Alcotest.bool "update held" true (Vlock.update_held l);
  check Alcotest.bool "not exclusive" false (Vlock.exclusive_held l);
  (* Readers can come in now — on their own thread, as in the engine. *)
  let read = ref false in
  let t =
    spawn (fun () -> Vlock.with_lock l Vlock.Shared (fun () -> read := true))
  in
  wait_for "reader ran under update" (fun () -> !read);
  Thread.join t;
  Vlock.release l Vlock.Update

let test_misuse_detected () =
  let l = Vlock.create () in
  Alcotest.check_raises "release shared unheld"
    (Invalid_argument "Vlock.release: no shared holder") (fun () ->
      Vlock.release l Vlock.Shared);
  Alcotest.check_raises "release update unheld"
    (Invalid_argument "Vlock.release: update not held") (fun () ->
      Vlock.release l Vlock.Update);
  Alcotest.check_raises "release exclusive unheld"
    (Invalid_argument "Vlock.release: exclusive not held") (fun () ->
      Vlock.release l Vlock.Exclusive);
  Alcotest.check_raises "upgrade without update"
    (Invalid_argument "Vlock.upgrade: update not held") (fun () -> Vlock.upgrade l);
  Alcotest.check_raises "downgrade without exclusive"
    (Invalid_argument "Vlock.downgrade: exclusive not held") (fun () ->
      Vlock.downgrade l)

let test_with_lock_releases_on_exception () =
  let l = Vlock.create () in
  (try Vlock.with_lock l Vlock.Update (fun () -> failwith "boom")
   with Failure _ -> ());
  check Alcotest.bool "released after exception" false (Vlock.update_held l);
  (try Vlock.with_lock l Vlock.Shared (fun () -> failwith "boom")
   with Failure _ -> ());
  check Alcotest.int "reader released" 0 (Vlock.readers l)

let test_stats () =
  let l = Vlock.create () in
  Vlock.with_lock l Vlock.Shared (fun () -> ());
  Vlock.with_lock l Vlock.Update (fun () -> ());
  Vlock.acquire l Vlock.Update;
  Vlock.upgrade l;
  Vlock.release l Vlock.Exclusive;
  let s = Vlock.stats l in
  check Alcotest.int "shared" 1 s.Vlock.shared_acquisitions;
  check Alcotest.int "update" 2 s.Vlock.update_acquisitions;
  check Alcotest.int "upgrades" 1 s.Vlock.upgrades

let test_waiters () =
  let l = Vlock.create () in
  check Alcotest.int "idle: no shared waiters" 0 (Vlock.waiters l Vlock.Shared);
  check Alcotest.int "idle: no update waiters" 0 (Vlock.waiters l Vlock.Update);
  Vlock.acquire l Vlock.Exclusive;
  let done_ = ref 0 in
  let blocked mode =
    spawn (fun () ->
        Vlock.acquire l mode;
        Vlock.release l mode;
        incr done_)
  in
  let t1 = blocked Vlock.Shared in
  let t2 = blocked Vlock.Shared in
  let t3 = blocked Vlock.Update in
  wait_for "two shared waiters" (fun () -> Vlock.waiters l Vlock.Shared = 2);
  wait_for "one update waiter" (fun () -> Vlock.waiters l Vlock.Update = 1);
  check Alcotest.int "no exclusive waiters" 0 (Vlock.waiters l Vlock.Exclusive);
  Vlock.release l Vlock.Exclusive;
  wait_for "all proceed" (fun () -> !done_ = 3);
  List.iter Thread.join [ t1; t2; t3 ];
  check Alcotest.int "drained shared" 0 (Vlock.waiters l Vlock.Shared);
  check Alcotest.int "drained update" 0 (Vlock.waiters l Vlock.Update)

let test_waiting_snapshot () =
  (* The one-call snapshot the group-commit leader polls while
     lingering: a blocked Update acquirer must show up in
     [waiting_update], and the three fields come from a single mutex
     hold. *)
  let l = Vlock.create () in
  let w = Vlock.waiting l in
  check Alcotest.int "idle snapshot" 0
    (w.Vlock.waiting_shared + w.Vlock.waiting_update + w.Vlock.waiting_exclusive);
  Vlock.acquire l Vlock.Update;
  let t =
    spawn (fun () ->
        Vlock.acquire l Vlock.Update;
        Vlock.release l Vlock.Update)
  in
  wait_for "update waiter visible" (fun () ->
      (Vlock.waiting l).Vlock.waiting_update = 1);
  check Alcotest.int "no shared waiters" 0
    (Vlock.waiting l).Vlock.waiting_shared;
  Vlock.release l Vlock.Update;
  Thread.join t;
  check Alcotest.int "drained" 0 (Vlock.waiting l).Vlock.waiting_update

(* The ISSUE 7 regression, deterministically: a thread already holding
   Shared re-enters while another thread's upgrade is pending.  Before
   the reader-ownership fix the nested acquisition parked behind the
   pending upgrade while the upgrader drained this very reader — a
   deadlock this test would turn into a timeout. *)
let test_nested_read_during_pending_upgrade () =
  let l = Vlock.create () in
  let reader_in = ref false in
  let nested_in = ref false in
  let release_ok = ref false in
  let rt =
    spawn (fun () ->
        Vlock.acquire l Vlock.Shared;
        reader_in := true;
        wait_for "upgrade pending" (fun () -> Vlock.upgrade_pending l);
        Vlock.acquire l Vlock.Shared;
        check Alcotest.int "both holds registered" 2 (Vlock.shared_hold_count l);
        nested_in := true;
        wait_for "release signal" (fun () -> !release_ok);
        Vlock.release l Vlock.Shared;
        Vlock.release l Vlock.Shared)
  in
  wait_for "reader in" (fun () -> !reader_in);
  let upgraded = ref false in
  let ut =
    spawn (fun () ->
        Vlock.acquire l Vlock.Update;
        Vlock.upgrade l;
        upgraded := true;
        Vlock.release l Vlock.Exclusive)
  in
  wait_for "nested hold acquired under pending upgrade" (fun () -> !nested_in);
  check Alcotest.bool "upgrade still draining" false !upgraded;
  release_ok := true;
  wait_for "upgrade completes once the reader drains" (fun () -> !upgraded);
  Thread.join rt;
  Thread.join ut;
  check Alcotest.int "registry empty" 0 (Vlock.shared_hold_count l);
  check Alcotest.int "drained" 0 (Vlock.readers l)

(* Randomized version of the same race: nested readers hammering a
   spinning upgrader.  Any reintroduction of the recursive-read gate
   hangs this test rather than passing it. *)
let test_stress_nested_readers_vs_upgrader () =
  let l = Vlock.create () in
  let stop = ref false in
  let upgrader =
    spawn (fun () ->
        while not !stop do
          Vlock.acquire l Vlock.Update;
          Vlock.upgrade l;
          Vlock.release l Vlock.Exclusive;
          Thread.yield ()
        done)
  in
  let lost_holds = ref 0 in
  let readers =
    List.init 4 (fun _ ->
        spawn (fun () ->
            for _ = 1 to 300 do
              Vlock.with_lock l Vlock.Shared (fun () ->
                  Vlock.with_lock l Vlock.Shared (fun () ->
                      if Vlock.shared_hold_count l < 2 then incr lost_holds))
            done))
  in
  List.iter Thread.join readers;
  stop := true;
  Thread.join upgrader;
  check Alcotest.int "registry never lost a hold" 0 !lost_holds;
  check Alcotest.int "drained" 0 (Vlock.readers l);
  check Alcotest.int "registry empty" 0 (Vlock.shared_hold_count l)

(* A SYNC whose [wait] can be told to raise: drives the unwinding paths
   of the core protocol, single-threaded and deterministically.  The
   flag is scoped to this test binary, so no cross-test interference. *)
exception Interrupted

module Flaky_sync = struct
  type mutex = Mutex.t
  type cond = Condition.t

  let make_mutex () = Mutex.create ()
  let make_cond () = Condition.create ()
  let lock = Mutex.lock
  let unlock = Mutex.unlock
  let fail_next = ref false

  let wait c m =
    if !fail_next then begin
      fail_next := false;
      raise Interrupted
    end
    else Condition.wait c m

  let broadcast = Condition.broadcast
  let self () = Thread.id (Thread.self ())
end

module FV = Vlock_core.Make (Flaky_sync)

let test_acquire_unwinds_on_interrupt () =
  let open Vlock_core in
  (* Exclusive interrupted mid-drain: upd/upgrade_pending/w_exclusive
     must all be unwound, or the lock is wedged for everyone. *)
  let v = FV.create () in
  FV.acquire v Shared;
  Flaky_sync.fail_next := true;
  (try
     FV.acquire v Exclusive;
     Alcotest.fail "exclusive acquire should have been interrupted"
   with Interrupted -> ());
  check Alcotest.bool "update flag unwound" false (FV.update_held v);
  check Alcotest.bool "pending flag unwound" false (FV.upgrade_pending v);
  check Alcotest.int "exclusive waiter unwound" 0 (FV.waiters v Exclusive);
  FV.release v Shared;
  FV.acquire v Exclusive;
  check Alcotest.bool "lock usable after unwind" true (FV.exclusive_held v);
  FV.release v Exclusive;
  (* Upgrade interrupted mid-drain: Update is kept, the withdrawn
     pending flag must wake the readers it gated. *)
  let v = FV.create () in
  FV.acquire v Shared;
  FV.acquire v Update;
  Flaky_sync.fail_next := true;
  (try
     FV.upgrade v;
     Alcotest.fail "upgrade should have been interrupted"
   with Interrupted -> ());
  check Alcotest.bool "update survives a failed upgrade" true (FV.update_held v);
  check Alcotest.bool "pending withdrawn" false (FV.upgrade_pending v);
  FV.release v Update;
  FV.release v Shared;
  (* Shared interrupted while gated by an exclusive holder. *)
  let v = FV.create () in
  FV.acquire v Exclusive;
  Flaky_sync.fail_next := true;
  (try
     FV.acquire v Shared;
     Alcotest.fail "shared acquire should have been interrupted"
   with Interrupted -> ());
  check Alcotest.int "shared waiter unwound" 0 (FV.waiters v Shared);
  check Alcotest.int "no phantom reader" 0 (FV.readers v);
  FV.release v Exclusive

(* Stale-stamp regression: a hold that begins while metrics are off
   must observe nothing at release even if metrics were re-enabled in
   between — the old code left the previous hold's timestamp in place
   and charged the whole disabled interval to the next release. *)
let test_hold_metrics_toggle () =
  let was_enabled = Metrics.is_enabled () in
  Fun.protect ~finally:(fun () -> Metrics.set_enabled was_enabled) @@ fun () ->
  (* The registry memoizes by name+labels: this returns the same handle
     vlock.ml observes into. *)
  let h =
    Metrics.histogram "sdb_lock_hold_seconds" ~labels:[ ("mode", "update") ]
  in
  let count () = (Metrics.histogram_snapshot h).Sdb_util.Histogram.s_count in
  let l = Vlock.create () in
  (* Stamp a hold, then release with metrics off: no observation, and
     crucially the stamp must be cleared. *)
  Metrics.set_enabled true;
  Vlock.acquire l Vlock.Update;
  Metrics.set_enabled false;
  Vlock.release l Vlock.Update;
  (* A hold taken while off and released while on has no stamp: it must
     not observe (and before the fix it observed the stale stamp). *)
  Vlock.acquire l Vlock.Update;
  Metrics.set_enabled true;
  let before = count () in
  Vlock.release l Vlock.Update;
  check Alcotest.int "no bogus sample from a stale stamp" before (count ());
  (* A fully-timed hold still lands. *)
  Vlock.acquire l Vlock.Update;
  Vlock.release l Vlock.Update;
  check Alcotest.int "timed hold observed" (before + 1) (count ())

(* Stress: concurrent readers and writers keep a counter consistent.
   Writers mutate only under exclusive; readers observe only stable
   states (even counter). *)
let test_stress_invariant () =
  let l = Vlock.create () in
  let counter = ref 0 in
  let torn_reads = ref 0 in
  let writers =
    List.init 4 (fun _ ->
        spawn (fun () ->
            for _ = 1 to 200 do
              Vlock.acquire l Vlock.Update;
              (* "log write" happens here, readers still active *)
              Vlock.upgrade l;
              incr counter;
              incr counter;
              Vlock.release l Vlock.Exclusive
            done))
  in
  let readers =
    List.init 4 (fun _ ->
        spawn (fun () ->
            for _ = 1 to 400 do
              Vlock.with_lock l Vlock.Shared (fun () ->
                  if !counter land 1 = 1 then incr torn_reads)
            done))
  in
  List.iter Thread.join writers;
  List.iter Thread.join readers;
  check Alcotest.int "final counter" 1600 !counter;
  check Alcotest.int "no torn reads" 0 !torn_reads

let () =
  Helpers.run "vlock"
    [
      ( "matrix",
        [
          Alcotest.test_case "shared compatible with shared" `Quick
            test_shared_concurrent;
          Alcotest.test_case "update allows shared" `Quick test_update_allows_shared;
          Alcotest.test_case "update excludes update" `Quick test_update_excludes_update;
          Alcotest.test_case "exclusive excludes all" `Quick test_exclusive_excludes_all;
        ] );
      ( "transitions",
        [
          Alcotest.test_case "upgrade waits, blocks new readers" `Quick
            test_upgrade_waits_for_readers;
          Alcotest.test_case "downgrade" `Quick test_downgrade;
        ] );
      ( "recursive-read",
        [
          Alcotest.test_case "nested read during pending upgrade" `Quick
            test_nested_read_during_pending_upgrade;
          Alcotest.test_case "nested readers vs spinning upgrader" `Quick
            test_stress_nested_readers_vs_upgrader;
        ] );
      ( "unwinding",
        [
          Alcotest.test_case "acquire unwinds on interrupt" `Quick
            test_acquire_unwinds_on_interrupt;
          Alcotest.test_case "hold metrics survive toggling" `Quick
            test_hold_metrics_toggle;
        ] );
      ( "safety",
        [
          Alcotest.test_case "misuse detected" `Quick test_misuse_detected;
          Alcotest.test_case "with_lock releases on exception" `Quick
            test_with_lock_releases_on_exception;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "waiters" `Quick test_waiters;
          Alcotest.test_case "waiting snapshot" `Quick test_waiting_snapshot;
          Alcotest.test_case "stress invariant" `Quick test_stress_invariant;
        ] );
    ]
