(* Fault_net: the network fault injector.  Faults are checked both at
   the raw-transport level (deterministic, message by message) and
   through a full RPC client/server conversation (poisoning, retry,
   reconnection — the paths the chaos suite leans on). *)

module P = Sdb_pickle.Pickle
module Rpc = Sdb_rpc.Rpc
module Fault_net = Sdb_rpc.Fault_net
module Backoff = Sdb_rpc.Backoff

let check = Alcotest.check

let echo_handlers =
  [ Rpc.Server.handler ~meth:"echo" P.string P.string (fun s -> s) ]

(* An echo server over an inproc pair whose CLIENT side is wrapped
   against [ctl]; returns the wrapped transport and a stop function. *)
let wrapped_pair ?peer ctl =
  let client_t, server_t = Rpc.Inproc.pair () in
  let thread =
    Thread.create (fun () -> Rpc.Server.serve ~handlers:echo_handlers server_t) ()
  in
  let wrapped = Fault_net.wrap ctl ?peer client_t in
  let stop () =
    server_t.Rpc.Transport.close ();
    (try wrapped.Rpc.Transport.close () with Rpc.Rpc_error _ -> ());
    Thread.join thread
  in
  (wrapped, stop)

(* Echo is read-only: declared idempotent so clients built with a
   reconnect factory retry it after an injected transport failure. *)
let echo client s =
  Rpc.Client.call ~idempotent:true client ~meth:"echo" P.string P.string s

let test_passthrough () =
  let ctl = Fault_net.create () in
  let wrapped, stop = wrapped_pair ctl in
  let client = Rpc.Client.create wrapped in
  check Alcotest.string "clean echo" "hello" (echo client "hello");
  check Alcotest.string "clean echo 2" "world" (echo client "world");
  check Alcotest.bool "sends counted" true (Fault_net.ops ctl ~op:`Send >= 2);
  check Alcotest.bool "recvs counted" true (Fault_net.ops ctl ~op:`Recv >= 2);
  check Alcotest.int "nothing injected" 0 (Fault_net.injected ctl);
  Rpc.Client.close client;
  stop ()

let test_fail_nth_resets () =
  let ctl = Fault_net.create () in
  let wrapped, stop = wrapped_pair ctl in
  let client = Rpc.Client.create wrapped in
  check Alcotest.string "first call clean" "a" (echo client "a");
  (* The next send resets the connection. *)
  Fault_net.fail_nth ctl ~op:`Send ~n:1 ();
  (match echo client "b" with
  | _ -> Alcotest.fail "expected a connection reset"
  | exception Rpc.Rpc_error m ->
    check Alcotest.bool "reset message" true
      (m = Fault_net.reset_message
      || String.length m >= String.length Fault_net.reset_message));
  check Alcotest.bool "client poisoned" true (Rpc.Client.broken client);
  check Alcotest.bool "fault recorded" true (Fault_net.injected ctl >= 1);
  Rpc.Client.close client;
  stop ()

let test_reset_recovers_via_reconnect () =
  (* Resets wrapped in a reconnect factory: the idempotent call retries
     over a fresh (also wrapped) transport and succeeds. *)
  let ctl = Fault_net.create () in
  let stops = ref [] in
  let fresh () =
    let wrapped, stop = wrapped_pair ctl in
    stops := stop :: !stops;
    wrapped
  in
  let client =
    Rpc.Client.create ~retry:Rpc.default_retry ~reconnect:fresh (fresh ())
  in
  check Alcotest.string "before fault" "x" (echo client "x");
  Fault_net.fail_nth ctl ~op:`Send ~n:1 ();
  check Alcotest.string "retried over a fresh transport" "y" (echo client "y");
  check Alcotest.bool "healthy again" false (Rpc.Client.broken client);
  Rpc.Client.close client;
  List.iter (fun stop -> stop ()) !stops

let test_partition_and_heal () =
  let ctl = Fault_net.create () in
  let wrapped, stop = wrapped_pair ~peer:"b" ctl in
  let client = Rpc.Client.create ~deadline_s:0.1 wrapped in
  check Alcotest.string "reachable before" "1" (echo client "1");
  Fault_net.partition ctl "b";
  check Alcotest.bool "partitioned" true (Fault_net.partitioned ctl "b");
  (* Blackholed: the send vanishes, so the call dies on its deadline. *)
  (match echo client "2" with
  | _ -> Alcotest.fail "expected deadline under partition"
  | exception Rpc.Rpc_error _ -> ());
  Fault_net.heal ctl "b";
  check Alcotest.bool "healed" false (Fault_net.partitioned ctl "b");
  (* The old client desynced (poisoned by the deadline); a fresh one
     over the healed network works. *)
  let wrapped2, stop2 = wrapped_pair ~peer:"b" ctl in
  let client2 = Rpc.Client.create ~deadline_s:0.5 wrapped2 in
  check Alcotest.string "reachable after heal" "3" (echo client2 "3");
  Rpc.Client.close client;
  Rpc.Client.close client2;
  stop ();
  stop2 ()

let test_untagged_never_partitioned () =
  let ctl = Fault_net.create () in
  Fault_net.partition ctl "b";
  let wrapped, stop = wrapped_pair ctl in
  (* no ~peer *)
  let client = Rpc.Client.create ~deadline_s:0.5 wrapped in
  check Alcotest.string "untagged unaffected" "ok" (echo client "ok");
  Rpc.Client.close client;
  stop ()

let test_drop_is_silent () =
  let ctl = Fault_net.create () in
  let wrapped, stop = wrapped_pair ctl in
  let client = Rpc.Client.create ~deadline_s:0.1 wrapped in
  Fault_net.set_drop_rate ctl 1.0;
  (match echo client "gone" with
  | _ -> Alcotest.fail "expected the dropped request to time out"
  | exception Rpc.Rpc_error _ -> ());
  check Alcotest.bool "drop recorded" true (Fault_net.injected ctl >= 1);
  Fault_net.set_drop_rate ctl 0.0;
  Rpc.Client.close client;
  stop ()

let test_duplicate_desyncs_then_recovers () =
  (* A duplicated request produces two responses; the client reads the
     stale one on its next call, poisons itself, and — with a
     reconnect factory — recovers on retry. *)
  let ctl = Fault_net.create () in
  let stops = ref [] in
  let fresh () =
    let wrapped, stop = wrapped_pair ctl in
    stops := stop :: !stops;
    wrapped
  in
  let client =
    Rpc.Client.create ~deadline_s:1.0 ~retry:Rpc.default_retry ~reconnect:fresh
      (fresh ())
  in
  Fault_net.set_dup_rate ctl 1.0;
  check Alcotest.string "dup'd call still answers" "a" (echo client "a");
  Fault_net.set_dup_rate ctl 0.0;
  (* The duplicate's second response is still queued: the next call
     reads it, detects the desync, reconnects, and retries. *)
  check Alcotest.string "recovered from desync" "b" (echo client "b");
  check Alcotest.bool "dup recorded" true (Fault_net.injected ctl >= 1);
  Rpc.Client.close client;
  List.iter (fun stop -> stop ()) !stops

let test_reorder_at_transport_level () =
  (* RPC conversations are strictly serial, so reordering is visible
     only on raw pipelined sends: with rate 1 the first message is held
     and overtaken by the second. *)
  let ctl = Fault_net.create () in
  let a, b = Rpc.Inproc.pair () in
  let wa = Fault_net.wrap ctl a in
  Fault_net.set_reorder_rate ctl 1.0;
  wa.Rpc.Transport.send "first";
  (* "first" is held back; "second" is also eligible for holding, but
     releasing the previous hold happens on the next send. *)
  Fault_net.set_reorder_rate ctl 0.0;
  wa.Rpc.Transport.send "second";
  check Alcotest.string "second overtakes" "second" (b.Rpc.Transport.recv ());
  check Alcotest.string "held message follows" "first" (b.Rpc.Transport.recv ());
  wa.Rpc.Transport.close ();
  b.Rpc.Transport.close ()

let test_delay_slows_sends () =
  let ctl = Fault_net.create () in
  let wrapped, stop = wrapped_pair ctl in
  let client = Rpc.Client.create wrapped in
  Fault_net.set_delay ctl 0.05;
  let t0 = Sdb_util.Mono.now_s () in
  check Alcotest.string "delayed echo" "slow" (echo client "slow");
  let dt = Sdb_util.Mono.now_s () -. t0 in
  check Alcotest.bool "took at least the injected delay" true (dt >= 0.045);
  Fault_net.set_delay ctl 0.0;
  Rpc.Client.close client;
  stop ()

let test_seeded_determinism () =
  (* The same seed must inject the same faults on the same workload. *)
  let run seed =
    let ctl = Fault_net.create ~seed () in
    Fault_net.set_drop_rate ctl 0.5;
    let a, b = Rpc.Inproc.pair () in
    let wa = Fault_net.wrap ctl a in
    for i = 1 to 50 do
      wa.Rpc.Transport.send (string_of_int i)
    done;
    wa.Rpc.Transport.close ();
    b.Rpc.Transport.close ();
    Fault_net.injected ctl
  in
  check Alcotest.int "same seed, same injections" (run 42) (run 42);
  check Alcotest.bool "some but not all dropped" true
    (let n = run 42 in
     n > 0 && n < 50)

let test_clear_restores_clean_network () =
  let ctl = Fault_net.create () in
  Fault_net.set_drop_rate ctl 1.0;
  Fault_net.set_delay ctl 5.0;
  Fault_net.partition ctl "b";
  Fault_net.fail_nth ctl ~op:`Send ~n:1 ();
  Fault_net.clear ctl;
  check Alcotest.bool "partition cleared" false (Fault_net.partitioned ctl "b");
  let wrapped, stop = wrapped_pair ~peer:"b" ctl in
  let client = Rpc.Client.create ~deadline_s:0.5 wrapped in
  check Alcotest.string "clean after clear" "ok" (echo client "ok");
  check Alcotest.int "nothing injected after clear" 0 (Fault_net.injected ctl);
  Rpc.Client.close client;
  stop ()

let () =
  Alcotest.run "fault_net"
    [
      ( "faults",
        [
          Alcotest.test_case "clean passthrough" `Quick test_passthrough;
          Alcotest.test_case "fail_nth resets the connection" `Quick
            test_fail_nth_resets;
          Alcotest.test_case "reset recovers via reconnect" `Quick
            test_reset_recovers_via_reconnect;
          Alcotest.test_case "partition blackholes, heal restores" `Quick
            test_partition_and_heal;
          Alcotest.test_case "untagged transports never partitioned" `Quick
            test_untagged_never_partitioned;
          Alcotest.test_case "drop is silent until the deadline" `Quick
            test_drop_is_silent;
          Alcotest.test_case "duplicate delivery desyncs then recovers" `Quick
            test_duplicate_desyncs_then_recovers;
          Alcotest.test_case "reorder holds a message back" `Quick
            test_reorder_at_transport_level;
          Alcotest.test_case "delay slows sends" `Quick test_delay_slows_sends;
          Alcotest.test_case "seeded and deterministic" `Quick
            test_seeded_determinism;
          Alcotest.test_case "clear restores a clean network" `Quick
            test_clear_restores_clean_network;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "full jitter stays within the cap" `Quick (fun () ->
              let b =
                Backoff.start
                  { Backoff.initial_s = 0.1; multiplier = 2.0; max_s = 0.4; jitter = true }
              in
              for _ = 1 to 20 do
                let d = Backoff.next_s b in
                check Alcotest.bool "within [0, max)" true (d >= 0.0 && d < 0.4)
              done;
              check Alcotest.bool "base capped" true (Backoff.base_s b <= 0.4));
          Alcotest.test_case "no jitter is the deterministic ladder" `Quick
            (fun () ->
              let b =
                Backoff.start
                  { Backoff.initial_s = 0.1; multiplier = 2.0; max_s = 1.0; jitter = false }
              in
              check (Alcotest.float 1e-9) "1st" 0.1 (Backoff.next_s b);
              check (Alcotest.float 1e-9) "2nd" 0.2 (Backoff.next_s b);
              check (Alcotest.float 1e-9) "3rd" 0.4 (Backoff.next_s b);
              Backoff.reset b;
              check (Alcotest.float 1e-9) "reset restarts" 0.1 (Backoff.next_s b));
          Alcotest.test_case "budget refills at its rate" `Quick (fun () ->
              let budget = Backoff.Budget.create ~burst:2.0 ~rate_per_s:50.0 () in
              check Alcotest.bool "first" true (Backoff.Budget.try_spend budget);
              check Alcotest.bool "second" true (Backoff.Budget.try_spend budget);
              check Alcotest.bool "burst exhausted" false
                (Backoff.Budget.try_spend budget);
              check Alcotest.bool "denial counted" true
                (Backoff.Budget.denied budget >= 1);
              Thread.delay 0.1;
              check Alcotest.bool "refilled" true (Backoff.Budget.try_spend budget));
          Alcotest.test_case "unlimited never denies" `Quick (fun () ->
              for _ = 1 to 100 do
                check Alcotest.bool "spend" true
                  (Backoff.Budget.try_spend Backoff.Budget.unlimited)
              done);
        ] );
    ]
