(* sdb_lint's suite: each rule must fire on a seeded violation, honor
   its waiver attribute, and stay quiet on disciplined code.  The
   built-in self-test (what CI runs before trusting the gate) must
   pass, and the real tree must lint clean. *)

let check = Alcotest.check

let rules_of ~path src =
  Sdb_lint.lint_source ~path src
  |> List.map (fun f -> f.Sdb_lint.f_rule)
  |> List.sort_uniq compare

let test_unix_io () =
  check
    Alcotest.(list string)
    "flagged outside lib/storage" [ "unix-io" ]
    (rules_of ~path:"lib/core/x.ml"
       "let f path = Unix.openfile path [ Unix.O_RDWR ] 0o644");
  check
    Alcotest.(list string)
    "exempt inside lib/storage" []
    (rules_of ~path:"lib/storage/x.ml"
       "let f path = Unix.openfile path [ Unix.O_RDWR ] 0o644");
  check
    Alcotest.(list string)
    "waivable" []
    (rules_of ~path:"lib/rpc/x.ml"
       "let f path = (Unix.unlink path [@sdb.lint.allow \"unix-io: socket\"])")

let test_mutex_pairing () =
  check
    Alcotest.(list string)
    "unpaired lock flagged" [ "mutex-pairing" ]
    (rules_of ~path:"lib/core/x.ml" "let f m = Mutex.lock m; work ()");
  check
    Alcotest.(list string)
    "paired is clean" []
    (rules_of ~path:"lib/core/x.ml"
       "let f m = Mutex.lock m; work (); Mutex.unlock m");
  check
    Alcotest.(list string)
    "with_lock is clean" []
    (rules_of ~path:"lib/core/x.ml"
       "let f m = Sdb_check.Mu.with_lock m (fun () -> work ())");
  (* The pair must be on the same lock expression, not merely the same
     count of locks and unlocks. *)
  check
    Alcotest.(list string)
    "mismatched locks flagged" [ "mutex-pairing" ]
    (rules_of ~path:"lib/core/x.ml"
       "let f a b = Mutex.lock a; Mutex.unlock b")

let test_print_in_lib () =
  check
    Alcotest.(list string)
    "print in lib flagged" [ "print-in-lib" ]
    (rules_of ~path:"lib/util/x.ml" "let f () = print_endline \"hi\"");
  check
    Alcotest.(list string)
    "print in bin allowed" []
    (rules_of ~path:"bin/x.ml" "let f () = print_endline \"hi\"");
  check
    Alcotest.(list string)
    "sprintf is not printing" []
    (rules_of ~path:"lib/util/x.ml" "let f () = Printf.sprintf \"hi\"")

let test_global_mutable () =
  check
    Alcotest.(list string)
    "bare global ref flagged" [ "global-mutable" ]
    (rules_of ~path:"lib/util/x.ml" "let cache = ref 0\nlet get () = !cache");
  check
    Alcotest.(list string)
    "synchronized module is clean" []
    (rules_of ~path:"lib/util/x.ml"
       "let cache = ref 0\n\
        let m = Mutex.create ()\n\
        let get () = Mutex.lock m; let v = !cache in Mutex.unlock m; v");
  check
    Alcotest.(list string)
    "local ref is fine" []
    (rules_of ~path:"lib/util/x.ml"
       "let f () = let acc = ref 0 in incr acc; !acc")

let test_parse_error_is_a_finding () =
  match Sdb_lint.lint_source ~path:"lib/x.ml" "let let let" with
  | [ f ] -> check Alcotest.string "rule" "parse-error" f.Sdb_lint.f_rule
  | fs -> Alcotest.failf "expected one parse-error finding, got %d" (List.length fs)

let test_render () =
  match Sdb_lint.lint_source ~path:"lib/util/x.ml" "let f () = print_string \"x\"" with
  | [ f ] ->
    let s = Sdb_lint.render f in
    check Alcotest.bool "has location" true
      (String.length s > 0 && s.[0] <> '[')
  | _ -> Alcotest.fail "expected exactly one finding"

let test_self_test () =
  match Sdb_lint.self_test () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_tree_is_clean () =
  (* The acceptance bar: the shipped tree lints clean.  Resolve lib/
     and bin/ relative to the repo root (dune runs tests from a
     sandbox under _build, so walk up until dune-project). *)
  let rec find_root dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else find_root parent
  in
  match find_root (Sys.getcwd ()) with
  | None -> () (* sandboxed without source tree access: covered by CI *)
  | Some root ->
    let dirs =
      List.filter Sys.file_exists
        [ Filename.concat root "lib"; Filename.concat root "bin" ]
    in
    let findings = Sdb_lint.lint_dirs dirs in
    List.iter (fun f -> Printf.eprintf "%s\n" (Sdb_lint.render f)) findings;
    check Alcotest.int "tree findings" 0 (List.length findings)

let () =
  Helpers.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "unix-io" `Quick test_unix_io;
          Alcotest.test_case "mutex-pairing" `Quick test_mutex_pairing;
          Alcotest.test_case "print-in-lib" `Quick test_print_in_lib;
          Alcotest.test_case "global-mutable" `Quick test_global_mutable;
          Alcotest.test_case "parse error is a finding" `Quick
            test_parse_error_is_a_finding;
          Alcotest.test_case "render" `Quick test_render;
        ] );
      ( "gate",
        [
          Alcotest.test_case "self test" `Quick test_self_test;
          Alcotest.test_case "tree is clean" `Quick test_tree_is_clean;
        ] );
    ]
