(* Replication (§4): three name-server replicas, eager update
   propagation over RPC, a partition with later anti-entropy, and
   hard-error recovery by cloning a dead replica from a live peer.

   Run with:  dune exec examples/replication_demo.exe *)

module Mem = Sdb_storage.Mem_fs
module Ns = Sdb_nameserver.Nameserver
module Path = Sdb_nameserver.Name_path
module Rpc = Sdb_rpc.Rpc
module Proto = Sdb_rpc.Ns_protocol
module Replica = Sdb_replica.Replica
module Store = Sdb_checkpoint.Checkpoint_store

let p s = match Path.of_string s with Ok v -> v | Error e -> failwith e

type cell = {
  name : string;
  store : Mem.store;
  ns : Ns.t;
  replica : Replica.t;
  mutable links : (Rpc.Transport.t * Thread.t) list;
}

let make name seed =
  let store = Mem.create_store ~seed () in
  let ns = Ns.open_exn (Mem.fs store) in
  { name; store; ns; replica = Replica.create ~id:name ns; links = [] }

let connect a b =
  let client_t, server_t = Rpc.Inproc.pair () in
  let thread = Thread.create (fun () -> Proto.serve b.ns server_t) () in
  b.links <- (server_t, thread) :: b.links;
  Replica.add_peer a.replica ~id:b.name (Proto.Client.create client_t)

let cut cell =
  List.iter (fun (t, th) -> t.Rpc.Transport.close (); Thread.join th) cell.links;
  cell.links <- []

let show_peers who r =
  List.iter
    (fun pr ->
      Printf.printf "  %s -> %s: %s, backlog %d\n" who pr.Replica.peer_id
        (if pr.Replica.reachable then "reachable" else "UNREACHABLE")
        pr.Replica.backlog)
    (Replica.peers r)

let () =
  let a = make "alpha" 1 and b = make "beta" 2 and c = make "gamma" 3 in
  connect a b;
  connect a c;

  print_endline "== eager propagation ==";
  Replica.set_value a.replica (p "/svc/time") (Some "alpha:37");
  Replica.set_value a.replica (p "/svc/mail") (Some "beta:25");
  (* Delivery is asynchronous (commits never wait on the network);
     flush drains the outboxes before we inspect the peers. *)
  ignore (Replica.flush a.replica);
  Printf.printf "beta sees /svc/time  = %s\n"
    (Option.value (Ns.lookup b.ns (p "/svc/time")) ~default:"<missing>");
  Printf.printf "gamma sees /svc/mail = %s\n"
    (Option.value (Ns.lookup c.ns (p "/svc/mail")) ~default:"<missing>");
  Printf.printf "digests: alpha=beta %b, alpha=gamma %b\n"
    (Replica.digest a.ns = Replica.digest b.ns)
    (Replica.digest a.ns = Replica.digest c.ns);

  print_endline "== partition: beta goes down ==";
  cut b;
  Replica.set_value a.replica (p "/svc/news") (Some "gamma:119");
  Replica.set_value a.replica (p "/svc/ftp") (Some "alpha:21");
  (* flush returns false: beta's sender hit the dead link and parked
     the peer for anti-entropy; gamma still drained. *)
  Printf.printf "all peers drained: %b\n" (Replica.flush a.replica);
  show_peers "alpha" a.replica;
  Printf.printf "beta missed /svc/news: %b\n" (Ns.lookup b.ns (p "/svc/news") = None);

  print_endline "== heal: reconnect and anti-entropy ==";
  let client_t, server_t = Rpc.Inproc.pair () in
  let thread = Thread.create (fun () -> Proto.serve b.ns server_t) () in
  b.links <- (server_t, thread) :: b.links;
  Replica.reconnect a.replica ~id:"beta" (Proto.Client.create client_t);
  Replica.anti_entropy a.replica;
  Printf.printf "beta now has /svc/news = %s\n"
    (Option.value (Ns.lookup b.ns (p "/svc/news")) ~default:"<missing>");
  show_peers "alpha" a.replica;

  print_endline "== hard error on gamma: restore from alpha (§4) ==";
  (* Destroy gamma's current checkpoint on disk. *)
  Ns.checkpoint c.ns;
  let gen = (Ns.stats c.ns).Smalldb.generation in
  Ns.close c.ns;
  Mem.damage c.store ~file:(Store.checkpoint_file gen) ~offset:0 ~len:32;
  (match Ns.open_ (Mem.fs c.store) with
  | Error e -> Printf.printf "gamma cannot restart locally: %s\n" e
  | Ok _ -> print_endline "unexpected: local restart succeeded");
  (* Clone from alpha into a fresh store. *)
  let client_t2, server_t2 = Rpc.Inproc.pair () in
  let thread2 = Thread.create (fun () -> Proto.serve a.ns server_t2) () in
  a.links <- (server_t2, thread2) :: a.links;
  let fresh = Mem.create_store ~seed:99 () in
  (match Replica.clone_from (Proto.Client.create client_t2) (Mem.fs fresh) with
  | Error e -> Printf.printf "clone failed: %s\n" e
  | Ok gamma2 ->
    Printf.printf "gamma rebuilt from alpha: /svc/ftp = %s, digest match %b\n"
      (Option.value (Ns.lookup gamma2 (p "/svc/ftp")) ~default:"<missing>")
      (Replica.digest gamma2 = Replica.digest a.ns);
    Ns.close gamma2);

  Replica.shutdown a.replica;
  Replica.shutdown b.replica;
  cut a;
  cut b;
  print_endline "done"
