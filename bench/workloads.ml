(* Workload builders and measurement helpers shared by the experiments. *)

module Fs = Sdb_storage.Fs
module Mem = Sdb_storage.Mem_fs
module Ns = Sdb_nameserver.Nameserver
module Data = Sdb_nameserver.Ns_data
module Rng = Sdb_util.Rng
module Histogram = Sdb_util.Histogram
module Tablefmt = Sdb_util.Tablefmt

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

let fmt_ms = Tablefmt.fmt_ms
let fmt_bytes = Tablefmt.fmt_bytes

(* ------------------------------------------------------------------ *)
(* Name-server database builder                                        *)

(* Two-level namespace: /g<k>/n<i> -> 32-byte value; each entry weighs
   roughly 45 bytes of labels+value, so [entries_for_bytes] sizes a
   database to a target in-memory weight comparable to the paper's
   "1 megabyte database". *)
let bytes_per_entry = 45

let entries_for_bytes target = max 16 (target / bytes_per_entry)

let entry_path i = [ Printf.sprintf "g%03d" (i mod 64); Printf.sprintf "n%06d" i ]

let build_ns ?config ~entries ~seed () =
  let store = Mem.create_store ~seed () in
  let fs = Mem.fs store in
  let ns = Ns.open_exn ?config fs in
  let rng = Rng.create ~seed in
  let batch = ref [] in
  for i = 0 to entries - 1 do
    batch := Ns.Set_value (entry_path i, Some (Rng.string rng ~len:32)) :: !batch;
    if List.length !batch >= 512 then begin
      Ns.Db.update_batch (Ns.db ns) !batch;
      batch := []
    end
  done;
  if !batch <> [] then Ns.Db.update_batch (Ns.db ns) !batch;
  (* Start every experiment from a quiescent generation: checkpoint and
     reset counters so only the measured section is accounted. *)
  Ns.checkpoint ns;
  Fs.Counters.reset fs.Fs.counters;
  (store, fs, ns)

let random_path rng entries = entry_path (Rng.int rng entries)

let db_weight ns = Ns.Db.query (Ns.db ns) Data.pweight_bytes

(* ------------------------------------------------------------------ *)
(* KV store population (baselines)                                     *)

let kv_key i = Printf.sprintf "key%06d" i
let kv_value rng = Rng.string rng ~len:100

(* ------------------------------------------------------------------ *)
(* Output helpers                                                      *)

(* Machine-readable artifacts: every experiment that writes JSON goes
   through this one writer — rows are pre-rendered objects, the array
   framing (brackets, commas, trailing newline) lives here, so the
   per-experiment emitters cannot drift apart. *)
let write_json_rows file rows =
  let oc = open_out file in
  output_string oc "[\n";
  let n = List.length rows in
  List.iteri
    (fun i row ->
      output_string oc "  ";
      output_string oc row;
      if i < n - 1 then output_string oc ",";
      output_string oc "\n")
    rows;
  output_string oc "]\n";
  close_out oc

let section id title =
  Printf.printf "\n=== %s: %s ===\n" (String.uppercase_ascii id) title

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n" s) fmt

let paper fmt = Printf.ksprintf (fun s -> Printf.printf "  paper: %s\n" s) fmt
