(* The benchmark harness: regenerates every quantity the paper's
   evaluation reports (experiments E1..E13, see DESIGN.md / EXPERIMENTS.md).

   Each experiment prints a table of real measured values next to the
   1987-modelled values derived from operation counters (Costmodel) and
   the paper's own numbers.  Run everything:

     dune exec bench/main.exe

   Select experiments or shrink sizes:

     dune exec bench/main.exe -- --only e2,e7 --quick *)

module Fs = Sdb_storage.Fs
module Mem = Sdb_storage.Mem_fs
module P = Sdb_pickle.Pickle
module Ns = Sdb_nameserver.Nameserver
module Data = Sdb_nameserver.Ns_data
module Store = Sdb_checkpoint.Checkpoint_store
module Rng = Sdb_util.Rng
module Histogram = Sdb_util.Histogram
module Cost = Sdb_costmodel.Costmodel
module Metrics = Sdb_obs.Metrics
module Rpc = Sdb_rpc.Rpc
module Proto = Sdb_rpc.Ns_protocol
module Replica = Sdb_replica.Replica
module B = Sdb_baselines
open Workloads

let costs = Cost.microvax_1987

(* Bench owns stdout; the library only renders (sdb_lint print-in-lib). *)
module Tablefmt = struct
  include Sdb_util.Tablefmt

  let print ?align ~header rows = print_string (render ?align ~header rows)
end

(* Values sized so that one pickled update carries roughly the ~300
   bytes of parameters behind the paper's 22 ms pickle time. *)
let paper_value_len = 256

(* ------------------------------------------------------------------ *)
(* E1: enquiry latency                                                 *)

let e1 ~quick () =
  section "e1" "enquiry cost: pure virtual-memory lookup";
  let target = if quick then 256 * 1024 else 1 lsl 20 in
  let entries = entries_for_bytes target in
  let _store, fs, ns = build_ns ~entries ~seed:11 () in
  let rng = Rng.create ~seed:12 in
  let lookups = if quick then 50_000 else 200_000 in
  for _ = 1 to 1000 do
    ignore (Ns.lookup ns (random_path rng entries))
  done;
  let before = Fs.Counters.copy fs.Fs.counters in
  let (), elapsed_ms =
    time_ms (fun () ->
        for _ = 1 to lookups do
          ignore (Ns.lookup ns (random_path rng entries))
        done)
  in
  let d = Fs.Counters.diff ~after:fs.Fs.counters ~before in
  let mean_us = elapsed_ms *. 1000.0 /. float_of_int lookups in
  let model =
    Cost.model costs
      {
        Cost.explore_ops = 1;
        modify_ops = 0;
        pickle_ops = 0;
        pickled_bytes = 0;
        unpickle_ops = 0;
        unpickled_bytes = 0;
        disk = Fs.Counters.create ();
        rpc_round_trips = 0;
      }
  in
  Tablefmt.print
    ~header:
      [ "db weight"; "entries"; "lookups"; "mean"; "disk reads"; "model 1987"; "paper" ]
    [
      [
        fmt_bytes (db_weight ns);
        string_of_int entries;
        string_of_int lookups;
        Printf.sprintf "%.2f us" mean_us;
        string_of_int d.Fs.Counters.data_reads;
        fmt_ms model.Cost.total_model_ms;
        "5 ms";
      ];
    ];
  note "enquiries touch no disk structures: %d reads during %d lookups"
    d.Fs.Counters.data_reads lookups;
  paper "\"Enquiries take only the time necessary to access the virtual memory structure\""

(* ------------------------------------------------------------------ *)
(* E2: update cost breakdown                                           *)

let e2 ~quick () =
  section "e2" "update cost: explore + pickle + one log write + modify";
  let entries = entries_for_bytes (if quick then 256 * 1024 else 1 lsl 20) in
  let _store, fs, ns = build_ns ~entries ~seed:21 () in
  let rng = Rng.create ~seed:22 in
  let updates = if quick then 1_000 else 3_000 in
  let db = Ns.db ns in
  (* Start the registry from zero so its histograms cover exactly this
     experiment's updates (build_ns also commits updates). *)
  Metrics.reset ();
  let before_phase = (Ns.stats ns).Smalldb.phase in
  let snap = Cost.snapshot fs in
  let (), elapsed_ms =
    time_ms (fun () ->
        for _ = 1 to updates do
          let path = random_path rng entries in
          let value = Rng.string rng ~len:paper_value_len in
          (* The paper's step 1 explores the structure to verify
             preconditions; mirror it with a lookup. *)
          match
            Ns.Db.update_checked db
              ~precondition:(fun root ->
                ignore (Data.pfind root path);
                Ok ())
              (Ns.Set_value (path, Some value))
          with
          | Ok () -> ()
          | Error _ -> assert false
        done)
  in
  let after_phase = (Ns.stats ns).Smalldb.phase in
  let activity = Cost.since ~explore_ops:updates ~modify_ops:updates snap fs in
  let model = Cost.model costs activity in
  let per_phase name measured_s model_ms paper_ms =
    [
      name;
      Printf.sprintf "%.1f us" (measured_s *. 1e6 /. float_of_int updates);
      Printf.sprintf "%.1f ms" (model_ms /. float_of_int updates);
      paper_ms;
    ]
  in
  let d f = f after_phase -. f before_phase in
  Tablefmt.print
    ~header:[ "phase"; "measured/update"; "model 1987"; "paper" ]
    [
      per_phase "explore (verify)"
        (d (fun p -> p.Smalldb.verify_s))
        model.Cost.explore_model_ms "6 ms";
      per_phase "pickle parameters"
        (d (fun p -> p.Smalldb.pickle_s))
        model.Cost.pickle_model_ms "22 ms";
      per_phase "log write (commit)"
        (d (fun p -> p.Smalldb.log_s))
        model.Cost.disk_model_ms "20 ms";
      per_phase "modify memory"
        (d (fun p -> p.Smalldb.apply_s))
        model.Cost.modify_model_ms "6 ms";
      [
        "total";
        Printf.sprintf "%.1f us" (elapsed_ms *. 1000.0 /. float_of_int updates);
        Printf.sprintf "%.1f ms" (model.Cost.total_model_ms /. float_of_int updates);
        "54 ms";
      ];
    ];
  let pickle_share = model.Cost.pickle_model_ms /. model.Cost.total_model_ms *. 100.0 in
  (* The same phases as seen by the metrics registry: distributions,
     not just the means above. *)
  let registry_row phase =
    let s =
      Metrics.histogram_snapshot
        (Metrics.histogram "sdb_update_phase_seconds" ~labels:[ ("phase", phase) ])
    in
    let us v = Printf.sprintf "%.1f us" (v *. 1e6) in
    [
      phase; string_of_int s.Histogram.s_count; us s.Histogram.s_mean;
      us s.Histogram.s_p50; us s.Histogram.s_p99; us s.Histogram.s_max;
    ]
  in
  Tablefmt.print
    ~header:[ "phase (registry)"; "count"; "mean"; "p50"; "p99"; "max" ]
    (List.map registry_row [ "verify"; "pickle"; "log"; "apply" ]);
  note "one disk write + one fsync per update: %d writes, %d syncs for %d updates"
    activity.Cost.disk.Fs.Counters.data_writes activity.Cost.disk.Fs.Counters.syncs
    updates;
  note "pickling is %.0f%% of the modelled update cost" pickle_share;
  paper "\"about 40%% of the cost of an update is in PickleWrite\""

(* ------------------------------------------------------------------ *)
(* E3: checkpoint cost vs database size                                *)

let e3 ~quick () =
  section "e3" "checkpoint cost vs database size";
  let sizes =
    if quick then [ 64 * 1024; 256 * 1024 ]
    else [ 64 * 1024; 256 * 1024; 1 lsl 20; 4 * (1 lsl 20) ]
  in
  let rows =
    List.map
      (fun target ->
        let entries = entries_for_bytes target in
        let _store, fs, ns = build_ns ~entries ~seed:31 () in
        let before = (Ns.stats ns).Smalldb.phase in
        let snap = Cost.snapshot fs in
        let (), elapsed_ms = time_ms (fun () -> Ns.checkpoint ns) in
        let after = (Ns.stats ns).Smalldb.phase in
        let model = Cost.model costs (Cost.since snap fs) in
        let gen = (Ns.stats ns).Smalldb.generation in
        let blob = fs.Fs.file_size (Store.checkpoint_file gen) in
        [
          fmt_bytes (db_weight ns);
          string_of_int entries;
          fmt_bytes blob;
          fmt_ms elapsed_ms;
          fmt_ms ((after.Smalldb.ckpt_pickle_s -. before.Smalldb.ckpt_pickle_s) *. 1000.);
          fmt_ms ((after.Smalldb.ckpt_write_s -. before.Smalldb.ckpt_write_s) *. 1000.);
          Printf.sprintf "%.0f s (%.0f + %.0f)"
            (model.Cost.total_model_ms /. 1000.)
            (model.Cost.pickle_model_ms /. 1000.)
            (model.Cost.disk_model_ms /. 1000.);
        ])
      sizes
  in
  Tablefmt.print
    ~header:
      [ "db weight"; "entries"; "checkpoint"; "measured"; "pickle"; "disk"; "model 1987" ]
    rows;
  paper "a 1 MB checkpoint takes about one minute: 55 s pickling + 5 s disk writes"

(* ------------------------------------------------------------------ *)
(* E4: restart cost vs log length                                      *)

let e4 ~quick () =
  section "e4" "restart: read checkpoint + replay log";
  let target = if quick then 256 * 1024 else 1 lsl 20 in
  let entries = entries_for_bytes target in
  let log_lengths = if quick then [ 0; 100; 1000 ] else [ 0; 100; 1000; 5000 ] in
  let rows =
    List.map
      (fun loglen ->
        let _store, fs, ns = build_ns ~entries ~seed:41 () in
        let rng = Rng.create ~seed:42 in
        for _ = 1 to loglen do
          Ns.set_value ns (random_path rng entries)
            (Some (Rng.string rng ~len:paper_value_len))
        done;
        Ns.close ns;
        let snap = Cost.snapshot fs in
        let ns2, elapsed_ms = time_ms (fun () -> Ns.open_exn fs) in
        let model = Cost.model costs (Cost.since ~modify_ops:loglen snap fs) in
        let s = Ns.stats ns2 in
        let restore_ms = s.Smalldb.phase.Smalldb.restore_s *. 1000. in
        let replay_ms = s.Smalldb.phase.Smalldb.replay_s *. 1000. in
        let per_entry =
          if loglen = 0 then "-"
          else Printf.sprintf "%.1f us" (replay_ms *. 1000. /. float_of_int loglen)
        in
        Ns.close ns2;
        [
          string_of_int loglen;
          fmt_ms elapsed_ms;
          fmt_ms restore_ms;
          fmt_ms replay_ms;
          per_entry;
          Printf.sprintf "%.1f s" (model.Cost.total_model_ms /. 1000.);
        ])
      log_lengths
  in
  Tablefmt.print
    ~header:
      [ "log entries"; "restart"; "read ckpt"; "replay"; "replay/entry"; "model 1987" ]
    rows;
  paper "restart takes about 20 s to read the checkpoint plus about 20 ms per log entry"

(* ------------------------------------------------------------------ *)
(* E5: sustained update throughput                                     *)

let e5 ~quick () =
  section "e5" "sustained update throughput (and the group-commit ablation)";
  let entries = entries_for_bytes (256 * 1024) in
  let updates = if quick then 2_000 else 10_000 in
  let run batch =
    let _store, fs, ns = build_ns ~entries ~seed:51 () in
    let rng = Rng.create ~seed:52 in
    let db = Ns.db ns in
    let snap = Cost.snapshot fs in
    let (), elapsed_ms =
      time_ms (fun () ->
          if batch = 1 then
            for _ = 1 to updates do
              Ns.set_value ns (random_path rng entries)
                (Some (Rng.string rng ~len:paper_value_len))
            done
          else
            for _ = 1 to updates / batch do
              let group =
                List.init batch (fun _ ->
                    Ns.Set_value
                      (random_path rng entries, Some (Rng.string rng ~len:paper_value_len)))
              in
              Ns.Db.update_batch db group
            done)
    in
    let model =
      Cost.model costs (Cost.since ~explore_ops:updates ~modify_ops:updates snap fs)
    in
    let model_tps = float_of_int updates /. (model.Cost.total_model_ms /. 1000.) in
    [
      (if batch = 1 then "one commit per update"
       else Printf.sprintf "group commit x%d" batch);
      string_of_int updates;
      fmt_ms elapsed_ms;
      Printf.sprintf "%.0f/s" (float_of_int updates /. elapsed_ms *. 1000.);
      Printf.sprintf "%.1f/s" model_tps;
    ]
  in
  Tablefmt.print
    ~header:[ "mode"; "updates"; "elapsed"; "measured rate"; "model 1987 rate" ]
    [ run 1; run 10 ];
  paper
    "\"more than 15 transactions per second\"; the only faster schemes record \
     multiple commit records in a single log entry (the group-commit row)"

(* ------------------------------------------------------------------ *)
(* E6: remote access over RPC                                          *)

let e6 ~quick () =
  section "e6" "remote enquiry and update (simulated 8 ms round trip)";
  let entries = entries_for_bytes (64 * 1024) in
  let _store, _fs, ns = build_ns ~entries ~seed:61 () in
  (* 4 ms each way = the paper's 8 ms round-trip network cost. *)
  let client_t, server_t = Rpc.Inproc.pair ~delay_s:0.004 () in
  let server = Thread.create (fun () -> Proto.serve ns server_t) () in
  let client = Proto.Client.create client_t in
  let rng = Rng.create ~seed:62 in
  let n = if quick then 50 else 200 in
  let bench f iters =
    let h = Histogram.create () in
    for _ = 1 to iters do
      let (), ms = time_ms f in
      Histogram.record h ms
    done;
    h
  in
  let lookup_h =
    bench (fun () -> ignore (Proto.Client.lookup client (random_path rng entries))) n
  in
  let update_h =
    bench
      (fun () ->
        Proto.Client.set_value client (random_path rng entries)
          (Some (Rng.string rng ~len:paper_value_len)))
      (n / 2)
  in
  Tablefmt.print
    ~header:[ "operation"; "measured mean"; "measured p99"; "model 1987"; "paper" ]
    [
      [
        "remote enquiry";
        fmt_ms (Histogram.mean lookup_h);
        fmt_ms (Histogram.percentile lookup_h 99.);
        Printf.sprintf "%.0f ms" (costs.Cost.explore_ms +. costs.Cost.rpc_round_trip_ms);
        "13 ms";
      ];
      [
        "remote update";
        fmt_ms (Histogram.mean update_h);
        fmt_ms (Histogram.percentile update_h 99.);
        "62 ms";
        "62 ms";
      ];
    ];
  note "measured values carry only the simulated 8 ms network; modern local costs are ~us";
  paper "enquiry 13 ms, update 62 ms elapsed = local cost + 8 ms round trip";
  Proto.Client.close client;
  server_t.Rpc.Transport.close ();
  Thread.join server

(* ------------------------------------------------------------------ *)
(* E7: the S2 alternative techniques                                   *)

let measure_technique (module Db : B.Kv_intf.S) size =
  let store = Mem.create_store ~seed:71 () in
  let fs = Mem.fs store in
  let db = match Db.open_ fs with Ok d -> d | Error e -> failwith e in
  let rng = Rng.create ~seed:72 in
  for i = 0 to size - 1 do
    Db.set db (kv_key i) (kv_value rng)
  done;
  (* Give checkpoint-based designs their quiescent state, as a long-
     running server would have. *)
  Db.quiesce db;
  let n_updates = 50 in
  let before = Fs.Counters.copy fs.Fs.counters in
  let snap = Cost.snapshot fs in
  let (), upd_ms =
    time_ms (fun () ->
        for _ = 1 to n_updates do
          Db.set db (kv_key (Rng.int rng size)) (kv_value rng)
        done)
  in
  let d = Fs.Counters.diff ~after:fs.Fs.counters ~before in
  let model =
    Cost.model costs (Cost.since ~explore_ops:n_updates ~modify_ops:n_updates snap fs)
  in
  let n_gets = 500 in
  let before_gets = Fs.Counters.copy fs.Fs.counters in
  let (), get_ms =
    time_ms (fun () ->
        for _ = 1 to n_gets do
          ignore (Db.get db (kv_key (Rng.int rng size)))
        done)
  in
  let dg = Fs.Counters.diff ~after:fs.Fs.counters ~before:before_gets in
  Db.close db;
  [
    Db.technique;
    Printf.sprintf "%.1f" (float_of_int d.Fs.Counters.data_writes /. float_of_int n_updates);
    Printf.sprintf "%.1f" (float_of_int d.Fs.Counters.syncs /. float_of_int n_updates);
    fmt_bytes (d.Fs.Counters.bytes_written / n_updates);
    Printf.sprintf "%.0f us" (upd_ms *. 1000. /. float_of_int n_updates);
    Printf.sprintf "%.0f ms" (model.Cost.total_model_ms /. float_of_int n_updates);
    Printf.sprintf "%.1f" (float_of_int dg.Fs.Counters.data_reads /. float_of_int n_gets);
    Printf.sprintf "%.1f us" (get_ms *. 1000. /. float_of_int n_gets);
  ]

let e7 ~quick () =
  section "e7" "techniques compared: disk cost per update and per enquiry";
  let sizes = if quick then [ 100; 1000 ] else [ 100; 1000; 5000 ] in
  List.iter
    (fun size ->
      Printf.printf "\n-- %d keys, 100-byte values --\n" size;
      Tablefmt.print
        ~header:
          [
            "technique"; "wr/upd"; "sync/upd"; "bytes/upd"; "upd (meas)"; "upd (1987)";
            "rd/get"; "get (meas)";
          ]
        [
          measure_technique (module B.Textfile_db) size;
          measure_technique (module B.Adhoc_db) size;
          measure_technique (module B.Atomic_db) size;
          measure_technique (module B.Smalldb_kv) size;
        ])
    sizes;
  paper
    "text files rewrite everything; ad-hoc schemes need ~1 write but are fragile; \
     atomic commit needs 2 writes (\"a factor of two worse\"); this design: 1 write, \
     enquiries never touch the disk"

(* ------------------------------------------------------------------ *)
(* E8: checkpoint frequency trade-off                                  *)

let e8 ~quick () =
  section "e8" "checkpoint frequency: disk traffic vs restart time";
  let entries = entries_for_bytes (64 * 1024) in
  let stream = if quick then 2_000 else 5_000 in
  let policies =
    [
      ("every 100 updates", Smalldb.Every_n_updates 100);
      ("every 500 updates", Smalldb.Every_n_updates 500);
      ("every 2000 updates", Smalldb.Every_n_updates 2000);
      ("never (manual only)", Smalldb.Manual);
    ]
  in
  let rows =
    List.map
      (fun (label, policy) ->
        let config = { Smalldb.default_config with policy } in
        let _store, fs, ns0 = build_ns ~entries ~seed:81 () in
        (* Reopen under the policy so its counter starts at zero. *)
        Ns.close ns0;
        let ns = Ns.open_exn ~config fs in
        let rng = Rng.create ~seed:82 in
        Fs.Counters.reset fs.Fs.counters;
        for _ = 1 to stream do
          Ns.set_value ns (random_path rng entries)
            (Some (Rng.string rng ~len:paper_value_len))
        done;
        let s = Ns.stats ns in
        let traffic = fs.Fs.counters.Fs.Counters.bytes_written in
        Ns.close ns;
        let snap = Cost.snapshot fs in
        let ns2, restart_ms = time_ms (fun () -> Ns.open_exn fs) in
        let model =
          Cost.model costs (Cost.since ~modify_ops:s.Smalldb.log_entries snap fs)
        in
        Ns.close ns2;
        [
          label;
          string_of_int s.Smalldb.checkpoints_written;
          fmt_bytes traffic;
          string_of_int s.Smalldb.log_entries;
          fmt_ms restart_ms;
          Printf.sprintf "%.1f s" (model.Cost.total_model_ms /. 1000.);
        ])
      policies
  in
  Tablefmt.print
    ~header:
      [
        "checkpoint policy"; "ckpts"; "disk traffic"; "log at crash"; "restart (meas)";
        "restart (1987)";
      ]
    rows;
  paper
    "\"The implementor can trade off between the time required for a restart and \
     the availability for updates by deciding how often to make a checkpoint\""

(* ------------------------------------------------------------------ *)
(* E9: the three-mode lock never blocks enquiries on disk writes       *)

let slow_sync_fs fs delay =
  let wrap w =
    {
      w with
      Fs.w_sync =
        (fun () ->
          Thread.delay delay;
          w.Fs.w_sync ());
    }
  in
  {
    fs with
    Fs.create = (fun name -> wrap (fs.Fs.create name));
    open_append = (fun name -> wrap (fs.Fs.open_append name));
  }

let e9 ~quick () =
  section "e9" "reader latency while updates hit a slow disk (5 ms fsync)";
  let updates = if quick then 60 else 150 in
  let run coarse =
    let store = Mem.create_store ~seed:91 () in
    let fs = slow_sync_fs (Mem.fs store) 0.005 in
    let db = B.Smalldb_kv.Db.open_exn fs in
    let giant_lock = Mutex.create () in
    let locked f =
      if coarse then begin
        Mutex.lock giant_lock;
        Fun.protect ~finally:(fun () -> Mutex.unlock giant_lock) f
      end
      else f ()
    in
    let h = Histogram.create () in
    let stalled = ref 0 in
    let stop = ref false in
    let reader =
      Thread.create
        (fun () ->
          while not !stop do
            let (), ms =
              time_ms (fun () ->
                  locked (fun () -> ignore (B.Smalldb_kv.Db.query db Hashtbl.length)))
            in
            Histogram.record h ms;
            if ms >= 1.0 then incr stalled;
            Thread.yield ()
          done)
        ()
    in
    let (), writer_ms =
      time_ms (fun () ->
          for i = 1 to updates do
            locked (fun () ->
                B.Smalldb_kv.Db.update db (B.Smalldb_kv.Set (kv_key i, "v")))
          done)
    in
    stop := true;
    Thread.join reader;
    B.Smalldb_kv.Db.close db;
    [
      (if coarse then "exclusive for whole update"
       else "paper locks (update, then exclusive)");
      Printf.sprintf "%.0f/s" (float_of_int updates /. writer_ms *. 1000.);
      string_of_int (Histogram.count h);
      Printf.sprintf "%.1f us" (Histogram.mean h *. 1000.);
      string_of_int !stalled;
      Printf.sprintf "%.2f ms" (Histogram.max h);
    ]
  in
  Tablefmt.print
    ~header:
      [ "locking"; "update rate"; "reads"; "read mean"; "reads stalled >1ms"; "read max" ]
    [ run false; run true ];
  paper
    "\"these rules never exclude enquiry operations during disk transfers, only \
     during virtual memory operations\""

(* ------------------------------------------------------------------ *)
(* E10: transient-failure sweep                                        *)

module CrashApp = struct
  type state = (string, string) Hashtbl.t
  type update = Set of string * string

  let name = "bench-crash"
  let codec_state = P.hashtbl P.string P.string

  let codec_update =
    P.conv ~name:"bench-crash.update"
      (fun (Set (k, v)) -> (k, v))
      (fun (k, v) -> Set (k, v))
      (P.pair P.string P.string)

  let init () = Hashtbl.create 16

  let apply st (Set (k, v)) =
    Hashtbl.replace st k v;
    st
end

module CrashDb = Smalldb.Make (CrashApp)

let e10 ~quick () =
  section "e10" "crash injection at every disk operation";
  ignore quick;
  let n_updates = 12 in
  let run_mode mode mode_name =
    let points = ref 0 and exact = ref 0 and inflight = ref 0 in
    let lost = ref 0 and phantom = ref 0 and torn_tails = ref 0 in
    let k = ref 1 in
    let continue = ref true in
    while !continue do
      let store = Mem.create_store ~seed:(1000 + !k) () in
      let fs = Mem.fs store in
      let committed = ref 0 in
      let crashed = ref false in
      (try
         let db = CrashDb.open_exn fs in
         Mem.set_crash_after store ~ops:!k ~mode;
         for i = 1 to n_updates do
           CrashDb.update db (CrashApp.Set (Printf.sprintf "%04d" i, "v"));
           incr committed;
           if i mod 5 = 0 then CrashDb.checkpoint db
         done;
         Mem.disarm_crash store
       with Mem.Crash -> crashed := true);
      Mem.disarm_crash store;
      if not !crashed then continue := false
      else begin
        incr points;
        let db = CrashDb.open_exn fs in
        let n = CrashDb.query db Hashtbl.length in
        let r = (CrashDb.stats db).Smalldb.recovery in
        if r.Smalldb.log_tail_discarded then incr torn_tails;
        if n < !committed then incr lost
        else if n > !committed + 1 then incr phantom
        else if n = !committed then incr exact
        else incr inflight;
        CrashDb.close db
      end;
      incr k
    done;
    [
      mode_name;
      string_of_int !points;
      string_of_int !exact;
      string_of_int !inflight;
      string_of_int !torn_tails;
      string_of_int !lost;
      string_of_int !phantom;
    ]
  in
  Tablefmt.print
    ~header:
      [
        "crash mode"; "points"; "exact"; "in-flight kept"; "torn tails"; "LOST"; "PHANTOM";
      ]
    [ run_mode Mem.Clean "clean"; run_mode Mem.Torn "torn pages" ];
  paper
    "\"if we crash before the write occurs on the disk, the update is not visible \
     after a restart; if we crash after the write completes, the entire update \
     will be completed after a restart\" -- LOST and PHANTOM must be zero"

(* ------------------------------------------------------------------ *)
(* E11: hard errors                                                    *)

let e11 ~quick () =
  section "e11" "hard errors: damaged media and the recovery options";
  ignore quick;
  let rows = ref [] in
  let add scenario outcome = rows := [ scenario; outcome ] :: !rows in
  (* (a) damaged log entry, Skip_damaged *)
  let () =
    let config = { Smalldb.default_config with log_recovery = `Skip_damaged } in
    let store = Mem.create_store ~seed:111 () in
    let fs = Mem.fs store in
    let db = CrashDb.open_exn ~config fs in
    for i = 1 to 5 do
      CrashDb.update db (CrashApp.Set (Printf.sprintf "%d" i, String.make 2000 'x'))
    done;
    CrashDb.close db;
    Mem.damage store ~file:(Store.log_file 0) ~offset:2500 ~len:64;
    match CrashDb.open_ ~config fs with
    | Ok db2 ->
      let r = (CrashDb.stats db2).Smalldb.recovery in
      add "damaged log entry, skip-damaged policy"
        (Printf.sprintf "recovered; %d replayed, %d skipped" r.Smalldb.replayed
           r.Smalldb.skipped_damaged);
      CrashDb.close db2
    | Error e -> add "damaged log entry, skip-damaged policy" ("FAILED: " ^ e)
  in
  (* (b) damaged checkpoint with retained previous generation *)
  let () =
    let config = { Smalldb.default_config with retain_previous = true } in
    let store = Mem.create_store ~seed:112 () in
    let fs = Mem.fs store in
    let db = CrashDb.open_exn ~config fs in
    for i = 1 to 5 do
      CrashDb.update db (CrashApp.Set (string_of_int i, "v"))
    done;
    CrashDb.checkpoint db;
    for i = 6 to 8 do
      CrashDb.update db (CrashApp.Set (string_of_int i, "v"))
    done;
    CrashDb.close db;
    Mem.damage store ~file:(Store.checkpoint_file 1) ~offset:8 ~len:16;
    match CrashDb.open_ ~config fs with
    | Ok db2 ->
      let n = CrashDb.query db2 Hashtbl.length in
      add "damaged checkpoint, previous generation retained"
        (Printf.sprintf "recovered all %d updates via previous ckpt + both logs" n);
      CrashDb.close db2
    | Error e -> add "damaged checkpoint, previous generation retained" ("FAILED: " ^ e)
  in
  (* (c) damaged checkpoint without retention *)
  let () =
    let store = Mem.create_store ~seed:113 () in
    let fs = Mem.fs store in
    let db = CrashDb.open_exn fs in
    CrashDb.update db (CrashApp.Set ("k", "v"));
    CrashDb.checkpoint db;
    CrashDb.close db;
    Mem.damage store ~file:(Store.checkpoint_file 1) ~offset:4 ~len:8;
    match CrashDb.open_ fs with
    | Ok _ -> add "damaged checkpoint, no retention" "UNEXPECTEDLY recovered"
    | Error _ ->
      add "damaged checkpoint, no retention"
        "local recovery refused; restore from replica/backup"
  in
  (* (d) replica restore *)
  let () =
    let store = Mem.create_store ~seed:114 () in
    let ns = Ns.open_exn (Mem.fs store) in
    Ns.set_value ns [ "svc"; "a" ] (Some "1");
    Ns.set_value ns [ "svc"; "b" ] (Some "2");
    let client_t, server_t = Rpc.Inproc.pair () in
    let th = Thread.create (fun () -> Proto.serve ns server_t) () in
    let client = Proto.Client.create client_t in
    let fresh = Mem.create_store ~seed:115 () in
    (match Replica.clone_from client (Mem.fs fresh) with
    | Ok cloned ->
      let same = Replica.digest cloned = Replica.digest ns in
      add "replica restored from a peer"
        (if same then "clone digest matches source" else "DIGEST MISMATCH");
      Ns.close cloned
    | Error e -> add "replica restored from a peer" ("FAILED: " ^ e));
    Proto.Client.close client;
    server_t.Rpc.Transport.close ();
    Thread.join th
  in
  Tablefmt.print
    ~align:[ Tablefmt.Left; Tablefmt.Left ]
    ~header:[ "scenario"; "outcome" ]
    (List.rev !rows);
  paper
    "recovery from a hard error in the log: ignore the damaged entry; in the \
     checkpoint: previous checkpoint + both logs; or restore from another replica"

(* ------------------------------------------------------------------ *)
(* E12: disk space requirement                                         *)

let e12 ~quick () =
  section "e12" "disk space: checkpoints, log, and the retention option";
  let entries = entries_for_bytes (if quick then 64 * 1024 else 256 * 1024) in
  let run retain =
    let config = { Smalldb.default_config with retain_previous = retain } in
    let store, fs, ns = build_ns ~config ~entries ~seed:121 () in
    let rng = Rng.create ~seed:122 in
    for _ = 1 to 300 do
      Ns.set_value ns (random_path rng entries)
        (Some (Rng.string rng ~len:paper_value_len))
    done;
    Ns.checkpoint ns;
    for _ = 1 to 100 do
      Ns.set_value ns (random_path rng entries)
        (Some (Rng.string rng ~len:paper_value_len))
    done;
    let live = db_weight ns in
    let files = Store.disk_files fs in
    let total = Mem.total_bytes store in
    let ckpt_size =
      List.fold_left
        (fun acc (name, size) ->
          if String.length name > 10 && String.sub name 0 10 = "checkpoint" then
            max acc size
          else acc)
        0 files
    in
    Ns.close ns;
    [
      (if retain then "retain previous generation" else "minimal (paper default)");
      string_of_int (List.length files);
      fmt_bytes total;
      fmt_bytes live;
      Printf.sprintf "%.1fx" (float_of_int total /. float_of_int live);
      fmt_bytes (total + ckpt_size);
    ]
  in
  Tablefmt.print
    ~header:
      [
        "configuration"; "files"; "on disk"; "live data"; "overhead";
        "peak (during switch)";
      ]
    [ run false; run true ];
  paper
    "\"the total requirement consists of the virtual memory image, two copies of \
     the checkpoint and the log file\"; one extra checkpoint+log for hard errors"

(* ------------------------------------------------------------------ *)
(* E13: simplicity (source line counts)                                *)

let count_lines dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    let total = ref 0 in
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli" then begin
          let ic = open_in (Filename.concat dir f) in
          (try
             while true do
               ignore (input_line ic);
               incr total
             done
           with End_of_file -> ());
          close_in ic
        end)
      (Sys.readdir dir);
    Some !total
  end
  else None

let e13 ~quick () =
  section "e13" "simplicity: source lines vs the paper's implementation";
  ignore quick;
  let root =
    List.find_opt
      (fun d -> Sys.file_exists (Filename.concat d "lib"))
      [ "."; ".."; "../.."; "../../.." ]
  in
  match root with
  | None -> note "source tree not found from %s; skipping" (Sys.getcwd ())
  | Some root ->
    let lib d = count_lines (Filename.concat root ("lib/" ^ d)) in
    let sum parts =
      List.fold_left
        (fun acc d ->
          match (acc, lib d) with Some a, Some b -> Some (a + b) | _ -> None)
        (Some 0) parts
    in
    let row label parts paper_count =
      [
        label;
        (match sum parts with Some n -> string_of_int n | None -> "?");
        paper_count;
      ]
    in
    Tablefmt.print
      ~align:[ Tablefmt.Left; Tablefmt.Right; Tablefmt.Right ]
      ~header:[ "component"; "this repo (ml+mli)"; "paper (Modula-2+)" ]
      [
        row "checkpoint + log package" [ "wal"; "checkpoint"; "core" ] "638";
        row "name server semantics" [ "nameserver" ] "1404";
        row "pickle package" [ "pickle" ] "1648";
        row "RPC + stubs" [ "rpc" ] "663 + 622";
        row "locking" [ "vlock" ] "(in the 638)";
      ];
    note "interface files double as documentation; the paper counts implementation only";
    paper
      "\"The package for checkpoints and logs ... was implemented by one programmer \
       in about three weeks\""

(* ------------------------------------------------------------------ *)
(* E14: the S7 extension -- partitioned checkpoints over a shared log  *)

module MultiCrashDb = Sdb_multidb.Multidb.Make (CrashApp)
module Multidb = Sdb_multidb.Multidb

let e14 ~quick () =
  section "e14"
    "partitioned checkpoints (the S7 proposal) vs one monolithic checkpoint";
  let keys = if quick then 4_000 else 16_000 in
  let stream = if quick then 2_000 else 4_000 in
  let debt = 1_000 in
  (* Both designs keep the worst-case replay debt at [debt] updates:
     the monolith checkpoints everything every [debt] updates; the
     partitioned store checkpoints one of its P partitions every
     [debt]/P updates. *)
  let value = String.make 100 'v' in
  let run_mono () =
    let store = Mem.create_store ~seed:141 () in
    let fs = Mem.fs store in
    let db = CrashDb.open_exn fs in
    for i = 0 to keys - 1 do
      CrashDb.update db (CrashApp.Set (kv_key i, value))
    done;
    CrashDb.checkpoint db;
    Fs.Counters.reset fs.Fs.counters;
    let blackouts = Histogram.create () in
    let model_blackouts = Histogram.create () in
    let rng = Rng.create ~seed:142 in
    for i = 1 to stream do
      CrashDb.update db (CrashApp.Set (kv_key (Rng.int rng keys), value));
      if i mod debt = 0 then begin
        let snap = Cost.snapshot fs in
        let (), ms = time_ms (fun () -> CrashDb.checkpoint db) in
        Histogram.record blackouts ms;
        Histogram.record model_blackouts
          (Cost.model costs (Cost.since snap fs)).Cost.total_model_ms
      end
    done;
    let traffic = fs.Fs.counters.Fs.Counters.bytes_written in
    CrashDb.close db;
    let _db2, restart_ms = time_ms (fun () -> CrashDb.open_exn fs) in
    (blackouts, model_blackouts, traffic, restart_ms)
  in
  let run_multi partitions =
    let store = Mem.create_store ~seed:143 () in
    let fs = Mem.fs store in
    let config = { Multidb.default_config with log_switch_bytes = 256 * 1024 } in
    let db = MultiCrashDb.open_exn ~config ~partitions fs in
    for i = 0 to keys - 1 do
      MultiCrashDb.update db ~partition:(i mod partitions)
        (CrashApp.Set (kv_key i, value))
    done;
    MultiCrashDb.checkpoint_all db;
    Fs.Counters.reset fs.Fs.counters;
    let blackouts = Histogram.create () in
    let model_blackouts = Histogram.create () in
    let rng = Rng.create ~seed:144 in
    for i = 1 to stream do
      let key = Rng.int rng keys in
      MultiCrashDb.update db ~partition:(key mod partitions)
        (CrashApp.Set (kv_key key, value));
      if i mod (debt / partitions) = 0 then begin
        let snap = Cost.snapshot fs in
        let (), ms = time_ms (fun () -> MultiCrashDb.checkpoint_next db) in
        Histogram.record blackouts ms;
        Histogram.record model_blackouts
          (Cost.model costs (Cost.since snap fs)).Cost.total_model_ms
      end
    done;
    let traffic = fs.Fs.counters.Fs.Counters.bytes_written in
    MultiCrashDb.close db;
    let db2, restart_ms =
      time_ms (fun () -> MultiCrashDb.open_exn ~config ~partitions fs)
    in
    MultiCrashDb.close db2;
    (blackouts, model_blackouts, traffic, restart_ms)
  in
  let row label (blackouts, model_blackouts, traffic, restart_ms) =
    [
      label;
      string_of_int (Histogram.count blackouts);
      fmt_ms (Histogram.mean blackouts);
      fmt_ms (Histogram.max blackouts);
      Printf.sprintf "%.1f s" (Histogram.mean model_blackouts /. 1000.);
      fmt_bytes traffic;
      fmt_ms restart_ms;
    ]
  in
  Tablefmt.print
    ~header:
      [
        "design"; "ckpt events"; "blackout mean"; "blackout max"; "blackout 1987";
        "disk traffic"; "restart";
      ]
    [ row "monolithic (the paper)" (run_mono ());
      row "8 partitions, shared log" (run_multi 8) ];
  note
    "equal replay-debt bound (%d updates): the partitioned store pays the same      total checkpoint traffic in 8x more, 8x shorter update blackouts" debt;
  paper
    "S7: many larger databases could be handled by considering them as multiple \
     separate databases for the purpose of writing checkpoints, with a single \
     log file and more complicated rules for flushing the log"

(* ------------------------------------------------------------------ *)
(* E15: update availability during a checkpoint                        *)

module StrMap = Map.Make (String)

module MapApp = struct
  type state = string StrMap.t
  type update = Set of string * string

  let name = "bench-map"

  let codec_state =
    P.conv ~name:"bench-map.state"
      (fun m -> StrMap.bindings m)
      (fun bindings -> StrMap.of_seq (List.to_seq bindings))
      (P.list (P.pair P.string P.string))

  let codec_update =
    P.conv ~name:"bench-map.update"
      (fun (Set (k, v)) -> (k, v))
      (fun (k, v) -> Set (k, v))
      (P.pair P.string P.string)

  let init () = StrMap.empty
  let apply st (Set (k, v)) = StrMap.add k v st
end

module MapDb = Smalldb.Make (MapApp)

let e15 ~quick () =
  section "e15"
    "extension: update availability while checkpointing (blocking vs fuzzy)";
  let keys = if quick then 20_000 else 60_000 in
  let run concurrent =
    let store = Mem.create_store ~seed:151 () in
    let fs = Mem.fs store in
    let db = MapDb.open_exn fs in
    for i = 0 to keys - 1 do
      MapDb.update db (MapApp.Set (kv_key i, String.make 48 'x'))
    done;
    (* A writer thread measures its own per-update latency while the
       main thread checkpoints. *)
    let stalls = Histogram.create () in
    let stop = ref false in
    let during = ref 0 in
    (* Throttled to ~1000 updates/s: the interesting regime is a modest
       update rate against a long checkpoint, as in the paper (10/s
       against a one-minute pickle). *)
    let writer =
      Thread.create
        (fun () ->
          let i = ref 0 in
          while not !stop do
            let (), ms =
              time_ms (fun () ->
                  MapDb.update db (MapApp.Set (Printf.sprintf "live%d" !i, "v")))
            in
            incr i;
            incr during;
            Histogram.record stalls ms;
            Thread.delay 0.0002
          done)
        ()
    in
    Thread.delay 0.01;
    (* Several checkpoints so the writer reliably overlaps them. *)
    let (), ckpt_ms =
      time_ms (fun () ->
          for _ = 1 to 5 do
            if concurrent then MapDb.checkpoint_concurrent db
            else MapDb.checkpoint db
          done)
    in
    let ckpt_ms = ckpt_ms /. 5.0 in
    stop := true;
    Thread.join writer;
    let lsn = (MapDb.stats db).Smalldb.lsn in
    MapDb.close db;
    (* Recovery still sees everything. *)
    let db2 = MapDb.open_exn fs in
    assert ((MapDb.stats db2).Smalldb.lsn = lsn);
    MapDb.close db2;
    [
      (if concurrent then "fuzzy (checkpoint_concurrent)" else "blocking (the paper)");
      fmt_ms ckpt_ms;
      string_of_int !during;
      fmt_ms (Histogram.max stalls);
      fmt_ms (Histogram.percentile stalls 99.);
    ]
  in
  Tablefmt.print
    ~header:
      [ "checkpoint"; "duration"; "updates during run"; "max update stall"; "p99 stall" ]
    [ run false; run true ];
  note
    "the fuzzy checkpoint pickles with no lock held; updates stall only for the      brief log hand-over (and on 1987 hardware: the full pickle minute vs a blink)";
  paper
    "S7 limitation: the time required for making a checkpoint, when updates are \
     excluded -- this ablation removes that exclusion for immutable-state apps"

(* ------------------------------------------------------------------ *)
(* E16: group commit under concurrent updaters                         *)

module Fault = Sdb_storage.Fault_fs

(* Machine-readable results, written by [--json FILE] so CI can keep a
   throughput baseline artifact.  Each entry is a rendered JSON object. *)
let json_rows : string list ref = ref []
let json_add row = json_rows := row :: !json_rows

let write_json file =
  write_json_rows file (List.rev !json_rows);
  Printf.printf "\njson results written to %s\n" file

let e16 ~quick () =
  section "e16"
    "group commit: concurrent updaters share one log write and one fsync";
  (* A simulated 1 ms fsync stands in for a real disk's cache flush;
     reads and writes stay fast, so the run isolates what batching the
     commit point buys.  Solo mode pays one fsync per update; grouped,
     every updater parked behind the leader rides the same fsync. *)
  let total = if quick then 192 else 960 in
  let value = String.make 64 'v' in
  let run ~threads ~group =
    let store = Mem.create_store ~seed:(1600 + threads) () in
    let ctl, ffs = Fault.wrap (Mem.fs store) in
    Fault.set_latency ctl ~op:`Sync 0.001;
    let config = { Smalldb.default_config with group_commit = group } in
    let db = CrashDb.open_exn ~config ffs in
    Metrics.reset ();
    let per_thread = total / threads in
    let (), ms =
      time_ms (fun () ->
          let ths =
            List.init threads (fun tid ->
                Thread.create
                  (fun () ->
                    for i = 0 to per_thread - 1 do
                      CrashDb.update db
                        (CrashApp.Set (Printf.sprintf "t%d-%05d" tid i, value))
                    done)
                  ())
          in
          List.iter Thread.join ths)
    in
    let syncs = Metrics.counter_value (Metrics.counter "sdb_wal_syncs_total") in
    let updates = Metrics.counter_value (Metrics.counter "sdb_updates_total") in
    CrashDb.close db;
    let n = threads * per_thread in
    let rate = float_of_int n /. (ms /. 1000.) in
    let spu = float_of_int syncs /. float_of_int (max 1 updates) in
    (rate, spu)
  in
  let combos =
    List.concat_map (fun t -> [ (t, false); (t, true) ]) [ 1; 2; 4; 8 ]
  in
  let results =
    List.map (fun (threads, group) ->
        let rate, spu = run ~threads ~group in
        (threads, group, rate, spu))
      combos
  in
  let baseline =
    match List.find_opt (fun (t, g, _, _) -> t = 1 && not g) results with
    | Some (_, _, r, _) -> r
    | None -> nan
  in
  let rows =
    List.map
      (fun (threads, group, rate, spu) ->
        json_add
          (Printf.sprintf
             "{\"experiment\": \"e16\", \"threads\": %d, \"group_commit\": %b, \
              \"updates_per_s\": %.1f, \"speedup_vs_solo\": %.3f, \
              \"fsyncs_per_update\": %.4f}"
             threads group rate (rate /. baseline) spu);
        [
          string_of_int threads;
          (if group then "on" else "off");
          Printf.sprintf "%.0f /s" rate;
          Printf.sprintf "%.2fx" (rate /. baseline);
          Printf.sprintf "%.3f" spu;
        ])
      results
  in
  Tablefmt.print
    ~header:
      [ "threads"; "group commit"; "updates"; "vs 1-thread solo"; "fsyncs/update" ]
    rows;
  note
    "grouped updaters amortize the 1 ms commit fsync; fsyncs/update falls      toward 1/N while solo mode stays pinned at 1";
  paper
    "the only faster schemes record multiple commit records in a single log \
     entry -- this is that scheme, applied across concurrent client threads"

(* ------------------------------------------------------------------ *)
(* E17: concurrency-sanitizer overhead                                  *)

let e17 ~quick () =
  section "e17" "concurrency sanitizer: overhead on and off";
  (* The discipline checks must be free when disabled (one atomic load
     and branch per lock event) and cheap enough to leave on in debug
     runs.  Same mixed workload, three passes: baseline before any
     toggle, explicitly disabled, enabled. *)
  let total = if quick then 2_000 else 10_000 in
  let threads = 4 in
  let was_enabled = Sdb_check.enabled () in
  let run () =
    let store = Mem.create_store ~seed:1700 () in
    let db = CrashDb.open_exn (Mem.fs store) in
    let per_thread = total / threads in
    let (), ms =
      time_ms (fun () ->
          let ths =
            List.init threads (fun tid ->
                Thread.create
                  (fun () ->
                    for i = 0 to per_thread - 1 do
                      CrashDb.update db
                        (CrashApp.Set (Printf.sprintf "t%d-%05d" tid i, "v"));
                      if i land 3 = 0 then
                        ignore (CrashDb.query db Hashtbl.length)
                    done)
                  ())
          in
          List.iter Thread.join ths)
    in
    CrashDb.close db;
    float_of_int (threads * per_thread) /. (ms /. 1000.)
  in
  let passes =
    [
      ("baseline", None); ("disabled", Some false); ("enabled", Some true);
    ]
  in
  let results =
    List.map
      (fun (label, toggle) ->
        (match toggle with
        | Some b -> Sdb_check.set_enabled b
        | None -> ());
        (label, run ()))
      passes
  in
  Sdb_check.set_enabled was_enabled;
  let baseline = List.assoc "baseline" results in
  let s = Sdb_check.stats () in
  let rows =
    List.map
      (fun (label, rate) ->
        json_add
          (Printf.sprintf
             "{\"experiment\": \"e17\", \"sanitizer\": \"%s\", \
              \"updates_per_s\": %.1f, \"overhead_pct\": %.2f}"
             label rate
             ((baseline /. rate -. 1.0) *. 100.0));
        [
          label;
          Printf.sprintf "%.0f /s" rate;
          Printf.sprintf "%+.1f%%" ((baseline /. rate -. 1.0) *. 100.0);
        ])
      results
  in
  Tablefmt.print ~header:[ "sanitizer"; "updates"; "overhead" ] rows;
  Printf.printf "  sanitizer totals: %d checks, %d violations, max depth %d\n"
    s.Sdb_check.checks s.Sdb_check.violations s.Sdb_check.max_lock_depth;
  note
    "disabled, every check is one atomic load and branch -- run-to-run noise   dwarfs it; enabled, per-event registry updates cost a few percent";
  paper
    "not in the paper -- tooling that guards the three-mode lock discipline \
     of section 4 while the suite and chaos sweeps run"

(* ------------------------------------------------------------------ *)
(* E18: open-loop load harness over the real RPC path                  *)

module Loadgen = Sdb_loadgen.Loadgen
module Slo = Sdb_obs.Slo

(* E18 always writes its own artifact (CI uploads it), independent of
   the harness-wide [--json] flag. *)
let e18_json_file = "BENCH_E18.json"

let e18 ~quick () =
  section "e18"
    "open-loop load: throughput knee and tail latency over the RPC socket";
  (* The full client-visible path: N loadgen threads, each with its own
     Unix-socket connection, against a name server with group commit on
     and a fault-injectable filesystem underneath.  Open-loop arrivals
     mean a stalled server keeps accruing intended requests, so the
     tail reflects queueing delay, not just service time (no
     coordinated omission). *)
  let entries = 1000 in
  let store = Mem.create_store ~seed:1800 () in
  let ctl, ffs = Fault.wrap (Mem.fs store) in
  let config = { Smalldb.default_config with group_commit = true } in
  let ns = Ns.open_exn ~config ffs in
  let rng = Rng.create ~seed:1801 in
  let batch = ref [] in
  for i = 0 to entries - 1 do
    batch := Ns.Set_value (entry_path i, Some (Rng.string rng ~len:32)) :: !batch
  done;
  Ns.Db.update_batch (Ns.db ns) !batch;
  Ns.checkpoint ns;
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sdb-e18-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists sock then Sys.remove sock;
  let listener = Rpc.Socket.listen ~path:sock (Proto.serve ns) in
  let cfg =
    {
      Loadgen.default with
      Loadgen.threads = 4;
      keys = entries;
      duration_s = (if quick then 1.0 else 2.0);
      seed = 1802;
    }
  in
  let clients =
    Array.init cfg.Loadgen.threads (fun _ ->
        Proto.Client.create (Rpc.Socket.connect ~path:sock))
  in
  let exec ~thread op =
    let c = clients.(thread) in
    match op with
    | Loadgen.Read k -> ignore (Proto.Client.lookup c (entry_path k))
    | Loadgen.Write (k, v) -> Proto.Client.set_value c (entry_path k) (Some v)
  in
  let rows = ref [] in
  let json = ref [] in
  let ms v = v *. 1000.0 in
  let record ~scenario rate (r : Loadgen.result) =
    let p q = ms (Histogram.percentile r.Loadgen.latency q) in
    json :=
      Printf.sprintf
        "{\"experiment\": \"e18\", \"scenario\": \"%s\", \
         \"offered_rate\": %.0f, \"offered\": %d, \"completed\": %d, \
         \"errors\": %d, \"achieved_rate\": %.1f, \"p50_ms\": %.3f, \
         \"p99_ms\": %.3f, \"p999_ms\": %.3f, \"max_lag_ms\": %.3f}"
        scenario rate r.Loadgen.offered r.Loadgen.completed r.Loadgen.errors
        r.Loadgen.achieved_rate (p 50.0) (p 99.0) (p 99.9)
        (ms r.Loadgen.max_lag_s)
      :: !json;
    rows :=
      [
        scenario;
        Printf.sprintf "%.0f /s" rate;
        Printf.sprintf "%.0f /s" r.Loadgen.achieved_rate;
        string_of_int r.Loadgen.errors;
        fmt_ms (p 50.0);
        fmt_ms (p 99.0);
        fmt_ms (p 99.9);
      ]
      :: !rows
  in
  (* Scenario 1: happy-path rate ramp, looking for the knee. *)
  let rates =
    if quick then [ 200.0; 500.0; 1000.0 ]
    else [ 500.0; 1000.0; 2000.0; 4000.0 ]
  in
  let happy =
    Loadgen.sweep cfg ~rates ~on_result:(record ~scenario:"happy") ~exec
  in
  let knee = Loadgen.knee happy in
  (* Scenario 2: the same ramp's low rates with a 5 ms fsync spike
     injected -- every commit group now pays a visible flush, and the
     tail shows whether batching keeps the knee from collapsing. *)
  Fault.set_latency ctl ~op:`Sync 0.005;
  let spike_rates = if quick then [ 200.0; 500.0 ] else [ 500.0; 1000.0 ] in
  let _ =
    Loadgen.sweep cfg ~rates:spike_rates
      ~on_result:(record ~scenario:"fsync-spike") ~exec
  in
  Fault.set_latency ctl ~op:`Sync 0.0;
  (* Scenario 3: an online scrub fired halfway through the run. *)
  let aux = Proto.Client.create (Rpc.Socket.connect ~path:sock) in
  let scrub_rate = List.hd (List.rev spike_rates) in
  let scrubber =
    Thread.create
      (fun () ->
        Unix.sleepf (cfg.Loadgen.duration_s /. 2.0);
        ignore (Proto.Client.scrub aux ~repair:false))
      ()
  in
  record ~scenario:"scrub"
    scrub_rate
    (Loadgen.run { cfg with Loadgen.rate = scrub_rate } ~exec);
  Thread.join scrubber;
  (* Scenario 4: a replica catching up -- snapshot then updates_since
     polling -- competes with foreground load for the server. *)
  let stop = Atomic.make false in
  let catcher =
    Thread.create
      (fun () ->
        let _tree, lsn = Proto.Client.snapshot aux in
        let at = ref lsn in
        while not (Atomic.get stop) do
          (match Proto.Client.updates_since aux !at with
          | Some ((_ :: _) as us) -> at := fst (List.hd (List.rev us))
          | Some [] | None -> ());
          Unix.sleepf 0.01
        done)
      ()
  in
  record ~scenario:"catchup"
    scrub_rate
    (Loadgen.run { cfg with Loadgen.rate = scrub_rate } ~exec);
  Atomic.set stop true;
  Thread.join catcher;
  (* SLO check at a sustainable mid-ramp rate: a generous p99 <= 75 ms
     objective with a 2% budget, fed from the observe hook like a
     production tracker would be.  CI asserts this stays green, so the
     objective leaves headroom for scheduler jitter on shared runners
     (open-loop accounting charges a late client wakeup as latency
     too); the run is doubled in length so one hiccup cannot dominate
     the sample count. *)
  let slo =
    Slo.create ~window_s:60.0 ~name:"bench.e18" ~objective_ms:75.0 ~budget:0.02 ()
  in
  let observe ~latency_s ~ok =
    if ok then Slo.record slo latency_s else Slo.record_failure slo
  in
  let slo_rate = List.nth rates 1 in
  let slo_run =
    Loadgen.run ~observe
      { cfg with Loadgen.rate = slo_rate;
                 duration_s = 2.0 *. cfg.Loadgen.duration_s }
      ~exec
  in
  record ~scenario:"slo-check" slo_rate slo_run;
  let rep = Slo.report slo in
  json :=
    Printf.sprintf
      "{\"experiment\": \"e18\", \"scenario\": \"summary\", \
       \"knee_ops_per_s\": %s, \"slo_name\": \"%s\", \
       \"slo_objective_ms\": %.1f, \"slo_budget\": %.3f, \
       \"slo_bad_fraction\": %.5f, \"slo_burn\": %.3f, \"slo_pass\": %b}"
      (match knee with Some k -> Printf.sprintf "%.0f" k | None -> "null")
      rep.Slo.r_name (Slo.objective_ms slo) rep.Slo.r_budget
      rep.Slo.r_bad_fraction rep.Slo.r_burn rep.Slo.r_pass
    :: !json;
  (* Scenario 5: the lock-free read path under the mix it exists for.
     A second server configured with [read_path = `Epoch] serves the
     read-mostly (99/1) preset over its own socket, with the same p99
     objective tracked under its own SLO name — CI asserts both gates,
     so a regression in the epoch route's client-visible tail fails
     the build exactly like the locked one. *)
  let estore = Mem.create_store ~seed:1803 () in
  let econfig =
    { Smalldb.default_config with group_commit = true; read_path = `Epoch }
  in
  let ens = Ns.open_exn ~config:econfig (Mem.fs estore) in
  let erng = Rng.create ~seed:1804 in
  let ebatch = ref [] in
  for i = 0 to entries - 1 do
    ebatch :=
      Ns.Set_value (entry_path i, Some (Rng.string erng ~len:32)) :: !ebatch
  done;
  Ns.Db.update_batch (Ns.db ens) !ebatch;
  Ns.checkpoint ens;
  let esock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sdb-e18e-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists esock then Sys.remove esock;
  let elistener = Rpc.Socket.listen ~path:esock (Proto.serve ens) in
  let ecfg =
    {
      Loadgen.read_mostly with
      Loadgen.threads = cfg.Loadgen.threads;
      keys = entries;
      duration_s = 2.0 *. cfg.Loadgen.duration_s;
      seed = 1805;
    }
  in
  let eclients =
    Array.init ecfg.Loadgen.threads (fun _ ->
        Proto.Client.create (Rpc.Socket.connect ~path:esock))
  in
  let eexec ~thread op =
    let c = eclients.(thread) in
    match op with
    | Loadgen.Read k -> ignore (Proto.Client.lookup c (entry_path k))
    | Loadgen.Write (k, v) -> Proto.Client.set_value c (entry_path k) (Some v)
  in
  let eslo =
    Slo.create ~window_s:60.0 ~name:"bench.e18.epoch" ~objective_ms:75.0
      ~budget:0.02 ()
  in
  let eobserve ~latency_s ~ok =
    if ok then Slo.record eslo latency_s else Slo.record_failure eslo
  in
  record ~scenario:"epoch-read-mostly" slo_rate
    (Loadgen.run ~observe:eobserve { ecfg with Loadgen.rate = slo_rate }
       ~exec:eexec);
  let erep = Slo.report eslo in
  json :=
    Printf.sprintf
      "{\"experiment\": \"e18\", \"scenario\": \"epoch-summary\", \
       \"read_path\": \"epoch\", \"read_fraction\": %.2f, \
       \"slo_name\": \"%s\", \"slo_objective_ms\": %.1f, \
       \"slo_budget\": %.3f, \"slo_bad_fraction\": %.5f, \
       \"slo_burn\": %.3f, \"slo_pass\": %b}"
      ecfg.Loadgen.read_fraction erep.Slo.r_name (Slo.objective_ms eslo)
      erep.Slo.r_budget erep.Slo.r_bad_fraction erep.Slo.r_burn
      erep.Slo.r_pass
    :: !json;
  Array.iter Proto.Client.close eclients;
  Rpc.Socket.shutdown elistener;
  Ns.close ens;
  if Sys.file_exists esock then Sys.remove esock;
  Array.iter Proto.Client.close clients;
  Proto.Client.close aux;
  Rpc.Socket.shutdown listener;
  Ns.close ns;
  if Sys.file_exists sock then Sys.remove sock;
  Tablefmt.print
    ~header:[ "scenario"; "offered"; "achieved"; "errors"; "p50"; "p99"; "p999" ]
    (List.rev !rows);
  List.iter json_add (List.rev !json);
  write_json_rows e18_json_file (List.rev !json);
  note "knee: %s; SLO p99<=%.0fms at %.0f/s: %s (bad %.3f%%, burn %.2f)"
    (match knee with
    | Some k -> Printf.sprintf "%.0f ops/s sustained" k
    | None -> "not reached (no rate sustained)")
    (Slo.objective_ms slo) slo_rate
    (if rep.Slo.r_pass then "PASS" else "FAIL")
    (rep.Slo.r_bad_fraction *. 100.0) rep.Slo.r_burn;
  note "epoch route (99/1 mix) SLO at %.0f/s: %s (bad %.3f%%, burn %.2f)"
    slo_rate
    (if erep.Slo.r_pass then "PASS" else "FAIL")
    (erep.Slo.r_bad_fraction *. 100.0) erep.Slo.r_burn;
  Printf.printf "  artifact: %s\n" e18_json_file;
  paper
    "the paper reports service times for a lightly loaded server; an \
     open-loop ramp adds the missing half -- where the knee sits and what \
     the tail does when fsync stalls, scrubs, or replica catch-up compete"

(* ------------------------------------------------------------------ *)
(* E19: availability and replica staleness through a network partition *)

module Fault_net = Sdb_rpc.Fault_net
module Backoff = Sdb_rpc.Backoff
module Detector = Sdb_replica.Detector
module Mono = Sdb_util.Mono

let e19_json_file = "BENCH_E19.json"

let e19 ~quick () =
  section "e19"
    "partition -> heal -> catch-up: availability and replica staleness";
  (* Replica A takes a steady update load throughout; its peer B sits
     behind a fault_net-wrapped Unix-socket client.  A full partition
     opens mid-run and heals after [part_dur]; the health monitor (no
     manual anti_entropy anywhere) must notice, back off, and drain the
     backlog after the heal.  We record the commit-latency tail per
     phase (availability: commits must never block on the network), the
     replica staleness curve sampled at 50 ms, and the detector's
     suspect/dead/converged timestamps. *)
  let part_dur = if quick then 2.0 else 10.0 in
  let store_a = Mem.create_store ~seed:1900 () in
  let ns_a = Ns.open_exn (Mem.fs store_a) in
  let replica = Replica.create ~id:"a" ns_a in
  let store_b = Mem.create_store ~seed:1901 () in
  let ns_b = Ns.open_exn (Mem.fs store_b) in
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sdb-e19-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists sock then Sys.remove sock;
  let listener = Rpc.Socket.listen ~path:sock (Proto.serve ns_b) in
  let ctl = Fault_net.create ~seed:1902 () in
  let fresh () = Fault_net.wrap ctl ~peer:"b" (Rpc.Socket.connect ~path:sock) in
  (* Two attempts only: more would let RPC-level retries mask a dead
     peer from the failure detector for several heartbeat intervals. *)
  let retry = { Rpc.default_retry with Rpc.max_attempts = 2 } in
  let client =
    Proto.Client.create ~deadline_s:0.25 ~retry
      ~retry_budget:(Backoff.Budget.create ~rate_per_s:100.0 ())
      ~reconnect:fresh (fresh ())
  in
  Replica.add_peer replica ~id:"b" client;
  let health =
    {
      Replica.default_health_config with
      detector =
        {
          Detector.heartbeat_interval_s = 0.1;
          suspect_after_s = 0.3;
          dead_after_s = 1.0;
        };
    }
  in
  Replica.start_health ~config:health replica;
  let t0 = Mono.now_s () in
  let now () = Mono.now_s () -. t0 in
  (* Phase clock, shared with the writer and sampler threads. *)
  let phase = Atomic.make `Warmup in
  let stop = Atomic.make false in
  let t_partition = ref nan and t_heal = ref nan in
  let h_warmup = Histogram.create ()
  and h_partition = Histogram.create ()
  and h_healed = Histogram.create () in
  let writer =
    Thread.create
      (fun () ->
        let rng = Rng.create ~seed:1903 in
        let i = ref 0 in
        while not (Atomic.get stop) do
          let h =
            match Atomic.get phase with
            | `Warmup -> h_warmup
            | `Partition -> h_partition
            | `Healed -> h_healed
          in
          let t_start = Mono.now_s () in
          Ns.set_value ns_a
            (entry_path (!i mod 500))
            (Some (Rng.string rng ~len:64));
          Histogram.record h (Mono.now_s () -. t_start);
          incr i;
          Unix.sleepf 0.005
        done)
      ()
  in
  (* Staleness sampler: both stores are in-process, so the probe never
     touches the faulty network. *)
  let samples = ref [] in
  let t_suspect = ref nan and t_dead = ref nan and t_converged = ref nan in
  let sampler =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          let t = now () in
          let staleness = Ns.ping ns_a - Ns.ping ns_b in
          let state =
            match Replica.peers replica with
            | [ x ] -> x.Replica.health
            | _ -> Detector.Alive
          in
          (* Timestamps are first-observed at the 50 ms sampling grain;
             the detector can cross Suspect between two samples (it
             never skips it — probe failure demotes to Suspect, only a
             later tick reaches Dead), so Dead also bounds Suspect. *)
          (match state with
          | Detector.Suspect ->
            if Float.is_nan !t_suspect then t_suspect := t
          | Detector.Dead ->
            if Float.is_nan !t_suspect then t_suspect := t;
            if Float.is_nan !t_dead then t_dead := t
          | Detector.Alive -> ());
          if
            Float.is_nan !t_converged
            && not (Float.is_nan !t_heal)
            && staleness = 0
            && String.equal (Replica.digest ns_a) (Replica.digest ns_b)
          then t_converged := t;
          samples := (t, staleness, state) :: !samples;
          Unix.sleepf 0.05
        done)
      ()
  in
  Unix.sleepf 1.0;
  t_partition := now ();
  Fault_net.partition ctl "b";
  Atomic.set phase `Partition;
  Unix.sleepf part_dur;
  t_heal := now ();
  Fault_net.heal ctl "b";
  Atomic.set phase `Healed;
  (* Convergence is the monitor's job now; give it a bounded wait. *)
  let deadline = Mono.now_s () +. 30.0 in
  while Float.is_nan !t_converged && Mono.now_s () < deadline do
    Unix.sleepf 0.05
  done;
  Unix.sleepf 0.2;
  Atomic.set stop true;
  Thread.join writer;
  Thread.join sampler;
  let max_staleness =
    List.fold_left (fun acc (_, s, _) -> max acc s) 0 !samples
  in
  let ms v = v *. 1000.0 in
  let rows =
    List.map
      (fun (name, h) ->
        [
          name;
          string_of_int (Histogram.count h);
          fmt_ms (ms (Histogram.percentile h 50.0));
          fmt_ms (ms (Histogram.percentile h 99.0));
          fmt_ms (ms (Histogram.max h));
        ])
      [ ("warmup", h_warmup); ("partition", h_partition); ("healed", h_healed) ]
  in
  Tablefmt.print
    ~header:[ "phase"; "commits"; "p50"; "p99"; "max" ]
    rows;
  let fnum v = if Float.is_nan v then "null" else Printf.sprintf "%.3f" v in
  let json = ref [] in
  json :=
    Printf.sprintf
      "{\"experiment\": \"e19\", \"scenario\": \"summary\", \
       \"partition_s\": %s, \"heal_s\": %s, \"suspect_s\": %s, \
       \"dead_s\": %s, \"converged_s\": %s, \"catchup_s\": %s, \
       \"max_staleness\": %d, \"partition_commits\": %d, \
       \"partition_p99_ms\": %.3f, \"partition_max_ms\": %.3f}"
      (fnum !t_partition) (fnum !t_heal) (fnum !t_suspect) (fnum !t_dead)
      (fnum !t_converged)
      (fnum (!t_converged -. !t_heal))
      max_staleness
      (Histogram.count h_partition)
      (ms (Histogram.percentile h_partition 99.0))
      (ms (Histogram.max h_partition))
    :: !json;
  List.iter
    (fun (t, staleness, state) ->
      json :=
        Printf.sprintf
          "{\"experiment\": \"e19\", \"scenario\": \"staleness\", \
           \"t_s\": %.3f, \"staleness\": %d, \"peer\": \"%s\"}"
          t staleness
          (Detector.state_to_string state)
        :: !json)
      (List.rev !samples);
  Replica.shutdown replica;
  Rpc.Socket.shutdown listener;
  Ns.close ns_a;
  Ns.close ns_b;
  if Sys.file_exists sock then Sys.remove sock;
  List.iter json_add (List.rev !json);
  write_json_rows e19_json_file (List.rev !json);
  note
    "partition at %ss, suspect %ss, dead %ss, healed %ss, converged %ss \
     (catch-up %ss); max staleness %d updates; partition-phase commit \
     p99 %s"
    (fnum !t_partition) (fnum !t_suspect) (fnum !t_dead) (fnum !t_heal)
    (fnum !t_converged)
    (fnum (!t_converged -. !t_heal))
    max_staleness
    (fmt_ms (ms (Histogram.percentile h_partition 99.0)));
  Printf.printf "  artifact: %s\n" e19_json_file;
  paper
    "Birrell et al. replicate by whole-database transfer after failures; \
     this measures the modern restatement -- commits stay available \
     through a partition, a failure detector times out the peer, and \
     automatic anti-entropy converges the replicas after the heal"

(* ------------------------------------------------------------------ *)
(* E20: lock-free read path — query scaling across domains             *)

let e20_json_file = "BENCH_E20.json"

let e20 ~quick () =
  section "e20"
    "epoch read path: query throughput vs domains, writer streaming commits";
  (* Readers run in separate domains (real parallelism where the host
     has the cores); a writer thread on the main domain streams group
     commits throughout.  On the Shared-lock route every query takes
     the engine lock's mutex twice and parks behind upgrade drains; on
     the epoch route a query is one fetch-and-add on a padded
     per-domain slot, a pointer load, and the matching decrement —
     readers never contend with the writer or each other.  [cores] is
     recorded in the artifact because the scaling claim is only
     observable where the cores exist: on a single-core host all
     domains timeshare and both routes flatline. *)
  let entries = 1000 in
  let duration_s = if quick then 0.3 else 1.0 in
  let domain_counts = [ 1; 2; 4; 8 ] in
  let cores = Domain.recommended_domain_count () in
  let run ~read_path ~domains =
    let config =
      { Smalldb.default_config with group_commit = true; read_path }
    in
    let _store, _fs, ns = build_ns ~config ~entries ~seed:2000 () in
    let lsn0 = (Ns.stats ns).Smalldb.lsn in
    let stop = Atomic.make false in
    let writer =
      Thread.create
        (fun () ->
          let rng = Rng.create ~seed:2001 in
          let i = ref 0 in
          while not (Atomic.get stop) do
            Ns.set_value ns
              (entry_path (!i mod entries))
              (Some (Rng.string rng ~len:32));
            incr i;
            (* ~1k commits/s: a steady stream, not a saturating one —
               the measured quantity is query scaling under writes. *)
            Unix.sleepf 0.001
          done)
        ()
    in
    let readers =
      List.init domains (fun d ->
          Domain.spawn (fun () ->
              let rng = Rng.create ~seed:(2002 + d) in
              let n = ref 0 in
              while not (Atomic.get stop) do
                ignore (Ns.lookup ns (random_path rng entries));
                incr n
              done;
              !n))
    in
    Unix.sleepf duration_s;
    Atomic.set stop true;
    let queries = List.fold_left (fun acc d -> acc + Domain.join d) 0 readers in
    Thread.join writer;
    let updates = (Ns.stats ns).Smalldb.lsn - lsn0 in
    Ns.close ns;
    (float_of_int queries /. duration_s, float_of_int updates /. duration_s)
  in
  let routes = [ (`Locked, "locked"); (`Epoch, "epoch") ] in
  let results =
    List.concat_map
      (fun (read_path, label) ->
        List.map
          (fun domains ->
            let qps, ups = run ~read_path ~domains in
            (label, domains, qps, ups))
          domain_counts)
      routes
  in
  let base label =
    match
      List.find_opt (fun (l, d, _, _) -> l = label && d = 1) results
    with
    | Some (_, _, q, _) -> q
    | None -> nan
  in
  let json = ref [] in
  let rows =
    List.map
      (fun (label, domains, qps, ups) ->
        let speedup = qps /. base label in
        json :=
          Printf.sprintf
            "{\"experiment\": \"e20\", \"read_path\": \"%s\", \
             \"domains\": %d, \"cores\": %d, \"queries_per_s\": %.1f, \
             \"updates_per_s\": %.1f, \"speedup_vs_1\": %.3f}"
            label domains cores qps ups speedup
          :: !json;
        [
          label;
          string_of_int domains;
          Printf.sprintf "%.0f /s" qps;
          Printf.sprintf "%.2fx" speedup;
          Printf.sprintf "%.0f /s" ups;
        ])
      results
  in
  Tablefmt.print
    ~header:[ "read path"; "domains"; "queries"; "vs 1 domain"; "commits" ]
    rows;
  List.iter json_add (List.rev !json);
  write_json_rows e20_json_file (List.rev !json);
  note
    "host has %d core%s -- query scaling with domains is only visible   where the cores exist; the artifact records cores so CI baselines   judge accordingly"
    cores
    (if cores = 1 then "" else "s");
  Printf.printf "  artifact: %s\n" e20_json_file;
  paper
    "the paper's enquiries are pure virtual-memory reads under one lock; \
     publishing each committed version through an epoch makes them \
     lock-free, so read throughput can scale with cores while updates \
     stream -- the property measured here"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment's core op   *)

let bechamel_suite ~quick () =
  section "micro" "bechamel micro-benchmarks (OLS time per run)";
  let open Bechamel in
  let entries = entries_for_bytes (64 * 1024) in
  let _store, _fs, ns = build_ns ~entries ~seed:131 () in
  let rng = Rng.create ~seed:132 in
  let counter = ref 0 in
  let next_path () =
    incr counter;
    entry_path (!counter mod entries)
  in
  let kv_store = Mem.create_store ~seed:133 () in
  let kv =
    match B.Smalldb_kv.open_with (Mem.fs kv_store) with
    | Ok d -> d
    | Error e -> failwith e
  in
  let adhoc_store = Mem.create_store ~seed:134 () in
  let adhoc =
    match B.Adhoc_db.open_ (Mem.fs adhoc_store) with Ok d -> d | Error e -> failwith e
  in
  let atomic_store = Mem.create_store ~seed:135 () in
  let atomic =
    match B.Atomic_db.open_ (Mem.fs atomic_store) with Ok d -> d | Error e -> failwith e
  in
  let text_store = Mem.create_store ~seed:136 () in
  let text =
    match B.Textfile_db.open_ (Mem.fs text_store) with Ok d -> d | Error e -> failwith e
  in
  let update_payload = Rng.string rng ~len:paper_value_len in
  let blob = P.to_string Data.codec_tree (fst (Ns.snapshot_with_lsn ns)) in
  let client_t, server_t = Rpc.Inproc.pair () in
  let echo = [ Rpc.Server.handler ~meth:"echo" P.string P.string Fun.id ] in
  let server = Thread.create (fun () -> Rpc.Server.serve ~handlers:echo server_t) () in
  let rpc_client = Rpc.Client.create client_t in
  let tests =
    [
      Test.make ~name:"e1.lookup" (Staged.stage (fun () -> Ns.lookup ns (next_path ())));
      Test.make ~name:"e2.update"
        (Staged.stage (fun () -> Ns.set_value ns (next_path ()) (Some update_payload)));
      Test.make ~name:"e2.pickle-update"
        (Staged.stage (fun () ->
             P.encode Ns.codec_update (Ns.Set_value (entry_path 1, Some update_payload))));
      (* Ablation: what the typed, tagged, fingerprinted pickle costs
         over the unsafe runtime marshaller. *)
      Test.make ~name:"e2.marshal-update-unsafe"
        (Staged.stage (fun () ->
             Marshal.to_string (entry_path 1, update_payload) []));
      Test.make ~name:"e3.pickle-db-64k"
        (Staged.stage (fun () ->
             ignore (P.encode Data.codec_tree (fst (Ns.snapshot_with_lsn ns)))));
      Test.make ~name:"e4.unpickle-db-64k"
        (Staged.stage (fun () -> ignore (P.of_string Data.codec_tree blob)));
      Test.make ~name:"e5.group-commit-10"
        (Staged.stage (fun () ->
             Ns.Db.update_batch (Ns.db ns)
               (List.init 10 (fun _ -> Ns.Set_value (next_path (), Some update_payload)))));
      Test.make ~name:"e6.rpc-echo"
        (Staged.stage (fun () ->
             ignore (Rpc.Client.call rpc_client ~meth:"echo" P.string P.string "ping")));
      Test.make ~name:"e7.textfile-set"
        (Staged.stage (fun () ->
             B.Textfile_db.set text (kv_key (!counter mod 100)) update_payload));
      Test.make ~name:"e7.adhoc-set"
        (Staged.stage (fun () ->
             B.Adhoc_db.set adhoc (kv_key (!counter mod 100)) update_payload));
      Test.make ~name:"e7.atomic-set"
        (Staged.stage (fun () ->
             B.Atomic_db.set atomic (kv_key (!counter mod 100)) update_payload));
      Test.make ~name:"e7.smalldb-set"
        (Staged.stage (fun () ->
             B.Smalldb_kv.set kv (kv_key (!counter mod 100)) update_payload));
    ]
  in
  let quota = if quick then 0.1 else 0.25 in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None ~stabilize:false ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"bench" tests) in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name res ->
      let ns_per_run =
        match Analyze.OLS.estimates res with Some (e :: _) -> e | _ -> nan
      in
      rows := (name, ns_per_run) :: !rows)
    results;
  let rows =
    List.sort compare !rows
    |> List.map (fun (name, ns_run) ->
           [ name; Printf.sprintf "%.0f ns" ns_run; fmt_ms (ns_run /. 1e6) ])
  in
  Tablefmt.print ~header:[ "benchmark"; "per run"; "" ] rows;
  Rpc.Client.close rpc_client;
  server_t.Rpc.Transport.close ();
  Thread.join server;
  B.Smalldb_kv.close kv;
  B.Adhoc_db.close adhoc;
  B.Atomic_db.close atomic;
  B.Textfile_db.close text

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12);
    ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16); ("e17", e17);
    ("e18", e18);
    ("e19", e19);
    ("e20", e20);
    ("micro", bechamel_suite);
  ]

let () =
  let quick = ref false in
  let only = ref [] in
  let metrics = ref false in
  let json_file = ref None in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--only" :: ids :: rest ->
      only := String.split_on_char ',' ids @ !only;
      parse rest
    | "--metrics" :: rest ->
      metrics := true;
      parse rest
    | "--json" :: file :: rest ->
      json_file := Some file;
      parse rest
    | "--sanitize" :: rest ->
      Sdb_check.set_enabled true;
      parse rest
    | arg :: _ ->
      Printf.eprintf
        "usage: main.exe [--quick] [--metrics] [--sanitize] [--json FILE] \
         [--only e1,e2,...]\n\
         unknown: %s\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let selected =
    if !only = [] then experiments
    else List.filter (fun (id, _) -> List.mem id !only) experiments
  in
  if selected = [] then begin
    Printf.eprintf "no such experiment; known: %s\n"
      (String.concat ", " (List.map fst experiments));
    exit 2
  end;
  Printf.printf
    "smalldb benchmark harness -- reproducing the evaluation of\n\
     \"A Simple and Efficient Implementation for Small Databases\" (SOSP 1987)\n";
  let (), total_ms =
    time_ms (fun () -> List.iter (fun (_, f) -> f ~quick:!quick ()) selected)
  in
  Printf.printf "\nall experiments completed in %s\n" (fmt_ms total_ms);
  (match !json_file with Some file -> write_json file | None -> ());
  if !metrics then begin
    print_endline "\n== metrics registry (whole run) ==";
    print_string (Metrics.render ())
  end
