bin/sdb_inspect.ml: Bytes Digest Int32 List Printf Sdb_checkpoint Sdb_storage Sdb_util String Sys
