bin/sdb_inspect.mli:
