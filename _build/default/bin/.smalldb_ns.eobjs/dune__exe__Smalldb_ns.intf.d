bin/smalldb_ns.mli:
