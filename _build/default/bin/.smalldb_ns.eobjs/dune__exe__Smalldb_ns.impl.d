bin/smalldb_ns.ml: Arg Cmd Cmdliner Digest Format Fun List Printf Sdb_nameserver Sdb_rpc Sdb_storage Smalldb Sys Term Unix
