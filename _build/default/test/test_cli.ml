(* End-to-end integration of the command-line tools: a real server
   process on a Unix socket, real client processes, and the on-disk
   inspector — the whole deployment story of bin/. *)

let check = Alcotest.check

let exe name =
  (* Tests run from _build/default/test; the binaries are siblings. *)
  let candidates =
    [
      Filename.concat "../bin" name;
      Filename.concat "bin" name;
      Filename.concat "_build/default/bin" name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> Alcotest.fail ("cannot locate " ^ name ^ " from " ^ Sys.getcwd ())

let run_capture argv =
  let stdout_r, stdout_w = Unix.pipe () in
  let pid =
    Unix.create_process argv.(0) argv Unix.stdin stdout_w Unix.stderr
  in
  Unix.close stdout_w;
  let ic = Unix.in_channel_of_descr stdout_r in
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  close_in ic;
  let _, status = Unix.waitpid [] pid in
  let code = match status with Unix.WEXITED n -> n | _ -> -1 in
  (code, Buffer.contents buf)

let with_server f =
  let dir = Helpers.fresh_dir "cli" in
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sdb-cli-%d.sock" (Unix.getpid ()))
  in
  let server =
    Unix.create_process (exe "smalldb_ns.exe")
      [| "smalldb_ns"; "serve"; "--dir"; dir; "--socket"; socket |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  (* Wait for the socket to appear. *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (Sys.file_exists socket)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.05
  done;
  if not (Sys.file_exists socket) then Alcotest.fail "server did not start";
  Fun.protect
    ~finally:(fun () ->
      Unix.kill server Sys.sigterm;
      ignore (Unix.waitpid [] server))
    (fun () -> f ~dir ~socket)

let run_client ~socket args =
  let argv =
    Array.of_list ((exe "smalldb_ns.exe" :: args) @ [ "--socket"; socket ])
  in
  let code, out = run_capture argv in
  (code, String.trim out)

let test_cli_end_to_end () =
  with_server (fun ~dir ~socket ->
      let ok args expect =
        let code, out = run_client ~socket args in
        check Alcotest.int ("exit: " ^ String.concat " " args) 0 code;
        match expect with
        | Some want -> check Alcotest.string (String.concat " " args) want out
        | None -> ()
      in
      ok [ "set"; "/hosts/acacia"; "16.9.0.11" ] None;
      ok [ "set"; "/hosts/buckeye"; "16.9.0.12" ] None;
      ok [ "lookup"; "/hosts/acacia" ] (Some "16.9.0.11");
      ok [ "ls"; "/hosts" ] (Some "acacia\nbuckeye");
      ok [ "find"; "/hosts/*" ]
        (Some "/hosts/acacia\t16.9.0.11\n/hosts/buckeye\t16.9.0.12");
      ok [ "mkdir"; "/empty/leaf" ] None;
      ok [ "rm"; "/hosts/buckeye" ] None;
      (* Lookup of an unbound name exits non-zero. *)
      let code, _ = run_client ~socket [ "lookup"; "/hosts/buckeye" ] in
      check Alcotest.int "unbound exit code" 3 code;
      (* CAS through the CLI. *)
      ok [ "cas"; "/hosts/acacia"; "--expected"; "16.9.0.11"; "16.9.0.99" ] None;
      let code, _ =
        run_client ~socket [ "cas"; "/hosts/acacia"; "--expected"; "stale"; "x" ]
      in
      check Alcotest.int "stale cas refused" 4 code;
      ok [ "checkpoint" ] None;
      (* Status shows a sane lsn. *)
      let code, out = run_client ~socket [ "status" ] in
      check Alcotest.int "status exit" 0 code;
      Alcotest.check Alcotest.bool "status mentions lsn" true
        (String.length out > 0
        && String.sub out 0 4 = "lsn:");
      (* The inspector reads the directory the server just wrote. *)
      let code, out = run_capture [| exe "sdb_inspect.exe"; dir |] in
      check Alcotest.int "inspect exit" 0 code;
      Alcotest.check Alcotest.bool "inspect names a generation" true
        (String.length out > 0))

let () =

  Helpers.run "cli"
    [ ("end-to-end", [ Alcotest.test_case "server + clients + inspector" `Slow test_cli_end_to_end ]) ]
