module Fs = Sdb_storage.Fs
module Mem = Sdb_storage.Mem_fs
module Multidb = Sdb_multidb.Multidb
open Helpers

let check = Alcotest.check

module MDb = Multidb.Make (KV)

let small_logs =
  { Multidb.default_config with log_switch_bytes = 512 }

let mem_mdb ?config ?(partitions = 4) ?(seed = 61) () =
  let store = Mem.create_store ~seed () in
  let fs = Mem.fs store in
  (store, fs, MDb.open_exn ?config ~partitions fs)

let get db ~partition k = MDb.query db ~partition (fun st -> Hashtbl.find_opt st k)
let set db ~partition k v = MDb.update db ~partition (KV.Set (k, v))

let fill db ~partitions ~n =
  for i = 0 to n - 1 do
    let partition = i mod partitions in
    set db ~partition (Printf.sprintf "p%d-k%04d" partition i) (string_of_int i)
  done

let partition_sizes db ~partitions =
  List.init partitions (fun k -> MDb.query db ~partition:k Hashtbl.length)

(* ------------------------------------------------------------------ *)

let test_basic_isolation () =
  let _, _, db = mem_mdb () in
  set db ~partition:0 "shared-key" "zero";
  set db ~partition:1 "shared-key" "one";
  check Alcotest.(option string) "p0" (Some "zero") (get db ~partition:0 "shared-key");
  check Alcotest.(option string) "p1" (Some "one") (get db ~partition:1 "shared-key");
  check Alcotest.(option string) "p2 empty" None (get db ~partition:2 "shared-key");
  let s = MDb.stats db in
  check Alcotest.int "lsn" 2 s.Multidb.lsn;
  check Alcotest.int "partitions" 4 s.Multidb.partitions;
  check Alcotest.int "one log" 1 s.Multidb.log_generations;
  Alcotest.check_raises "bad partition"
    (Invalid_argument "Multidb: partition 9 out of range") (fun () ->
      ignore (get db ~partition:9 "x"))

let test_one_write_per_update () =
  let _, fs, db = mem_mdb () in
  set db ~partition:0 "warm" "up";
  let before = Fs.Counters.copy fs.Fs.counters in
  set db ~partition:2 "k" "v";
  let d = Fs.Counters.diff ~after:fs.Fs.counters ~before in
  check Alcotest.int "one write" 1 d.Fs.Counters.data_writes;
  check Alcotest.int "one sync" 1 d.Fs.Counters.syncs

let test_durability_no_checkpoints () =
  let _, fs, db = mem_mdb () in
  fill db ~partitions:4 ~n:40;
  MDb.close db;
  let db2 = MDb.open_exn ~partitions:4 fs in
  check Alcotest.(list int) "all partitions replayed" [ 10; 10; 10; 10 ]
    (partition_sizes db2 ~partitions:4);
  check Alcotest.int "lsn recovered" 40 (MDb.stats db2).Multidb.lsn;
  check Alcotest.int "replayed" 40 (MDb.stats db2).Multidb.replayed;
  (* LSNs continue. *)
  set db2 ~partition:0 "after" "restart";
  check Alcotest.int "lsn" 41 (MDb.stats db2).Multidb.lsn

let test_partition_checkpoint_reduces_replay () =
  let _, fs, db = mem_mdb () in
  fill db ~partitions:4 ~n:40;
  MDb.checkpoint_partition db 1;
  MDb.close db;
  let db2 = MDb.open_exn ~partitions:4 fs in
  (* Partition 1's 10 updates were absorbed; the rest replay. *)
  check Alcotest.int "replayed only others" 30 (MDb.stats db2).Multidb.replayed;
  check Alcotest.(list int) "state complete" [ 10; 10; 10; 10 ]
    (partition_sizes db2 ~partitions:4)

let test_round_robin () =
  let _, _, db = mem_mdb () in
  fill db ~partitions:4 ~n:8;
  MDb.checkpoint_next db;
  MDb.checkpoint_next db;
  let s = MDb.stats db in
  let versions = List.map (fun p -> p.Multidb.p_checkpoint_version) s.Multidb.parts in
  check Alcotest.(list int) "first two checkpointed" [ 1; 1; 0; 0 ] versions

let test_log_switch_and_flush () =
  let _, fs, db = mem_mdb ~config:small_logs () in
  fill db ~partitions:4 ~n:60;
  (* Checkpoint one partition: the log is big, so a new generation
     starts; old ones stay because other partitions still need them. *)
  MDb.checkpoint_partition db 0;
  let s = MDb.stats db in
  Alcotest.check Alcotest.bool "multiple generations" true
    (s.Multidb.log_generations >= 2);
  (* Checkpoint everything: all old generations become droppable. *)
  MDb.checkpoint_all db;
  let s = MDb.stats db in
  check Alcotest.int "only current log" 1 s.Multidb.log_generations;
  (* Old shared logs are actually gone from the disk. *)
  let logs =
    List.filter
      (fun name -> String.length name >= 9 && String.sub name 0 9 = "sharedlog")
      (fs.Fs.list_files ())
  in
  check Alcotest.int "one sharedlog file" 1 (List.length logs);
  (* And everything still reopens. *)
  MDb.close db;
  let db2 = MDb.open_exn ~partitions:4 ~config:small_logs fs in
  check Alcotest.(list int) "state survives flush" [ 15; 15; 15; 15 ]
    (partition_sizes db2 ~partitions:4);
  check Alcotest.int "nothing to replay" 0 (MDb.stats db2).Multidb.replayed

let test_recovery_across_multiple_logs () =
  let _, fs, db = mem_mdb ~config:small_logs () in
  fill db ~partitions:4 ~n:30;
  MDb.checkpoint_partition db 0;
  (* switches log *)
  fill db ~partitions:4 ~n:30;
  MDb.checkpoint_partition db 1;
  fill db ~partitions:4 ~n:20;
  let expect = partition_sizes db ~partitions:4 in
  MDb.close db;
  let db2 = MDb.open_exn ~partitions:4 ~config:small_logs fs in
  check Alcotest.(list int) "multi-log recovery" expect (partition_sizes db2 ~partitions:4);
  Alcotest.check Alcotest.bool "several live generations" true
    ((MDb.stats db2).Multidb.log_generations >= 2)

let test_auto_round_robin_policy () =
  let config =
    { Multidb.log_switch_bytes = 1 lsl 20; auto_checkpoint_round_robin = Some 10 }
  in
  let _, _, db = mem_mdb ~config () in
  fill db ~partitions:4 ~n:45;
  let s = MDb.stats db in
  let total_ckpts =
    List.fold_left (fun acc p -> acc + p.Multidb.p_checkpoint_version) 0 s.Multidb.parts
  in
  check Alcotest.int "four automatic checkpoints" 4 total_ckpts

let test_partition_count_fixed () =
  let _, fs, db = mem_mdb ~partitions:4 () in
  set db ~partition:0 "k" "v";
  MDb.close db;
  match MDb.open_ ~partitions:8 fs with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "partition count change accepted"

let test_update_checked () =
  let _, _, db = mem_mdb () in
  set db ~partition:0 "exists" "yes";
  (match
     MDb.update_checked db ~partition:1
       ~precondition:(fun st ->
         if Hashtbl.mem st "exists" then Ok () else Error "not in this partition")
       (KV.Set ("x", "1"))
   with
  | Error "not in this partition" -> ()
  | Error e -> Alcotest.fail e
  | Ok () -> Alcotest.fail "precondition saw the wrong partition");
  check Alcotest.(option string) "nothing applied" None (get db ~partition:1 "x")

(* Crash sweep: workload with per-partition checkpoints; recovery must
   never lose a committed update or invent one, per partition. *)
let test_crash_sweep () =
  List.iter
    (fun mode ->
      let partitions = 3 in
      let run crash_at seed =
        let store = Mem.create_store ~seed () in
        let fs = Mem.fs store in
        let committed = Array.make partitions 0 in
        let crashed = ref false in
        (try
           let db =
             MDb.open_exn ~partitions
               ~config:{ Multidb.default_config with log_switch_bytes = 400 }
               fs
           in
           Mem.set_crash_after store ~ops:crash_at ~mode;
           for i = 0 to 17 do
             let k = i mod partitions in
             MDb.update db ~partition:k
               (KV.Set (Printf.sprintf "key%04d" i, string_of_int i));
             committed.(k) <- committed.(k) + 1;
             if i mod 6 = 5 then MDb.checkpoint_partition db (i mod partitions)
           done;
           Mem.disarm_crash store
         with Mem.Crash -> crashed := true);
        Mem.disarm_crash store;
        (!crashed, committed, fs)
      in
      let k = ref 1 in
      let continue = ref true in
      while !continue do
        let crashed, committed, fs = run !k (8000 + !k) in
        if not !continue then ()
        else if not crashed then continue := false
        else begin
          match MDb.open_ ~partitions fs with
          | Error e -> Alcotest.fail (Printf.sprintf "crash@%d: %s" !k e)
          | Ok db2 ->
            let sizes = partition_sizes db2 ~partitions in
            List.iteri
              (fun p n ->
                if n < committed.(p) then
                  Alcotest.fail
                    (Printf.sprintf "crash@%d: partition %d lost data (%d < %d)" !k p n
                       committed.(p));
                if n > committed.(p) + 1 then
                  Alcotest.fail
                    (Printf.sprintf "crash@%d: partition %d phantom (%d > %d)" !k p n
                       committed.(p)))
              sizes;
            MDb.close db2
        end;
        incr k
      done)
    [ Mem.Clean; Mem.Torn ]

(* Model property: random updates across partitions with interleaved
   partition checkpoints and reopens always equal a per-partition model. *)
type mcmd = MSet of int * int * int | MCkpt of int | MReopen

let gen_mcmd =
  QCheck2.Gen.(
    frequency
      [
        (6, map3 (fun p k v -> MSet (p, k, v)) (0 -- 2) (0 -- 10) (0 -- 99));
        (2, map (fun p -> MCkpt p) (0 -- 2));
        (1, pure MReopen);
      ])

let prop_multidb_model =
  Helpers.qtest ~count:60 "multidb matches per-partition model"
    QCheck2.Gen.(list_size (0 -- 35) gen_mcmd)
    (fun cmds ->
      let partitions = 3 in
      let store = Mem.create_store ~seed:77 () in
      let fs = Mem.fs store in
      let config = { Multidb.default_config with log_switch_bytes = 300 } in
      let model = Array.init partitions (fun _ -> Hashtbl.create 8) in
      let db = ref (MDb.open_exn ~config ~partitions fs) in
      let agree () =
        List.for_all
          (fun p ->
            MDb.query !db ~partition:p (fun st ->
                Hashtbl.length st = Hashtbl.length model.(p)
                && Hashtbl.fold
                     (fun k v acc -> acc && Hashtbl.find_opt st k = Some v)
                     model.(p) true))
          (List.init partitions Fun.id)
      in
      let ok =
        List.for_all
          (fun cmd ->
            (match cmd with
            | MSet (p, k, v) ->
              let key = Printf.sprintf "k%02d" k and value = string_of_int v in
              Hashtbl.replace model.(p) key value;
              MDb.update !db ~partition:p (KV.Set (key, value))
            | MCkpt p -> MDb.checkpoint_partition !db p
            | MReopen ->
              MDb.close !db;
              db := MDb.open_exn ~config ~partitions fs);
            agree ())
          cmds
      in
      MDb.close !db;
      ok)

let () =
  Helpers.run "multidb"
    [
      ("model", [ prop_multidb_model ]);
      ( "operations",
        [
          Alcotest.test_case "partition isolation" `Quick test_basic_isolation;
          Alcotest.test_case "one write per update" `Quick test_one_write_per_update;
          Alcotest.test_case "update_checked" `Quick test_update_checked;
        ] );
      ( "checkpoints",
        [
          Alcotest.test_case "durability without checkpoints" `Quick
            test_durability_no_checkpoints;
          Alcotest.test_case "partition checkpoint reduces replay" `Quick
            test_partition_checkpoint_reduces_replay;
          Alcotest.test_case "round robin" `Quick test_round_robin;
          Alcotest.test_case "log switch and flush rules" `Quick
            test_log_switch_and_flush;
          Alcotest.test_case "recovery across multiple logs" `Quick
            test_recovery_across_multiple_logs;
          Alcotest.test_case "auto round-robin policy" `Quick
            test_auto_round_robin_policy;
          Alcotest.test_case "partition count fixed" `Quick test_partition_count_fixed;
        ] );
      ("crash", [ Alcotest.test_case "crash sweep" `Quick test_crash_sweep ]);
    ]
