module Mem = Sdb_storage.Mem_fs
module Path = Sdb_nameserver.Name_path
module Data = Sdb_nameserver.Ns_data
module Ns = Sdb_nameserver.Nameserver

let check = Alcotest.check

let path_testable = Alcotest.testable Path.pp Path.equal
let tree_testable = Alcotest.testable Data.pp_tree Data.equal_tree

let mem_ns ?config () =
  let store = Mem.create_store ~seed:31 () in
  let fs = Mem.fs store in
  (store, fs, Ns.open_exn ?config fs)

let p s = match Path.of_string s with Ok p -> p | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Paths                                                                *)

let test_path_parsing () =
  check path_testable "root" [] (p "/");
  check path_testable "simple" [ "a" ] (p "/a");
  check path_testable "nested" [ "a"; "b"; "c" ] (p "/a/b/c");
  check path_testable "no leading slash" [ "a"; "b" ] (p "a/b");
  check path_testable "trailing slash" [ "a" ] (p "a/");
  check path_testable "collapsed slashes" [ "a"; "b" ] (p "a//b");
  check Alcotest.string "to_string root" "/" (Path.to_string []);
  check Alcotest.string "to_string" "/a/b" (Path.to_string [ "a"; "b" ]);
  check Alcotest.bool "roundtrip" true (Path.equal (p "/x/y/z") (p (Path.to_string (p "/x/y/z"))))

let test_path_operations () =
  check (Alcotest.option path_testable) "parent" (Some [ "a" ]) (Path.parent [ "a"; "b" ]);
  check (Alcotest.option path_testable) "parent of top" (Some []) (Path.parent [ "a" ]);
  check (Alcotest.option path_testable) "parent of root" None (Path.parent []);
  check (Alcotest.option Alcotest.string) "basename" (Some "b") (Path.basename [ "a"; "b" ]);
  check (Alcotest.option Alcotest.string) "basename root" None (Path.basename []);
  check path_testable "append" [ "a"; "b" ] (Path.append [ "a" ] "b");
  check Alcotest.bool "prefix yes" true (Path.is_prefix ~prefix:[ "a" ] [ "a"; "b" ]);
  check Alcotest.bool "prefix self" true (Path.is_prefix ~prefix:[ "a" ] [ "a" ]);
  check Alcotest.bool "prefix no" false (Path.is_prefix ~prefix:[ "a"; "b" ] [ "a" ]);
  check Alcotest.bool "root prefix" true (Path.is_prefix ~prefix:[] [ "x" ]);
  check Alcotest.bool "is_root" true (Path.is_root []);
  Alcotest.check Alcotest.bool "validate bad" true
    (Result.is_error (Path.validate [ "a/b" ]));
  Alcotest.check Alcotest.bool "validate empty comp" true
    (Result.is_error (Path.validate [ "" ]))

(* ------------------------------------------------------------------ *)
(* Pure data operations                                                 *)

let test_data_ops () =
  let root = Data.empty_node () in
  ignore (Data.ensure root [ "a"; "b" ]);
  Alcotest.check Alcotest.bool "created" true (Data.mem root [ "a"; "b" ]);
  Alcotest.check Alcotest.bool "intermediate" true (Data.mem root [ "a" ]);
  Data.set_value root [ "a"; "b" ] (Some "v");
  (match Data.find root [ "a"; "b" ] with
  | Some n -> check (Alcotest.option Alcotest.string) "value" (Some "v") n.Data.value
  | None -> Alcotest.fail "node lost");
  check Alcotest.int "count" 3 (Data.count_nodes root);
  Alcotest.check Alcotest.bool "weight" true (Data.weight_bytes root > 0);
  (* graft *)
  let subtree = Data.tree ~value:"sub" [ ("x", Data.leaf (Some "1")); ("y", Data.leaf None) ] in
  Data.graft root [ "a"; "c" ] subtree;
  check (Alcotest.option tree_testable) "grafted" (Some subtree)
    (Option.map (fun n -> Data.snapshot n) (Data.find root [ "a"; "c" ]));
  (* delete *)
  Data.delete_subtree root [ "a"; "b" ];
  Alcotest.check Alcotest.bool "deleted" false (Data.mem root [ "a"; "b" ]);
  Data.delete_subtree root [ "missing"; "path" ];
  (* root delete clears *)
  Data.delete_subtree root [];
  check Alcotest.int "cleared" 1 (Data.count_nodes root)

let test_snapshot_depth () =
  let root = Data.empty_node () in
  Data.set_value root [ "a"; "b"; "c" ] (Some "deep");
  let full = Data.snapshot root in
  let (Data.Tree t) = full in
  check Alcotest.int "full depth children" 1 (List.length t.tchildren);
  let shallow = Data.snapshot ~depth:1 root in
  let (Data.Tree s) = shallow in
  (match s.tchildren with
  | [ ("a", Data.Tree a) ] -> check Alcotest.int "depth cut" 0 (List.length a.tchildren)
  | _ -> Alcotest.fail "expected single child");
  let zero = Data.snapshot ~depth:0 root in
  let (Data.Tree z) = zero in
  check Alcotest.int "depth 0" 0 (List.length z.tchildren)

let test_materialize_roundtrip () =
  let tree =
    Data.tree ~value:"r"
      [
        ("b", Data.leaf (Some "2"));
        ("a", Data.tree [ ("z", Data.leaf None) ]);
      ]
  in
  let node = Data.materialize tree in
  check tree_testable "materialize/snapshot" tree (Data.snapshot node);
  Alcotest.check Alcotest.bool "equal_node" true (Data.equal_node node (Data.materialize tree))

(* ------------------------------------------------------------------ *)
(* The served database                                                  *)

let test_ns_basic () =
  let _, _, ns = mem_ns () in
  Ns.set_value ns (p "/hosts/alpha") (Some "10.0.0.1");
  Ns.set_value ns (p "/hosts/beta") (Some "10.0.0.2");
  Ns.set_value ns (p "/users/adb") (Some "Andrew Birrell");
  check (Alcotest.option Alcotest.string) "lookup" (Some "10.0.0.1")
    (Ns.lookup ns (p "/hosts/alpha"));
  check (Alcotest.option Alcotest.string) "absent" None (Ns.lookup ns (p "/hosts/gamma"));
  check Alcotest.bool "exists" true (Ns.exists ns (p "/hosts"));
  check
    (Alcotest.option (Alcotest.list Alcotest.string))
    "children" (Some [ "alpha"; "beta" ])
    (Ns.list_children ns (p "/hosts"));
  check
    (Alcotest.option (Alcotest.list Alcotest.string))
    "children of absent" None
    (Ns.list_children ns (p "/nothing"));
  check Alcotest.int "count" 6 (Ns.count_nodes ns);
  (* export/browse *)
  (match Ns.export ns (p "/hosts") with
  | Some (Data.Tree t) -> check Alcotest.int "two hosts" 2 (List.length t.tchildren)
  | None -> Alcotest.fail "export failed");
  (* unbind a value without deleting the node *)
  Ns.set_value ns (p "/hosts/alpha") None;
  check (Alcotest.option Alcotest.string) "unbound" None (Ns.lookup ns (p "/hosts/alpha"));
  check Alcotest.bool "node remains" true (Ns.exists ns (p "/hosts/alpha"))

let test_ns_subtree_updates () =
  let _, _, ns = mem_ns () in
  let subtree =
    Data.tree
      [
        ("printers", Data.tree [ ("lw1", Data.leaf (Some "bldg-5")) ]);
        ("servers", Data.leaf None);
      ]
  in
  Ns.write_subtree ns (p "/equip") subtree;
  check (Alcotest.option Alcotest.string) "deep value" (Some "bldg-5")
    (Ns.lookup ns (p "/equip/printers/lw1"));
  (* Replacing a subtree discards what was there. *)
  Ns.write_subtree ns (p "/equip") (Data.leaf (Some "gone"));
  check Alcotest.bool "old gone" false (Ns.exists ns (p "/equip/printers"));
  check (Alcotest.option Alcotest.string) "new value" (Some "gone")
    (Ns.lookup ns (p "/equip"));
  Ns.create ns (p "/x/y");
  check Alcotest.bool "created" true (Ns.exists ns (p "/x/y"));
  Ns.delete_subtree ns (p "/x");
  check Alcotest.bool "deleted" false (Ns.exists ns (p "/x"))

let test_ns_checked_updates () =
  let _, _, ns = mem_ns () in
  (match Ns.set_value_checked ns (p "/a/b") (Some "v") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "parent missing, should fail");
  Ns.create ns (p "/a");
  (match Ns.set_value_checked ns (p "/a/b") (Some "v") with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Ns.delete_subtree_checked ns (p "/zzz") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "delete of absent should fail");
  match Ns.delete_subtree_checked ns (p "/a/b") with
  | Ok () -> check Alcotest.bool "gone" false (Ns.exists ns (p "/a/b"))
  | Error e -> Alcotest.fail e

let test_ns_compare_and_set () =
  let _, _, ns = mem_ns () in
  Ns.set_value ns (p "/lock") (Some "v1");
  (match Ns.compare_and_set ns (p "/lock") ~expected:(Some "v1") (Some "v2") with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Ns.compare_and_set ns (p "/lock") ~expected:(Some "v1") (Some "v3") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "stale CAS succeeded");
  check (Alcotest.option Alcotest.string) "value" (Some "v2") (Ns.lookup ns (p "/lock"));
  (* CAS on an unbound name. *)
  match Ns.compare_and_set ns (p "/fresh") ~expected:None (Some "init") with
  | Ok () -> check (Alcotest.option Alcotest.string) "initialized" (Some "init")
               (Ns.lookup ns (p "/fresh"))
  | Error e -> Alcotest.fail e

let test_ns_persistence () =
  let _, fs, ns = mem_ns () in
  Ns.set_value ns (p "/a/b") (Some "1");
  Ns.set_value ns (p "/c") (Some "2");
  Ns.checkpoint ns;
  Ns.set_value ns (p "/a/d") (Some "3");
  Ns.delete_subtree ns (p "/c");
  Ns.close ns;
  let ns2 = Ns.open_exn fs in
  check (Alcotest.option Alcotest.string) "b" (Some "1") (Ns.lookup ns2 (p "/a/b"));
  check (Alcotest.option Alcotest.string) "d" (Some "3") (Ns.lookup ns2 (p "/a/d"));
  check Alcotest.bool "c deleted" false (Ns.exists ns2 (p "/c"));
  check Alcotest.int "replayed" 2 (Ns.stats ns2).Smalldb.recovery.Smalldb.replayed

let test_ns_snapshot_and_updates_since () =
  let _, _, ns = mem_ns () in
  Ns.set_value ns (p "/a") (Some "1");
  Ns.set_value ns (p "/b") (Some "2");
  let tree, lsn = Ns.snapshot_with_lsn ns in
  check Alcotest.int "lsn" 2 lsn;
  let node = Data.materialize tree in
  Alcotest.check Alcotest.bool "snapshot content" true (Data.mem node [ "a" ]);
  (match Ns.updates_since ns 0 with
  | Some l -> check Alcotest.int "all updates" 2 (List.length l)
  | None -> Alcotest.fail "log should cover 0");
  Ns.checkpoint ns;
  match Ns.updates_since ns 0 with
  | None -> ()
  | Some _ -> Alcotest.fail "checkpoint absorbed the log"

let test_ns_audit () =
  let _, _, ns = mem_ns () in
  Ns.set_value ns (p "/a") (Some "1");
  Ns.delete_subtree ns (p "/a");
  let log = Ns.fold_log ns ~init:[] ~f:(fun acc lsn u -> (lsn, u) :: acc) in
  match List.rev log with
  | [ (0, Ns.Set_value (pa, Some "1")); (1, Ns.Delete_subtree pb) ] ->
    check path_testable "path a" [ "a" ] pa;
    check path_testable "path b" [ "a" ] pb
  | _ -> Alcotest.fail "unexpected audit trail"

(* ------------------------------------------------------------------ *)
(* Enumeration and glob search                                          *)

module Glob = Sdb_nameserver.Name_glob

let glob s = match Glob.compile s with Ok g -> g | Error e -> Alcotest.fail e

let test_component_matching () =
  let yes pat s =
    Alcotest.check Alcotest.bool (pat ^ " ~ " ^ s) true (Glob.component_matches pat s)
  in
  let no pat s =
    Alcotest.check Alcotest.bool (pat ^ " !~ " ^ s) false (Glob.component_matches pat s)
  in
  yes "abc" "abc";
  no "abc" "abd";
  no "abc" "ab";
  yes "*" "";
  yes "*" "anything";
  yes "a*" "a";
  yes "a*" "abc";
  no "a*" "ba";
  yes "*c" "abc";
  no "*c" "abd";
  yes "a*c" "abc";
  yes "a*c" "ac";
  yes "a*c" "axxxxc";
  no "a*c" "axxxxd";
  yes "?" "x";
  no "?" "";
  no "?" "xy";
  yes "a?c" "abc";
  no "a?c" "ac";
  yes "*a*b*" "xaxbx";
  no "*a*b*" "xbxax";
  yes "**x**" "yxz";
  yes "a*b*c" "a123b456c";
  no "a*b*c" "a123c456b"

let test_glob_compile () =
  (match Glob.compile "/a/*/c" with
  | Ok g ->
    check (Alcotest.option Alcotest.int) "depth" (Some 3) (Glob.pattern_depth g);
    check Alcotest.string "roundtrip" "/a/*/c" (Glob.to_string g)
  | Error e -> Alcotest.fail e);
  (match Glob.compile "/users/**" with
  | Ok g -> check (Alcotest.option Alcotest.int) "descend" None (Glob.pattern_depth g)
  | Error e -> Alcotest.fail e);
  match Glob.compile "/a/**/b" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "interior ** accepted"

let test_glob_matches () =
  let g = glob "/hosts/*/addr" in
  Alcotest.check Alcotest.bool "match" true (Glob.matches g [ "hosts"; "x"; "addr" ]);
  Alcotest.check Alcotest.bool "wrong leaf" false (Glob.matches g [ "hosts"; "x"; "port" ]);
  Alcotest.check Alcotest.bool "too shallow" false (Glob.matches g [ "hosts"; "x" ]);
  Alcotest.check Alcotest.bool "too deep" false
    (Glob.matches g [ "hosts"; "x"; "addr"; "v4" ]);
  let d = glob "/users/**" in
  Alcotest.check Alcotest.bool "descend shallow" true (Glob.matches d [ "users"; "a" ]);
  Alcotest.check Alcotest.bool "descend deep" true
    (Glob.matches d [ "users"; "a"; "b"; "c" ]);
  Alcotest.check Alcotest.bool "descend not prefix" false (Glob.matches d [ "users" ]);
  Alcotest.check Alcotest.bool "other tree" false (Glob.matches d [ "hosts"; "a" ]);
  (* Viability pruning. *)
  Alcotest.check Alcotest.bool "viable prefix" true (Glob.prefix_viable g [ "hosts" ]);
  Alcotest.check Alcotest.bool "nonviable prefix" false (Glob.prefix_viable g [ "users" ])

let populated_ns () =
  let _, _, ns = mem_ns () in
  Ns.set_value ns (p "/hosts/acacia/addr") (Some "16.9.0.11");
  Ns.set_value ns (p "/hosts/acacia/os") (Some "ultrix");
  Ns.set_value ns (p "/hosts/buckeye/addr") (Some "16.9.0.12");
  Ns.set_value ns (p "/users/adb/office") (Some "210");
  Ns.set_value ns (p "/users/mbj/office") (Some "cmu");
  ns

let test_enumerate () =
  let ns = populated_ns () in
  let all = Ns.enumerate ns [] in
  check Alcotest.int "all nodes" 11 (List.length all);
  let hosts = Ns.enumerate ns (p "/hosts") in
  check
    Alcotest.(list (pair path_testable (option string)))
    "hosts subtree"
    [
      (p "/hosts/acacia", None);
      (p "/hosts/acacia/addr", Some "16.9.0.11");
      (p "/hosts/acacia/os", Some "ultrix");
      (p "/hosts/buckeye", None);
      (p "/hosts/buckeye/addr", Some "16.9.0.12");
    ]
    hosts;
  check Alcotest.int "absent prefix" 0 (List.length (Ns.enumerate ns (p "/zzz")))

let test_find () =
  let ns = populated_ns () in
  let addrs = Ns.find ns (glob "/hosts/*/addr") in
  check
    Alcotest.(list (pair path_testable (option string)))
    "all addrs"
    [
      (p "/hosts/acacia/addr", Some "16.9.0.11");
      (p "/hosts/buckeye/addr", Some "16.9.0.12");
    ]
    addrs;
  let a_hosts = Ns.find ns (glob "/hosts/a*") in
  check Alcotest.int "a-hosts" 1 (List.length a_hosts);
  let under_users = Ns.find ns (glob "/users/**") in
  check Alcotest.int "everything under users" 4 (List.length under_users);
  check Alcotest.int "no match" 0 (List.length (Ns.find ns (glob "/printers/*")))

(* The pruned search agrees with brute-force filtering on random trees. *)
let gen_glob_path =
  QCheck2.Gen.(list_size (0 -- 3) (map (fun i -> Printf.sprintf "n%d" i) (0 -- 3)))

let prop_find_equals_filter =
  Helpers.qtest ~count:60 "find = enumerate + filter"
    QCheck2.Gen.(
      pair
        (list_size (0 -- 20) gen_glob_path)
        (list_size (1 -- 3) (oneofl [ "n0"; "n1"; "*"; "n?"; "**" ])))
    (fun (paths, pattern_parts) ->
      (* ** only allowed last: move it. *)
      let parts =
        let non_star, star = List.partition (fun c -> c <> "**") pattern_parts in
        non_star @ (if star = [] then [] else [ "**" ])
      in
      if parts = [] then true
      else
        match Glob.compile ("/" ^ String.concat "/" parts) with
        | Error _ -> true
        | Ok g ->
          let _, _, ns = mem_ns () in
          List.iteri
            (fun i path ->
              if path <> [] then Ns.set_value ns path (Some (string_of_int i)))
            paths;
          let found = Ns.find ns g in
          let brute =
            List.filter (fun (path, _) -> Glob.matches g path) (Ns.enumerate ns [])
          in
          found = brute)

(* ------------------------------------------------------------------ *)
(* Model-based property test                                            *)

(* Reference model: a Map from path to value-option. The name server
   semantics: intermediate nodes exist as unbound names. *)
module PathMap = Map.Make (struct
  type t = string list

  let compare = Path.compare
end)

type model = string option PathMap.t

let model_add_intermediates path (m : model) =
  let rec go prefix m = function
    | [] -> m
    | c :: rest ->
      let prefix = prefix @ [ c ] in
      let m =
        if PathMap.mem prefix m then m else PathMap.add prefix None m
      in
      go prefix m rest
  in
  go [] m path

let model_empty : model = PathMap.singleton [] None

let model_apply (m : model) (u : Ns.update) : model =
  match u with
  | Ns.Set_value (path, v) ->
    model_add_intermediates path m |> PathMap.add path v
  | Ns.Create path -> model_add_intermediates path m
  | Ns.Delete_subtree [] -> model_empty
  | Ns.Delete_subtree path ->
    PathMap.filter (fun k _ -> not (Path.is_prefix ~prefix:path k)) m
  | Ns.Write_subtree (path, tree) ->
    let m = model_add_intermediates path m in
    let m = PathMap.filter (fun k _ -> not (Path.is_prefix ~prefix:path k)) m in
    let rec add prefix (Data.Tree t) m =
      let m = PathMap.add prefix t.tvalue m in
      List.fold_left (fun m (label, sub) -> add (prefix @ [ label ]) sub m) m
        t.tchildren
    in
    add path tree m

let gen_component = QCheck2.Gen.(map (fun i -> Printf.sprintf "n%d" i) (0 -- 3))
let gen_path = QCheck2.Gen.(list_size (0 -- 3) gen_component)

let gen_tree_small =
  QCheck2.Gen.(
    sized_size (0 -- 3)
    @@ fix (fun self n ->
           let value = option (map string_of_int (0 -- 99)) in
           if n = 0 then map (fun v -> Data.leaf v) value
           else
             map2
               (fun v children ->
                 (* Distinct labels required. *)
                 let labeled =
                   List.mapi (fun i c -> (Printf.sprintf "c%d" i, c)) children
                 in
                 Data.Tree { tvalue = v; tchildren = labeled })
               value
               (list_size (0 -- 3) (self (n / 2)))))

let gen_update =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun path v -> Ns.Set_value (path, v)) gen_path
          (option (map string_of_int (0 -- 99)));
        map (fun path -> Ns.Create path) gen_path;
        map (fun path -> Ns.Delete_subtree path) gen_path;
        map2 (fun path t -> Ns.Write_subtree (path, t)) gen_path gen_tree_small;
      ])

let model_of_ns ns : model =
  let tree, _ = Ns.snapshot_with_lsn ns in
  let rec add prefix (Data.Tree t) m =
    let m = PathMap.add prefix t.tvalue m in
    List.fold_left (fun m (label, sub) -> add (prefix @ [ label ]) sub m) m
      t.tchildren
  in
  add [] tree PathMap.empty

let prop_model =
  Helpers.qtest ~count:100 "name server matches reference model"
    QCheck2.Gen.(list_size (0 -- 25) gen_update)
    (fun updates ->
      let _, _, ns = mem_ns () in
      let model =
        List.fold_left
          (fun m u ->
            Ns.Db.update (Ns.db ns) u;
            model_apply m u)
          model_empty updates
      in
      let actual = model_of_ns ns in
      let normalize m = PathMap.bindings m in
      normalize model = normalize actual)

let prop_model_survives_restart =
  Helpers.qtest ~count:50 "model equivalence after restart"
    QCheck2.Gen.(list_size (0 -- 15) gen_update)
    (fun updates ->
      let store = Mem.create_store ~seed:8 () in
      let fs = Mem.fs store in
      let ns = Ns.open_exn fs in
      List.iter (fun u -> Ns.Db.update (Ns.db ns) u) updates;
      let before = model_of_ns ns in
      Ns.close ns;
      let ns2 = Ns.open_exn fs in
      let after = model_of_ns ns2 in
      PathMap.bindings before = PathMap.bindings after)

let () =
  Helpers.run "nameserver"
    [
      ( "paths",
        [
          Alcotest.test_case "parsing" `Quick test_path_parsing;
          Alcotest.test_case "operations" `Quick test_path_operations;
        ] );
      ( "data",
        [
          Alcotest.test_case "tree ops" `Quick test_data_ops;
          Alcotest.test_case "snapshot depth" `Quick test_snapshot_depth;
          Alcotest.test_case "materialize roundtrip" `Quick test_materialize_roundtrip;
        ] );
      ( "server",
        [
          Alcotest.test_case "basic operations" `Quick test_ns_basic;
          Alcotest.test_case "subtree updates" `Quick test_ns_subtree_updates;
          Alcotest.test_case "checked updates" `Quick test_ns_checked_updates;
          Alcotest.test_case "compare and set" `Quick test_ns_compare_and_set;
          Alcotest.test_case "persistence" `Quick test_ns_persistence;
          Alcotest.test_case "snapshot and updates_since" `Quick
            test_ns_snapshot_and_updates_since;
          Alcotest.test_case "audit trail" `Quick test_ns_audit;
        ] );
      ( "search",
        [
          Alcotest.test_case "component matching" `Quick test_component_matching;
          Alcotest.test_case "glob compile" `Quick test_glob_compile;
          Alcotest.test_case "glob matches" `Quick test_glob_matches;
          Alcotest.test_case "enumerate" `Quick test_enumerate;
          Alcotest.test_case "find" `Quick test_find;
          prop_find_equals_filter;
        ] );
      ( "properties", [ prop_model; prop_model_survives_restart ] );
    ]
