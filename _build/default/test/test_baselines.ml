module Fs = Sdb_storage.Fs
module Mem = Sdb_storage.Mem_fs
module B = Sdb_baselines
module Rng = Sdb_util.Rng

let check = Alcotest.check

let mem ?(seed = 41) () =
  let store = Mem.create_store ~seed () in
  (store, Mem.fs store)

(* ------------------------------------------------------------------ *)
(* Generic conformance suite, instantiated for all four techniques.     *)

module Conformance (Db : B.Kv_intf.S) = struct
  let open_exn fs =
    match Db.open_ fs with Ok t -> t | Error e -> Alcotest.fail (Db.technique ^ ": " ^ e)

  let test_basic () =
    let _, fs = mem () in
    let db = open_exn fs in
    check Alcotest.(option string) "empty get" None (Db.get db "k");
    Db.set db "k" "v1";
    check Alcotest.(option string) "set/get" (Some "v1") (Db.get db "k");
    Db.set db "k" "v2";
    check Alcotest.(option string) "overwrite" (Some "v2") (Db.get db "k");
    Db.set db "other" "x";
    check Alcotest.int "length" 2 (Db.length db);
    Db.remove db "k";
    check Alcotest.(option string) "removed" None (Db.get db "k");
    Db.remove db "never-there";
    check Alcotest.int "length after remove" 1 (Db.length db);
    (match Db.verify db with
    | Ok () -> ()
    | Error e -> Alcotest.fail e);
    Db.close db

  let test_durability () =
    let _, fs = mem () in
    let db = open_exn fs in
    for i = 0 to 49 do
      Db.set db (Printf.sprintf "key%02d" i) (Printf.sprintf "val%02d" i)
    done;
    Db.remove db "key07";
    Db.set db "key09" "rewritten";
    Db.close db;
    let db2 = open_exn fs in
    check Alcotest.int "all present" 49 (Db.length db2);
    check Alcotest.(option string) "value survives" (Some "val33") (Db.get db2 "key33");
    check Alcotest.(option string) "remove survives" None (Db.get db2 "key07");
    check Alcotest.(option string) "rewrite survives" (Some "rewritten")
      (Db.get db2 "key09");
    Db.close db2

  let test_iter_matches () =
    let _, fs = mem () in
    let db = open_exn fs in
    let expected = List.init 20 (fun i -> (Printf.sprintf "k%02d" i, string_of_int i)) in
    List.iter (fun (k, v) -> Db.set db k v) expected;
    let got = ref [] in
    Db.iter db (fun k v -> got := (k, v) :: !got);
    check
      Alcotest.(list (pair string string))
      "iter contents" expected
      (List.sort compare !got);
    Db.close db

  let test_odd_strings () =
    let _, fs = mem () in
    let db = open_exn fs in
    let odd = [ ("tab\tkey", "new\nline"); ("back\\slash", "\\t"); ("", "empty-key") ] in
    List.iter (fun (k, v) -> Db.set db k v) odd;
    Db.close db;
    let db2 = open_exn fs in
    List.iter
      (fun (k, v) -> check Alcotest.(option string) ("odd " ^ String.escaped k) (Some v) (Db.get db2 k))
      odd;
    Db.close db2

  (* Random ops against a Hashtbl reference model, then reopen. *)
  let test_model () =
    let _, fs = mem () in
    let db = open_exn fs in
    let model = Hashtbl.create 64 in
    let rng = Rng.create ~seed:17 in
    for _ = 1 to 300 do
      let k = Printf.sprintf "key%d" (Rng.int rng 40) in
      if Rng.int rng 4 = 0 then begin
        Hashtbl.remove model k;
        Db.remove db k
      end
      else begin
        let v = Rng.string rng ~len:(Rng.int rng 30) in
        Hashtbl.replace model k v;
        Db.set db k v
      end
    done;
    let agree db =
      check Alcotest.int "size" (Hashtbl.length model) (Db.length db);
      Hashtbl.iter
        (fun k v -> check Alcotest.(option string) k (Some v) (Db.get db k))
        model
    in
    agree db;
    Db.close db;
    let db2 = open_exn fs in
    agree db2;
    Db.close db2

  let cases name =
    ( name,
      [
        Alcotest.test_case "basic" `Quick test_basic;
        Alcotest.test_case "durability" `Quick test_durability;
        Alcotest.test_case "iter" `Quick test_iter_matches;
        Alcotest.test_case "odd strings" `Quick test_odd_strings;
        Alcotest.test_case "random model" `Quick test_model;
      ] )
end

module Textfile_conf = Conformance (B.Textfile_db)
module Adhoc_conf = Conformance (B.Adhoc_db)
module Atomic_conf = Conformance (B.Atomic_db)
module Ours_conf = Conformance (B.Smalldb_kv)

(* ------------------------------------------------------------------ *)
(* Technique-specific behaviour                                          *)

let test_textfile_whole_rewrite () =
  let _, fs = mem () in
  let db = match B.Textfile_db.open_ fs with Ok t -> t | Error e -> Alcotest.fail e in
  for i = 0 to 19 do
    B.Textfile_db.set db (Printf.sprintf "user%02d" i) "x"
  done;
  let before = Fs.Counters.copy fs.Fs.counters in
  B.Textfile_db.set db "one-more" "y";
  let d = Fs.Counters.diff ~after:fs.Fs.counters ~before in
  (* The whole database is rewritten: bytes written scale with db size. *)
  Alcotest.check Alcotest.bool "whole file rewritten" true
    (d.Fs.Counters.bytes_written > 150);
  check Alcotest.int "rename per update" 1 d.Fs.Counters.renames

let test_textfile_crash_safe () =
  (* The rewrite+rename protocol never loses previously set data. *)
  for k = 1 to 30 do
    let store, fs = mem ~seed:(500 + k) () in
    let db = match B.Textfile_db.open_ fs with Ok t -> t | Error e -> Alcotest.fail e in
    let committed = ref 0 in
    (try
       Mem.set_crash_after store ~ops:k ~mode:Mem.Torn;
       for i = 0 to 9 do
         B.Textfile_db.set db (string_of_int i) "v";
         incr committed
       done;
       Mem.disarm_crash store
     with Mem.Crash -> ());
    Mem.disarm_crash store;
    match B.Textfile_db.open_ fs with
    | Ok db2 ->
      let n = B.Textfile_db.length db2 in
      if n < !committed || n > !committed + 1 then
        Alcotest.fail (Printf.sprintf "k=%d: %d vs committed %d" k n !committed)
    | Error e -> Alcotest.fail (Printf.sprintf "k=%d: %s" k e)
  done

let test_adhoc_one_write_per_update () =
  let _, fs = mem () in
  let db = match B.Adhoc_db.open_ fs with Ok t -> t | Error e -> Alcotest.fail e in
  B.Adhoc_db.set db "warm" "up";
  let before = Fs.Counters.copy fs.Fs.counters in
  B.Adhoc_db.set db "key" "value";
  let d = Fs.Counters.diff ~after:fs.Fs.counters ~before in
  check Alcotest.int "one page write" 1 d.Fs.Counters.data_writes;
  check Alcotest.int "one sync" 1 d.Fs.Counters.syncs

let test_adhoc_overflow_chains () =
  let _, fs = mem () in
  (* One bucket, tiny pages: everything must chain. *)
  let store =
    match Sdb_baselines.Paged_store.open_ fs ~file:"chain.db" ~page_size:128 ~buckets:1 () with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let module PS = Sdb_baselines.Paged_store in
  for i = 0 to 30 do
    PS.apply store ~sync:true (PS.prepare_set store (Printf.sprintf "key%02d" i) "0123456789")
  done;
  Alcotest.check Alcotest.bool "chained pages" true (PS.npages store > 3);
  check Alcotest.int "all stored" 31 (PS.length store);
  for i = 0 to 30 do
    check Alcotest.(option string) "chained get" (Some "0123456789")
      (PS.get store (Printf.sprintf "key%02d" i))
  done;
  (* Update and remove within chains. *)
  PS.apply store ~sync:true (PS.prepare_set store "key05" "NEW");
  check Alcotest.(option string) "updated in chain" (Some "NEW") (PS.get store "key05");
  PS.apply store ~sync:true (PS.prepare_remove store "key06");
  check Alcotest.(option string) "removed from chain" None (PS.get store "key06");
  check Alcotest.int "count after remove" 30 (PS.length store);
  (match PS.verify store with Ok () -> () | Error e -> Alcotest.fail e);
  PS.close store

let test_adhoc_record_too_large () =
  let _, fs = mem () in
  let db = match B.Adhoc_db.open_ fs with Ok t -> t | Error e -> Alcotest.fail e in
  Alcotest.check_raises "record larger than page"
    (Invalid_argument "Paged_store: record larger than a page") (fun () ->
      B.Adhoc_db.set db "k" (String.make 5000 'x'))

let test_adhoc_vulnerable_to_torn_crash () =
  (* §2: in-place updates leave the database "quite vulnerable to
     transient errors".  Across seeds, at least one torn crash must
     corrupt previously committed data (detected by verify, a damaged
     read, or a lost committed binding). *)
  let corrupted = ref 0 and runs = ref 0 in
  for seed = 1 to 80 do
    let store, fs = mem ~seed:(900 + seed) () in
    match B.Adhoc_db.open_ fs with
    | Error e -> Alcotest.fail e
    | Ok db ->
      let committed = ref [] in
      let crashed = ref false in
      (try
         (* Several values per bucket so pages are rewritten in place. *)
         for i = 0 to 19 do
           let k = Printf.sprintf "key%d" (i mod 5) in
           let v = Printf.sprintf "val%d-%d" i seed in
           B.Adhoc_db.set db k v;
           committed := (k, v) :: !committed
         done;
         Mem.set_crash_after store ~ops:(1 + (seed mod 3)) ~mode:Mem.Torn;
         for i = 20 to 26 do
           let k = Printf.sprintf "key%d" (i mod 5) in
           B.Adhoc_db.set db k "late";
           committed := (k, "late") :: !committed
         done;
         Mem.disarm_crash store
       with Mem.Crash -> crashed := true);
      Mem.disarm_crash store;
      if !crashed then begin
        incr runs;
        match B.Adhoc_db.open_ fs with
        | Error _ -> incr corrupted
        | Ok db2 ->
          let latest = Hashtbl.create 8 in
          List.iter
            (fun (k, v) -> if not (Hashtbl.mem latest k) then Hashtbl.add latest k v)
            !committed;
          (* The most recent committed write per key may be the one
             in-flight; accept current-or-previous, but a damaged read
             or verify failure is corruption. *)
          (match B.Adhoc_db.verify db2 with
          | Error _ -> incr corrupted
          | Ok () -> (
            try
              Hashtbl.iter
                (fun k _ ->
                  match B.Adhoc_db.get db2 k with
                  | Some _ -> ()
                  | None -> raise Exit)
                latest
            with
            | Exit -> incr corrupted
            | Fs.Read_error _ -> incr corrupted))
      end
  done;
  Alcotest.check Alcotest.bool
    (Printf.sprintf "ad-hoc corrupts under torn crashes (%d/%d)" !corrupted !runs)
    true (!corrupted > 0)

let test_atomic_two_writes_per_update () =
  let _, fs = mem () in
  let db = match B.Atomic_db.open_ fs with Ok t -> t | Error e -> Alcotest.fail e in
  B.Atomic_db.set db "warm" "up";
  let before = Fs.Counters.copy fs.Fs.counters in
  B.Atomic_db.set db "key" "value";
  let d = Fs.Counters.diff ~after:fs.Fs.counters ~before in
  check Alcotest.int "two writes" 2 d.Fs.Counters.data_writes;
  check Alcotest.int "two syncs" 2 d.Fs.Counters.syncs

let test_atomic_survives_torn_crashes () =
  (* The redo log makes the same paged store crash-proof. *)
  for seed = 1 to 60 do
    let store, fs = mem ~seed:(1300 + seed) () in
    match B.Atomic_db.open_ fs with
    | Error e -> Alcotest.fail e
    | Ok db ->
      let last = Hashtbl.create 8 in
      let crashed = ref false in
      (try
         Mem.set_crash_after store ~ops:(3 + (seed mod 40)) ~mode:Mem.Torn;
         for i = 0 to 19 do
           let k = Printf.sprintf "key%d" (i mod 5) in
           let v = Printf.sprintf "val%d-%d" i seed in
           B.Atomic_db.set db k v;
           Hashtbl.replace last k v
         done;
         Mem.disarm_crash store
       with Mem.Crash -> crashed := true);
      Mem.disarm_crash store;
      ignore !crashed;
      (match B.Atomic_db.open_ fs with
      | Error e -> Alcotest.fail (Printf.sprintf "seed %d: recovery failed: %s" seed e)
      | Ok db2 ->
        (match B.Atomic_db.verify db2 with
        | Ok () -> ()
        | Error e -> Alcotest.fail (Printf.sprintf "seed %d: corrupt: %s" seed e));
        (* Every committed value must be the committed one or, for the
           single in-flight key, possibly its previous value. *)
        Hashtbl.iter
          (fun k v ->
            match B.Atomic_db.get db2 k with
            | Some got ->
              if got <> v && got <> "late" then begin
                (* Accept the previous committed value for at most the
                   in-flight update; detect gross corruption. *)
                if String.length got < 4 || String.sub got 0 3 <> "val" then
                  Alcotest.fail (Printf.sprintf "seed %d: garbage %S" seed got)
              end
            | None -> Alcotest.fail (Printf.sprintf "seed %d: lost %s" seed k))
          last;
        B.Atomic_db.close db2)
  done

(* Property: the paged store with pathological geometry (tiny pages,
   one bucket) agrees with a Hashtbl model under random operations, and
   its file verifies and reopens at every step. *)
let prop_paged_store_model =
  Helpers.qtest ~count:60 "paged store matches model (tiny pages)"
    QCheck2.Gen.(
      list_size (1 -- 80)
        (pair (0 -- 15) (option (string_size ~gen:printable (0 -- 40)))))
    (fun ops ->
      let module PS = B.Paged_store in
      let store = Mem.create_store ~seed:3 () in
      let fs = Mem.fs store in
      let ps =
        match PS.open_ fs ~file:"prop.db" ~page_size:128 ~buckets:2 () with
        | Ok s -> s
        | Error e -> failwith e
      in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          let key = Printf.sprintf "key%02d" k in
          match v with
          | Some value ->
            Hashtbl.replace model key value;
            PS.apply ps ~sync:true (PS.prepare_set ps key value)
          | None ->
            Hashtbl.remove model key;
            PS.apply ps ~sync:true (PS.prepare_remove ps key))
        ops;
      let agree ps =
        PS.length ps = Hashtbl.length model
        && Hashtbl.fold
             (fun k v acc -> acc && PS.get ps k = Some v)
             model true
      in
      let ok = agree ps && PS.verify ps = Ok () in
      PS.close ps;
      (* Reopen from disk: everything was synced, so it must agree. *)
      let ps2 =
        match PS.open_ fs ~file:"prop.db" () with Ok s -> s | Error e -> failwith e
      in
      let ok2 = agree ps2 in
      PS.close ps2;
      ok && ok2)

let test_atomic_trims_log () =
  let _, fs = mem () in
  let db = match B.Atomic_db.open_ fs with Ok t -> t | Error e -> Alcotest.fail e in
  (* Push enough page images through to exceed the trim threshold. *)
  for i = 0 to 400 do
    B.Atomic_db.set db (Printf.sprintf "k%d" (i mod 10)) (String.make 100 'x')
  done;
  let log_size = fs.Fs.file_size B.Atomic_db.log_file_name in
  Alcotest.check Alcotest.bool "log trimmed" true (log_size < 2 * 1024 * 1024);
  B.Atomic_db.close db

let () =
  Helpers.run "baselines"
    [
      Textfile_conf.cases "conformance: text file";
      Adhoc_conf.cases "conformance: ad-hoc paged";
      Atomic_conf.cases "conformance: atomic commit";
      Ours_conf.cases "conformance: this paper";
      ( "textfile",
        [
          Alcotest.test_case "whole-file rewrite" `Quick test_textfile_whole_rewrite;
          Alcotest.test_case "crash safe" `Quick test_textfile_crash_safe;
        ] );
      ( "adhoc",
        [
          Alcotest.test_case "one write per update" `Quick test_adhoc_one_write_per_update;
          Alcotest.test_case "overflow chains" `Quick test_adhoc_overflow_chains;
          Alcotest.test_case "record too large" `Quick test_adhoc_record_too_large;
          Alcotest.test_case "vulnerable to torn crash" `Quick
            test_adhoc_vulnerable_to_torn_crash;
          prop_paged_store_model;
        ] );
      ( "atomic",
        [
          Alcotest.test_case "two writes per update" `Quick
            test_atomic_two_writes_per_update;
          Alcotest.test_case "survives torn crashes" `Quick
            test_atomic_survives_torn_crashes;
          Alcotest.test_case "trims log" `Quick test_atomic_trims_log;
        ] );
    ]
