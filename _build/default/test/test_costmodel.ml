(* The cost model must actually reproduce the §5 calibration points:
   these tests run real engine operations on the simulated store and
   check that the modelled 1987 times land on the paper's numbers. *)

module Fs = Sdb_storage.Fs
module Mem = Sdb_storage.Mem_fs
module Cost = Sdb_costmodel.Costmodel
module P = Sdb_pickle.Pickle
open Helpers

let check = Alcotest.check
let costs = Cost.microvax_1987

let within name ~expect ~tolerance actual =
  if Float.abs (actual -. expect) > tolerance then
    Alcotest.fail
      (Printf.sprintf "%s: modelled %.1f, expected %.1f (+/- %.1f)" name actual expect
         tolerance)

(* A payload sized like the paper's update parameters (~300 B pickled). *)
let paper_payload = String.make 280 'p'

let test_update_models_54ms () =
  let _, fs, db = mem_db () in
  KVDb.update db (KV.Set ("warm", "up"));
  let snap = Cost.snapshot fs in
  KVDb.update db (KV.Set ("key", paper_payload));
  let m = Cost.model costs (Cost.since ~explore_ops:1 ~modify_ops:1 snap fs) in
  (* Paper: 6 + 6 + 22 + 20 = 54 ms. *)
  within "update total" ~expect:54.0 ~tolerance:4.0 m.Cost.total_model_ms;
  within "explore" ~expect:6.0 ~tolerance:0.01 m.Cost.explore_model_ms;
  within "modify" ~expect:6.0 ~tolerance:0.01 m.Cost.modify_model_ms;
  within "pickle" ~expect:22.0 ~tolerance:3.0 m.Cost.pickle_model_ms;
  within "log write" ~expect:20.0 ~tolerance:3.0 m.Cost.disk_model_ms;
  (* The paper's "about 40% of the cost of an update is in PickleWrite". *)
  let share = m.Cost.pickle_model_ms /. m.Cost.total_model_ms in
  Alcotest.check Alcotest.bool "pickle share ~40%" true (share > 0.3 && share < 0.5)

let test_checkpoint_models_one_minute () =
  (* Build ~1 MiB of state and checkpoint it. *)
  let _, fs, db = mem_db () in
  let rng = Sdb_util.Rng.create ~seed:5 in
  let batch = ref [] in
  for i = 0 to 11_000 do
    batch := KV.Set (Printf.sprintf "key%06d" i, Sdb_util.Rng.string rng ~len:64) :: !batch;
    if List.length !batch = 500 then begin
      KVDb.update_batch db !batch;
      batch := []
    end
  done;
  KVDb.update_batch db !batch;
  let snap = Cost.snapshot fs in
  KVDb.checkpoint db;
  let m = Cost.model costs (Cost.since snap fs) in
  let gen = (KVDb.stats db).Smalldb.generation in
  let blob = fs.Fs.file_size (Sdb_checkpoint.Checkpoint_store.checkpoint_file gen) in
  (* Scale the paper's 60 s/MiB to the blob we actually wrote. *)
  let mib = float_of_int blob /. float_of_int (1 lsl 20) in
  within "checkpoint total"
    ~expect:(60_000.0 *. mib)
    ~tolerance:(12_000.0 *. mib)
    m.Cost.total_model_ms;
  (* Pickling dominates the disk ~10:1 (55 s vs 5 s). *)
  Alcotest.check Alcotest.bool "pickle dominates" true
    (m.Cost.pickle_model_ms > 6.0 *. m.Cost.disk_model_ms)

let test_restart_models_20ms_per_entry () =
  let _, fs, db = mem_db () in
  for i = 0 to 99 do
    KVDb.update db (KV.Set (sequenced_key i, paper_payload))
  done;
  KVDb.close db;
  let snap = Cost.snapshot fs in
  let db2 = KVDb.open_exn fs in
  let m = Cost.model costs (Cost.since ~modify_ops:100 snap fs) in
  KVDb.close db2;
  (* 100 entries at ~20 ms each, plus a small checkpoint read. *)
  let per_entry = m.Cost.total_model_ms /. 100.0 in
  within "replay per entry" ~expect:20.0 ~tolerance:5.0 per_entry

let test_rpc_models_8ms () =
  let m =
    Cost.model costs
      {
        Cost.explore_ops = 0;
        modify_ops = 0;
        pickle_ops = 0;
        pickled_bytes = 0;
        unpickle_ops = 0;
        unpickled_bytes = 0;
        disk = Fs.Counters.create ();
        rpc_round_trips = 3;
      }
  in
  check (Alcotest.float 1e-9) "3 round trips" 24.0 m.Cost.rpc_model_ms;
  check (Alcotest.float 1e-9) "total is rpc only" 24.0 m.Cost.total_model_ms

let test_breakdown_sums () =
  let _, fs, db = mem_db () in
  let snap = Cost.snapshot fs in
  for i = 0 to 9 do
    KVDb.update db (sequenced_update i)
  done;
  KVDb.checkpoint db;
  let m = Cost.model costs (Cost.since ~explore_ops:10 ~modify_ops:10 snap fs) in
  let parts =
    m.Cost.explore_model_ms +. m.Cost.modify_model_ms +. m.Cost.pickle_model_ms
    +. m.Cost.unpickle_model_ms +. m.Cost.disk_model_ms +. m.Cost.rpc_model_ms
  in
  check (Alcotest.float 1e-6) "total = sum of parts" parts m.Cost.total_model_ms;
  Alcotest.check Alcotest.bool "pp renders" true
    (String.length (Format.asprintf "%a" Cost.pp_breakdown m) > 0)

let test_since_isolates_window () =
  let _, fs, db = mem_db () in
  KVDb.update db (sequenced_update 0);
  let snap = Cost.snapshot fs in
  (* Nothing happened since the snapshot. *)
  let m = Cost.model costs (Cost.since snap fs) in
  check (Alcotest.float 1e-9) "empty window" 0.0 m.Cost.total_model_ms;
  KVDb.update db (sequenced_update 1);
  let m = Cost.model costs (Cost.since snap fs) in
  Alcotest.check Alcotest.bool "window sees one update" true
    (m.Cost.total_model_ms > 10.0 && m.Cost.total_model_ms < 100.0)

let test_pickle_counters_feed_model () =
  P.Counters.reset ();
  let store = Mem.create_store () in
  let fs = Mem.fs store in
  let snap = Cost.snapshot fs in
  ignore (P.encode P.string (String.make 1000 'x'));
  let a = Cost.since snap fs in
  check Alcotest.int "one pickle op" 1 a.Cost.pickle_ops;
  Alcotest.check Alcotest.bool "bytes counted" true (a.Cost.pickled_bytes >= 1000)

let () =
  Helpers.run "costmodel"
    [
      ( "calibration",
        [
          Alcotest.test_case "update is ~54 ms" `Quick test_update_models_54ms;
          Alcotest.test_case "1 MiB checkpoint is ~1 minute" `Quick
            test_checkpoint_models_one_minute;
          Alcotest.test_case "replay is ~20 ms/entry" `Quick
            test_restart_models_20ms_per_entry;
          Alcotest.test_case "RPC round trip is 8 ms" `Quick test_rpc_models_8ms;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "breakdown sums" `Quick test_breakdown_sums;
          Alcotest.test_case "since isolates the window" `Quick
            test_since_isolates_window;
          Alcotest.test_case "pickle counters feed in" `Quick
            test_pickle_counters_feed_model;
        ] );
    ]
