module Fs = Sdb_storage.Fs
module Mem = Sdb_storage.Mem_fs
module Store = Sdb_checkpoint.Checkpoint_store
module Wal = Sdb_wal.Wal

let check = Alcotest.check
let fp = String.make 16 '\x01'

let mem () =
  let store = Mem.create_store ~seed:21 () in
  (store, Mem.fs store)

(* Install generation [v] with given checkpoint contents: the exact §3
   sequence the engine performs. *)
let install fs ~retain ~old v blob =
  Store.write_checkpoint fs ~version:v blob;
  let w = Wal.Writer.create fs (Store.log_file v) ~fingerprint:fp in
  Wal.Writer.close w;
  Store.commit fs ~retain_previous:retain ~old_version:old ~new_version:v

let expect_current fs ~retain v =
  match Store.recover fs ~retain_previous:retain with
  | Ok (Some r) ->
    check Alcotest.int "current version" v r.Store.current.Store.version;
    r
  | Ok None -> Alcotest.fail "unexpectedly fresh"
  | Error e -> Alcotest.fail e

let test_fresh () =
  let _, fs = mem () in
  match Store.recover fs ~retain_previous:false with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "expected fresh"
  | Error e -> Alcotest.fail e

let test_quiescent_state () =
  let _, fs = mem () in
  install fs ~retain:false ~old:None 0 "blob0";
  check Alcotest.(list string) "quiescent files"
    [ "checkpoint0"; "logfile0"; "version" ]
    (fs.Fs.list_files ());
  check Alcotest.string "version contents" "0" (Fs.read_file fs "version");
  let r = expect_current fs ~retain:false 0 in
  check Alcotest.string "checkpoint file" "checkpoint0"
    r.Store.current.Store.checkpoint_file;
  check Alcotest.string "log file" "logfile0" r.Store.current.Store.log_file;
  check Alcotest.bool "no switch completed" false r.Store.completed_switch;
  check Alcotest.string "blob intact" "blob0" (Fs.read_file fs "checkpoint0")

let test_switch_removes_old () =
  let _, fs = mem () in
  install fs ~retain:false ~old:None 0 "blob0";
  install fs ~retain:false ~old:(Some 0) 1 "blob1";
  check Alcotest.(list string) "only new generation"
    [ "checkpoint1"; "logfile1"; "version" ]
    (fs.Fs.list_files ());
  check Alcotest.string "version" "1" (Fs.read_file fs "version");
  ignore (expect_current fs ~retain:false 1)

let test_retention_keeps_previous () =
  let _, fs = mem () in
  install fs ~retain:true ~old:None 0 "blob0";
  install fs ~retain:true ~old:(Some 0) 1 "blob1";
  check Alcotest.(list string) "two generations"
    [ "checkpoint0"; "checkpoint1"; "logfile0"; "logfile1"; "version" ]
    (fs.Fs.list_files ());
  (* The generation before the previous one goes away. *)
  install fs ~retain:true ~old:(Some 1) 2 "blob2";
  check Alcotest.(list string) "generations 1 and 2"
    [ "checkpoint1"; "checkpoint2"; "logfile1"; "logfile2"; "version" ]
    (fs.Fs.list_files ());
  let r = expect_current fs ~retain:true 2 in
  match r.Store.previous with
  | Some prev -> check Alcotest.int "previous version" 1 prev.Store.version
  | None -> Alcotest.fail "previous generation missing"

let test_recover_completes_committed_switch () =
  let _, fs = mem () in
  install fs ~retain:false ~old:None 0 "blob0";
  (* Begin a switch to 1 but "crash" right after the commit point:
     newversion written, nothing cleaned up. *)
  Store.write_checkpoint fs ~version:1 "blob1";
  let w = Wal.Writer.create fs (Store.log_file 1) ~fingerprint:fp in
  Wal.Writer.close w;
  Fs.write_file fs Store.newversion_file "1";
  let r = expect_current fs ~retain:false 1 in
  check Alcotest.bool "completed switch" true r.Store.completed_switch;
  check Alcotest.(list string) "cleaned up"
    [ "checkpoint1"; "logfile1"; "version" ]
    (fs.Fs.list_files ());
  check Alcotest.string "version installed" "1" (Fs.read_file fs "version")

let test_recover_ignores_invalid_newversion () =
  let _, fs = mem () in
  install fs ~retain:false ~old:None 0 "blob0";
  (* Partially written newversion: exists but contains junk. *)
  Fs.write_file fs Store.newversion_file "not-a-number";
  let r = expect_current fs ~retain:false 0 in
  check Alcotest.bool "no switch" false r.Store.completed_switch;
  check Alcotest.bool "newversion removed" false (fs.Fs.exists Store.newversion_file)

let test_recover_ignores_newversion_without_files () =
  let _, fs = mem () in
  install fs ~retain:false ~old:None 0 "blob0";
  (* newversion names a generation whose checkpoint never made it. *)
  Fs.write_file fs Store.newversion_file "1";
  let r = expect_current fs ~retain:false 0 in
  check Alcotest.int "fell back" 0 r.Store.current.Store.version

let test_recover_removes_partial_next_generation () =
  let _, fs = mem () in
  install fs ~retain:false ~old:None 0 "blob0";
  (* Crash mid-checkpoint: checkpoint1 exists (maybe partial), no
     logfile1, no newversion. *)
  Store.write_checkpoint fs ~version:1 "partial";
  ignore (expect_current fs ~retain:false 0);
  check Alcotest.bool "partial removed" false (fs.Fs.exists "checkpoint1")

let test_recover_removes_stale_old_generations () =
  let _, fs = mem () in
  install fs ~retain:false ~old:None 0 "blob0";
  (* Leftovers that cleanup missed (e.g. crash during deletes). *)
  Fs.write_file fs "checkpoint7" "blob7";
  let w = Wal.Writer.create fs "logfile7" ~fingerprint:fp in
  Wal.Writer.close w;
  Fs.write_file fs Store.version_file "7";
  (* Now 7 is current; 0 is stale. *)
  ignore (expect_current fs ~retain:false 7);
  check Alcotest.bool "stale checkpoint removed" false (fs.Fs.exists "checkpoint0");
  check Alcotest.bool "stale log removed" false (fs.Fs.exists "logfile0")

let test_recover_corrupt_version_files () =
  (* A junk version file with real generations present: refuse rather
     than guess or delete. *)
  let _, fs = mem () in
  install fs ~retain:false ~old:None 0 "blob0";
  Fs.write_file fs Store.version_file "junk";
  (match Store.recover fs ~retain_previous:false with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected corrupt-store error");
  check Alcotest.bool "data preserved" true (fs.Fs.exists "checkpoint0");
  (* A junk version file alone (nothing to lose): fresh after cleanup. *)
  let _, fs2 = mem () in
  Fs.write_file fs2 Store.version_file "junk";
  match Store.recover fs2 ~retain_previous:false with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "expected fresh"
  | Error e -> Alcotest.fail e

let test_recover_crashed_first_init () =
  let _, fs = mem () in
  (* Crash during the very first init: checkpoint0 exists, no version
     file at all.  Treated as fresh after cleanup. *)
  Store.write_checkpoint fs ~version:0 "blob0";
  (match Store.recover fs ~retain_previous:false with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "expected fresh"
  | Error e -> Alcotest.fail e);
  check Alcotest.(list string) "cleaned" [] (fs.Fs.list_files ())

let test_commit_preconditions () =
  let _, fs = mem () in
  Alcotest.check_raises "missing checkpoint"
    (Invalid_argument "Checkpoint_store.commit: new checkpoint missing") (fun () ->
      Store.commit fs ~retain_previous:false ~old_version:None ~new_version:0)

let test_foreign_files_untouched () =
  let _, fs = mem () in
  Fs.write_file fs "README" "hello";
  install fs ~retain:false ~old:None 0 "blob0";
  install fs ~retain:false ~old:(Some 0) 1 "blob1";
  ignore (expect_current fs ~retain:false 1);
  check Alcotest.bool "foreign file kept" true (fs.Fs.exists "README")

let test_disk_files () =
  let _, fs = mem () in
  install fs ~retain:false ~old:None 0 "four" ;
  let files = Store.disk_files fs in
  check Alcotest.bool "has checkpoint0" true
    (List.exists (fun (n, s) -> n = "checkpoint0" && s = 4) files)

(* Crash sweep over the whole install sequence: at every mutating-op
   crash point, recovery must land on generation 0 or generation 1,
   never in between, and the chosen checkpoint must be intact. *)
let test_commit_crash_sweep () =
  let mode_list = [ Mem.Clean; Mem.Torn ] in
  List.iter
    (fun mode ->
      let rec sweep k tested_any =
        let store = Mem.create_store ~seed:(100 + k) () in
        let fs = Mem.fs store in
        install fs ~retain:false ~old:None 0 "generation-zero";
        let crashed = ref false in
        (try
           Mem.set_crash_after store ~ops:k ~mode;
           install fs ~retain:false ~old:(Some 0) 1 "generation-one";
           Mem.disarm_crash store
         with Mem.Crash -> crashed := true);
        if !crashed then begin
          (match Store.recover fs ~retain_previous:false with
          | Error e -> Alcotest.fail (Printf.sprintf "crash point %d: %s" k e)
          | Ok None -> Alcotest.fail (Printf.sprintf "crash point %d: store vanished" k)
          | Ok (Some r) ->
            let v = r.Store.current.Store.version in
            if v <> 0 && v <> 1 then
              Alcotest.fail (Printf.sprintf "crash point %d: version %d" k v);
            let blob = Fs.read_file fs r.Store.current.Store.checkpoint_file in
            let expected = if v = 0 then "generation-zero" else "generation-one" in
            check Alcotest.string (Printf.sprintf "crash point %d blob" k) expected blob);
          sweep (k + 1) true
        end
        else if not tested_any then Alcotest.fail "sweep never crashed"
      in
      sweep 1 false)
    mode_list

let () =
  Helpers.run "checkpoint"
    [
      ( "protocol",
        [
          Alcotest.test_case "fresh store" `Quick test_fresh;
          Alcotest.test_case "quiescent state" `Quick test_quiescent_state;
          Alcotest.test_case "switch removes old" `Quick test_switch_removes_old;
          Alcotest.test_case "retention keeps previous" `Quick
            test_retention_keeps_previous;
          Alcotest.test_case "commit preconditions" `Quick test_commit_preconditions;
          Alcotest.test_case "disk files" `Quick test_disk_files;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "completes committed switch" `Quick
            test_recover_completes_committed_switch;
          Alcotest.test_case "ignores invalid newversion" `Quick
            test_recover_ignores_invalid_newversion;
          Alcotest.test_case "ignores newversion without files" `Quick
            test_recover_ignores_newversion_without_files;
          Alcotest.test_case "removes partial next generation" `Quick
            test_recover_removes_partial_next_generation;
          Alcotest.test_case "removes stale old generations" `Quick
            test_recover_removes_stale_old_generations;
          Alcotest.test_case "corrupt version files" `Quick
            test_recover_corrupt_version_files;
          Alcotest.test_case "crashed first init" `Quick test_recover_crashed_first_init;
          Alcotest.test_case "foreign files untouched" `Quick test_foreign_files_untouched;
          Alcotest.test_case "crash sweep over commit" `Quick test_commit_crash_sweep;
        ] );
    ]
