test/test_multidb.ml: Alcotest Array Fun Hashtbl Helpers KV List Printf QCheck2 Sdb_multidb Sdb_storage String
