test/helpers.ml: Alcotest Filename Hashtbl List Printf QCheck2 QCheck_alcotest Sdb_pickle Sdb_storage Smalldb Unix
