test/test_wal.ml: Alcotest Format Helpers List Printf QCheck2 Result Sdb_storage Sdb_wal String
