test/test_replica.ml: Alcotest Helpers List Printf Sdb_nameserver Sdb_replica Sdb_rpc Sdb_storage Thread
