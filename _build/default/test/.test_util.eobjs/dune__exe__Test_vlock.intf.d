test/test_vlock.mli:
