test/test_checkpoint.ml: Alcotest Helpers List Printf Sdb_checkpoint Sdb_storage Sdb_wal String
