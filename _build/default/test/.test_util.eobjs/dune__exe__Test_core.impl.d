test/test_core.ml: Alcotest Hashtbl Helpers KV KVDb List Map Printf QCheck2 Sdb_checkpoint Sdb_pickle Sdb_storage Smalldb String Thread
