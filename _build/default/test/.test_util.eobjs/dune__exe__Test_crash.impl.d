test/test_crash.ml: Alcotest Hashtbl Helpers KV KVDb List Printf QCheck2 Sdb_storage Sdb_util Smalldb
