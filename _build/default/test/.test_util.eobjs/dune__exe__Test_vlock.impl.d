test/test_vlock.ml: Alcotest Helpers List Sdb_vlock Thread Unix
