test/test_nameserver.ml: Alcotest Helpers List Map Option Printf QCheck2 Result Sdb_nameserver Sdb_storage Smalldb String
