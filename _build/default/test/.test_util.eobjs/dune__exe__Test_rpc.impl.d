test/test_rpc.ml: Alcotest Filename Fun Helpers List Printf Sdb_nameserver Sdb_pickle Sdb_rpc Sdb_storage String Thread Unix
