test/test_nameserver.mli:
