test/test_util.ml: Alcotest Array Buffer Bytes Char Fun Helpers List Printf QCheck2 Sdb_util String
