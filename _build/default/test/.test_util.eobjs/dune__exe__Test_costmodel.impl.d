test/test_costmodel.ml: Alcotest Float Format Helpers KV KVDb List Printf Sdb_checkpoint Sdb_costmodel Sdb_pickle Sdb_storage Sdb_util Smalldb String
