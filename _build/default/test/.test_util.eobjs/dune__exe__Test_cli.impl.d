test/test_cli.ml: Alcotest Array Buffer Filename Fun Helpers List Printf String Sys Unix
