test/test_storage.ml: Alcotest Bytes Char Format Helpers Printf Sdb_storage String
