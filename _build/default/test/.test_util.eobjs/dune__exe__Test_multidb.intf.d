test/test_multidb.mli:
