test/test_pickle.ml: Alcotest Bytes Char Format Hashtbl Helpers Int32 Int64 List Printf QCheck2 Sdb_pickle String
