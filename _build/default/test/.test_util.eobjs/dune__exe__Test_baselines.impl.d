test/test_baselines.ml: Alcotest Hashtbl Helpers List Printf QCheck2 Sdb_baselines Sdb_storage Sdb_util String
