(* Shared test scaffolding: a simple KV application over the engine, a
   self-verifying workload for crash sweeps, and small conveniences. *)

module P = Sdb_pickle.Pickle
module Fs = Sdb_storage.Fs
module Mem = Sdb_storage.Mem_fs

let check = Alcotest.check
let fail = Alcotest.fail

(* Deterministic temp directories for Real_fs tests. *)
let fresh_dir =
  let counter = ref 0 in
  fun prefix ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "sdb-test-%s-%d-%d" prefix (Unix.getpid ()) !counter)
    in
    dir

(* The canonical test application: a string->string table. *)
module KV = struct
  type state = (string, string) Hashtbl.t
  type update = Set of string * string | Del of string

  let name = "test-kv"
  let codec_state = P.hashtbl P.string P.string

  let codec_update =
    P.variant ~name:"test-kv.update"
      [
        P.case "set"
          (P.pair P.string P.string)
          (function Set (k, v) -> Some (k, v) | Del _ -> None)
          (fun (k, v) -> Set (k, v));
        P.case "del" P.string
          (function Del k -> Some k | Set _ -> None)
          (fun k -> Del k);
      ]

  let init () = Hashtbl.create 16

  let apply st = function
    | Set (k, v) ->
      Hashtbl.replace st k v;
      st
    | Del k ->
      Hashtbl.remove st k;
      st
end

module KVDb = Smalldb.Make (KV)

let mem_db ?config ?seed () =
  let store = Mem.create_store ?seed () in
  let fs = Mem.fs store in
  (store, fs, KVDb.open_exn ?config fs)

let kv_contents db =
  KVDb.query db (fun st ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) st [] |> List.sort compare)

(* A self-verifying sequential workload: update i sets key "k<i>" to
   "v<i>".  After recovery, the surviving state must be exactly the
   set {0..n-1} for some n with committed <= n <= attempted. *)
let sequenced_key i = Printf.sprintf "k%04d" i
let sequenced_value i = Printf.sprintf "v%04d" i

let sequenced_update i = KV.Set (sequenced_key i, sequenced_value i)

(* Returns the number of sequenced updates present, failing if the
   state is not a clean prefix. *)
let sequenced_prefix db =
  let bindings = kv_contents db in
  let n = List.length bindings in
  List.iteri
    (fun i (k, v) ->
      check Alcotest.string "prefix key" (sequenced_key i) k;
      check Alcotest.string "prefix value" (sequenced_value i) v)
    bindings;
  n

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count gen prop)

(* Exactly the alcotest harness invocation every suite uses. *)
let run name suites = Alcotest.run ~and_exit:true name suites
