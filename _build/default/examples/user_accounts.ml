(* The paper's motivating example (§1): "records of user accounts" —
   the /etc/passwd class of operating-system database, here with typed
   records, integrity preconditions, and one disk write per change
   instead of rewriting a text file.

   Run with:  dune exec examples/user_accounts.exe *)

module P = Sdb_pickle.Pickle

type account = {
  uid : int;
  login : string;
  full_name : string;
  shell : string;
  groups : string list;
}

let codec_account =
  P.record5 "account"
    (P.field "uid" P.int (fun a -> a.uid))
    (P.field "login" P.string (fun a -> a.login))
    (P.field "full_name" P.string (fun a -> a.full_name))
    (P.field "shell" P.string (fun a -> a.shell))
    (P.field "groups" (P.list P.string) (fun a -> a.groups))
    (fun uid login full_name shell groups -> { uid; login; full_name; shell; groups })

module App = struct
  type state = (string, account) Hashtbl.t

  type update =
    | Add_account of account
    | Remove_account of string
    | Change_shell of string * string
    | Add_to_group of string * string

  let name = "user-accounts"
  let codec_state = P.hashtbl P.string codec_account

  let codec_update =
    P.variant ~name:"accounts.update"
      [
        P.case "add" codec_account
          (function Add_account a -> Some a | _ -> None)
          (fun a -> Add_account a);
        P.case "remove" P.string
          (function Remove_account l -> Some l | _ -> None)
          (fun l -> Remove_account l);
        P.case "chsh" (P.pair P.string P.string)
          (function Change_shell (l, s) -> Some (l, s) | _ -> None)
          (fun (l, s) -> Change_shell (l, s));
        P.case "addgroup" (P.pair P.string P.string)
          (function Add_to_group (l, g) -> Some (l, g) | _ -> None)
          (fun (l, g) -> Add_to_group (l, g));
      ]

  let init () = Hashtbl.create 32

  (* apply must be total: preconditions live in the checked wrappers. *)
  let apply st = function
    | Add_account a ->
      Hashtbl.replace st a.login a;
      st
    | Remove_account login ->
      Hashtbl.remove st login;
      st
    | Change_shell (login, shell) ->
      (match Hashtbl.find_opt st login with
      | Some a -> Hashtbl.replace st login { a with shell }
      | None -> ());
      st
    | Add_to_group (login, group) ->
      (match Hashtbl.find_opt st login with
      | Some a ->
        if not (List.mem group a.groups) then
          Hashtbl.replace st login { a with groups = group :: a.groups }
      | None -> ());
      st
end

module Db = Smalldb.Make (App)

(* Typed operations with the §3 three-step update discipline. *)

let add_account db a =
  Db.update_checked db
    ~precondition:(fun st ->
      if Hashtbl.mem st a.login then Error (a.login ^ ": login already taken")
      else if Hashtbl.fold (fun _ b acc -> acc || b.uid = a.uid) st false then
        Error (Printf.sprintf "uid %d already in use" a.uid)
      else Ok ())
    (App.Add_account a)

let change_shell db login shell =
  Db.update_checked db
    ~precondition:(fun st ->
      if Hashtbl.mem st login then Ok () else Error (login ^ ": no such account"))
    (App.Change_shell (login, shell))

let () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "smalldb-accounts" in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  let fs = Sdb_storage.Real_fs.create ~root:dir in
  (* Checkpoint automatically once the log passes 64 KiB — the "single
     overnight checkpoint" policy scaled down for a demo. *)
  let config =
    { Smalldb.default_config with policy = Smalldb.Log_bytes_exceeds (64 * 1024) }
  in
  let db = Db.open_exn ~config fs in

  let adb = { uid = 101; login = "birrell"; full_name = "Andrew D. Birrell";
              shell = "/bin/csh"; groups = [ "src" ] } in
  let mbj = { uid = 102; login = "jones"; full_name = "Michael B. Jones";
              shell = "/bin/sh"; groups = [ "cmu" ] } in
  List.iter
    (fun a ->
      match add_account db a with
      | Ok () -> Printf.printf "added %s (uid %d)\n" a.login a.uid
      | Error e -> Printf.printf "refused: %s\n" e)
    [ adb; mbj; { adb with login = "birrell2" } (* duplicate uid, refused *) ];

  (match change_shell db "jones" "/bin/ksh" with
  | Ok () -> print_endline "jones now uses ksh"
  | Error e -> print_endline e);
  (match change_shell db "nobody" "/bin/false" with
  | Ok () -> ()
  | Error e -> Printf.printf "refused: %s\n" e);

  Db.update db (App.Add_to_group ("birrell", "wheel"));

  (* Report. *)
  print_endline "accounts:";
  Db.query db (fun st ->
      Hashtbl.fold (fun _ a acc -> a :: acc) st []
      |> List.sort (fun a b -> compare a.uid b.uid)
      |> List.iter (fun a ->
             Printf.printf "  %4d %-10s %-20s %-10s [%s]\n" a.uid a.login a.full_name
               a.shell
               (String.concat "," a.groups)));
  let s = Db.stats db in
  Printf.printf "%d accounts, %d updates logged, generation %d\n"
    (Db.query db Hashtbl.length) s.Smalldb.log_entries s.Smalldb.generation;
  Db.close db
