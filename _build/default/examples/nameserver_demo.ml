(* The paper's case study: a name server whose database is a tree of
   hash tables in virtual memory, durable via checkpoint + log.

   Run with:  dune exec examples/nameserver_demo.exe *)

module Ns = Sdb_nameserver.Nameserver
module Path = Sdb_nameserver.Name_path
module Data = Sdb_nameserver.Ns_data

let p s =
  match Path.of_string s with Ok v -> v | Error e -> failwith e

let () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "smalldb-nsdemo" in
  (* Start from scratch each run for a reproducible demo. *)
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  let fs = Sdb_storage.Real_fs.create ~root:dir in
  let ns = Ns.open_exn fs in

  (* Populate a small SRC-style namespace. *)
  Ns.set_value ns (p "/hosts/acacia") (Some "16.9.0.11");
  Ns.set_value ns (p "/hosts/buckeye") (Some "16.9.0.12");
  Ns.set_value ns (p "/users/birrell/office") (Some "SRC-210");
  Ns.set_value ns (p "/users/jones/office") (Some "CMU");
  Ns.set_value ns (p "/users/wobber/office") (Some "SRC-212");

  (* A whole subtree installed in one update. *)
  Ns.write_subtree ns (p "/services/mail")
    (Data.tree ~value:"primary"
       [ ("queue", Data.leaf (Some "acacia")); ("backup", Data.leaf (Some "buckeye")) ]);

  (* Enquiries are virtual-memory lookups. *)
  Printf.printf "acacia       -> %s\n"
    (Option.value (Ns.lookup ns (p "/hosts/acacia")) ~default:"?");
  Printf.printf "mail backup  -> %s\n"
    (Option.value (Ns.lookup ns (p "/services/mail/backup")) ~default:"?");

  (* Browsing. *)
  (match Ns.list_children ns (p "/users") with
  | Some users -> Printf.printf "users        -> %s\n" (String.concat ", " users)
  | None -> ());
  (match Ns.export ns (p "/services") with
  | Some tree -> Format.printf "services     -> %a@." Data.pp_tree tree
  | None -> ());

  (* Search: enumeration under a prefix and glob patterns. *)
  (match Sdb_nameserver.Name_glob.compile "/users/*/office" with
  | Ok pattern ->
    print_endline "offices (glob /users/*/office):";
    List.iter
      (fun (path, value) ->
        Printf.printf "  %-24s %s\n" (Path.to_string path)
          (Option.value value ~default:"-"))
      (Ns.find ns pattern)
  | Error e -> prerr_endline e);

  (* A guarded update: compare-and-set on a binding. *)
  (match
     Ns.compare_and_set ns (p "/services/mail") ~expected:(Some "primary")
       (Some "maintenance")
   with
  | Ok () -> print_endline "mail service flipped to maintenance"
  | Error e -> Printf.printf "cas refused: %s\n" e);

  (* The audit trail: every committed update since the last checkpoint. *)
  print_endline "audit trail:";
  Ns.fold_log ns ~init:() ~f:(fun () lsn u ->
      let describe = function
        | Ns.Set_value (path, Some v) ->
          Printf.sprintf "set %s = %S" (Path.to_string path) v
        | Ns.Set_value (path, None) -> Printf.sprintf "unset %s" (Path.to_string path)
        | Ns.Write_subtree (path, _) ->
          Printf.sprintf "write subtree at %s" (Path.to_string path)
        | Ns.Delete_subtree path -> Printf.sprintf "delete %s" (Path.to_string path)
        | Ns.Create path -> Printf.sprintf "create %s" (Path.to_string path)
      in
      Printf.printf "  lsn %2d: %s\n" lsn (describe u));

  (* Checkpoint, mutate some more, crash-less restart. *)
  Ns.checkpoint ns;
  Ns.delete_subtree ns (p "/hosts/buckeye");
  Ns.close ns;

  let ns2 = Ns.open_exn fs in
  Printf.printf "after restart: %d nodes, buckeye %s\n" (Ns.count_nodes ns2)
    (if Ns.exists ns2 (p "/hosts/buckeye") then "present" else "gone");
  let s = Ns.stats ns2 in
  Printf.printf "restart replayed %d log entries on top of generation %d\n"
    s.Smalldb.recovery.Smalldb.replayed s.Smalldb.generation;
  Ns.close ns2
