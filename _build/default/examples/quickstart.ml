(* Quickstart: a durable key-value store in ~40 lines.

   Define your state and update types with their pickles, give the
   engine an [apply] function, and you get a persistent database whose
   enquiries are memory lookups and whose updates cost one disk write.

   Run with:  dune exec examples/quickstart.exe *)

module P = Sdb_pickle.Pickle

module App = struct
  type state = (string, string) Hashtbl.t
  type update = Set of string * string | Remove of string

  let name = "quickstart"
  let codec_state = P.hashtbl P.string P.string

  let codec_update =
    P.variant ~name:"quickstart.update"
      [
        P.case "set"
          (P.pair P.string P.string)
          (function Set (k, v) -> Some (k, v) | Remove _ -> None)
          (fun (k, v) -> Set (k, v));
        P.case "remove" P.string
          (function Remove k -> Some k | Set _ -> None)
          (fun k -> Remove k);
      ]

  let init () = Hashtbl.create 16

  let apply st = function
    | Set (k, v) ->
      Hashtbl.replace st k v;
      st
    | Remove k ->
      Hashtbl.remove st k;
      st
end

module Db = Smalldb.Make (App)

let () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "smalldb-quickstart" in
  let fs = Sdb_storage.Real_fs.create ~root:dir in
  Printf.printf "database directory: %s\n" dir;

  (* Open (recovering whatever a previous run left behind). *)
  let db = Db.open_exn fs in
  let before = (Db.stats db).Smalldb.lsn in
  Printf.printf "opened: %d updates committed over this store's lifetime\n" before;

  (* Updates: each is one log write, durable when the call returns. *)
  Db.update db (App.Set ("greeting", "hello world"));
  Db.update db (App.Set ("counter", string_of_int (before + 1)));
  Db.update db (App.Remove "scratch");

  (* Enquiries: pure memory. *)
  let greeting = Db.query db (fun st -> Hashtbl.find_opt st "greeting") in
  Printf.printf "greeting = %s\n" (Option.value greeting ~default:"<unset>");

  (* A precondition checked under the update lock, before the commit. *)
  (match
     Db.update_checked db
       ~precondition:(fun st ->
         if Hashtbl.mem st "greeting" then Ok () else Error "no greeting yet")
       (App.Set ("greeting", "hello again"))
   with
  | Ok () -> print_endline "checked update applied"
  | Error e -> Printf.printf "checked update refused: %s\n" e);

  (* Checkpoint: pickles the whole table into a fresh generation and
     empties the log. *)
  Db.checkpoint db;
  let s = Db.stats db in
  Printf.printf "checkpointed: generation %d, lsn %d, log now %d entries\n"
    s.Smalldb.generation s.Smalldb.lsn s.Smalldb.log_entries;
  Db.close db;

  (* Reopen to prove durability. *)
  let db2 = Db.open_exn fs in
  let greeting = Db.query db2 (fun st -> Hashtbl.find_opt st "greeting") in
  Printf.printf "after restart: greeting = %s (replayed %d log entries)\n"
    (Option.value greeting ~default:"<unset>")
    (Db.stats db2).Smalldb.recovery.Smalldb.replayed;
  Db.close db2
