examples/user_accounts.mli:
