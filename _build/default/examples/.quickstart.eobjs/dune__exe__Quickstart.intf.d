examples/quickstart.mli:
