examples/replication_demo.ml: List Option Printf Sdb_checkpoint Sdb_nameserver Sdb_replica Sdb_rpc Sdb_storage Smalldb Thread
