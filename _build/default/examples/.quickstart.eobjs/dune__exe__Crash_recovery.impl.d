examples/crash_recovery.ml: Hashtbl Printf Sdb_pickle Sdb_storage Smalldb
