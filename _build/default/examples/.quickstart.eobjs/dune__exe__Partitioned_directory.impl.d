examples/partitioned_directory.ml: Hashtbl List Printf Sdb_multidb Sdb_pickle Sdb_storage Sdb_util
