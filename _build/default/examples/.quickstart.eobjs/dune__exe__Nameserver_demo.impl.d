examples/nameserver_demo.ml: Array Filename Format List Option Printf Sdb_nameserver Sdb_storage Smalldb String Sys
