examples/user_accounts.ml: Array Filename Hashtbl List Printf Sdb_pickle Sdb_storage Smalldb String Sys
