examples/partitioned_directory.mli:
