examples/quickstart.ml: Filename Hashtbl Option Printf Sdb_pickle Sdb_storage Smalldb
