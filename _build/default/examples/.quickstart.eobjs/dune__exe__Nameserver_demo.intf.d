examples/nameserver_demo.mli:
