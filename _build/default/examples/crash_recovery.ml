(* Reliability demonstration (§4): inject crashes at every disk
   operation of an update workload — including torn pages — and show
   that recovery always lands on a clean prefix of the committed
   updates, with partial log entries detected and discarded.

   Run with:  dune exec examples/crash_recovery.exe *)

module P = Sdb_pickle.Pickle
module Mem = Sdb_storage.Mem_fs

module App = struct
  type state = (string, string) Hashtbl.t
  type update = Set of string * string

  let name = "crashdemo"
  let codec_state = P.hashtbl P.string P.string

  let codec_update =
    P.conv ~name:"crashdemo.update"
      (fun (Set (k, v)) -> (k, v))
      (fun (k, v) -> Set (k, v))
      (P.pair P.string P.string)

  let init () = Hashtbl.create 16

  let apply st (Set (k, v)) =
    Hashtbl.replace st k v;
    st
end

module Db = Smalldb.Make (App)

let () =
  print_endline "crash sweep: 10 updates + 1 checkpoint, torn-page crashes";
  print_endline "crash-point  committed  recovered  verdict";
  let lost = ref 0 and phantom = ref 0 and points = ref 0 in
  let k = ref 1 in
  let continue = ref true in
  while !continue do
    let store = Mem.create_store ~seed:!k () in
    let fs = Mem.fs store in
    let committed = ref 0 in
    let crashed = ref false in
    (try
       let db = Db.open_exn fs in
       Mem.set_crash_after store ~ops:!k ~mode:Mem.Torn;
       for i = 1 to 10 do
         Db.update db (App.Set (Printf.sprintf "key%02d" i, string_of_int i));
         incr committed;
         if i = 5 then Db.checkpoint db
       done;
       Mem.disarm_crash store
     with Mem.Crash -> crashed := true);
    Mem.disarm_crash store;
    if not !crashed then begin
      (* The budget outlived the workload: the sweep is complete. *)
      continue := false
    end
    else begin
      incr points;
      let db = Db.open_exn fs in
      let recovered = Db.query db Hashtbl.length in
      let verdict =
        if recovered < !committed then begin
          incr lost;
          "LOST COMMITTED DATA"
        end
        else if recovered > !committed + 1 then begin
          incr phantom;
          "PHANTOM DATA"
        end
        else if recovered = !committed then "exact"
        else "in-flight update survived"
      in
      if !k <= 12 || verdict <> "exact" then
        Printf.printf "%11d  %9d  %9d  %s\n" !k !committed recovered verdict;
      Db.close db
    end;
    incr k
  done;
  Printf.printf "... (%d crash points swept)\n" !points;
  Printf.printf "result: %d losses, %d phantoms across %d crash points\n" !lost
    !phantom !points;
  if !lost = 0 && !phantom = 0 then
    print_endline "every crash recovered to a clean prefix of committed updates"
