(* The §7 extension in action: "the directories of a large file system
   ... handled by considering them as multiple separate databases for
   the purpose of writing checkpoints", over a single shared log.

   A toy file-directory service: 4 partitions (hash of the directory
   name), every update one shared-log write, checkpoints one partition
   at a time — the whole database is never pickled in one blocking
   operation.

   Run with:  dune exec examples/partitioned_directory.exe *)

module P = Sdb_pickle.Pickle
module Multidb = Sdb_multidb.Multidb
module Mem = Sdb_storage.Mem_fs

module Dirs = struct
  (* directory -> (file -> size) *)
  type state = (string, (string, int) Hashtbl.t) Hashtbl.t
  type update = Create_file of string * string * int | Delete_file of string * string

  let name = "directories"
  let codec_state = P.hashtbl P.string (P.hashtbl P.string P.int)

  let codec_update =
    P.variant ~name:"dirs.update"
      [
        P.case "create"
          (P.triple P.string P.string P.int)
          (function Create_file (d, f, s) -> Some (d, f, s) | Delete_file _ -> None)
          (fun (d, f, s) -> Create_file (d, f, s));
        P.case "delete" (P.pair P.string P.string)
          (function Delete_file (d, f) -> Some (d, f) | Create_file _ -> None)
          (fun (d, f) -> Delete_file (d, f));
      ]

  let init () = Hashtbl.create 16

  let dir_table st d =
    match Hashtbl.find_opt st d with
    | Some t -> t
    | None ->
      let t = Hashtbl.create 8 in
      Hashtbl.replace st d t;
      t

  let apply st = function
    | Create_file (d, f, size) ->
      Hashtbl.replace (dir_table st d) f size;
      st
    | Delete_file (d, f) ->
      (match Hashtbl.find_opt st d with
      | Some t -> Hashtbl.remove t f
      | None -> ());
      st
end

module Db = Multidb.Make (Dirs)

let partitions = 4
let partition_of dir = Hashtbl.hash dir mod partitions

let () =
  let store = Mem.create_store ~seed:7 () in
  let fs = Mem.fs store in
  let config =
    {
      Multidb.log_switch_bytes = 8 * 1024;
      (* checkpoint one partition every 50 updates, round-robin: the
         incremental version of the paper's nightly checkpoint *)
      auto_checkpoint_round_robin = Some 50;
    }
  in
  let db = Db.open_exn ~config ~partitions fs in

  (* Populate a few hundred files across directories. *)
  let rng = Sdb_util.Rng.create ~seed:8 in
  for i = 0 to 399 do
    let dir = Printf.sprintf "/home/user%d" (i mod 7) in
    let file = Printf.sprintf "file%03d.txt" i in
    Db.update db ~partition:(partition_of dir)
      (Dirs.Create_file (dir, file, Sdb_util.Rng.int rng 100_000))
  done;
  Db.update db ~partition:(partition_of "/home/user3")
    (Dirs.Delete_file ("/home/user3", "file003.txt"));

  (* Enquiries hit only the partition that owns the directory. *)
  let count_files dir =
    Db.query db ~partition:(partition_of dir) (fun st ->
        match Hashtbl.find_opt st dir with Some t -> Hashtbl.length t | None -> 0)
  in
  Printf.printf "/home/user3 holds %d files\n" (count_files "/home/user3");

  let s = Db.stats db in
  Printf.printf "%d updates over %d partitions; %d live shared-log generation(s)\n"
    s.Multidb.lsn s.Multidb.partitions s.Multidb.log_generations;
  List.iter
    (fun p ->
      Printf.printf "  partition %d: checkpoint v%d at lsn %d\n" p.Multidb.p_index
        p.Multidb.p_checkpoint_version p.Multidb.p_checkpoint_lsn)
    s.Multidb.parts;

  (* Restart: each partition replays only its own suffix. *)
  Db.close db;
  let db2 = Db.open_exn ~config ~partitions fs in
  let s2 = Db.stats db2 in
  Printf.printf "after restart: lsn %d, replayed %d entries (of %d ever committed)\n"
    s2.Multidb.lsn s2.Multidb.replayed s2.Multidb.lsn;
  Printf.printf "/home/user3 still holds %d files\n"
    (Db.query db2 ~partition:(partition_of "/home/user3") (fun st ->
         match Hashtbl.find_opt st "/home/user3" with
         | Some t -> Hashtbl.length t
         | None -> 0));
  Db.close db2
