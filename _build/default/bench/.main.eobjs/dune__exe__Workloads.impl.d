bench/workloads.ml: List Printf Sdb_nameserver Sdb_storage Sdb_util String Unix
