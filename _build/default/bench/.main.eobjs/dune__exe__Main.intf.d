bench/main.mli:
