(** The versioned checkpoint/log directory protocol (§3).

    In the quiescent state the directory contains a version-numbered
    checkpoint ([checkpoint35]), a matching log ([logfile35]) and a
    file [version] containing "35".  Switching to a new checkpoint
    writes [checkpoint36], creates an empty [logfile36], then writes
    "36" to [newversion] — the commit point, after the appropriate
    fsyncs.  Finally the old triple is deleted and [newversion] is
    renamed to [version].

    On restart the version number is read "from [newversion] if the
    file exists and has a valid version number in it, or from [version]
    otherwise", redundant files are deleted, and the half-finished
    switch (if any) is completed.

    With [retain_previous:true] the previous generation's checkpoint
    and log are kept, enabling recovery from a hard error in the
    current checkpoint by reloading the previous checkpoint and
    replaying both logs (§4). *)

type generation = {
  version : int;
  checkpoint_file : string;
  log_file : string;
}

type recovery = {
  current : generation;
  previous : generation option;
      (** the retained previous generation, when its files survive *)
  removed_files : string list;
      (** stale or partial files deleted during the restart scan *)
  completed_switch : bool;
      (** true when a committed-but-unfinished switch was completed *)
}

val checkpoint_file : int -> string
(** ["checkpoint<N>"]. *)

val log_file : int -> string
(** ["logfile<N>"]. *)

val version_file : string
val newversion_file : string

val recover :
  ?archive_logs:bool -> retain_previous:bool -> Sdb_storage.Fs.t ->
  (recovery option, string) result
(** Scan the directory.  [Ok None] means a fresh store (no database
    yet); [Error _] means the store exists but no complete generation
    could be located.  [archive_logs] must match what {!commit} was
    called with, so that a crash mid-switch still preserves the audit
    trail. *)

val write_checkpoint : Sdb_storage.Fs.t -> version:int -> string -> unit
(** Create [checkpoint<version>], write the blob, fsync, close. *)

val commit :
  ?archive_logs:bool -> retain_previous:bool -> old_version:int option ->
  new_version:int -> Sdb_storage.Fs.t -> unit
(** The switch: requires [checkpoint<new_version>] and
    [logfile<new_version>] to already exist, fully synced.  Writes and
    syncs [newversion] (the commit point), deletes superseded
    generations per the retention policy, then renames [newversion] to
    [version].

    With [archive_logs:true] superseded log files are renamed to
    [archive-logfile<N>] instead of deleted — §4's "the log files form
    a complete audit trail for the database, and could be retained if
    desired". *)

val archive_log_file : int -> string
(** ["archive-logfile<N>"]. *)

val archived_logs : Sdb_storage.Fs.t -> (int * string) list
(** The retained audit trail, sorted by generation. *)

val disk_files : Sdb_storage.Fs.t -> (string * int) list
(** All files with sizes — the E12 space accounting. *)
