lib/checkpoint/checkpoint_store.ml: List Printf Sdb_storage String
