lib/checkpoint/checkpoint_store.mli: Sdb_storage
