module Fs = Sdb_storage.Fs

type generation = { version : int; checkpoint_file : string; log_file : string }

type recovery = {
  current : generation;
  previous : generation option;
  removed_files : string list;
  completed_switch : bool;
}

let checkpoint_file n = Printf.sprintf "checkpoint%d" n
let log_file n = Printf.sprintf "logfile%d" n
let archive_log_file n = Printf.sprintf "archive-logfile%d" n
let version_file = "version"
let newversion_file = "newversion"

let generation version =
  { version; checkpoint_file = checkpoint_file version; log_file = log_file version }

(* Parse "checkpoint<N>" / "logfile<N>"; anything else is foreign. *)
let parse_numbered name =
  let prefixed prefix =
    let plen = String.length prefix in
    if String.length name > plen && String.equal (String.sub name 0 plen) prefix then
      int_of_string_opt (String.sub name plen (String.length name - plen))
    else None
  in
  match prefixed "checkpoint" with
  | Some n -> Some (`Checkpoint n)
  | None -> (
    match prefixed "logfile" with Some n -> Some (`Log n) | None -> None)

let parse_version_contents s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 0 -> Some n
  | Some _ | None -> None

(* A version file is valid only if present, readable and holding a
   non-negative integer; torn or damaged contents read as invalid,
   which is what makes writing [newversion] an atomic commit point. *)
let read_version fs file =
  if not (fs.Fs.exists file) then None
  else
    match Fs.read_file fs file with
    | contents -> parse_version_contents contents
    | exception Fs.Read_error _ -> None
    | exception Fs.Io_error _ -> None

let generation_complete fs gen =
  fs.Fs.exists gen.checkpoint_file && fs.Fs.exists gen.log_file

let write_checkpoint fs ~version blob =
  Fs.write_file fs (checkpoint_file version) blob

let sync_version_file fs file contents =
  Fs.write_file fs file contents

(* With archiving, a superseded log is renamed into the audit trail
   instead of deleted; its checkpoint is still removed. *)
let remove_generation fs ~archive_logs ~keep_from removed =
  List.iter
    (fun name ->
      match parse_numbered name with
      | Some (`Checkpoint n) ->
        if n < keep_from then begin
          fs.Fs.remove name;
          removed := name :: !removed
        end
      | Some (`Log n) ->
        if n < keep_from then
          if archive_logs then fs.Fs.rename name (archive_log_file n)
          else begin
            fs.Fs.remove name;
            removed := name :: !removed
          end
      | None -> ())
    (fs.Fs.list_files ())

let commit ?(archive_logs = false) ~retain_previous ~old_version ~new_version fs =
  if not (fs.Fs.exists (checkpoint_file new_version)) then
    invalid_arg "Checkpoint_store.commit: new checkpoint missing";
  if not (fs.Fs.exists (log_file new_version)) then
    invalid_arg "Checkpoint_store.commit: new log missing";
  sync_version_file fs newversion_file (string_of_int new_version);
  (* Committed.  Everything after this point is garbage collection and
     may be redone by recovery after a crash. *)
  let keep_from =
    match old_version with
    | None -> new_version
    | Some old -> if retain_previous then old else new_version
  in
  remove_generation fs ~archive_logs ~keep_from (ref []);
  fs.Fs.remove version_file;
  fs.Fs.rename newversion_file version_file

let archived_logs fs =
  let prefix = "archive-logfile" in
  let plen = String.length prefix in
  List.filter_map
    (fun name ->
      if String.length name > plen && String.equal (String.sub name 0 plen) prefix then
        match int_of_string_opt (String.sub name plen (String.length name - plen)) with
        | Some n -> Some (n, name)
        | None -> None
      else None)
    (fs.Fs.list_files ())
  |> List.sort compare

let recover ?(archive_logs = false) ~retain_previous fs =
  let removed = ref [] in
  let remove name =
    if fs.Fs.exists name then begin
      fs.Fs.remove name;
      removed := name :: !removed
    end
  in
  let newv = read_version fs newversion_file in
  let oldv = read_version fs version_file in
  let pick =
    match newv with
    | Some n when generation_complete fs (generation n) -> Some (n, true)
    | Some _ | None -> (
      match oldv with
      | Some n when generation_complete fs (generation n) -> Some (n, false)
      | Some _ | None -> None)
  in
  match pick with
  | None ->
    let complete_generation_exists =
      List.exists
        (fun name ->
          match parse_numbered name with
          | Some (`Checkpoint n) -> generation_complete fs (generation n)
          | Some (`Log _) | None -> false)
        (fs.Fs.list_files ())
    in
    (* An invalid [newversion] is normal (a torn commit — the paper's
       protocol says to fall back to [version]).  But a [version] file
       that exists yet cannot name a usable generation means the store
       is damaged: refusing to guess is safer than deleting data.  If
       [version] never existed, the very first initialization never
       committed, so the directory only holds uncommitted leftovers. *)
    if fs.Fs.exists version_file && (oldv <> None || complete_generation_exists) then
      Error "checkpoint store: version file unusable or names no complete generation"
    else if newv <> None && complete_generation_exists then
      Error "checkpoint store: newversion names no complete generation and no version file exists"
    else begin
      List.iter remove (fs.Fs.list_files ());
      Ok None
    end
  | Some (current_version, from_newversion) ->
    (* Complete a half-finished switch: the paper's restart "deletes
       any redundant files", then installs the committed version. *)
    let keep_from = if retain_previous then current_version - 1 else current_version in
    (* Also drop any partially written *next* generation.  Superseded
       logs join the audit trail when archiving is on (a crash between
       the commit point and the renames must not lose history). *)
    List.iter
      (fun name ->
        match parse_numbered name with
        | Some (`Checkpoint n) ->
          if n < keep_from || n > current_version then remove name
        | Some (`Log n) ->
          if n > current_version then remove name
          else if n < keep_from then
            if archive_logs then fs.Fs.rename name (archive_log_file n)
            else remove name
        | None -> ())
      (fs.Fs.list_files ());
    let completed_switch =
      if from_newversion then begin
        remove version_file;
        fs.Fs.rename newversion_file version_file;
        true
      end
      else begin
        remove newversion_file;
        false
      end
    in
    let current = generation current_version in
    let previous =
      if retain_previous && current_version > 0 then begin
        let prev = generation (current_version - 1) in
        if generation_complete fs prev then Some prev else None
      end
      else None
    in
    Ok (Some { current; previous; removed_files = List.rev !removed; completed_switch })

let disk_files fs =
  List.map (fun name -> (name, fs.Fs.file_size name)) (fs.Fs.list_files ())
