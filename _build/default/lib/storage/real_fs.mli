(** Real-directory backend.

    Maps the {!Fs.t} operations onto a directory of ordinary files with
    [Unix] primitives: append with [O_APPEND], commit with [fsync],
    atomic replace with [rename].  Partial writes are detected by the
    log layer's CRC framing rather than by the device (see {!Wal}), so
    this backend never raises {!Fs.Read_error} on its own. *)

val create : root:string -> Fs.t
(** [create ~root] uses directory [root], creating it (and parents) if
    needed.  File names must be flat (no path separators). *)
