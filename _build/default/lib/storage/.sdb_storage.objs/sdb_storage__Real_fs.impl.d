lib/storage/real_fs.ml: Array Filename Fs Fun List Printf String Sys Unix
