lib/storage/mem_fs.mli: Fs
