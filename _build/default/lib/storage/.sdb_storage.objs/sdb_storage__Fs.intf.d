lib/storage/fs.mli: Format
