lib/storage/real_fs.mli: Fs
