lib/storage/mem_fs.ml: Bytes Fs Hashtbl List Printf Sdb_util String
