lib/storage/fs.ml: Buffer Bytes Format
