lib/wal/wal.ml: Buffer Bytes Digest Format Fun Int32 Sdb_storage Sdb_util String
