lib/wal/wal.mli: Format Sdb_storage
