lib/vlock/vlock.ml: Condition Fun Mutex
