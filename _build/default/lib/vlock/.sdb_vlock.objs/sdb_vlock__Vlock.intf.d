lib/vlock/vlock.mli:
