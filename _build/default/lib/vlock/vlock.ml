type mode = Shared | Update | Exclusive

type stats = {
  shared_acquisitions : int;
  update_acquisitions : int;
  exclusive_acquisitions : int;
  upgrades : int;
}

type t = {
  mutex : Mutex.t;
  changed : Condition.t;
  mutable n_readers : int;
  mutable upd : bool;
  mutable excl : bool;
  mutable upgrade_pending : bool;
  mutable s_shared : int;
  mutable s_update : int;
  mutable s_exclusive : int;
  mutable s_upgrades : int;
}

let create () =
  {
    mutex = Mutex.create ();
    changed = Condition.create ();
    n_readers = 0;
    upd = false;
    excl = false;
    upgrade_pending = false;
    s_shared = 0;
    s_update = 0;
    s_exclusive = 0;
    s_upgrades = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let acquire t mode =
  locked t (fun () ->
      match mode with
      | Shared ->
        while t.excl || t.upgrade_pending do
          Condition.wait t.changed t.mutex
        done;
        t.n_readers <- t.n_readers + 1;
        t.s_shared <- t.s_shared + 1
      | Update ->
        while t.upd || t.excl do
          Condition.wait t.changed t.mutex
        done;
        t.upd <- true;
        t.s_update <- t.s_update + 1
      | Exclusive ->
        (* Serialize against other writers first, then drain readers,
           exactly as an update that upgrades immediately. *)
        while t.upd || t.excl do
          Condition.wait t.changed t.mutex
        done;
        t.upd <- true;
        t.upgrade_pending <- true;
        while t.n_readers > 0 do
          Condition.wait t.changed t.mutex
        done;
        t.upd <- false;
        t.upgrade_pending <- false;
        t.excl <- true;
        t.s_exclusive <- t.s_exclusive + 1)

let release t mode =
  locked t (fun () ->
      (match mode with
      | Shared ->
        if t.n_readers <= 0 then invalid_arg "Vlock.release: no shared holder";
        t.n_readers <- t.n_readers - 1
      | Update ->
        if not t.upd then invalid_arg "Vlock.release: update not held";
        t.upd <- false
      | Exclusive ->
        if not t.excl then invalid_arg "Vlock.release: exclusive not held";
        t.excl <- false);
      Condition.broadcast t.changed)

let upgrade t =
  locked t (fun () ->
      if not t.upd then invalid_arg "Vlock.upgrade: update not held";
      if t.upgrade_pending then invalid_arg "Vlock.upgrade: upgrade already pending";
      t.upgrade_pending <- true;
      while t.n_readers > 0 do
        Condition.wait t.changed t.mutex
      done;
      t.upd <- false;
      t.upgrade_pending <- false;
      t.excl <- true;
      t.s_upgrades <- t.s_upgrades + 1)

let downgrade t =
  locked t (fun () ->
      if not t.excl then invalid_arg "Vlock.downgrade: exclusive not held";
      t.excl <- false;
      t.upd <- true;
      Condition.broadcast t.changed)

let with_lock t mode f =
  acquire t mode;
  Fun.protect ~finally:(fun () -> release t mode) f

let readers t = locked t (fun () -> t.n_readers)
let update_held t = locked t (fun () -> t.upd)
let exclusive_held t = locked t (fun () -> t.excl)

let stats t =
  locked t (fun () ->
      {
        shared_acquisitions = t.s_shared;
        update_acquisitions = t.s_update;
        exclusive_acquisitions = t.s_exclusive;
        upgrades = t.s_upgrades;
      })
