(** Remote procedure calls with pickle-marshalled arguments.

    The paper's name server is reached through "a general purpose
    remote procedure call mechanism" whose stubs marshal strongly typed
    values (§6).  Here both directions use the same {!Sdb_pickle.Pickle}
    codecs: a procedure is declared once with its argument and result
    codecs, giving a typed client function and a typed server handler
    that share a wire fingerprint.

    Two transports are provided: an in-process pair with an optional
    simulated round-trip delay (how E6 reproduces the paper's 8 ms
    network term without a network), and Unix-domain stream sockets
    with a threaded accept loop (used by the [smalldb_ns] CLI). *)

exception Rpc_error of string
(** Transport failure, undecodable traffic, unknown procedure, or a
    server-side exception (carried as text). *)

module Transport : sig
  type t = {
    descr : string;
    send : string -> unit;  (** one complete message *)
    recv : unit -> string;  (** blocks; raises {!Rpc_error} when closed *)
    close : unit -> unit;
  }

  val round_trips : unit -> int
  (** Global count of completed calls (any client), for cost modelling. *)
end

module Inproc : sig
  val pair : ?delay_s:float -> unit -> Transport.t * Transport.t
  (** A connected client/server transport pair backed by in-memory
      queues.  [delay_s] sleeps that long on every message, simulating
      one-way network latency. *)
end

module Socket : sig
  type listener

  val listen : path:string -> (Transport.t -> unit) -> listener
  (** Bind a Unix-domain socket and serve each accepted connection in
      its own thread with the given loop (typically
      [Server.serve ~handlers]). *)

  val connect : path:string -> Transport.t
  val shutdown : listener -> unit
end

module Server : sig
  type handler

  val handler : meth:string -> 'a Sdb_pickle.Pickle.t -> 'b Sdb_pickle.Pickle.t ->
    ('a -> 'b) -> handler
  (** A procedure: decode the argument, run, encode the result.  An
      exception in the body is returned to the caller as an error. *)

  val serve : handlers:handler list -> Transport.t -> unit
  (** Request loop until the peer closes.  Requests are handled in
      arrival order. *)
end

module Client : sig
  type t

  val create : Transport.t -> t

  val call :
    t -> meth:string -> 'a Sdb_pickle.Pickle.t -> 'b Sdb_pickle.Pickle.t -> 'a -> 'b
  (** One round trip.  Raises {!Rpc_error} on any failure. *)

  val calls : t -> int
  val close : t -> unit
end
