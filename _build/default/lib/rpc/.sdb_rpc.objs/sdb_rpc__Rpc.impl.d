lib/rpc/rpc.ml: Atomic Bytes Condition Fun Hashtbl Int32 List Mutex Printexc Printf Queue Sdb_pickle String Sys Thread Unix
