lib/rpc/rpc.mli: Sdb_pickle
