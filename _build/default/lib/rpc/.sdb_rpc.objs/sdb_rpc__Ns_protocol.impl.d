lib/rpc/ns_protocol.ml: Digest Fun Rpc Sdb_nameserver Sdb_pickle Smalldb
