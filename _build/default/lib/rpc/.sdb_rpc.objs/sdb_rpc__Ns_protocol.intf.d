lib/rpc/ns_protocol.mli: Rpc Sdb_nameserver
