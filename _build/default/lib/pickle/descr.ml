type t =
  | Unit
  | Bool
  | Char
  | Int
  | Int32
  | Int64
  | Float
  | String
  | Bytes
  | Pair of t * t
  | Triple of t * t * t
  | Quad of t * t * t * t
  | List of t
  | Array of t
  | Option of t
  | Result of t * t
  | Record of string * (string * t) list
  | Variant of string * (string * t option) list
  | Conv of string * t
  | Shared of t
  | Ref of t
  | Hashtbl of t * t
  | Named of string * t
  | Recur of string

(* The rendering quotes user-supplied names so that structurally
   different descriptions can never render to the same string. *)
let quote s = Printf.sprintf "%S" s

let rec to_string = function
  | Unit -> "unit"
  | Bool -> "bool"
  | Char -> "char"
  | Int -> "int"
  | Int32 -> "int32"
  | Int64 -> "int64"
  | Float -> "float"
  | String -> "string"
  | Bytes -> "bytes"
  | Pair (a, b) -> Printf.sprintf "pair(%s,%s)" (to_string a) (to_string b)
  | Triple (a, b, c) ->
    Printf.sprintf "triple(%s,%s,%s)" (to_string a) (to_string b) (to_string c)
  | Quad (a, b, c, d) ->
    Printf.sprintf "quad(%s,%s,%s,%s)" (to_string a) (to_string b) (to_string c)
      (to_string d)
  | List a -> Printf.sprintf "list(%s)" (to_string a)
  | Array a -> Printf.sprintf "array(%s)" (to_string a)
  | Option a -> Printf.sprintf "option(%s)" (to_string a)
  | Result (a, b) -> Printf.sprintf "result(%s,%s)" (to_string a) (to_string b)
  | Record (name, fields) ->
    let field (fname, d) = Printf.sprintf "%s:%s" (quote fname) (to_string d) in
    Printf.sprintf "record %s{%s}" (quote name)
      (String.concat ";" (List.map field fields))
  | Variant (name, cases) ->
    let case (cname, d) =
      match d with
      | None -> quote cname
      | Some d -> Printf.sprintf "%s of %s" (quote cname) (to_string d)
    in
    Printf.sprintf "variant %s[%s]" (quote name)
      (String.concat "|" (List.map case cases))
  | Conv (name, base) -> Printf.sprintf "conv %s(%s)" (quote name) (to_string base)
  | Shared a -> Printf.sprintf "shared(%s)" (to_string a)
  | Ref a -> Printf.sprintf "ref(%s)" (to_string a)
  | Hashtbl (k, v) -> Printf.sprintf "hashtbl(%s,%s)" (to_string k) (to_string v)
  | Named (name, body) -> Printf.sprintf "mu %s.%s" (quote name) (to_string body)
  | Recur name -> Printf.sprintf "recur %s" (quote name)

let fingerprint d = Digest.string (to_string d)
let fingerprint_hex d = Digest.to_hex (fingerprint d)
let equal a b = String.equal (to_string a) (to_string b)
