lib/pickle/descr.mli:
