lib/pickle/pickle.mli: Descr Hashtbl
