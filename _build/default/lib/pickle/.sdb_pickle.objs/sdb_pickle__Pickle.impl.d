lib/pickle/pickle.ml: Array Atomic Buffer Bytes Char Descr Digest Hashtbl Int64 Lazy List Obj Option Printf Result Sdb_util String
