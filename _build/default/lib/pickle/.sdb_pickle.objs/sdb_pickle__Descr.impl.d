lib/pickle/descr.ml: Digest List Printf String
