(** Structural descriptions of pickled types.

    Every codec carries a description of the wire shape it produces.
    The description's {!fingerprint} is embedded in checkpoint and log
    headers, so that a restart with a program whose types have drifted
    from the on-disk data fails loudly instead of misreading bits —
    the "strongly typed access to backing store" property of the paper,
    enforced structurally rather than by a shared runtime. *)

type t =
  | Unit
  | Bool
  | Char
  | Int
  | Int32
  | Int64
  | Float
  | String
  | Bytes
  | Pair of t * t
  | Triple of t * t * t
  | Quad of t * t * t * t
  | List of t
  | Array of t
  | Option of t
  | Result of t * t
  | Record of string * (string * t) list
  | Variant of string * (string * t option) list
  | Conv of string * t
  | Shared of t
  | Ref of t
  | Hashtbl of t * t
  | Named of string * t  (** binder introduced by [mu] *)
  | Recur of string  (** back-reference to the enclosing [Named] *)

val to_string : t -> string
(** Canonical, unambiguous rendering (used for fingerprints and
    diagnostics). *)

val fingerprint : t -> string
(** 16-byte MD5 of the canonical rendering. *)

val fingerprint_hex : t -> string
(** Hex form of {!fingerprint}, for messages. *)

val equal : t -> t -> bool
