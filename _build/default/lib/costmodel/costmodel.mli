(** The 1987 cost model.

    The paper's absolute numbers come from a MicroVAX II with local
    disks (§5).  We cannot (and are not expected to) reproduce those on
    modern hardware, but the {e operation counts} our implementation
    performs are the same — so this module converts counted activity
    (disk writes, fsyncs, bytes pickled, RPC round trips, virtual-memory
    explorations) into modelled milliseconds using per-operation costs
    calibrated against every number §5 reports:

    - a typical update totals ≈54 ms: explore 6 + modify 6 +
      pickle 22 + log write 20;
    - an enquiry ≈5 ms of memory exploration;
    - a 1 MB checkpoint ≈ one minute: 55 s pickling, 5 s disk;
    - restart ≈ 20 s to read a 1 MB checkpoint plus 20 ms per log
      entry;
    - a name-server RPC round trip ≈8 ms.

    Benches report both real measured time and these modelled times;
    EXPERIMENTS.md compares the modelled values against the paper's. *)

type costs = {
  explore_ms : float;  (** one precondition/enquiry exploration (§5: 5–6 ms) *)
  modify_ms : float;  (** one in-memory mutation (§5: 6 ms) *)
  pickle_op_ms : float;  (** fixed cost to start a pickle *)
  pickle_byte_ms : float;
  unpickle_op_ms : float;
  unpickle_byte_ms : float;
  write_op_ms : float;  (** issuing one disk write *)
  sync_ms : float;  (** one fsync (seek + rotational latency) *)
  write_byte_ms : float;
  read_op_ms : float;
  read_byte_ms : float;
  rpc_round_trip_ms : float;
}

val microvax_1987 : costs

type activity = {
  explore_ops : int;
  modify_ops : int;
  pickle_ops : int;
  pickled_bytes : int;
  unpickle_ops : int;
  unpickled_bytes : int;
  disk : Sdb_storage.Fs.Counters.t;
  rpc_round_trips : int;
}

type breakdown = {
  explore_model_ms : float;
  modify_model_ms : float;
  pickle_model_ms : float;
  unpickle_model_ms : float;
  disk_model_ms : float;
  rpc_model_ms : float;
  total_model_ms : float;
}

val model : costs -> activity -> breakdown

val pp_breakdown : Format.formatter -> breakdown -> unit

(** {1 Capturing activity}

    [snapshot] reads the global pickle counters, the given file
    system's counters, and the RPC round-trip counter; [since] diffs a
    later state against it.  The caller supplies the app-level
    exploration/mutation counts (the model cannot see those). *)

type snapshot

val snapshot : Sdb_storage.Fs.t -> snapshot

val since :
  ?explore_ops:int -> ?modify_ops:int -> snapshot -> Sdb_storage.Fs.t -> activity
