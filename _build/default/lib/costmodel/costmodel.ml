module Fs = Sdb_storage.Fs
module Pickle = Sdb_pickle.Pickle

type costs = {
  explore_ms : float;
  modify_ms : float;
  pickle_op_ms : float;
  pickle_byte_ms : float;
  unpickle_op_ms : float;
  unpickle_byte_ms : float;
  write_op_ms : float;
  sync_ms : float;
  write_byte_ms : float;
  read_op_ms : float;
  read_byte_ms : float;
  rpc_round_trip_ms : float;
}

(* Calibration (§5):
   - update pickle of ~300 B of parameters = 22 ms and a 1 MiB
     checkpoint pickle = 55 s give pickle ≈ 6 ms + 52 µs/B (the pickle
     package interprets run-time type structure per field, hence the
     large per-byte term);
   - the log write of ~330 B = 20 ms and 5 s of disk for a 1 MiB
     checkpoint give write ≈ 2 ms + fsync 16.3 ms + 5 µs/B;
   - reading back a 1 MiB checkpoint in 20 s gives
     unpickle ≈ 6 ms + 18 µs/B with reads at 1 µs/B;
   - exploring/modifying the memory structure 6 ms each, and 8 ms per
     RPC round trip, are used directly. *)
let microvax_1987 =
  {
    explore_ms = 6.0;
    modify_ms = 6.0;
    pickle_op_ms = 6.0;
    pickle_byte_ms = 0.052;
    unpickle_op_ms = 6.0;
    unpickle_byte_ms = 0.018;
    write_op_ms = 2.0;
    sync_ms = 16.3;
    write_byte_ms = 0.005;
    read_op_ms = 2.0;
    read_byte_ms = 0.001;
    rpc_round_trip_ms = 8.0;
  }

type activity = {
  explore_ops : int;
  modify_ops : int;
  pickle_ops : int;
  pickled_bytes : int;
  unpickle_ops : int;
  unpickled_bytes : int;
  disk : Fs.Counters.t;
  rpc_round_trips : int;
}

type breakdown = {
  explore_model_ms : float;
  modify_model_ms : float;
  pickle_model_ms : float;
  unpickle_model_ms : float;
  disk_model_ms : float;
  rpc_model_ms : float;
  total_model_ms : float;
}

let model c a =
  let f = float_of_int in
  let explore_model_ms = f a.explore_ops *. c.explore_ms in
  let modify_model_ms = f a.modify_ops *. c.modify_ms in
  let pickle_model_ms =
    (f a.pickle_ops *. c.pickle_op_ms) +. (f a.pickled_bytes *. c.pickle_byte_ms)
  in
  let unpickle_model_ms =
    (f a.unpickle_ops *. c.unpickle_op_ms) +. (f a.unpickled_bytes *. c.unpickle_byte_ms)
  in
  let disk_model_ms =
    (f a.disk.Fs.Counters.data_writes *. c.write_op_ms)
    +. (f a.disk.Fs.Counters.syncs *. c.sync_ms)
    +. (f a.disk.Fs.Counters.bytes_written *. c.write_byte_ms)
    +. (f a.disk.Fs.Counters.data_reads *. c.read_op_ms)
    +. (f a.disk.Fs.Counters.bytes_read *. c.read_byte_ms)
  in
  let rpc_model_ms = f a.rpc_round_trips *. c.rpc_round_trip_ms in
  {
    explore_model_ms;
    modify_model_ms;
    pickle_model_ms;
    unpickle_model_ms;
    disk_model_ms;
    rpc_model_ms;
    total_model_ms =
      explore_model_ms +. modify_model_ms +. pickle_model_ms +. unpickle_model_ms
      +. disk_model_ms +. rpc_model_ms;
  }

let pp_breakdown ppf b =
  Format.fprintf ppf
    "explore %.1f + modify %.1f + pickle %.1f + unpickle %.1f + disk %.1f + rpc %.1f = %.1f ms"
    b.explore_model_ms b.modify_model_ms b.pickle_model_ms b.unpickle_model_ms
    b.disk_model_ms b.rpc_model_ms b.total_model_ms

type snapshot = {
  s_pickled : int;
  s_unpickled : int;
  s_pickle_ops : int;
  s_unpickle_ops : int;
  s_disk : Fs.Counters.t;
  s_trips : int;
}

let snapshot fs =
  {
    s_pickled = Pickle.Counters.bytes_pickled ();
    s_unpickled = Pickle.Counters.bytes_unpickled ();
    s_pickle_ops = Pickle.Counters.pickle_ops ();
    s_unpickle_ops = Pickle.Counters.unpickle_ops ();
    s_disk = Fs.Counters.copy fs.Fs.counters;
    s_trips = Sdb_rpc.Rpc.Transport.round_trips ();
  }

let since ?(explore_ops = 0) ?(modify_ops = 0) snap fs =
  {
    explore_ops;
    modify_ops;
    pickle_ops = Pickle.Counters.pickle_ops () - snap.s_pickle_ops;
    pickled_bytes = Pickle.Counters.bytes_pickled () - snap.s_pickled;
    unpickle_ops = Pickle.Counters.unpickle_ops () - snap.s_unpickle_ops;
    unpickled_bytes = Pickle.Counters.bytes_unpickled () - snap.s_unpickled;
    disk = Fs.Counters.diff ~after:fs.Fs.counters ~before:snap.s_disk;
    rpc_round_trips = Sdb_rpc.Rpc.Transport.round_trips () - snap.s_trips;
  }
