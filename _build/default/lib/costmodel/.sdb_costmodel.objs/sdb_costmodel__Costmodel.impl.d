lib/costmodel/costmodel.ml: Format Sdb_pickle Sdb_rpc Sdb_storage
