lib/costmodel/costmodel.mli: Format Sdb_storage
