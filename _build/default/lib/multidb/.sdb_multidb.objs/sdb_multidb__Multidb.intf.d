lib/multidb/multidb.mli: Sdb_storage Smalldb
