lib/multidb/multidb.ml: Array Format List Printf Sdb_pickle Sdb_storage Sdb_vlock Sdb_wal Smalldb String
