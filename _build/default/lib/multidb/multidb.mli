(** Partitioned databases over a single shared log — the paper's §7
    proposal, built out.

    "It seems likely that many larger databases (for example the
    directories of a large file system) could be handled by considering
    them as multiple separate databases for the purpose of writing
    checkpoints.  In that case, we could either use multiple log files
    or a single log file with more complicated rules for flushing the
    log."

    The database is split into [partitions] independent [App.state]s.
    Every update names its partition and is committed to one {e shared}
    log (still one disk write per update); each partition checkpoints
    {e separately}, so the update-blocking window is proportional to a
    partition, not the whole database, and restarts replay only the
    suffix each partition actually needs.

    The "more complicated rules for flushing the log": the shared log
    is a chain of generations; a new generation is started when the
    current one outgrows [log_switch_bytes], and a generation is
    deleted once {e every} partition's checkpoint LSN has passed its
    end.  A manifest file (committed with the same write-new /
    atomic-rename discipline as the paper's [version] file) records the
    partition checkpoints and the live log chain.

    Concurrency uses one three-mode lock across the store: enquiries
    on any partition run under shared; updates and (per-partition)
    checkpoints hold update; only memory mutation is exclusive. *)

type config = {
  log_switch_bytes : int;  (** start a new shared-log generation beyond this *)
  auto_checkpoint_round_robin : int option;
      (** checkpoint the next partition (round-robin) every N updates —
          the incremental alternative to one big nightly checkpoint *)
}

val default_config : config
(** 1 MiB switch threshold, no automatic checkpoints. *)

type partition_stats = {
  p_index : int;
  p_checkpoint_version : int;
  p_checkpoint_lsn : int;  (** shared-log LSN the checkpoint reflects *)
}

type stats = {
  partitions : int;
  lsn : int;  (** total updates committed across all partitions *)
  log_generations : int;  (** live shared-log files *)
  log_bytes : int;  (** bytes across live shared-log files *)
  parts : partition_stats list;
  replayed : int;  (** per-partition replays summed, at open *)
}

module Make (App : Smalldb.APP) : sig
  type t

  val open_ :
    ?config:config -> partitions:int -> Sdb_storage.Fs.t -> (t, string) result
  (** Create (with [partitions] empty states) or recover.  The
      partition count is fixed at creation. *)

  val open_exn : ?config:config -> partitions:int -> Sdb_storage.Fs.t -> t
  val partition_count : t -> int

  val query : t -> partition:int -> (App.state -> 'a) -> 'a

  val update : t -> partition:int -> App.update -> unit
  (** One shared-log write, then apply to the partition's state. *)

  val update_checked :
    t -> partition:int -> precondition:(App.state -> (unit, 'e) result) ->
    App.update -> (unit, 'e) result

  val checkpoint_partition : t -> int -> unit
  (** Checkpoint one partition and apply the log-flushing rules. *)

  val checkpoint_next : t -> unit
  (** Round-robin over partitions: calling this periodically keeps every
      partition's replay suffix bounded without ever pickling the whole
      database at once. *)

  val checkpoint_all : t -> unit

  val stats : t -> stats
  val close : t -> unit
end
