type t = int32

let polynomial = 0xEDB88320l

let table =
  lazy
    (let t = Array.make 256 0l in
     for n = 0 to 255 do
       let c = ref (Int32.of_int n) in
       for _ = 0 to 7 do
         if Int32.logand !c 1l <> 0l then
           c := Int32.logxor polynomial (Int32.shift_right_logical !c 1)
         else c := Int32.shift_right_logical !c 1
       done;
       t.(n) <- !c
     done;
     t)

let empty = 0l

(* The public state is the plain digest; internally the register is kept
   complemented, so we fold the complement in and out at each call. *)
let update crc b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.update";
  let tbl = Lazy.force table in
  let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
  for i = pos to pos + len - 1 do
    let byte = Char.code (Bytes.unsafe_get b i) in
    let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int byte)) 0xFFl) in
    c := Int32.logxor tbl.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let update_string crc s =
  update crc (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let digest_bytes b ~pos ~len = update empty b ~pos ~len
let digest_string s = update_string empty s
let to_int32 c = c
let equal = Int32.equal
