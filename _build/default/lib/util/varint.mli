(** LEB128-style variable-length integers with zig-zag signed mapping.

    Small values dominate log entries and pickled data, so compact
    integer encoding keeps the log and checkpoints small.  Encodings are
    canonical: a value has exactly one valid encoding, and decoders
    reject over-long forms (which would otherwise let corrupted bytes
    alias a valid value). *)

exception Malformed of string
(** Raised by decoders on truncated input, over-long encodings, or
    values exceeding the OCaml [int] range. *)

val write_unsigned : Buffer.t -> int -> unit
(** Append the unsigned encoding of a non-negative int.
    Raises [Invalid_argument] on negative input. *)

val write_signed : Buffer.t -> int -> unit
(** Append the zig-zag encoding of any int. *)

val read_unsigned : string -> pos:int -> int * int
(** [read_unsigned s ~pos] decodes at [pos]; returns [(value, next_pos)].
    Raises {!Malformed} on bad input. *)

val read_signed : string -> pos:int -> int * int
(** Signed (zig-zag) counterpart of {!read_unsigned}. *)

val encoded_size_unsigned : int -> int
(** Bytes the unsigned encoding will use. *)
