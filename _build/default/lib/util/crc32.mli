(** CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.

    Used by the log ({!Wal}) and checkpoint framing to detect torn or
    corrupted disk writes on backends that cannot report partial-page
    read errors themselves (real file systems).  The paper relies on the
    disk hardware reporting an error for a partially written page; a CRC
    over each frame gives the same detection property on commodity
    files. *)

type t = int32
(** A running CRC state (also the final digest). *)

val empty : t
(** CRC of the empty string. *)

val update : t -> bytes -> pos:int -> len:int -> t
(** [update c b ~pos ~len] extends digest [c] with [len] bytes of [b]
    starting at [pos].  Raises [Invalid_argument] on out-of-range. *)

val update_string : t -> string -> t
(** [update_string c s] extends [c] with all of [s]. *)

val digest_bytes : bytes -> pos:int -> len:int -> t
(** One-shot digest of a byte range. *)

val digest_string : string -> t
(** One-shot digest of a whole string. *)

val to_int32 : t -> int32
val equal : t -> t -> bool
