(** Deterministic pseudo-random numbers (SplitMix64).

    Benchmarks and property tests need reproducible workloads that do
    not depend on the global [Random] state; each generator is an
    independent, seedable stream. *)

type t

val create : seed:int -> t
(** A fresh stream.  Equal seeds yield equal streams. *)

val split : t -> t
(** An independent stream derived from (and advancing) [t]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val string : t -> len:int -> string
(** Random string of printable ASCII of length [len]. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val zipf : t -> n:int -> theta:float -> int
(** Zipf-distributed rank in [\[0, n)] with skew [theta] (0 = uniform);
    used for skewed key popularity in benchmark workloads. *)
