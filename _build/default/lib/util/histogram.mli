(** Latency histogram with percentile queries.

    Samples are recorded exactly (growable array) because benchmark runs
    are bounded; percentile queries sort on demand and cache the sorted
    view until the next record. *)

type t

val create : unit -> t
val record : t -> float -> unit
val count : t -> int
val mean : t -> float
val min : t -> float
val max : t -> float
val percentile : t -> float -> float
(** [percentile t 99.0] is the nearest-rank p99.  Raises
    [Invalid_argument] if empty or [p] outside [\[0,100\]]. *)

val total : t -> float
val merge : t -> t -> t
(** A fresh histogram holding both sample sets. *)
