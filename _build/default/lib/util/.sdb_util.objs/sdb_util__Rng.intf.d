lib/util/rng.mli:
