lib/util/tablefmt.mli:
