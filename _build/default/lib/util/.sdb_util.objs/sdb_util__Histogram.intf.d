lib/util/histogram.mli:
