lib/util/varint.ml: Buffer Char String Sys
