lib/util/rng.ml: Array Char Float Hashtbl Int64 String
