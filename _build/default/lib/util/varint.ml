exception Malformed of string

(* Writers and readers below treat the OCaml int as a 63-bit pattern:
   [lsr] (logical shift) makes the loop terminate even when the sign bit
   is set, which happens for zig-zag encodings of large negatives. *)

let write_raw buf n =
  let rec go n =
    if n land lnot 0x7F = 0 then Buffer.add_char buf (Char.chr (n land 0x7F))
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7F)));
      go (n lsr 7)
    end
  in
  go n

let write_unsigned buf n =
  if n < 0 then invalid_arg "Varint.write_unsigned: negative";
  write_raw buf n

let zigzag n = (n lsl 1) lxor (n asr (Sys.int_size - 1))
let unzigzag n = (n lsr 1) lxor (- (n land 1))

let write_signed buf n = write_raw buf (zigzag n)

let read_raw s ~pos =
  let len = String.length s in
  let rec go pos shift acc =
    if pos >= len then raise (Malformed "varint: truncated");
    if shift >= Sys.int_size then raise (Malformed "varint: too long");
    let b = Char.code (String.unsafe_get s pos) in
    let chunk = b land 0x7F in
    if chunk lsl shift lsr shift <> chunk then raise (Malformed "varint: overflow");
    let acc = acc lor (chunk lsl shift) in
    if b land 0x80 = 0 then begin
      if b = 0 && shift > 0 then raise (Malformed "varint: over-long encoding");
      (acc, pos + 1)
    end
    else go (pos + 1) (shift + 7) acc
  in
  if pos < 0 then raise (Malformed "varint: negative position");
  go pos 0 0

let read_unsigned s ~pos =
  let v, next = read_raw s ~pos in
  if v < 0 then raise (Malformed "varint: unsigned overflow");
  (v, next)

let read_signed s ~pos =
  let v, next = read_raw s ~pos in
  (unzigzag v, next)

let encoded_size_unsigned n =
  if n < 0 then invalid_arg "Varint.encoded_size_unsigned: negative";
  let rec go n acc = if n land lnot 0x7F = 0 then acc else go (n lsr 7) (acc + 1) in
  go n 1
