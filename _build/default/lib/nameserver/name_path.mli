(** Hierarchical names.

    A name is a sequence of non-empty string components; the textual
    form joins them with ['/'] and leads with ['/'] (["/"] is the
    root, the empty sequence). *)

type t = string list

val root : t
val is_root : t -> bool

val component_ok : string -> bool
(** Non-empty and free of ['/']. *)

val validate : t -> (t, string) result

val of_string : string -> (t, string) result
(** Accepts ["/a/b"], ["a/b"], ["/"]; rejects empty components. *)

val to_string : t -> string
val parent : t -> t option
(** [None] for the root. *)

val basename : t -> string option
val append : t -> string -> t
val is_prefix : prefix:t -> t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
