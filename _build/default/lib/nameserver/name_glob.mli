(** Glob patterns over hierarchical names — the name server's browsing
    and enumeration surface (§3 "a variety of enquiry and browsing
    operations"; §2 notes enumerations as the access pattern that
    matters).

    A pattern looks like a name: ["/hosts/*/addr"].  Within a
    component, ['*'] matches any (possibly empty) run of characters and
    ['?'] exactly one.  A final ["**"] component matches any descendant
    at any depth, so ["/users/**"] is "everything under /users".
    Matching is anchored: the pattern's depth must equal the name's
    (except under a trailing ["**"]). *)

type t

val compile : string -> (t, string) result
(** Parse a pattern from its textual form.  ["**"] is only permitted as
    the final component. *)

val pattern_depth : t -> int option
(** Number of components, or [None] when the pattern ends in ["**"]. *)

val matches : t -> Name_path.t -> bool

val component_matches : string -> string -> bool
(** [component_matches pattern s]: one component, ['*']/['?'] wildcards. *)

val prefix_viable : t -> Name_path.t -> bool
(** May any extension of this path still match?  Drives search-space
    pruning during tree walks. *)

val to_string : t -> string
