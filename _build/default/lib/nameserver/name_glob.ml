type t = { components : string list; descend : bool }

let to_string { components; descend } =
  Name_path.to_string (components @ if descend then [ "**" ] else [])

(* Classic backtracking glob over one component: [star] remembers the
   last '*' position and [ss] how much of [s] it has absorbed, so a
   mismatch later backtracks by letting the star eat one more char. *)
let component_matches pattern s =
  let np = String.length pattern and ns = String.length s in
  let pi = ref 0 and si = ref 0 and star = ref (-1) and ss = ref 0 in
  let ok = ref true in
  while !ok && !si < ns do
    if !pi < np && (pattern.[!pi] = '?' || pattern.[!pi] = s.[!si]) then begin
      incr pi;
      incr si
    end
    else if !pi < np && pattern.[!pi] = '*' then begin
      star := !pi;
      ss := !si;
      incr pi
    end
    else if !star >= 0 then begin
      pi := !star + 1;
      incr ss;
      si := !ss
    end
    else ok := false
  done;
  while !ok && !pi < np && pattern.[!pi] = '*' do
    incr pi
  done;
  !ok && !pi = np

let compile text =
  match Name_path.of_string text with
  | Error e -> Error e
  | Ok components ->
    let rec split acc = function
      | [] -> Ok { components = List.rev acc; descend = false }
      | [ "**" ] -> Ok { components = List.rev acc; descend = true }
      | "**" :: _ -> Error "glob: ** is only allowed as the final component"
      | c :: rest -> split (c :: acc) rest
    in
    split [] components

let pattern_depth t = if t.descend then None else Some (List.length t.components)

let rec match_components components path descend =
  match (components, path) with
  (* A trailing ** matches descendants only, not the prefix itself. *)
  | [], [] -> not descend
  | [], _ :: _ -> descend
  | _ :: _, [] -> false
  | p :: components, c :: path ->
    component_matches p c && match_components components path descend

let matches t path = match_components t.components path t.descend

(* A path is a viable prefix when each of its components matches the
   corresponding pattern component; deeper pattern components may still
   be satisfied by descendants. *)
let rec prefix_viable_components components path descend =
  match (components, path) with
  | _, [] -> true
  | [], _ :: _ -> descend
  | p :: components, c :: path ->
    component_matches p c && prefix_viable_components components path descend

let prefix_viable t path = prefix_viable_components t.components path t.descend
