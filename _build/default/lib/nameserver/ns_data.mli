(** The name server's in-memory data structure and its pure operations.

    "The virtual memory data structure for the name server's database
    consists primarily of a tree of hash tables.  The tables are
    indexed by strings, and deliver values that are further hash
    tables" (§3).  Each node additionally carries an optional string
    value, so the structure is a general name-to-value mapping whose
    values are trees with string-labelled arcs. *)

type node = {
  mutable value : string option;
  children : (string, node) Hashtbl.t;
}
(** The live, mutable representation. *)

type tree = Tree of { tvalue : string option; tchildren : (string * tree) list }
(** The immutable exchange representation used in update parameters,
    exports, and over RPC.  Children are kept sorted by label so equal
    trees have equal pickles. *)

val codec_node : node Sdb_pickle.Pickle.t
val codec_tree : tree Sdb_pickle.Pickle.t

val empty_node : unit -> node
val leaf : string option -> tree
val tree : ?value:string -> (string * tree) list -> tree

(** {1 Navigation} *)

val find : node -> Name_path.t -> node option
val mem : node -> Name_path.t -> bool
val ensure : node -> Name_path.t -> node
(** Find the node, creating missing intermediate nodes (valueless). *)

(** {1 Mutation (used by [apply])} *)

val set_value : node -> Name_path.t -> string option -> unit
val delete_subtree : node -> Name_path.t -> unit
(** Deleting the root clears it; deleting an absent path is a no-op. *)

val graft : node -> Name_path.t -> tree -> unit
(** Replace the subtree at the path with a materialization of [tree],
    creating intermediates. *)

(** {1 Conversion} *)

val materialize : tree -> node
val snapshot : ?depth:int -> node -> tree
(** [depth] bounds descent; [depth:0] is just the node's value. *)

(** {1 Enumeration} *)

val fold_bindings :
  ?prune:(Name_path.t -> bool) -> node ->
  init:'acc -> f:('acc -> Name_path.t -> string option -> 'acc) -> 'acc
(** Depth-first fold over every node (root excluded), visiting children
    in sorted label order.  [prune p] returning [false] skips the node
    at [p] and its whole subtree — how glob search avoids walking the
    world. *)

(** {1 Measures and comparison} *)

val count_nodes : node -> int
val weight_bytes : node -> int
(** Rough memory footprint: labels + values, for benchmark sizing. *)

val equal_tree : tree -> tree -> bool
val equal_node : node -> node -> bool
val pp_tree : Format.formatter -> tree -> unit
