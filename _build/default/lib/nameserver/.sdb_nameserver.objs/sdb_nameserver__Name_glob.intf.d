lib/nameserver/name_glob.mli: Name_path
