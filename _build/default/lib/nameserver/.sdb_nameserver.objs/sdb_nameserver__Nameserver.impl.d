lib/nameserver/nameserver.ml: Fun Hashtbl List Name_glob Name_path Ns_data Option Printf Sdb_pickle Smalldb String
