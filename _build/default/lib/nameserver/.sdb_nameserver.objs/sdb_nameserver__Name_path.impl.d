lib/nameserver/name_path.ml: Format List Printf String
