lib/nameserver/name_path.mli: Format
