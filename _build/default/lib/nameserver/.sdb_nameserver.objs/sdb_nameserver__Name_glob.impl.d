lib/nameserver/name_glob.ml: List Name_path String
