lib/nameserver/ns_data.mli: Format Hashtbl Name_path Sdb_pickle
