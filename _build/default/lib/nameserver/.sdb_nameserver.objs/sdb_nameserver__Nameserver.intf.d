lib/nameserver/nameserver.mli: Name_glob Name_path Ns_data Sdb_pickle Sdb_storage Smalldb
