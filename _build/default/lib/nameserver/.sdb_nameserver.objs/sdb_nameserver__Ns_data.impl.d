lib/nameserver/ns_data.ml: Format Hashtbl List Name_path Option Sdb_pickle String
