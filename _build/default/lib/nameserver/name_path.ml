type t = string list

let root = []
let is_root p = p = []

let component_ok c = String.length c > 0 && not (String.contains c '/')

let validate p =
  let rec go = function
    | [] -> Ok p
    | c :: rest -> if component_ok c then go rest else Error (Printf.sprintf "invalid name component %S" c)
  in
  go p

let of_string s =
  let parts = String.split_on_char '/' s in
  (* Leading '/' produces an initial empty field; a bare "/" or ""
     produces only empty fields, meaning the root. *)
  let parts = List.filter (fun c -> c <> "") parts in
  validate parts

let to_string = function [] -> "/" | p -> "/" ^ String.concat "/" p

let rec parent = function
  | [] -> None
  | [ _ ] -> Some []
  | c :: rest -> (
    match parent rest with Some p -> Some (c :: p) | None -> None)

let rec basename = function
  | [] -> None
  | [ c ] -> Some c
  | _ :: rest -> basename rest

let append p c = p @ [ c ]

let rec is_prefix ~prefix p =
  match (prefix, p) with
  | [], _ -> true
  | _, [] -> false
  | a :: prefix, b :: p -> String.equal a b && is_prefix ~prefix p

let compare = List.compare String.compare
let equal a b = compare a b = 0
let pp ppf p = Format.pp_print_string ppf (to_string p)
