(** The common key-value interface behind which every §2 implementation
    technique is benchmarked, so E7 compares like for like.

    Keys and values are arbitrary strings (each implementation handles
    its own escaping or framing).  [set]/[remove] must be durable when
    they return; [get] reflects all completed updates. *)

module type S = sig
  type t

  val technique : string
  (** Human name, e.g. "text file rewrite". *)

  val open_ : Sdb_storage.Fs.t -> (t, string) result
  (** Open or create the database in [fs]; runs whatever recovery the
      technique supports. *)

  val get : t -> string -> string option
  val set : t -> string -> string -> unit
  val remove : t -> string -> unit
  val iter : t -> (string -> string -> unit) -> unit
  val length : t -> int

  val quiesce : t -> unit
  (** Bring the store to its long-running quiescent state — for the
      checkpoint-based design this writes a checkpoint and empties the
      log; for the others it is a no-op.  Benchmarks call it after bulk
      population so steady-state costs are measured. *)

  val verify : t -> (unit, string) result
  (** Full integrity scan: [Error _] means the database is corrupt and
      would need restoring from a backup — the §2 failure mode of the
      in-place technique. *)

  val close : t -> unit
end
