(** The §2 ad-hoc technique: a custom paged disk file with specialized
    access code, updated by overwriting pages in place.

    "The performance of these databases is generally quite good for
    updates, requiring typically one disk write per update" — and
    indeed {!set} costs one positional page write plus one fsync when
    the bucket has room (two writes when it overflows into a fresh
    page).  But "updates are typically performed by overwriting
    existing data in place.  This leaves the database quite vulnerable
    to transient errors, requiring restoration of the database from a
    backup copy": a crash that tears a page destroys previously
    committed bindings, which {!verify} will report after recovery.
    There is deliberately no commit protocol here — that is the point
    of the baseline. *)

include Kv_intf.S

val file_name : string
