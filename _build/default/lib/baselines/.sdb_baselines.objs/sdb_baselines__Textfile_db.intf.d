lib/baselines/textfile_db.mli: Kv_intf
