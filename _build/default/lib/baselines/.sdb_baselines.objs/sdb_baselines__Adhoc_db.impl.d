lib/baselines/adhoc_db.ml: Paged_store
