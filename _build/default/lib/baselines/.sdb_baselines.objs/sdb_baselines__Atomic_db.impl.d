lib/baselines/atomic_db.ml: Format List Paged_store Sdb_pickle Sdb_storage Sdb_wal
