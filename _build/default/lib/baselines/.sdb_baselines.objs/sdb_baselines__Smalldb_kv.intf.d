lib/baselines/smalldb_kv.mli: Hashtbl Kv_intf Sdb_pickle Sdb_storage Smalldb
