lib/baselines/textfile_db.ml: Buffer Hashtbl List Printf Sdb_storage String
