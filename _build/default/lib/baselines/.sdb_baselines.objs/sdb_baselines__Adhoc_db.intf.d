lib/baselines/adhoc_db.mli: Kv_intf
