lib/baselines/smalldb_kv.ml: Hashtbl Printexc Sdb_pickle Smalldb
