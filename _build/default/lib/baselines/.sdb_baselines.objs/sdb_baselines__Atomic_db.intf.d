lib/baselines/atomic_db.mli: Kv_intf
