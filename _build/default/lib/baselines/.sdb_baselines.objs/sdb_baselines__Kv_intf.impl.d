lib/baselines/kv_intf.ml: Sdb_storage
