lib/baselines/paged_store.ml: Bytes Char Int32 Int64 List Option Printf Sdb_storage String
