lib/baselines/paged_store.mli: Sdb_storage
