(** A page-structured hash file — the "custom designed data
    representation in a disk file" of the §2 ad-hoc technique, shared
    by {!Adhoc_db} (which overwrites pages in place with no commit
    protocol) and {!Atomic_db} (which redo-logs page images first).

    Layout: page 0 is the header; pages 1..buckets are hash buckets;
    further pages are overflow pages chained from their bucket.  A page
    holds length-prefixed records and a next-page link.  Records never
    span pages; a record larger than a page is rejected.

    The store itself performs no recovery: callers decide when and how
    page images reach the disk ({!apply}), which is precisely where the
    two baselines differ. *)

type t

exception Corrupt of string
(** Raised by navigation ({!get}, {!iter}, the [prepare_*] planners)
    when a page decodes to nonsense — the store needs restoring from a
    backup.  {!verify} reports this as a result instead. *)

val default_page_size : int
val default_buckets : int

val open_ :
  Sdb_storage.Fs.t -> file:string -> ?page_size:int -> ?buckets:int -> unit ->
  (t, string) result
(** Open or create.  Fails if an existing file's header disagrees or is
    unreadable. *)

val page_size : t -> int
val npages : t -> int
val record_fits : t -> key:string -> value:string -> bool

val get : t -> string -> string option
(** Walks the bucket chain, reading pages from disk ("perusing a small
    number of directly accessed pages").  Raises {!Sdb_storage.Fs.Read_error}
    on a damaged page. *)

type page_image = { index : int; bytes : string }

val prepare_set : t -> string -> string -> page_image list
(** The page images that would store the binding: usually one page;
    two (new overflow + chain link) when the bucket overflows.
    Raises [Invalid_argument] if the record cannot fit a page. *)

val prepare_remove : t -> string -> page_image list
(** Empty when the key is absent. *)

val apply : t -> sync:bool -> page_image list -> unit
(** Write the images in place (one positional write each), then one
    fsync when [sync]. *)

val sync : t -> unit
(** Force the data file to stable storage. *)

val iter : t -> (string -> string -> unit) -> unit
val length : t -> int

val verify : t -> (unit, string) result
(** Full scan: decodes every reachable page, detecting damaged pages,
    malformed records, broken or cyclic chains. *)

val close : t -> unit
