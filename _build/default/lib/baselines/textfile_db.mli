(** The Unix-style technique (§2): the whole database is an ordinary
    text file, one ["key<TAB>value"] line per binding.

    Reads parse the file once at open and serve from memory.  {e Every}
    update rewrites the entire file to a temporary name, fsyncs it, and
    atomically renames it into place — which is why "the reliability of
    updates in the face of transient errors can be made quite good",
    and why "it is generally not practicable to produce good
    performance with this technique": the disk cost of one update is
    proportional to the size of the whole database. *)

include Kv_intf.S

val file_name : string
(** The database file ("database.txt"). *)
