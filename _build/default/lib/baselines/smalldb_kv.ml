module P = Sdb_pickle.Pickle

let technique = "this paper (memory + log + checkpoint)"

type update = Set of string * string | Remove of string

let codec_update =
  P.variant ~name:"kv.update"
    [
      P.case "set"
        (P.pair P.string P.string)
        (function Set (k, v) -> Some (k, v) | Remove _ -> None)
        (fun (k, v) -> Set (k, v));
      P.case "remove" P.string
        (function Remove k -> Some k | Set _ -> None)
        (fun k -> Remove k);
    ]

module App = struct
  type state = (string, string) Hashtbl.t
  type nonrec update = update

  let name = "smalldb-kv"
  let codec_state = P.hashtbl P.string P.string
  let codec_update = codec_update
  let init () = Hashtbl.create 64

  let apply state u =
    (match u with
    | Set (k, v) -> Hashtbl.replace state k v
    | Remove k -> Hashtbl.remove state k);
    state
end

module Db = Smalldb.Make (App)

type t = Db.t

let open_with ?config fs = Db.open_ ?config fs
let open_ fs = open_with fs
let db t = t
let get t k = Db.query t (fun tbl -> Hashtbl.find_opt tbl k)
let set t k v = Db.update t (Set (k, v))
let remove t k = Db.update t (Remove k)
let iter t f = Db.query t (fun tbl -> Hashtbl.iter f tbl)
let length t = Db.query t Hashtbl.length
let checkpoint = Db.checkpoint
let quiesce = Db.checkpoint

(* The whole current log is read back with CRC checking, which is the
   strongest on-disk validation available without closing the store. *)
let verify t =
  match Db.fold_log t ~init:0 ~f:(fun acc _ _ -> acc + 1) with
  | _n -> Ok ()
  | exception e -> Error (Printexc.to_string e)

let close = Db.close
