(** The §2 atomic-commit technique: "a naive implementation of atomic
    commit will require two disk writes: one for the commit record (and
    log entry) and one for updating the actual data ...has much better
    reliability, and performs about a factor of two worse for updates"
    than the ad-hoc scheme.

    Every update appends a physical redo record (the full page images
    it is about to write) to a log and fsyncs it — the commit — then
    performs the in-place page writes and fsyncs the data file.
    Recovery replays the whole log (page-image redo is idempotent), so
    a torn data page is always repaired.  The log is trimmed once it
    outgrows a threshold, only ever after the data file is fully
    synced. *)

include Kv_intf.S

val data_file : string
val log_file_name : string
