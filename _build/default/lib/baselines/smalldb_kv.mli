(** The paper's design instantiated as a key-value store, so E7 can
    benchmark it against the §2 alternatives behind the same interface.

    Enquiries are hash-table lookups in memory; an update is one log
    write (pickled parameters, one fsync); {!checkpoint} pickles the
    whole table into a fresh generation. *)

include Kv_intf.S

type update = Set of string * string | Remove of string

val codec_update : update Sdb_pickle.Pickle.t

module App :
  Smalldb.APP
    with type state = (string, string) Hashtbl.t
     and type update = update

module Db : module type of Smalldb.Make (App)

val open_with : ?config:Smalldb.config -> Sdb_storage.Fs.t -> (t, string) result
val checkpoint : t -> unit
val db : t -> Db.t
