let technique = "ad-hoc paged file (in place)"
let file_name = "adhoc.db"

type t = Paged_store.t

let open_ fs = Paged_store.open_ fs ~file:file_name ()
let get = Paged_store.get
let set t k v = Paged_store.apply t ~sync:true (Paged_store.prepare_set t k v)
let remove t k = Paged_store.apply t ~sync:true (Paged_store.prepare_remove t k)
let iter = Paged_store.iter
let length = Paged_store.length
let verify = Paged_store.verify
let quiesce _ = ()
let close = Paged_store.close
