(** Name-server replication (§4).

    The paper's name server "already replicate[s] the database on
    multiple name servers spread across the network" and responds "to
    a hard error on a particular name server replica by restoring its
    data from another replica.  This causes us to lose only those
    updates that had been applied to the damaged replica but not
    propagated to any other replica."

    The model here matches that description: each replica accepts
    client updates locally (durably, through its own log) and eagerly
    pushes them to its peers over RPC; a peer that is unreachable or
    behind is caught up later by {!anti_entropy}, which replays the
    local log suffix the peer is missing — or, when a checkpoint has
    already absorbed that history, ships a full snapshot.  Updates are
    propagated in commit order per origin; concurrent updates at
    different origins converge because the name-server update
    operations are idempotent last-writer assignments on disjoint or
    re-grafted subtrees.  (The richer reconciliation of Lampson's
    global name service is out of this paper's scope.) *)

type t

type peer_report = {
  peer_id : string;
  reachable : bool;
  backlog : int;  (** local updates not yet acknowledged by this peer *)
}

val create : id:string -> Sdb_nameserver.Nameserver.t -> t
(** Wrap a local name server as a replica.  Propagation subscribes to
    the engine's committed-update stream, so updates made through any
    path — {!update}, the [Nameserver] API, or an RPC handler — are
    pushed to peers. *)

val id : t -> string
val local : t -> Sdb_nameserver.Nameserver.t

val add_peer : ?acked_lsn:int -> t -> id:string -> Sdb_rpc.Ns_protocol.Client.t -> unit
(** Register a peer.  [acked_lsn] is the local LSN the peer is already
    known to have (default: the current tip, i.e. the peer is up to
    date).  Pass [~acked_lsn:0] for an empty peer that must be seeded
    by the next {!anti_entropy}. *)

val reconnect : t -> id:string -> Sdb_rpc.Ns_protocol.Client.t -> unit
(** Replace a known peer's (failed) connection, keeping its
    acknowledged position, and mark it reachable again. *)

val update : t -> Sdb_nameserver.Nameserver.update -> unit
(** Commit locally (one log write); the subscription then pushes to
    every reachable, up-to-date peer.  Push failures mark the peer
    unreachable; the update is never lost locally. *)

val set_value : t -> Sdb_nameserver.Name_path.t -> string option -> unit
val delete_subtree : t -> Sdb_nameserver.Name_path.t -> unit

val anti_entropy : t -> unit
(** Catch every peer up: replay the log suffix it is missing, or ship
    a full snapshot when the log no longer covers it.  Marks peers
    reachable again on success. *)

val peers : t -> peer_report list

val converged_with : t -> Sdb_rpc.Ns_protocol.Client.t -> bool
(** Digest comparison with a peer — the long-term consistency check. *)

val digest : Sdb_nameserver.Nameserver.t -> string

val clone_from :
  Sdb_rpc.Ns_protocol.Client.t -> Sdb_storage.Fs.t -> (Sdb_nameserver.Nameserver.t, string) result
(** Hard-error recovery: rebuild a replica's database from a peer's
    snapshot into a fresh store, then checkpoint it. *)
