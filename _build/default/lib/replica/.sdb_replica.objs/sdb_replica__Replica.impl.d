lib/replica/replica.ml: Digest List Option Printf Sdb_nameserver Sdb_pickle Sdb_rpc Smalldb String
