lib/replica/replica.mli: Sdb_nameserver Sdb_rpc Sdb_storage
