(* sdb_top: a live terminal view of one running name server.

   Polls the server's metrics RPC (the Prometheus text exposition — the
   same bytes a scraper would collect, so what this shows is what
   monitoring sees) plus the traces RPC for recent slow spans, and
   redraws in place every interval.  Rates are deltas between polls;
   quantiles are the server's all-time latency summaries.

   No engine code is linked against the store: this is a pure RPC
   client, safe to point at a production socket. *)

open Cmdliner
module Rpc = Sdb_rpc.Rpc
module Proto = Sdb_rpc.Ns_protocol

(* ------------------------------------------------------------------ *)
(* Prometheus text parsing                                             *)

type sample = { s_name : string; s_labels : (string * string) list; s_value : float }

(* Parse one exposition line: [name{labels} value] or [name value].
   Label values are double-quoted with backslash escapes for the quote,
   the backslash itself and newline (exactly what Metrics.render
   emits). *)
let parse_line line =
  let n = String.length line in
  if n = 0 || line.[0] = '#' then None
  else
    match String.index_opt line '{' with
    | None -> (
      match String.index_opt line ' ' with
      | None -> None
      | Some sp -> (
        let name = String.sub line 0 sp in
        let v = String.sub line (sp + 1) (n - sp - 1) in
        match float_of_string_opt (String.trim v) with
        | Some value -> Some { s_name = name; s_labels = []; s_value = value }
        | None -> None))
    | Some lb ->
      let name = String.sub line 0 lb in
      let labels = ref [] in
      let buf = Buffer.create 16 in
      let i = ref (lb + 1) in
      let key = ref "" in
      let ok = ref true in
      let state = ref `Key in
      while !ok && !i < n && !state <> `Done do
        let c = line.[!i] in
        (match !state with
        | `Key ->
          if c = '=' then begin
            key := Buffer.contents buf;
            Buffer.clear buf;
            if !i + 1 < n && line.[!i + 1] = '"' then begin
              incr i;
              state := `Value
            end
            else ok := false
          end
          else if c = '}' then state := `Done
          else Buffer.add_char buf c
        | `Value ->
          if c = '\\' && !i + 1 < n then begin
            incr i;
            Buffer.add_char buf
              (match line.[!i] with 'n' -> '\n' | c -> c)
          end
          else if c = '"' then begin
            labels := (!key, Buffer.contents buf) :: !labels;
            Buffer.clear buf;
            state := `AfterValue
          end
          else Buffer.add_char buf c
        | `AfterValue ->
          if c = ',' then state := `Key
          else if c = '}' then state := `Done
          else ok := false
        | `Done -> ());
        incr i
      done;
      if (not !ok) || !state <> `Done then None
      else
        let rest = String.trim (String.sub line !i (n - !i)) in
        match float_of_string_opt rest with
        | Some value ->
          Some { s_name = name; s_labels = List.rev !labels; s_value = value }
        | None -> None

let parse_exposition text =
  String.split_on_char '\n' text |> List.filter_map parse_line

let has s (k, v) = List.assoc_opt k s.s_labels = Some v

(* Sum over every series of a family matching all the given labels —
   counters aggregate across meths/peers this way. *)
let total samples name labels =
  List.fold_left
    (fun acc s ->
      if s.s_name = name && List.for_all (has s) labels then acc +. s.s_value
      else acc)
    0.0 samples

let find samples name labels =
  List.find_opt
    (fun s -> s.s_name = name && List.for_all (has s) labels)
    samples
  |> Option.map (fun s -> s.s_value)

(* ------------------------------------------------------------------ *)
(* One poll                                                            *)

type poll = {
  p_time : float;
  p_samples : sample list;
  p_spans : Sdb_obs.Trace.span list;
}

let poll ~socket ~spans =
  let t = Rpc.Socket.connect ~path:socket in
  let c = Proto.Client.create t in
  Fun.protect
    ~finally:(fun () -> Proto.Client.close c)
    (fun () ->
      let text = Proto.Client.metrics c in
      let sp =
        if spans > 0 then Proto.Client.traces c ~max_n:spans ~min_dur_s:0.0
        else []
      in
      { p_time = Unix.gettimeofday (); p_samples = parse_exposition text;
        p_spans = sp })

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let fmt_ms = Sdb_util.Tablefmt.fmt_ms

let fmt_rate v =
  if Float.is_nan v then "-" else Printf.sprintf "%.0f/s" v

let quantile samples name extra q =
  match find samples name (("quantile", q) :: extra) with
  | Some v -> fmt_ms (v *. 1000.0)
  | None -> "-"

let render ~socket ~prev ~cur =
  let b = Buffer.create 2048 in
  let out fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let dt =
    match prev with
    | Some p when cur.p_time > p.p_time -> cur.p_time -. p.p_time
    | _ -> nan
  in
  let delta name labels =
    match prev with
    | Some p ->
      (total cur.p_samples name labels -. total p.p_samples name labels) /. dt
    | None -> nan
  in
  let s = cur.p_samples in
  let tm = Unix.localtime cur.p_time in
  out "sdb_top — %s — %02d:%02d:%02d\n\n" socket tm.Unix.tm_hour
    tm.Unix.tm_min tm.Unix.tm_sec;
  out "  rpc:      %8s  errors %s  (lifetime %.0f reqs)\n"
    (fmt_rate (delta "sdb_rpc_requests_total" []))
    (fmt_rate (delta "sdb_rpc_errors_total" []))
    (total s "sdb_rpc_requests_total" []);
  let all = [ ("meth", "_all") ] in
  out "  latency:  p50 %s   p99 %s   p999 %s   max %s\n"
    (quantile s "sdb_rpc_latency_seconds" all "0.5")
    (quantile s "sdb_rpc_latency_seconds" all "0.99")
    (quantile s "sdb_rpc_latency_seconds" all "0.999")
    (match find s "sdb_rpc_latency_seconds_max" all with
    | Some v -> fmt_ms (v *. 1000.0)
    | None -> "-");
  out "  updates:  %8s  syncs %s\n"
    (fmt_rate (delta "sdb_updates_total" []))
    (fmt_rate (delta "sdb_wal_syncs_total" []));
  (* Mean commit-group size over the interval: how many updates each
     fsync carried.  Falls back to the lifetime mean on the first poll. *)
  let group =
    let dsum, dcount =
      match prev with
      | Some p ->
        ( total cur.p_samples "sdb_group_commit_size_sum" []
          -. total p.p_samples "sdb_group_commit_size_sum" [],
          total cur.p_samples "sdb_group_commit_size_count" []
          -. total p.p_samples "sdb_group_commit_size_count" [] )
      | None ->
        ( total s "sdb_group_commit_size_sum" [],
          total s "sdb_group_commit_size_count" [] )
    in
    if dcount > 0.0 then Printf.sprintf "%.2f" (dsum /. dcount) else "-"
  in
  out "  group:    mean size %s  checkpoints %.0f\n" group
    (total s "sdb_checkpoints_total" []);
  (* The lock-free read path, when configured: live readers, the pile
     of retired-but-unreclaimed versions, and reclaim lag (epochs
     between the oldest unreclaimed version and now — a stuck reader
     shows up here as a lag that only grows). *)
  if total s "sdb_epoch_advance_total" [] > 0.0 then
    out "  epoch:    readers %.0f  retired %.0f  reclaim lag %.0f  reclaims %s\n"
      (total s "sdb_epoch_readers" [])
      (total s "sdb_epoch_retired_versions" [])
      (total s "sdb_epoch_reclaim_lag" [])
      (fmt_rate (delta "sdb_epoch_reclaimed_total" []));
  let outbox = total s "sdb_replica_outbox_depth" [] in
  let backlog = total s "sdb_replica_backlog" [] in
  if outbox > 0.0 || backlog > 0.0 || total s "sdb_replica_pushes_total" [] > 0.0
  then
    out "  replica:  outbox %.0f  backlog %.0f  pushes %s\n" outbox backlog
      (fmt_rate (delta "sdb_replica_pushes_total" []));
  (* Peer health, one entry per peer: the failure detector's verdict
     (from the sdb_replica_peer_state gauge) plus heartbeat RTT
     quantiles.  Only shown once a health monitor is running. *)
  let peer_states =
    List.filter (fun sm -> sm.s_name = "sdb_replica_peer_state") s
  in
  if peer_states <> [] then begin
    let show sm =
      let peer =
        Option.value ~default:"?" (List.assoc_opt "peer" sm.s_labels)
      in
      let state =
        match int_of_float sm.s_value with
        | 0 -> "alive"
        | 1 -> "SUSPECT"
        | 2 -> "DEAD"
        | _ -> "?"
      in
      let extra = [ ("peer", peer) ] in
      Printf.sprintf "%s %s (hb p50 %s  p99 %s)" peer state
        (quantile s "sdb_replica_heartbeat_rtt_seconds" extra "0.5")
        (quantile s "sdb_replica_heartbeat_rtt_seconds" extra "0.99")
    in
    out "  peers:    %s\n" (String.concat "   " (List.map show peer_states))
  end;
  let degraded = Option.value ~default:0.0 (find s "sdb_degraded" []) in
  out "  state:    %s  scrubs %.0f (damage %.0f, repairs %.0f)\n"
    (if degraded > 0.0 then "DEGRADED (read-only)" else "healthy")
    (total s "sdb_scrub_runs_total" [])
    (total s "sdb_scrub_damage_found_total" [])
    (total s "sdb_scrub_repairs_total" []);
  if cur.p_spans <> [] then begin
    out "\n  slow spans (newest first):\n";
    List.iter
      (fun sp ->
        let attrs =
          sp.Sdb_obs.Trace.attrs
          |> List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v)
          |> String.concat " "
        in
        out "    %-14s %9s  %s\n" sp.Sdb_obs.Trace.name
          (fmt_ms (sp.Sdb_obs.Trace.dur_s *. 1000.0))
          attrs)
      cur.p_spans
  end;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)

let run socket interval once spans =
  (* Home the cursor, then clear to end of screen: repaints in place
     without pushing old frames into the scrollback. *)
  let clear = "\027[H\027[J" in
  let prev = ref None in
  let rec loop () =
    (match poll ~socket ~spans with
    | cur ->
      if not once then print_string clear;
      print_string (render ~socket ~prev:!prev ~cur);
      flush stdout;
      prev := Some cur
    | exception e ->
      if not once then print_string clear;
      Printf.printf "sdb_top — %s — unreachable (%s)\n" socket
        (Printexc.to_string e);
      flush stdout;
      prev := None);
    if once then 0
    else begin
      Unix.sleepf interval;
      loop ()
    end
  in
  loop ()

let cmd =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Server Unix-domain socket.")
  in
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECS" ~doc:"Refresh interval.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ] ~doc:"Print one snapshot and exit (no screen clear).")
  in
  let spans =
    Arg.(
      value & opt int 5
      & info [ "spans" ] ~docv:"N"
          ~doc:"Show the N most recent slow spans (0 disables).")
  in
  Cmd.v
    (Cmd.info "sdb-top" ~doc:"Live metrics view of a running smalldb-ns server")
    Term.(const run $ socket $ interval $ once $ spans)

let () = exit (Cmd.eval' cmd)
