(* The mode/effect-check CLI: the CI gate over the engine's .cmt tree.

   Usage:
     sdb_modecheck [DIR ...]      check .cmt files under the given roots
                                  (default: _build/default/lib, located by
                                  walking up to the dune-project root)
     sdb_modecheck --self-test    drive every rule on synthetic summaries
     sdb_modecheck --rules        list the rules
     sdb_modecheck --lockdep      print the derived lock-order edges
     sdb_modecheck --summaries    dump the per-function summaries
     sdb_modecheck --no-xcheck    skip the DESIGN.md §5 lockdep cross-check
     sdb_modecheck --file F.cmt ... check specific files (xcheck off)

   Exit status: 0 = clean, 1 = findings, 2 = usage or internal error —
   the same convention as sdb_lint.  Findings print one per line as
   file:line:col: [rule] message. *)

let usage () =
  prerr_endline
    "usage: sdb_modecheck [--self-test | --rules | --lockdep | --summaries \
     | --no-xcheck | --file F.cmt ... | DIR ...]";
  exit 2

(* Walk up from the cwd to the dune-project root so the tool works from
   any subdirectory of the repo. *)
let default_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  match up (Sys.getcwd ()) with
  | Some root ->
      let p = Filename.concat (Filename.concat root "_build") "default" in
      Some (Filename.concat p "lib")
  | None -> None

let mode_opt = function
  | Some m -> Sdb_modecheck.mode_name m
  | None -> "-"

let dump_summaries (r : Sdb_modecheck.report) =
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) r.r_summaries [] in
  List.iter
    (fun id ->
      let s = Hashtbl.find r.r_summaries id in
      Printf.printf
        "%s\n  requires=%s acquires=%s noblock=%b epoch_section=%b\n  \
         may_block=%s acq_modes=[%s] mus=[%s] calls=%d balanced=%b\n"
        s.Sdb_modecheck.s_id
        (mode_opt s.s_contract.c_requires)
        (mode_opt s.s_contract.c_acquires)
        s.s_contract.c_noblock s.s_contract.c_epoch_section
        (match s.x_blocks with Some w -> w | None -> "-")
        (String.concat ","
           (List.map Sdb_modecheck.mode_name s.x_acq_modes))
        (String.concat "," (List.map fst s.x_mus))
        (List.length s.s_calls) s.s_epoch_balanced)
    (List.sort compare ids)

let check ~xcheck ~lockdep ~summaries files =
  let r = Sdb_modecheck.analyze ~xcheck files in
  if summaries then dump_summaries r;
  if lockdep then
    List.iter
      (fun (a, b) -> Printf.printf "%s -> %s\n" a b)
      r.Sdb_modecheck.r_edges;
  List.iter
    (fun f -> print_endline (Sdb_modecheck.render f))
    r.Sdb_modecheck.r_findings;
  if r.r_findings = [] then begin
    Printf.printf
      "sdb_modecheck: clean (%d functions over %d units, %d lock-order \
       edge%s)\n"
      r.r_functions r.r_units
      (List.length r.r_edges)
      (if List.length r.r_edges = 1 then "" else "s");
    exit 0
  end
  else begin
    Printf.eprintf "sdb_modecheck: %d finding%s\n"
      (List.length r.r_findings)
      (if List.length r.r_findings = 1 then "" else "s");
    exit 1
  end

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--help" args || List.mem "-h" args then usage ();
  if args = [ "--rules" ] then begin
    List.iter
      (fun (id, desc) -> Printf.printf "%-20s %s\n" id desc)
      Sdb_modecheck.rules;
    exit 0
  end;
  if args = [ "--self-test" ] then begin
    match Sdb_modecheck.self_test () with
    | Ok () ->
        print_endline "sdb_modecheck self-test: ok";
        exit 0
    | Error msg ->
        Printf.eprintf "sdb_modecheck self-test FAILED: %s\n" msg;
        exit 1
  end;
  let flags, rest =
    List.partition (fun a -> String.length a > 0 && a.[0] = '-') args
  in
  let lockdep = List.mem "--lockdep" flags in
  let summaries = List.mem "--summaries" flags in
  let no_xcheck = List.mem "--no-xcheck" flags in
  let file_mode = List.mem "--file" flags in
  let unknown =
    List.filter
      (fun f ->
        not
          (List.mem f
             [ "--lockdep"; "--summaries"; "--no-xcheck"; "--file" ]))
      flags
  in
  if unknown <> [] then usage ();
  if file_mode then begin
    if rest = [] then usage ();
    check ~xcheck:false ~lockdep ~summaries rest
  end
  else begin
    let roots =
      if rest <> [] then rest
      else
        match default_root () with
        | Some r -> [ r ]
        | None ->
            prerr_endline
              "sdb_modecheck: no dune-project root found above the cwd; \
               pass a directory of .cmt files";
            exit 2
    in
    let missing = List.filter (fun d -> not (Sys.file_exists d)) roots in
    if missing <> [] then begin
      List.iter
        (Printf.eprintf
           "sdb_modecheck: no such directory: %s (run `dune build` first?)\n")
        missing;
      exit 2
    end;
    let files = Sdb_modecheck.walk_cmts roots in
    if files = [] then begin
      Printf.eprintf
        "sdb_modecheck: no .cmt files under %s (run `dune build` first)\n"
        (String.concat " " roots);
      exit 2
    end;
    check ~xcheck:(not no_xcheck) ~lockdep ~summaries files
  end
