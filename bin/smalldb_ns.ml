(* The name server as a daemon plus client commands, in the shape the
   paper describes: a server process owning the database directory,
   clients reaching it through RPC (here a Unix-domain socket).

   dune exec bin/smalldb_ns.exe -- serve --dir /tmp/ns --socket /tmp/ns.sock
   dune exec bin/smalldb_ns.exe -- set --socket /tmp/ns.sock /hosts/a 10.0.0.1
   dune exec bin/smalldb_ns.exe -- lookup --socket /tmp/ns.sock /hosts/a *)

module Ns = Sdb_nameserver.Nameserver
module Path = Sdb_nameserver.Name_path
module Data = Sdb_nameserver.Ns_data
module Rpc = Sdb_rpc.Rpc
module Proto = Sdb_rpc.Ns_protocol
open Cmdliner

let parse_path s =
  match Path.of_string s with
  | Ok p -> p
  | Error e ->
    prerr_endline ("invalid name: " ^ e);
    exit 2

(* ------------------------------------------------------------------ *)
(* serve                                                                *)

let serve dir socket checkpoint_bytes retain read_path metrics_interval
    scrub_interval trace_ring trace_slow_ms =
  let fs = Sdb_storage.Real_fs.create ~root:dir in
  (* Arm the slow-span ring before opening the database so recovery
     spans land in it too.  The ring is what the `traces` RPC verb and
     sdb_top read. *)
  if trace_ring > 0 then
    Sdb_obs.Trace.set_sink
      (Some
         (Sdb_obs.Trace.Slow.install ~capacity:trace_ring
            ~threshold_s:(trace_slow_ms /. 1000.0)));
  let config =
    {
      Smalldb.default_config with
      retain_previous = retain;
      read_path;
      policy =
        (match checkpoint_bytes with
        | Some n -> Smalldb.Log_bytes_exceeds n
        | None -> Smalldb.Manual);
    }
  in
  match Ns.open_ ~config fs with
  | Error e ->
    prerr_endline ("cannot open database: " ^ e);
    exit 1
  | Ok ns ->
    let s = Ns.stats ns in
    Printf.printf "serving %s on %s (generation %d, lsn %d, replayed %d)\n%!" dir
      socket s.Smalldb.generation s.Smalldb.lsn s.Smalldb.recovery.Smalldb.replayed;
    (match scrub_interval with
    | Some secs when secs > 0.0 -> Ns.start_scrubber ~interval:secs ns
    | _ -> ());
    let listener = Rpc.Socket.listen ~path:socket (Proto.serve ns) in
    let stop = ref false in
    let handler _ = stop := true in
    ignore (Sys.signal Sys.sigint (Sys.Signal_handle handler));
    ignore (Sys.signal Sys.sigterm (Sys.Signal_handle handler));
    (* Periodic metrics dump to stderr, where it cannot mix with client
       output on stdout. *)
    (match metrics_interval with
    | Some secs when secs > 0.0 ->
      ignore
        (Thread.create
           (fun () ->
             while not !stop do
               Unix.sleepf secs;
               if not !stop then
                 Printf.eprintf "%s%!" (Sdb_obs.Metrics.render ())
             done)
           ())
    | _ -> ());
    while not !stop do
      Unix.sleepf 0.2
    done;
    print_endline "shutting down";
    Rpc.Socket.shutdown listener;
    Ns.close ns

(* ------------------------------------------------------------------ *)
(* client commands                                                      *)

(* [conn] is (socket path, per-call deadline).  Client commands are one
   request against a possibly wedged server: without a deadline they
   would hang forever, so default to a few seconds and let --timeout 0
   opt out. *)
let with_client (socket, timeout) f =
  let deadline_s =
    match timeout with Some s when s > 0.0 -> Some s | _ -> None
  in
  match Rpc.Socket.connect ~path:socket with
  | exception Rpc.Rpc_error e ->
    prerr_endline e;
    exit 1
  | transport ->
    let client = Proto.Client.create ?deadline_s transport in
    Fun.protect ~finally:(fun () -> Proto.Client.close client) (fun () ->
        try f client
        with Rpc.Rpc_error e ->
          prerr_endline ("rpc: " ^ e);
          exit 1)

let lookup socket name =
  with_client socket (fun c ->
      match Proto.Client.lookup c (parse_path name) with
      | Some v -> print_endline v
      | None ->
        prerr_endline "(unbound)";
        exit 3)

let set socket name value =
  with_client socket (fun c ->
      Proto.Client.set_value c (parse_path name) (Some value))

let unset socket name =
  with_client socket (fun c -> Proto.Client.set_value c (parse_path name) None)

let ls socket name =
  with_client socket (fun c ->
      match Proto.Client.list_children c (parse_path name) with
      | Some children -> List.iter print_endline children
      | None ->
        prerr_endline "(no such name)";
        exit 3)

let rm socket name =
  with_client socket (fun c -> Proto.Client.delete_subtree c (parse_path name))

let mkdir socket name =
  with_client socket (fun c -> Proto.Client.create_name c (parse_path name))

let find socket pattern =
  with_client socket (fun c ->
      match Proto.Client.find c pattern with
      | Ok results ->
        List.iter
          (fun (path, value) ->
            match value with
            | Some v -> Printf.printf "%s\t%s\n" (Path.to_string path) v
            | None -> print_endline (Path.to_string path))
          results
      | Error e ->
        prerr_endline ("bad pattern: " ^ e);
        exit 2)

let export socket name depth =
  with_client socket (fun c ->
      match Proto.Client.export ?depth c (parse_path name) with
      | Some tree -> Format.printf "%a@." Data.pp_tree tree
      | None ->
        prerr_endline "(no such name)";
        exit 3)

let cas socket name expected value =
  with_client socket (fun c ->
      match
        Proto.Client.compare_and_set c (parse_path name) ~expected (Some value)
      with
      | Ok () -> ()
      | Error e ->
        prerr_endline ("refused: " ^ e);
        exit 4)

let checkpoint socket =
  with_client socket (fun c -> Proto.Client.checkpoint c)

let status socket =
  with_client socket (fun c ->
      Printf.printf "lsn:    %d\n" (Proto.Client.lsn c);
      Printf.printf "nodes:  %d\n" (Proto.Client.count_nodes c);
      Printf.printf "digest: %s\n" (Digest.to_hex (Proto.Client.digest c)))

let metrics socket =
  with_client socket (fun c -> print_string (Proto.Client.metrics c))

let traces socket max_n min_ms =
  with_client socket (fun c ->
      match Proto.Client.traces c ~max_n ~min_dur_s:(min_ms /. 1000.0) with
      | [] -> print_endline "(no slow spans retained)"
      | spans ->
        List.iter
          (fun (s : Sdb_obs.Trace.span) ->
            let attrs =
              String.concat ""
                (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) s.attrs)
            in
            Printf.printf "%.6f %-14s %9.3fms%s\n" s.start_s s.name
              (s.dur_s *. 1000.0) attrs)
          spans)

let print_scrub_report (r : Smalldb.scrub_report) =
  Printf.printf "scanned: %s\n" (String.concat " " r.Smalldb.scanned_files);
  Printf.printf "replay:  %s\n"
    (if r.Smalldb.replay_consistent then "consistent with memory"
     else "INCONSISTENT");
  List.iter
    (fun (f : Smalldb.scrub_finding) ->
      if f.Smalldb.offset >= 0 then
        Printf.printf "damage:  %s @%d: %s\n" f.Smalldb.file f.Smalldb.offset
          f.Smalldb.reason
      else Printf.printf "damage:  %s: %s\n" f.Smalldb.file f.Smalldb.reason)
    r.Smalldb.findings;
  if r.Smalldb.repaired then
    print_endline "repaired: fresh checkpoint written from memory";
  Printf.printf "%d finding(s) in %.3fs\n"
    (List.length r.Smalldb.findings)
    r.Smalldb.scrub_duration_s

(* Exit codes mirror sdb_inspect --scrub: 0 clean, 1 damage found,
   2 unreadable/failed. *)
let scrub socket repair =
  with_client socket (fun c ->
      match Proto.Client.scrub c ~repair with
      | r ->
        print_scrub_report r;
        if r.Smalldb.findings <> [] then exit 1
      | exception Rpc.Rpc_error e ->
        prerr_endline ("scrub failed: " ^ e);
        exit 2)

let health socket =
  with_client socket (fun c ->
      match Proto.Client.health c with
      | `Healthy -> print_endline "healthy"
      | `Degraded reason ->
        Printf.printf "degraded (read-only): %s\n" reason;
        exit 1
      | `Poisoned ->
        print_endline "poisoned";
        exit 2)

(* ------------------------------------------------------------------ *)
(* command line                                                         *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket"; "s" ] ~docv:"PATH" ~doc:"Unix-domain socket of the server.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) (Some 5.0)
    & info [ "timeout"; "t" ] ~docv:"SECS"
        ~doc:"Per-call RPC deadline in seconds; 0 waits forever.")

(* socket + deadline, the connection spec every client command takes. *)
let conn_arg = Term.(const (fun s t -> (s, t)) $ socket_arg $ timeout_arg)

let name_arg index =
  Arg.(
    required & pos index (some string) None & info [] ~docv:"NAME" ~doc:"Name (path).")

let serve_cmd =
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir"; "d" ] ~docv:"DIR" ~doc:"Database directory.")
  in
  let ckpt =
    Arg.(
      value
      & opt (some int) (Some (4 * 1024 * 1024))
      & info [ "checkpoint-bytes" ] ~docv:"BYTES"
          ~doc:"Checkpoint when the log exceeds this size (omit for manual only).")
  in
  let retain =
    Arg.(
      value & flag
      & info [ "retain-previous" ]
          ~doc:"Keep the previous checkpoint generation for hard-error recovery.")
  in
  let read_path =
    let route = Arg.enum [ ("locked", `Locked); ("epoch", `Epoch) ] in
    Arg.(
      value & opt route `Locked
      & info [ "read-path" ] ~docv:"ROUTE"
          ~doc:
            "Query route: $(b,locked) (the paper's Shared lock) or \
             $(b,epoch) (lock-free epoch-published snapshots — queries \
             never block updates and scale across cores).")
  in
  let metrics_interval =
    Arg.(
      value
      & opt (some float) None
      & info [ "metrics-interval" ] ~docv:"SECS"
          ~doc:"Dump the metrics registry to stderr every SECS seconds.")
  in
  let scrub_interval =
    Arg.(
      value
      & opt (some float) None
      & info [ "scrub-interval" ] ~docv:"SECS"
          ~doc:
            "Run a background integrity scrub (with automatic repair) every \
             SECS seconds.")
  in
  let trace_ring =
    Arg.(
      value & opt int 512
      & info [ "trace-ring" ] ~docv:"N"
          ~doc:
            "Keep the last N slow trace spans in memory, queryable with the \
             traces command (0 disables tracing).")
  in
  let trace_slow_ms =
    Arg.(
      value & opt float 1.0
      & info [ "trace-slow-ms" ] ~docv:"MS"
          ~doc:"Retain only spans at least MS milliseconds long.")
  in
  Cmd.v (Cmd.info "serve" ~doc:"Run the name server.")
    Term.(
      const serve $ dir $ socket_arg $ ckpt $ retain $ read_path
      $ metrics_interval $ scrub_interval $ trace_ring $ trace_slow_ms)

let client_cmd name doc term = Cmd.v (Cmd.info name ~doc) term

let value_arg index =
  Arg.(required & pos index (some string) None & info [] ~docv:"VALUE" ~doc:"Value.")

let expected_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "expected" ] ~docv:"VALUE"
        ~doc:"Expected current value (omitted = expected unbound).")

let depth_arg =
  Arg.(value & opt (some int) None & info [ "depth" ] ~docv:"N" ~doc:"Depth limit.")

let cmds =
  [
    serve_cmd;
    client_cmd "lookup" "Print the value bound at NAME."
      Term.(const lookup $ conn_arg $ name_arg 0);
    client_cmd "set" "Bind VALUE at NAME (creating intermediate names)."
      Term.(const set $ conn_arg $ name_arg 0 $ value_arg 1);
    client_cmd "unset" "Remove the value at NAME, keeping the node."
      Term.(const unset $ conn_arg $ name_arg 0);
    client_cmd "ls" "List the children of NAME."
      Term.(const ls $ conn_arg $ name_arg 0);
    client_cmd "rm" "Delete the subtree at NAME."
      Term.(const rm $ conn_arg $ name_arg 0);
    client_cmd "mkdir" "Create NAME (valueless) and its intermediates."
      Term.(const mkdir $ conn_arg $ name_arg 0);
    client_cmd "export" "Print the subtree at NAME."
      Term.(const export $ conn_arg $ name_arg 0 $ depth_arg);
    client_cmd "find" "List names matching a glob PATTERN (e.g. '/hosts/*/addr')."
      Term.(
        const find $ conn_arg
        $ Arg.(
            required
            & pos 0 (some string) None
            & info [] ~docv:"PATTERN" ~doc:"Glob pattern."));
    client_cmd "cas" "Compare-and-set the value at NAME."
      Term.(const cas $ conn_arg $ name_arg 0 $ expected_arg $ value_arg 1);
    client_cmd "checkpoint" "Ask the server to write a checkpoint."
      Term.(const checkpoint $ conn_arg);
    client_cmd "status" "Print server LSN, node count and digest."
      Term.(const status $ conn_arg);
    client_cmd "metrics" "Print the server's metrics registry (Prometheus text)."
      Term.(const metrics $ conn_arg);
    client_cmd "traces"
      "Print the server's recent slow trace spans (newest first)."
      Term.(
        const traces $ conn_arg
        $ Arg.(
            value & opt int 32
            & info [ "max" ] ~docv:"N" ~doc:"At most N spans.")
        $ Arg.(
            value & opt float 0.0
            & info [ "min-ms" ] ~docv:"MS"
                ~doc:"Only spans at least MS milliseconds long."));
    Cmd.v
      (Cmd.info "scrub"
         ~doc:
           "Run an online integrity scrub on the server: re-read checkpoint \
            and log, verify framing CRCs, and cross-check a shadow replay \
            against the live state."
         ~man:
           [
             `S Manpage.s_description;
             `P
               "Verifies the server's on-disk state end to end while it keeps \
                serving enquiries: a page-wise media scan of the current (and \
                retained previous) checkpoint and log, a CRC check of every \
                log frame, and a shadow replay of checkpoint + log \
                cross-checked against a canonical digest of the in-memory \
                state.";
             `P
               "With $(b,--repair), detected damage is repaired in place by \
                writing a fresh checkpoint from the known-good in-memory \
                state; the damaged files are removed.";
             `S Manpage.s_exit_status;
             `P "$(b,0) on a clean scrub.";
             `P "$(b,1) when damage was found (whether or not repaired).";
             `P "$(b,2) when the scrub could not run (store unreadable, \
                 server poisoned, or RPC failure).";
           ])
      Term.(
        const scrub $ conn_arg
        $ Arg.(
            value & flag
            & info [ "repair" ]
                ~doc:
                  "Self-repair on detected damage: write a fresh checkpoint \
                   from the known-good in-memory state."));
    Cmd.v
      (Cmd.info "health"
         ~doc:"Print the server's health (healthy / degraded / poisoned)."
         ~man:
           [
             `S Manpage.s_exit_status;
             `P "$(b,0) healthy.";
             `P
               "$(b,1) degraded: disk full, read-only — enquiries still \
                served; updates resume automatically once a checkpoint \
                reclaims log space.";
             `P "$(b,2) poisoned: restart (re-open) required.";
           ])
      Term.(const health $ conn_arg);
  ]

let () =
  let info =
    Cmd.info "smalldb_ns" ~version:"1.0.0"
      ~doc:"A replicated name server on the small-database engine."
  in
  exit (Cmd.eval (Cmd.group info cmds))
