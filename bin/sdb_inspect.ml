(* Forensics for a small-database directory: show the generation files,
   which version is current, the checkpoint header, and a frame-by-frame
   scan of the log including where (and why) replay would stop.

   dune exec bin/sdb_inspect.exe -- /tmp/ns *)

module Fs = Sdb_storage.Fs
module Store = Sdb_checkpoint.Checkpoint_store
module Crc32 = Sdb_util.Crc32

let wal_magic = "SDBWAL1\n"
let pickle_magic = "SDBP1"

let human n = Sdb_util.Tablefmt.fmt_bytes n

let read_opt fs file =
  if fs.Fs.exists file then
    match Fs.read_file fs file with
    | s -> Some (Ok s)
    | exception Fs.Read_error { reason; _ } -> Some (Error reason)
  else None

let show_version fs name =
  match read_opt fs name with
  | None -> Printf.printf "  %-12s absent\n" name
  | Some (Ok contents) -> Printf.printf "  %-12s %S\n" name (String.trim contents)
  | Some (Error reason) -> Printf.printf "  %-12s unreadable (%s)\n" name reason

let show_checkpoint fs name =
  match read_opt fs name with
  | None -> Printf.printf "  %s: absent\n" name
  | Some (Error reason) -> Printf.printf "  %s: UNREADABLE (%s)\n" name reason
  | Some (Ok blob) ->
    let n = String.length blob in
    if n >= String.length pickle_magic + 16
       && String.sub blob 0 (String.length pickle_magic) = pickle_magic
    then
      Printf.printf "  %s: %s, pickle fingerprint %s\n" name (human n)
        (Digest.to_hex (String.sub blob (String.length pickle_magic) 16))
    else Printf.printf "  %s: %s, NOT a pickled checkpoint\n" name (human n)

(* Walk log frames by hand so damage is reported rather than hidden. *)
let show_log fs name =
  match fs.Fs.exists name with
  | false -> Printf.printf "  %s: absent\n" name
  | true ->
    let size = fs.Fs.file_size name in
    let header_size = String.length wal_magic + 16 in
    if size < header_size then
      Printf.printf "  %s: %s, shorter than a log header\n" name (human size)
    else begin
      let r = fs.Fs.open_reader name in
      let read_exact n =
        let buf = Bytes.create n in
        let rec go got =
          if got = n then Ok buf
          else
            match r.Fs.r_read buf got (n - got) with
            | 0 -> Error "truncated"
            | k -> go (got + k)
            | exception Fs.Read_error { reason; _ } -> Error reason
        in
        go 0
      in
      (match read_exact header_size with
      | Error reason -> Printf.printf "  %s: header unreadable (%s)\n" name reason
      | Ok hdr ->
        if Bytes.sub_string hdr 0 (String.length wal_magic) <> wal_magic then
          Printf.printf "  %s: bad magic\n" name
        else begin
          Printf.printf "  %s: %s, update fingerprint %s\n" name (human size)
            (Digest.to_hex (Bytes.sub_string hdr (String.length wal_magic) 16));
          let rec frames idx offset =
            if offset >= size then Printf.printf "    %d entries, clean end\n" idx
            else
              match read_exact 8 with
              | Error reason ->
                Printf.printf "    %d entries, then unreadable frame header (%s)\n" idx
                  reason
              | Ok fh ->
                let len = Int32.to_int (Bytes.get_int32_le fh 0) in
                let crc = Bytes.get_int32_le fh 4 in
                if len < 0 || offset + 8 + len > size then
                  Printf.printf "    %d entries, then truncated entry (claims %d bytes)\n"
                    idx len
                else begin
                  match read_exact len with
                  | Error reason ->
                    Printf.printf "    entry %d at %d: %d bytes, DAMAGED (%s)\n" idx
                      offset len reason
                  | Ok payload ->
                    let ok =
                      Crc32.equal (Crc32.digest_bytes payload ~pos:0 ~len) crc
                    in
                    Printf.printf "    entry %d at %d: %d bytes, crc %s\n" idx offset len
                      (if ok then "ok" else "MISMATCH");
                    frames (idx + 1) (offset + 8 + len)
                end
          in
          frames 0 header_size
        end);
      r.Fs.r_close ()
    end

let inspect dir =
  let fs = Sdb_storage.Real_fs.create ~root:dir in
  Printf.printf "store: %s\n" dir;
  print_endline "version files:";
  show_version fs Store.version_file;
  show_version fs Store.newversion_file;
  print_endline "files:";
  List.iter
    (fun (name, size) -> Printf.printf "  %-20s %10s\n" name (human size))
    (Store.disk_files fs);
  (match Store.recover fs ~retain_previous:true with
  | Ok None -> print_endline "state: fresh (no committed generation)"
  | Ok (Some r) ->
    Printf.printf "current generation: %d%s\n" r.Store.current.Store.version
      (match r.Store.previous with
      | Some p -> Printf.sprintf " (previous %d retained)" p.Store.version
      | None -> "");
    if r.Store.completed_switch then
      print_endline "note: completed a half-finished checkpoint switch";
    if r.Store.removed_files <> [] then
      Printf.printf "cleaned up: %s\n" (String.concat ", " r.Store.removed_files);
    print_endline "checkpoint:";
    show_checkpoint fs r.Store.current.Store.checkpoint_file;
    print_endline "log:";
    show_log fs r.Store.current.Store.log_file
  | Error e -> Printf.printf "state: CORRUPT (%s)\n" e)

(* --metrics: scan the current generation's log through the real
   Wal.Reader (populating the sdb_wal_* counters as a side effect) and
   dump the whole registry in Prometheus text format. *)

let read_log_fingerprint fs name =
  let header_size = String.length wal_magic + 16 in
  if not (fs.Fs.exists name) || fs.Fs.file_size name < header_size then None
  else begin
    let r = fs.Fs.open_reader name in
    Fun.protect
      ~finally:(fun () -> r.Fs.r_close ())
      (fun () ->
        let buf = Bytes.create header_size in
        let rec go got =
          if got = header_size then
            if Bytes.sub_string buf 0 (String.length wal_magic) = wal_magic then
              Some (Bytes.sub_string buf (String.length wal_magic) 16)
            else None
          else
            match r.Fs.r_read buf got (header_size - got) with
            | 0 -> None
            | k -> go (got + k)
            | exception Fs.Read_error _ -> None
        in
        go 0)
  end

let metrics_mode dir =
  let fs = Sdb_storage.Real_fs.create ~root:dir in
  (match Store.recover fs ~retain_previous:true with
  | Ok (Some r) -> (
    let log = r.Store.current.Store.log_file in
    match read_log_fingerprint fs log with
    | Some fingerprint ->
      (* Per-frame scan latency lands in a histogram so the summary
         table below has offline content: what a recovery replay of
         this store would pay per entry. *)
      let m_scan =
        Sdb_obs.Metrics.histogram "sdb_inspect_scan_seconds"
          ~help:"Per-entry WAL scan latency of the offline metrics pass."
      in
      let last = ref (Unix.gettimeofday ()) in
      ignore
        (Sdb_wal.Wal.Reader.fold fs log ~fingerprint
           ~policy:Sdb_wal.Wal.Reader.Stop_at_damage ~init:()
           ~f:(fun () _ ->
             let now = Unix.gettimeofday () in
             Sdb_obs.Metrics.observe m_scan (now -. !last);
             last := now))
    | None -> ())
  | Ok None | Error _ -> ());
  print_string (Sdb_obs.Metrics.render ());
  (* The same histograms as a human-readable percentile table — the
     text exposition above is for scrapers, this is for eyes. *)
  let summaries =
    List.filter (fun (_, _, s) -> s.Sdb_util.Histogram.s_count > 0)
      (Sdb_obs.Metrics.summaries ())
  in
  if summaries <> [] then begin
    print_newline ();
    print_endline "latency summaries (ms):";
    let fmt v = Printf.sprintf "%.3f" (v *. 1000.0) in
    let rows =
      List.map
        (fun (name, labels, s) ->
          let open Sdb_util.Histogram in
          let series =
            match labels with
            | [] -> name
            | ls ->
              Printf.sprintf "%s{%s}" name
                (String.concat ","
                   (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) ls))
          in
          [
            series; string_of_int s.s_count; fmt s.s_p50; fmt s.s_p90;
            fmt s.s_p99; fmt s.s_p999; fmt s.s_max;
          ])
        summaries
    in
    print_string
      (Sdb_util.Tablefmt.render
         ~header:[ "series"; "count"; "p50"; "p90"; "p99"; "p999"; "max" ]
         rows)
  end

(* --scrub: offline integrity scan.  Media-scan every retained
   generation file page by page (reporting unreadable ranges by file
   and offset), then verify every log frame's CRC.  No engine, no
   locks: safe to run on a store no process has open.

   Exit status: 0 scan complete and clean, 1 damage found, 2 store
   unreadable (no complete generation to scan). *)

let scan_page = 4096

(* One finding per unreadable page; resume at the next page so a single
   bad region does not mask damage further into the file. *)
let media_scan fs name findings =
  if not (fs.Fs.exists name) then findings
  else begin
    let size = fs.Fs.file_size name in
    let r = fs.Fs.open_reader name in
    Fun.protect
      ~finally:(fun () -> r.Fs.r_close ())
      (fun () ->
        let buf = Bytes.create scan_page in
        let rec go offset findings =
          if offset >= size then findings
          else begin
            let want = min scan_page (size - offset) in
            r.Fs.r_seek offset;
            let rec read got =
              if got >= want then Ok ()
              else
                match r.Fs.r_read buf got (want - got) with
                | 0 -> Error "unexpected end of file"
                | k -> read (got + k)
                | exception Fs.Read_error { reason; _ } -> Error reason
            in
            match read 0 with
            | Ok () -> go (offset + want) findings
            | Error reason ->
              go (offset + scan_page) ((name, offset, reason) :: findings)
          end
        in
        go 0 findings)
  end

(* Frame-walk a log, collecting CRC and framing damage as findings
   rather than printing as we go. *)
let log_scan fs name findings =
  if not (fs.Fs.exists name) then findings
  else begin
    let size = fs.Fs.file_size name in
    let header_size = String.length wal_magic + 16 in
    if size < header_size then (name, 0, "shorter than a log header") :: findings
    else begin
      let r = fs.Fs.open_reader name in
      Fun.protect
        ~finally:(fun () -> r.Fs.r_close ())
        (fun () ->
          let read_exact n =
            let buf = Bytes.create n in
            let rec go got =
              if got = n then Ok buf
              else
                match r.Fs.r_read buf got (n - got) with
                | 0 -> Error "truncated"
                | k -> go (got + k)
                | exception Fs.Read_error { reason; _ } -> Error reason
            in
            go 0
          in
          match read_exact header_size with
          | Error reason -> (name, 0, "header unreadable: " ^ reason) :: findings
          | Ok hdr ->
            if Bytes.sub_string hdr 0 (String.length wal_magic) <> wal_magic then
              (name, 0, "bad magic") :: findings
            else begin
              (* Skip damaged frames (resuming just past them) so every
                 bad entry is reported, not only the first. *)
              let rec frames offset findings =
                if offset >= size then findings
                else
                  match read_exact 8 with
                  | Error reason ->
                    (name, offset, "unreadable frame header: " ^ reason)
                    :: findings
                  | Ok fh ->
                    let len = Int32.to_int (Bytes.get_int32_le fh 0) in
                    let crc = Bytes.get_int32_le fh 4 in
                    if len < 0 || offset + 8 + len > size then
                      (name, offset,
                       Printf.sprintf "truncated entry (claims %d bytes)" len)
                      :: findings
                    else begin
                      let after = offset + 8 + len in
                      match read_exact len with
                      | Error reason ->
                        r.Fs.r_seek after;
                        frames after
                          ((name, offset, "unreadable entry: " ^ reason)
                          :: findings)
                      | Ok payload ->
                        let findings =
                          if Crc32.equal (Crc32.digest_bytes payload ~pos:0 ~len) crc
                          then findings
                          else (name, offset, "entry crc mismatch") :: findings
                        in
                        frames after findings
                    end
              in
              frames header_size findings
            end)
    end
  end

let scrub_mode dir =
  let fs = Sdb_storage.Real_fs.create ~root:dir in
  match Store.recover fs ~retain_previous:true with
  | Error e ->
    Printf.printf "store %s: UNREADABLE (%s)\n" dir e;
    exit 2
  | Ok None ->
    Printf.printf "store %s: fresh (nothing to scrub)\n" dir;
    exit 0
  | Ok (Some r) ->
    let gens = r.Store.current :: Option.to_list r.Store.previous in
    let scanned =
      List.concat_map
        (fun g -> [ g.Store.checkpoint_file; g.Store.log_file ])
        gens
      |> List.filter fs.Fs.exists
    in
    let findings =
      List.fold_left
        (fun acc g ->
          let acc = media_scan fs g.Store.checkpoint_file acc in
          let acc = media_scan fs g.Store.log_file acc in
          log_scan fs g.Store.log_file acc)
        [] gens
      |> List.rev
    in
    Printf.printf "store %s: scanned %s\n" dir (String.concat ", " scanned);
    if findings = [] then begin
      print_endline "scrub: clean";
      exit 0
    end
    else begin
      Printf.printf "scrub: %d finding(s)\n" (List.length findings);
      List.iter
        (fun (file, offset, reason) ->
          Printf.printf "  %s @%d: %s\n" file offset reason)
        findings;
      exit 1
    end

let () =
  let run ~mode dir =
    if Sys.file_exists dir && Sys.is_directory dir then
      match mode with
      | `Metrics -> metrics_mode dir
      | `Scrub -> scrub_mode dir
      | `Inspect -> inspect dir
    else begin
      Printf.eprintf "no such directory: %s\n" dir;
      exit 2
    end
  in
  match Sys.argv with
  | [| _; "--metrics"; dir |] | [| _; dir; "--metrics" |] -> run ~mode:`Metrics dir
  | [| _; "--scrub"; dir |] | [| _; dir; "--scrub" |] -> run ~mode:`Scrub dir
  | [| _; dir |] -> run ~mode:`Inspect dir
  | _ ->
    prerr_endline "usage: sdb_inspect [--metrics | --scrub] DIR";
    prerr_endline "";
    prerr_endline "  (no flag)  show generation files, checkpoint header, log frames";
    prerr_endline "  --metrics  scan the log and dump the metrics registry";
    prerr_endline "  --scrub    offline integrity scan of every retained generation;";
    prerr_endline "             exit 0 clean, 1 damage found, 2 store unreadable";
    exit 2
