(* The repo lint CLI: the CI gate over lib/ and bin/.

   Usage:
     sdb_lint [DIR ...]        lint the given roots (default: lib bin)
     sdb_lint --self-test      verify the rules fire on seeded violations
     sdb_lint --rules          list the rules
     sdb_lint --file FILE ...  lint specific files

   Exit status: 0 = clean, 1 = findings, 2 = usage or internal error.
   Findings print one per line as file:line:col: [rule] message. *)

let usage () =
  prerr_endline
    "usage: sdb_lint [--self-test | --rules | --file FILE ... | DIR ...]";
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "--help" ] | [ "-h" ] -> usage ()
  | [ "--rules" ] ->
      List.iter
        (fun (id, desc) -> Printf.printf "%-14s %s\n" id desc)
        Sdb_lint.rules
  | [ "--self-test" ] -> (
      match Sdb_lint.self_test () with
      | Ok () ->
          print_endline "sdb_lint self-test: ok";
          exit 0
      | Error msg ->
          Printf.eprintf "sdb_lint self-test FAILED: %s\n" msg;
          exit 1)
  | "--file" :: files when files <> [] ->
      let findings = List.concat_map Sdb_lint.lint_file files in
      List.iter (fun f -> print_endline (Sdb_lint.render f)) findings;
      if findings = [] then exit 0 else exit 1
  | _ ->
      if List.exists (fun a -> String.length a > 0 && a.[0] = '-') args then
        usage ();
      let roots = if args = [] then [ "lib"; "bin" ] else args in
      let missing = List.filter (fun d -> not (Sys.file_exists d)) roots in
      if missing <> [] then (
        List.iter (Printf.eprintf "sdb_lint: no such directory: %s\n") missing;
        exit 2);
      let findings = Sdb_lint.lint_dirs roots in
      List.iter (fun f -> print_endline (Sdb_lint.render f)) findings;
      if findings = [] then (
        Printf.printf "sdb_lint: clean (%d rule%s over %s)\n"
          (List.length Sdb_lint.rules)
          (if List.length Sdb_lint.rules = 1 then "" else "s")
          (String.concat " " roots);
        exit 0)
      else (
        Printf.eprintf "sdb_lint: %d finding%s\n" (List.length findings)
          (if List.length findings = 1 then "" else "s");
        exit 1)
