(* Open-loop workload generation.

   The defining property: the arrival schedule is fixed *before* the
   system's behaviour is seen.  Each client thread computes intended
   arrival times from the configured rate (Poisson or fixed spacing),
   sleeps until each intended instant, issues the operation — and if
   the system has fallen behind, issues it anyway, immediately.  A
   closed-loop driver would wait for the previous response first,
   silently stretching the schedule whenever the server stalls; that
   is coordinated omission, and it hides exactly the tail this
   harness exists to measure.  Latency is therefore measured from the
   *intended* arrival time to completion, so time an operation spends
   queued behind a stall counts against the system, not the client.

   The generator is deliberately ignorant of what it drives: [exec]
   is any closure (an RPC stub, an in-process engine, a fake for
   tests), so the same schedule/mix machinery serves benchmarks and
   unit tests alike. *)

module Rng = Sdb_util.Rng
module Histogram = Sdb_util.Histogram

type op =
  | Read of int
  | Write of int * string

type schedule =
  | Poisson
  | Fixed_spacing

type value_size =
  | Fixed of int
  | Between of int * int

type config = {
  rate : float;
  duration_s : float;
  threads : int;
  keys : int;
  theta : float;
  read_fraction : float;
  value_size : value_size;
  schedule : schedule;
  seed : int;
}

let default =
  {
    rate = 1000.0;
    duration_s = 1.0;
    threads = 4;
    keys = 1000;
    theta = 0.9;
    read_fraction = 0.5;
    value_size = Fixed 64;
    schedule = Poisson;
    seed = 1;
  }

(* The paper's observed traffic shape: "the rate of updates is very
   low" — enquiries dominate.  This is the mix that exercises a read
   path (lock-free or Shared-lock) rather than the commit pipeline. *)
let read_mostly = { default with read_fraction = 0.99 }

let validate cfg =
  if cfg.rate <= 0.0 then invalid_arg "Loadgen: rate must be positive";
  if cfg.duration_s <= 0.0 then invalid_arg "Loadgen: duration_s must be positive";
  if cfg.threads <= 0 then invalid_arg "Loadgen: threads must be positive";
  if cfg.keys <= 0 then invalid_arg "Loadgen: keys must be positive";
  if cfg.read_fraction < 0.0 || cfg.read_fraction > 1.0 then
    invalid_arg "Loadgen: read_fraction must be in [0,1]";
  (match cfg.value_size with
  | Fixed n when n < 0 -> invalid_arg "Loadgen: negative value size"
  | Between (a, b) when a < 0 || b < a -> invalid_arg "Loadgen: bad value-size range"
  | Fixed _ | Between _ -> ())

(* One interarrival gap at [rate] per second.  Poisson arrivals have
   exponentially distributed gaps (the memoryless process real
   independent clients produce — bursts included); Fixed_spacing is
   the deterministic 1/rate metronome. *)
let interarrival schedule rng ~rate =
  match schedule with
  | Fixed_spacing -> 1.0 /. rate
  | Poisson ->
    let u = Rng.float rng 1.0 in
    -.log (1.0 -. u) /. rate

(* The whole intended schedule, as ascending offsets in
   [0, duration_s).  Pure given the generator, so tests can check the
   schedule itself. *)
let arrivals schedule rng ~rate ~duration_s =
  let rec go acc t =
    let t = t +. interarrival schedule rng ~rate in
    if t >= duration_s then List.rev acc else go (t :: acc) t
  in
  Array.of_list (go [] 0.0)

let gen_value cfg rng =
  let len =
    match cfg.value_size with
    | Fixed n -> n
    | Between (a, b) -> a + Rng.int rng (b - a + 1)
  in
  Rng.string rng ~len

let gen_op cfg rng =
  let key = Rng.zipf rng ~n:cfg.keys ~theta:cfg.theta in
  if Rng.float rng 1.0 < cfg.read_fraction then Read key
  else Write (key, gen_value cfg rng)

type result = {
  offered : int;
  completed : int;
  errors : int;
  elapsed_s : float;
  achieved_rate : float;
  latency : Histogram.t;
  max_lag_s : float;
}

(* Per-thread accumulator; merged after join so the hot loop never
   shares state across threads. *)
type worker = {
  w_hist : Histogram.t;
  mutable w_offered : int;
  mutable w_completed : int;
  mutable w_errors : int;
  mutable w_max_lag : float;
  mutable w_last_done : float;
}

let run ?(observe = fun ~latency_s:_ ~ok:_ -> ()) cfg ~exec =
  validate cfg;
  let per_thread_rate = cfg.rate /. float_of_int cfg.threads in
  (* A common start instant shortly in the future: every thread's
     schedule is anchored to it, so the offered rate is the sum of the
     per-thread rates from the first instant. *)
  let start = Unix.gettimeofday () +. 0.05 in
  let worker i =
    let w =
      {
        w_hist = Histogram.create ();
        w_offered = 0;
        w_completed = 0;
        w_errors = 0;
        w_max_lag = 0.0;
        w_last_done = start;
      }
    in
    let rng = Rng.create ~seed:(cfg.seed + (7919 * i)) in
    let schedule =
      arrivals cfg.schedule rng ~rate:per_thread_rate ~duration_s:cfg.duration_s
    in
    let body () =
      Array.iter
        (fun offset ->
          let intended = start +. offset in
          let op = gen_op cfg rng in
          let now = Unix.gettimeofday () in
          if now < intended then Unix.sleepf (intended -. now)
          else if now -. intended > w.w_max_lag then
            w.w_max_lag <- now -. intended;
          w.w_offered <- w.w_offered + 1;
          let ok = match exec ~thread:i op with () -> true | exception _ -> false in
          let finished = Unix.gettimeofday () in
          w.w_last_done <- finished;
          let latency_s = finished -. intended in
          Histogram.record w.w_hist latency_s;
          if ok then w.w_completed <- w.w_completed + 1
          else w.w_errors <- w.w_errors + 1;
          observe ~latency_s ~ok)
        schedule
    in
    (w, body)
  in
  let workers = List.init cfg.threads worker in
  let threads = List.map (fun (_, body) -> Thread.create body ()) workers in
  List.iter Thread.join threads;
  let latency = Histogram.create () in
  let offered = ref 0
  and completed = ref 0
  and errors = ref 0
  and max_lag = ref 0.0
  and last_done = ref start in
  List.iter
    (fun (w, _) ->
      Histogram.merge_into latency w.w_hist;
      offered := !offered + w.w_offered;
      completed := !completed + w.w_completed;
      errors := !errors + w.w_errors;
      if w.w_max_lag > !max_lag then max_lag := w.w_max_lag;
      if w.w_last_done > !last_done then last_done := w.w_last_done)
    workers;
  (* Elapsed runs to the last completion: a run that limps past its
     window (queueing) is charged the extra time in its achieved
     rate. *)
  let elapsed_s = Float.max (!last_done -. start) cfg.duration_s in
  {
    offered = !offered;
    completed = !completed;
    errors = !errors;
    elapsed_s;
    achieved_rate = float_of_int !completed /. elapsed_s;
    latency;
    max_lag_s = !max_lag;
  }

let sweep ?observe ?(on_result = fun _ _ -> ()) cfg ~rates ~exec =
  List.map
    (fun rate ->
      let r = run ?observe { cfg with rate } ~exec in
      on_result rate r;
      (rate, r))
    rates

(* The sustained-throughput knee: the highest offered rate the system
   kept up with (achieved ≥ tolerance·offered).  Above the knee the
   open-loop queue grows without bound and latency is off the chart. *)
let knee ?(tolerance = 0.95) results =
  List.fold_left
    (fun best (rate, r) ->
      if r.achieved_rate >= tolerance *. rate then
        match best with Some b when b >= rate -> best | _ -> Some rate
      else best)
    None results
