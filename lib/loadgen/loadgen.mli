(** Open-loop workload generation with coordinated-omission-free
    latency accounting.

    The arrival schedule is fixed before the system's behaviour is
    seen: each client thread computes intended arrival instants from
    the configured rate, sleeps until each instant, and issues the
    operation — immediately, even when the system has fallen behind.
    Latency is measured from the {e intended} arrival to completion,
    so time spent queued behind a server stall counts against the
    server.  (A closed-loop driver that waits for each response before
    sending the next silently stretches the schedule around stalls —
    coordinated omission — and understates the tail, sometimes by
    orders of magnitude.)

    The generator drives any [exec] closure (an RPC stub, an
    in-process engine, a test fake); key popularity is zipfian via
    {!Sdb_util.Rng.zipf}, the read/write mix and value sizes are
    configurable, and everything is deterministic per seed except the
    wall-clock sleeps themselves. *)

type op =
  | Read of int          (** key index in [\[0, keys)] *)
  | Write of int * string  (** key index, payload *)

type schedule =
  | Poisson        (** exponential interarrival gaps: what independent
                       real clients produce, bursts included *)
  | Fixed_spacing  (** a deterministic 1/rate metronome *)

type value_size =
  | Fixed of int
  | Between of int * int  (** uniform in [\[a, b\]] *)

type config = {
  rate : float;          (** offered ops/s, summed over all threads *)
  duration_s : float;    (** length of the intended schedule *)
  threads : int;         (** client threads, each with its own schedule
                             at [rate/threads] *)
  keys : int;            (** key-space size *)
  theta : float;         (** zipf skew in [\[0,1)]; 0 = uniform *)
  read_fraction : float; (** probability an op is a [Read] *)
  value_size : value_size;
  schedule : schedule;
  seed : int;
}

val default : config
(** 1000 ops/s for 1 s over 4 threads, 1000 keys at theta 0.9, 50/50
    mix, 64-byte values, Poisson arrivals, seed 1. *)

val read_mostly : config
(** {!default} with a 99/1 read/write mix — the enquiry-dominated
    traffic the paper reports for its name server, and the preset that
    drives a read path (epoch or Shared-lock) rather than the commit
    pipeline. *)

type result = {
  offered : int;         (** intended arrivals (all were issued) *)
  completed : int;
  errors : int;          (** [exec] raised; also recorded in latency *)
  elapsed_s : float;     (** start to last completion, at least
                             [duration_s] *)
  achieved_rate : float; (** [completed / elapsed_s] *)
  latency : Sdb_util.Histogram.t;  (** seconds from intended arrival *)
  max_lag_s : float;     (** worst observed backlog behind schedule *)
}

val run :
  ?observe:(latency_s:float -> ok:bool -> unit) ->
  config ->
  exec:(thread:int -> op -> unit) ->
  result
(** Execute one open-loop run: spawn [threads] client threads against
    [exec] (which signals failure by raising) and block until the
    schedule is drained.  [observe] is called after every operation
    from the issuing thread — the hook for feeding an {!Sdb_obs.Slo}
    tracker or metrics during the run.  Raises [Invalid_argument] on a
    non-positive rate/duration/threads/keys or an out-of-range
    mix/size. *)

val sweep :
  ?observe:(latency_s:float -> ok:bool -> unit) ->
  ?on_result:(float -> result -> unit) ->
  config ->
  rates:float list ->
  exec:(thread:int -> op -> unit) ->
  (float * result) list
(** {!run} once per rate (an arrival-rate ramp), in order, reporting
    each finished step through [on_result]. *)

val knee : ?tolerance:float -> (float * result) list -> float option
(** The sustained-throughput knee of a sweep: the highest offered rate
    whose achieved rate stayed within [tolerance] (default 0.95) of
    it, or [None] if the system kept up with nothing. *)

(** {1 Schedule and mix internals, exposed for tests} *)

val interarrival : schedule -> Sdb_util.Rng.t -> rate:float -> float
val arrivals :
  schedule -> Sdb_util.Rng.t -> rate:float -> duration_s:float -> float array
(** Ascending intended offsets in [\[0, duration_s)]. *)

val gen_op : config -> Sdb_util.Rng.t -> op
