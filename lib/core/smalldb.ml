module Pickle = Sdb_pickle.Pickle
module Fs = Sdb_storage.Fs
module Wal = Sdb_wal.Wal
module Vlock = Sdb_vlock.Vlock
module Epoch = Sdb_epoch.Epoch
module Store = Sdb_checkpoint.Checkpoint_store
module Metrics = Sdb_obs.Metrics
module Trace = Sdb_obs.Trace

(* Engine-wide metrics.  Shared across every [Make] instance: series
   are process-level, like the registry itself.  The span taxonomy
   (update.verify/log/apply, checkpoint, recovery.restore/replay) is a
   public interface documented in DESIGN.md. *)

let m_updates =
  Metrics.counter "sdb_updates_total" ~help:"Updates committed by the engine."

let m_group_size =
  Metrics.histogram "sdb_group_commit_size"
    ~help:"Updates committed per group flush (amortization factor of the \
           shared fsync; sdb_wal_syncs_total / sdb_updates_total is the \
           fsyncs-per-update ratio)."

let phase_hist phase =
  Metrics.histogram "sdb_update_phase_seconds"
    ~help:"Per-update phase latency (the paper's E2 breakdown)."
    ~labels:[ ("phase", phase) ]

let m_phase_verify = phase_hist "verify"
let m_phase_pickle = phase_hist "pickle"
let m_phase_log = phase_hist "log"
let m_phase_apply = phase_hist "apply"

let m_checkpoints =
  Metrics.counter "sdb_checkpoints_total" ~help:"Checkpoints written."

let ckpt_hist phase =
  Metrics.histogram "sdb_checkpoint_phase_seconds"
    ~help:"Checkpoint phase latency." ~labels:[ ("phase", phase) ]

let m_ckpt_pickle = ckpt_hist "pickle"
let m_ckpt_write = ckpt_hist "write"

let m_recoveries =
  Metrics.counter "sdb_recoveries_total" ~help:"Successful restarts from disk."

let recovery_hist phase =
  Metrics.histogram "sdb_recovery_phase_seconds"
    ~help:"Recovery phase latency (the paper's E4 breakdown)."
    ~labels:[ ("phase", phase) ]

let m_recovery_restore = recovery_hist "restore"
let m_recovery_replay = recovery_hist "replay"

let m_scrub_runs =
  Metrics.counter "sdb_scrub_runs_total" ~help:"Integrity scrubs completed."

let m_scrub_damage =
  Metrics.counter "sdb_scrub_damage_found_total"
    ~help:"Damaged ranges found by scrubs."

let m_scrub_repairs =
  Metrics.counter "sdb_scrub_repairs_total"
    ~help:"Self-repairs: fresh checkpoints written over detected damage."

let m_degraded =
  Metrics.gauge "sdb_degraded"
    ~help:"1 while the engine is in degraded (read-only) mode."

let m_degraded_recoveries =
  Metrics.counter "sdb_degraded_recoveries_total"
    ~help:"Automatic exits from degraded mode (space reclaimed)."

(* Concurrency-sanitizer exposure (pull-style: the sanitizer keeps its
   own tallies so the zero-overhead-when-disabled property holds; we
   bridge deltas into the registry only when someone renders). *)
let () =
  let m_san_checks =
    Metrics.counter "sdb_san_checks_total"
      ~help:"Lock-discipline checks processed by the sanitizer."
  and m_san_violations =
    Metrics.counter "sdb_san_violations_total"
      ~help:"Lock-discipline violations the sanitizer raised."
  and m_san_depth =
    Metrics.gauge "sdb_san_max_lock_depth"
      ~help:"Deepest per-thread lock hold stack the sanitizer observed."
  in
  let pushed_checks = ref 0 and pushed_violations = ref 0 in
  Metrics.register_collector ~name:"sdb_check" (fun () ->
      let s = Sdb_check.stats () in
      Metrics.add m_san_checks (max 0 (s.Sdb_check.checks - !pushed_checks));
      pushed_checks := max !pushed_checks s.Sdb_check.checks;
      Metrics.add m_san_violations
        (max 0 (s.Sdb_check.violations - !pushed_violations));
      pushed_violations := max !pushed_violations s.Sdb_check.violations;
      Metrics.set_gauge m_san_depth (float_of_int s.Sdb_check.max_lock_depth))

module type APP = sig
  type state
  type update

  val name : string
  val codec_state : state Pickle.t
  val codec_update : update Pickle.t
  val init : unit -> state
  val apply : state -> update -> state
end

type checkpoint_policy =
  | Manual
  | Every_n_updates of int
  | Log_bytes_exceeds of int

type config = {
  retain_previous : bool;
  policy : checkpoint_policy;
  log_recovery : [ `Stop_at_damage | `Skip_damaged ];
  hard_error_fallback : bool;
  archive_logs : bool;
  group_commit : bool;
  max_group_delay : float;
  max_group_bytes : int;
  read_path : [ `Locked | `Epoch ];
}

let default_config =
  {
    retain_previous = false;
    policy = Manual;
    log_recovery = `Stop_at_damage;
    hard_error_fallback = true;
    archive_logs = false;
    group_commit = false;
    max_group_delay = 0.002;
    max_group_bytes = 1 lsl 20;
    read_path = `Locked;
  }

type phase_times = {
  verify_s : float;
  pickle_s : float;
  log_s : float;
  apply_s : float;
  ckpt_pickle_s : float;
  ckpt_write_s : float;
  restore_s : float;
  replay_s : float;
}

type recovery_info = {
  replayed : int;
  skipped_damaged : int;
  log_tail_discarded : bool;
  used_previous_generation : bool;
  completed_switch : bool;
  removed_files : string list;
}

type stats = {
  generation : int;
  lsn : int;
  updates_committed : int;
  checkpoints_written : int;
  log_entries : int;
  log_bytes : int;
  phase : phase_times;
  recovery : recovery_info;
}

exception Poisoned
exception Closed

exception Degraded of string

type health = [ `Healthy | `Degraded of string | `Poisoned ]

type scrub_finding = { file : string; offset : int; reason : string }

type scrub_report = {
  scanned_files : string list;
  findings : scrub_finding list;
  replay_consistent : bool;
  repaired : bool;
  scrub_duration_s : float;
}

(* Backoff for the two space-reclaim retry loops (degraded exit and the
   auto-checkpoint): doubles per failed attempt, capped. *)
let backoff_initial = 0.02
let backoff_max = 5.0

let fresh_recovery =
  {
    replayed = 0;
    skipped_damaged = 0;
    log_tail_discarded = false;
    used_previous_generation = false;
    completed_switch = false;
    removed_files = [];
  }

module Make (App : APP) = struct
  type meta = { app : string; base_lsn : int }

  let codec_meta =
    Pickle.record2 "smalldb.checkpoint_meta"
      (Pickle.field "app" Pickle.string (fun m -> m.app))
      (Pickle.field "base_lsn" Pickle.int (fun m -> m.base_lsn))
      (fun app base_lsn -> { app; base_lsn })

  let codec_blob = Pickle.pair codec_meta App.codec_state
  let update_fp = Pickle.fingerprint App.codec_update

  (* One group-commit participant: an update (or a whole batch) that
     verified and pickled under the Update lock, joined the forming
     group, and parks until the leader settles it. *)
  type member_outcome =
    | M_pending
    | M_committed of int  (* the member's first LSN *)
    | M_failed of exn

  type member = {
    m_updates : App.update list;
    m_payloads : string list;
    mutable m_outcome : member_outcome;
  }

  type group = {
    mutable g_members : member list;  (* reverse join order *)
    mutable g_bytes : int;  (* framed bytes the group will write *)
    g_born : float;
  }

  type t = {
    fs : Fs.t;
    config : config;
    lock : Vlock.t;
    ckpt_mutex : Sdb_check.Mu.t;  (* serializes checkpoints of both kinds *)
    (* Group-commit coordinator: the forming group (joined under the
       Update lock), the commit slot serializing leaders in formation
       order, and the condition variable members park on — all guarded
       by [gc_mutex].  The two cells are [Guarded] so the sanitizer
       checks the contract on every access. *)
    gc_mutex : Sdb_check.Mu.t;
    gc_cond : Condition.t;
    gc_forming : group option Sdb_check.Guarded.t;
    gc_committing : bool Sdb_check.Guarded.t;
    (* reusable pickle scratch; guarded by the Update lock *)
    pickle_buf : Buffer.t;
    (* The lock-free read path (config.read_path = `Epoch): the state
       root is also published through an epoch-protected snapshot
       pointer, swung at the end of every Exclusive window.  Requires
       App.state to be persistent (see the mli). *)
    epoch : App.state Epoch.t option;
    mutable state : App.state;
    mutable wal : Wal.Writer.t;
    mutable generation : int;
    mutable lsn : int;
    mutable committed : int;
    mutable since_ckpt : int;  (* updates since the last checkpoint *)
    mutable ckpts : int;
    mutable closed : bool;
    mutable poisoned : bool;
    mutable degraded_reason : string option;
    mutable degraded_retry_at : float;
    mutable degraded_backoff : float;
    mutable auto_ckpt_retry_at : float;
    mutable auto_ckpt_backoff : float;
    mutable last_scrub : scrub_report option;
    mutable scrub_stop : bool;
    mutable scrub_thread : Thread.t option;
    mutable recovery : recovery_info;
    (* cumulative phase timings *)
    mutable t_verify : float;
    mutable t_pickle : float;
    mutable t_log : float;
    mutable t_apply : float;
    mutable t_ckpt_pickle : float;
    mutable t_ckpt_write : float;
    mutable t_restore : float;
    mutable t_replay : float;
    subs_mutex : Sdb_check.Mu.t;
    mutable subscribers : (int * (int -> App.update -> unit)) list;
    mutable next_sub : int;
  }

  type subscription = int

  let now = Unix.gettimeofday

  let check_usable t =
    if t.closed then raise Closed;
    if t.poisoned then raise Poisoned

  (* Swing the published snapshot to the state just applied.  Must run
     inside the Exclusive window (single writer, before release): the
     pointer swing is then ordered with the commit, so a reader never
     observes version N+1 before version N. *)
  let publish_epoch t =
    match t.epoch with
    | None -> ()
    | Some e -> Epoch.publish e ~lsn:t.lsn t.state
  [@@sdb.requires exclusive]

  let health t : health =
    if t.poisoned then `Poisoned
    else match t.degraded_reason with
      | Some reason -> `Degraded reason
      | None -> `Healthy

  let enter_degraded t reason =
    if t.degraded_reason = None then begin
      t.degraded_reason <- Some reason;
      t.degraded_backoff <- backoff_initial;
      t.degraded_retry_at <- Unix.gettimeofday () +. backoff_initial;
      Metrics.set_gauge m_degraded 1.
    end

  (* ---------------------------------------------------------------- *)
  (* Opening                                                           *)

  let make fs config state wal generation lsn recovery =
    let gc_mutex = Sdb_check.Mu.make ("smalldb.gc:" ^ App.name) in
    {
      fs;
      config;
      lock = Vlock.create ~name:App.name ();
      (* `Vlock kind: the checkpoint token only serializes checkpointers
         and scrubbers against each other and is held across deliberate
         I/O (the concurrent checkpoint's WAL tail blit), so it is exempt
         from the no-blocking-under-mutex rule — at runtime (the
         sanitizer's I/O assert filters on kind) and statically. *)
      ckpt_mutex = Sdb_check.Mu.make ~kind:`Vlock ("smalldb.ckpt:" ^ App.name);
      gc_mutex;
      gc_cond = Condition.create ();
      gc_forming = Sdb_check.Guarded.create ~by:gc_mutex ~name:"gc_forming" None;
      gc_committing =
        Sdb_check.Guarded.create ~by:gc_mutex ~name:"gc_committing" false;
      pickle_buf = Buffer.create 256;
      epoch =
        (match config.read_path with
        | `Locked -> None
        | `Epoch -> Some (Epoch.create ~name:App.name ~lsn state));
      state;
      wal;
      generation;
      lsn;
      committed = 0;
      since_ckpt = 0;
      ckpts = 0;
      closed = false;
      poisoned = false;
      degraded_reason = None;
      degraded_retry_at = 0.;
      degraded_backoff = backoff_initial;
      auto_ckpt_retry_at = 0.;
      auto_ckpt_backoff = backoff_initial;
      last_scrub = None;
      scrub_stop = false;
      scrub_thread = None;
      recovery;
      t_verify = 0.;
      t_pickle = 0.;
      t_log = 0.;
      t_apply = 0.;
      t_ckpt_pickle = 0.;
      t_ckpt_write = 0.;
      t_restore = 0.;
      t_replay = 0.;
      subs_mutex = Sdb_check.Mu.make ("smalldb.subs:" ^ App.name);
      subscribers = [];
      next_sub = 0;
    }

  let checkpoint_blob ~lsn state =
    Pickle.to_string codec_blob ({ app = App.name; base_lsn = lsn }, state)

  let create_fresh fs config =
    let state = App.init () in
    let blob = checkpoint_blob ~lsn:0 state in
    Store.write_checkpoint fs ~version:0 blob;
    let wal = Wal.Writer.create fs (Store.log_file 0) ~fingerprint:update_fp in
    Store.commit ~archive_logs:config.archive_logs
      ~retain_previous:config.retain_previous ~old_version:None ~new_version:0 fs;
    Ok (make fs config state wal 0 0 fresh_recovery)

  let load_checkpoint fs file =
    match Fs.read_file fs file with
    | exception Fs.Read_error { reason; _ } ->
      Error (Printf.sprintf "checkpoint %s unreadable: %s" file reason)
    | blob -> (
      match Pickle.of_string codec_blob blob with
      | Error m -> Error (Printf.sprintf "checkpoint %s: %s" file m)
      | Ok (meta, state) ->
        if not (String.equal meta.app App.name) then
          Error
            (Printf.sprintf "checkpoint %s belongs to application %S, not %S" file
               meta.app App.name)
        else Ok (meta, state))

  let wal_policy = function
    | `Stop_at_damage -> Wal.Reader.Stop_at_damage
    | `Skip_damaged -> Wal.Reader.Skip_damaged

  (* Replay one log over (state, lsn); apply errors are fatal because a
     committed update must be applicable. *)
  let replay fs config ~log ~state ~lsn =
    let f (state, lsn) (entry : Wal.Reader.entry) =
      let u = Pickle.decode App.codec_update entry.payload in
      (App.apply state u, lsn + 1)
    in
    match
      Wal.Reader.fold fs log ~fingerprint:update_fp
        ~policy:(wal_policy config.log_recovery) ~init:(state, lsn) ~f
    with
    | Error e -> Error (Format.asprintf "log %s: %a" log Wal.pp_error e)
    | Ok ((state, lsn), outcome) -> Ok (state, lsn, outcome)
    | exception Pickle.Error m ->
      Error (Printf.sprintf "log %s: undecodable committed entry: %s" log m)

  let restore fs config (rcv : Store.recovery) =
    let gen = rcv.Store.current in
    let t0 = now () in
    let current_ckpt = load_checkpoint fs gen.Store.checkpoint_file in
    let via_previous reason =
      match (config.hard_error_fallback, rcv.Store.previous) with
      | true, Some prev -> (
        match load_checkpoint fs prev.Store.checkpoint_file with
        | Error e ->
          Error
            (Printf.sprintf "%s; previous generation also unusable: %s" reason e)
        | Ok (meta, state) -> (
          match
            replay fs config ~log:prev.Store.log_file ~state ~lsn:meta.base_lsn
          with
          | Error e -> Error (Printf.sprintf "%s; previous log: %s" reason e)
          | Ok (_, _, outcome)
            when outcome.Wal.Reader.entries_beyond_damage > 0 ->
            (* The fallback log deserves the same discipline as the
               current one: valid committed entries beyond interior
               damage must escalate, not silently truncate. *)
            Error
              (Printf.sprintf
                 "%s; previous log %s: interior damage with %d committed \
                  entries beyond it; use Skip_damaged recovery or restore \
                  from a replica"
                 reason prev.Store.log_file
                 outcome.Wal.Reader.entries_beyond_damage)
          | Ok (state, lsn, _outcome) -> Ok (meta, state, lsn, true)))
      | _ -> Error reason
    in
    let loaded =
      match current_ckpt with
      | Ok (meta, state) -> Ok (meta, state, meta.base_lsn, false)
      | Error reason -> via_previous reason
    in
    match loaded with
    | Error e -> Error e
    | Ok (_meta, state, lsn, used_previous) -> (
      let t1 = now () in
      match replay fs config ~log:gen.Store.log_file ~state ~lsn with
      | Error e -> Error e
      | Ok (_, _, outcome)
        when outcome.Wal.Reader.entries_beyond_damage > 0 ->
        (* Valid committed entries exist beyond the damage: truncating
           would silently lose them.  This is a hard error (§4), not a
           torn tail — escalate instead of guessing. *)
        Error
          (Printf.sprintf
             "log %s: interior damage with %d committed entries beyond it; use \
              Skip_damaged recovery or restore from a replica"
             gen.Store.log_file outcome.Wal.Reader.entries_beyond_damage)
      | Ok (state, lsn, outcome) ->
        let t2 = now () in
        let entries_in_file =
          outcome.Wal.Reader.entries_read + outcome.Wal.Reader.skipped
        in
        let wal =
          Wal.Writer.reopen fs gen.Store.log_file ~fingerprint:update_fp
            ~valid_length:outcome.Wal.Reader.valid_length ~entries:entries_in_file
        in
        let recovery =
          {
            replayed = outcome.Wal.Reader.entries_read;
            skipped_damaged = outcome.Wal.Reader.skipped;
            log_tail_discarded = outcome.Wal.Reader.stopped_early <> None;
            used_previous_generation = used_previous;
            completed_switch = rcv.Store.completed_switch;
            removed_files = rcv.Store.removed_files;
          }
        in
        let t = make fs config state wal gen.Store.version lsn recovery in
        (* Replayed log entries are not covered by the checkpoint we
           restored from: they count toward the next policy boundary. *)
        t.since_ckpt <- entries_in_file;
        t.t_restore <- t1 -. t0;
        t.t_replay <- t2 -. t1;
        Metrics.incr m_recoveries;
        Metrics.observe m_recovery_restore (t1 -. t0);
        Metrics.observe m_recovery_replay (t2 -. t1);
        if Trace.active () then begin
          let attrs = [ ("app", App.name) ] in
          Trace.span "recovery.restore" ~attrs ~start_s:t0 ~dur_s:(t1 -. t0);
          Trace.span "recovery.replay"
            ~attrs:(attrs @ [ ("replayed", string_of_int recovery.replayed) ])
            ~start_s:t1 ~dur_s:(t2 -. t1)
        end;
        Ok t)

  (* ---------------------------------------------------------------- *)
  (* Checkpointing                                                     *)

  (* Remove the partial files of a generation whose switch never
     committed.  Failures are swallowed: recovery deletes the same
     orphans at the next open. *)
  let scrap_partial_generation t next =
    List.iter
      (fun f -> try t.fs.Fs.remove f with Fs.Io_error _ -> ())
      [ Store.newversion_file; Store.checkpoint_file next; Store.log_file next ]

  (* Called on any successful checkpoint: the fresh, empty log is the
     one operation in this design that reclaims disk space, so it both
     resets the auto-checkpoint backoff and exits degraded mode. *)
  let note_space_reclaimed t =
    t.auto_ckpt_backoff <- backoff_initial;
    t.auto_ckpt_retry_at <- 0.;
    if t.degraded_reason <> None then begin
      t.degraded_reason <- None;
      Metrics.set_gauge m_degraded 0.;
      Metrics.incr m_degraded_recoveries
    end

  let checkpoint_locked t =
    let t0 = now () in
    let blob = checkpoint_blob ~lsn:t.lsn t.state in
    let t1 = now () in
    let next = t.generation + 1 in
    (try
       Store.write_checkpoint t.fs ~version:next blob;
       (* Start the new generation's log before touching the old one:
          any failure up to the commit point leaves the current
          generation intact and appendable. *)
       let wal = Wal.Writer.create t.fs (Store.log_file next) ~fingerprint:update_fp in
       (try
          Store.commit ~archive_logs:t.config.archive_logs
            ~retain_previous:t.config.retain_previous
            ~old_version:(Some t.generation) ~new_version:next t.fs
        with e ->
          (try Wal.Writer.close wal with Fs.Io_error _ -> ());
          raise e);
       (try Wal.Writer.close t.wal with Fs.Io_error _ -> ());
       Sdb_check.assert_mode (Vlock.sanitizer t.lock) Sdb_check.Update
         ~site:"checkpoint_locked.install";
       t.wal <- wal;
       t.generation <- next;
       t.ckpts <- t.ckpts + 1;
       t.since_ckpt <- 0;
       note_space_reclaimed t
     with
     | Fs.No_space _ as e ->
       (* Disk full strictly before the commit point — the [newversion]
          write is all-or-nothing under the [No_space] contract, so the
          switch either fully happened (then [commit] returned) or not
          at all.  Scrap the partial next generation and fail just this
          checkpoint; the engine stays usable on the old one. *)
       scrap_partial_generation t next;
       raise e
     | e ->
       t.poisoned <- true;
       raise e);
    let t2 = now () in
    t.t_ckpt_pickle <- t.t_ckpt_pickle +. (t1 -. t0);
    t.t_ckpt_write <- t.t_ckpt_write +. (t2 -. t1);
    Metrics.incr m_checkpoints;
    Metrics.observe m_ckpt_pickle (t1 -. t0);
    Metrics.observe m_ckpt_write (t2 -. t1);
    if Trace.active () then
      Trace.span "checkpoint"
        ~attrs:
          [
            ("app", App.name);
            ("kind", "blocking");
            ("generation", string_of_int t.generation);
          ]
        ~start_s:t0 ~dur_s:(t2 -. t0)
  [@@sdb.requires update]

  let checkpoint t =
    check_usable t;
    Sdb_check.Mu.lock t.ckpt_mutex;
    Fun.protect
      ~finally:(fun () -> Sdb_check.Mu.unlock t.ckpt_mutex)
      (fun () ->
        Vlock.acquire t.lock Vlock.Update;
        Fun.protect
          ~finally:(fun () -> Vlock.release t.lock Vlock.Update)
          (fun () ->
            check_usable t;
            checkpoint_locked t))
  [@@sdb.acquires update]

  (* The fuzzy checkpoint: snapshot cheaply (the state is immutable),
     pickle with no lock held, then briefly take the update lock to
     carry the few concurrently-committed entries into the new
     generation's log and commit the switch. *)
  let checkpoint_concurrent t =
    check_usable t;
    if t.config.archive_logs then
      invalid_arg "Smalldb.checkpoint_concurrent: incompatible with archive_logs";
    Sdb_check.Mu.lock t.ckpt_mutex;
    Fun.protect
      ~finally:(fun () -> Sdb_check.Mu.unlock t.ckpt_mutex)
      (fun () ->
        check_usable t;
        (* Phase 1: O(1) snapshot.  A momentary update lock pins the
           (state, lsn, log length) triple consistently. *)
        let snapshot, snap_lsn, snap_off =
          Vlock.with_lock t.lock Vlock.Update (fun () ->
              (t.state, t.lsn, Wal.Writer.length t.wal))
        in
        (* Phase 2: the expensive work, with updates running freely. *)
        let t0 = now () in
        let blob = checkpoint_blob ~lsn:snap_lsn snapshot in
        let t1 = now () in
        let next = t.generation + 1 in
        let committed = ref false in
        (try
           Store.write_checkpoint t.fs ~version:next blob;
           (* Phase 3: brief exclusion, proportional to the updates
              that arrived during phase 2. *)
           Vlock.acquire t.lock Vlock.Update;
           Fun.protect
             ~finally:(fun () -> Vlock.release t.lock Vlock.Update)
             (fun () ->
               let wal' =
                 Wal.Writer.create t.fs (Store.log_file next) ~fingerprint:update_fp
               in
               (* Blit the tail committed since the snapshot — raw
                 frames, O(updates during the pickle), no decoding. *)
               let tail_count = t.lsn - snap_lsn in
               let tail_len = Wal.Writer.length t.wal - snap_off in
               if tail_len > 0 then begin
                 let r = t.fs.Fs.open_reader (Store.log_file t.generation) in
                 Fun.protect
                   ~finally:(fun () -> r.Fs.r_close ())
                   (fun () ->
                     r.Fs.r_seek snap_off;
                     let buf = Bytes.create tail_len in
                     let rec fill got =
                       if got < tail_len then begin
                         let n = r.Fs.r_read buf got (tail_len - got) in
                         if n = 0 then
                           Fs.io_fail ~op:"read" "checkpoint_concurrent: short tail read";
                         fill (got + n)
                       end
                     in
                     fill 0;
                     Wal.Writer.append_raw_frames wal'
                       (Bytes.unsafe_to_string buf)
                       ~count:tail_count);
                 Wal.Writer.sync wal'
               end;
               (try
                  Store.commit ~archive_logs:false
                    ~retain_previous:t.config.retain_previous
                    ~old_version:(Some t.generation) ~new_version:next t.fs
                with e ->
                  (try Wal.Writer.close wal' with Fs.Io_error _ -> ());
                  raise e);
               committed := true;
               (try Wal.Writer.close t.wal with Fs.Io_error _ -> ());
               Sdb_check.assert_mode (Vlock.sanitizer t.lock) Sdb_check.Update
                 ~site:"checkpoint_concurrent.install";
               t.wal <- wal';
               t.generation <- next;
               t.ckpts <- t.ckpts + 1;
               (* The tail carried into the new log is not covered by
                  the snapshot just written. *)
               t.since_ckpt <- tail_count;
               note_space_reclaimed t)
         with
         | (Fs.No_space _ | Wal.Append_rolled_back _) as e when not !committed ->
           (* Pre-commit-point: the current generation is intact (the
              tail blit appends only to the not-yet-referenced new log,
              and a rolled-back append restored even that).  Scrap the
              partials and fail cleanly. *)
           scrap_partial_generation t next;
           raise e
         | e ->
           t.poisoned <- true;
           raise e);
        let t2 = now () in
        t.t_ckpt_pickle <- t.t_ckpt_pickle +. (t1 -. t0);
        t.t_ckpt_write <- t.t_ckpt_write +. (t2 -. t1);
        Metrics.incr m_checkpoints;
        Metrics.observe m_ckpt_pickle (t1 -. t0);
        Metrics.observe m_ckpt_write (t2 -. t1);
        if Trace.active () then
          Trace.span "checkpoint"
            ~attrs:
              [
                ("app", App.name);
                ("kind", "concurrent");
                ("generation", string_of_int t.generation);
              ]
            ~start_s:t0 ~dur_s:(t2 -. t0))
  [@@sdb.acquires update]

  let due_for_checkpoint t =
    match t.config.policy with
    | Manual -> false
    (* Count updates since the last checkpoint, not [committed mod n]:
       a batch that jumps over the multiple must still trigger. *)
    | Every_n_updates n -> n > 0 && t.since_ckpt >= n
    | Log_bytes_exceeds limit -> Wal.Writer.length t.wal > limit

  let maybe_auto_checkpoint t =
    if due_for_checkpoint t && now () >= t.auto_ckpt_retry_at then
      try checkpoint t
      with Fs.No_space _ ->
        (* The update itself committed; the log just could not be
           compacted yet.  Back off and keep running — degraded mode is
           entered only once an append itself no longer fits. *)
        t.auto_ckpt_backoff <- Float.min (t.auto_ckpt_backoff *. 2.) backoff_max;
        t.auto_ckpt_retry_at <- now () +. t.auto_ckpt_backoff

  (* Degraded mode is read-only: enquiries run, updates are refused
     with [Degraded].  Once the backoff timer expires, an update
     attempt first tries the exit path — a checkpoint, the only
     operation in this design that reclaims disk space (it resets the
     log to empty and deletes the superseded generation). *)
  let try_exit_degraded t reason =
    match checkpoint t with
    | () -> () (* [note_space_reclaimed] cleared the flag *)
    | exception Fs.No_space _ ->
      t.degraded_backoff <- Float.min (t.degraded_backoff *. 2.) backoff_max;
      t.degraded_retry_at <- now () +. t.degraded_backoff;
      raise (Degraded reason)

  let check_updatable t =
    check_usable t;
    match t.degraded_reason with
    | None -> ()
    | Some reason ->
      if now () < t.degraded_retry_at then raise (Degraded reason)
      else begin
        try_exit_degraded t reason;
        check_usable t
      end

  let subscribe t f =
    Sdb_check.Mu.with_lock t.subs_mutex (fun () ->
        let id = t.next_sub in
        t.next_sub <- id + 1;
        t.subscribers <- t.subscribers @ [ (id, f) ];
        id)

  let unsubscribe t id =
    Sdb_check.Mu.with_lock t.subs_mutex (fun () ->
        t.subscribers <- List.filter (fun (i, _) -> i <> id) t.subscribers)

  let notify t lsn u =
    let subs = Sdb_check.Mu.with_lock t.subs_mutex (fun () -> t.subscribers) in
    List.iter (fun (_, f) -> f lsn u) subs

  (* ---------------------------------------------------------------- *)
  (* Group commit (§4d)                                                *)

  let payload_bytes ps =
    List.fold_left
      (fun acc p -> acc + String.length p + Wal.frame_overhead)
      0 ps

  let is_pending m = match m.m_outcome with M_pending -> true | _ -> false

  (* Wake every still-pending member with its outcome.  Every leader
     path calls this exactly once, before notifications run. *)
  let wake_group t members outcome_of =
    Sdb_check.Mu.with_lock t.gc_mutex (fun () ->
        List.iter
          (fun m -> if is_pending m then m.m_outcome <- outcome_of m)
          members;
        Condition.broadcast t.gc_cond)
  [@@sdb.noblock]

  let release_slot t =
    Sdb_check.Mu.with_lock t.gc_mutex (fun () ->
        Sdb_check.Guarded.set t.gc_committing false;
        Condition.broadcast t.gc_cond)
  [@@sdb.noblock]

  (* The group leader: the updater that created the forming group.
     It (1) claims the commit slot, so groups commit in formation
     order; (2) lingers up to [max_group_delay] while updaters are
     still queued on the Update lock — each will verify, pickle and
     join within its next quantum — or until [max_group_bytes] of
     frames have gathered; (3) takes the Update lock and seals the
     group (members join under that same lock, so from here the member
     list is final and nothing else can touch the writer's staging
     buffer); (4) stages every member's frames and emits them with one
     write + one fsync; (5) upgrades to Exclusive once and applies the
     whole group in stage order, assigning dense LSNs; (6) wakes the
     group and notifies subscribers in LSN order.

     The §4b/§4c failure taxonomy carries over member-wise:
     - poisoned/closed at seal time: members fail with
       [Poisoned]/[Closed]; nothing was staged;
     - a frame rejected at stage time (oversized payload): nothing on
       disk, the whole group fails with that exception, engine usable;
     - [No_space] on the group append: all-or-nothing, so nothing
       committed — enter degraded (read-only) mode and fail every
       member with [Degraded];
     - any other rolled-back group write: the log was restored, fail
       every member with the cause, engine stays usable;
     - a failed fsync: an unknown prefix of the group may be durable —
       poison (fsyncgate: never retried), parked members fail with
       [Poisoned], the leader re-raises the original failure;
     - a failing [apply]: poison (a committed update must apply).

     The leader raises its own failure exactly as a solo updater
     would; it returns normally only when the whole group committed. *)
  let lead t (g : group) =
    let traced = Trace.active () in
    let t_join0 = if traced then now () else 0.0 in
    Sdb_check.Mu.lock t.gc_mutex;
    while Sdb_check.Guarded.get t.gc_committing do
      Sdb_check.Mu.wait t.gc_cond t.gc_mutex
    done;
    Sdb_check.Guarded.set t.gc_committing true;
    Sdb_check.Mu.unlock t.gc_mutex;
    Fun.protect ~finally:(fun () -> release_slot t) @@ fun () ->
    (* Linger.  The stdlib has no timed condition wait, so poll: an
       idle lock exits immediately (a solo update pays no delay). *)
    let deadline = g.g_born +. t.config.max_group_delay in
    let group_bytes () =
      Sdb_check.Mu.with_lock t.gc_mutex (fun () -> g.g_bytes)
    in
    while
      now () < deadline
      && group_bytes () < t.config.max_group_bytes
      && (Vlock.waiting t.lock).Vlock.waiting_update > 0
    do
      Thread.yield ()
    done;
    (* The leader's "join" phase is the commit-slot wait plus the
       linger; a member's (below) is its park on the group outcome. *)
    if traced then
      Trace.span "update.join"
        ~attrs:[ ("app", App.name); ("role", "leader") ]
        ~start_s:t_join0 ~dur_s:(now () -. t_join0);
    Vlock.acquire t.lock Vlock.Update;
    let held = ref (Some Vlock.Update) in
    let release () =
      match !held with
      | Some mode ->
        held := None;
        Vlock.release t.lock mode
      | None -> ()
    in
    (* Seal: late arrivals will form (and lead) the next group. *)
    let members =
      Sdb_check.Mu.with_lock t.gc_mutex (fun () ->
          Sdb_check.Guarded.set t.gc_forming None;
          List.rev g.g_members)
    in
    let fail_all ?(poison = false) ~leader member_exn =
      if poison then t.poisoned <- true;
      release ();
      wake_group t members (fun _ -> M_failed member_exn);
      raise leader
    in
    match
      if t.closed then fail_all ~leader:Closed Closed;
      if t.poisoned then fail_all ~leader:Poisoned Poisoned;
      (match
         List.iter
           (fun m -> List.iter (Wal.Writer.stage t.wal) m.m_payloads)
           members
       with
      | () -> ()
      | exception e ->
        Wal.Writer.discard_group t.wal;
        fail_all ~leader:e e);
      let t1 = now () in
      (try ignore (Wal.Writer.flush_group t.wal : int * int) with
      | Wal.Append_rolled_back (Fs.No_space _ as cause) ->
        let reason = Fs.describe_exn cause in
        enter_degraded t reason;
        fail_all ~leader:(Degraded reason) (Degraded reason)
      | Wal.Append_rolled_back cause -> fail_all ~leader:cause cause
      | e -> fail_all ~poison:true ~leader:e Poisoned);
      let t2 = now () in
      t.t_log <- t.t_log +. (t2 -. t1);
      Metrics.observe m_phase_log (t2 -. t1);
      if Trace.active () then
        Trace.span "update.log"
          ~attrs:
            [
              ("app", App.name);
              ("group_size", string_of_int (List.length members));
            ]
          ~start_s:t1 ~dur_s:(t2 -. t1);
      Vlock.upgrade t.lock;
      held := Some Vlock.Exclusive;
      Sdb_check.assert_mode (Vlock.sanitizer t.lock) Sdb_check.Exclusive
        ~site:"lead.apply";
      (try
         let t0 = now () in
         List.iter
           (fun m ->
             List.iter (fun u -> t.state <- App.apply t.state u) m.m_updates)
           members;
         let da = now () -. t0 in
         t.t_apply <- t.t_apply +. da;
         Metrics.observe m_phase_apply da;
         if traced then
           Trace.span "update.apply"
             ~attrs:
               [
                 ("app", App.name);
                 ("group_size", string_of_int (List.length members));
               ]
             ~start_s:t0 ~dur_s:da
       with e -> fail_all ~poison:true ~leader:e Poisoned);
      let base = t.lsn in
      let assigned =
        List.map
          (fun m ->
            let first = t.lsn in
            t.lsn <- t.lsn + List.length m.m_updates;
            (m, first))
          members
      in
      let n_total = t.lsn - base in
      t.committed <- t.committed + n_total;
      t.since_ckpt <- t.since_ckpt + n_total;
      Metrics.add m_updates n_total;
      Metrics.observe m_group_size (float_of_int n_total);
      publish_epoch t;
      release ();
      wake_group t members (fun m -> M_committed (List.assq m assigned));
      assigned
    with
    | exception e ->
      (* Belt and braces: no leader path above may leave a member
         parked forever.  Anything unexpected (every expected failure
         went through [fail_all] and settled the group already) still
         wakes the group, poisoned. *)
      let stranded =
        Sdb_check.Mu.with_lock t.gc_mutex (fun () ->
            List.exists is_pending members)
      in
      if stranded then begin
        t.poisoned <- true;
        release ();
        wake_group t members (fun _ -> M_failed Poisoned)
      end;
      raise e
    | assigned ->
      (* Subscribers see the group in stage order with dense LSNs,
         exactly as if the members had committed one by one.  The
         commit slot is still held, so groups notify in LSN order; a
         raising subscriber propagates to the leader's caller (the
         whole group is already durable, applied, and awake). *)
      Trace.with_span "update.notify"
        ~attrs:
          [
            ("app", App.name);
            ("group_size", string_of_int (List.length assigned));
          ]
        (fun () ->
          List.iter
            (fun (m, first) ->
              List.iteri (fun i u -> notify t (first + i) u) m.m_updates)
            assigned);
      maybe_auto_checkpoint t
  [@@sdb.acquires exclusive]

  (* One participant: verify + pickle under the Update lock, join the
     forming group (or create it and become the leader), release the
     lock, then park for the outcome — or lead the commit.  A raising
     [verify] or pickler propagates with the lock released and nothing
     joined: it fails only its own member, before staging. *)
  let group_commit t ~verify updates =
    check_updatable t;
    Vlock.acquire t.lock Vlock.Update;
    let held = ref (Some Vlock.Update) in
    let joined =
      Fun.protect
        ~finally:(fun () ->
          match !held with
          | Some mode ->
            held := None;
            Vlock.release t.lock mode
          | None -> ())
        (fun () ->
          let traced = Trace.active () in
          let t0 = now () in
          let v = verify t.state in
          let dv = now () -. t0 in
          t.t_verify <- t.t_verify +. dv;
          Metrics.observe m_phase_verify dv;
          if traced then
            Trace.span "update.verify"
              ~attrs:[ ("app", App.name) ]
              ~start_s:t0 ~dur_s:dv;
          match v with
          | Error e -> Error e
          | Ok () ->
            let t1 = now () in
            Sdb_check.assert_mode (Vlock.sanitizer t.lock) Sdb_check.Update
              ~site:"group_commit.pickle_buf";
            let payloads =
              List.map
                (fun u ->
                  Buffer.clear t.pickle_buf;
                  Pickle.encode_into t.pickle_buf App.codec_update u;
                  Buffer.contents t.pickle_buf)
                updates
            in
            let dp = now () -. t1 in
            t.t_pickle <- t.t_pickle +. dp;
            Metrics.observe m_phase_pickle dp;
            let m =
              { m_updates = updates; m_payloads = payloads; m_outcome = M_pending }
            in
            let lead_group =
              Sdb_check.Mu.with_lock t.gc_mutex (fun () ->
                  match Sdb_check.Guarded.get t.gc_forming with
                  | Some g ->
                    g.g_members <- m :: g.g_members;
                    g.g_bytes <- g.g_bytes + payload_bytes payloads;
                    None
                  | None ->
                    let g =
                      {
                        g_members = [ m ];
                        g_bytes = payload_bytes payloads;
                        g_born = now ();
                      }
                    in
                    Sdb_check.Guarded.set t.gc_forming (Some g);
                    Some g)
            in
            Ok (m, lead_group))
    in
    match joined with
    | Error e -> Error e
    | Ok (_, Some g) ->
      lead t g;
      Ok ()
    | Ok (m, None) ->
      let traced = Trace.active () in
      let t_park0 = if traced then now () else 0.0 in
      Sdb_check.Mu.lock t.gc_mutex;
      while is_pending m do
        Sdb_check.Mu.wait t.gc_cond t.gc_mutex
      done;
      let o = m.m_outcome in
      Sdb_check.Mu.unlock t.gc_mutex;
      (* The member's whole commit — verify done, parked while the
         leader flushes and applies — shows up as this one span. *)
      if traced then
        Trace.span "update.join"
          ~attrs:[ ("app", App.name); ("role", "member") ]
          ~start_s:t_park0 ~dur_s:(now () -. t_park0);
      (match o with
      | M_committed _ -> Ok ()
      | M_failed e -> raise e
      | M_pending -> assert false)
  [@@sdb.acquires exclusive]

  (* ---------------------------------------------------------------- *)
  (* Enquiries and updates                                             *)

  let query t f =
    check_usable t;
    match t.epoch with
    | Some e -> Epoch.read e f
    | None ->
      Vlock.with_lock t.lock Vlock.Shared (fun () ->
          Sdb_check.assert_mode (Vlock.sanitizer t.lock) Sdb_check.Shared
            ~site:"query";
          f t.state)
  [@@sdb.acquires shared]

  let query_with_lsn t f =
    check_usable t;
    match t.epoch with
    | Some e ->
      (* Payload and LSN come from the same published version — the
         atomicity the locked route gets from holding Shared across
         both reads. *)
      Epoch.read_with_lsn e f
    | None ->
      Vlock.with_lock t.lock Vlock.Shared (fun () ->
          Sdb_check.assert_mode (Vlock.sanitizer t.lock) Sdb_check.Shared
            ~site:"query_with_lsn";
          (f t.state, t.lsn))
  [@@sdb.acquires shared]

  (* The paper's three steps under the paper's locks:
     update lock for verify + log write (enquiries keep running),
     exclusive only for the memory mutation.

     Every exit path must either release the lock or poison the engine
     AND release — never leak.  The rule (documented in DESIGN.md):
     a failure BEFORE the commit point (raising precondition, raising
     pickler) releases and leaves the engine usable, because nothing
     reached the disk; a failure AT or AFTER the commit point (log
     append/fsync, [apply], checkpoint install) poisons, because memory
     and disk may now disagree — but still releases, so blocked
     threads wake up and observe [Poisoned] instead of deadlocking.
     The [held] ref tracks the mode currently owned; the [Fun.protect]
     finalizer releases whatever is still held on any exceptional
     exit.

     With [config.group_commit] the same three steps run, but the log
     write is delegated to the group-commit coordinator above: this
     thread verifies and pickles under the Update lock, then parks
     while a leader shares one fsync across every concurrent update. *)
  let update_solo t ~precondition u =
    check_updatable t;
    Vlock.acquire t.lock Vlock.Update;
    let held = ref (Some Vlock.Update) in
    let release mode =
      held := None;
      Vlock.release t.lock mode
    in
    let verdict =
      Fun.protect
        ~finally:(fun () ->
          match !held with
          | Some mode ->
            held := None;
            Vlock.release t.lock mode
          | None -> ())
        (fun () ->
          let traced = Trace.active () in
          let span_attrs = if traced then [ ("app", App.name) ] else [] in
          let t0 = now () in
          (* A raising precondition propagates; the finalizer releases
             the Update lock and the engine stays usable. *)
          let v = precondition t.state in
          let dv = now () -. t0 in
          t.t_verify <- t.t_verify +. dv;
          Metrics.observe m_phase_verify dv;
          if traced then
            Trace.span "update.verify" ~attrs:span_attrs ~start_s:t0 ~dur_s:dv;
          match v with
          | Error e -> Error e
          | Ok () ->
            (let t0 = now () in
             (* A raising pickler likewise: nothing is on disk yet.
                The scratch buffer is guarded by the Update lock. *)
             Sdb_check.assert_mode (Vlock.sanitizer t.lock) Sdb_check.Update
               ~site:"update_solo.pickle_buf";
             Buffer.clear t.pickle_buf;
             Pickle.encode_into t.pickle_buf App.codec_update u;
             let payload = Buffer.contents t.pickle_buf in
             let t1 = now () in
             (try ignore (Wal.Writer.append_sync t.wal payload : int)
              with
              | Wal.Append_rolled_back (Fs.No_space _ as cause) ->
                (* Nothing reached the log; the disk is just full.
                   Reject this one update cleanly and go read-only
                   until a checkpoint can reclaim log space. *)
                let reason = Fs.describe_exn cause in
                enter_degraded t reason;
                raise (Degraded reason)
              | Wal.Append_rolled_back cause ->
                (* The write failed but the log was restored to its
                   exact prior contents — still before the commit
                   point, so fail the one update and stay usable. *)
                raise cause
              | e ->
                (* The append may have left partial bytes, or the
                   fsync failed with an unknown amount already durable
                   (the fsyncgate rule: a failed fsync is never
                   retried).  Memory and disk may disagree, so refuse
                   further use. *)
                t.poisoned <- true;
                raise e);
             let t2 = now () in
             t.t_pickle <- t.t_pickle +. (t1 -. t0);
             t.t_log <- t.t_log +. (t2 -. t1);
             Metrics.observe m_phase_pickle (t1 -. t0);
             Metrics.observe m_phase_log (t2 -. t1);
             if traced then
               (* One span covers pickle + append + fsync: the paper's
                  "write the log entry" step. *)
               Trace.span "update.log"
                 ~attrs:
                   (span_attrs @ [ ("bytes", string_of_int (String.length payload)) ])
                 ~start_s:t0 ~dur_s:(t2 -. t0));
            (* Committed: switch to exclusive for the memory mutation. *)
            Vlock.upgrade t.lock;
            held := Some Vlock.Exclusive;
            Sdb_check.assert_mode (Vlock.sanitizer t.lock) Sdb_check.Exclusive
              ~site:"update_solo.apply";
            (try
               let t0 = now () in
               t.state <- App.apply t.state u;
               let da = now () -. t0 in
               t.t_apply <- t.t_apply +. da;
               Metrics.observe m_phase_apply da;
               if traced then
                 Trace.span "update.apply" ~attrs:span_attrs ~start_s:t0 ~dur_s:da
             with e ->
               t.poisoned <- true;
               raise e);
            t.lsn <- t.lsn + 1;
            t.committed <- t.committed + 1;
            t.since_ckpt <- t.since_ckpt + 1;
            Metrics.incr m_updates;
            let lsn = t.lsn - 1 in
            publish_epoch t;
            release Vlock.Exclusive;
            (* A raising subscriber propagates to the updater with no
               lock held; the update is already durable and applied. *)
            Trace.with_span "update.notify" ~attrs:span_attrs (fun () ->
                notify t lsn u);
            Ok ())
    in
    (match verdict with Ok () -> maybe_auto_checkpoint t | Error _ -> ());
    verdict
  [@@sdb.acquires exclusive]

  let update_checked t ~precondition u =
    if t.config.group_commit then group_commit t ~verify:precondition [ u ]
    else update_solo t ~precondition u

  let update t u =
    match update_checked t ~precondition:(fun _ -> Ok ()) u with
    | Ok () -> ()
    | Error _ -> assert false (* precondition above cannot fail *)

  (* Same lock discipline as [update_checked]: pickling failures
     release (nothing committed), log/apply failures poison and
     release.  Under [group_commit] the whole batch rides as a single
     group member: its frames stay contiguous in stage order and share
     the group's one fsync. *)
  let update_batch t updates =
    if updates = [] then check_updatable t
    else if t.config.group_commit then begin
      match group_commit t ~verify:(fun _ -> Ok ()) updates with
      | Ok () -> ()
      | Error (_ : unit) -> assert false
    end
    else begin
      check_updatable t;
      Vlock.acquire t.lock Vlock.Update;
      let held = ref (Some Vlock.Update) in
      Fun.protect
        ~finally:(fun () ->
          match !held with
          | Some mode ->
            held := None;
            Vlock.release t.lock mode
          | None -> ())
        (fun () ->
          (let t0 = now () in
           Sdb_check.assert_mode (Vlock.sanitizer t.lock) Sdb_check.Update
             ~site:"update_batch.pickle_buf";
           let payloads =
             List.map
               (fun u ->
                 Buffer.clear t.pickle_buf;
                 Pickle.encode_into t.pickle_buf App.codec_update u;
                 Buffer.contents t.pickle_buf)
               updates
           in
           let t1 = now () in
           (try
              List.iter
                (fun p -> ignore (Wal.Writer.append t.wal p : int))
                payloads;
              Wal.Writer.sync t.wal
            with
            | Wal.Append_rolled_back (Fs.No_space _ as cause) ->
              (* The failing append was rolled back, and every earlier
                 append of the batch is unsynced volatile data above
                 the recorded length that the reopen path discards —
                 nothing committed.  But the writer's length no longer
                 matches what earlier appends buffered, so the engine
                 must not keep appending: degrade read-only; the exit
                 checkpoint rebuilds a clean log. *)
              let reason = Fs.describe_exn cause in
              enter_degraded t reason;
              raise (Degraded reason)
            | e ->
              t.poisoned <- true;
              raise e);
           let t2 = now () in
           t.t_pickle <- t.t_pickle +. (t1 -. t0);
           t.t_log <- t.t_log +. (t2 -. t1);
           Metrics.observe m_phase_pickle (t1 -. t0);
           Metrics.observe m_phase_log (t2 -. t1));
          Vlock.upgrade t.lock;
          held := Some Vlock.Exclusive;
          Sdb_check.assert_mode (Vlock.sanitizer t.lock) Sdb_check.Exclusive
            ~site:"update_batch.apply";
          (try
             let t0 = now () in
             List.iter (fun u -> t.state <- App.apply t.state u) updates;
             let da = now () -. t0 in
             t.t_apply <- t.t_apply +. da;
             Metrics.observe m_phase_apply da
           with e ->
             t.poisoned <- true;
             raise e);
          let n = List.length updates in
          Metrics.add m_updates n;
          let base = t.lsn in
          t.lsn <- t.lsn + n;
          t.committed <- t.committed + n;
          t.since_ckpt <- t.since_ckpt + n;
          publish_epoch t;
          held := None;
          Vlock.release t.lock Vlock.Exclusive;
          List.iteri (fun i u -> notify t (base + i) u) updates);
      maybe_auto_checkpoint t
    end

  (* ---------------------------------------------------------------- *)
  (* Online integrity scrub                                             *)

  let scan_page = 4096

  let really_read r buf want =
    let got = ref 0 in
    let eof = ref false in
    while (not !eof) && !got < want do
      let n = r.Fs.r_read buf !got (want - !got) in
      if n = 0 then eof := true else got := !got + n
    done

  (* Scan one whole file for unreadable (media-damaged) ranges, page by
     page: a damaged page yields one finding and the scan resumes at
     the next page, so every distinct damage range is reported rather
     than only the first. *)
  let scan_file t file findings =
    if t.fs.Fs.exists file then begin
      match t.fs.Fs.open_reader file with
      | exception e ->
        findings := { file; offset = 0; reason = Fs.describe_exn e } :: !findings
      | r ->
        Fun.protect
          ~finally:(fun () -> r.Fs.r_close ())
          (fun () ->
            let size = r.Fs.r_size in
            let buf = Bytes.create scan_page in
            let off = ref 0 in
            while !off < size do
              let want = min scan_page (size - !off) in
              (match
                 r.Fs.r_seek !off;
                 really_read r buf want
               with
              | () -> ()
              | exception Fs.Read_error { offset; reason; _ } ->
                findings := { file; offset; reason } :: !findings
              | exception e ->
                findings :=
                  { file; offset = !off; reason = Fs.describe_exn e }
                  :: !findings);
              off := !off + want
            done)
    end

  (* Frame-level verification of one log file: CRC-checks every entry
     under [Skip_damaged] so damage past the first bad entry is still
     enumerated, optionally folding the decoded updates. *)
  let verify_log t log findings ~f ~init =
    match
      Wal.Reader.fold t.fs log ~fingerprint:update_fp
        ~policy:Wal.Reader.Skip_damaged ~init ~f
    with
    | Error e ->
      findings :=
        { file = log; offset = 0; reason = Format.asprintf "%a" Wal.pp_error e }
        :: !findings;
      None
    | exception Pickle.Error m ->
      findings :=
        { file = log; offset = 0; reason = "undecodable committed entry: " ^ m }
        :: !findings;
      None
    | Ok (acc, outcome) ->
      List.iter
        (fun (offset, reason) ->
          findings := { file = log; offset; reason } :: !findings)
        outcome.Wal.Reader.damage;
      Some (acc, outcome)

  (* Re-read current (and retained previous) checkpoint + log under the
     checkpoint mutex and the update lock — the same discipline as a
     blocking checkpoint, so enquiries keep running while updates and
     checkpoints wait.  With [repair] (and damage found), a fresh
     generation is checkpointed from the known-good in-memory state and
     the damaged files are dropped. *)
  let scrub ?(repair = false) ?digest t =
    check_usable t;
    let t0 = now () in
    Sdb_check.Mu.lock t.ckpt_mutex;
    Fun.protect
      ~finally:(fun () -> Sdb_check.Mu.unlock t.ckpt_mutex)
      (fun () ->
        Vlock.acquire t.lock Vlock.Update;
        Fun.protect
          ~finally:(fun () -> Vlock.release t.lock Vlock.Update)
          (fun () ->
            check_usable t;
            Sdb_check.assert_mode (Vlock.sanitizer t.lock) Sdb_check.Update
              ~site:"scrub";
            let gen = t.generation in
            let ckpt = Store.checkpoint_file gen in
            let log = Store.log_file gen in
            let findings = ref [] in
            let scanned = ref [] in
            let note file = scanned := file :: !scanned in
            (* 1. Media scan of every file of both generations. *)
            note ckpt;
            scan_file t ckpt findings;
            note log;
            scan_file t log findings;
            let prev_ckpt = Store.checkpoint_file (gen - 1) in
            let prev_log = Store.log_file (gen - 1) in
            if gen > 0 && t.fs.Fs.exists prev_ckpt then begin
              note prev_ckpt;
              scan_file t prev_ckpt findings
            end;
            if gen > 0 && t.fs.Fs.exists prev_log then begin
              note prev_log;
              scan_file t prev_log findings;
              ignore
                (verify_log t prev_log findings ~init:() ~f:(fun () _ -> ())
                  : (unit * _) option)
            end;
            (* 2. Shadow replay: decode the checkpoint, replay the log
               into it, and cross-check the result against memory. *)
            let replay_consistent = ref true in
            (match load_checkpoint t.fs ckpt with
            | exception Fs.Read_error _ ->
              (* already reported by the media scan *)
              replay_consistent := false
            | Error reason ->
              replay_consistent := false;
              if not (List.exists (fun f -> String.equal f.file ckpt) !findings)
              then findings := { file = ckpt; offset = 0; reason } :: !findings
            | Ok (meta, shadow0) -> (
              match
                verify_log t log findings ~init:(shadow0, meta.base_lsn)
                  ~f:(fun (st, lsn) entry ->
                    let u =
                      Pickle.decode App.codec_update entry.Wal.Reader.payload
                    in
                    (App.apply st u, lsn + 1))
              with
              | None -> replay_consistent := false
              | Some ((shadow, shadow_lsn), outcome) ->
                if
                  outcome.Wal.Reader.skipped > 0
                  || outcome.Wal.Reader.stopped_early <> None
                then replay_consistent := false
                else begin
                  if shadow_lsn <> t.lsn then begin
                    replay_consistent := false;
                    findings :=
                      {
                        file = log;
                        offset = outcome.Wal.Reader.valid_length;
                        reason =
                          Printf.sprintf
                            "replay reaches lsn %d but memory is at lsn %d"
                            shadow_lsn t.lsn;
                      }
                      :: !findings
                  end;
                  match digest with
                  | Some d when !replay_consistent ->
                    if not (String.equal (d shadow) (d t.state)) then begin
                      replay_consistent := false;
                      findings :=
                        {
                          file = ckpt;
                          offset = -1;
                          reason = "replayed disk state digest differs from memory";
                        }
                        :: !findings
                    end
                  | _ -> ()
                end))
            ;
            let findings = List.rev !findings in
            Metrics.incr m_scrub_runs;
            Metrics.add m_scrub_damage (List.length findings);
            (* 3. Self-repair: memory is the known-good copy (§4 —
               restore consistency by writing a fresh checkpoint from
               it), then drop the damaged files the new generation no
               longer references. *)
            let repaired = ref false in
            if repair && findings <> [] then begin
              match checkpoint_locked t with
              | () ->
                repaired := true;
                Metrics.incr m_scrub_repairs;
                List.iter
                  (fun (f : scrub_finding) ->
                    if f.offset >= 0 && t.fs.Fs.exists f.file then
                      try t.fs.Fs.remove f.file with Fs.Io_error _ -> ())
                  findings
              | exception Fs.No_space _ -> ()
              (* repair needs headroom; report unrepaired, try later *)
            end;
            let report =
              {
                scanned_files = List.rev !scanned;
                findings;
                replay_consistent = !replay_consistent;
                repaired = !repaired;
                scrub_duration_s = now () -. t0;
              }
            in
            t.last_scrub <- Some report;
            if Trace.active () then
              Trace.span "scrub"
                ~attrs:
                  [
                    ("app", App.name);
                    ("findings", string_of_int (List.length findings));
                    ("repaired", string_of_bool !repaired);
                  ]
                ~start_s:t0 ~dur_s:report.scrub_duration_s;
            report))

  let last_scrub t = t.last_scrub

  (* ---------------------------------------------------------------- *)
  (* Background scrubber                                               *)

  let scrub_tick = 0.05

  let start_scrubber ?(interval = 60.) ?(repair = true) ?digest t =
    check_usable t;
    if t.scrub_thread <> None then
      invalid_arg "Smalldb.start_scrubber: already running";
    t.scrub_stop <- false;
    let alive () = (not t.scrub_stop) && not t.closed in
    let thread =
      Thread.create
        (fun () ->
          let rec sleep_until deadline =
            if alive () then begin
              let left = deadline -. now () in
              if left > 0. then begin
                Thread.delay (Float.min scrub_tick left);
                sleep_until deadline
              end
            end
          in
          let rec loop () =
            sleep_until (now () +. interval);
            if alive () then begin
              (match scrub ~repair ?digest t with
              | (_ : scrub_report) -> ()
              | exception (Closed | Poisoned) -> t.scrub_stop <- true
              | exception _ -> ());
              loop ()
            end
          in
          loop ())
        ()
    in
    t.scrub_thread <- Some thread

  let stop_scrubber t =
    t.scrub_stop <- true;
    match t.scrub_thread with
    | None -> ()
    | Some th ->
      t.scrub_thread <- None;
      Thread.join th

  (* ---------------------------------------------------------------- *)
  (* Introspection                                                     *)

  let stats t =
    Vlock.with_lock t.lock Vlock.Shared (fun () ->
        {
          generation = t.generation;
          lsn = t.lsn;
          updates_committed = t.committed;
          checkpoints_written = t.ckpts;
          log_entries = Wal.Writer.entries t.wal;
          log_bytes = Wal.Writer.length t.wal;
          phase =
            {
              verify_s = t.t_verify;
              pickle_s = t.t_pickle;
              log_s = t.t_log;
              apply_s = t.t_apply;
              ckpt_pickle_s = t.t_ckpt_pickle;
              ckpt_write_s = t.t_ckpt_write;
              restore_s = t.t_restore;
              replay_s = t.t_replay;
            };
          recovery = t.recovery;
        })

  let fold_log t ~init ~f =
    check_usable t;
    (* The update lock pins the log file name and the LSN base without
       blocking enquiries. *)
    Vlock.with_lock t.lock Vlock.Update (fun () ->
        let log = Store.log_file t.generation in
        let base = t.lsn - Wal.Writer.entries t.wal in
        match
          Wal.Reader.fold t.fs log ~fingerprint:update_fp
            ~policy:Wal.Reader.Stop_at_damage ~init ~f:(fun acc entry ->
              let u = Pickle.decode App.codec_update entry.Wal.Reader.payload in
              f acc (base + entry.Wal.Reader.index) u)
        with
        | Ok (acc, _outcome) -> acc
        | Error e -> Fs.io_fail ~op:"read" (Format.asprintf "%a" Wal.pp_error e))

  let log_suffix t ~from =
    check_usable t;
    Vlock.with_lock t.lock Vlock.Update (fun () ->
        let base = t.lsn - Wal.Writer.entries t.wal in
        if from < base then None
        else begin
          let log = Store.log_file t.generation in
          match
            Wal.Reader.fold t.fs log ~fingerprint:update_fp
              ~policy:Wal.Reader.Stop_at_damage ~init:[] ~f:(fun acc entry ->
                let lsn = base + entry.Wal.Reader.index in
                if lsn >= from then
                  (lsn, Pickle.decode App.codec_update entry.Wal.Reader.payload) :: acc
                else acc)
          with
          | Ok (acc, _outcome) -> Some (List.rev acc)
          | Error e -> Fs.io_fail ~op:"read" (Format.asprintf "%a" Wal.pp_error e)
        end)

  module History = struct
    (* The archive is usable only when it is contiguous from the very
       first generation and meets the current log exactly: archive logs
       0..g-1 followed by the live log of generation g. *)
    let plan t =
      let archives = Store.archived_logs t.fs in
      let expected = List.init (List.length archives) Fun.id in
      if List.map fst archives <> expected then
        Error "history: archive is not contiguous from generation 0"
      else if List.length archives <> t.generation then
        Error
          (Printf.sprintf
             "history: %d archived logs but current generation is %d (archiving \
              was off at some point)"
             (List.length archives) t.generation)
      else Ok (List.map snd archives @ [ Store.log_file t.generation ])

    (* Fold [f] over one log file; damage or truncation in an archive is
       corruption of history, not a recoverable tail. *)
    let fold_file t ~log ~strict acc lsn f =
      match
        Wal.Reader.fold t.fs log ~fingerprint:update_fp
          ~policy:Wal.Reader.Stop_at_damage ~init:(acc, lsn)
          ~f:(fun (acc, lsn) entry ->
            let u = Pickle.decode App.codec_update entry.Wal.Reader.payload in
            (f acc lsn u, lsn + 1))
      with
      | Error e -> Error (Format.asprintf "history: %s: %a" log Wal.pp_error e)
      | Ok ((acc, lsn), outcome) ->
        if strict && outcome.Wal.Reader.stopped_early <> None then
          Error (Printf.sprintf "history: archived log %s is damaged" log)
        else Ok (acc, lsn)
      | exception Pickle.Error m -> Error (Printf.sprintf "history: %s: %s" log m)

    let fold_all t ~init ~f =
      check_usable t;
      Vlock.with_lock t.lock Vlock.Update (fun () ->
          match plan t with
          | Error e -> Error e
          | Ok logs ->
            let current = Store.log_file t.generation in
            let rec go acc lsn = function
              | [] -> Ok (acc, lsn)
              | log :: rest -> (
                match
                  fold_file t ~log ~strict:(not (String.equal log current)) acc lsn f
                with
                | Error e -> Error e
                | Ok (acc, lsn) -> go acc lsn rest)
            in
            go init 0 logs)

    let available t =
      match fold_all t ~init:() ~f:(fun () _ _ -> ()) with
      | Ok ((), lsn) -> lsn = t.lsn
      | Error _ -> false

    let fold t ~init ~f =
      match fold_all t ~init ~f with
      | Ok (acc, lsn) ->
        if lsn <> t.lsn then
          Error
            (Printf.sprintf "history: trail holds %d updates but lsn is %d" lsn t.lsn)
        else Ok acc
      | Error e -> Error e

    let state_at t ~lsn =
      if lsn < 0 || lsn > t.lsn then
        Error (Printf.sprintf "history: lsn %d outside [0, %d]" lsn t.lsn)
      else
        match
          fold_all t ~init:(App.init ()) ~f:(fun state at u ->
              if at < lsn then App.apply state u else state)
        with
        | Ok (state, total) ->
          if total < lsn then Error "history: trail shorter than requested lsn"
          else Ok state
        | Error e -> Error e
  end

  let close t =
    if not t.closed then begin
      stop_scrubber t;
      Vlock.acquire t.lock Vlock.Update;
      (* a non-Io_error exception from the WAL close (e.g. an injected
         fault) must not strand the Update mode *)
      Fun.protect
        ~finally:(fun () -> Vlock.release t.lock Vlock.Update)
        (fun () ->
          t.closed <- true;
          try Wal.Writer.close t.wal with Fs.Io_error _ -> ())
    end
  [@@sdb.acquires update]

  let open_ ?(config = default_config) fs =
    match
      Store.recover ~archive_logs:config.archive_logs
        ~retain_previous:config.retain_previous fs
    with
    | Error e -> Error e
    | Ok None -> create_fresh fs config
    | Ok (Some rcv) -> (
      match restore fs config rcv with
      | Error e -> Error e
      | Ok t ->
        (* After a hard-error restore the current checkpoint file is
           damaged; write a fresh consistent generation right away. *)
        if t.recovery.used_previous_generation then checkpoint t;
        Ok t)

  let open_exn ?config fs =
    match open_ ?config fs with Ok t -> t | Error e -> failwith e
end
