(** The main-memory database engine with checkpoint + redo log.

    This is the paper's design (§3): the database is an ordinary typed
    data structure in (virtual) memory; its disk counterpart is a
    checkpoint of some previous consistent state plus a log recording
    each subsequent update.  Enquiries touch only memory.  An update
    (1) verifies its preconditions against the in-memory state,
    (2) records its parameters as a log entry — one disk write, the
    commit point — and (3) applies itself to the in-memory state.
    Restart loads the checkpoint and replays the log.

    Concurrency follows the paper's three-mode locking: enquiries hold
    a shared lock; an update holds the update lock through steps (1)
    and (2) — so enquiries keep running during the disk write — and
    upgrades to exclusive only for step (3); a checkpoint holds the
    update lock for its whole duration.

    Instantiate {!Make} with an application: its state and update
    types, their pickles, and the (total, deterministic) [apply]
    function.  [apply] must succeed on any update that was committed;
    verify preconditions with {!Make.update_checked} {e before} the
    commit, never inside [apply]. *)

module type APP = sig
  type state
  type update

  val name : string
  (** Recorded in checkpoint metadata; distinguishes stores. *)

  val codec_state : state Sdb_pickle.Pickle.t
  val codec_update : update Sdb_pickle.Pickle.t

  val init : unit -> state
  (** The state of a freshly created (empty) database. *)

  val apply : state -> update -> state
  (** Total and deterministic: replaying the same updates from the same
      state must rebuild the same state.  May mutate and return its
      argument or return a new value. *)
end

type checkpoint_policy =
  | Manual  (** only explicit {!Make.checkpoint} calls *)
  | Every_n_updates of int
  | Log_bytes_exceeds of int
      (** checkpoint when the log file outgrows this size *)

type config = {
  retain_previous : bool;
      (** keep one previous checkpoint + log for hard-error recovery
          (§4); costs disk space, nothing else *)
  policy : checkpoint_policy;
  log_recovery : [ `Stop_at_damage | `Skip_damaged ];
      (** [`Skip_damaged] is the §4 option of ignoring just a damaged
          log entry; sound only if the application's updates are
          independent *)
  hard_error_fallback : bool;
      (** when the current checkpoint is unreadable, restore from the
          retained previous generation: load the previous checkpoint,
          replay the previous log, then replay the current log (§4) *)
  archive_logs : bool;
      (** keep superseded logs as [archive-logfile<N>] — §4's complete
          audit trail, consumed through {!Make.History} *)
  group_commit : bool;
      (** commit concurrent updates as a group sharing one log write
          and one fsync (DESIGN.md §4d).  Identical durability and
          failure semantics per update; throughput under concurrent
          updaters is no longer capped at 1/fsync-latency *)
  max_group_delay : float;
      (** longest time (seconds) a group leader lingers for more
          updaters to join before committing the group; a solo update
          with nobody queued commits immediately, paying no delay *)
  max_group_bytes : int;
      (** a group that has gathered this many framed log bytes commits
          without lingering further *)
  read_path : [ `Locked | `Epoch ];
      (** [`Locked] (the default): every enquiry holds the Vlock in
          Shared mode — the paper's protocol, and the baseline.
          [`Epoch]: enquiries run lock-free against an epoch-published
          snapshot ([Sdb_epoch]): the writer swings an atomic version
          pointer inside its Exclusive window, a reader enters an
          epoch, loads the pointer, and queries that immutable version
          with no lock traffic at all; retired versions are reclaimed
          once every reader has moved past them.  {b Requires
          [App.state] to be persistent} (path-copied, like
          [Ns_data.pnode] or a [Map]) — a mutable state would be
          shared, bare, with readers in other domains.  WAL,
          group commit, checkpointing and replication are unchanged;
          the fsync remains the commit point, and a version is
          published only after it commits. *)
}

val default_config : config
(** [retain_previous = false], [Manual], [`Stop_at_damage],
    [hard_error_fallback = true], [archive_logs = false],
    [group_commit = false], [max_group_delay = 0.002],
    [max_group_bytes = 1 MiB], [read_path = `Locked]. *)

(** Cumulative per-phase timings (seconds) backing the E2/E3/E4 cost
    breakdowns; maintained with two clock reads per phase. *)
type phase_times = {
  verify_s : float;  (** precondition evaluation (explore) *)
  pickle_s : float;  (** update-parameter pickling *)
  log_s : float;  (** log append + fsync *)
  apply_s : float;  (** in-memory mutation *)
  ckpt_pickle_s : float;
  ckpt_write_s : float;
  restore_s : float;  (** checkpoint read + unpickle at open *)
  replay_s : float;  (** log replay at open *)
}

type recovery_info = {
  replayed : int;  (** log entries re-applied at open *)
  skipped_damaged : int;
  log_tail_discarded : bool;
      (** a torn/partial trailing entry was found and dropped *)
  used_previous_generation : bool;
  completed_switch : bool;  (** finished a crashed checkpoint install *)
  removed_files : string list;
}

type stats = {
  generation : int;  (** current checkpoint version number *)
  lsn : int;  (** total updates committed over the store's lifetime *)
  updates_committed : int;  (** since this open *)
  checkpoints_written : int;  (** since this open *)
  log_entries : int;
  log_bytes : int;
  phase : phase_times;
  recovery : recovery_info;
}

exception Poisoned
(** The instance observed a failure after a commit point (e.g. [apply]
    raised on a committed update, the log fsync failed with an unknown
    number of bytes already durable — the fsyncgate rule: a failed
    fsync is never retried — or the backing store crashed); memory may
    disagree with disk, so every subsequent operation refuses.
    Re-open the store to recover. *)

exception Closed

exception Degraded of string
(** The engine is in read-only mode after running out of disk space:
    the failing log append was all-or-nothing, so nothing committed and
    memory still equals disk — enquiries keep being served, updates
    raise this.  The engine exits automatically: once a backoff timer
    expires, the next update attempt first tries a checkpoint, which
    resets the log to empty and deletes the superseded generation (the
    only operation in this design that reclaims space).  See DESIGN.md
    §4c for the full failure taxonomy. *)

type health = [ `Healthy | `Degraded of string | `Poisoned ]

type scrub_finding = {
  file : string;  (** store-relative file name *)
  offset : int;
      (** byte offset of the damage ([-1] for whole-state findings such
          as a digest mismatch) *)
  reason : string;
}

type scrub_report = {
  scanned_files : string list;
  findings : scrub_finding list;
  replay_consistent : bool;
      (** the checkpoint decoded, the log replayed cleanly into it up
          to the in-memory LSN, and (when a digest was supplied) the
          replayed state digests equal to memory *)
  repaired : bool;  (** a fresh generation was written over the damage *)
  scrub_duration_s : float;
}

module Make (App : APP) : sig
  type t

  val open_ : ?config:config -> Sdb_storage.Fs.t -> (t, string) result
  (** Open or create the database in [fs]'s directory, running crash
      recovery as needed. *)

  val open_exn : ?config:config -> Sdb_storage.Fs.t -> t

  val query : t -> (App.state -> 'a) -> 'a
  (** Run an enquiry under the shared lock.  The function must not
      mutate the state and must not call back into this [t] (the lock
      is not re-entrant: a nested acquire can deadlock against a
      pending upgrade). *)

  val query_with_lsn : t -> (App.state -> 'a) -> 'a * int
  (** Like {!query} but also returns the LSN the answer reflects, read
      under the same lock hold — the consistent (snapshot, position)
      pairs replication is built from. *)

  val update : t -> App.update -> unit
  (** Commit and apply one update: one disk write. *)

  val update_checked :
    t -> precondition:(App.state -> (unit, 'e) result) -> App.update ->
    (unit, 'e) result
  (** The paper's three-step update: the precondition runs under the
      update lock before anything is logged; if it fails, the database
      is untouched and no disk write happens.

      Exception safety (poison-vs-release, see DESIGN.md): a
      [precondition] or pickler that {e raises} propagates with the
      lock released and the engine untouched and usable — nothing
      reached the disk.  A failure in the log append/fsync or in
      [App.apply] also releases the lock but first poisons the engine
      ({!Poisoned}), because memory and disk may now disagree.  A
      raising subscriber propagates to the caller after the update is
      already durable and applied, with no lock held.

      With [config.group_commit], concurrent callers share one log
      write and one fsync (DESIGN.md §4d).  The contract is unchanged
      per update: the precondition still runs under the Update lock
      against the pre-group state; a failing precondition or raising
      pickler fails only this call; a group-wide log failure fails
      every member with the same taxonomy as above ([Degraded] on
      no-space, the rolled-back cause on a restored write error,
      {!Poisoned} after a failed fsync). *)

  val update_batch : t -> App.update list -> unit
  (** One caller, many updates: all entries appended, one fsync (§5's
      "multiple commit records in a single log entry" optimisation).
      Same exception-safety contract as {!update_checked}: a raising
      pickler releases and leaves the engine usable; a log or apply
      failure poisons and releases.  With [config.group_commit] the
      batch joins the forming group as a single member: its entries
      stay contiguous in the log and share the group's one fsync. *)

  val checkpoint : t -> unit
  (** Write a checkpoint and reset the log.  Holds the update lock for
      the duration (enquiries proceed, updates wait).

      Runs out of disk space cleanly: {!Sdb_storage.Fs.No_space} before
      the commit point scraps the partial new generation and leaves the
      engine fully usable on the old one (no poison).  A successful
      checkpoint also exits {!Degraded} mode, since the fresh empty log
      is what reclaims space. *)

  val checkpoint_concurrent : t -> unit
  (** A fuzzy checkpoint that does {e not} exclude updates while the
      state is pickled — addressing the paper's first availability
      limitation (§7: "the time required for making a checkpoint (when
      updates are excluded)").

      Three phases: grab the state pointer and LSN under a brief shared
      lock; pickle and write the checkpoint file with {e no} lock held;
      then, under a brief update lock, start the new generation's log,
      copy into it the few entries committed while pickling ran, and
      commit the switch.  Update unavailability is proportional to the
      updates that arrived during the pickle, not to the database size.

      Requires [App.state] to be {e immutable}: [apply] must return a
      new value and never mutate its argument, or the pickled snapshot
      would tear.  (The paper's hash-table name server does not
      qualify; a [Map]-based application does.)  Incompatible with
      [archive_logs] (the copied tail would duplicate history);
      raises [Invalid_argument] in that configuration. *)

  val stats : t -> stats

  val health : t -> health
  (** Never raises (usable on a poisoned instance). *)

  (** {2 Integrity scrubbing}

      §4 assumes hard errors are {e noticed}; the scrubber notices them
      online instead of at the next restart. *)

  val scrub :
    ?repair:bool -> ?digest:(App.state -> string) -> t -> scrub_report
  (** Re-read the current (and retained previous) checkpoint + log and
      verify them end to end: a page-wise media scan of every file, a
      CRC check of every log frame, and a shadow replay of checkpoint +
      log cross-checked against the live state.  Runs under the same
      lock discipline as a blocking checkpoint: enquiries keep running,
      updates and checkpoints wait.

      [digest] enables the memory cross-check; it must be {e canonical}
      (equal states give equal strings — a plain pickle of a hash table
      is not, since its iteration order depends on insertion history).

      With [repair:true] and damage found, the engine self-repairs by
      writing a fresh checkpoint from the known-good in-memory state
      (§4's consistency restoration, automated) and removing the
      damaged files; a subsequent scrub is clean.  Repair is skipped
      (report says [repaired = false]) when the disk is too full to
      write the new generation.

      Raises {!Poisoned}/{!Closed}; never {!Degraded} (a degraded
      engine can and should be scrubbed — a successful repair
      checkpoint also exits degraded mode). *)

  val last_scrub : t -> scrub_report option
  (** The most recent report, however produced (direct call, RPC, or
      the background scrubber). *)

  val start_scrubber :
    ?interval:float -> ?repair:bool -> ?digest:(App.state -> string) -> t ->
    unit
  (** Run {!scrub} on a background thread every [interval] seconds
      (default 60, [repair] defaults to [true]).  The thread stops
      itself when the instance is closed or poisoned; {!close} also
      stops it.  Raises [Invalid_argument] if already running. *)

  val stop_scrubber : t -> unit
  (** Stop and join the background scrubber (idempotent). *)

  (** {2 Update subscriptions}

      Observers of the committed update stream — what replication's
      eager propagation (§4) hangs off, without wrapping every update
      call site. *)

  type subscription

  val subscribe : t -> (int -> App.update -> unit) -> subscription
  (** The callback runs after each commit and its in-memory apply, with
      no engine lock held, in commit order, receiving the update's LSN.
      It may query this [t] but must not update it (re-entrant updates
      would reorder the stream it is observing).  An exception from the
      callback propagates to the updater — the update itself is already
      durable and applied. *)

  val unsubscribe : t -> subscription -> unit

  val fold_log : t -> init:'acc -> f:('acc -> int -> App.update -> 'acc) -> 'acc
  (** Audit trail (§4): fold over the current generation's committed
      updates with their LSNs. *)

  val log_suffix : t -> from:int -> (int * App.update) list option
  (** The committed updates with LSN ≥ [from], if the current
      generation's log still covers that point; [None] once a
      checkpoint has absorbed it (the caller must fall back to a full
      state transfer).  Used by replica catch-up. *)

  (** The complete audit trail (§4: "the log files form a complete
      audit trail for the database, and could be retained if desired").
      Requires the store to have run with [archive_logs = true] since
      creation, so that every update since LSN 0 is still on disk. *)
  module History : sig
    val available : t -> bool
    (** True when the archive is contiguous from LSN 0 to the current
        log (i.e. no history has been deleted). *)

    val fold :
      t -> init:'acc -> f:('acc -> int -> App.update -> 'acc) ->
      ('acc, string) result
    (** Every committed update of the store's lifetime, in LSN order,
        across all archived logs and the current one. *)

    val state_at : t -> lsn:int -> (App.state, string) result
    (** Reconstruct the database as it stood after the first [lsn]
        updates — time travel by replaying the audit trail into a fresh
        [App.init] state. *)
  end

  val close : t -> unit
  (** Close file handles.  No checkpoint is taken; the log is the
      authoritative tail, exactly as after a crash. *)
end
