module Rng = Sdb_util.Rng
module Metrics = Sdb_obs.Metrics

type op = [ `Send | `Recv ]

type scheduled = { s_op : op; mutable s_from : int; mutable s_until : int }
(* Operations with 1-based index in [s_from, s_until] fail. *)

type t = {
  m : Sdb_check.Mu.t;
  rng : Rng.t;
  mutable scheduled : scheduled list;
  mutable send_rate : float;
  mutable recv_rate : float;
  mutable drop_rate : float;
  mutable dup_rate : float;
  mutable reorder_rate : float;
  mutable delay_s : float;
  mutable delay_jitter_s : float;
  mutable bytes_per_s : int option;
  partitions : (string, unit) Hashtbl.t;
  mutable n_send : int;
  mutable n_recv : int;
  n_injected : int Atomic.t;
}

let m_injected =
  Metrics.counter "sdb_fault_net_injected_total"
    ~help:"Network faults injected by the fault_net decorator."

let create ?seed () =
  {
    m = Sdb_check.Mu.make "fault_net";
    rng = Rng.create ~seed:(Option.value seed ~default:0);
    scheduled = [];
    send_rate = 0.0;
    recv_rate = 0.0;
    drop_rate = 0.0;
    dup_rate = 0.0;
    reorder_rate = 0.0;
    delay_s = 0.0;
    delay_jitter_s = 0.0;
    bytes_per_s = None;
    partitions = Hashtbl.create 4;
    n_send = 0;
    n_recv = 0;
    n_injected = Atomic.make 0;
  }

let locked t f = Sdb_check.Mu.with_lock t.m f

let inject t =
  ignore (Atomic.fetch_and_add t.n_injected 1 : int);
  Metrics.incr m_injected

let fail_nth t ~op ~n ?(count = 1) () =
  if n < 1 then invalid_arg "Fault_net.fail_nth: n < 1";
  if count < 1 then invalid_arg "Fault_net.fail_nth: count < 1";
  locked t (fun () ->
      let seen = match op with `Send -> t.n_send | `Recv -> t.n_recv in
      t.scheduled <-
        { s_op = op; s_from = seen + n; s_until = seen + n + count - 1 }
        :: t.scheduled)

let check_rate what r =
  if r < 0.0 || r > 1.0 then
    invalid_arg (Printf.sprintf "Fault_net.%s: rate out of [0,1]" what)

let set_fault_rate t ~op r =
  check_rate "set_fault_rate" r;
  locked t (fun () ->
      match op with `Send -> t.send_rate <- r | `Recv -> t.recv_rate <- r)

let set_drop_rate t r =
  check_rate "set_drop_rate" r;
  locked t (fun () -> t.drop_rate <- r)

let set_dup_rate t r =
  check_rate "set_dup_rate" r;
  locked t (fun () -> t.dup_rate <- r)

let set_reorder_rate t r =
  check_rate "set_reorder_rate" r;
  locked t (fun () -> t.reorder_rate <- r)

let set_delay t ?(jitter_s = 0.0) d =
  if d < 0.0 || jitter_s < 0.0 then invalid_arg "Fault_net.set_delay: negative";
  locked t (fun () ->
      t.delay_s <- d;
      t.delay_jitter_s <- jitter_s)

let set_bandwidth t b =
  (match b with
  | Some b when b < 1 -> invalid_arg "Fault_net.set_bandwidth: < 1 byte/s"
  | _ -> ());
  locked t (fun () -> t.bytes_per_s <- b)

let partition t peer = locked t (fun () -> Hashtbl.replace t.partitions peer ())
let heal t peer = locked t (fun () -> Hashtbl.remove t.partitions peer)
let heal_all t = locked t (fun () -> Hashtbl.reset t.partitions)
let partitioned t peer = locked t (fun () -> Hashtbl.mem t.partitions peer)

let ops t ~op =
  locked t (fun () -> match op with `Send -> t.n_send | `Recv -> t.n_recv)

let injected t = Atomic.get t.n_injected

let clear t =
  locked t (fun () ->
      t.scheduled <- [];
      t.send_rate <- 0.0;
      t.recv_rate <- 0.0;
      t.drop_rate <- 0.0;
      t.dup_rate <- 0.0;
      t.reorder_rate <- 0.0;
      t.delay_s <- 0.0;
      t.delay_jitter_s <- 0.0;
      t.bytes_per_s <- None;
      Hashtbl.reset t.partitions)

(* ------------------------------------------------------------------ *)
(* The decorated transport                                             *)

(* The per-message decision, taken under the controller mutex so the
   seeded stream is consumed deterministically, then acted on outside
   it (sleeps and the underlying I/O must not hold the lock). *)
type verdict = {
  v_reset : bool;
  v_blackholed : bool;
  v_drop : bool;
  v_dup : bool;
  v_reorder : bool;
  v_sleep_s : float;
}

let pass =
  {
    v_reset = false;
    v_blackholed = false;
    v_drop = false;
    v_dup = false;
    v_reorder = false;
    v_sleep_s = 0.0;
  }

let decide t ~op ~peer ~len =
  locked t (fun () ->
      let n =
        match op with
        | `Send ->
          t.n_send <- t.n_send + 1;
          t.n_send
        | `Recv ->
          t.n_recv <- t.n_recv + 1;
          t.n_recv
      in
      let scheduled_hit =
        List.exists
          (fun s -> s.s_op = op && n >= s.s_from && n <= s.s_until)
          t.scheduled
      in
      let rate = match op with `Send -> t.send_rate | `Recv -> t.recv_rate in
      let chance r = r > 0.0 && Rng.float t.rng 1.0 < r in
      if scheduled_hit || chance rate then { pass with v_reset = true }
      else if
        (match peer with
        | Some p -> Hashtbl.mem t.partitions p
        | None -> false)
      then { pass with v_blackholed = true }
      else if op = `Recv then pass
      else
        let sleep =
          (if t.delay_s > 0.0 || t.delay_jitter_s > 0.0 then
             t.delay_s
             +.
             if t.delay_jitter_s > 0.0 then Rng.float t.rng t.delay_jitter_s
             else 0.0
           else 0.0)
          +.
          match t.bytes_per_s with
          | Some b -> float_of_int len /. float_of_int b
          | None -> 0.0
        in
        {
          pass with
          v_drop = chance t.drop_rate;
          v_dup = chance t.dup_rate;
          v_reorder = chance t.reorder_rate;
          v_sleep_s = sleep;
        })

let reset_message = "injected: connection reset"

let wrap t ?peer (inner : Rpc.Transport.t) =
  let dead = ref false in
  (* One held-back message per transport: [set] by a reorder verdict,
     flushed (after the overtaking message) by the next send, dropped
     at close. *)
  let held = ref None in
  let die () =
    if not !dead then begin
      dead := true;
      (try inner.Rpc.Transport.close () with Rpc.Rpc_error _ -> ())
    end;
    raise (Rpc.Rpc_error reset_message)
  in
  let guard () = if !dead then raise (Rpc.Rpc_error reset_message) in
  let send msg =
    guard ();
    let v = decide t ~op:`Send ~peer ~len:(String.length msg) in
    if v.v_sleep_s > 0.0 then Thread.delay v.v_sleep_s;
    if v.v_reset then begin
      inject t;
      die ()
    end
    else if v.v_blackholed || v.v_drop then inject t (* vanishes *)
    else begin
      (* Reordering: park this message and send nothing now; any
         previously parked message is released after the current one,
         i.e. out of order. *)
      let release = !held in
      held := None;
      if v.v_reorder then begin
        inject t;
        held := Some msg;
        match release with
        | Some old -> inner.Rpc.Transport.send old
        | None -> ()
      end
      else begin
        inner.Rpc.Transport.send msg;
        if v.v_dup then begin
          inject t;
          inner.Rpc.Transport.send msg
        end;
        match release with
        | Some old -> inner.Rpc.Transport.send old
        | None -> ()
      end
    end
  in
  let rec recv () =
    guard ();
    let v = decide t ~op:`Recv ~peer ~len:0 in
    if v.v_reset then begin
      inject t;
      die ()
    end
    else
      let msg = inner.Rpc.Transport.recv () in
      (* A blackhole swallows receipts too: anything that arrives while
         the peer is partitioned is discarded and the wait continues,
         so the caller times out exactly as over a real partition. *)
      match peer with
      | Some p when partitioned t p ->
        inject t;
        recv ()
      | _ -> msg
  in
  {
    Rpc.Transport.descr = Printf.sprintf "fault_net(%s)" inner.Rpc.Transport.descr;
    send;
    recv;
    close =
      (fun () ->
        dead := true;
        held := None;
        inner.Rpc.Transport.close ());
    set_recv_timeout = inner.Rpc.Transport.set_recv_timeout;
  }
