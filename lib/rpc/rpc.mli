(** Remote procedure calls with pickle-marshalled arguments.

    The paper's name server is reached through "a general purpose
    remote procedure call mechanism" whose stubs marshal strongly typed
    values (§6).  Here both directions use the same {!Sdb_pickle.Pickle}
    codecs: a procedure is declared once with its argument and result
    codecs, giving a typed client function and a typed server handler
    that share a wire fingerprint.

    Two transports are provided: an in-process pair with an optional
    simulated round-trip delay (how E6 reproduces the paper's 8 ms
    network term without a network), and Unix-domain stream sockets
    with a threaded accept loop (used by the [smalldb_ns] CLI). *)

exception Rpc_error of string
(** Transport failure, undecodable traffic, unknown procedure, or a
    server-side exception (carried as text). *)

module Transport : sig
  type t = {
    descr : string;
    send : string -> unit;  (** one complete message *)
    recv : unit -> string;  (** blocks; raises {!Rpc_error} when closed *)
    close : unit -> unit;
    set_recv_timeout : float option -> unit;
        (** bound every subsequent [recv] to this many seconds ([None]
            = block forever); an expired deadline raises {!Rpc_error}
            with {!deadline_exceeded} as the message *)
  }

  val round_trips : unit -> int
  (** Global count of completed calls (any client), for cost modelling. *)

  val deadline_exceeded : string
  (** The exact {!Rpc_error} message raised by a timed-out [recv]. *)
end

module Inproc : sig
  val pair : ?delay_s:float -> unit -> Transport.t * Transport.t
  (** A connected client/server transport pair backed by in-memory
      queues.  [delay_s] sleeps that long on every message, simulating
      one-way network latency. *)
end

module Socket : sig
  type listener

  val listen : path:string -> (Transport.t -> unit) -> listener
  (** Bind a Unix-domain socket and serve each accepted connection in
      its own thread with the given loop (typically
      [Server.serve ~handlers]). *)

  val connect : path:string -> Transport.t
  val shutdown : listener -> unit
end

module Server : sig
  type handler

  val handler : meth:string -> 'a Sdb_pickle.Pickle.t -> 'b Sdb_pickle.Pickle.t ->
    ('a -> 'b) -> handler
  (** A procedure: decode the argument, run, encode the result.  An
      exception in the body is returned to the caller as an error. *)

  val serve : handlers:handler list -> Transport.t -> unit
  (** Request loop until the peer closes.  Requests are handled in
      arrival order. *)
end

type retry_policy = {
  max_attempts : int;  (** total attempts, including the first (>= 1) *)
  initial_backoff_s : float;
  backoff_multiplier : float;
  max_backoff_s : float;
  jitter : bool;
      (** full jitter (see {!Backoff}): each delay is drawn uniformly
          from [\[0, base)] so synchronized failures decorrelate *)
}
(** Exponential backoff between re-attempts of idempotent calls,
    interpreted by {!Backoff}. *)

val no_retry : retry_policy
(** A single attempt (the default). *)

val default_retry : retry_policy
(** 3 attempts, 20 ms initial backoff, doubling, capped at 1 s, with
    full jitter. *)

val backoff_of_retry : retry_policy -> Backoff.policy
(** The delay schedule of a retry policy, for callers (the replica's
    health monitor) that pace their own retries with the same rules. *)

module Client : sig
  type t

  val create :
    ?deadline_s:float ->
    ?retry:retry_policy ->
    ?retry_budget:Backoff.Budget.t ->
    ?reconnect:(unit -> Transport.t) ->
    Transport.t -> t
  (** [deadline_s] bounds every call's wait for a response; an expired
      deadline raises {!Rpc_error} and {e poisons} the client (see
      {!broken}).  [retry] governs re-attempts of calls made with
      [~idempotent:true].  [retry_budget] (default unlimited) is a
      token bucket, typically shared across many clients, that each
      retry must spend from — an empty bucket fails the call at once
      instead of amplifying load during an outage.  [reconnect]
      supplies a fresh transport when the previous one is poisoned —
      without it a broken client fails every subsequent call. *)

  val call :
    ?idempotent:bool ->
    t -> meth:string -> 'a Sdb_pickle.Pickle.t -> 'b Sdb_pickle.Pickle.t -> 'a -> 'b
  (** One round trip.  Raises {!Rpc_error} on any failure.

      Any transport-level failure (send error, recv error or deadline,
      undecodable or mismatched response) poisons the client: the
      connection may still carry a stale in-flight response, so it is
      closed and never reused.  A call declared [~idempotent:true]
      (default false) is re-attempted over a fresh transport, with
      exponential backoff, up to [retry.max_attempts] times — but only
      when [reconnect] was provided and only after transport-level
      failures; server-side errors are returned at once and
      non-idempotent calls are never re-sent. *)

  val calls : t -> int

  val broken : t -> bool
  (** True after a transport failure or response-id desync; every later
      call either reconnects (when [reconnect] was given) or raises. *)

  val close : t -> unit
end
