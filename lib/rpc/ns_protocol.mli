(** The name server's RPC protocol: typed client stubs and the matching
    server handlers (the role the paper's generated marshalling stubs
    play in §6).

    Procedures cover the client-visible enquiry/browse/update surface
    plus the two replica-support calls ([snapshot], [updates_since])
    that §4's restore-from-replica and propagation are built on. *)

val handlers : Sdb_nameserver.Nameserver.t -> Rpc.Server.handler list
(** All procedures, bound to one local name server instance. *)

val serve : Sdb_nameserver.Nameserver.t -> Rpc.Transport.t -> unit
(** [Rpc.Server.serve] with {!handlers}. *)

module Client : sig
  type t

  val create :
    ?deadline_s:float ->
    ?retry:Rpc.retry_policy ->
    ?retry_budget:Backoff.Budget.t ->
    ?reconnect:(unit -> Rpc.Transport.t) ->
    Rpc.Transport.t -> t
  (** See {!Rpc.Client.create}.  Every procedure except [cas] and
      [checkpoint] is idempotent (enquiries are read-only; updates are
      last-writer-wins assignments) and is re-attempted under [retry]
      after a transport failure when [reconnect] is available. *)

  val close : t -> unit
  val calls : t -> int

  val broken : t -> bool
  (** See {!Rpc.Client.broken}. *)

  (** Enquiries (each one round trip). *)

  val lookup : t -> Sdb_nameserver.Name_path.t -> string option
  val exists : t -> Sdb_nameserver.Name_path.t -> bool
  val list_children : t -> Sdb_nameserver.Name_path.t -> string list option

  val export :
    ?depth:int -> t -> Sdb_nameserver.Name_path.t -> Sdb_nameserver.Ns_data.tree option

  val count_nodes : t -> int

  val enumerate :
    t -> Sdb_nameserver.Name_path.t ->
    (Sdb_nameserver.Name_path.t * string option) list

  val find :
    t -> string ->
    ((Sdb_nameserver.Name_path.t * string option) list, string) result
  (** Glob search; the pattern is compiled server-side. *)

  (** Updates. *)

  val set_value : t -> Sdb_nameserver.Name_path.t -> string option -> unit
  val write_subtree :
    t -> Sdb_nameserver.Name_path.t -> Sdb_nameserver.Ns_data.tree -> unit
  val delete_subtree : t -> Sdb_nameserver.Name_path.t -> unit
  val create_name : t -> Sdb_nameserver.Name_path.t -> unit

  val compare_and_set :
    t -> Sdb_nameserver.Name_path.t -> expected:string option -> string option ->
    (unit, string) result

  (** Replica support. *)

  val lsn : t -> int
  val snapshot : t -> Sdb_nameserver.Ns_data.tree * int
  val updates_since :
    t -> int -> (int * Sdb_nameserver.Nameserver.update) list option

  (** Maintenance. *)

  val checkpoint : t -> unit

  val digest : t -> string
  (** MD5 of the canonical pickled snapshot; equal digests mean equal
      databases (used by the long-term consistency check). *)

  val metrics : t -> string
  (** The server process's {!Sdb_obs.Metrics.render} output
      (Prometheus text exposition). *)

  val traces : t -> max_n:int -> min_dur_s:float -> Sdb_obs.Trace.span list
  (** The server's most recent (up to [max_n]) slow spans of duration
      at least [min_dur_s], newest first — the contents of its
      process-global {!Sdb_obs.Trace.Slow} ring.  Empty when the
      server runs without a ring. *)

  val fetch_state : t -> Sdb_nameserver.Ns_data.tree * int * string
  (** Full-state transfer for replica repair (§4's
      restore-from-replica): the snapshot tree, the LSN it reflects,
      and the canonical digest of exactly that tree, taken in one
      atomic call so the receiver can verify the transfer. *)

  val scrub : t -> repair:bool -> Smalldb.scrub_report
  (** Run an online integrity scrub on the server (see
      {!Sdb_nameserver.Nameserver.scrub}). *)

  val health : t -> Smalldb.health

  val ping : t -> int
  (** Heartbeat probe: the server's committed LSN.  The cheapest round
      trip in the protocol — what the replica failure detector sends. *)

  val fetch_meta : t -> int * string * int
  (** Begin (or restart) a resumable state transfer: [(lsn, digest,
      total_bytes)] of the server's canonically-encoded state.  Chunks
      fetched with the returned [lsn] compose into exactly the string
      whose MD5 is [digest]. *)

  val fetch_chunk : t -> lsn:int -> offset:int -> len:int -> string option
  (** Bytes [\[offset, offset+len)] (clamped to the total) of the
      encoding pinned by {!fetch_meta} at [lsn]; [None] when the
      server's state has moved past that LSN — restart from
      {!fetch_meta}.  Idempotent, so a transfer interrupted by a
      connection reset resumes at the first byte the receiver is
      missing. *)
end
