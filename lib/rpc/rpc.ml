module P = Sdb_pickle.Pickle
module Metrics = Sdb_obs.Metrics
module Trace = Sdb_obs.Trace

exception Rpc_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Rpc_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Wire messages                                                       *)

type request = { req_id : int; meth : string; args : string }

let codec_request =
  P.record3 "rpc.request"
    (P.field "id" P.int (fun r -> r.req_id))
    (P.field "meth" P.string (fun r -> r.meth))
    (P.field "args" P.string (fun r -> r.args))
    (fun req_id meth args -> { req_id; meth; args })

type response = { resp_id : int; payload : (string, string) result }

let codec_response =
  P.record2 "rpc.response"
    (P.field "id" P.int (fun r -> r.resp_id))
    (P.field "payload" (P.result P.string P.string) (fun r -> r.payload))
    (fun resp_id payload -> { resp_id; payload })

(* ------------------------------------------------------------------ *)
(* Transports                                                          *)

module Transport = struct
  type t = {
    descr : string;
    send : string -> unit;
    recv : unit -> string;
    close : unit -> unit;
    set_recv_timeout : float option -> unit;
  }

  let trips = Atomic.make 0
  let round_trips () = Atomic.get trips
  let count_trip () = ignore (Atomic.fetch_and_add trips 1 : int)

  let deadline_exceeded = "recv deadline exceeded"
end

module Bqueue = struct
  type 'a t = {
    q : 'a Queue.t;
    m : Sdb_check.Mu.t;
    c : Condition.t;
    mutable closed : bool;
  }

  let create () =
    {
      q = Queue.create ();
      m = Sdb_check.Mu.make "rpc.bqueue";
      c = Condition.create ();
      closed = false;
    }

  let push t v =
    Sdb_check.Mu.lock t.m;
    if t.closed then begin
      Sdb_check.Mu.unlock t.m;
      err "transport closed"
    end;
    Queue.push v t.q;
    Condition.signal t.c;
    Sdb_check.Mu.unlock t.m

  let pop ?timeout_s t =
    match timeout_s with
    | None ->
      Sdb_check.Mu.lock t.m;
      let rec wait () =
        if not (Queue.is_empty t.q) then Queue.pop t.q
        else if t.closed then begin
          Sdb_check.Mu.unlock t.m;
          err "transport closed"
        end
        else begin
          Sdb_check.Mu.wait t.c t.m;
          wait ()
        end
      in
      let v = wait () in
      Sdb_check.Mu.unlock t.m;
      v
    | Some dt ->
      (* OCaml's [Condition] has no timed wait; a fine-grained poll is
         adequate for the in-process transport's deadline support.  The
         deadline is monotonic: an NTP step must not expire it early or
         extend it (satellite of ISSUE 8). *)
      let deadline = Sdb_util.Mono.now_s () +. dt in
      let rec wait () =
        Sdb_check.Mu.lock t.m;
        if not (Queue.is_empty t.q) then begin
          let v = Queue.pop t.q in
          Sdb_check.Mu.unlock t.m;
          v
        end
        else if t.closed then begin
          Sdb_check.Mu.unlock t.m;
          err "transport closed"
        end
        else begin
          Sdb_check.Mu.unlock t.m;
          if Sdb_util.Mono.now_s () >= deadline then
            err "%s" Transport.deadline_exceeded
          else begin
            Thread.delay 0.0005;
            wait ()
          end
        end
      in
      wait ()

  let close t =
    Sdb_check.Mu.lock t.m;
    t.closed <- true;
    Condition.broadcast t.c;
    Sdb_check.Mu.unlock t.m
end

module Inproc = struct
  let pair ?(delay_s = 0.0) () =
    let a_to_b = Bqueue.create () and b_to_a = Bqueue.create () in
    let mk descr out inp =
      let timeout = ref None in
      {
        Transport.descr;
        send =
          (fun msg ->
            if delay_s > 0.0 then Thread.delay delay_s;
            Bqueue.push out msg);
        recv = (fun () -> Bqueue.pop ?timeout_s:!timeout inp);
        close =
          (fun () ->
            Bqueue.close out;
            Bqueue.close inp);
        set_recv_timeout = (fun v -> timeout := v);
      }
    in
    (mk "inproc:client" a_to_b b_to_a, mk "inproc:server" b_to_a a_to_b)
end

module Socket = struct
  type listener = {
    fd : Unix.file_descr;
    path : string;
    mutable stopping : bool;
    accept_thread : Thread.t option ref;
  }

  let read_exact fd n =
    let buf = Bytes.create n in
    let rec go got =
      if got = n then buf
      else
        match Unix.read fd buf got (n - got) with
        | 0 -> err "connection closed"
        | k -> go (got + k)
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          (* SO_RCVTIMEO expired with no (complete) data. *)
          err "%s" Transport.deadline_exceeded
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go got
        | exception Unix.Unix_error (e, _, _) ->
          err "socket read: %s" (Unix.error_message e)
    in
    go 0

  let write_all fd s =
    let n = String.length s in
    let rec go sent =
      if sent < n then
        match Unix.write_substring fd s sent (n - sent) with
        | 0 -> err "socket write returned 0"
        | k -> go (sent + k)
        | exception Unix.Unix_error (e, _, _) ->
          err "socket write: %s" (Unix.error_message e)
    in
    go 0

  let transport_of_fd descr fd =
    let closed = ref false in
    {
      Transport.descr;
      send =
        (fun msg ->
          if !closed then err "transport closed";
          let hdr = Bytes.create 4 in
          Bytes.set_int32_le hdr 0 (Int32.of_int (String.length msg));
          write_all fd (Bytes.unsafe_to_string hdr);
          write_all fd msg);
      recv =
        (fun () ->
          if !closed then err "transport closed";
          let hdr = read_exact fd 4 in
          let len = Int32.to_int (Bytes.get_int32_le hdr 0) in
          if len < 0 || len > 1 lsl 28 then err "implausible frame length %d" len;
          Bytes.unsafe_to_string (read_exact fd len));
      close =
        (fun () ->
          if not !closed then begin
            closed := true;
            try Unix.close fd with Unix.Unix_error (_, _, _) -> ()
          end);
      set_recv_timeout =
        (fun v ->
          if not !closed then
            try
              Unix.setsockopt_float fd Unix.SO_RCVTIMEO
                (match v with Some s when s > 0.0 -> s | _ -> 0.0)
            with Unix.Unix_error (e, _, _) ->
              err "socket set timeout: %s" (Unix.error_message e));
    }

  let listen ~path serve_conn =
    if Sys.file_exists path then
      (Unix.unlink path
      [@sdb.lint.allow
        "unix-io: removes a stale unix-domain socket, not a data file; Fs \
         decorates data-path I/O only"]);
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 16;
    let listener = { fd; path; stopping = false; accept_thread = ref None } in
    let accept_loop () =
      let rec go () =
        match Unix.accept fd with
        | conn_fd, _addr ->
          let t = transport_of_fd (Printf.sprintf "unix:%s" path) conn_fd in
          ignore
            (Thread.create
               (fun () ->
                 try serve_conn t
                 with Rpc_error _ -> t.Transport.close ())
               ()
              : Thread.t);
          go ()
        | exception
            Unix.Unix_error
              ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _) ->
          ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      in
      go ()
    in
    listener.accept_thread := Some (Thread.create accept_loop ());
    listener

  let connect ~path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with Unix.Unix_error (e, _, _) ->
       (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
       err "connect %s: %s" path (Unix.error_message e));
    transport_of_fd (Printf.sprintf "unix:%s" path) fd

  let shutdown l =
    if not l.stopping then begin
      l.stopping <- true;
      (* shutdown(2) wakes the blocked accept (close alone does not). *)
      (try Unix.shutdown l.fd Unix.SHUTDOWN_ALL with Unix.Unix_error (_, _, _) -> ());
      (match !(l.accept_thread) with Some t -> Thread.join t | None -> ());
      (try Unix.close l.fd with Unix.Unix_error (_, _, _) -> ());
      try Sys.remove l.path with Sys_error _ -> ()
    end
end

(* ------------------------------------------------------------------ *)
(* Server                                                              *)

module Server = struct
  type handler = { h_meth : string; h_run : string -> (string, string) result }

  (* Per-procedure series.  The label set is bounded by the handler
     list, never by client input: requests for unregistered procedures
     all land on the fixed "_unknown" series. *)
  let m_requests meth =
    Metrics.counter "sdb_rpc_requests_total"
      ~help:"RPC requests served, by procedure." ~labels:[ ("meth", meth) ]

  let m_latency meth =
    Metrics.histogram "sdb_rpc_latency_seconds"
      ~help:"Server-side handler latency, by procedure."
      ~labels:[ ("meth", meth) ]

  let m_errors meth =
    Metrics.counter "sdb_rpc_errors_total"
      ~help:"RPC requests answered with an error, by procedure."
      ~labels:[ ("meth", meth) ]

  (* One extra series merging every procedure, so a dashboard (or
     sdb_top) can read overall latency quantiles without trying to
     merge per-meth quantiles, which is not meaningful. *)
  let m_latency_all () = m_latency "_all"

  (* Server-wide request ids ("meth-N"): unique per process, attached
     to every span emitted while the handler runs (see
     Trace.with_request), so one slow RPC decomposes into its phases. *)
  let req_seq = Atomic.make 0

  let handler ~meth arg_codec ret_codec f =
    let run args =
      match P.decode_result arg_codec args with
      | Error m -> Error (Printf.sprintf "%s: bad argument: %s" meth m)
      | Ok a -> (
        match f a with
        | b -> Ok (P.encode ret_codec b)
        | exception e -> Error (Printf.sprintf "%s: %s" meth (Printexc.to_string e)))
    in
    { h_meth = meth; h_run = run }

  let serve ~handlers transport =
    let table = Hashtbl.create 16 in
    List.iter
      (fun h ->
        Hashtbl.replace table h.h_meth
          (h, m_requests h.h_meth, m_latency h.h_meth, m_errors h.h_meth))
      handlers;
    let unknown_requests = m_requests "_unknown" in
    let unknown_errors = m_errors "_unknown" in
    let latency_all = m_latency_all () in
    let rec loop () =
      match transport.Transport.recv () with
      | exception Rpc_error _ -> transport.Transport.close ()
      | msg ->
        let resp =
          match P.decode_result codec_request msg with
          | Error m ->
            Metrics.incr unknown_requests;
            Metrics.incr unknown_errors;
            { resp_id = -1; payload = Error ("undecodable request: " ^ m) }
          | Ok req -> (
            match Hashtbl.find_opt table req.meth with
            | None ->
              Metrics.incr unknown_requests;
              Metrics.incr unknown_errors;
              { resp_id = req.req_id; payload = Error ("unknown procedure " ^ req.meth) }
            | Some (h, mreq, mlat, merr) ->
              Metrics.incr mreq;
              let timed = Metrics.is_enabled () in
              let traced = Trace.active () in
              let handle () =
                let t0 = if timed || traced then Unix.gettimeofday () else 0.0 in
                let payload = h.h_run req.args in
                if timed || traced then begin
                  (* Clamped: a backward wall-clock step (NTP) must not
                     observe a negative latency. *)
                  let dt = Float.max 0.0 (Unix.gettimeofday () -. t0) in
                  if timed then begin
                    Metrics.observe mlat dt;
                    Metrics.observe latency_all dt
                  end;
                  if traced then
                    Trace.span "rpc.server"
                      ~attrs:
                        (("meth", req.meth)
                        ::
                        (match payload with
                        | Ok _ -> []
                        | Error e -> [ ("error", e) ]))
                      ~start_s:t0 ~dur_s:dt
                end;
                payload
              in
              let payload =
                if traced then
                  let rid =
                    Printf.sprintf "%s-%d" req.meth
                      (Atomic.fetch_and_add req_seq 1)
                  in
                  Trace.with_request rid handle
                else handle ()
              in
              (match payload with Error _ -> Metrics.incr merr | Ok _ -> ());
              { resp_id = req.req_id; payload })
        in
        (match transport.Transport.send (P.encode codec_response resp) with
        | () -> loop ()
        | exception Rpc_error _ -> transport.Transport.close ())
    in
    loop ()
end

(* ------------------------------------------------------------------ *)
(* Client                                                              *)

type retry_policy = {
  max_attempts : int;
  initial_backoff_s : float;
  backoff_multiplier : float;
  max_backoff_s : float;
  jitter : bool;
}

let no_retry =
  {
    max_attempts = 1;
    initial_backoff_s = 0.0;
    backoff_multiplier = 1.0;
    max_backoff_s = 0.0;
    jitter = false;
  }

let default_retry =
  {
    max_attempts = 3;
    initial_backoff_s = 0.02;
    backoff_multiplier = 2.0;
    max_backoff_s = 1.0;
    jitter = true;
  }

let backoff_of_retry r =
  {
    Backoff.initial_s = r.initial_backoff_s;
    multiplier = r.backoff_multiplier;
    max_s = r.max_backoff_s;
    jitter = r.jitter;
  }

module Client = struct
  let m_broken =
    Metrics.counter "sdb_rpc_clients_broken_total"
      ~help:"Clients poisoned by a transport failure or response desync."

  let m_retries =
    Metrics.counter "sdb_rpc_client_retries_total"
      ~help:"Idempotent calls re-attempted after a transport failure."

  let m_reconnects =
    Metrics.counter "sdb_rpc_client_reconnects_total"
      ~help:"Fresh transports established for a broken client."

  let m_budget_denied =
    Metrics.counter "sdb_rpc_client_retries_denied_total"
      ~help:"Retries refused because the shared retry budget was empty."

  type t = {
    mutable transport : Transport.t;
    deadline_s : float option;
    retry : retry_policy;
    retry_budget : Backoff.Budget.t;
    reconnect : (unit -> Transport.t) option;
    (* Held across the whole call, transport I/O included: that IS the
       per-connection serialization contract, so the engine-side
       no-mutex-during-io assertion is deliberately not applied to the
       RPC transport layer (DESIGN.md §5). *)
    mutex : Sdb_check.Mu.t;
    mutable next_id : int;
    mutable n_calls : int;
    mutable is_broken : bool;
    mutable closed : bool;
  }

  let create ?deadline_s ?(retry = no_retry)
      ?(retry_budget = Backoff.Budget.unlimited) ?reconnect transport =
    if retry.max_attempts < 1 then
      invalid_arg "Rpc.Client.create: retry.max_attempts must be >= 1";
    Backoff.validate (backoff_of_retry retry);
    transport.Transport.set_recv_timeout deadline_s;
    {
      transport;
      deadline_s;
      retry;
      retry_budget;
      reconnect;
      mutex = Sdb_check.Mu.make "rpc.client";
      next_id = 0;
      n_calls = 0;
      is_broken = false;
      closed = false;
    }

  (* Poison the client: after any transport error — a send failure, a
     recv failure or timeout, or a response whose id does not match —
     the connection may still carry a stale in-flight response, so no
     later call may reuse it.  The transport is closed; only a fresh
     one (via [reconnect]) can revive the client. *)
  let break_ t =
    if not t.is_broken then begin
      t.is_broken <- true;
      Metrics.incr m_broken;
      try t.transport.Transport.close () with Rpc_error _ -> ()
    end

  let ensure_connected t =
    if t.closed then err "client closed";
    if t.is_broken then
      match t.reconnect with
      | None -> err "client poisoned by an earlier transport failure"
      | Some fresh ->
        let transport = fresh () in
        transport.Transport.set_recv_timeout t.deadline_s;
        t.transport <- transport;
        t.is_broken <- false;
        Metrics.incr m_reconnects

  let attempt t ~meth arg_codec ret_codec a =
    ensure_connected t;
    let id = t.next_id in
    t.next_id <- id + 1;
    let req = { req_id = id; meth; args = P.encode arg_codec a } in
    (try t.transport.Transport.send (P.encode codec_request req)
     with e ->
       break_ t;
       raise e);
    let resp_msg =
      try t.transport.Transport.recv ()
      with e ->
        break_ t;
        raise e
    in
    t.n_calls <- t.n_calls + 1;
    Transport.count_trip ();
    match P.decode_result codec_response resp_msg with
    | Error m ->
      break_ t;
      err "undecodable response: %s" m
    | Ok resp ->
      if resp.resp_id <> id then begin
        break_ t;
        err "response id %d does not match request id %d (client poisoned)"
          resp.resp_id id
      end;
      (match resp.payload with
      | Error m -> err "server: %s" m
      | Ok bytes -> (
        match P.decode_result ret_codec bytes with
        | Error m -> err "undecodable result: %s" m
        | Ok v -> v))

  (* Retries are confined to transport-level failures (the client is
     broken afterwards) of calls declared idempotent; a server-side
     error returns at once, and a non-idempotent call is never
     re-sent — the first attempt may have executed.  Delays come from
     {!Backoff} (exponential, full jitter, capped) and each retry
     spends a token from the client's budget: when a partition heals,
     a fleet of poisoned clients must trickle back, not stampede. *)
  let call ?(idempotent = false) t ~meth arg_codec ret_codec a =
    Sdb_check.Mu.lock t.mutex;
    Fun.protect
      ~finally:(fun () -> Sdb_check.Mu.unlock t.mutex)
      (fun () ->
        let attempts = if idempotent then t.retry.max_attempts else 1 in
        let backoff = Backoff.start (backoff_of_retry t.retry) in
        let rec go n =
          match attempt t ~meth arg_codec ret_codec a with
          | v -> v
          | exception (Rpc_error _ as e)
            when t.is_broken && n < attempts && t.reconnect <> None ->
            if not (Backoff.Budget.try_spend t.retry_budget) then begin
              Metrics.incr m_budget_denied;
              raise e
            end;
            Metrics.incr m_retries;
            let delay = Backoff.next_s backoff in
            if delay > 0.0 then Thread.delay delay;
            go (n + 1)
        in
        go 1)

  let calls t = t.n_calls
  let broken t = t.is_broken

  let close t =
    t.closed <- true;
    t.transport.Transport.close ()
end
