module P = Sdb_pickle.Pickle
module Ns = Sdb_nameserver.Nameserver
module Ns_data = Sdb_nameserver.Ns_data

let codec_path = P.conv ~name:"ns.path" Fun.id Fun.id (P.list P.string)
let codec_value = P.option P.string
let codec_tree = Ns_data.codec_tree
let codec_update = Ns.codec_update

let codec_scrub_finding =
  P.record3 "ns.scrub_finding"
    (P.field "file" P.string (fun (f : Smalldb.scrub_finding) -> f.file))
    (P.field "offset" P.int (fun (f : Smalldb.scrub_finding) -> f.offset))
    (P.field "reason" P.string (fun (f : Smalldb.scrub_finding) -> f.reason))
    (fun file offset reason -> { Smalldb.file; offset; reason })

let codec_scrub_report =
  P.record5 "ns.scrub_report"
    (P.field "scanned_files" (P.list P.string) (fun (r : Smalldb.scrub_report) ->
         r.scanned_files))
    (P.field "findings" (P.list codec_scrub_finding)
       (fun (r : Smalldb.scrub_report) -> r.findings))
    (P.field "replay_consistent" P.bool (fun (r : Smalldb.scrub_report) ->
         r.replay_consistent))
    (P.field "repaired" P.bool (fun (r : Smalldb.scrub_report) -> r.repaired))
    (P.field "duration_s" P.float (fun (r : Smalldb.scrub_report) ->
         r.scrub_duration_s))
    (fun scanned_files findings replay_consistent repaired scrub_duration_s ->
      {
        Smalldb.scanned_files;
        findings;
        replay_consistent;
        repaired;
        scrub_duration_s;
      })

let codec_span =
  P.record4 "ns.span"
    (P.field "name" P.string (fun (s : Sdb_obs.Trace.span) -> s.name))
    (P.field "start_s" P.float (fun (s : Sdb_obs.Trace.span) -> s.start_s))
    (P.field "dur_s" P.float (fun (s : Sdb_obs.Trace.span) -> s.dur_s))
    (P.field "attrs"
       (P.list (P.pair P.string P.string))
       (fun (s : Sdb_obs.Trace.span) -> s.attrs))
    (fun name start_s dur_s attrs -> { Sdb_obs.Trace.name; start_s; dur_s; attrs })

let codec_health =
  P.variant ~name:"ns.health"
    [
      P.case0 "healthy" `Healthy (fun h -> h = `Healthy);
      P.case "degraded" P.string
        (function `Degraded r -> Some r | _ -> None)
        (fun r -> `Degraded r);
      P.case0 "poisoned" `Poisoned (fun h -> h = `Poisoned);
    ]

let handlers ns =
  let h = Rpc.Server.handler in
  (* Chunked-state cache for the resumable transfer verbs: the encoded
     snapshot at one LSN, kept per connection (handlers are built per
     [serve]) so repeated [fetch_chunk] calls do not re-pickle the
     whole tree.  A chunk request for a different LSN than the cached
     one re-snapshots; if the store has moved past the requested LSN
     the request is refused and the client restarts from fresh meta. *)
  let chunk_cache = ref None (* (lsn, digest, bytes) *) in
  let encoded_state () =
    let tree, lsn = Ns.snapshot_with_lsn ns in
    let bytes = P.encode codec_tree tree in
    let meta = (lsn, Digest.string bytes, bytes) in
    chunk_cache := Some meta;
    meta
  in
  [
    h ~meth:"lookup" codec_path codec_value (fun p -> Ns.lookup ns p);
    h ~meth:"exists" codec_path P.bool (fun p -> Ns.exists ns p);
    h ~meth:"list_children" codec_path
      (P.option (P.list P.string))
      (fun p -> Ns.list_children ns p);
    h ~meth:"export"
      (P.pair codec_path (P.option P.int))
      (P.option codec_tree)
      (fun (p, depth) ->
        match depth with None -> Ns.export ns p | Some d -> Ns.export ~depth:d ns p);
    h ~meth:"count_nodes" P.unit P.int (fun () -> Ns.count_nodes ns);
    h ~meth:"enumerate" codec_path
      (P.list (P.pair codec_path codec_value))
      (fun p -> Ns.enumerate ns p);
    h ~meth:"find" P.string
      (P.result (P.list (P.pair codec_path codec_value)) P.string)
      (fun pattern ->
        match Sdb_nameserver.Name_glob.compile pattern with
        | Ok glob -> Ok (Ns.find ns glob)
        | Error e -> Error e);
    h ~meth:"set_value" (P.pair codec_path codec_value) P.unit (fun (p, v) ->
        Ns.set_value ns p v);
    h ~meth:"write_subtree" (P.pair codec_path codec_tree) P.unit (fun (p, t) ->
        Ns.write_subtree ns p t);
    h ~meth:"delete_subtree" codec_path P.unit (fun p -> Ns.delete_subtree ns p);
    h ~meth:"create" codec_path P.unit (fun p -> Ns.create ns p);
    h ~meth:"cas"
      (P.triple codec_path codec_value codec_value)
      (P.result P.unit P.string)
      (fun (p, expected, v) -> Ns.compare_and_set ns p ~expected v);
    h ~meth:"lsn" P.unit P.int (fun () -> (Ns.stats ns).Smalldb.lsn);
    h ~meth:"snapshot" P.unit (P.pair codec_tree P.int) (fun () ->
        Ns.snapshot_with_lsn ns);
    h ~meth:"updates_since" P.int
      (P.option (P.list (P.pair P.int codec_update)))
      (fun from -> Ns.updates_since ns from);
    h ~meth:"checkpoint" P.unit P.unit (fun () -> Ns.checkpoint ns);
    h ~meth:"digest" P.unit P.string (fun () ->
        let tree, _lsn = Ns.snapshot_with_lsn ns in
        Digest.string (P.encode codec_tree tree));
    h ~meth:"metrics" P.unit P.string (fun () -> Sdb_obs.Metrics.render ());
    (* The last slow spans from the process-global ring (empty unless
       the server installed one); the argument narrows the query. *)
    h ~meth:"traces"
      (P.pair P.int P.float)
      (P.list codec_span)
      (fun (max_n, min_dur_s) -> Sdb_obs.Trace.Slow.recent ~min_dur_s ~max_n ());
    (* One atomic call: the digest is of exactly the returned tree, so
       a repairing replica can verify the transfer. *)
    h ~meth:"fetch_state"
      P.unit
      (P.triple codec_tree P.int P.string)
      (fun () ->
        let tree, lsn = Ns.snapshot_with_lsn ns in
        (tree, lsn, Digest.string (P.encode codec_tree tree)));
    h ~meth:"scrub" P.bool codec_scrub_report (fun repair -> Ns.scrub ~repair ns);
    h ~meth:"health" P.unit codec_health (fun () -> Ns.health ns);
    (* Heartbeat: the failure detector's probe.  Must stay the cheapest
       verb in the table (see {!Ns.ping}). *)
    h ~meth:"ping" P.unit P.int (fun () -> Ns.ping ns);
    (* Resumable state transfer: [fetch_meta] pins (lsn, digest, size);
       [fetch_chunk] returns byte ranges of that exact encoding, or
       [None] when the pinned LSN is no longer current — the client
       then restarts from fresh meta.  A repair interrupted by a
       connection reset resumes from the last byte it holds instead of
       re-shipping the whole state. *)
    h ~meth:"fetch_meta" P.unit
      (P.triple P.int P.string P.int)
      (fun () ->
        let lsn, digest, bytes = encoded_state () in
        (lsn, digest, String.length bytes));
    h ~meth:"fetch_chunk"
      (P.triple P.int P.int P.int)
      (P.option P.string)
      (fun (lsn, offset, len) ->
        if offset < 0 || len < 0 then None
        else
          let cached =
            match !chunk_cache with
            | Some ((l, _, _) as c) when l = lsn -> Some c
            | _ ->
              let (l, _, _) as c = encoded_state () in
              if l = lsn then Some c else None
          in
          match cached with
          | None -> None
          | Some (_, _, bytes) ->
            let total = String.length bytes in
            if offset > total then None
            else Some (String.sub bytes offset (min len (total - offset))));
  ]

let serve ns transport = Rpc.Server.serve ~handlers:(handlers ns) transport

module Client = struct
  type t = Rpc.Client.t

  let create ?deadline_s ?retry ?retry_budget ?reconnect transport =
    Rpc.Client.create ?deadline_s ?retry ?retry_budget ?reconnect transport

  let close = Rpc.Client.close
  let calls = Rpc.Client.calls
  let broken = Rpc.Client.broken
  let call = Rpc.Client.call

  (* Enquiries are read-only and the update procedures below are
     last-writer-wins assignments (the property §4 replication already
     relies on), so all of them are safe to re-send after a transport
     failure.  Only [cas] is genuinely non-idempotent. *)
  let lookup t p = call ~idempotent:true t ~meth:"lookup" codec_path codec_value p
  let exists t p = call ~idempotent:true t ~meth:"exists" codec_path P.bool p

  let list_children t p =
    call ~idempotent:true t ~meth:"list_children" codec_path
      (P.option (P.list P.string))
      p

  let export ?depth t p =
    call ~idempotent:true t ~meth:"export"
      (P.pair codec_path (P.option P.int))
      (P.option codec_tree) (p, depth)

  let count_nodes t = call ~idempotent:true t ~meth:"count_nodes" P.unit P.int ()

  let enumerate t p =
    call ~idempotent:true t ~meth:"enumerate" codec_path
      (P.list (P.pair codec_path codec_value))
      p

  let find t pattern =
    call ~idempotent:true t ~meth:"find" P.string
      (P.result (P.list (P.pair codec_path codec_value)) P.string)
      pattern

  let set_value t p v =
    call ~idempotent:true t ~meth:"set_value"
      (P.pair codec_path codec_value)
      P.unit (p, v)

  let write_subtree t p tree =
    call ~idempotent:true t ~meth:"write_subtree"
      (P.pair codec_path codec_tree)
      P.unit (p, tree)

  let delete_subtree t p =
    call ~idempotent:true t ~meth:"delete_subtree" codec_path P.unit p

  let create_name t p = call ~idempotent:true t ~meth:"create" codec_path P.unit p

  let compare_and_set t p ~expected v =
    call t ~meth:"cas"
      (P.triple codec_path codec_value codec_value)
      (P.result P.unit P.string)
      (p, expected, v)

  let lsn t = call ~idempotent:true t ~meth:"lsn" P.unit P.int ()

  let snapshot t =
    call ~idempotent:true t ~meth:"snapshot" P.unit (P.pair codec_tree P.int) ()

  let updates_since t from =
    call ~idempotent:true t ~meth:"updates_since" P.int
      (P.option (P.list (P.pair P.int codec_update)))
      from

  let checkpoint t = call t ~meth:"checkpoint" P.unit P.unit ()
  let digest t = call ~idempotent:true t ~meth:"digest" P.unit P.string ()
  let metrics t = call ~idempotent:true t ~meth:"metrics" P.unit P.string ()

  let traces t ~max_n ~min_dur_s =
    call ~idempotent:true t ~meth:"traces"
      (P.pair P.int P.float)
      (P.list codec_span) (max_n, min_dur_s)

  let fetch_state t =
    call ~idempotent:true t ~meth:"fetch_state" P.unit
      (P.triple codec_tree P.int P.string)
      ()

  (* [scrub] is read-only unless the server self-repairs, and a repeat
     repair is a no-op on an already-clean store — safe to re-send. *)
  let scrub t ~repair = call ~idempotent:true t ~meth:"scrub" P.bool codec_scrub_report repair
  let health t = call ~idempotent:true t ~meth:"health" P.unit codec_health ()
  let ping t = call ~idempotent:true t ~meth:"ping" P.unit P.int ()

  let fetch_meta t =
    call ~idempotent:true t ~meth:"fetch_meta" P.unit
      (P.triple P.int P.string P.int)
      ()

  let fetch_chunk t ~lsn ~offset ~len =
    call ~idempotent:true t ~meth:"fetch_chunk"
      (P.triple P.int P.int P.int)
      (P.option P.string) (lsn, offset, len)
end
