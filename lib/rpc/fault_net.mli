(** Fault-injecting decorator over any {!Rpc.Transport.t} — the network
    twin of {!Sdb_storage.Fault_fs}.

    PR 3 gave the disk a composable fault injector; this gives the
    network one.  A {e controller} holds the fault schedule; any number
    of transports (in-process pairs and Unix-socket connections alike)
    are wrapped against it, each tagged with an optional {e peer id} so
    partitions can target one replica while others stay reachable.
    Everything is seeded and deterministic: the netchaos suite sweeps
    seeds over it the way the disk chaos job sweeps {!Fault_fs}.

    Injectable faults, composable per message:

    - {b drop}: the message silently vanishes (the caller discovers it
      only through its recv deadline);
    - {b delay} (fixed + jittered) and a {b bandwidth cap} (bytes/s,
      sleeping proportionally to message size);
    - {b duplicate delivery}: the message is sent twice — exercising
      the response-desync → poison → reconnect path in {!Rpc.Client};
    - {b reorder}: the message is held back and sent after the next
      one on the same transport;
    - {b connection reset}: the operation raises and the wrapped
      transport is dead from then on (scheduled via {!fail_nth} or a
      seeded {!set_fault_rate}, like [Fault_fs.fail_nth]);
    - {b blackhole / partition}: all traffic to and from a peer id is
      silently discarded until {!heal} — sends vanish and receipts are
      suppressed, exactly a two-way IP blackhole, while the transport
      stays "connected".

    Faults are decided {e before} the wrapped operation runs; a reset
    never leaves a half-sent frame behind (the underlying transport is
    closed).  Everything not faulted passes straight through. *)

type t
(** Fault controller, shared by every transport wrapped against it. *)

type op = [ `Send | `Recv ]

val reset_message : string
(** The exact {!Rpc.Rpc_error} message of an injected connection
    reset, so tests and harnesses can tell injected faults from real
    ones. *)

val create : ?seed:int -> unit -> t
(** [seed] (default 0) drives every random choice (rates, jitter). *)

val wrap : t -> ?peer:string -> Rpc.Transport.t -> Rpc.Transport.t
(** Decorate a transport.  [peer] tags it for {!partition} targeting;
    an untagged transport is never partitioned but sees every other
    fault.  Wrapping is cheap; wrap each fresh transport (including
    reconnect-factory ones) so faults survive reconnection. *)

(** {1 Scheduled and random faults} *)

val fail_nth : t -> op:op -> n:int -> ?count:int -> unit -> unit
(** Counting from now across every wrapped transport, the [n]-th
    operation of kind [op] (1-based) and the [count - 1] (default 0)
    following ones raise a connection reset. *)

val set_fault_rate : t -> op:op -> float -> unit
(** Each operation of kind [op] independently resets with this
    probability.  [0.] (the default) disables. *)

val set_drop_rate : t -> float -> unit
(** Each sent message is silently discarded with this probability. *)

val set_dup_rate : t -> float -> unit
(** Each sent message is delivered twice with this probability. *)

val set_reorder_rate : t -> float -> unit
(** Each sent message is held back, with this probability, until the
    next send on the same transport (which overtakes it).  A held
    message is discarded if the transport closes first. *)

val set_delay : t -> ?jitter_s:float -> float -> unit
(** Sleep this long (plus uniform jitter in [\[0, jitter_s)]) before
    every send.  [0.] disables. *)

val set_bandwidth : t -> int option -> unit
(** Cap throughput: each send sleeps [length / bytes_per_s].  [None]
    (the default) disables. *)

(** {1 Partitions} *)

val partition : t -> string -> unit
(** Blackhole the peer: traffic on transports tagged with this peer id
    is discarded in both directions until {!heal}.  Idempotent. *)

val heal : t -> string -> unit
val heal_all : t -> unit
val partitioned : t -> string -> bool

(** {1 Introspection} *)

val ops : t -> op:op -> int
(** Operations of this kind intercepted so far. *)

val injected : t -> int
(** Total faults injected (drops, dups, reorders, resets, blackholed
    messages) — sleeps are not counted. *)

val clear : t -> unit
(** Drop every scheduled fault, rate, delay, cap, and partition. *)
