(** One retry policy for the whole tree: exponential backoff with full
    jitter and a global retry budget.

    Before this module, [Rpc.Client] had a bare exponential backoff and
    [Replica] had ad-hoc reconnect pacing; under a healing partition
    both would fire in lockstep across every client and peer — a retry
    storm exactly when the network is weakest.  Two mechanisms prevent
    that:

    - {b full jitter} (AWS-style): each delay is drawn uniformly from
      [\[0, base)], where [base] grows exponentially up to [max_s].
      Synchronized failures decorrelate instead of thundering back in
      phase.
    - {b a retry budget}: a token bucket shared by any number of
      retriers.  Each retry spends a token; when the bucket is empty
      the retry is denied and the caller fails fast, so a large fleet
      cannot multiply offered load during an outage.

    All timing uses the monotonic clock ({!Sdb_util.Mono}). *)

type policy = {
  initial_s : float;  (** first delay's base (>= 0) *)
  multiplier : float;  (** base growth per attempt (>= 1) *)
  max_s : float;  (** cap on the base *)
  jitter : bool;  (** full jitter: sample U[0, base) instead of base *)
}

val default : policy
(** 20 ms initial, doubling, capped at 1 s, jittered. *)

val validate : policy -> unit
(** Raises [Invalid_argument] on a malformed policy. *)

(** Token-bucket retry budget, shared across threads. *)
module Budget : sig
  type t

  val create : ?burst:float -> rate_per_s:float -> unit -> t
  (** [burst] (default [10. *. rate_per_s], at least 1) is the bucket
      capacity; tokens refill continuously at [rate_per_s]. *)

  val try_spend : t -> bool
  (** Take one token; [false] (retry denied) when the bucket is empty. *)

  val denied : t -> int
  (** Retries denied so far — exported to metrics by callers. *)

  val unlimited : t
  (** A budget that always grants (for callers that opt out). *)
end

type t
(** Mutable per-retry-sequence state: the current base delay. *)

val start : ?seed:int -> policy -> t
(** Begin a retry sequence.  [seed] fixes the jitter stream (tests);
    by default each sequence gets a distinct deterministic stream. *)

val next_s : t -> float
(** This attempt's delay in seconds (jittered if the policy says so),
    advancing the base for the next attempt. *)

val reset : t -> unit
(** Back to [initial_s] — call after a success so the next failure
    starts from a short delay again. *)

val base_s : t -> float
(** The current (unjittered) base, for introspection and tests. *)
