module Rng = Sdb_util.Rng
module Mono = Sdb_util.Mono

type policy = {
  initial_s : float;
  multiplier : float;
  max_s : float;
  jitter : bool;
}

let default = { initial_s = 0.02; multiplier = 2.0; max_s = 1.0; jitter = true }

let validate p =
  if p.initial_s < 0.0 then invalid_arg "Backoff: initial_s < 0";
  if p.multiplier < 1.0 then invalid_arg "Backoff: multiplier < 1";
  if p.max_s < 0.0 then invalid_arg "Backoff: max_s < 0"

module Budget = struct
  type t = {
    rate_per_s : float;  (* 0 = unlimited *)
    burst : float;
    m : Sdb_check.Mu.t;
    mutable tokens : float;
    mutable last_refill : float;  (* monotonic *)
    n_denied : int Atomic.t;
  }

  let create ?burst ~rate_per_s () =
    if rate_per_s <= 0.0 then invalid_arg "Backoff.Budget: rate_per_s <= 0";
    let burst =
      match burst with
      | Some b ->
        if b < 1.0 then invalid_arg "Backoff.Budget: burst < 1";
        b
      | None -> Float.max 1.0 (10.0 *. rate_per_s)
    in
    {
      rate_per_s;
      burst;
      m = Sdb_check.Mu.make "backoff.budget";
      tokens = burst;
      last_refill = Mono.now_s ();
      n_denied = Atomic.make 0;
    }

  let unlimited =
    {
      rate_per_s = 0.0;
      burst = 1.0;
      m = Sdb_check.Mu.make "backoff.budget.unlimited";
      tokens = 1.0;
      last_refill = 0.0;
      n_denied = Atomic.make 0;
    }

  let try_spend t =
    if t.rate_per_s <= 0.0 then true
    else
      Sdb_check.Mu.with_lock t.m (fun () ->
          let now = Mono.now_s () in
          let dt = Float.max 0.0 (now -. t.last_refill) in
          t.tokens <- Float.min t.burst (t.tokens +. (dt *. t.rate_per_s));
          t.last_refill <- now;
          if t.tokens >= 1.0 then begin
            t.tokens <- t.tokens -. 1.0;
            true
          end
          else begin
            ignore (Atomic.fetch_and_add t.n_denied 1 : int);
            false
          end)

  let denied t = Atomic.get t.n_denied
end

type t = { policy : policy; rng : Rng.t; mutable base : float }

(* Distinct deterministic jitter streams per sequence: a global counter
   folded into the seed, so two peers created back to back do not draw
   identical jitter and re-synchronize their retries. *)
let seq = Atomic.make 0

let start ?seed policy =
  validate policy;
  let seed =
    match seed with
    | Some s -> s
    | None -> 0x5db_0ff + Atomic.fetch_and_add seq 1
  in
  { policy; rng = Rng.create ~seed; base = Float.min policy.initial_s policy.max_s }

let next_s t =
  let base = t.base in
  t.base <- Float.min (t.base *. t.policy.multiplier) t.policy.max_s;
  if t.policy.jitter && base > 0.0 then Rng.float t.rng base else base

let reset t = t.base <- Float.min t.policy.initial_s t.policy.max_s
let base_s t = t.base
