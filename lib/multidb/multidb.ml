module P = Sdb_pickle.Pickle
module Fs = Sdb_storage.Fs
module Wal = Sdb_wal.Wal
module Vlock = Sdb_vlock.Vlock

type config = {
  log_switch_bytes : int;
  auto_checkpoint_round_robin : int option;
}

let default_config = { log_switch_bytes = 1 lsl 20; auto_checkpoint_round_robin = None }

type partition_stats = {
  p_index : int;
  p_checkpoint_version : int;
  p_checkpoint_lsn : int;
}

type stats = {
  partitions : int;
  lsn : int;
  log_generations : int;
  log_bytes : int;
  parts : partition_stats list;
  replayed : int;
}

(* ------------------------------------------------------------------ *)
(* On-disk names                                                       *)

let manifest_file = "manifest"
let newmanifest_file = "newmanifest"
let part_ckpt_file k v = Printf.sprintf "part%d-ckpt%d" k v
let shared_log_file g = Printf.sprintf "sharedlog%d" g

let parse_part_ckpt name =
  if String.length name > 4 && String.sub name 0 4 = "part" then
    match String.index_opt name '-' with
    | Some dash when String.length name > dash + 5 && String.sub name dash 5 = "-ckpt"
      -> (
      match
        ( int_of_string_opt (String.sub name 4 (dash - 4)),
          int_of_string_opt (String.sub name (dash + 5) (String.length name - dash - 5))
        )
      with
      | Some k, Some v -> Some (k, v)
      | _ -> None)
    | _ -> None
  else None

let parse_shared_log name =
  let prefix = "sharedlog" in
  let plen = String.length prefix in
  if String.length name > plen && String.sub name 0 plen = prefix then
    int_of_string_opt (String.sub name plen (String.length name - plen))
  else None

(* ------------------------------------------------------------------ *)
(* Manifest                                                            *)

type part_info = { pi_version : int; pi_lsn : int }

type manifest = {
  m_partitions : int;
  m_logs : (int * int) list;  (* (generation, base lsn), ascending *)
  m_parts : part_info list;
  m_rr : int;
}

let codec_part_info =
  P.record2 "multidb.part_info"
    (P.field "version" P.int (fun p -> p.pi_version))
    (P.field "lsn" P.int (fun p -> p.pi_lsn))
    (fun pi_version pi_lsn -> { pi_version; pi_lsn })

let codec_manifest =
  P.record4 "multidb.manifest"
    (P.field "partitions" P.int (fun m -> m.m_partitions))
    (P.field "logs" (P.list (P.pair P.int P.int)) (fun m -> m.m_logs))
    (P.field "parts" (P.list codec_part_info) (fun m -> m.m_parts))
    (P.field "rr" P.int (fun m -> m.m_rr))
    (fun m_partitions m_logs m_parts m_rr -> { m_partitions; m_logs; m_parts; m_rr })

(* Same discipline as the paper's version files: the committed manifest
   is [manifest]; a switch writes and syncs [newmanifest], then renames
   it into place.  A torn [newmanifest] fails its pickle header and is
   ignored. *)
let read_manifest fs file =
  if not (fs.Fs.exists file) then None
  else
    match Fs.read_file fs file with
    | exception Fs.Read_error _ -> None
    | exception Fs.Io_error _ -> None
    | blob -> (
      match P.of_string codec_manifest blob with Ok m -> Some m | Error _ -> None)

let commit_manifest fs m =
  Fs.write_file fs newmanifest_file (P.to_string codec_manifest m);
  fs.Fs.remove manifest_file;
  fs.Fs.rename newmanifest_file manifest_file

(* ------------------------------------------------------------------ *)

module Make (App : Smalldb.APP) = struct
  type part_meta = { pm_app : string; pm_part : int; pm_lsn : int }

  let codec_part_meta =
    P.record3 "multidb.part_meta"
      (P.field "app" P.string (fun m -> m.pm_app))
      (P.field "part" P.int (fun m -> m.pm_part))
      (P.field "lsn" P.int (fun m -> m.pm_lsn))
      (fun pm_app pm_part pm_lsn -> { pm_app; pm_part; pm_lsn })

  let codec_blob = P.pair codec_part_meta App.codec_state
  let codec_entry = P.pair P.int App.codec_update
  let entry_fp = P.fingerprint codec_entry

  type t = {
    fs : Fs.t;
    config : config;
    lock : Vlock.t;
    states : App.state array;
    mutable wal : Wal.Writer.t;
    mutable logs : (int * int) list;  (* live, ascending; last is current *)
    parts : part_info array;
    mutable lsn : int;
    mutable rr : int;
    mutable since_auto : int;
    mutable replayed : int;
    mutable closed : bool;
    mutable poisoned : bool;
  }

  exception Fail of string

  let failf fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

  let check_usable t =
    if t.closed then raise Smalldb.Closed;
    if t.poisoned then raise Smalldb.Poisoned

  let check_partition t k =
    if k < 0 || k >= Array.length t.states then
      invalid_arg (Printf.sprintf "Multidb: partition %d out of range" k)

  let manifest_of t =
    {
      m_partitions = Array.length t.states;
      m_logs = t.logs;
      m_parts = Array.to_list t.parts;
      m_rr = t.rr;
    }

  let part_blob t k =
    P.to_string codec_blob
      ({ pm_app = App.name; pm_part = k; pm_lsn = t.lsn }, t.states.(k))

  (* ---------------------------------------------------------------- *)
  (* Creation and recovery                                             *)

  let cleanup_stale fs m =
    let referenced name =
      match parse_part_ckpt name with
      | Some (k, v) -> (
        match List.nth_opt m.m_parts k with
        | Some pi -> pi.pi_version = v
        | None -> false)
      | None -> (
        match parse_shared_log name with
        | Some g -> List.mem_assoc g m.m_logs
        | None -> true (* foreign file: leave it alone *))
    in
    List.iter
      (fun name -> if not (referenced name) then fs.Fs.remove name)
      (fs.Fs.list_files ())

  let create_fresh fs config ~partitions =
    let states = Array.init partitions (fun _ -> App.init ()) in
    let parts = Array.make partitions { pi_version = 0; pi_lsn = 0 } in
    for k = 0 to partitions - 1 do
      Fs.write_file fs (part_ckpt_file k 0)
        (P.to_string codec_blob ({ pm_app = App.name; pm_part = k; pm_lsn = 0 }, states.(k)))
    done;
    let wal = Wal.Writer.create fs (shared_log_file 0) ~fingerprint:entry_fp in
    let m =
      { m_partitions = partitions; m_logs = [ (0, 0) ]; m_parts = Array.to_list parts; m_rr = 0 }
    in
    commit_manifest fs m;
    Ok
      {
        fs;
        config;
        lock = Vlock.create ();
        states;
        wal;
        logs = m.m_logs;
        parts;
        lsn = 0;
        rr = 0;
        since_auto = 0;
        replayed = 0;
        closed = false;
        poisoned = false;
      }

  let load_partition fs k (pi : part_info) =
    let file = part_ckpt_file k pi.pi_version in
    match Fs.read_file fs file with
    | exception Fs.Read_error { reason; _ } -> failf "%s unreadable: %s" file reason
    | exception (Fs.Io_error _ as e) -> failf "%s: %s" file (Fs.describe_exn e)
    | blob -> (
      match P.of_string codec_blob blob with
      | Error m -> failf "%s: %s" file m
      | Ok (meta, state) ->
        if meta.pm_app <> App.name then
          failf "%s belongs to application %S" file meta.pm_app;
        if meta.pm_part <> k then failf "%s holds partition %d" file meta.pm_part;
        if meta.pm_lsn <> pi.pi_lsn then
          failf "%s is at lsn %d, manifest says %d" file meta.pm_lsn pi.pi_lsn;
        state)

  (* Replay one shared-log generation, applying each entry to its
     partition when the partition's checkpoint has not absorbed it. *)
  let replay_log fs states parts ~log ~base ~last =
    match
      Wal.Reader.fold fs log ~fingerprint:entry_fp ~policy:Wal.Reader.Stop_at_damage
        ~init:0
        ~f:(fun applied entry ->
          let lsn = base + entry.Wal.Reader.index in
          let k, u = P.decode codec_entry entry.Wal.Reader.payload in
          if k < 0 || k >= Array.length states then
            failf "%s: entry for unknown partition %d" log k;
          if lsn >= parts.(k).pi_lsn then begin
            states.(k) <- App.apply states.(k) u;
            applied + 1
          end
          else applied)
    with
    | Error e -> failf "%a" (fun () -> Format.asprintf "%a" Wal.pp_error) e
    | Ok (applied, outcome) ->
      if (not last) && outcome.Wal.Reader.stopped_early <> None then
        failf "%s: damaged interior shared log" log;
      (applied, outcome)
    | exception P.Error m -> failf "%s: %s" log m

  let recover fs config ~partitions m ~finish_switch =
    if m.m_partitions <> partitions then
      failf "store has %d partitions, %d requested" m.m_partitions partitions;
    if List.length m.m_parts <> partitions then failf "manifest is inconsistent";
    let parts = Array.of_list m.m_parts in
    let states =
      Array.init partitions (fun k -> load_partition fs k parts.(k))
    in
    (* Replay the log chain, validating contiguity. *)
    let rec replay_chain replayed lsn = function
      | [] -> failf "manifest lists no logs"
      | [ (gen, base) ] ->
        if base <> lsn then failf "sharedlog%d base %d, expected %d" gen base lsn;
        let applied, outcome =
          replay_log fs states parts ~log:(shared_log_file gen) ~base ~last:true
        in
        if outcome.Wal.Reader.entries_beyond_damage > 0 then
          failf
            "sharedlog%d: interior damage with %d committed entries beyond it" gen
            outcome.Wal.Reader.entries_beyond_damage;
        let entries =
          outcome.Wal.Reader.entries_read + outcome.Wal.Reader.skipped
        in
        let wal =
          Wal.Writer.reopen fs (shared_log_file gen) ~fingerprint:entry_fp
            ~valid_length:outcome.Wal.Reader.valid_length ~entries
        in
        (replayed + applied, base + outcome.Wal.Reader.entries_read, wal)
      | (gen, base) :: ((_, next_base) :: _ as rest) ->
        if base <> lsn then failf "sharedlog%d base %d, expected %d" gen base lsn;
        let applied, outcome =
          replay_log fs states parts ~log:(shared_log_file gen) ~base ~last:false
        in
        if base + outcome.Wal.Reader.entries_read <> next_base then
          failf "sharedlog%d holds %d entries, next base is %d" gen
            outcome.Wal.Reader.entries_read next_base;
        replay_chain (replayed + applied) next_base rest
    in
    let replayed, lsn, wal = replay_chain 0 (snd (List.hd m.m_logs)) m.m_logs in
    if finish_switch then begin
      fs.Fs.remove manifest_file;
      fs.Fs.rename newmanifest_file manifest_file
    end
    else fs.Fs.remove newmanifest_file;
    cleanup_stale fs m;
    Ok
      {
        fs;
        config;
        lock = Vlock.create ();
        states;
        wal;
        logs = m.m_logs;
        parts;
        lsn;
        rr = m.m_rr;
        since_auto = 0;
        replayed;
        closed = false;
        poisoned = false;
      }

  let open_ ?(config = default_config) ~partitions fs =
    if partitions < 1 then invalid_arg "Multidb.open_: partitions must be positive";
    try
      match read_manifest fs newmanifest_file with
      | Some m -> recover fs config ~partitions m ~finish_switch:true
      | None -> (
        match read_manifest fs manifest_file with
        | Some m -> recover fs config ~partitions m ~finish_switch:false
        | None ->
          if fs.Fs.exists manifest_file then
            Error "multidb: manifest unreadable; restore from backup"
          else begin
            (* Uncommitted leftovers of a crashed creation are wiped. *)
            List.iter
              (fun name ->
                if parse_part_ckpt name <> None || parse_shared_log name <> None
                   || name = newmanifest_file
                then fs.Fs.remove name)
              (fs.Fs.list_files ());
            create_fresh fs config ~partitions
          end)
    with Fail m -> Error ("multidb: " ^ m)

  let open_exn ?config ~partitions fs =
    match open_ ?config ~partitions fs with Ok t -> t | Error e -> failwith e

  let partition_count t = Array.length t.states

  (* ---------------------------------------------------------------- *)
  (* Enquiries and updates                                             *)

  let query t ~partition f =
    check_usable t;
    check_partition t partition;
    Vlock.with_lock t.lock Vlock.Shared (fun () -> f t.states.(partition))

  (* One partition checkpoint + the log-flushing rules, under the
     update lock (owned by the caller). *)
  let checkpoint_locked t k =
    let v' = t.parts.(k).pi_version + 1 in
    let old_version = t.parts.(k).pi_version in
    (try
       Fs.write_file t.fs (part_ckpt_file k v') (part_blob t k);
       (* Switch shared-log generation when the current one is large. *)
       let switched =
         if Wal.Writer.length t.wal > t.config.log_switch_bytes then begin
           let cur_gen = fst (List.nth t.logs (List.length t.logs - 1)) in
           Wal.Writer.close t.wal;
           let wal' =
             Wal.Writer.create t.fs (shared_log_file (cur_gen + 1)) ~fingerprint:entry_fp
           in
           t.wal <- wal';
           t.logs <- t.logs @ [ (cur_gen + 1, t.lsn) ];
           true
         end
         else false
       in
       ignore (switched : bool);
       t.parts.(k) <- { pi_version = v'; pi_lsn = t.lsn };
       t.rr <- (k + 1) mod Array.length t.states;
       (* Flushing rule: drop leading generations every partition has
          checkpointed past. *)
       let min_lsn = Array.fold_left (fun acc p -> min acc p.pi_lsn) max_int t.parts in
       let rec split_dropped kept = function
         | (g, _b) :: (((_g2, b2) :: _) as rest) when b2 <= min_lsn ->
           split_dropped (g :: kept) rest
         | logs -> (List.rev kept, logs)
       in
       let dropped, live = split_dropped [] t.logs in
       t.logs <- live;
       commit_manifest t.fs (manifest_of t);
       (* Garbage after the commit point; recovery redoes it if we die. *)
       t.fs.Fs.remove (part_ckpt_file k old_version);
       List.iter (fun g -> t.fs.Fs.remove (shared_log_file g)) dropped
     with e ->
       t.poisoned <- true;
       raise e)

  let checkpoint_partition t k =
    check_usable t;
    check_partition t k;
    Vlock.with_lock t.lock Vlock.Update (fun () ->
        check_usable t;
        checkpoint_locked t k)

  let checkpoint_next t =
    check_usable t;
    let k = t.rr in
    checkpoint_partition t k

  let checkpoint_all t =
    for k = 0 to partition_count t - 1 do
      checkpoint_partition t k
    done

  let maybe_auto t =
    match t.config.auto_checkpoint_round_robin with
    | Some n when n > 0 ->
      t.since_auto <- t.since_auto + 1;
      if t.since_auto >= n then begin
        t.since_auto <- 0;
        checkpoint_next t
      end
    | Some _ | None -> ()

  let update_checked t ~partition ~precondition u =
    check_usable t;
    check_partition t partition;
    Vlock.acquire t.lock Vlock.Update;
    let verdict =
      match precondition t.states.(partition) with
      | Error e ->
        Vlock.release t.lock Vlock.Update;
        Error e
      | Ok () ->
        (try
           ignore
             (Wal.Writer.append_sync t.wal (P.encode codec_entry (partition, u))
               : int)
         with e ->
           t.poisoned <- true;
           Vlock.release t.lock Vlock.Update;
           raise e);
        Vlock.upgrade t.lock;
        (try t.states.(partition) <- App.apply t.states.(partition) u
         with e ->
           t.poisoned <- true;
           Vlock.release t.lock Vlock.Exclusive;
           raise e);
        t.lsn <- t.lsn + 1;
        Vlock.release t.lock Vlock.Exclusive;
        Ok ()
    in
    (match verdict with Ok () -> maybe_auto t | Error _ -> ());
    verdict

  let update t ~partition u =
    match update_checked t ~partition ~precondition:(fun _ -> Ok ()) u with
    | Ok () -> ()
    | Error _ -> assert false

  (* ---------------------------------------------------------------- *)

  let stats t =
    check_usable t;
    Vlock.with_lock t.lock Vlock.Shared (fun () ->
        let log_bytes =
          List.fold_left
            (fun acc (g, _) ->
              acc + (try t.fs.Fs.file_size (shared_log_file g) with Fs.Io_error _ -> 0))
            0 t.logs
        in
        {
          partitions = Array.length t.states;
          lsn = t.lsn;
          log_generations = List.length t.logs;
          log_bytes;
          parts =
            Array.to_list
              (Array.mapi
                 (fun i p ->
                   {
                     p_index = i;
                     p_checkpoint_version = p.pi_version;
                     p_checkpoint_lsn = p.pi_lsn;
                   })
                 t.parts);
          replayed = t.replayed;
        })

  let close t =
    if not t.closed then begin
      Vlock.acquire t.lock Vlock.Update;
      (* a non-Io_error exception from the WAL close must not strand the
         Update mode *)
      Fun.protect
        ~finally:(fun () -> Vlock.release t.lock Vlock.Update)
        (fun () ->
          t.closed <- true;
          try Wal.Writer.close t.wal with Fs.Io_error _ -> ())
    end
end
