let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let check_flat name =
  if String.contains name '/' || String.equal name ".." then
    Fs.io_fail ~op:"open" ~file:name "real_fs: invalid file name"

(* Carry the failing operation and errno up in structured form so the
   engine's failure taxonomy can classify the cause without string
   matching; a full device is its own exception so the clean-reject
   path can recognise it. *)
let wrap_unix ?file what f =
  try f ()
  with Unix.Unix_error (e, fn, arg) -> (
    match e with
    | Unix.ENOSPC ->
      raise
        (Fs.No_space
           { file = Option.value file ~default:arg; needed = 0; available = 0 })
    | _ ->
      Fs.io_fail ~op:what ?file ~errno:e
        (Printf.sprintf "real_fs: %s(%s)" fn arg))

let create ~root =
  mkdir_p root;
  let counters = Fs.Counters.create () in
  let path name =
    check_flat name;
    Filename.concat root name
  in
  let list_files () =
    Sys.readdir root |> Array.to_list
    |> List.filter (fun n -> not (Sys.is_directory (Filename.concat root n)))
    |> List.sort compare
  in
  let exists name = Sys.file_exists (path name) in
  let file_size name =
    wrap_unix ~file:name "file_size" (fun () ->
        (Unix.stat (path name)).Unix.st_size)
  in
  let open_reader name =
    let fd =
      wrap_unix ~file:name "open_reader" (fun () ->
          Unix.openfile (path name) [ Unix.O_RDONLY ] 0)
    in
    let size = (Unix.fstat fd).Unix.st_size in
    let closed = ref false in
    {
      Fs.r_file = name;
      r_size = size;
      r_read =
        (fun buf off len ->
          if !closed then
            Fs.io_fail ~op:"read" ~file:name "real_fs: reader used after close";
          wrap_unix ~file:name "read" (fun () -> Unix.read fd buf off len)
          |> fun n ->
          counters.data_reads <- counters.data_reads + 1;
          counters.bytes_read <- counters.bytes_read + n;
          n);
      r_seek =
        (fun target ->
          if !closed then
            Fs.io_fail ~op:"seek" ~file:name "real_fs: reader used after close";
          ignore
            (wrap_unix ~file:name "seek" (fun () ->
                 Unix.lseek fd target Unix.SEEK_SET)
              : int));
      r_close =
        (fun () ->
          if not !closed then begin
            closed := true;
            wrap_unix ~file:name "close" (fun () -> Unix.close fd)
          end);
    }
  in
  let writer_of_fd name fd =
    let closed = ref false in
    let check what =
      if !closed then
        Fs.io_fail ~op:what ~file:name "real_fs: writer used after close"
    in
    {
      Fs.w_file = name;
      w_write =
        (fun s ->
          check "write";
          let n = String.length s in
          let written =
            wrap_unix ~file:name "write" (fun () ->
                Unix.write_substring fd s 0 n)
          in
          if written <> n then
            Fs.io_fail ~op:"write" ~file:name "real_fs: short write";
          counters.data_writes <- counters.data_writes + 1;
          counters.bytes_written <- counters.bytes_written + n);
      w_sync =
        (fun () ->
          check "fsync";
          wrap_unix ~file:name "fsync" (fun () -> Unix.fsync fd);
          counters.syncs <- counters.syncs + 1);
      w_close =
        (fun () ->
          if not !closed then begin
            closed := true;
            wrap_unix ~file:name "close" (fun () -> Unix.close fd)
          end);
    }
  in
  let create_file name =
    let fd =
      wrap_unix ~file:name "create" (fun () ->
          Unix.openfile (path name) [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644)
    in
    counters.creates <- counters.creates + 1;
    writer_of_fd name fd
  in
  let open_append name =
    let fd =
      wrap_unix ~file:name "open_append" (fun () ->
          Unix.openfile (path name) [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644)
    in
    writer_of_fd name fd
  in
  let open_random name =
    let fd =
      wrap_unix ~file:name "open_random" (fun () ->
          Unix.openfile (path name) [ Unix.O_RDWR; Unix.O_CREAT ] 0o644)
    in
    counters.creates <- counters.creates + 1;
    let closed = ref false in
    let check what =
      if !closed then
        Fs.io_fail ~op:what ~file:name "real_fs: random handle used after close"
    in
    {
      Fs.rw_file = name;
      pread =
        (fun ~off buf pos n ->
          check "pread";
          ignore
            (wrap_unix ~file:name "seek" (fun () ->
                 Unix.lseek fd off Unix.SEEK_SET)
              : int);
          let got =
            wrap_unix ~file:name "pread" (fun () -> Unix.read fd buf pos n)
          in
          counters.data_reads <- counters.data_reads + 1;
          counters.bytes_read <- counters.bytes_read + got;
          got);
      pwrite =
        (fun ~off s ->
          check "pwrite";
          ignore
            (wrap_unix ~file:name "seek" (fun () ->
                 Unix.lseek fd off Unix.SEEK_SET)
              : int);
          let n = String.length s in
          let written =
            wrap_unix ~file:name "pwrite" (fun () ->
                Unix.write_substring fd s 0 n)
          in
          if written <> n then
            Fs.io_fail ~op:"pwrite" ~file:name "real_fs: short pwrite";
          counters.data_writes <- counters.data_writes + 1;
          counters.bytes_written <- counters.bytes_written + n);
      rw_sync =
        (fun () ->
          check "fsync";
          wrap_unix ~file:name "fsync" (fun () -> Unix.fsync fd);
          counters.syncs <- counters.syncs + 1);
      rw_size = (fun () -> (Unix.fstat fd).Unix.st_size);
      rw_close =
        (fun () ->
          if not !closed then begin
            closed := true;
            wrap_unix "close" (fun () -> Unix.close fd)
          end);
    }
  in
  let rename src dst =
    wrap_unix ~file:src "rename" (fun () -> Unix.rename (path src) (path dst));
    counters.renames <- counters.renames + 1
  in
  let remove name =
    if Sys.file_exists (path name) then begin
      wrap_unix ~file:name "remove" (fun () -> Unix.unlink (path name));
      counters.removes <- counters.removes + 1
    end
  in
  let truncate name len =
    let fd =
      wrap_unix ~file:name "truncate" (fun () ->
          Unix.openfile (path name) [ Unix.O_WRONLY ] 0)
    in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        wrap_unix ~file:name "truncate" (fun () -> Unix.ftruncate fd len));
    counters.data_writes <- counters.data_writes + 1
  in
  {
    Fs.fs_name = Printf.sprintf "dir:%s" root;
    list_files;
    exists;
    file_size;
    open_reader;
    create = create_file;
    open_append;
    open_random;
    rename;
    remove;
    truncate;
    counters;
  }
