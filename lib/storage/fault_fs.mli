(** Fault-injecting decorator over any {!Fs.t}.

    Wraps a file system (the in-memory {!Mem_fs} store or a real
    directory alike) and injects the "hard error" half of the paper's
    §4 failure model, deterministically:

    - scheduled one-shot faults: the [n]-th read / write / fsync raises
      {!Fs.Read_error} (reads) or {!Fs.Io_error} (writes, syncs) with a
      chosen errno, so transient ([EINTR]) and permanent ([EIO]) causes
      are distinguishable in structured form;
    - seed-driven random faults at a configurable per-operation rate —
      the chaos torture test sweeps seeds over this;
    - injected latency, to surface timing windows;
    - a byte-capacity budget: a write whose growth would exceed it
      raises {!Fs.No_space} {e before} reaching the underlying store
      (all-or-nothing, like {!Mem_fs.set_capacity}).

    Faults are injected {e before} the wrapped operation runs, so a
    faulted write never partially mutates the store.  Everything not
    faulted passes straight through, including the inner counters. *)

type op = [ `Read | `Write | `Sync ]
(** The three fault sites: data reads ([r_read]/[pread]), data writes
    ([w_write]/[pwrite]), and fsyncs ([w_sync]/[rw_sync]). *)

type t
(** Fault controller for one wrapped file system. *)

val wrap : ?seed:int -> Fs.t -> t * Fs.t
(** [wrap ?seed inner] returns the controller and the decorated view.
    [seed] (default 0) drives the random-rate fault choices only;
    scheduled faults are exact. *)

val fail_nth :
  t -> op:op -> n:int -> ?count:int -> ?errno:Unix.error -> unit -> unit
(** Schedule: counting from now, the [n]-th operation of kind [op] and
    the [count - 1] (default 0) following ones fail.  [errno] defaults
    to [EIO] (permanent); pass [EINTR] for a transient cause (see
    {!Fs.errno_transient}). *)

val set_fault_rate : t -> op:op -> float -> unit
(** Each operation of kind [op] independently fails with this
    probability (errno [EIO]), drawn from the seeded generator.
    [0.] (the default) disables. *)

val set_latency : t -> ?op:op -> float -> unit
(** Sleep this many seconds before every intercepted operation, or —
    with [~op] — only before operations of that one kind (e.g.
    [~op:`Sync] models a disk with a fast cache but a slow flush, the
    regime group commit is built for).  [0.] (the default) disables;
    calling without [~op] sets all three kinds at once. *)

val set_capacity : t -> int option -> unit
(** Byte budget across all files of the {e inner} store, measured by
    summing its file sizes.  Growth past the budget raises
    {!Fs.No_space} without touching the inner fs.  [None] disables. *)

val clear : t -> unit
(** Drop all scheduled faults, rates, latency, and capacity. *)

val ops : t -> op:op -> int
(** Operations of this kind seen so far (the fault-point space swept by
    the chaos test, mirroring {!Mem_fs.mutating_ops}). *)

val injected : t -> int
(** Total faults injected so far (scheduled + random + no-space). *)
