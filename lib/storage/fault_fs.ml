type op = [ `Read | `Write | `Sync ]

type fault = {
  f_op : op;
  f_at : int;  (* fires when the op counter reaches this value *)
  f_count : int;
  f_errno : Unix.error;
}

type t = {
  inner : Fs.t;
  rng : Random.State.t;
  lock : Sdb_check.Mu.t;
  mutable scheduled : fault list;
  mutable rate_read : float;
  mutable rate_write : float;
  mutable rate_sync : float;
  mutable lat_read : float;
  mutable lat_write : float;
  mutable lat_sync : float;
  mutable capacity : int option;
  mutable n_read : int;
  mutable n_write : int;
  mutable n_sync : int;
  mutable n_injected : int;
}

let locked t f = Sdb_check.Mu.with_lock t.lock f

let op_name = function `Read -> "read" | `Write -> "write" | `Sync -> "fsync"

let rate t = function
  | `Read -> t.rate_read
  | `Write -> t.rate_write
  | `Sync -> t.rate_sync

let bump t = function
  | `Read ->
    t.n_read <- t.n_read + 1;
    t.n_read
  | `Write ->
    t.n_write <- t.n_write + 1;
    t.n_write
  | `Sync ->
    t.n_sync <- t.n_sync + 1;
    t.n_sync

let inner_total_bytes t =
  List.fold_left
    (fun acc f -> acc + t.inner.Fs.file_size f)
    0
    (t.inner.Fs.list_files ())

(* Decide, under the lock, whether this operation faults.  Returns the
   errno to fail with, if any.  Faults fire before the wrapped call, so
   a faulted write never partially mutates the inner store. *)
let check t op =
  locked t (fun () ->
      let n = bump t op in
      let hit =
        List.find_opt
          (fun f -> f.f_op = op && n >= f.f_at && n < f.f_at + f.f_count)
          t.scheduled
      in
      match hit with
      | Some f ->
        t.n_injected <- t.n_injected + 1;
        Some f.f_errno
      | None ->
        let r = rate t op in
        if r > 0. && Random.State.float t.rng 1.0 < r then begin
          t.n_injected <- t.n_injected + 1;
          Some Unix.EIO
        end
        else None)

let latency t = function
  | `Read -> t.lat_read
  | `Write -> t.lat_write
  | `Sync -> t.lat_sync

let intercept t op ~file k =
  let lat = latency t op in
  if lat > 0. then Unix.sleepf lat;
  match check t op with
  | Some errno -> (
    match op with
    | `Read ->
      raise (Fs.Read_error { file; offset = -1; reason = "injected fault" })
    | (`Write | `Sync) as op ->
      Fs.io_fail ~op:(op_name op) ~file ~errno "fault_fs: injected fault")
  | None -> k ()

(* Charge [growth] bytes against the capacity budget (if any) before
   letting the write through. *)
let charge t ~file growth k =
  (match t.capacity with
  | Some cap when growth > 0 ->
    let used = inner_total_bytes t in
    if used + growth > cap then begin
      locked t (fun () -> t.n_injected <- t.n_injected + 1);
      raise
        (Fs.No_space { file; needed = growth; available = max 0 (cap - used) })
    end
  | _ -> ());
  k ()

let wrap ?(seed = 0) inner =
  let t =
    {
      inner;
      rng = Random.State.make [| seed; 0x4661756c |];
      lock = Sdb_check.Mu.make "storage.fault_fs";
      scheduled = [];
      rate_read = 0.;
      rate_write = 0.;
      rate_sync = 0.;
      lat_read = 0.;
      lat_write = 0.;
      lat_sync = 0.;
      capacity = None;
      n_read = 0;
      n_write = 0;
      n_sync = 0;
      n_injected = 0;
    }
  in
  let wrap_reader (r : Fs.reader) =
    {
      r with
      Fs.r_read =
        (fun buf pos len ->
          intercept t `Read ~file:r.Fs.r_file (fun () -> r.Fs.r_read buf pos len));
    }
  in
  let wrap_writer (w : Fs.writer) =
    (* appends grow the file by exactly the write's length *)
    {
      w with
      Fs.w_write =
        (fun s ->
          charge t ~file:w.Fs.w_file (String.length s) (fun () ->
              intercept t `Write ~file:w.Fs.w_file (fun () -> w.Fs.w_write s)));
      w_sync =
        (fun () ->
          intercept t `Sync ~file:w.Fs.w_file (fun () -> w.Fs.w_sync ()));
    }
  in
  let wrap_random (rw : Fs.random) =
    {
      rw with
      Fs.pread =
        (fun ~off buf pos len ->
          intercept t `Read ~file:rw.Fs.rw_file (fun () ->
              rw.Fs.pread ~off buf pos len));
      pwrite =
        (fun ~off s ->
          let growth = max 0 (off + String.length s - rw.Fs.rw_size ()) in
          charge t ~file:rw.Fs.rw_file growth (fun () ->
              intercept t `Write ~file:rw.Fs.rw_file (fun () ->
                  rw.Fs.pwrite ~off s)));
      rw_sync =
        (fun () ->
          intercept t `Sync ~file:rw.Fs.rw_file (fun () -> rw.Fs.rw_sync ()));
    }
  in
  let fs =
    {
      inner with
      Fs.fs_name = Printf.sprintf "fault(%s)" inner.Fs.fs_name;
      open_reader = (fun name -> wrap_reader (inner.Fs.open_reader name));
      create = (fun name -> wrap_writer (inner.Fs.create name));
      open_append = (fun name -> wrap_writer (inner.Fs.open_append name));
      open_random = (fun name -> wrap_random (inner.Fs.open_random name));
    }
  in
  (t, fs)

let fail_nth t ~op ~n ?(count = 1) ?(errno = Unix.EIO) () =
  if n < 1 || count < 1 then invalid_arg "Fault_fs.fail_nth";
  locked t (fun () ->
      let base = match op with `Read -> t.n_read | `Write -> t.n_write | `Sync -> t.n_sync in
      t.scheduled <-
        { f_op = op; f_at = base + n; f_count = count; f_errno = errno }
        :: t.scheduled)

let set_fault_rate t ~op r =
  if r < 0. || r > 1. then invalid_arg "Fault_fs.set_fault_rate";
  locked t (fun () ->
      match op with
      | `Read -> t.rate_read <- r
      | `Write -> t.rate_write <- r
      | `Sync -> t.rate_sync <- r)

let set_latency t ?op s =
  if s < 0. then invalid_arg "Fault_fs.set_latency";
  match op with
  | None ->
    t.lat_read <- s;
    t.lat_write <- s;
    t.lat_sync <- s
  | Some `Read -> t.lat_read <- s
  | Some `Write -> t.lat_write <- s
  | Some `Sync -> t.lat_sync <- s

let set_capacity t c =
  (match c with
  | Some c when c < 0 -> invalid_arg "Fault_fs.set_capacity"
  | _ -> ());
  t.capacity <- c

let clear t =
  locked t (fun () ->
      t.scheduled <- [];
      t.rate_read <- 0.;
      t.rate_write <- 0.;
      t.rate_sync <- 0.;
      t.lat_read <- 0.;
      t.lat_write <- 0.;
      t.lat_sync <- 0.;
      t.capacity <- None)

let ops t ~op =
  locked t (fun () ->
      match op with `Read -> t.n_read | `Write -> t.n_write | `Sync -> t.n_sync)

let injected t = locked t (fun () -> t.n_injected)
