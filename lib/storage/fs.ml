exception Read_error of { file : string; offset : int; reason : string }

exception
  Io_error of {
    op : string;
    file : string option;
    errno : Unix.error option;
    message : string;
  }

exception No_space of { file : string; needed : int; available : int }

let io_error ?(op = "") ?file ?errno message = Io_error { op; file; errno; message }
let io_fail ?op ?file ?errno message = raise (io_error ?op ?file ?errno message)

let errno_transient = function
  | Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK -> true
  | _ -> false

let describe_exn = function
  | Read_error { file; offset; reason } ->
    Printf.sprintf "read error in %s at offset %d: %s" file offset reason
  | Io_error { op; file; errno; message } ->
    let where = match file with Some f -> Printf.sprintf " on %s" f | None -> "" in
    let cause =
      match errno with
      | Some e -> Printf.sprintf " (%s)" (Unix.error_message e)
      | None -> ""
    in
    if op = "" then Printf.sprintf "i/o error%s: %s%s" where message cause
    else Printf.sprintf "%s failed%s: %s%s" op where message cause
  | No_space { file; needed; available } ->
    Printf.sprintf "no space on %s: %d bytes needed, %d available" file needed
      available
  | e -> Printexc.to_string e

module Counters = struct
  type t = {
    mutable data_writes : int;
    mutable bytes_written : int;
    mutable syncs : int;
    mutable data_reads : int;
    mutable bytes_read : int;
    mutable creates : int;
    mutable renames : int;
    mutable removes : int;
  }

  let create () =
    {
      data_writes = 0;
      bytes_written = 0;
      syncs = 0;
      data_reads = 0;
      bytes_read = 0;
      creates = 0;
      renames = 0;
      removes = 0;
    }

  let reset c =
    c.data_writes <- 0;
    c.bytes_written <- 0;
    c.syncs <- 0;
    c.data_reads <- 0;
    c.bytes_read <- 0;
    c.creates <- 0;
    c.renames <- 0;
    c.removes <- 0

  let copy c =
    {
      data_writes = c.data_writes;
      bytes_written = c.bytes_written;
      syncs = c.syncs;
      data_reads = c.data_reads;
      bytes_read = c.bytes_read;
      creates = c.creates;
      renames = c.renames;
      removes = c.removes;
    }

  let diff ~after ~before =
    {
      data_writes = after.data_writes - before.data_writes;
      bytes_written = after.bytes_written - before.bytes_written;
      syncs = after.syncs - before.syncs;
      data_reads = after.data_reads - before.data_reads;
      bytes_read = after.bytes_read - before.bytes_read;
      creates = after.creates - before.creates;
      renames = after.renames - before.renames;
      removes = after.removes - before.removes;
    }

  let pp ppf c =
    Format.fprintf ppf
      "writes=%d bytes_w=%d syncs=%d reads=%d bytes_r=%d creates=%d renames=%d removes=%d"
      c.data_writes c.bytes_written c.syncs c.data_reads c.bytes_read c.creates
      c.renames c.removes
end

type reader = {
  r_file : string;
  r_size : int;
  r_read : bytes -> int -> int -> int;
  r_seek : int -> unit;
  r_close : unit -> unit;
}

type writer = {
  w_file : string;
  w_write : string -> unit;
  w_sync : unit -> unit;
  w_close : unit -> unit;
}

type random = {
  rw_file : string;
  pread : off:int -> bytes -> int -> int -> int;
  pwrite : off:int -> string -> unit;
  rw_sync : unit -> unit;
  rw_size : unit -> int;
  rw_close : unit -> unit;
}

type t = {
  fs_name : string;
  list_files : unit -> string list;
  exists : string -> bool;
  file_size : string -> int;
  open_reader : string -> reader;
  create : string -> writer;
  open_append : string -> writer;
  open_random : string -> random;
  rename : string -> string -> unit;
  remove : string -> unit;
  truncate : string -> int -> unit;
  counters : Counters.t;
}

let read_file fs file =
  let r = fs.open_reader file in
  let buf = Buffer.create (max 64 r.r_size) in
  let chunk = Bytes.create 65536 in
  let rec go () =
    let n = r.r_read chunk 0 (Bytes.length chunk) in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    end
  in
  (try go ()
   with e ->
     r.r_close ();
     raise e);
  r.r_close ();
  Buffer.contents buf

let write_file fs file contents =
  let w = fs.create file in
  (try
     w.w_write contents;
     w.w_sync ()
   with e ->
     w.w_close ();
     raise e);
  w.w_close ()
