(** In-memory simulated file system with crash and media-fault injection.

    The store models exactly the disk behaviour the paper's reliability
    argument (§4) depends on:

    - data appended to a file is {e volatile} until [w_sync]; a crash
      discards volatile data — except that, page by page, the operating
      system may already have flushed some of it;
    - pages (sectors) are written atomically, but a page that was in
      flight at the instant of the crash may be {e torn}: reading it
      afterwards raises {!Fs.Read_error} ("a partially written page
      will report an error when it is read");
    - bytes that were covered by a completed fsync are never lost or
      damaged by a crash;
    - metadata operations (create, rename, remove) are atomic and
      immediately durable, like a journalled Unix file system;
    - media damage ("hard errors", §4) can be injected on any byte
      range; reads covering it raise {!Fs.Read_error}.

    Crashes are injected either explicitly ({!crash}) or by giving an
    operation budget ({!set_crash_after}): the [n]-th subsequent
    mutating operation raises {!Crash} {e before} executing, after
    applying crash semantics to the volatile state.  Sweeping [n]
    across a workload visits every crash point the engine can
    experience, which is how the E10 experiment and the recovery test
    suites work. *)

exception Crash
(** Raised by the operation that exhausts the crash budget. *)

type store

type crash_mode =
  | Clean
      (** every write since the covering fsync reverts to its
          pre-image; no torn pages — the kindest possible crash *)
  | Torn
      (** per dirty page, independently: the new bytes persist, revert
          to the pre-image, or tear (reads of the written range raise
          {!Fs.Read_error}).  Bytes not written since their covering
          fsync are always preserved; bytes {e overwritten in place}
          after an fsync are genuinely at risk. *)

val create_store : ?page_size:int -> ?seed:int -> unit -> store
(** [page_size] defaults to 512 (a 1987 disk sector); [seed] drives the
    deterministic choice of page fates in [Torn] crashes. *)

val fs : store -> Fs.t
(** The file-system view.  Valid across crashes (the "machine" reboots
    with the same disk); handles open at crash time are invalidated. *)

val set_crash_after : store -> ops:int -> mode:crash_mode -> unit
(** Arm the crash budget: the [ops]-th subsequent mutating operation
    (write, sync, create, rename, remove) crashes. *)

val disarm_crash : store -> unit

val crash : store -> mode:crash_mode -> unit
(** Apply crash semantics immediately. *)

val mutating_ops : store -> int
(** Mutating operations performed so far (the crash-point space). *)

val damage : store -> file:string -> offset:int -> len:int -> unit
(** Inject a hard error: subsequent reads covering the range raise
    {!Fs.Read_error}.  Raises {!Fs.Io_error} if the file is absent. *)

val total_bytes : store -> int
(** Sum of file sizes — disk-space accounting for E12. *)

val set_capacity : store -> int option -> unit
(** [set_capacity s (Some bytes)] caps the store at [bytes] total: a
    write whose growth would push {!total_bytes} over the budget raises
    {!Fs.No_space} {e before mutating anything} (all-or-nothing, so the
    engine can reject the one update cleanly).  [None] (the default)
    removes the limit.  Rewrites inside a file's current extent are
    always allowed — only growth is charged. *)

val file_names : store -> string list
