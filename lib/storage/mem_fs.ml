module Rng = Sdb_util.Rng

exception Crash

type crash_mode = Clean | Torn

(* A dirty page records the pre-image of its extent as of the last
   sync, plus the byte range written since.  At crash time each dirty
   page independently keeps the new bytes, reverts to the pre-image, or
   tears (the written range reads as an error).  Bytes never written
   since their covering sync are therefore always preserved — the
   fsync durability contract — while in-place overwrites genuinely put
   the old bytes at risk, which is the §2 fragility of ad-hoc schemes. *)
type dirty = {
  pre : Bytes.t;  (* page extent content at last sync (may be short) *)
  mutable wstart : int;  (* absolute offset of first byte written *)
  mutable wend : int;  (* absolute offset past last byte written *)
}

type file = {
  mutable data : Bytes.t;
  mutable len : int;
  mutable stable_len : int;
  dirty : (int, dirty) Hashtbl.t;
  mutable damaged : (int * int) list;  (* sorted disjoint ranges *)
}

type store = {
  files : (string, file) Hashtbl.t;
  counters : Fs.Counters.t;
  page_size : int;
  rng : Rng.t;
  mutable epoch : int;
  mutable ops : int;
  mutable crash_after : (int * crash_mode) option;
  mutable capacity : int option;  (* byte budget across all files *)
}

let create_store ?(page_size = 512) ?(seed = 0x5eed) () =
  if page_size <= 0 then invalid_arg "Mem_fs.create_store: page_size";
  {
    files = Hashtbl.create 16;
    counters = Fs.Counters.create ();
    page_size;
    rng = Rng.create ~seed;
    epoch = 0;
    ops = 0;
    crash_after = None;
    capacity = None;
  }

let mutating_ops t = t.ops

let total_bytes t = Hashtbl.fold (fun _ f acc -> acc + f.len) t.files 0

let set_capacity t capacity =
  (match capacity with
  | Some c when c < 0 -> invalid_arg "Mem_fs.set_capacity: negative capacity"
  | _ -> ());
  t.capacity <- capacity

let find t name =
  match Hashtbl.find_opt t.files name with
  | Some f -> f
  | None -> Fs.io_fail ~op:"open" ~file:name "mem_fs: no such file"

let new_file () =
  { data = Bytes.create 256; len = 0; stable_len = 0; dirty = Hashtbl.create 4; damaged = [] }

let add_damage f offset len =
  if len > 0 then f.damaged <- List.sort compare ((offset, len) :: f.damaged)

let clear_damage_from f offset =
  f.damaged <-
    List.filter_map
      (fun (o, l) ->
        if o >= offset then None
        else if o + l <= offset then Some (o, l)
        else Some (o, offset - o))
      f.damaged

let clear_damage_in f start stop =
  f.damaged <-
    List.concat_map
      (fun (o, l) ->
        let e = o + l in
        if e <= start || o >= stop then [ (o, l) ]
        else
          (if o < start then [ (o, start - o) ] else [])
          @ if e > stop then [ (stop, e - stop) ] else [])
      f.damaged

let ensure_capacity f needed =
  if needed > Bytes.length f.data then begin
    let cap = ref (max 256 (Bytes.length f.data)) in
    while !cap < needed do
      cap := !cap * 2
    done;
    let bigger = Bytes.create !cap in
    Bytes.blit f.data 0 bigger 0 f.len;
    f.data <- bigger
  end

(* Record the write [off, off+len) in the dirty-page map, capturing
   pre-images of pages touched for the first time since the last sync. *)
let mark_dirty t f off len =
  let first_page = off / t.page_size in
  let last_page = (off + len - 1) / t.page_size in
  for page = first_page to last_page do
    let d =
      match Hashtbl.find_opt f.dirty page with
      | Some d -> d
      | None ->
        let page_start = page * t.page_size in
        let extent = max 0 (min f.len ((page + 1) * t.page_size) - page_start) in
        let pre = Bytes.sub f.data page_start extent in
        let d = { pre; wstart = max_int; wend = 0 } in
        Hashtbl.replace f.dirty page d;
        d
    in
    let page_start = page * t.page_size in
    let page_end = (page + 1) * t.page_size in
    d.wstart <- min d.wstart (max off page_start);
    d.wend <- max d.wend (min (off + len) page_end)
  done

let do_pwrite t name f off s =
  let n = String.length s in
  if n > 0 then begin
    (* Disk-full is checked before anything mutates, so a [No_space]
       write is all-or-nothing — the property the engine's clean-reject
       path relies on. *)
    let growth = max 0 (off + n - f.len) in
    (match t.capacity with
    | Some cap when growth > 0 ->
      let used = total_bytes t in
      if used + growth > cap then
        raise
          (Fs.No_space
             { file = name; needed = growth; available = max 0 (cap - used) })
    | _ -> ());
    ensure_capacity f (off + n);
    if off > f.len then Bytes.fill f.data f.len (off - f.len) '\x00';
    mark_dirty t f off n;
    if off > f.len then mark_dirty t f f.len (off - f.len);
    Bytes.blit_string s 0 f.data off n;
    f.len <- max f.len (off + n);
    (* Writing over a previously damaged region heals it. *)
    clear_damage_in f off (off + n);
    t.counters.data_writes <- t.counters.data_writes + 1;
    t.counters.bytes_written <- t.counters.bytes_written + n
  end

let do_sync t f =
  f.stable_len <- f.len;
  Hashtbl.reset f.dirty;
  t.counters.syncs <- t.counters.syncs + 1

(* Crash semantics: resolve every dirty page.  [Clean] reverts all of
   them (pure pre-image restore, no damage); [Torn] draws a fate per
   page: keep / revert / tear. *)
let apply_crash t mode =
  let file_names =
    Hashtbl.fold (fun name _ acc -> name :: acc) t.files [] |> List.sort compare
  in
  List.iter
    (fun name ->
      let f = Hashtbl.find t.files name in
      let pages =
        Hashtbl.fold (fun page d acc -> (page, d) :: acc) f.dirty []
        |> List.sort compare
      in
      if pages <> [] then begin
        let fate_of _ = match mode with Clean -> `Old | Torn -> (
          match Rng.int t.rng 4 with 0 | 1 -> `New | 2 -> `Old | _ -> `Torn)
        in
        let fates = List.map (fun (page, d) -> (page, d, fate_of page)) pages in
        (* Pass 1: the surviving file length. *)
        let new_len =
          List.fold_left
            (fun acc (page, _d, fate) ->
              match fate with
              | `New | `Torn -> max acc (min f.len ((page + 1) * t.page_size))
              | `Old -> acc)
            f.stable_len fates
        in
        let new_len = min new_len f.len in
        (* Pass 2: page contents. *)
        List.iter
          (fun (page, d, fate) ->
            let page_start = page * t.page_size in
            let wstart = max d.wstart 0 in
            let wend = min d.wend new_len in
            if wend > wstart then
              match fate with
              | `New -> ()
              | `Torn -> add_damage f wstart (wend - wstart)
              | `Old ->
                let pre_end = page_start + Bytes.length d.pre in
                let restore_end = min wend pre_end in
                if restore_end > wstart then
                  Bytes.blit d.pre (wstart - page_start) f.data wstart
                    (restore_end - wstart);
                (* Written bytes past the pre-image extent were appends;
                   if a later page survived they are now garbage. *)
                if wend > max wstart pre_end then begin
                  let s = max wstart pre_end in
                  add_damage f s (wend - s)
                end)
          fates;
        f.len <- new_len;
        f.stable_len <- new_len;
        Hashtbl.reset f.dirty;
        clear_damage_from f new_len
      end)
    file_names;
  t.epoch <- t.epoch + 1;
  t.crash_after <- None

let crash t ~mode = apply_crash t mode

let set_crash_after t ~ops ~mode =
  if ops <= 0 then invalid_arg "Mem_fs.set_crash_after: ops must be positive";
  t.crash_after <- Some (ops, mode)

let disarm_crash t = t.crash_after <- None

(* Every mutating operation is a crash point.  When the budget runs
   out, the crash is applied *before* the operation takes effect and
   {!Crash} is raised out of the caller. *)
let mutating_op t =
  t.ops <- t.ops + 1;
  match t.crash_after with
  | None -> ()
  | Some (n, mode) ->
    if n <= 1 then begin
      apply_crash t mode;
      raise Crash
    end
    else t.crash_after <- Some (n - 1, mode)

let check_epoch t epoch what =
  if t.epoch <> epoch then
    Fs.io_fail ~op:what (Printf.sprintf "mem_fs: %s handle invalidated by crash" what)

let overlap_damage f pos n =
  List.fold_left
    (fun acc (o, l) ->
      if o + l <= pos || o >= pos + n then acc
      else
        match acc with
        | None -> Some o
        | Some o' -> Some (min o o'))
    None f.damaged

(* Positional read shared by sequential readers and random handles:
   stops short of damage, errors when positioned on it. *)
let do_pread t name f pos buf off n =
  if n < 0 || off < 0 || off + n > Bytes.length buf then
    invalid_arg "mem_fs: read out of range";
  if pos >= f.len then 0
  else begin
    let avail = min n (f.len - pos) in
    match overlap_damage f pos avail with
    | Some o when o <= pos ->
      raise (Fs.Read_error { file = name; offset = pos; reason = "damaged page" })
    | dmg ->
      let avail = match dmg with Some o -> o - pos | None -> avail in
      Bytes.blit f.data pos buf off avail;
      t.counters.data_reads <- t.counters.data_reads + 1;
      t.counters.bytes_read <- t.counters.bytes_read + avail;
      avail
  end

let open_reader t name =
  let f = find t name in
  let epoch = t.epoch in
  let pos = ref 0 in
  let closed = ref false in
  let check () =
    check_epoch t epoch "reader";
    if !closed then Fs.io_fail ~op:"read" ~file:name "mem_fs: reader used after close"
  in
  {
    Fs.r_file = name;
    r_size = f.len;
    r_read =
      (fun buf off n ->
        check ();
        let got = do_pread t name f !pos buf off n in
        pos := !pos + got;
        got);
    r_seek =
      (fun target ->
        check ();
        if target < 0 then invalid_arg "mem_fs: r_seek negative";
        pos := target);
    r_close = (fun () -> closed := true);
  }

let writer_of_file t name f =
  let epoch = t.epoch in
  let closed = ref false in
  let check what =
    check_epoch t epoch what;
    if !closed then Fs.io_fail ~op:what ~file:name "mem_fs: writer used after close"
  in
  {
    Fs.w_file = name;
    w_write =
      (fun s ->
        check "writer";
        mutating_op t;
        do_pwrite t name f f.len s);
    w_sync =
      (fun () ->
        check "writer";
        mutating_op t;
        do_sync t f);
    w_close = (fun () -> closed := true);
  }

let open_random_handle t name f =
  let epoch = t.epoch in
  let closed = ref false in
  let check what =
    check_epoch t epoch what;
    if !closed then Fs.io_fail ~op:what ~file:name "mem_fs: random handle used after close"
  in
  {
    Fs.rw_file = name;
    pread =
      (fun ~off buf pos n ->
        check "random";
        do_pread t name f off buf pos n);
    pwrite =
      (fun ~off s ->
        check "random";
        if off < 0 then invalid_arg "mem_fs: pwrite negative offset";
        mutating_op t;
        do_pwrite t name f off s);
    rw_sync =
      (fun () ->
        check "random";
        mutating_op t;
        do_sync t f);
    rw_size = (fun () -> f.len);
    rw_close = (fun () -> closed := true);
  }

let fs t =
  let list_files () =
    Hashtbl.fold (fun name _ acc -> name :: acc) t.files [] |> List.sort compare
  in
  let exists name = Hashtbl.mem t.files name in
  let file_size name = (find t name).len in
  let create name =
    mutating_op t;
    let f = new_file () in
    Hashtbl.replace t.files name f;
    t.counters.creates <- t.counters.creates + 1;
    writer_of_file t name f
  in
  let open_append name =
    match Hashtbl.find_opt t.files name with
    | Some f -> writer_of_file t name f
    | None -> create name
  in
  let open_random name =
    let f =
      match Hashtbl.find_opt t.files name with
      | Some f -> f
      | None ->
        mutating_op t;
        let f = new_file () in
        Hashtbl.replace t.files name f;
        t.counters.creates <- t.counters.creates + 1;
        f
    in
    open_random_handle t name f
  in
  let rename src dst =
    let f = find t src in
    mutating_op t;
    Hashtbl.remove t.files src;
    Hashtbl.replace t.files dst f;
    t.counters.renames <- t.counters.renames + 1
  in
  let remove name =
    if Hashtbl.mem t.files name then begin
      mutating_op t;
      Hashtbl.remove t.files name;
      t.counters.removes <- t.counters.removes + 1
    end
  in
  let truncate name len =
    let f = find t name in
    if len < 0 || len > f.len then
      Fs.io_fail ~op:"truncate" ~file:name
        (Printf.sprintf "mem_fs: truncate to %d out of range" len);
    mutating_op t;
    f.len <- len;
    f.stable_len <- min f.stable_len len;
    let doomed =
      Hashtbl.fold
        (fun page d acc ->
          if page * t.page_size >= len then page :: acc
          else begin
            d.wend <- min d.wend len;
            acc
          end)
        f.dirty []
    in
    List.iter (Hashtbl.remove f.dirty) doomed;
    clear_damage_from f len;
    t.counters.data_writes <- t.counters.data_writes + 1
  in
  {
    Fs.fs_name = "mem";
    list_files;
    exists;
    file_size;
    open_reader = (fun name -> open_reader t name);
    create;
    open_append;
    open_random;
    rename;
    remove;
    truncate;
    counters = t.counters;
  }

let damage t ~file ~offset ~len =
  let f = find t file in
  if offset < 0 || len < 0 || offset + len > f.len then
    invalid_arg "Mem_fs.damage: range outside file";
  add_damage f offset len

let file_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.files [] |> List.sort compare
