(** File-system abstraction used by the log and checkpoint machinery.

    The paper's design needs exactly four properties from its host file
    system (§3, §4):

    - appending to a file and forcing it with fsync is the commit point;
    - renaming a file is atomic with respect to crashes;
    - a page that was being written when the system stopped reports an
      error when read back (this is how partial log entries are
      detected);
    - files can be created, listed, and deleted.

    [Fs.t] captures those properties behind a record of operations so
    the engine runs identically over a real directory ({!Real_fs}) and
    over the simulated, fault-injectable store ({!Mem_fs}) that the
    crash-recovery tests and the 1987 cost model use. *)

exception Read_error of { file : string; offset : int; reason : string }
(** A damaged or torn region was read.  Matches the paper's assumption
    that disks "give either correct data or an error". *)

exception
  Io_error of {
    op : string;  (** the failing operation ("write", "fsync", "open", …) *)
    file : string option;
    errno : Unix.error option;
        (** the underlying cause when one is known (real or injected),
            so callers can classify transient vs permanent failures
            without string matching *)
    message : string;
  }
(** Any other failure: missing file, handle used after close or crash,
    a device error.  Construct with {!io_error} / {!io_fail}. *)

exception No_space of { file : string; needed : int; available : int }
(** The write would exceed the store's byte-capacity budget (disk
    full).  Guaranteed all-or-nothing by {!Mem_fs} and {!Fault_fs}: the
    failing write left the file exactly as it was, so the engine can
    reject the one update cleanly instead of poisoning itself. *)

val io_error :
  ?op:string -> ?file:string -> ?errno:Unix.error -> string -> exn
(** Build an {!Io_error} ([op] defaults to [""]). *)

val io_fail : ?op:string -> ?file:string -> ?errno:Unix.error -> string -> 'a
(** [raise (io_error …)]. *)

val errno_transient : Unix.error -> bool
(** True for errnos that name a retryable condition ([EINTR], [EAGAIN],
    [EWOULDBLOCK]) rather than a sick device. *)

val describe_exn : exn -> string
(** One-line rendering of {!Read_error} / {!Io_error} / {!No_space}
    (falls back to [Printexc.to_string]). *)

module Counters : sig
  (** Disk-operation accounting.  The cost model converts these into
      modelled 1987 times; benches reset them around measured
      sections. *)

  type t = {
    mutable data_writes : int;  (** write calls on file handles *)
    mutable bytes_written : int;
    mutable syncs : int;  (** fsync calls *)
    mutable data_reads : int;
    mutable bytes_read : int;
    mutable creates : int;
    mutable renames : int;
    mutable removes : int;
  }

  val create : unit -> t
  val reset : t -> unit
  val copy : t -> t
  val diff : after:t -> before:t -> t
  val pp : Format.formatter -> t -> unit
end

type reader = {
  r_file : string;
  r_size : int;
  r_read : bytes -> int -> int -> int;
      (** [r_read buf pos len] reads up to [len] bytes sequentially;
          returns 0 at end of file.  Raises {!Read_error} when the next
          bytes lie in a damaged region. *)
  r_seek : int -> unit;
      (** Absolute reposition; used to skip past damaged log entries. *)
  r_close : unit -> unit;
}

type writer = {
  w_file : string;
  w_write : string -> unit;  (** append *)
  w_sync : unit -> unit;  (** force to stable storage *)
  w_close : unit -> unit;
}

type random = {
  rw_file : string;
  pread : off:int -> bytes -> int -> int -> int;
      (** positional read; 0 at EOF; raises {!Read_error} on damage *)
  pwrite : off:int -> string -> unit;
      (** positional overwrite/extend (zero-fills any gap); volatile
          until [rw_sync] — and, unlike appends, an in-place overwrite
          puts the {e old} bytes at risk in a crash, which is exactly
          the fragility §2 attributes to ad-hoc update-in-place
          schemes *)
  rw_sync : unit -> unit;
  rw_size : unit -> int;
  rw_close : unit -> unit;
}

type t = {
  fs_name : string;
  list_files : unit -> string list;
  exists : string -> bool;
  file_size : string -> int;
  open_reader : string -> reader;
  create : string -> writer;  (** create or truncate *)
  open_append : string -> writer;  (** create if missing *)
  open_random : string -> random;  (** create if missing *)
  rename : string -> string -> unit;  (** atomic, replaces destination *)
  remove : string -> unit;  (** idempotent *)
  truncate : string -> int -> unit;
      (** [truncate file len] cuts the file to [len] bytes; used after
          recovery to drop a torn log tail before appending resumes. *)
  counters : Counters.t;
}

val read_file : t -> string -> string
(** Whole-file read.  Raises {!Read_error} or {!Io_error}. *)

val write_file : t -> string -> string -> unit
(** Create, write, sync, close. *)
