module P = Sdb_pickle.Pickle

type node = { mutable value : string option; children : (string, node) Hashtbl.t }

type tree = Tree of { tvalue : string option; tchildren : (string * tree) list }

let codec_node =
  P.mu "ns.node" (fun self ->
      P.record2 "ns.node"
        (P.field "value" (P.option P.string) (fun n -> n.value))
        (P.field "children" (P.hashtbl P.string self) (fun n -> n.children))
        (fun value children -> { value; children }))

let codec_tree =
  P.mu "ns.tree" (fun self ->
      P.record2 "ns.tree"
        (P.field "value" (P.option P.string) (fun (Tree t) -> t.tvalue))
        (P.field "children" (P.list (P.pair P.string self)) (fun (Tree t) -> t.tchildren))
        (fun tvalue tchildren -> Tree { tvalue; tchildren }))

let empty_node () = { value = None; children = Hashtbl.create 8 }
let leaf v = Tree { tvalue = v; tchildren = [] }

let sort_children cs = List.sort (fun (a, _) (b, _) -> String.compare a b) cs

let tree ?value children = Tree { tvalue = value; tchildren = sort_children children }

let rec find node = function
  | [] -> Some node
  | c :: rest -> (
    match Hashtbl.find_opt node.children c with
    | None -> None
    | Some child -> find child rest)

let mem node path = find node path <> None

let rec ensure node = function
  | [] -> node
  | c :: rest ->
    let child =
      match Hashtbl.find_opt node.children c with
      | Some child -> child
      | None ->
        let child = empty_node () in
        Hashtbl.replace node.children c child;
        child
    in
    ensure child rest

let set_value node path v =
  let n = ensure node path in
  n.value <- v

let delete_subtree node path =
  match path with
  | [] ->
    node.value <- None;
    Hashtbl.reset node.children
  | _ -> (
    match Name_path.parent path, Name_path.basename path with
    | Some parent_path, Some base -> (
      match find node parent_path with
      | None -> ()
      | Some parent -> Hashtbl.remove parent.children base)
    | _ -> assert false (* non-root paths always split *))

let rec materialize (Tree t) =
  let node = { value = t.tvalue; children = Hashtbl.create 8 } in
  List.iter
    (fun (label, sub) -> Hashtbl.replace node.children label (materialize sub))
    t.tchildren;
  node

let graft node path tr =
  match path with
  | [] ->
    let fresh = materialize tr in
    node.value <- fresh.value;
    Hashtbl.reset node.children;
    Hashtbl.iter (fun k v -> Hashtbl.replace node.children k v) fresh.children
  | _ -> (
    match Name_path.parent path, Name_path.basename path with
    | Some parent_path, Some base ->
      let parent = ensure node parent_path in
      Hashtbl.replace parent.children base (materialize tr)
    | _ -> assert false)

let rec snapshot ?depth node =
  let descend =
    match depth with
    | None -> Some None
    | Some 0 -> None
    | Some d -> Some (Some (d - 1))
  in
  let children =
    match descend with
    | None -> []
    | Some depth ->
      Hashtbl.fold
        (fun label child acc -> (label, (match depth with
           | None -> snapshot child
           | Some d -> snapshot ~depth:d child)) :: acc)
        node.children []
      |> sort_children
  in
  Tree { tvalue = node.value; tchildren = children }

let fold_bindings ?(prune = fun _ -> true) node ~init ~f =
  let rec go prefix node acc =
    let children =
      Hashtbl.fold (fun label child acc -> (label, child) :: acc) node.children []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    List.fold_left
      (fun acc (label, child) ->
        let path = prefix @ [ label ] in
        if prune path then go path child (f acc path child.value) else acc)
      acc children
  in
  go [] node init

let rec count_nodes node =
  Hashtbl.fold (fun _ child acc -> acc + count_nodes child) node.children 1

let rec weight_bytes node =
  let own = match node.value with None -> 0 | Some v -> String.length v in
  Hashtbl.fold
    (fun label child acc -> acc + String.length label + weight_bytes child)
    node.children own

let rec equal_tree (Tree a) (Tree b) =
  Option.equal String.equal a.tvalue b.tvalue
  && List.length a.tchildren = List.length b.tchildren
  && List.for_all2
       (fun (la, ta) (lb, tb) -> String.equal la lb && equal_tree ta tb)
       (sort_children a.tchildren) (sort_children b.tchildren)

let equal_node a b = equal_tree (snapshot a) (snapshot b)

(* ------------------------------------------------------------------ *)
(* Persistent representation                                           *)

module Smap = Map.Make (String)

type pnode = { pvalue : string option; pchildren : pnode Smap.t }

let empty_pnode = { pvalue = None; pchildren = Smap.empty }

let rec pfind n = function
  | [] -> Some n
  | c :: rest -> (
    match Smap.find_opt c n.pchildren with
    | None -> None
    | Some child -> pfind child rest)

let pmem n path = pfind n path <> None

let rec pensure n = function
  | [] -> n
  | c :: rest ->
    let child =
      Option.value (Smap.find_opt c n.pchildren) ~default:empty_pnode
    in
    { n with pchildren = Smap.add c (pensure child rest) n.pchildren }

let rec pset_value n path v =
  match path with
  | [] -> { n with pvalue = v }
  | c :: rest ->
    let child =
      Option.value (Smap.find_opt c n.pchildren) ~default:empty_pnode
    in
    { n with pchildren = Smap.add c (pset_value child rest v) n.pchildren }

(* Like the mutable [delete_subtree]: no intermediate creation — an
   absent path is a no-op, deleting the root empties it. *)
let pdelete_subtree n path =
  match path with
  | [] -> empty_pnode
  | _ ->
    let rec go n = function
      | [] -> assert false (* non-empty by the match above *)
      | [ base ] -> { n with pchildren = Smap.remove base n.pchildren }
      | c :: rest -> (
        match Smap.find_opt c n.pchildren with
        | None -> n
        | Some child ->
          { n with pchildren = Smap.add c (go child rest) n.pchildren })
    in
    go n path

let rec pof_tree (Tree t) =
  {
    pvalue = t.tvalue;
    pchildren =
      List.fold_left
        (fun m (label, sub) -> Smap.add label (pof_tree sub) m)
        Smap.empty t.tchildren;
  }

let pgraft n path tr =
  match path with
  | [] -> pof_tree tr
  | _ ->
    let rec go n = function
      | [] -> assert false
      | [ base ] -> { n with pchildren = Smap.add base (pof_tree tr) n.pchildren }
      | c :: rest ->
        let child =
          Option.value (Smap.find_opt c n.pchildren) ~default:empty_pnode
        in
        { n with pchildren = Smap.add c (go child rest) n.pchildren }
    in
    go n path

let rec psnapshot ?depth n =
  let descend =
    match depth with
    | None -> Some None
    | Some 0 -> None
    | Some d -> Some (Some (d - 1))
  in
  let children =
    match descend with
    | None -> []
    | Some depth ->
      (* Map bindings come out sorted, which is the tree invariant. *)
      Smap.fold
        (fun label child acc ->
          ( label,
            match depth with
            | None -> psnapshot child
            | Some d -> psnapshot ~depth:d child )
          :: acc)
        n.pchildren []
      |> List.rev
  in
  Tree { tvalue = n.pvalue; tchildren = children }

(* The pickle goes through the sorted exchange tree, so equal stores
   give equal checkpoint bytes — canonical by construction, where the
   raw hashtbl pickle of [codec_node] is insertion-ordered. *)
let codec_pnode =
  P.conv ~name:"ns.pnode" (fun n -> psnapshot n) pof_tree codec_tree

let pchildren_labels n = Smap.fold (fun l _ acc -> l :: acc) n.pchildren [] |> List.rev

let pfold_bindings ?(prune = fun _ -> true) n ~init ~f =
  let rec go prefix n acc =
    Smap.fold
      (fun label child acc ->
        let path = prefix @ [ label ] in
        if prune path then go path child (f acc path child.pvalue) else acc)
      n.pchildren acc
  in
  go [] n init

let rec pcount_nodes n =
  Smap.fold (fun _ child acc -> acc + pcount_nodes child) n.pchildren 1

let rec pweight_bytes n =
  let own = match n.pvalue with None -> 0 | Some v -> String.length v in
  Smap.fold
    (fun label child acc -> acc + String.length label + pweight_bytes child)
    n.pchildren own

let rec pp_tree ppf (Tree t) =
  Format.fprintf ppf "@[<hv 2>{";
  (match t.tvalue with
  | Some v -> Format.fprintf ppf "=%S" v
  | None -> ());
  List.iter
    (fun (label, sub) -> Format.fprintf ppf "@ %s:%a" label pp_tree sub)
    t.tchildren;
  Format.fprintf ppf "}@]"
