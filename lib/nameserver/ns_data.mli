(** The name server's in-memory data structure and its pure operations.

    "The virtual memory data structure for the name server's database
    consists primarily of a tree of hash tables.  The tables are
    indexed by strings, and deliver values that are further hash
    tables" (§3).  Each node additionally carries an optional string
    value, so the structure is a general name-to-value mapping whose
    values are trees with string-labelled arcs. *)

type node = {
  mutable value : string option;
  children : (string, node) Hashtbl.t;
}
(** The live, mutable representation. *)

type tree = Tree of { tvalue : string option; tchildren : (string * tree) list }
(** The immutable exchange representation used in update parameters,
    exports, and over RPC.  Children are kept sorted by label so equal
    trees have equal pickles. *)

val codec_node : node Sdb_pickle.Pickle.t
val codec_tree : tree Sdb_pickle.Pickle.t

val empty_node : unit -> node
val leaf : string option -> tree
val tree : ?value:string -> (string * tree) list -> tree

(** {1 Navigation} *)

val find : node -> Name_path.t -> node option
val mem : node -> Name_path.t -> bool
val ensure : node -> Name_path.t -> node
(** Find the node, creating missing intermediate nodes (valueless). *)

(** {1 Mutation (used by [apply])} *)

val set_value : node -> Name_path.t -> string option -> unit
val delete_subtree : node -> Name_path.t -> unit
(** Deleting the root clears it; deleting an absent path is a no-op. *)

val graft : node -> Name_path.t -> tree -> unit
(** Replace the subtree at the path with a materialization of [tree],
    creating intermediates. *)

(** {1 Conversion} *)

val materialize : tree -> node
val snapshot : ?depth:int -> node -> tree
(** [depth] bounds descent; [depth:0] is just the node's value. *)

(** {1 Enumeration} *)

val fold_bindings :
  ?prune:(Name_path.t -> bool) -> node ->
  init:'acc -> f:('acc -> Name_path.t -> string option -> 'acc) -> 'acc
(** Depth-first fold over every node (root excluded), visiting children
    in sorted label order.  [prune p] returning [false] skips the node
    at [p] and its whole subtree — how glob search avoids walking the
    world. *)

(** {1 Measures and comparison} *)

val count_nodes : node -> int
val weight_bytes : node -> int
(** Rough memory footprint: labels + values, for benchmark sizing. *)

(** {1 Persistent representation}

    The path-copied form the engine's state actually uses: an update
    builds the next version by copying only the path it touches
    (O(depth · log fanout)), sharing every untouched subtree with the
    previous version.  That makes versions immutable — the property
    the epoch-published read path ([Sdb_epoch]) and concurrent
    checkpoints rely on: a published root can be read from any domain
    with no lock while the writer builds its successor. *)

module Smap : Map.S with type key = string

type pnode = { pvalue : string option; pchildren : pnode Smap.t }

val empty_pnode : pnode
val codec_pnode : pnode Sdb_pickle.Pickle.t
(** Pickles through the sorted exchange {!tree}, so equal stores give
    equal bytes (canonical, unlike the insertion-ordered
    {!codec_node}). *)

val pfind : pnode -> Name_path.t -> pnode option
val pmem : pnode -> Name_path.t -> bool

val pensure : pnode -> Name_path.t -> pnode
(** The root with the path present (valueless intermediates created). *)

val pset_value : pnode -> Name_path.t -> string option -> pnode
val pdelete_subtree : pnode -> Name_path.t -> pnode
(** Deleting the root empties it; an absent path is a no-op. *)

val pgraft : pnode -> Name_path.t -> tree -> pnode
val pof_tree : tree -> pnode
val psnapshot : ?depth:int -> pnode -> tree

val pchildren_labels : pnode -> string list
(** Sorted. *)

val pfold_bindings :
  ?prune:(Name_path.t -> bool) -> pnode ->
  init:'acc -> f:('acc -> Name_path.t -> string option -> 'acc) -> 'acc
(** Like {!fold_bindings}, over the persistent form. *)

val pcount_nodes : pnode -> int
val pweight_bytes : pnode -> int

val equal_tree : tree -> tree -> bool
val equal_node : node -> node -> bool
val pp_tree : Format.formatter -> tree -> unit
