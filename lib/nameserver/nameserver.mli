(** The name server built on the small-database engine.

    "The name server offers its clients a general purpose name-to-value
    mapping, where the names are strings and the values are trees whose
    arcs are labelled by strings.  It provides a variety of enquiry and
    browsing operations, and update operations for any set of
    sub-trees" (§3).

    Enquiries are pure virtual-memory lookups; every update is one log
    write.  [apply] is total — updates that need preconditions (e.g.
    "the name must already be bound") go through the [_checked]
    variants, which verify against the live state under the update lock
    before anything reaches the disk. *)

type update =
  | Set_value of Name_path.t * string option
      (** bind (or unbind) the value at a name, creating intermediate
          nodes as needed *)
  | Write_subtree of Name_path.t * Ns_data.tree
      (** replace the whole subtree at a name *)
  | Delete_subtree of Name_path.t
  | Create of Name_path.t  (** ensure a (valueless) node exists *)

val codec_update : update Sdb_pickle.Pickle.t

module App :
  Smalldb.APP with type state = Ns_data.pnode and type update = update
(** The state is the {e persistent} tree ({!Ns_data.pnode}): [apply]
    path-copies, so each committed version is immutable and shares all
    untouched subtrees with its predecessor — the property the
    lock-free read path ([read_path = `Epoch]) and concurrent
    checkpoints require. *)

module Db : module type of Smalldb.Make (App)

type t

val open_ : ?config:Smalldb.config -> Sdb_storage.Fs.t -> (t, string) result
val open_exn : ?config:Smalldb.config -> Sdb_storage.Fs.t -> t
val db : t -> Db.t
(** The underlying engine (used by replication and benchmarks). *)

(** {1 Enquiries} *)

val lookup : t -> Name_path.t -> string option
(** The value bound at the name, if the name exists and has one. *)

val exists : t -> Name_path.t -> bool

val list_children : t -> Name_path.t -> string list option
(** Sorted labels; [None] when the name itself is unbound. *)

val export : ?depth:int -> t -> Name_path.t -> Ns_data.tree option
(** Browse: a snapshot of the subtree. *)

val count_nodes : t -> int

val enumerate : t -> Name_path.t -> (Name_path.t * string option) list
(** Every name under the given prefix (the prefix itself excluded),
    depth-first in sorted order, with its bound value. *)

val find : t -> Name_glob.t -> (Name_path.t * string option) list
(** All names matching a glob pattern, with tree-walk pruning: only
    viable prefixes are descended into. *)

val snapshot_with_lsn : t -> Ns_data.tree * int
(** A full export paired with the LSN it reflects, taken under one
    lock hold — the unit of replica (re)synchronisation (§4). *)

val updates_since : t -> int -> (int * update) list option
(** Committed updates with LSN ≥ the argument, when the current log
    still covers them; [None] after a checkpoint has absorbed them. *)

(** {1 Updates} *)

val set_value : t -> Name_path.t -> string option -> unit
val write_subtree : t -> Name_path.t -> Ns_data.tree -> unit
val delete_subtree : t -> Name_path.t -> unit
val create : t -> Name_path.t -> unit

val set_value_checked :
  t -> Name_path.t -> string option -> (unit, string) result
(** Requires the name's parent to exist already. *)

val delete_subtree_checked : t -> Name_path.t -> (unit, string) result
(** Requires the name to exist. *)

val compare_and_set :
  t -> Name_path.t -> expected:string option -> string option ->
  (unit, string) result
(** Atomic test-and-set on the bound value, the building block the
    paper's replica reconciliation uses. *)

(** {1 Maintenance} *)

val checkpoint : t -> unit
val stats : t -> Smalldb.stats

val health : t -> Smalldb.health
(** [`Healthy], [`Degraded reason] (read-only after disk-full — all
    enquiries above still work), or [`Poisoned]. *)

val ping : t -> int
(** Heartbeat enquiry: the current committed LSN.  Deliberately the
    cheapest possible round trip (no tree walk, no pickling), so the
    failure detector's probes stay meaningful under load — a ping that
    answers proves the server is serving, and the LSN shows whether it
    is also progressing. *)

val digest : t -> string
(** Canonical digest of the live state (equal trees — equal digests),
    used to compare replicas and to cross-check scrubs. *)

val scrub : ?repair:bool -> t -> Smalldb.scrub_report
(** {!Smalldb.Make.scrub} with the canonical tree digest wired in, so
    the shadow replay is cross-checked against memory. *)

val last_scrub : t -> Smalldb.scrub_report option

val start_scrubber : ?interval:float -> ?repair:bool -> t -> unit
(** Background scrub thread (see {!Smalldb.Make.start_scrubber}). *)

val stop_scrubber : t -> unit
val fold_log : t -> init:'acc -> f:('acc -> int -> update -> 'acc) -> 'acc
val close : t -> unit
