module P = Sdb_pickle.Pickle

type update =
  | Set_value of Name_path.t * string option
  | Write_subtree of Name_path.t * Ns_data.tree
  | Delete_subtree of Name_path.t
  | Create of Name_path.t

let codec_path = P.conv ~name:"ns.path" Fun.id Fun.id (P.list P.string)

let codec_update =
  P.variant ~name:"ns.update"
    [
      P.case "set_value"
        (P.pair codec_path (P.option P.string))
        (function Set_value (p, v) -> Some (p, v) | _ -> None)
        (fun (p, v) -> Set_value (p, v));
      P.case "write_subtree"
        (P.pair codec_path Ns_data.codec_tree)
        (function Write_subtree (p, t) -> Some (p, t) | _ -> None)
        (fun (p, t) -> Write_subtree (p, t));
      P.case "delete_subtree" codec_path
        (function Delete_subtree p -> Some p | _ -> None)
        (fun p -> Delete_subtree p);
      P.case "create" codec_path
        (function Create p -> Some p | _ -> None)
        (fun p -> Create p);
    ]

(* The state is the persistent tree: [apply] path-copies, building the
   next version in O(depth · log fanout) and sharing everything it did
   not touch with the previous one.  That is what lets the engine
   publish versions to the lock-free read path (config.read_path =
   `Epoch) — and it makes checkpoint_concurrent's immutability
   requirement hold by construction. *)
module App = struct
  type state = Ns_data.pnode
  type nonrec update = update

  let name = "nameserver"
  let codec_state = Ns_data.codec_pnode
  let codec_update = codec_update
  let init () = Ns_data.empty_pnode

  let apply state u =
    match u with
    | Set_value (p, v) -> Ns_data.pset_value state p v
    | Write_subtree (p, t) -> Ns_data.pgraft state p t
    | Delete_subtree p -> Ns_data.pdelete_subtree state p
    | Create p -> Ns_data.pensure state p
end

module Db = Smalldb.Make (App)

type t = Db.t

let open_ ?config fs = Db.open_ ?config fs
let open_exn ?config fs = Db.open_exn ?config fs
let db t = t

(* Enquiries: pure lookups in the virtual memory structure. *)

let lookup t path =
  Db.query t (fun root ->
      match Ns_data.pfind root path with
      | Some n -> n.Ns_data.pvalue
      | None -> None)

let exists t path = Db.query t (fun root -> Ns_data.pmem root path)

let list_children t path =
  Db.query t (fun root ->
      Option.map Ns_data.pchildren_labels (Ns_data.pfind root path))

let export ?depth t path =
  Db.query t (fun root ->
      match Ns_data.pfind root path with
      | None -> None
      | Some n -> Some (Ns_data.psnapshot ?depth n))

let count_nodes t = Db.query t Ns_data.pcount_nodes

let enumerate t prefix =
  Db.query t (fun root ->
      match Ns_data.pfind root prefix with
      | None -> []
      | Some node ->
        Ns_data.pfold_bindings node ~init:[] ~f:(fun acc rel value ->
            (prefix @ rel, value) :: acc)
        |> List.rev)

let find t glob =
  Db.query t (fun root ->
      Ns_data.pfold_bindings root
        ~prune:(fun path -> Name_glob.prefix_viable glob path)
        ~init:[]
        ~f:(fun acc path value ->
          if Name_glob.matches glob path then (path, value) :: acc else acc)
      |> List.rev)
let snapshot_with_lsn t = Db.query_with_lsn t (fun root -> Ns_data.psnapshot root)
let updates_since t from = Db.log_suffix t ~from

(* Updates *)

let set_value t path v = Db.update t (Set_value (path, v))
let write_subtree t path tree = Db.update t (Write_subtree (path, tree))
let delete_subtree t path = Db.update t (Delete_subtree path)
let create t path = Db.update t (Create path)

let set_value_checked t path v =
  let precondition root =
    match Name_path.parent path with
    | None -> Ok () (* the root always exists *)
    | Some parent ->
      if Ns_data.pmem root parent then Ok ()
      else Error (Printf.sprintf "parent %s is not bound" (Name_path.to_string parent))
  in
  Db.update_checked t ~precondition (Set_value (path, v))

let delete_subtree_checked t path =
  let precondition root =
    if Ns_data.pmem root path then Ok ()
    else Error (Printf.sprintf "%s is not bound" (Name_path.to_string path))
  in
  Db.update_checked t ~precondition (Delete_subtree path)

let compare_and_set t path ~expected v =
  let precondition root =
    let current =
      match Ns_data.pfind root path with
      | Some n -> n.Ns_data.pvalue
      | None -> None
    in
    if Option.equal String.equal current expected then Ok ()
    else
      Error
        (Printf.sprintf "%s: expected %s, found %s" (Name_path.to_string path)
           (Option.value expected ~default:"<unbound>")
           (Option.value current ~default:"<unbound>"))
  in
  Db.update_checked t ~precondition (Set_value (path, v))

(* Maintenance *)

let checkpoint = Db.checkpoint
let stats = Db.stats
let health = Db.health

(* The heartbeat enquiry: cheap enough to answer under load (one stats
   read, no tree walk) and informative enough for a failure detector —
   the LSN lets the prober watch a peer's progress, not just its
   liveness. *)
let ping t = (stats t).Smalldb.lsn

(* The canonical digest of the live state: the wire tree pickles with
   sorted children, so equal trees give equal strings — which the raw
   node pickle (hash tables, insertion-ordered) does not. *)
let state_digest root =
  Digest.string (P.encode Ns_data.codec_tree (Ns_data.psnapshot root))

let digest t = Db.query t state_digest
let scrub ?repair t = Db.scrub ?repair ~digest:state_digest t
let last_scrub = Db.last_scrub

let start_scrubber ?interval ?repair t =
  Db.start_scrubber ?interval ?repair ~digest:state_digest t

let stop_scrubber = Db.stop_scrubber
let fold_log t ~init ~f = Db.fold_log t ~init ~f
let close = Db.close
