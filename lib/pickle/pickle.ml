module Varint = Sdb_util.Varint

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

module Counters = struct
  let pickled = Atomic.make 0
  let unpickled = Atomic.make 0
  let p_ops = Atomic.make 0
  let u_ops = Atomic.make 0
  let add a n = ignore (Atomic.fetch_and_add a n : int)
  let bytes_pickled () = Atomic.get pickled
  let bytes_unpickled () = Atomic.get unpickled
  let pickle_ops () = Atomic.get p_ops
  let unpickle_ops () = Atomic.get u_ops

  let reset () =
    Atomic.set pickled 0;
    Atomic.set unpickled 0;
    Atomic.set p_ops 0;
    Atomic.set u_ops 0
end

(* One-byte type tags.  Every value starts with its tag; readers check
   it, so type confusion in a corrupted stream is caught immediately. *)
let tag_unit = '\x01'
let tag_bool = '\x02'
let tag_char = '\x03'
let tag_int = '\x04'
let tag_int32 = '\x05'
let tag_int64 = '\x06'
let tag_float = '\x07'
let tag_string = '\x08'
let tag_bytes = '\x09'
let tag_pair = '\x0A'
let tag_triple = '\x0B'
let tag_quad = '\x0C'
let tag_list = '\x0D'
let tag_array = '\x0E'
let tag_option = '\x0F'
let tag_result = '\x10'
let tag_record = '\x11'
let tag_variant = '\x12'
let tag_shared_def = '\x13'
let tag_shared_ref = '\x14'
let tag_ref = '\x15'
let tag_hashtbl = '\x16'

let tag_name = function
  | '\x01' -> "unit"
  | '\x02' -> "bool"
  | '\x03' -> "char"
  | '\x04' -> "int"
  | '\x05' -> "int32"
  | '\x06' -> "int64"
  | '\x07' -> "float"
  | '\x08' -> "string"
  | '\x09' -> "bytes"
  | '\x0A' -> "pair"
  | '\x0B' -> "triple"
  | '\x0C' -> "quad"
  | '\x0D' -> "list"
  | '\x0E' -> "array"
  | '\x0F' -> "option"
  | '\x10' -> "result"
  | '\x11' -> "record"
  | '\x12' -> "variant"
  | '\x13' -> "shared-def"
  | '\x14' -> "shared-ref"
  | '\x15' -> "ref"
  | '\x16' -> "hashtbl"
  | c -> Printf.sprintf "unknown(0x%02X)" (Char.code c)

type writer = {
  buf : Buffer.t;
  share : (int, (Obj.t * int) list) Hashtbl.t;
  mutable next_id : int;
}

type slot = { slot_fp : string; mutable slot_value : Obj.t; mutable slot_filled : bool }

type reader = {
  src : string;
  mutable pos : int;
  mutable slots : slot array;
  mutable nslots : int;
}

type 'a t = { d : Descr.t; w : writer -> 'a -> unit; r : reader -> 'a }

let descr c = c.d
let fingerprint c = Descr.fingerprint c.d
let fingerprint_hex c = Descr.fingerprint_hex c.d

(* ------------------------------------------------------------------ *)
(* Writer / reader helpers                                             *)

let new_writer buf = { buf; share = Hashtbl.create 7; next_id = 0 }
let new_reader src = { src; pos = 0; slots = [||]; nslots = 0 }

let share_find wr obj =
  let h = Hashtbl.hash obj in
  match Hashtbl.find_opt wr.share h with
  | None -> None
  | Some entries ->
    let rec scan = function
      | [] -> None
      | (o, id) :: rest -> if o == obj then Some id else scan rest
    in
    scan entries

let share_add wr obj id =
  let h = Hashtbl.hash obj in
  let entries = Option.value (Hashtbl.find_opt wr.share h) ~default:[] in
  Hashtbl.replace wr.share h ((obj, id) :: entries)

let reserve_slot rd slot =
  if rd.nslots = Array.length rd.slots then begin
    let cap = if rd.nslots = 0 then 8 else 2 * rd.nslots in
    let bigger = Array.make cap slot in
    Array.blit rd.slots 0 bigger 0 rd.nslots;
    rd.slots <- bigger
  end;
  rd.slots.(rd.nslots) <- slot;
  rd.nslots <- rd.nslots + 1;
  rd.nslots - 1

let need rd n =
  if n < 0 || rd.pos + n > String.length rd.src then
    err "pickle: truncated input at offset %d (need %d more bytes)" rd.pos n

let read_byte rd =
  need rd 1;
  let c = String.unsafe_get rd.src rd.pos in
  rd.pos <- rd.pos + 1;
  c

let expect_tag rd tag =
  let c = read_byte rd in
  if c <> tag then
    err "pickle: expected %s at offset %d, found %s" (tag_name tag) (rd.pos - 1)
      (tag_name c)

let write_uvarint wr n = Varint.write_unsigned wr.buf n
let write_svarint wr n = Varint.write_signed wr.buf n

let read_uvarint rd =
  match Varint.read_unsigned rd.src ~pos:rd.pos with
  | v, p ->
    rd.pos <- p;
    v
  | exception Varint.Malformed m -> err "pickle: %s at offset %d" m rd.pos

let read_svarint rd =
  match Varint.read_signed rd.src ~pos:rd.pos with
  | v, p ->
    rd.pos <- p;
    v
  | exception Varint.Malformed m -> err "pickle: %s at offset %d" m rd.pos

(* A sequence length can never exceed the remaining byte count (every
   element costs at least its tag byte), which bounds allocations made
   on behalf of corrupted input. *)
let read_length rd what =
  let len = read_uvarint rd in
  if len > String.length rd.src - rd.pos then
    err "pickle: %s length %d exceeds remaining input at offset %d" what len rd.pos;
  len

(* ------------------------------------------------------------------ *)
(* Primitives                                                          *)

let unit =
  {
    d = Descr.Unit;
    w = (fun wr () -> Buffer.add_char wr.buf tag_unit);
    r = (fun rd -> expect_tag rd tag_unit);
  }

let bool =
  {
    d = Descr.Bool;
    w =
      (fun wr b ->
        Buffer.add_char wr.buf tag_bool;
        Buffer.add_char wr.buf (if b then '\x01' else '\x00'));
    r =
      (fun rd ->
        expect_tag rd tag_bool;
        match read_byte rd with
        | '\x00' -> false
        | '\x01' -> true
        | c -> err "pickle: invalid bool byte 0x%02X at offset %d" (Char.code c) (rd.pos - 1));
  }

let char =
  {
    d = Descr.Char;
    w =
      (fun wr c ->
        Buffer.add_char wr.buf tag_char;
        Buffer.add_char wr.buf c);
    r =
      (fun rd ->
        expect_tag rd tag_char;
        read_byte rd);
  }

let int =
  {
    d = Descr.Int;
    w =
      (fun wr n ->
        Buffer.add_char wr.buf tag_int;
        write_svarint wr n);
    r =
      (fun rd ->
        expect_tag rd tag_int;
        read_svarint rd);
  }

let int32 =
  {
    d = Descr.Int32;
    w =
      (fun wr n ->
        Buffer.add_char wr.buf tag_int32;
        Buffer.add_int32_le wr.buf n);
    r =
      (fun rd ->
        expect_tag rd tag_int32;
        need rd 4;
        let v = String.get_int32_le rd.src rd.pos in
        rd.pos <- rd.pos + 4;
        v);
  }

let int64 =
  {
    d = Descr.Int64;
    w =
      (fun wr n ->
        Buffer.add_char wr.buf tag_int64;
        Buffer.add_int64_le wr.buf n);
    r =
      (fun rd ->
        expect_tag rd tag_int64;
        need rd 8;
        let v = String.get_int64_le rd.src rd.pos in
        rd.pos <- rd.pos + 8;
        v);
  }

let float =
  {
    d = Descr.Float;
    w =
      (fun wr f ->
        Buffer.add_char wr.buf tag_float;
        Buffer.add_int64_le wr.buf (Int64.bits_of_float f));
    r =
      (fun rd ->
        expect_tag rd tag_float;
        need rd 8;
        let v = Int64.float_of_bits (String.get_int64_le rd.src rd.pos) in
        rd.pos <- rd.pos + 8;
        v);
  }

let read_counted_string rd =
  let len = read_uvarint rd in
  need rd len;
  let s = String.sub rd.src rd.pos len in
  rd.pos <- rd.pos + len;
  s

let string =
  {
    d = Descr.String;
    w =
      (fun wr s ->
        Buffer.add_char wr.buf tag_string;
        write_uvarint wr (String.length s);
        Buffer.add_string wr.buf s);
    r =
      (fun rd ->
        expect_tag rd tag_string;
        read_counted_string rd);
  }

let bytes =
  {
    d = Descr.Bytes;
    w =
      (fun wr b ->
        Buffer.add_char wr.buf tag_bytes;
        write_uvarint wr (Bytes.length b);
        Buffer.add_bytes wr.buf b);
    r =
      (fun rd ->
        expect_tag rd tag_bytes;
        Bytes.unsafe_of_string (read_counted_string rd));
  }

(* ------------------------------------------------------------------ *)
(* Compounds                                                           *)

let pair a b =
  {
    d = Descr.Pair (a.d, b.d);
    w =
      (fun wr (x, y) ->
        Buffer.add_char wr.buf tag_pair;
        a.w wr x;
        b.w wr y);
    r =
      (fun rd ->
        expect_tag rd tag_pair;
        let x = a.r rd in
        let y = b.r rd in
        (x, y));
  }

let triple a b c =
  {
    d = Descr.Triple (a.d, b.d, c.d);
    w =
      (fun wr (x, y, z) ->
        Buffer.add_char wr.buf tag_triple;
        a.w wr x;
        b.w wr y;
        c.w wr z);
    r =
      (fun rd ->
        expect_tag rd tag_triple;
        let x = a.r rd in
        let y = b.r rd in
        let z = c.r rd in
        (x, y, z));
  }

let quad a b c d0 =
  {
    d = Descr.Quad (a.d, b.d, c.d, d0.d);
    w =
      (fun wr (x, y, z, u) ->
        Buffer.add_char wr.buf tag_quad;
        a.w wr x;
        b.w wr y;
        c.w wr z;
        d0.w wr u);
    r =
      (fun rd ->
        expect_tag rd tag_quad;
        let x = a.r rd in
        let y = b.r rd in
        let z = c.r rd in
        let u = d0.r rd in
        (x, y, z, u));
  }

let list elt =
  {
    d = Descr.List elt.d;
    w =
      (fun wr xs ->
        Buffer.add_char wr.buf tag_list;
        write_uvarint wr (List.length xs);
        List.iter (elt.w wr) xs);
    r =
      (fun rd ->
        expect_tag rd tag_list;
        let len = read_length rd "list" in
        List.init len (fun _ -> elt.r rd));
  }

let array elt =
  {
    d = Descr.Array elt.d;
    w =
      (fun wr xs ->
        Buffer.add_char wr.buf tag_array;
        write_uvarint wr (Array.length xs);
        Array.iter (elt.w wr) xs);
    r =
      (fun rd ->
        expect_tag rd tag_array;
        let len = read_length rd "array" in
        if len = 0 then [||]
        else begin
          let first = elt.r rd in
          let arr = Array.make len first in
          for i = 1 to len - 1 do
            arr.(i) <- elt.r rd
          done;
          arr
        end);
  }

let option elt =
  {
    d = Descr.Option elt.d;
    w =
      (fun wr v ->
        Buffer.add_char wr.buf tag_option;
        match v with
        | None -> Buffer.add_char wr.buf '\x00'
        | Some x ->
          Buffer.add_char wr.buf '\x01';
          elt.w wr x);
    r =
      (fun rd ->
        expect_tag rd tag_option;
        match read_byte rd with
        | '\x00' -> None
        | '\x01' -> Some (elt.r rd)
        | c ->
          err "pickle: invalid option discriminant 0x%02X at offset %d" (Char.code c)
            (rd.pos - 1));
  }

let result ok error =
  {
    d = Descr.Result (ok.d, error.d);
    w =
      (fun wr v ->
        Buffer.add_char wr.buf tag_result;
        match v with
        | Ok x ->
          Buffer.add_char wr.buf '\x00';
          ok.w wr x
        | Error e ->
          Buffer.add_char wr.buf '\x01';
          error.w wr e);
    r =
      (fun rd ->
        expect_tag rd tag_result;
        match read_byte rd with
        | '\x00' -> Ok (ok.r rd)
        | '\x01' -> Error (error.r rd)
        | c ->
          err "pickle: invalid result discriminant 0x%02X at offset %d" (Char.code c)
            (rd.pos - 1));
  }

let hashtbl key value =
  {
    d = Descr.Hashtbl (key.d, value.d);
    w =
      (fun wr tbl ->
        Buffer.add_char wr.buf tag_hashtbl;
        write_uvarint wr (Hashtbl.length tbl);
        Hashtbl.iter
          (fun k v ->
            key.w wr k;
            value.w wr v)
          tbl);
    r =
      (fun rd ->
        expect_tag rd tag_hashtbl;
        let len = read_length rd "hashtbl" in
        let tbl = Hashtbl.create (max 16 (min len 65536)) in
        for _ = 1 to len do
          let k = key.r rd in
          let v = value.r rd in
          Hashtbl.replace tbl k v
        done;
        tbl);
  }

let conv ~name to_wire of_wire base =
  {
    d = Descr.Conv (name, base.d);
    w = (fun wr v -> base.w wr (to_wire v));
    r = (fun rd -> of_wire (base.r rd));
  }

(* ------------------------------------------------------------------ *)
(* Variants                                                            *)

type 'a case = {
  c_name : string;
  c_descr : Descr.t option;
  c_recognize : 'a -> bool;
  c_write : writer -> 'a -> unit;
  c_read : reader -> 'a;
}

let case name codec proj inj =
  {
    c_name = name;
    c_descr = Some codec.d;
    c_recognize = (fun v -> proj v <> None);
    c_write =
      (fun wr v ->
        match proj v with
        | Some payload -> codec.w wr payload
        | None -> err "pickle: variant case %s: projection failed during write" name);
    c_read = (fun rd -> inj (codec.r rd));
  }

let case0 name value recognize =
  {
    c_name = name;
    c_descr = None;
    c_recognize = recognize;
    c_write = (fun _ _ -> ());
    c_read = (fun _ -> value);
  }

let variant ~name cases =
  if cases = [] then invalid_arg "Pickle.variant: no cases";
  let arr = Array.of_list cases in
  let d = Descr.Variant (name, List.map (fun c -> (c.c_name, c.c_descr)) cases) in
  let w wr v =
    let rec find i =
      if i >= Array.length arr then
        err "pickle: variant %s: no case recognizes the value" name
      else if arr.(i).c_recognize v then i
      else find (i + 1)
    in
    let i = find 0 in
    Buffer.add_char wr.buf tag_variant;
    write_uvarint wr i;
    arr.(i).c_write wr v
  in
  let r rd =
    expect_tag rd tag_variant;
    let i = read_uvarint rd in
    if i >= Array.length arr then
      err "pickle: variant %s: case index %d out of range (%d cases)" name i
        (Array.length arr);
    arr.(i).c_read rd
  in
  { d; w; r }

let enum ~name values =
  if values = [] then invalid_arg "Pickle.enum: no values";
  let cases =
    List.map (fun (case_name, v) -> case0 case_name v (fun x -> x = v)) values
  in
  variant ~name cases

(* ------------------------------------------------------------------ *)
(* Records                                                             *)

type ('r, 'f) field = { f_name : string; f_codec_d : Descr.t; f_write : writer -> 'r -> unit; f_read : reader -> 'f }

let field name codec get =
  {
    f_name = name;
    f_codec_d = codec.d;
    f_write = (fun wr r -> codec.w wr (get r));
    f_read = codec.r;
  }

let record_header name fds =
  Descr.Record (name, List.map (fun (n, d) -> (n, d)) fds)

let write_record_prefix wr nfields =
  Buffer.add_char wr.buf tag_record;
  write_uvarint wr nfields

let read_record_prefix rd name nfields =
  expect_tag rd tag_record;
  let n = read_uvarint rd in
  if n <> nfields then
    err "pickle: record %s: expected %d fields, found %d" name nfields n

let record1 name f1 make =
  {
    d = record_header name [ (f1.f_name, f1.f_codec_d) ];
    w =
      (fun wr r ->
        write_record_prefix wr 1;
        f1.f_write wr r);
    r =
      (fun rd ->
        read_record_prefix rd name 1;
        make (f1.f_read rd));
  }

let record2 name f1 f2 make =
  {
    d = record_header name [ (f1.f_name, f1.f_codec_d); (f2.f_name, f2.f_codec_d) ];
    w =
      (fun wr r ->
        write_record_prefix wr 2;
        f1.f_write wr r;
        f2.f_write wr r);
    r =
      (fun rd ->
        read_record_prefix rd name 2;
        let a = f1.f_read rd in
        let b = f2.f_read rd in
        make a b);
  }

let record3 name f1 f2 f3 make =
  {
    d =
      record_header name
        [ (f1.f_name, f1.f_codec_d); (f2.f_name, f2.f_codec_d); (f3.f_name, f3.f_codec_d) ];
    w =
      (fun wr r ->
        write_record_prefix wr 3;
        f1.f_write wr r;
        f2.f_write wr r;
        f3.f_write wr r);
    r =
      (fun rd ->
        read_record_prefix rd name 3;
        let a = f1.f_read rd in
        let b = f2.f_read rd in
        let c = f3.f_read rd in
        make a b c);
  }

let record4 name f1 f2 f3 f4 make =
  {
    d =
      record_header name
        [
          (f1.f_name, f1.f_codec_d);
          (f2.f_name, f2.f_codec_d);
          (f3.f_name, f3.f_codec_d);
          (f4.f_name, f4.f_codec_d);
        ];
    w =
      (fun wr r ->
        write_record_prefix wr 4;
        f1.f_write wr r;
        f2.f_write wr r;
        f3.f_write wr r;
        f4.f_write wr r);
    r =
      (fun rd ->
        read_record_prefix rd name 4;
        let a = f1.f_read rd in
        let b = f2.f_read rd in
        let c = f3.f_read rd in
        let d = f4.f_read rd in
        make a b c d);
  }

let record5 name f1 f2 f3 f4 f5 make =
  {
    d =
      record_header name
        [
          (f1.f_name, f1.f_codec_d);
          (f2.f_name, f2.f_codec_d);
          (f3.f_name, f3.f_codec_d);
          (f4.f_name, f4.f_codec_d);
          (f5.f_name, f5.f_codec_d);
        ];
    w =
      (fun wr r ->
        write_record_prefix wr 5;
        f1.f_write wr r;
        f2.f_write wr r;
        f3.f_write wr r;
        f4.f_write wr r;
        f5.f_write wr r);
    r =
      (fun rd ->
        read_record_prefix rd name 5;
        let a = f1.f_read rd in
        let b = f2.f_read rd in
        let c = f3.f_read rd in
        let d = f4.f_read rd in
        let e = f5.f_read rd in
        make a b c d e);
  }

let record6 name f1 f2 f3 f4 f5 f6 make =
  {
    d =
      record_header name
        [
          (f1.f_name, f1.f_codec_d);
          (f2.f_name, f2.f_codec_d);
          (f3.f_name, f3.f_codec_d);
          (f4.f_name, f4.f_codec_d);
          (f5.f_name, f5.f_codec_d);
          (f6.f_name, f6.f_codec_d);
        ];
    w =
      (fun wr r ->
        write_record_prefix wr 6;
        f1.f_write wr r;
        f2.f_write wr r;
        f3.f_write wr r;
        f4.f_write wr r;
        f5.f_write wr r;
        f6.f_write wr r);
    r =
      (fun rd ->
        read_record_prefix rd name 6;
        let a = f1.f_read rd in
        let b = f2.f_read rd in
        let c = f3.f_read rd in
        let d = f4.f_read rd in
        let e = f5.f_read rd in
        let f = f6.f_read rd in
        make a b c d e f);
  }

(* ------------------------------------------------------------------ *)
(* Schema evolution                                                    *)

type 'a old_version = Old : { codec : 'b t; upgrade : 'b -> 'a } -> 'a old_version

let old_version codec upgrade = Old { codec; upgrade }

let versioned ~name ~history latest =
  let olds = Array.of_list history in
  let current = Array.length olds in
  (* The fingerprint must survive evolutions, so the descriptor names
     the family rather than the current structure. *)
  let d = Descr.Conv ("versioned:" ^ name, Descr.Int) in
  let w wr v =
    Buffer.add_char wr.buf tag_variant;
    write_uvarint wr current;
    latest.w wr v
  in
  let r rd =
    expect_tag rd tag_variant;
    let idx = read_uvarint rd in
    if idx = current then latest.r rd
    else if idx < current then begin
      let (Old { codec; upgrade }) = olds.(idx) in
      upgrade (codec.r rd)
    end
    else
      err "pickle: versioned %s: version %d is newer than this program (max %d)" name
        idx current
  in
  { d; w; r }

(* ------------------------------------------------------------------ *)
(* Recursion and sharing                                               *)

let mu name f =
  let rec self =
    {
      d = Descr.Recur name;
      w = (fun wr v -> (Lazy.force body).w wr v);
      r = (fun rd -> (Lazy.force body).r rd);
    }
  and body = lazy (f self) in
  let b = Lazy.force body in
  { b with d = Descr.Named (name, b.d) }

(* Sharing protocol: the writer assigns ids in pre-order at the first
   encounter of each shared value; the reader reserves slot ids in the
   same order, so ids agree without appearing on the wire for
   definitions.  Each slot records the defining codec's fingerprint; a
   back-reference checks it, so a corrupted id cannot smuggle a value
   of the wrong type through [Obj.obj]. *)

let slot_lookup rd id fp what =
  if id >= rd.nslots then
    err "pickle: %s: back-reference to undefined id %d at offset %d" what id rd.pos;
  let slot = rd.slots.(id) in
  if not (String.equal slot.slot_fp fp) then
    err "pickle: %s: back-reference id %d has mismatched type" what id;
  if not slot.slot_filled then
    err "pickle: %s: cycle through immutable shared value (id %d)" what id;
  Obj.obj slot.slot_value

let shared inner =
  let d = Descr.Shared inner.d in
  let fp = Descr.fingerprint d in
  let w wr v =
    let obj = Obj.repr v in
    match share_find wr obj with
    | Some id ->
      Buffer.add_char wr.buf tag_shared_ref;
      write_uvarint wr id
    | None ->
      let id = wr.next_id in
      wr.next_id <- id + 1;
      share_add wr obj id;
      Buffer.add_char wr.buf tag_shared_def;
      inner.w wr v
  in
  let r rd =
    match read_byte rd with
    | c when c = tag_shared_def ->
      let id =
        reserve_slot rd { slot_fp = fp; slot_value = Obj.repr 0; slot_filled = false }
      in
      let v = inner.r rd in
      let slot = rd.slots.(id) in
      slot.slot_value <- Obj.repr v;
      slot.slot_filled <- true;
      v
    | c when c = tag_shared_ref ->
      let id = read_uvarint rd in
      slot_lookup rd id fp "shared"
    | c ->
      err "pickle: expected shared-def/shared-ref at offset %d, found %s" (rd.pos - 1)
        (tag_name c)
  in
  { d; w; r }

let ref_cell inner =
  {
    d = Descr.Ref inner.d;
    w =
      (fun wr cell ->
        Buffer.add_char wr.buf tag_ref;
        inner.w wr !cell);
    r =
      (fun rd ->
        expect_tag rd tag_ref;
        ref (inner.r rd));
  }

let shared_ref ~dummy inner =
  let d = Descr.Shared (Descr.Ref inner.d) in
  let fp = Descr.fingerprint d in
  let w wr cell =
    let obj = Obj.repr cell in
    match share_find wr obj with
    | Some id ->
      Buffer.add_char wr.buf tag_shared_ref;
      write_uvarint wr id
    | None ->
      let id = wr.next_id in
      wr.next_id <- id + 1;
      share_add wr obj id;
      Buffer.add_char wr.buf tag_shared_def;
      inner.w wr !cell
  in
  let r rd =
    match read_byte rd with
    | c when c = tag_shared_def ->
      (* Register the cell before its content is read, so a cyclic
         reference back to this cell resolves. *)
      let cell = ref dummy in
      let _id =
        reserve_slot rd { slot_fp = fp; slot_value = Obj.repr cell; slot_filled = true }
      in
      cell := inner.r rd;
      cell
    | c when c = tag_shared_ref ->
      let id = read_uvarint rd in
      slot_lookup rd id fp "shared_ref"
    | c ->
      err "pickle: expected shared-def/shared-ref at offset %d, found %s" (rd.pos - 1)
        (tag_name c)
  in
  { d; w; r }

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)

let encode_into buf codec v =
  let wr = new_writer buf in
  let base = Buffer.length buf in
  codec.w wr v;
  Counters.add Counters.pickled (Buffer.length buf - base);
  Counters.add Counters.p_ops 1

let encode codec v =
  let buf = Buffer.create 256 in
  encode_into buf codec v;
  Buffer.contents buf

let decode codec s =
  let rd = new_reader s in
  let v = codec.r rd in
  if rd.pos <> String.length s then
    err "pickle: %d trailing bytes after value" (String.length s - rd.pos);
  Counters.add Counters.unpickled (String.length s);
  Counters.add Counters.u_ops 1;
  v

let decode_result codec s =
  match decode codec s with
  | v -> Result.Ok v
  | exception Error m -> Result.Error m

let magic = "SDBP1"

let to_string codec v =
  let body = encode codec v in
  let fp = fingerprint codec in
  let buf = Buffer.create (String.length body + 24) in
  Buffer.add_string buf magic;
  Buffer.add_string buf fp;
  Buffer.add_string buf body;
  Buffer.contents buf

let of_string codec s =
  let mlen = String.length magic in
  let fplen = 16 in
  if String.length s < mlen + fplen then Result.Error "pickle: input shorter than header"
  else if not (String.equal (String.sub s 0 mlen) magic) then
    Result.Error "pickle: bad magic (not a pickle)"
  else begin
    let fp = String.sub s mlen fplen in
    let expected = fingerprint codec in
    if not (String.equal fp expected) then
      Result.Error
        (Printf.sprintf "pickle: type fingerprint mismatch: data %s, codec %s"
           (Digest.to_hex fp) (Digest.to_hex expected))
    else decode_result codec (String.sub s (mlen + fplen) (String.length s - mlen - fplen))
  end
