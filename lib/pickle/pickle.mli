(** Pickles: typed serialization combinators.

    This is the paper's "pickle" mechanism (§6): conversion between any
    strongly typed data structure and a representation suitable for
    storing in permanent disk files, including the identification of
    addresses so that shared sub-structures are written once and
    restored to shared structures in the new execution environment.

    Where the original is driven by the Modula-2+ garbage collector's
    runtime types, this implementation derives the same information
    from an explicit codec value ['a t] built with combinators.  Each
    codec carries a structural {!Descr.t}; the descriptor's fingerprint
    is stored in file headers so that reading data with a drifted type
    fails with a clear error rather than misinterpreting bits.

    Every value on the wire is preceded by a one-byte type tag, and
    variant cases and record arities are validated when read, so random
    corruption is overwhelmingly likely to be detected at the pickle
    layer even before the framing CRC is consulted.

    All read-side functions raise {!Error} on malformed input (or
    return [Error _] for the [_result] variants); they never return
    garbage values for detectably bad input. *)

exception Error of string
(** Malformed or type-incorrect pickled data. *)

type 'a t
(** A codec for values of type ['a]. *)

val descr : 'a t -> Descr.t
val fingerprint : 'a t -> string
(** 16-byte binary fingerprint of the codec's wire format. *)

val fingerprint_hex : 'a t -> string

(** {1 Primitive codecs} *)

val unit : unit t
val bool : bool t
val char : char t

val int : int t
(** Zig-zag varint; compact for small magnitudes of either sign. *)

val int32 : int32 t
val int64 : int64 t
val float : float t
val string : string t
val bytes : bytes t

(** {1 Compound codecs} *)

val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t
val quad : 'a t -> 'b t -> 'c t -> 'd t -> ('a * 'b * 'c * 'd) t
val list : 'a t -> 'a list t
val array : 'a t -> 'a array t
val option : 'a t -> 'a option t
val result : 'a t -> 'e t -> ('a, 'e) result t

val hashtbl : 'k t -> 'v t -> ('k, 'v) Hashtbl.t t
(** Bindings are written in an unspecified order and restored with
    [Hashtbl.replace]; multi-bindings (shadowed keys) are not
    preserved. *)

val conv : name:string -> ('a -> 'b) -> ('b -> 'a) -> 'b t -> 'a t
(** [conv ~name to_wire of_wire base] maps a codec across an
    isomorphism.  [name] distinguishes the type in fingerprints. *)

(** {1 Variants} *)

type 'a case

val case : string -> 'b t -> ('a -> 'b option) -> ('b -> 'a) -> 'a case
(** [case name codec proj inj]: a constructor carrying a ['b].  [proj]
    recognises values of this case; [inj] rebuilds them. *)

val case0 : string -> 'a -> ('a -> bool) -> 'a case
(** A nullary constructor: [case0 name value recognise]. *)

val variant : name:string -> 'a case list -> 'a t
(** Writes the matching case's index and payload.  Raises {!Error} when
    writing a value no case recognises, and when reading an index out
    of range. *)

val enum : name:string -> (string * 'a) list -> 'a t
(** Enumerations: values compared with structural equality on write. *)

(** {1 Records} *)

type ('r, 'f) field

val field : string -> 'f t -> ('r -> 'f) -> ('r, 'f) field

val record1 : string -> ('r, 'a) field -> ('a -> 'r) -> 'r t
val record2 : string -> ('r, 'a) field -> ('r, 'b) field -> ('a -> 'b -> 'r) -> 'r t

val record3 :
  string -> ('r, 'a) field -> ('r, 'b) field -> ('r, 'c) field ->
  ('a -> 'b -> 'c -> 'r) -> 'r t

val record4 :
  string -> ('r, 'a) field -> ('r, 'b) field -> ('r, 'c) field ->
  ('r, 'd) field -> ('a -> 'b -> 'c -> 'd -> 'r) -> 'r t

val record5 :
  string -> ('r, 'a) field -> ('r, 'b) field -> ('r, 'c) field ->
  ('r, 'd) field -> ('r, 'e) field -> ('a -> 'b -> 'c -> 'd -> 'e -> 'r) -> 'r t

val record6 :
  string -> ('r, 'a) field -> ('r, 'b) field -> ('r, 'c) field ->
  ('r, 'd) field -> ('r, 'e) field -> ('r, 'f) field ->
  ('a -> 'b -> 'c -> 'd -> 'e -> 'f -> 'r) -> 'r t

(** {1 Schema evolution}

    A database outlives its program: checkpoints and logs written by
    version 1 must still load after the type has grown a field.
    [versioned] prefixes each value with a version index; reading an
    older index decodes with the historical codec and upgrades. *)

type 'a old_version

val old_version : 'b t -> ('b -> 'a) -> 'a old_version
(** A historical wire format and how to bring its values forward. *)

val versioned : name:string -> history:'a old_version list -> 'a t -> 'a t
(** [versioned ~name ~history latest] writes with [latest] under
    version index [length history]; reads dispatch on the stored index
    (position in [history], oldest first).  Appending a new entry to
    [history] when the type changes keeps every old file readable.

    The codec's fingerprint depends only on [name] — deliberately, so
    containers written before an evolution still open; within the
    value, the version index and the historical codec's own tags keep
    corruption detection intact.  Never reuse a [name] for an unrelated
    type. *)

(** {1 Recursion and sharing} *)

val mu : string -> ('a t -> 'a t) -> 'a t
(** [mu name f] ties the knot for recursive types:
    [mu "tree" (fun tree -> variant ... tree ...)]. *)

val shared : 'a t -> 'a t
(** Address identification for acyclic shared structure: a value
    written more than once (by physical identity) through the same
    writer is serialized once and referenced thereafter, and unpickles
    to a physically shared value.  A cycle through [shared] (possible
    only via mutation) is detected and reported on read. *)

val ref_cell : 'a t -> 'a ref t
(** A [ref] pickled by content, without sharing. *)

val shared_ref : dummy:'a -> 'a t -> 'a ref t
(** A [ref] with sharing that additionally supports cyclic structures:
    the cell is registered before its content is read, so a reference
    back to it resolves.  [dummy] briefly fills the cell during
    reconstruction. *)

(** {1 Top-level encoding} *)

val encode : 'a t -> 'a -> string
(** Raw wire bytes, no header.  Use when the container (log, checkpoint
    file) stores the fingerprint once for many values. *)

val encode_into : Buffer.t -> 'a t -> 'a -> unit
(** {!encode}, appended to an existing buffer instead of allocating a
    fresh string — the allocation-free commit path.  Each call is
    self-contained: sharing ids restart, so the appended bytes decode
    exactly like an {!encode} result. *)

val decode : 'a t -> string -> 'a
(** Inverse of {!encode}; requires the whole string to be consumed.
    Raises {!Error}. *)

val decode_result : 'a t -> string -> ('a, string) result

val to_string : 'a t -> 'a -> string
(** Self-contained: magic, fingerprint, then the value. *)

val of_string : 'a t -> string -> ('a, string) result
(** Checks magic and fingerprint before decoding. *)

(** {1 Accounting}

    Byte counts feed the 1987 cost model (the paper attributes 22 ms of
    every update and 55 s of every checkpoint to pickling). *)

module Counters : sig
  val bytes_pickled : unit -> int
  val bytes_unpickled : unit -> int
  val pickle_ops : unit -> int
  val unpickle_ops : unit -> int
  val reset : unit -> unit
end
