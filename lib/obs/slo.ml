(* Latency SLOs as rotating-bucket sliding windows.

   A target like "p99 ≤ 25 ms over the last minute" is tracked as a
   threshold plus an error budget: every request slower than the
   objective (or failing outright) is a *bad event*, and the SLO holds
   while the bad fraction over the window stays within the budget
   (budget 0.01 ⇔ 99% of requests within the objective ⇔ p99 ≤
   objective).  The window is a ring of fixed-width buckets rotated by
   wall-clock time, so memory is constant no matter the request rate
   and old traffic ages out bucket by bucket rather than all at once.

   The clock is injectable for tests; see [rotate] for the two
   clock-step edge cases (backward steps never rotate, a forward step
   past the whole window empties it). *)

type bucket = { mutable b_total : int; mutable b_bad : int }

type t = {
  name : string;
  objective_s : float;
  budget : float;
  bucket_s : float;
  buckets : bucket array;
  now : unit -> float;
  mu : Sdb_check.Mu.t;
  mutable epoch : int; (* floor(now / bucket_s) of the newest bucket *)
}

type report = {
  r_name : string;
  r_total : int;
  r_bad : int;
  r_bad_fraction : float;
  r_budget : float;
  r_burn : float;
  r_pass : bool;
  r_window_s : float;
}

let create ?(now = Unix.gettimeofday) ?(window_s = 60.0) ?(buckets = 6) ~name
    ~objective_ms ~budget () =
  if objective_ms <= 0.0 then invalid_arg "Slo.create: objective_ms must be positive";
  if budget <= 0.0 || budget >= 1.0 then
    invalid_arg "Slo.create: budget must be in (0,1)";
  if buckets <= 0 then invalid_arg "Slo.create: buckets must be positive";
  if window_s <= 0.0 then invalid_arg "Slo.create: window_s must be positive";
  let bucket_s = window_s /. float_of_int buckets in
  {
    name;
    objective_s = objective_ms /. 1000.0;
    budget;
    bucket_s;
    buckets = Array.init buckets (fun _ -> { b_total = 0; b_bad = 0 });
    now;
    mu = Sdb_check.Mu.make "obs.slo";
    epoch = int_of_float (Float.floor (now () /. (window_s /. float_of_int buckets)));
  }

let objective_ms t = t.objective_s *. 1000.0
let budget t = t.budget
let window_s t = t.bucket_s *. float_of_int (Array.length t.buckets)

(* Advance the ring to the bucket holding [now], zeroing every bucket
   the clock skipped over.  Two deliberate edge cases:
   - a clock stepped *backward* (cur < epoch) does not rotate: samples
     keep landing in the newest bucket, and no history is dropped;
   - a forward step of a whole window or more empties every bucket
     rather than wrapping stale counts into the "new" time range. *)
let rotate t =
  let cur = int_of_float (Float.floor (t.now () /. t.bucket_s)) in
  if cur > t.epoch then begin
    let n = Array.length t.buckets in
    let skipped = cur - t.epoch in
    let zero b =
      b.b_total <- 0;
      b.b_bad <- 0
    in
    if skipped >= n then Array.iter zero t.buckets
    else
      for e = t.epoch + 1 to cur do
        zero t.buckets.(e mod n)
      done;
    t.epoch <- cur
  end

let record_event t ~bad =
  Sdb_check.Mu.with_lock t.mu (fun () ->
      rotate t;
      let b = t.buckets.(t.epoch mod Array.length t.buckets) in
      b.b_total <- b.b_total + 1;
      if bad then b.b_bad <- b.b_bad + 1)

let record t latency_s = record_event t ~bad:(latency_s > t.objective_s)
let record_failure t = record_event t ~bad:true

let report t =
  Sdb_check.Mu.with_lock t.mu (fun () ->
      rotate t;
      let total = ref 0 and bad = ref 0 in
      Array.iter
        (fun b ->
          total := !total + b.b_total;
          bad := !bad + b.b_bad)
        t.buckets;
      let bad_fraction =
        if !total = 0 then 0.0 else float_of_int !bad /. float_of_int !total
      in
      {
        r_name = t.name;
        r_total = !total;
        r_bad = !bad;
        r_bad_fraction = bad_fraction;
        r_budget = t.budget;
        r_burn = bad_fraction /. t.budget;
        r_pass = bad_fraction <= t.budget;
        r_window_s = window_s t;
      })

let pass t = (report t).r_pass

(* One collector per SLO pushes the current window's numbers into
   gauges just before each render, so the Prometheus endpoint shows
   burn rate and compliance without the SLO owner polling. *)
let expose t =
  let labels = [ ("slo", t.name) ] in
  let g_burn =
    Metrics.gauge "sdb_slo_burn_rate"
      ~help:"Bad fraction over the window divided by the error budget (1.0 = burning exactly at budget)."
      ~labels
  and g_bad =
    Metrics.gauge "sdb_slo_bad_fraction"
      ~help:"Fraction of window requests over the objective (or failed)." ~labels
  and g_requests =
    Metrics.gauge "sdb_slo_window_requests"
      ~help:"Requests observed in the sliding window." ~labels
  and g_compliant =
    Metrics.gauge "sdb_slo_compliant"
      ~help:"1 while the SLO holds over the window, else 0." ~labels
  and g_objective =
    Metrics.gauge "sdb_slo_objective_seconds"
      ~help:"Latency objective: a slower request burns budget." ~labels
  and g_budget =
    Metrics.gauge "sdb_slo_budget"
      ~help:"Allowed bad fraction over the window." ~labels
  in
  Metrics.register_collector ~name:("slo:" ^ t.name) (fun () ->
      let r = report t in
      Metrics.set_gauge g_burn r.r_burn;
      Metrics.set_gauge g_bad r.r_bad_fraction;
      Metrics.set_gauge g_requests (float_of_int r.r_total);
      Metrics.set_gauge g_compliant (if r.r_pass then 1.0 else 0.0);
      Metrics.set_gauge g_objective t.objective_s;
      Metrics.set_gauge g_budget t.budget)
