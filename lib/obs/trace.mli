(** Structured tracing: named spans with start time, duration, and
    key/value attributes, delivered to a pluggable sink.

    Span names are a public interface (tests and dashboards match on
    them); the taxonomy used by the engine is documented in DESIGN.md.
    A span is emitted once, when it {e completes} — sinks therefore see
    spans in completion order, which for the engine's sequential update
    path is also phase order.

    Tracing is off by default ([set_sink None]): instrumented code
    guards its span bookkeeping behind {!active}, so an untraced process
    pays one atomic load per potential span. *)

type span = {
  name : string;
  start_s : float;  (** [Unix.gettimeofday] at span start *)
  dur_s : float;    (** duration in seconds *)
  attrs : (string * string) list;
}

type sink = span -> unit
(** Sinks must be thread-safe; spans from concurrent operations may
    arrive from different threads. *)

val set_sink : sink option -> unit
(** Install the process-wide sink, or [None] to disable tracing. *)

val active : unit -> bool
(** [true] iff a sink is installed.  Check this before doing work whose
    only purpose is producing a span (building attrs, timestamps). *)

val emit : span -> unit
(** Hand a completed span to the sink, if any. *)

val span : ?attrs:(string * string) list -> string -> start_s:float -> dur_s:float -> unit
(** [emit] for call sites that already hold the two timestamps. *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Time the thunk and emit the span when it returns.  If the thunk
    raises, the span is still emitted with an added
    [("error", exception)] attribute, and the exception is re-raised.
    When tracing is inactive the thunk runs untimed. *)

(** {1 Per-request context}

    A request-handling thread tags itself with a request id for the
    duration of one request; every span emitted from that thread (by
    any layer it calls into) then carries a [("req", id)] attribute.
    Filtering a sink's output on one id decomposes that request into
    its phases — rpc handling, commit-coordinator join, WAL flush,
    apply.  Spans emitted on behalf of a whole commit group (the
    leader's flush/apply) carry the {e leader's} id plus a
    [group_size] attribute. *)

val with_request : string -> (unit -> 'a) -> 'a
(** Run the thunk with the calling thread's request context set to the
    given id (restoring the previous context after, so nesting works).
    A no-op wrapper when tracing is inactive. *)

val current_request : unit -> string option
(** The calling thread's request id, if tracing is active and a
    {!with_request} is in flight. *)

(** {1 Sinks} *)

val null_sink : sink
(** Swallows everything.  [set_sink (Some null_sink)] keeps tracing
    "on" (spans are built and delivered) at minimal cost — used to
    measure instrumentation overhead. *)

val tee : sink list -> sink
(** Deliver every span to each sink in order (e.g. the slow-span ring
    plus a jsonl file). *)

val stderr_sink : unit -> sink
(** Human-readable one-line-per-span pretty printer:
    ["\[trace\] update.verify 0.012ms app=test-kv"]. *)

val jsonl_sink : out_channel -> sink
(** One JSON object per line:
    [{"name":"update.log","start_s":…,"dur_s":…,"attrs":{…}}].
    Flushes after every span so a crash loses at most the in-flight
    line.  The caller owns the channel. *)

module Ring : sig
  (** A bounded in-memory span buffer: keeps the most recent
      [capacity] spans, oldest first. *)

  type t

  val create : capacity:int -> t
  val sink : t -> sink
  val contents : t -> span list
  (** Oldest-to-newest; at most [capacity] spans (older ones are
      truncated away). *)

  val recent : ?min_dur_s:float -> max_n:int -> t -> span list
  (** The most recent (up to) [max_n] spans with duration at least
      [min_dur_s] (default 0), newest first. *)

  val clear : t -> unit
end

module Slow : sig
  (** The process-global slow-span ring: bounded memory for "what was
      slow recently?", queryable without a tracing pipeline (the name
      server exposes it over the [traces] RPC verb). *)

  val install : capacity:int -> threshold_s:float -> sink
  (** Create a fresh ring, register it as the process-global slow-span
      ring (replacing any previous one), and return a sink that keeps
      only spans of duration ≥ [threshold_s].  The sink still has to
      be put in place with {!set_sink}, alone or under {!tee}. *)

  val threshold_s : unit -> float option
  (** The installed ring's threshold, or [None] when no ring is
      installed. *)

  val recent : ?min_dur_s:float -> max_n:int -> unit -> span list
  (** The most recent (up to) [max_n] retained spans with duration at
      least [min_dur_s], newest first; [[]] when no ring is
      installed. *)
end
