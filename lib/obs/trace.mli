(** Structured tracing: named spans with start time, duration, and
    key/value attributes, delivered to a pluggable sink.

    Span names are a public interface (tests and dashboards match on
    them); the taxonomy used by the engine is documented in DESIGN.md.
    A span is emitted once, when it {e completes} — sinks therefore see
    spans in completion order, which for the engine's sequential update
    path is also phase order.

    Tracing is off by default ([set_sink None]): instrumented code
    guards its span bookkeeping behind {!active}, so an untraced process
    pays one atomic load per potential span. *)

type span = {
  name : string;
  start_s : float;  (** [Unix.gettimeofday] at span start *)
  dur_s : float;    (** duration in seconds *)
  attrs : (string * string) list;
}

type sink = span -> unit
(** Sinks must be thread-safe; spans from concurrent operations may
    arrive from different threads. *)

val set_sink : sink option -> unit
(** Install the process-wide sink, or [None] to disable tracing. *)

val active : unit -> bool
(** [true] iff a sink is installed.  Check this before doing work whose
    only purpose is producing a span (building attrs, timestamps). *)

val emit : span -> unit
(** Hand a completed span to the sink, if any. *)

val span : ?attrs:(string * string) list -> string -> start_s:float -> dur_s:float -> unit
(** [emit] for call sites that already hold the two timestamps. *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Time the thunk and emit the span when it returns.  If the thunk
    raises, the span is still emitted with an added
    [("error", exception)] attribute, and the exception is re-raised.
    When tracing is inactive the thunk runs untimed. *)

(** {1 Sinks} *)

val null_sink : sink
(** Swallows everything.  [set_sink (Some null_sink)] keeps tracing
    "on" (spans are built and delivered) at minimal cost — used to
    measure instrumentation overhead. *)

val stderr_sink : unit -> sink
(** Human-readable one-line-per-span pretty printer:
    ["\[trace\] update.verify 0.012ms app=test-kv"]. *)

val jsonl_sink : out_channel -> sink
(** One JSON object per line:
    [{"name":"update.log","start_s":…,"dur_s":…,"attrs":{…}}].
    Flushes after every span so a crash loses at most the in-flight
    line.  The caller owns the channel. *)

module Ring : sig
  (** A bounded in-memory span buffer, for tests: keeps the most recent
      [capacity] spans, oldest first. *)

  type t

  val create : capacity:int -> t
  val sink : t -> sink
  val contents : t -> span list
  (** Oldest-to-newest; at most [capacity] spans (older ones are
      truncated away). *)

  val clear : t -> unit
end
