module H = Sdb_util.Histogram

type labels = (string * string) list

type counter = { c_value : int Atomic.t }
type gauge = { g_mutex : Mutex.t; mutable g_value : float }
type histogram = { h_mutex : Mutex.t; h_samples : H.t }

type data =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type series = { labels : labels; data : data }

(* One family per metric name; all its series share the kind. *)
type family = {
  f_name : string;
  mutable f_help : string;
  f_kind : string; (* "counter" | "gauge" | "summary" *)
  mutable f_series : series list;
}

let enabled = Atomic.make true
let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

let registry : (string, family) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let canonical labels = List.sort compare labels

let kind_of_data = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "summary"

(* Find-or-create a series; the fresh thunk runs only under the lock. *)
let intern name ~help ~labels ~kind fresh =
  let labels = canonical labels in
  locked (fun () ->
      let family =
        match Hashtbl.find_opt registry name with
        | Some f ->
          if not (String.equal f.f_kind kind) then
            invalid_arg
              (Printf.sprintf "Metrics: %s is a %s, requested as %s" name f.f_kind
                 kind);
          if f.f_help = "" && help <> "" then f.f_help <- help;
          f
        | None ->
          let f = { f_name = name; f_help = help; f_kind = kind; f_series = [] } in
          Hashtbl.add registry name f;
          f
      in
      match List.find_opt (fun s -> s.labels = labels) family.f_series with
      | Some s -> s.data
      | None ->
        let data = fresh () in
        assert (String.equal (kind_of_data data) kind);
        family.f_series <- family.f_series @ [ { labels; data } ];
        data)

let counter ?(help = "") ?(labels = []) name =
  match
    intern name ~help ~labels ~kind:"counter" (fun () ->
        Counter { c_value = Atomic.make 0 })
  with
  | Counter c -> c
  | _ -> assert false

let gauge ?(help = "") ?(labels = []) name =
  match
    intern name ~help ~labels ~kind:"gauge" (fun () ->
        Gauge { g_mutex = Mutex.create (); g_value = 0.0 })
  with
  | Gauge g -> g
  | _ -> assert false

let histogram ?(help = "") ?(labels = []) name =
  match
    intern name ~help ~labels ~kind:"summary" (fun () ->
        Histogram { h_mutex = Mutex.create (); h_samples = H.create () })
  with
  | Histogram h -> h
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters are monotone";
  if Atomic.get enabled then ignore (Atomic.fetch_and_add c.c_value n : int)

let incr c = add c 1

let set_gauge g v =
  if Atomic.get enabled then begin
    Mutex.lock g.g_mutex;
    g.g_value <- v;
    Mutex.unlock g.g_mutex
  end

let observe h v =
  if Atomic.get enabled then begin
    Mutex.lock h.h_mutex;
    H.record h.h_samples v;
    Mutex.unlock h.h_mutex
  end

let time h f =
  if Atomic.get enabled then begin
    let t0 = Unix.gettimeofday () in
    (* Clamped: the wall clock can step backward (NTP) mid-measurement,
       and a negative duration would corrupt the histogram. *)
    Fun.protect
      ~finally:(fun () -> observe h (Float.max 0.0 (Unix.gettimeofday () -. t0)))
      f
  end
  else f ()

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)

let counter_value c = Atomic.get c.c_value

let gauge_value g =
  Mutex.lock g.g_mutex;
  let v = g.g_value in
  Mutex.unlock g.g_mutex;
  v

let histogram_snapshot h =
  Mutex.lock h.h_mutex;
  let s = H.snapshot h.h_samples in
  Mutex.unlock h.h_mutex;
  s

(* Registry-wide summary reads.  Lock order matches render: the
   registry mutex first, then each series' h_mutex inside. *)

let summaries () =
  locked (fun () ->
      Hashtbl.fold
        (fun _ f acc ->
          List.fold_left
            (fun acc s ->
              match s.data with
              | Histogram h -> (f.f_name, s.labels, histogram_snapshot h) :: acc
              | Counter _ | Gauge _ -> acc)
            acc f.f_series)
        registry []
      |> List.sort compare)

let merged_summary name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | None -> H.empty_snapshot
      | Some f ->
        let merged = H.create () in
        List.iter
          (fun s ->
            match s.data with
            | Histogram h ->
              Mutex.lock h.h_mutex;
              H.merge_into merged h.h_samples;
              Mutex.unlock h.h_mutex
            | Counter _ | Gauge _ -> ())
          f.f_series;
        H.snapshot merged)

(* ------------------------------------------------------------------ *)
(* Exposition                                                          *)

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let format_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> k ^ "=\"" ^ escape_label_value v ^ "\"") labels)
    ^ "}"

let fmt_float v =
  (* Shortest representation that round-trips; avoids "3.0000000001". *)
  let s = Printf.sprintf "%.12g" v in
  s

let render_series buf family { labels; data } =
  let line ?(suffix = "") ?(extra = []) value =
    Buffer.add_string buf
      (Printf.sprintf "%s%s%s %s\n" family.f_name suffix
         (format_labels (labels @ extra))
         value)
  in
  match data with
  | Counter c -> line (string_of_int (counter_value c))
  | Gauge g -> line (fmt_float (gauge_value g))
  | Histogram h ->
    let s = histogram_snapshot h in
    let q name v = line ~extra:[ ("quantile", name) ] (fmt_float v) in
    q "0.5" s.H.s_p50;
    q "0.9" s.H.s_p90;
    q "0.99" s.H.s_p99;
    q "0.999" s.H.s_p999;
    line ~suffix:"_sum" (fmt_float s.H.s_total);
    line ~suffix:"_count" (string_of_int s.H.s_count);
    line ~suffix:"_min" (fmt_float s.H.s_min);
    line ~suffix:"_max" (fmt_float s.H.s_max)

(* Collectors pull values from subsystems that don't push on every
   event (e.g. the concurrency sanitizer); they run before each render,
   outside the registry lock, because they call counter/gauge/set_gauge
   themselves. *)
let collectors : (string, unit -> unit) Hashtbl.t = Hashtbl.create 8
let collectors_mutex = Mutex.create ()

let register_collector ~name f =
  Mutex.lock collectors_mutex;
  Hashtbl.replace collectors name f;
  Mutex.unlock collectors_mutex

let run_collectors () =
  Mutex.lock collectors_mutex;
  let fs = Hashtbl.fold (fun _ f acc -> f :: acc) collectors [] in
  Mutex.unlock collectors_mutex;
  List.iter (fun f -> f ()) fs

let render () =
  run_collectors ();
  locked (fun () ->
      let families =
        Hashtbl.fold (fun _ f acc -> f :: acc) registry []
        |> List.sort (fun a b -> compare a.f_name b.f_name)
      in
      let buf = Buffer.create 4096 in
      List.iter
        (fun f ->
          if f.f_help <> "" then
            Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" f.f_name f.f_help);
          Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" f.f_name f.f_kind);
          List.iter (render_series buf f)
            (List.sort (fun a b -> compare a.labels b.labels) f.f_series))
        families;
      Buffer.contents buf)

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ f ->
          List.iter
            (fun s ->
              match s.data with
              | Counter c -> Atomic.set c.c_value 0
              | Gauge g ->
                Mutex.lock g.g_mutex;
                g.g_value <- 0.0;
                Mutex.unlock g.g_mutex
              | Histogram h ->
                Mutex.lock h.h_mutex;
                H.clear h.h_samples;
                Mutex.unlock h.h_mutex)
            f.f_series)
        registry)
