type span = {
  name : string;
  start_s : float;
  dur_s : float;
  attrs : (string * string) list;
}

type sink = span -> unit

(* The sink is read on every potential span: keep it an Atomic so the
   hot path is one load, and writers need no lock. *)
let current : sink option Atomic.t = Atomic.make None

let set_sink s = Atomic.set current s
let active () = Atomic.get current <> None

let emit span =
  match Atomic.get current with None -> () | Some sink -> sink span

let span ?(attrs = []) name ~start_s ~dur_s = emit { name; start_s; dur_s; attrs }

let with_span ?(attrs = []) name f =
  if not (active ()) then f ()
  else begin
    let start_s = Unix.gettimeofday () in
    match f () with
    | v ->
      emit { name; start_s; dur_s = Unix.gettimeofday () -. start_s; attrs };
      v
    | exception e ->
      emit
        {
          name;
          start_s;
          dur_s = Unix.gettimeofday () -. start_s;
          attrs = attrs @ [ ("error", Printexc.to_string e) ];
        };
      raise e
  end

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)

let null_sink (_ : span) = ()

let stderr_sink () =
  let m = Sdb_check.Mu.make "obs.trace.sink" in
  fun s ->
    let attrs =
      String.concat "" (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) s.attrs)
    in
    Sdb_check.Mu.lock m;
    (Printf.eprintf "[trace] %s %.3fms%s\n%!" s.name (s.dur_s *. 1000.0) attrs
    [@sdb.lint.allow
      "print-in-lib: stderr_sink IS the designated stderr emitter the rule \
       points everything else at"]);
    Sdb_check.Mu.unlock m

let json_escape v =
  let buf = Buffer.create (String.length v + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let jsonl_sink oc =
  let m = Sdb_check.Mu.make "obs.trace.sink" in
  fun s ->
    let attrs =
      String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
           s.attrs)
    in
    Sdb_check.Mu.lock m;
    Printf.fprintf oc "{\"name\":\"%s\",\"start_s\":%.6f,\"dur_s\":%.9f,\"attrs\":{%s}}\n"
      (json_escape s.name) s.start_s s.dur_s attrs;
    flush oc;
    Sdb_check.Mu.unlock m

module Ring = struct
  type t = {
    mutex : Sdb_check.Mu.t;
    buf : span option array;
    mutable next : int;  (* total spans ever written *)
  }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Trace.Ring.create: capacity must be positive";
    {
      mutex = Sdb_check.Mu.make "obs.trace.ring";
      buf = Array.make capacity None;
      next = 0;
    }

  let sink t s =
    Sdb_check.Mu.with_lock t.mutex (fun () ->
        t.buf.(t.next mod Array.length t.buf) <- Some s;
        t.next <- t.next + 1)

  let contents t =
    Sdb_check.Mu.with_lock t.mutex (fun () ->
        let cap = Array.length t.buf in
        let count = min t.next cap in
        let first = t.next - count in
        List.init count (fun i ->
            match t.buf.((first + i) mod cap) with
            | Some s -> s
            | None -> assert false))

  let clear t =
    Sdb_check.Mu.with_lock t.mutex (fun () ->
        Array.fill t.buf 0 (Array.length t.buf) None;
        t.next <- 0)
end
