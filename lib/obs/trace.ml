type span = {
  name : string;
  start_s : float;
  dur_s : float;
  attrs : (string * string) list;
}

type sink = span -> unit

(* The sink is read on every potential span: keep it an Atomic so the
   hot path is one load, and writers need no lock. *)
let current : sink option Atomic.t = Atomic.make None

let set_sink s = Atomic.set current s
let active () = Atomic.get current <> None

(* Per-thread request context: a request-handling thread tags itself
   once, and every span it emits while handling that request carries a
   ("req", id) attribute — that is what lets one slow RPC be decomposed
   into its rpc/verify/join/flush/apply phases after the fact.  The
   table is consulted only when a sink is installed. *)
module Context = struct
  let mu = Sdb_check.Mu.make "obs.trace.context"
  let tbl : (int, string) Hashtbl.t = Hashtbl.create 32

  let self () = Thread.id (Thread.self ())

  let get () = Sdb_check.Mu.with_lock mu (fun () -> Hashtbl.find_opt tbl (self ()))

  let set = function
    | Some id -> Sdb_check.Mu.with_lock mu (fun () -> Hashtbl.replace tbl (self ()) id)
    | None -> Sdb_check.Mu.with_lock mu (fun () -> Hashtbl.remove tbl (self ()))
end

let current_request () = if active () then Context.get () else None

let with_request id f =
  if not (active ()) then f ()
  else begin
    let prev = Context.get () in
    Context.set (Some id);
    Fun.protect ~finally:(fun () -> Context.set prev) f
  end

let emit span =
  match Atomic.get current with
  | None -> ()
  | Some sink ->
    (* The wall clock can step backward (NTP) between a span's start and
       end stamps; a negative duration is noise for every sink and would
       dodge slow-span thresholds, so clamp here — the one choke point
       all spans pass through. *)
    let span = if span.dur_s < 0.0 then { span with dur_s = 0.0 } else span in
    let span =
      if List.mem_assoc "req" span.attrs then span
      else
        match Context.get () with
        | None -> span
        | Some id -> { span with attrs = ("req", id) :: span.attrs }
    in
    sink span

let span ?(attrs = []) name ~start_s ~dur_s = emit { name; start_s; dur_s; attrs }

let with_span ?(attrs = []) name f =
  if not (active ()) then f ()
  else begin
    let start_s = Unix.gettimeofday () in
    match f () with
    | v ->
      emit { name; start_s; dur_s = Unix.gettimeofday () -. start_s; attrs };
      v
    | exception e ->
      emit
        {
          name;
          start_s;
          dur_s = Unix.gettimeofday () -. start_s;
          attrs = attrs @ [ ("error", Printexc.to_string e) ];
        };
      raise e
  end

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)

let null_sink (_ : span) = ()

let tee sinks s = List.iter (fun sink -> sink s) sinks

let stderr_sink () =
  let m = Sdb_check.Mu.make "obs.trace.sink" in
  fun s ->
    let attrs =
      String.concat "" (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) s.attrs)
    in
    Sdb_check.Mu.lock m;
    (Printf.eprintf "[trace] %s %.3fms%s\n%!" s.name (s.dur_s *. 1000.0) attrs
    [@sdb.lint.allow
      "print-in-lib: stderr_sink IS the designated stderr emitter the rule \
       points everything else at"]);
    Sdb_check.Mu.unlock m

let json_escape v =
  let buf = Buffer.create (String.length v + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let jsonl_sink oc =
  let m = Sdb_check.Mu.make "obs.trace.sink" in
  fun s ->
    let attrs =
      String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
           s.attrs)
    in
    Sdb_check.Mu.lock m;
    Printf.fprintf oc "{\"name\":\"%s\",\"start_s\":%.6f,\"dur_s\":%.9f,\"attrs\":{%s}}\n"
      (json_escape s.name) s.start_s s.dur_s attrs;
    flush oc;
    Sdb_check.Mu.unlock m

module Ring = struct
  type t = {
    mutex : Sdb_check.Mu.t;
    buf : span option array;
    mutable next : int;  (* total spans ever written *)
  }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Trace.Ring.create: capacity must be positive";
    {
      mutex = Sdb_check.Mu.make "obs.trace.ring";
      buf = Array.make capacity None;
      next = 0;
    }

  let sink t s =
    Sdb_check.Mu.with_lock t.mutex (fun () ->
        t.buf.(t.next mod Array.length t.buf) <- Some s;
        t.next <- t.next + 1)

  let contents t =
    Sdb_check.Mu.with_lock t.mutex (fun () ->
        let cap = Array.length t.buf in
        let count = min t.next cap in
        let first = t.next - count in
        List.init count (fun i ->
            match t.buf.((first + i) mod cap) with
            | Some s -> s
            | None -> assert false))

  let clear t =
    Sdb_check.Mu.with_lock t.mutex (fun () ->
        Array.fill t.buf 0 (Array.length t.buf) None;
        t.next <- 0)

  let recent ?(min_dur_s = 0.0) ~max_n t =
    if max_n <= 0 then []
    else
      Sdb_check.Mu.with_lock t.mutex (fun () ->
          let cap = Array.length t.buf in
          let count = min t.next cap in
          let rec go i acc taken =
            if i < 0 || taken >= max_n then List.rev acc
            else
              match t.buf.((t.next - count + i) mod cap) with
              | Some s when s.dur_s >= min_dur_s ->
                go (i - 1) (s :: acc) (taken + 1)
              | Some _ | None -> go (i - 1) acc taken
          in
          (* Walk newest to oldest so [max_n] keeps the most recent
             matches; the accumulator is built oldest-at-head, so the
             [List.rev] at termination yields newest-first. *)
          go (count - 1) [] 0)
end

(* The process-global slow-span ring: one ring (installed by the
   server) that keeps the last spans slower than a threshold, so "what
   was slow recently?" is answerable over RPC without a tracing
   pipeline.  The sink returned by [install] still has to be put in
   place with {!set_sink} (composing with others via {!tee}). *)
module Slow = struct
  let installed : (Ring.t * float) option Atomic.t = Atomic.make None

  let install ~capacity ~threshold_s =
    let r = Ring.create ~capacity in
    Atomic.set installed (Some (r, threshold_s));
    fun s -> if s.dur_s >= threshold_s then Ring.sink r s

  let threshold_s () =
    match Atomic.get installed with None -> None | Some (_, t) -> Some t

  let recent ?min_dur_s ~max_n () =
    match Atomic.get installed with
    | None -> []
    | Some (r, _) -> Ring.recent ?min_dur_s ~max_n r
end
