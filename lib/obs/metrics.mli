(** A process-wide metrics registry: named counters, gauges, and
    label-tagged latency histograms.

    Every metric belongs to a {e family} (its name, e.g.
    ["sdb_update_phase_seconds"]) and is distinguished within the family
    by its label set (e.g. [("phase", "verify")]).  Requesting the same
    name and labels twice returns the same underlying metric, so
    instrumentation sites can call {!counter}/{!gauge}/{!histogram}
    freely without coordinating ownership.  Requesting a name that
    already exists with a different metric kind raises
    [Invalid_argument]: a family has exactly one kind.

    The registry is cheap enough to leave on in the hot path: a counter
    increment is one atomic fetch-and-add, a histogram observation is
    one mutex-protected array store.  {!set_enabled}[ false] turns every
    mutation into a single atomic load and branch, so instrumented code
    needs no conditional of its own.  Use {!is_enabled} only to skip
    {e extra} work (such as calling [Unix.gettimeofday] to produce a
    sample); never to guard a plain [incr].

    All operations are thread-safe. *)

type labels = (string * string) list

type counter
type gauge
type histogram

val set_enabled : bool -> unit
(** Globally enable (default) or disable recording.  Disabled, every
    [incr]/[add]/[set_gauge]/[observe] is a no-op; reads and {!render}
    still work and show the last recorded values. *)

val is_enabled : unit -> bool

(** {1 Creation (idempotent per name + labels)} *)

val counter : ?help:string -> ?labels:labels -> string -> counter
val gauge : ?help:string -> ?labels:labels -> string -> gauge
val histogram : ?help:string -> ?labels:labels -> string -> histogram

(** {1 Recording} *)

val incr : counter -> unit
val add : counter -> int -> unit
(** Counters are monotone: [add] with a negative amount raises
    [Invalid_argument]. *)

val set_gauge : gauge -> float -> unit
val observe : histogram -> float -> unit

val time : histogram -> (unit -> 'a) -> 'a
(** Run the thunk and observe its wall-clock duration in seconds (also
    on exception).  When the registry is disabled the thunk runs
    untimed. *)

(** {1 Reading} *)

val counter_value : counter -> int
val gauge_value : gauge -> float
val histogram_snapshot : histogram -> Sdb_util.Histogram.snapshot

val summaries : unit -> (string * labels * Sdb_util.Histogram.snapshot) list
(** Every histogram series in the registry as
    [(family, labels, snapshot)], sorted by family then labels — the
    data behind a human-readable percentile table (sdb_inspect,
    sdb_top) without parsing the text exposition. *)

val merged_summary : string -> Sdb_util.Histogram.snapshot
(** One snapshot over the union of all sample sets of the named
    summary family (e.g. every [meth] series of
    ["sdb_rpc_latency_seconds"] combined).  The empty snapshot when the
    family does not exist or has only counter/gauge series. *)

(** {1 Exposition} *)

val register_collector : name:string -> (unit -> unit) -> unit
(** Register a pull-style collector run at the start of every
    {!render}, for subsystems that keep their own counters rather than
    pushing on each event (the concurrency sanitizer, for one).  The
    collector typically calls {!counter}/{!gauge} and records deltas.
    Registration is idempotent per [name]: the latest closure wins, so
    re-creating an engine does not stack duplicate collectors. *)

val render : unit -> string
(** The whole registry in Prometheus text format, deterministically
    ordered (families alphabetical, series by label value).  Histograms
    render as summaries: [quantile="0.5"|"0.9"|"0.99"|"0.999"] series
    plus [_sum], [_count], [_min] and [_max]. *)

val reset : unit -> unit
(** Zero every registered metric in place: counters and gauges to 0,
    histograms emptied.  Handles stay valid (instrumentation sites keep
    theirs for the process lifetime).  Intended for tests and for
    benchmark phase isolation. *)
