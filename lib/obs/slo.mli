(** Latency SLOs: declare a target like "p99 ≤ 25 ms", feed it request
    latencies, and read back error-budget burn over a sliding window.

    A target is a latency {e objective} plus an error {e budget}: every
    request slower than the objective — or failing outright — is a bad
    event, and the SLO holds while the bad fraction over the window
    stays within the budget.  [budget = 0.01] therefore means "99% of
    requests within the objective", i.e. p99 ≤ objective; [0.001]
    means p999.

    The window is a ring of fixed-width buckets rotated by wall-clock
    time: memory is constant regardless of request rate, and old
    traffic ages out one bucket at a time.  An empty window passes
    vacuously.  Clock steps are handled conservatively: a backward
    step never rotates (no history is dropped), and a forward step of
    a whole window or more empties every bucket.

    All operations are thread-safe; {!record} is a mutex-protected
    pair of integer increments.  *)

type t

type report = {
  r_name : string;
  r_total : int;        (** requests observed in the window *)
  r_bad : int;          (** of which over the objective, or failed *)
  r_bad_fraction : float;  (** [r_bad / r_total], 0 on an empty window *)
  r_budget : float;
  r_burn : float;       (** [r_bad_fraction / r_budget]; 1.0 = burning
                            exactly at budget, above 1.0 = violating *)
  r_pass : bool;        (** [r_bad_fraction <= r_budget] *)
  r_window_s : float;   (** width of the sliding window *)
}

val create :
  ?now:(unit -> float) ->
  ?window_s:float ->
  ?buckets:int ->
  name:string ->
  objective_ms:float ->
  budget:float ->
  unit ->
  t
(** A fresh SLO tracker.  [window_s] (default 60) is the sliding
    window, split into [buckets] (default 6) rotating buckets — the
    granularity at which old traffic expires.  [now] (default
    [Unix.gettimeofday]) is injectable for tests.  Raises
    [Invalid_argument] unless [objective_ms > 0], [budget] is in
    (0,1), and the window/bucket shape is positive. *)

val record : t -> float -> unit
(** Observe one request's latency in {e seconds} (the unit every
    engine histogram uses); it burns budget iff above the objective. *)

val record_failure : t -> unit
(** Observe a failed request: always burns budget. *)

val report : t -> report
val pass : t -> bool
(** [(report t).r_pass] *)

val objective_ms : t -> float
val budget : t -> float
val window_s : t -> float

val expose : t -> unit
(** Register a {!Metrics.register_collector} pull hook (named
    ["slo:<name>"], so re-creating an SLO of the same name replaces
    it) that refreshes the [sdb_slo_*] gauges — burn rate, bad
    fraction, window request count, compliance, objective and budget,
    all labelled [{slo="<name>"}] — before every metrics render. *)
