module Fs = Sdb_storage.Fs
module Crc32 = Sdb_util.Crc32
module Metrics = Sdb_obs.Metrics

let m_appends =
  Metrics.counter "sdb_wal_appends_total" ~help:"Log entries appended."

let m_appended_bytes =
  Metrics.counter "sdb_wal_appended_bytes_total"
    ~help:"Framed bytes appended to the log."

let m_append_seconds =
  Metrics.histogram "sdb_wal_append_seconds"
    ~help:"Latency of one framed append (write, no sync)."

let m_fsync_seconds =
  Metrics.histogram "sdb_wal_fsync_seconds" ~help:"Latency of one log fsync."

let m_syncs = Metrics.counter "sdb_wal_syncs_total" ~help:"Log fsyncs issued."

let m_group_flushes =
  Metrics.counter "sdb_wal_group_flushes_total"
    ~help:"Group-commit flushes: one write + one fsync covering all staged frames."

let m_entries_read =
  Metrics.counter "sdb_wal_entries_read_total"
    ~help:"Valid entries decoded by log scans."

let m_crc_failures =
  Metrics.counter "sdb_wal_crc_failures_total"
    ~help:"Entries whose CRC or payload read failed during a scan."

let m_torn_tails =
  Metrics.counter "sdb_wal_torn_tails_total"
    ~help:"Scans that stopped early at a damaged or truncated tail."

let magic = "SDBWAL1\n"
let fingerprint_size = 16
let header_size = String.length magic + fingerprint_size
let frame_overhead = 8 (* u32 length + u32 crc *)
let max_entry_size = 1 lsl 28

type error =
  | Not_a_log of string
  | Fingerprint_mismatch of { expected : string; found : string }

let pp_error ppf = function
  | Not_a_log reason -> Format.fprintf ppf "not a log file: %s" reason
  | Fingerprint_mismatch { expected; found } ->
    Format.fprintf ppf "log fingerprint mismatch: expected %s, found %s"
      (Digest.to_hex expected) (Digest.to_hex found)

let check_fingerprint fp =
  if String.length fp <> fingerprint_size then
    invalid_arg "Wal: fingerprint must be 16 bytes"

exception Append_rolled_back of exn

module Writer = struct
  type t = {
    fs : Fs.t;
    file : string;
    w : Fs.writer;
    mutable entries : int;
    mutable length : int;
    mutable closed : bool;
    (* Frames staged for the next group flush, and a reusable scratch
       buffer for plain appends when no group is forming. *)
    pending : Buffer.t;
    mutable pending_frames : int;
  }

  let create fs file ~fingerprint =
    check_fingerprint fingerprint;
    let w = fs.Fs.create file in
    w.Fs.w_write (magic ^ fingerprint);
    w.Fs.w_sync ();
    { fs; file; w; entries = 0; length = header_size; closed = false;
      pending = Buffer.create 512; pending_frames = 0 }

  let reopen fs file ~fingerprint ~valid_length ~entries =
    check_fingerprint fingerprint;
    if valid_length < header_size then
      invalid_arg "Wal.Writer.reopen: valid_length shorter than header";
    let size = fs.Fs.file_size file in
    if valid_length > size then invalid_arg "Wal.Writer.reopen: valid_length beyond EOF";
    if valid_length < size then fs.Fs.truncate file valid_length;
    let w = fs.Fs.open_append file in
    { fs; file; w; entries; length = valid_length; closed = false;
      pending = Buffer.create 512; pending_frames = 0 }

  (* A failed append happens strictly before the entry's fsync, i.e.
     before the commit point, so the update can still fail cleanly —
     provided the log is put back exactly as it was.  [No_space] is
     already all-or-nothing (nothing was written); any other write
     failure may have left partial bytes, which we cut back off with a
     truncate to the last known-good length.  If the truncate succeeds
     the original failure is re-raised wrapped in {!Append_rolled_back}
     so the engine knows the log is intact; if even the truncate fails
     the original exception escapes untouched and the engine must
     poison. *)
  let write_rollback t s =
    try t.w.Fs.w_write s with
    | Fs.No_space _ as e -> raise (Append_rolled_back e)
    | Fs.Io_error _ as e -> (
      (* Only structured I/O failures are rolled back; anything else
         (e.g. a simulated whole-machine crash) passes through — there
         is no machine left to roll back on. *)
      match t.fs.Fs.truncate t.file t.length with
      | () -> raise (Append_rolled_back e)
      | exception _ -> raise e)

  let check t = if t.closed then Fs.io_fail ~op:"write" "Wal.Writer: used after close"

  (* Clamped: a backward wall-clock step (NTP) mid-write must not put a
     negative duration into the latency histograms. *)
  let elapsed_since t0 = Float.max 0.0 (Unix.gettimeofday () -. t0)

  let frame_into buf payload =
    let len = String.length payload in
    if len > max_entry_size then invalid_arg "Wal.Writer: entry too large";
    Buffer.add_int32_le buf (Int32.of_int len);
    Buffer.add_int32_le buf (Crc32.digest_string payload);
    Buffer.add_string buf payload

  (* Plain appends may interleave with a forming group only in the
     order stage* -> flush: a frame written here while frames are
     staged would land on disk *before* them, breaking LSN order. *)
  let check_no_group t what =
    if t.pending_frames > 0 then
      invalid_arg ("Wal.Writer." ^ what ^ ": a group is staged; flush or discard it first")

  let append t payload =
    check t;
    check_no_group t "append";
    Sdb_check.assert_no_mutex_held_during_io ~site:"wal.append";
    Buffer.clear t.pending;
    frame_into t.pending payload;
    let framed = Buffer.contents t.pending in
    Buffer.clear t.pending;
    let timed = Metrics.is_enabled () in
    let t0 = if timed then Unix.gettimeofday () else 0.0 in
    write_rollback t framed;
    if timed then Metrics.observe m_append_seconds (elapsed_since t0);
    Metrics.incr m_appends;
    Metrics.add m_appended_bytes (String.length framed);
    t.length <- t.length + String.length framed;
    let index = t.entries in
    t.entries <- index + 1;
    index

  let append_raw_frames t raw ~count =
    check t;
    check_no_group t "append_raw_frames";
    if count < 0 then invalid_arg "Wal.Writer.append_raw_frames: negative count";
    Sdb_check.assert_no_mutex_held_during_io ~site:"wal.append_raw_frames";
    write_rollback t raw;
    Metrics.add m_appends count;
    Metrics.add m_appended_bytes (String.length raw);
    t.length <- t.length + String.length raw;
    t.entries <- t.entries + count

  (* Group-commit staging is pure buffering: the leader runs it under
     the Update mode and nothing here may touch the disk. *)
  let stage t payload =
    check t;
    frame_into t.pending payload;
    t.pending_frames <- t.pending_frames + 1
    [@@sdb.noblock]

  let staged_frames t = t.pending_frames [@@sdb.noblock]
  let staged_bytes t = Buffer.length t.pending [@@sdb.noblock]

  let discard_group t =
    Buffer.clear t.pending;
    t.pending_frames <- 0
    [@@sdb.noblock]

  let sync t =
    check t;
    Sdb_check.assert_no_mutex_held_during_io ~site:"wal.sync";
    let timed = Metrics.is_enabled () in
    let t0 = if timed then Unix.gettimeofday () else 0.0 in
    t.w.Fs.w_sync ();
    if timed then Metrics.observe m_fsync_seconds (elapsed_since t0);
    Metrics.incr m_syncs

  let append_sync t payload =
    let index = append t payload in
    sync t;
    index

  (* The group-commit emission: everything staged goes out as one
     write and one fsync.  A failed write is rolled back exactly like a
     plain append (the file is truncated to the last-good length and
     [Append_rolled_back] carries the cause) — but the staged frames
     are consumed either way: after any failure the group is gone and
     each member must be failed by the caller.  A failed fsync escapes
     raw, after the length/entry counters already cover the written
     frames — the caller must treat the log as suspect (fsyncgate). *)
  let flush_group t =
    check t;
    let count = t.pending_frames in
    if count = 0 then (t.entries, 0)
    else begin
      Sdb_check.assert_no_mutex_held_during_io ~site:"wal.flush_group";
      let raw = Buffer.contents t.pending in
      discard_group t;
      let timed = Metrics.is_enabled () in
      let t0 = if timed then Unix.gettimeofday () else 0.0 in
      write_rollback t raw;
      if timed then Metrics.observe m_append_seconds (elapsed_since t0);
      Metrics.add m_appends count;
      Metrics.add m_appended_bytes (String.length raw);
      t.length <- t.length + String.length raw;
      let first = t.entries in
      t.entries <- first + count;
      Metrics.incr m_group_flushes;
      sync t;
      (first, count)
    end

  let entries t = t.entries
  let length t = t.length

  let close t =
    if not t.closed then begin
      t.closed <- true;
      t.w.Fs.w_close ()
    end
end

module Reader = struct
  type policy = Stop_at_damage | Skip_damaged
  type entry = { index : int; payload : string; offset : int }

  type outcome = {
    entries_read : int;
    skipped : int;
    valid_length : int;
    stopped_early : string option;
    entries_beyond_damage : int;
    damage : (int * string) list;
  }

  (* Read exactly [n] bytes unless EOF or damage intervenes. *)
  type chunk = Full of bytes | Short of int | Damaged of string

  let read_exact r n =
    let buf = Bytes.create n in
    let rec go got =
      if got = n then Full buf
      else
        match r.Fs.r_read buf got (n - got) with
        | 0 -> Short got
        | k -> go (got + k)
        | exception Fs.Read_error { reason; _ } -> Damaged reason
    in
    go 0

  let fold fs file ~fingerprint ~policy ~init ~f =
    check_fingerprint fingerprint;
    if not (fs.Fs.exists file) then Error (Not_a_log "file does not exist")
    else begin
      let r = fs.Fs.open_reader file in
      Fun.protect
        ~finally:(fun () -> r.Fs.r_close ())
        (fun () ->
          match read_exact r header_size with
          | Short _ -> Error (Not_a_log "file shorter than header")
          | Damaged reason -> Error (Not_a_log ("damaged header: " ^ reason))
          | Full hdr ->
            let found_magic = Bytes.sub_string hdr 0 (String.length magic) in
            if not (String.equal found_magic magic) then
              Error (Not_a_log "bad magic")
            else begin
              let found_fp = Bytes.sub_string hdr (String.length magic) fingerprint_size in
              if not (String.equal found_fp fingerprint) then
                Error (Fingerprint_mismatch { expected = fingerprint; found = found_fp })
              else begin
                let size = r.Fs.r_size in
                (* Probe past a damaged entry with a known extent: any
                   valid frames beyond it mean interior damage, not a
                   torn tail. *)
                let probe_beyond start =
                  let rec go offset found =
                    if offset + frame_overhead > size then found
                    else begin
                      r.Fs.r_seek offset;
                      match read_exact r frame_overhead with
                      | Short _ | Damaged _ -> found
                      | Full hdr ->
                        let len = Int32.to_int (Bytes.get_int32_le hdr 0) in
                        let crc = Bytes.get_int32_le hdr 4 in
                        if len < 0 || len > max_entry_size
                           || offset + frame_overhead + len > size
                        then found
                        else begin
                          match read_exact r len with
                          | Short _ | Damaged _ -> found
                          | Full payload ->
                            if
                              Crc32.equal
                                (Crc32.digest_bytes payload ~pos:0 ~len)
                                crc
                            then go (offset + frame_overhead + len) (found + 1)
                            else found
                        end
                    end
                  in
                  go start 0
                in
                let rec loop acc index skipped dmg offset =
                  let finish ?probe_from reason =
                    let beyond =
                      match probe_from with
                      | Some start when reason <> None -> probe_beyond start
                      | _ -> 0
                    in
                    let dmg =
                      match reason with
                      | Some r when r <> "" -> (offset, r) :: dmg
                      | _ -> dmg
                    in
                    Metrics.add m_entries_read index;
                    if reason <> None then Metrics.incr m_torn_tails;
                    ( acc,
                      {
                        entries_read = index;
                        skipped;
                        valid_length = offset;
                        stopped_early = reason;
                        entries_beyond_damage = beyond;
                        damage = List.rev dmg;
                      } )
                  in
                  if offset >= size then finish None
                  else
                    match read_exact r frame_overhead with
                    | Short 0 -> finish None
                    | Short _ -> finish (Some "truncated frame header")
                    | Damaged reason ->
                      finish (Some ("damaged frame header: " ^ reason))
                    | Full hdr ->
                      let len = Int32.to_int (Bytes.get_int32_le hdr 0) in
                      let crc = Bytes.get_int32_le hdr 4 in
                      if len < 0 || len > max_entry_size then
                        finish (Some "implausible entry length")
                      else if offset + frame_overhead + len > size then
                        finish (Some "truncated entry payload")
                      else begin
                        let after = offset + frame_overhead + len in
                        match read_exact r len with
                        | Short _ -> finish (Some "truncated entry payload")
                        | Damaged reason -> begin
                          Metrics.incr m_crc_failures;
                          match policy with
                          | Stop_at_damage ->
                            finish ~probe_from:after
                              (Some ("torn entry payload: " ^ reason))
                          | Skip_damaged ->
                            r.Fs.r_seek after;
                            loop acc index (skipped + 1)
                              ((offset, "torn entry payload: " ^ reason) :: dmg)
                              after
                        end
                        | Full payload_bytes ->
                          let payload = Bytes.unsafe_to_string payload_bytes in
                          if not (Crc32.equal (Crc32.digest_string payload) crc) then begin
                            Metrics.incr m_crc_failures;
                            match policy with
                            | Stop_at_damage ->
                              finish ~probe_from:after (Some "entry crc mismatch")
                            | Skip_damaged ->
                              loop acc index (skipped + 1)
                                ((offset, "entry crc mismatch") :: dmg)
                                after
                          end
                          else begin
                            let acc = f acc { index; payload; offset } in
                            loop acc (index + 1) skipped dmg after
                          end
                      end
                in
                Ok (loop init 0 0 [] header_size)
              end
            end)
    end

  let count_entries fs file ~fingerprint =
    match
      fold fs file ~fingerprint ~policy:Stop_at_damage ~init:0
        ~f:(fun acc _ -> acc + 1)
    with
    | Ok (n, outcome) -> Ok (n, outcome)
    | Error e -> Error e
end
