(** The redo log (write-ahead log of committed updates).

    A log file is a fixed header followed by framed entries:

    {v
    header : magic "SDBWAL1\n" | fingerprint (16 bytes)
    entry  : length (u32 LE) | crc32 of payload (u32 LE) | payload
    v}

    The fingerprint is the pickle fingerprint of the update type, so a
    log written by a program with different types is rejected at open.

    Appending an entry and forcing it with one fsync is the paper's
    commit point: "if we crash before the write occurs on the disk, the
    update is not visible after a restart; if we crash after the write
    completes, the entire update will be completed after a restart"
    (§3).  The length prefix plus the device's partially-written-page
    error (simulated by {!Mem_fs}, approximated by the CRC on real
    files) lets the reader "detect a partially written log entry, even
    if the log entry would span multiple disk pages; such a partial log
    entry is discarded" (§4).

    {!Reader.fold} recovers the valid prefix and reports the byte
    offset where validity ends, so the engine can truncate a torn tail
    and resume appending.  The [Skip_damaged] policy implements the
    §4 hard-error option of "ignoring just the damaged log entry" when
    the application's updates are independent. *)

type error =
  | Not_a_log of string  (** missing/short/foreign header *)
  | Fingerprint_mismatch of { expected : string; found : string }

val pp_error : Format.formatter -> error -> unit

exception Append_rolled_back of exn
(** A log append failed {e before} the commit point and the log was
    restored to exactly its prior contents (truncated back to the last
    known-good length, or nothing was written at all as with
    {!Sdb_storage.Fs.No_space}).  Carries the original failure.  The
    engine may reject the one update cleanly and keep running.  When an
    append failure escapes {e without} this wrapper, partial bytes may
    remain and the caller must treat the log as suspect. *)

val header_size : int
val frame_overhead : int
(** Bytes of framing added per entry (length + CRC words). *)

module Writer : sig
  type t

  val create : Sdb_storage.Fs.t -> string -> fingerprint:string -> t
  (** Create/truncate the file, write and sync the header. *)

  val reopen :
    Sdb_storage.Fs.t -> string -> fingerprint:string -> valid_length:int ->
    entries:int -> t
  (** Resume appending to a recovered log.  [valid_length] is the byte
      offset reported by {!Reader.fold}; anything beyond it is
      truncated first. *)

  val append : t -> string -> int
  (** Buffer one framed entry (no fsync); returns its index.  On write
      failure, attempts to roll the file back and raises
      {!Append_rolled_back} on success (see above).  Raises
      [Invalid_argument] while frames are staged for a group (see
      {!stage}): a plain append would land on disk before them. *)

  val frame_into : Buffer.t -> string -> unit
  (** Append one framed entry (length word, CRC word, payload) for this
      payload to the buffer — the wire encoding of {!append}, without
      writing anything.  Raises [Invalid_argument] if the payload
      exceeds the entry size limit. *)

  (** {2 Group commit}

      N updates, one disk transfer: frames are {!stage}d into a pending
      in-memory group, then {!flush_group} emits the whole group as one
      write plus one fsync.  The staged frames are invisible to
      {!entries}/{!length} (and to readers) until the flush. *)

  val stage : t -> string -> unit
  (** Frame the payload and add it to the pending group.  Nothing
      reaches the file system. *)

  val staged_frames : t -> int
  (** Frames currently staged. *)

  val staged_bytes : t -> int
  (** Framed bytes currently staged. *)

  val flush_group : t -> int * int
  (** Write every staged frame with one append and force it with one
      fsync — the whole group's commit point.  Returns
      [(first_index, count)]: the staged frames now occupy entry
      indices [first_index .. first_index + count - 1].  With nothing
      staged, does no I/O and returns [(entries t, 0)].

      The staged group is consumed even on failure.  A failed write is
      rolled back and raises {!Append_rolled_back} exactly like
      {!append} — the log is intact, no member committed.  A failed
      fsync escapes raw and the log must be treated as suspect
      (any prefix of the group may be durable). *)

  val discard_group : t -> unit
  (** Drop all staged frames without writing them. *)

  val append_raw_frames : t -> string -> count:int -> unit
  (** Append bytes that are already valid frames ([count] of them),
      e.g. a byte range copied out of another log of the same
      fingerprint.  Used by the fuzzy checkpoint to carry the
      concurrently-committed tail into the new generation without
      re-encoding it. *)

  val sync : t -> unit
  (** Force everything appended so far — the commit point. *)

  val append_sync : t -> string -> int
  (** [append] then [sync]: one update, one disk write (§3). *)

  val entries : t -> int
  val length : t -> int
  (** Current file length in bytes (header included). *)

  val close : t -> unit
end

module Reader : sig
  type policy =
    | Stop_at_damage
        (** Normal restart: the first truncated, torn or corrupt entry
            ends the replay; it and everything after are discarded. *)
    | Skip_damaged
        (** Hard-error recovery: a damaged entry whose length field is
            still readable is skipped and replay continues. *)

  type entry = { index : int; payload : string; offset : int }
  (** [index] counts valid entries from 0; [offset] is the byte
      position of the entry's frame in the file. *)

  type outcome = {
    entries_read : int;
    skipped : int;  (** damaged entries skipped under [Skip_damaged] *)
    valid_length : int;
        (** end of the last byte that replay accepted; the tail beyond
            this must be truncated before appending resumes *)
    stopped_early : string option;
        (** reason replay ended before the end of file, if it did *)
    entries_beyond_damage : int;
        (** under [Stop_at_damage], the number of {e valid} entries
            found after the damaged one (probed when the damaged
            entry's extent is known).  Zero means the damage is a torn
            tail from a crash, safe to truncate; non-zero means
            interior media damage — committed history would be lost by
            truncating, so the caller must escalate (skip-damaged
            policy, previous generation, or a replica) *)
    damage : (int * string) list;
        (** byte offset and reason of every damaged entry encountered:
            each one skipped under [Skip_damaged], or the stopping one
            under [Stop_at_damage].  This is what the scrubber reports,
            so operators see {e where} the media is sick. *)
  }

  val fold :
    Sdb_storage.Fs.t -> string -> fingerprint:string -> policy:policy ->
    init:'acc -> f:('acc -> entry -> 'acc) -> ('acc * outcome, error) result
  (** Replay the log in order.  Damage never escapes as an exception:
      it is reflected in [outcome] per [policy]. *)

  val count_entries :
    Sdb_storage.Fs.t -> string -> fingerprint:string -> (int * outcome, error) result
end
