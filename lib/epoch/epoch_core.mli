(** The epoch-based snapshot publication protocol, functored over its
    atomic primitives.

    The store root is published through one atomic version pointer.  A
    reader {e enters} an epoch by registering in a slot (one
    compare-and-set), loads the pointer, runs against that immutable
    version, and {e exits} (one compare-and-set).  The single writer
    installs the next version with an exchange, advances the global
    epoch, and retires the displaced version; a retired version is
    reclaimed only once every registered slot carries an epoch strictly
    newer than the retiring one — so no reader that could still hold it
    is left behind.

    The functor exists for the same reason {!Sdb_vlock.Vlock_core.Make}
    does: instantiated over [Stdlib.Atomic] it is the engine's read
    path; instantiated over the schedule explorer's virtual atomics it
    is the exact protocol the explorer exhausts. *)

module type ATOM = sig
  (** What the protocol needs from an atomic cell.  [Stdlib.Atomic]
      satisfies it directly; the virtual instantiation wraps plain refs
      with a scheduling point before each operation. *)

  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val exchange : 'a t -> 'a -> 'a
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int
end

module type S = sig
  type 'a cell

  type 'a version = {
    payload : 'a;
    vlsn : int;  (** the LSN this version reflects *)
    mutable retired_at : int;
        (** the epoch current when this version was displaced; [-1]
            while it is still the published version *)
    mutable reclaimed : bool;
        (** set when reclamation frees the version — after this, any
            reader still dereferencing it is a protocol violation (the
            sanitizer's use-after-reclaim detector reads this flag) *)
  }

  type 'a t

  val create : slots:int -> lsn:int -> 'a -> 'a t
  (** A store with [slots] reader slots (a power of two) publishing the
      given initial version. *)

  val enter : 'a t -> slot:int -> unit
  (** Register the calling reader in [slot] at the current global
      epoch.  Multiple readers may share a slot (systhreads of one
      domain): the registration carries a count, and late joiners
      piggyback on the slot's existing — possibly older — epoch, which
      only delays reclamation, never permits it early. *)

  val exit_ : 'a t -> slot:int -> unit
  (** Deregister; the slot empties when its count reaches zero. *)

  val load : 'a t -> 'a version
  (** The published version.  Only stable between {!enter} and
      {!exit_} on the same slot. *)

  val publish : 'a t -> lsn:int -> 'a -> unit
  (** Single writer only (the engine calls it inside the Exclusive
      window): install the next version, advance the epoch, retire the
      displaced version, and reclaim whatever has become safe. *)

  val reclaim : 'a t -> int
  (** Free every retired version whose retiring epoch is older than
      every registered slot's epoch; returns how many were freed.
      Single writer only (runs inside {!publish} already). *)

  val unsafe_reclaim_all : 'a t -> int
  (** Reclaim every retired version {e ignoring} the reader slots — the
      deliberately-broken variant that keeps the use-after-reclaim
      detectors (sanitizer and schedule explorer) honest. *)

  (** {1 Inspection} (racy snapshots, for metrics and invariants) *)

  val current_epoch : 'a t -> int

  val active_readers : 'a t -> int
  (** Sum of slot counts. *)

  val retired_count : 'a t -> int
  (** Retired but not yet reclaimed. *)

  val reclaimed_total : 'a t -> int

  val advance_total : 'a t -> int
  (** Epoch advances since {!create}. *)

  val reclaim_lag : 'a t -> int
  (** Epochs between the oldest unreclaimed retired version and the
      current epoch; 0 when nothing is awaiting reclamation. *)
end

module Make (A : ATOM) : S with type 'a cell = 'a A.t
