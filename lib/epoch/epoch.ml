module Metrics = Sdb_obs.Metrics

(* The production atoms.  [make] pads: consecutive allocations land
   adjacently on the minor heap, so without separation two slots share
   a cache line and reader enter/exit traffic false-shares.  OCaml 5.1
   has no [Atomic.make_contended], so we allocate a 15-word spacer
   after each cell — best effort (compaction may repack), and enough to
   keep freshly-allocated slot arrays a cache line apart. *)
module Atom = struct
  type 'a t = 'a Atomic.t

  let make v =
    let a = Atomic.make v in
    ignore (Sys.opaque_identity (Array.make 15 0) : int array);
    a

  let get = Atomic.get
  let exchange = Atomic.exchange
  let compare_and_set = Atomic.compare_and_set
  let fetch_and_add = Atomic.fetch_and_add
end

module Core = Epoch_core.Make (Atom)

type 'a t = { core : 'a Core.t; name : string; mask : int }

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(* Pull-style metrics, like the sanitizer bridge in lib/core: the epoch
   layer keeps its own tallies (plain reads, no registry traffic on the
   read path) and a collector copies them out when someone renders. *)
let register_metrics t =
  let labels = [ ("db", t.name) ] in
  let m_readers =
    Metrics.gauge "sdb_epoch_readers" ~labels
      ~help:"Readers currently inside an epoch."
  and m_retired =
    Metrics.gauge "sdb_epoch_retired_versions" ~labels
      ~help:"Versions retired but not yet reclaimed."
  and m_lag =
    Metrics.gauge "sdb_epoch_reclaim_lag" ~labels
      ~help:
        "Epochs between the oldest unreclaimed version and the current \
         epoch (0 = nothing awaiting reclamation)."
  and m_advance =
    Metrics.counter "sdb_epoch_advance_total" ~labels
      ~help:"Global epoch advances (one per published version)."
  and m_reclaimed =
    Metrics.counter "sdb_epoch_reclaimed_total" ~labels
      ~help:"Retired versions reclaimed."
  in
  let pushed_advance = ref 0 and pushed_reclaimed = ref 0 in
  Metrics.register_collector ~name:("sdb_epoch:" ^ t.name) (fun () ->
      Metrics.set_gauge m_readers (float_of_int (Core.active_readers t.core));
      Metrics.set_gauge m_retired (float_of_int (Core.retired_count t.core));
      Metrics.set_gauge m_lag (float_of_int (Core.reclaim_lag t.core));
      let adv = Core.advance_total t.core in
      Metrics.add m_advance (max 0 (adv - !pushed_advance));
      pushed_advance := max !pushed_advance adv;
      let rec_ = Core.reclaimed_total t.core in
      Metrics.add m_reclaimed (max 0 (rec_ - !pushed_reclaimed));
      pushed_reclaimed := max !pushed_reclaimed rec_)

let create ?(slots = 64) ~name ~lsn payload =
  let slots = next_pow2 (max 1 slots) in
  let t = { core = Core.create ~slots ~lsn payload; name; mask = slots - 1 } in
  register_metrics t;
  t

(* Enter, pin the published version, run [f v], exit — on every exit
   path.  The slot is the domain id masked to the slot count: readers
   in distinct domains use distinct slots (no contention below [slots]
   domains); systhreads of one domain share its slot through the
   counted registration. *)
let pinned t f =
  let slot = (Domain.self () :> int) land t.mask in
  Sdb_check.note_epoch_enter ~name:t.name;
  Core.enter t.core ~slot;
  Fun.protect
    ~finally:(fun () ->
      Core.exit_ t.core ~slot;
      Sdb_check.note_epoch_exit ~name:t.name)
    (fun () ->
      let v = Core.load t.core in
      let r = f v in
      (* The use-after-reclaim detector: if the version we just read is
         marked reclaimed while we were still inside the epoch, the
         reclamation rule was violated (only possible through the
         deliberately-broken [unsafe_reclaim_all] — or a protocol bug,
         which is exactly what this check is for). *)
      if Sdb_check.enabled () && v.Core.reclaimed then
        Sdb_check.epoch_violation ~name:t.name
          ~message:"version reclaimed while a reader was still inside its epoch";
      r)

let read t f = pinned t (fun v -> f v.Core.payload)
let read_with_lsn t f = pinned t (fun v -> (f v.Core.payload, v.Core.vlsn))
(* Publishing a new version is part of the apply step: Exclusive
   only, matching the runtime assert in the engine's publish_epoch. *)
let publish t ~lsn payload = Core.publish t.core ~lsn payload
  [@@sdb.requires exclusive]
let reclaim t = Core.reclaim t.core
let unsafe_reclaim_all t = Core.unsafe_reclaim_all t.core
let active_readers t = Core.active_readers t.core
let retired_versions t = Core.retired_count t.core
let reclaimed_total t = Core.reclaimed_total t.core
let advance_total t = Core.advance_total t.core
let reclaim_lag t = Core.reclaim_lag t.core
